// Recorded HTTP daemon performance baseline (BENCH_http.json).
//
// Drives a live ServiceDaemon route surface over real loopback sockets with
// N concurrent client threads cycling a mixed GET/POST route set, once with
// one connection per request (Connection: close) and once over persistent
// keep-alive connections, and records req/s, p50/p99 latency and the
// server's shed counters for both — the perf trajectory entry for the
// keep-alive work, alongside BENCH_mc.json and BENCH_fleet.json.
//
// Usage: bench_http_throughput [--smoke] [--out PATH]
//   --smoke   small request counts (CI); --out defaults to BENCH_http.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/http_client.hpp"
#include "api/http_server.hpp"
#include "api/service_daemon.hpp"
#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"

namespace {

using namespace preempt;

struct Route {
  const char* method;
  const char* target;
  const char* body;
};

// Cheap, allocation-light routes: the point is to measure the HTTP layer
// (connect cost, framing, queueing), not a discrete-event simulation.
constexpr Route kRoutes[] = {
    {"GET", "/healthz", ""},
    {"GET", "/v1/lifetimes?type=n1-highcpu-16", ""},
    {"GET", "/v1/bags?limit=5", ""},
    {"POST", "/v1/observations", R"({"lifetimes":[2.5,11.0,23.9,16.2,8.8]})"},
    {"GET", "/v1/scenarios", ""},
};
constexpr std::size_t kRouteCount = sizeof(kRoutes) / sizeof(kRoutes[0]);

struct PhaseResult {
  double requests_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t connections_served = 0;
  std::uint64_t connections_shed = 0;
  double shed_rate = 0.0;
};

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

/// One load phase: `clients` threads, `per_client` requests each, either on
/// a fresh Connection: close socket per request or on one keep-alive
/// connection per thread.
PhaseResult run_phase(api::ServiceDaemon& daemon, bool keep_alive, std::size_t clients,
                      std::size_t per_client) {
  // A dedicated HttpServer per phase (fronting the daemon's router) so the
  // served/shed counters below belong to this phase alone.
  api::HttpServer server;
  api::HttpServer::Options options;
  options.worker_threads = 4;
  server.start([&daemon](const api::HttpRequest& request) { return daemon.handle(request); },
               options);
  const std::uint16_t port = server.port();

  std::vector<std::vector<double>> latencies_ms(clients);
  std::vector<std::uint64_t> errors(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Stopwatch wall;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies_ms[c].reserve(per_client);
      api::HttpConnection connection(port);
      for (std::size_t i = 0; i < per_client; ++i) {
        const Route& route = kRoutes[(c + i) % kRouteCount];
        const auto begin = std::chrono::steady_clock::now();
        try {
          const api::HttpResponse response =
              keep_alive ? connection.request(route.method, route.target, route.body)
                         : api::http_request(port, route.method, route.target, route.body);
          if (response.status < 200 || response.status >= 300) ++errors[c];
        } catch (const std::exception&) {
          ++errors[c];
        }
        const auto end = std::chrono::steady_clock::now();
        latencies_ms[c].push_back(
            std::chrono::duration<double, std::milli>(end - begin).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = wall.elapsed_seconds();

  PhaseResult result;
  std::vector<double> merged;
  merged.reserve(clients * per_client);
  for (const auto& v : latencies_ms) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  result.requests = merged.size();
  for (std::uint64_t e : errors) result.errors += e;
  result.requests_per_sec =
      elapsed > 0.0 ? static_cast<double>(merged.size()) / elapsed : 0.0;
  result.p50_ms = percentile(merged, 0.50);
  result.p99_ms = percentile(merged, 0.99);
  result.connections_served = server.connections_served();
  result.connections_shed = server.connections_shed();
  const double accepted =
      static_cast<double>(result.connections_served + result.connections_shed);
  result.shed_rate =
      accepted > 0.0 ? static_cast<double>(result.connections_shed) / accepted : 0.0;
  server.stop();
  return result;
}

JsonValue phase_json(const PhaseResult& r) {
  JsonObject o;
  o.emplace_back("requests", static_cast<std::size_t>(r.requests));
  o.emplace_back("errors", static_cast<std::size_t>(r.errors));
  o.emplace_back("requests_per_sec", r.requests_per_sec);
  o.emplace_back("p50_ms", r.p50_ms);
  o.emplace_back("p99_ms", r.p99_ms);
  o.emplace_back("connections_served", static_cast<std::size_t>(r.connections_served));
  o.emplace_back("connections_shed", static_cast<std::size_t>(r.connections_shed));
  o.emplace_back("shed_rate", r.shed_rate);
  return JsonValue(std::move(o));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_http.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const std::size_t clients = smoke ? 4 : 8;
  const std::size_t per_client = smoke ? 100 : 1000;

  bench::print_header("HTTP", "daemon request throughput: close-per-request vs keep-alive");

  api::ServiceDaemon daemon;  // routes dispatched in-process; sockets are ours

  // Warm the lazy bits (registry lookups, scenario listing) off the clock.
  (void)daemon.handle(api::HttpRequest{"GET", "/v1/lifetimes", "HTTP/1.1", {}, ""});
  (void)daemon.handle(api::HttpRequest{"GET", "/v1/scenarios", "HTTP/1.1", {}, ""});

  const PhaseResult close_phase = run_phase(daemon, /*keep_alive=*/false, clients, per_client);
  const PhaseResult keep_phase = run_phase(daemon, /*keep_alive=*/true, clients, per_client);

  const double speedup = close_phase.requests_per_sec > 0.0
                             ? keep_phase.requests_per_sec / close_phase.requests_per_sec
                             : 0.0;
  std::cout << "close-per-request : " << bench::fmt(close_phase.requests_per_sec, 0)
            << " req/s, p50 " << bench::fmt(close_phase.p50_ms, 3) << " ms, p99 "
            << bench::fmt(close_phase.p99_ms, 3) << " ms, shed rate "
            << bench::fmt(close_phase.shed_rate, 4) << "\n"
            << "keep-alive        : " << bench::fmt(keep_phase.requests_per_sec, 0)
            << " req/s, p50 " << bench::fmt(keep_phase.p50_ms, 3) << " ms, p99 "
            << bench::fmt(keep_phase.p99_ms, 3) << " ms, shed rate "
            << bench::fmt(keep_phase.shed_rate, 4) << "\n";
  bench::print_claim("keep-alive beats close-per-request on the same route mix",
                     "keep-alive/close throughput = " + bench::fmt(speedup, 2) + "x");

  JsonObject doc;
  doc.emplace_back("benchmark", JsonValue("http_throughput"));
  doc.emplace_back("smoke", JsonValue(smoke));
  doc.emplace_back("clients", clients);
  doc.emplace_back("requests_per_client", per_client);
  doc.emplace_back("close", phase_json(close_phase));
  doc.emplace_back("keepalive", phase_json(keep_phase));
  doc.emplace_back("speedup_keepalive_vs_close", JsonValue(speedup));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";

  const bool healthy = close_phase.errors == 0 && keep_phase.errors == 0;
  if (!healthy) {
    std::cerr << "request errors during the run\n";
    return 1;
  }
  return 0;
}
