// Ablation — VM re-provisioning cost R after a preemption.
//
// The paper's makespan math (Eqs. 6-13) charges a failed segment only its
// lost work: the replacement VM is assumed free and instantaneous. Real
// re-provisioning costs minutes (boot + stage-in + checkpoint restore).
// This ablation sweeps R and asks two questions:
//   1. does the DP schedule adapt (checkpoint more when failures cost more)?
//   2. does the DP's advantage over Young-Daly survive a large R?
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Ablation", "restart (re-provisioning) cost R after preemption");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  constexpr double kJob = 4.0;           // hours
  constexpr double kDelta = 1.0 / 60.0;  // 1 min checkpoints

  Table table({"R_min", "dp_increase_pct", "dp_checkpoints", "dp_first_interval_min",
               "yd_increase_pct", "dp_advantage"},
              "4 h job from VM age 0; fresh-VM restarts (R charged per failure); "
              "YD = Young-Daly with MTTF = 1 h; analytic makespans");

  for (double r_min : {0.0, 2.0, 5.0, 15.0, 30.0}) {
    policy::CheckpointConfig cfg;
    cfg.checkpoint_cost_hours = kDelta;
    cfg.restart = policy::RestartModel::kFreshVm;  // R is charged on every failure
    cfg.restart_overhead_hours = r_min / 60.0;
    const policy::CheckpointDp dp(truth, kJob, cfg);
    const auto schedule = dp.schedule(0.0);
    const double dp_inc = dp.expected_increase_fraction(0.0) * 100.0;

    const auto yd_plan = policy::young_daly_plan(kJob, 1.0, kDelta);
    const double yd_makespan = policy::evaluate_plan(truth, yd_plan, 0.0, cfg);
    const double yd_inc = (yd_makespan - kJob) / kJob * 100.0;

    table.add_row({bench::fmt(r_min, 0), bench::fmt(dp_inc, 2),
                   std::to_string(schedule.size() - 1),
                   bench::fmt(schedule.front() * 60.0, 1), bench::fmt(yd_inc, 2),
                   bench::fmt(yd_inc / dp_inc, 2) + "x"});
  }
  std::cout << table << "\n";

  bench::print_claim(
      "(extension; no paper counterpart) the DP schedule should absorb a "
      "realistic re-provisioning cost and keep beating periodic Young-Daly",
      "see dp_advantage column: the ordering must hold for every R");
  return 0;
}
