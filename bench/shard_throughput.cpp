// Recorded sharded-sweep coordinator baseline (BENCH_shard.json).
//
// Runs the fleet-quick scenario swept over a seed axis three ways — locally
// (the single-node run_sweep path), through the shard coordinator with one
// worker daemon, and with three worker daemons — and records wall time per
// configuration plus the 3-vs-1 worker speedup. Every daemon lives in this
// process (the coordinator talks to them over real loopback HTTP), so the
// numbers capture coordinator + HTTP + job-queue overhead, not container
// scheduling. The run aborts if the 3-worker merged report is not
// byte-identical to the local sweep report: the speedup is only meaningful
// if the answer is exact.
//
// Usage: bench_shard_throughput [--smoke] [--out PATH]
//   --smoke   6-cell sweep (CI); --out defaults to BENCH_shard.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/service_daemon.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "shard/coordinator.hpp"

namespace {

using namespace preempt;

scenario::SweepSpec seed_sweep(std::size_t cells) {
  const scenario::NamedScenario* named = scenario::find_builtin("fleet-quick");
  if (named == nullptr) throw Error("fleet-quick scenario missing from the registry");
  scenario::SweepSpec sweep = named->sweep;
  scenario::SweepAxis seeds;
  seeds.field = "seed";
  for (std::size_t s = 1; s <= cells; ++s) seeds.values.push_back(JsonValue(s));
  sweep.axes.push_back(std::move(seeds));
  return sweep;
}

struct PhaseResult {
  double seconds = 0.0;
  double cells_per_sec = 0.0;
};

JsonValue phase_json(const PhaseResult& r) {
  JsonObject o;
  o.emplace_back("seconds", r.seconds);
  o.emplace_back("cells_per_sec", r.cells_per_sec);
  return JsonValue(std::move(o));
}

PhaseResult sharded_phase(const scenario::SweepSpec& sweep, std::size_t cells,
                          const std::vector<api::ServiceDaemon*>& workers,
                          std::string& report_dump) {
  shard::CoordinatorOptions options;
  for (api::ServiceDaemon* daemon : workers) options.workers.push_back(daemon->port());
  options.request_timeout_seconds = 60.0;
  options.run_deadline_seconds = 600.0;
  shard::ShardCoordinator coordinator(std::move(options));
  Stopwatch wall;
  const shard::ShardOutcome outcome = coordinator.run(sweep);
  PhaseResult result;
  result.seconds = wall.elapsed_seconds();
  result.cells_per_sec =
      result.seconds > 0.0 ? static_cast<double>(cells) / result.seconds : 0.0;
  if (!outcome.complete) throw Error("sharded sweep did not complete");
  report_dump = outcome.report.dump();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }
  const std::size_t cells = smoke ? 6 : 12;

  bench::print_header("SHARD", "sharded sweep throughput: 1 vs 3 workers on fleet-quick");

  try {
    const scenario::SweepSpec sweep = seed_sweep(cells);

    // Local single-node baseline — also the byte-identity ground truth.
    Stopwatch local_wall;
    const std::string expected = scenario::to_json(scenario::run_sweep(sweep)).dump();
    PhaseResult local;
    local.seconds = local_wall.elapsed_seconds();
    local.cells_per_sec =
        local.seconds > 0.0 ? static_cast<double>(cells) / local.seconds : 0.0;

    std::vector<std::unique_ptr<api::ServiceDaemon>> daemons;
    for (int i = 0; i < 3; ++i) {
      api::ServiceDaemon::Options options;
      options.bootstrap_vms_per_cell = 30;  // bootstrap is off the clock anyway
      options.bag_workers = 1;              // one simulation lane per worker daemon
      daemons.push_back(std::make_unique<api::ServiceDaemon>(options));
      daemons.back()->start(0);
    }

    std::string one_dump, three_dump;
    const PhaseResult one_worker =
        sharded_phase(sweep, cells, {daemons[0].get()}, one_dump);
    const PhaseResult three_workers = sharded_phase(
        sweep, cells, {daemons[0].get(), daemons[1].get(), daemons[2].get()}, three_dump);
    for (auto& daemon : daemons) daemon->stop();

    if (three_dump != expected || one_dump != expected) {
      std::cerr << "merged report is not byte-identical to the local sweep report\n";
      return 1;
    }

    const double speedup =
        one_worker.seconds > 0.0 ? one_worker.seconds / three_workers.seconds : 0.0;
    std::cout << "local single-node : " << bench::fmt(local.seconds, 3) << " s ("
              << bench::fmt(local.cells_per_sec, 2) << " cells/s)\n"
              << "1 worker daemon   : " << bench::fmt(one_worker.seconds, 3) << " s ("
              << bench::fmt(one_worker.cells_per_sec, 2) << " cells/s)\n"
              << "3 worker daemons  : " << bench::fmt(three_workers.seconds, 3) << " s ("
              << bench::fmt(three_workers.cells_per_sec, 2) << " cells/s)\n";
    bench::print_claim(
        "scatter/gather over workers cuts sweep wall time without changing a byte",
        "3-worker/1-worker speedup = " + bench::fmt(speedup, 2) +
            "x, merge byte-identical to local");

    JsonObject doc;
    doc.emplace_back("benchmark", JsonValue("shard_throughput"));
    doc.emplace_back("smoke", JsonValue(smoke));
    doc.emplace_back("cells", cells);
    doc.emplace_back("local", phase_json(local));
    doc.emplace_back("one_worker", phase_json(one_worker));
    doc.emplace_back("three_workers", phase_json(three_workers));
    doc.emplace_back("speedup_3_vs_1", JsonValue(speedup));
    doc.emplace_back("byte_identical", JsonValue(true));

    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "cannot write " << out_path << "\n";
      return 1;
    }
    out << JsonValue(std::move(doc)).dump(2) << "\n";
    std::cout << "wrote " << out_path << "\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "bench_shard_throughput: " << e.what() << "\n";
    return 1;
  }
}
