// Figure 9b — % increase in running time vs number of VM preemptions.
//
// Reproduces: repeated Nanoconfinement bag runs on 32 x n1-highcpu-32; for
// each run record (#preemptions that hit jobs, % increase in bag running
// time); aggregate by preemption count.
// Paper claim: "the net impact of preemptions results in a roughly linear
// increase in running time. Each preemption results in a roughly 3% increase."
//
// The experiment configuration comes from the scenario registry
// ("paper-fig09b-preemptions"); each repetition re-seeds that scenario and
// runs it through scenario::run, byte-identical to the historical
// hand-wired BatchService loop.
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 9b", "% increase in running time vs #preemptions");

  scenario::ScenarioSpec spec = scenario::find_builtin("paper-fig09b-preemptions")->sweep.base;
  spec.replications = 1;  // per-seed reports, bucketed below

  // Repeat the experiment with different seeds; preemption counts vary
  // naturally ("repeated the experiment multiple times", Sec. 6.3).
  std::map<int, std::vector<double>> by_count;
  std::vector<double> xs, ys;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    spec.seed = seed * 7919;
    const sim::ServiceReport r = scenario::run(spec).report;
    const double pct = r.increase_fraction * 100.0;
    by_count[r.preemptions].push_back(pct);
    xs.push_back(static_cast<double>(r.preemptions));
    ys.push_back(pct);
  }

  Table table({"preemptions", "runs", "mean_increase_pct", "min_pct", "max_pct"},
              "Nanoconfinement bag (100 jobs), 60 seeded runs");
  for (const auto& [count, pcts] : by_count) {
    const Summary s = summarize(pcts);
    table.add_row({std::to_string(count), std::to_string(pcts.size()), bench::fmt(s.mean, 1),
                   bench::fmt(s.min, 1), bench::fmt(s.max, 1)});
  }
  std::cout << table << "\n";

  const LinearFit fit = linear_regression(xs, ys);
  bench::print_claim(
      "running-time increase grows roughly linearly, ~3% per preemption",
      "linear fit: increase_pct = " + bench::fmt(fit.intercept, 1) + " + " +
          bench::fmt(fit.slope, 2) + " * preemptions (r2 = " + bench::fmt(fit.r2, 2) + ")");
  return 0;
}
