// Ablation — checkpoint-DP modeling choices.
//
// The paper's Eqs. 9-13 leave two semantic choices open (DESIGN.md §2):
// what "lost work" means (conditional vs the literal Eq. 13 form) and where
// a failed job resumes (Eq. 12's same-age timeline vs a fresh VM). This
// ablation quantifies how much each choice — plus the DP grid resolution —
// moves the headline numbers. Expected outcome: the qualitative story
// (DP schedule beats Young-Daly by 2-10x) is insensitive to all of them.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Ablation", "checkpoint DP: restart model, lost-work form, grid step");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  constexpr double kJob = 4.0;
  constexpr double kDelta = 1.0 / 60.0;

  Table table({"restart", "lost_work", "step_min", "increase_at0_pct", "increase_mid_pct",
               "first_interval_min", "checkpoints", "mc_increase_pct"},
              "4 h job; mid = start age 8 h; MC = 2000 fresh-VM-restart runs");
  for (auto [restart, restart_label] :
       {std::pair{policy::RestartModel::kContinueAge, "continue-age"},
        std::pair{policy::RestartModel::kFreshVm, "fresh-vm"}}) {
    for (auto [lost, lost_label] : {std::pair{policy::LostWorkForm::kConditional, "conditional"},
                                    std::pair{policy::LostWorkForm::kPaper, "paper-eq13"}}) {
      for (double step_min : {0.5, 1.0, 3.0}) {
        policy::CheckpointConfig cfg;
        cfg.restart = restart;
        cfg.lost_work = lost;
        cfg.step_hours = step_min / 60.0;
        cfg.checkpoint_cost_hours = kDelta;
        const policy::CheckpointDp dp(truth, kJob, cfg);
        const auto schedule = dp.schedule(0.0);
        policy::CheckpointPlan plan;
        plan.checkpoint_cost_hours = kDelta;
        plan.work_segments_hours = schedule;
        policy::SimulationOptions opts;
        opts.runs = 2000;
        opts.seed = 77;
        const double mc =
            (policy::simulate_plan(truth, plan, opts).mean_hours - kJob) / kJob * 100.0;
        table.add_row({restart_label, lost_label, bench::fmt(step_min, 1),
                       bench::fmt(dp.expected_increase_fraction(0.0) * 100.0, 2),
                       bench::fmt(dp.expected_increase_fraction(8.0) * 100.0, 2),
                       bench::fmt(schedule.front() * 60.0, 0),
                       std::to_string(schedule.size() - 1), bench::fmt(mc, 2)});
      }
    }
  }
  std::cout << table << "\n";

  bench::print_claim(
      "the DP's advantage over Young-Daly (~21% overhead) is insensitive to "
      "the restart/lost-work semantics and to the grid step",
      "all variants stay well below Young-Daly in both the analytic and the "
      "Monte-Carlo columns (see table)");
  return 0;
}
