// Sec. 4.3 anchor — the non-uniform checkpoint schedule example.
//
// Reproduces: "For a 5 hour job launched on a new VM (time=0), the
// checkpointing intervals are (15, 28, 38, 59, 128) minutes" — intervals grow
// as the VM leaves the infant phase; exact values depend on fit parameters.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/checkpoint.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Sec. 4.3", "DP checkpoint schedule for a 5 h job (delta = 1 min)");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const policy::CheckpointDp dp(truth, 5.0, {});

  Table table({"start_age_hours", "intervals_minutes", "count", "expected_increase_pct"},
              "Checkpoint intervals along the success path");
  for (double age : {0.0, 2.0, 6.0, 12.0, 16.0}) {
    const auto schedule = dp.schedule(age);
    std::string intervals;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      if (i) intervals += ", ";
      intervals += bench::fmt(schedule[i] * 60.0, 0);
    }
    table.add_row({bench::fmt(age, 1), "(" + intervals + ")",
                   std::to_string(schedule.size()),
                   bench::fmt(dp.expected_increase_fraction(age) * 100.0, 2)});
  }
  std::cout << table << "\n";

  const auto at0 = dp.schedule(0.0);
  bench::print_claim(
      "5 h job at VM age 0: intervals (15, 28, 38, 59, 128) min — short first "
      "interval under infant mortality, growing through the stable phase",
      "first interval = " + bench::fmt(at0.front() * 60.0, 0) + " min, last = " +
          bench::fmt(at0.back() * 60.0, 0) + " min, count = " +
          std::to_string(at0.size()) + " (monotone growing)");
  return 0;
}
