// Figure 1 — CDF of lifetimes of Google Preemptible VMs, with fits.
//
// Reproduces: empirical CDF of ~120 n1-highcpu-16 @ us-east1-b lifetimes and
// least-squares fits of our bathtub model vs classical exponential, Weibull
// and Gompertz-Makeham, plus the PDF inset.
// Paper claim: "Our proposed distribution ... provides a better fit to the
// empirical data compared to other failure distributions."
#include <iostream>

#include "bench_util.hpp"
#include "core/analysis.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 1", "CDF of time to preemption + candidate model fits");

  const std::vector<double> lifetimes = bench::headline_sample();
  // Extended scope: the paper's three comparators plus lognormal, gamma and
  // the "bathtub-capable" exponentiated Weibull (ref [42]) — the claim that
  // existing bathtub families cannot track the deadline wall is tested too.
  const core::DistributionComparison cmp =
      core::compare_distributions(lifetimes, 24.0, core::ComparisonScope::kExtended);

  std::cout << cmp.cdf_table(25) << "\n";
  std::cout << cmp.pdf_table(25) << "\n";
  std::cout << cmp.summary_table() << "\n";

  const auto& best = cmp.best();
  double worst_competitor_sse = 0.0;
  for (const auto& fr : cmp.fits) {
    if (fr.distribution->name() != best.distribution->name()) {
      worst_competitor_sse = std::max(worst_competitor_sse, fr.gof.sse);
    }
  }
  double best_competitor_sse = worst_competitor_sse;
  for (const auto& fr : cmp.fits) {
    if (fr.distribution->name() != best.distribution->name()) {
      best_competitor_sse = std::min(best_competitor_sse, fr.gof.sse);
    }
  }

  bench::print_claim(
      "bathtub model fits the empirical CDF best; classical exponential/"
      "Weibull/Gompertz-Makeham cannot capture the 24 h deadline wall",
      "best fit = " + best.distribution->name() +
          " (sse=" + bench::fmt(best.gof.sse, 4) +
          ", r2=" + bench::fmt(best.gof.r2, 4) +
          "); closest classical competitor sse=" + bench::fmt(best_competitor_sse, 4));
  return 0;
}
