// Ablation — VM-reuse rule variants on the batch service.
//
// Compares the literal Eq. 8 rule, the corrected conditional-waste rule and
// the memoryless / always-fresh baselines on two bags: the paper's short
// (14 min) scientific jobs and a long-job (2 h) bag where the deadline wall
// matters. Expected outcome: for short jobs the literal Eq. 8 churns the
// fleet (rejecting *young* VMs because t f(t) peaks at tau1) while the
// conditional rule reuses them; for long jobs both beat memoryless.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/service.hpp"

namespace {

using namespace preempt;

sim::ServiceReport run_service(double job_hours, int gang, std::size_t count,
                               sim::ReusePolicyKind kind, policy::ReuseRule rule) {
  trace::RegimeKey key = bench::headline_regime();
  const auto truth = trace::ground_truth_distribution(key);
  sim::ServiceConfig cfg;
  cfg.cluster_size = 16;
  cfg.seed = 20200623;
  cfg.reuse_policy = kind;
  cfg.reuse_rule = rule;
  sim::BatchService svc(cfg, truth.clone(), truth.clone());
  sim::BagOfJobs bag;
  bag.spec.work_hours = job_hours;
  bag.spec.gang_vms = gang;
  bag.count = count;
  svc.submit_bag(bag);
  return svc.run();
}

}  // namespace

int main() {
  bench::print_header("Ablation", "reuse rules on the batch service");

  struct Variant {
    std::string label;
    sim::ReusePolicyKind kind;
    policy::ReuseRule rule;
  };
  const std::vector<Variant> variants = {
      {"eq8-literal", sim::ReusePolicyKind::kModelDriven, policy::ReuseRule::kPaperEq8},
      {"conditional", sim::ReusePolicyKind::kModelDriven, policy::ReuseRule::kConditionalWaste},
      {"memoryless", sim::ReusePolicyKind::kMemoryless, policy::ReuseRule::kConditionalWaste},
      {"always-fresh", sim::ReusePolicyKind::kAlwaysFresh, policy::ReuseRule::kConditionalWaste},
  };

  struct Scenario {
    std::string label;
    double job_hours;
    int gang;
    std::size_t count;
  };
  // The long-job bag must outlive the 24 h VM lifetime so that dispatches
  // actually encounter VMs near the deadline wall.
  const std::vector<Scenario> scenarios = {
      {"short-jobs (14 min x 200)", 14.0 / 60.0, 2, 200},
      {"long-jobs (2 h x 300, spans > 24 h)", 2.0, 1, 300},
  };

  for (const Scenario& sc : scenarios) {
    Table table({"rule", "vms_launched", "fresh_forced", "preempts", "wasted_h",
                 "makespan_h", "cost_per_job"},
                sc.label);
    for (const Variant& v : variants) {
      const sim::ServiceReport r = run_service(sc.job_hours, sc.gang, sc.count, v.kind, v.rule);
      table.add_row({v.label, std::to_string(r.vms_launched),
                     std::to_string(r.fresh_vm_launches), std::to_string(r.preemptions),
                     bench::fmt(r.wasted_hours, 2), bench::fmt(r.makespan_hours, 2),
                     "$" + bench::fmt(r.cost_per_job, 4)});
    }
    std::cout << table << "\n";
  }

  bench::print_claim(
      "the corrected conditional rule avoids the literal Eq. 8's fleet churn "
      "on short jobs while both model-driven rules protect long jobs from "
      "the deadline wall better than memoryless reuse",
      "see vms_launched / fresh_forced on the short-job bag and wasted_h on "
      "the long-job bag");
  return 0;
}
