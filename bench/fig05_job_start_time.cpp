// Figure 5 — effect of job start time on failure probability (6 h job).
//
// Reproduces: failure probability vs job start time (relative to VM launch)
// for the memoryless baseline and the model-driven policy.
// Paper claims: memoryless always fails after 24-6=18 h; our policy caps the
// failure probability at the fresh-VM level (~0.4) by switching to a new VM.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/scheduling.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 5", "6 h job failure probability vs start time");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const policy::ModelDrivenScheduler ours(truth.clone());
  const policy::MemorylessScheduler memoryless(truth.clone());
  constexpr double kJob = 6.0;

  Table table({"start_hours", "memoryless", "our_policy", "our_decision"},
              "P(job failure) for a 6 h job");
  double cap = 0.0;
  for (double s = 0.0; s <= 23.5; s += 0.5) {
    const auto d = ours.decide(s, kJob);
    table.add_row({bench::fmt(s, 1), bench::fmt(memoryless.policy_failure_probability(s, kJob), 3),
                   bench::fmt(d.failure_probability, 3), d.reuse ? "reuse" : "fresh-vm"});
    cap = std::max(cap, d.failure_probability);
  }
  std::cout << table << "\n";

  bench::print_claim(
      "memoryless policy fails with probability 1 after hour 18; our policy "
      "holds a constant ~0.4 by launching fresh VMs",
      "memoryless P(fail) at 19 h = " +
          bench::fmt(memoryless.policy_failure_probability(19.0, kJob), 3) +
          "; our policy max over all start times = " + bench::fmt(cap, 3) +
          " (fresh-VM level F(6h) = " + bench::fmt(truth.cdf(6.0), 3) + ")");
  return 0;
}
