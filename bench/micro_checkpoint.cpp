// Micro benchmarks: checkpoint-DP construction and queries (google-benchmark).
//
// The paper reports the DP is O(T^3) and therefore precomputed (Sec. 5);
// these benchmarks quantify the precomputation and the per-job query cost.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"

namespace {

using namespace preempt;

void BM_CheckpointDpBuild(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  const double job_hours = static_cast<double>(state.range(0));
  for (auto _ : state) {
    policy::CheckpointDp dp(d, job_hours, {});
    benchmark::DoNotOptimize(dp.expected_makespan(0.0));
  }
}
BENCHMARK(BM_CheckpointDpBuild)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CheckpointDpScheduleQuery(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  const policy::CheckpointDp dp(d, 4.0, {});
  double age = 0.0;
  for (auto _ : state) {
    age += 0.37;
    if (age > 18.0) age = 0.0;
    benchmark::DoNotOptimize(dp.schedule(age));
  }
}
BENCHMARK(BM_CheckpointDpScheduleQuery)->Unit(benchmark::kMicrosecond);

void BM_EvaluatePlanYoungDaly(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  const policy::CheckpointPlan plan = policy::young_daly_plan(4.0, 1.0, 1.0 / 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::evaluate_plan(d, plan, 0.0, {}));
  }
}
BENCHMARK(BM_EvaluatePlanYoungDaly)->Unit(benchmark::kMillisecond);

void BM_SimulatePlanMonteCarlo(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  const policy::CheckpointPlan plan = policy::young_daly_plan(4.0, 1.0, 1.0 / 60.0);
  policy::SimulationOptions opts;
  opts.runs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy::simulate_plan(d, plan, opts));
  }
}
BENCHMARK(BM_SimulatePlanMonteCarlo)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
