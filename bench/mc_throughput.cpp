// Recorded Monte-Carlo performance baseline (BENCH_mc.json).
//
// Measures the batched sampling/replication layer against the pre-batching
// hot path — one virtual quantile(uniform()) per draw with the base-class
// bracketing-bisection quantile — on the paper's headline bathtub regime,
// plus the replication engine and the simulator event loop. Writes the
// numbers to a JSON file so CI can archive a per-machine baseline.
//
// Usage: bench_mc_throughput [--smoke] [--out PATH] [--min-batched RATE]
//   --smoke        small draw counts (CI); --out defaults to BENCH_mc.json
//   --min-batched  fail (exit 1) when batched sample_many falls below RATE
//                  draws/s — CI pins this to the recorded floor so a perf
//                  regression on the hot path breaks the build instead of
//                  only shifting an artifact nobody reads
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "common/vkernel.hpp"
#include "mc/engine.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace preempt;

/// The pre-batching baseline: forwards the bathtub cdf/pdf but inherits the
/// base-class quantile (bracketing bisection on cdf) and sample (one virtual
/// quantile(uniform()) per draw) — exactly the old per-draw hot path.
class BisectionBathtub final : public dist::Distribution {
 public:
  explicit BisectionBathtub(const dist::BathtubDistribution& d) : d_(&d) {}
  std::string name() const override { return "bathtub-bisection-baseline"; }
  std::vector<std::string> parameter_names() const override { return d_->parameter_names(); }
  std::vector<double> parameters() const override { return d_->parameters(); }
  dist::DistributionPtr clone() const override {
    return std::make_unique<BisectionBathtub>(*this);
  }
  double cdf(double t) const override { return d_->cdf(t); }
  double pdf(double t) const override { return d_->pdf(t); }
  double support_end() const override { return d_->support_end(); }

 private:
  const dist::BathtubDistribution* d_;
};

double draws_per_sec(std::size_t n, double seconds) {
  return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_mc.json";
  double min_batched = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    if (std::strcmp(argv[i], "--min-batched") == 0 && i + 1 < argc)
      min_batched = std::strtod(argv[++i], nullptr);
  }

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const BisectionBathtub baseline(truth);

  const std::size_t n_baseline = smoke ? 20000 : 200000;
  const std::size_t n_batched = smoke ? 400000 : 4000000;
  const std::size_t n_runs = smoke ? 2000 : 20000;

  bench::print_header("MC", "batched sampling / replication engine baseline");

  // 1. Per-draw baseline: virtual quantile(uniform()) with bisection.
  double sink = 0.0;
  Stopwatch sw;
  {
    Rng rng(1);
    for (std::size_t i = 0; i < n_baseline; ++i) sink += baseline.sample(rng);
  }
  const double baseline_rate = draws_per_sec(n_baseline, sw.elapsed_seconds());

  // 2. Per-draw with the cached quantile table (sample, not batched).
  sw.reset();
  {
    Rng rng(1);
    for (std::size_t i = 0; i < n_batched; ++i) sink += truth.sample(rng);
  }
  const double table_rate = draws_per_sec(n_batched, sw.elapsed_seconds());

  // 3. Batched single-thread sample_many.
  std::vector<double> buffer(n_batched);
  sw.reset();
  {
    Rng rng(1);
    truth.sample_many(rng, buffer);
  }
  const double batched_rate = draws_per_sec(n_batched, sw.elapsed_seconds());

  // 4. Batched multi-thread (engine stream layout).
  sw.reset();
  mc::sample_many_parallel(truth, 1, buffer);
  const double parallel_rate = draws_per_sec(n_batched, sw.elapsed_seconds());
  for (double x : buffer) sink += x;

  // 5. Replication engine on the Fig. 8 Monte-Carlo workload.
  const policy::CheckpointPlan plan = policy::young_daly_plan(4.0, 1.0, 1.0 / 60.0);
  policy::SimulationOptions sim_opts;
  sim_opts.runs = n_runs;
  sim_opts.threads = 1;
  sw.reset();
  sink += policy::simulate_plan(truth, plan, sim_opts).mean_hours;
  const double runs_inline = draws_per_sec(n_runs, sw.elapsed_seconds());
  sim_opts.threads = 0;
  sw.reset();
  sink += policy::simulate_plan(truth, plan, sim_opts).mean_hours;
  const double runs_pool = draws_per_sec(n_runs, sw.elapsed_seconds());

  // 6. Event loop: schedule/cancel-heavy calendar (the old linear callback
  // scan made this quadratic in pending events).
  const std::size_t n_events = smoke ? 20000 : 200000;
  sw.reset();
  {
    sim::Simulator sim;
    std::vector<std::uint64_t> ids;
    ids.reserve(n_events);
    long counter = 0;
    for (std::size_t i = 0; i < n_events; ++i) {
      ids.push_back(
          sim.schedule_at(static_cast<double>(i % 9973), [&counter] { ++counter; }));
    }
    for (std::size_t i = 0; i < n_events; i += 2) sim.cancel(ids[i]);
    sim.run();
    sink += static_cast<double>(counter);
  }
  const double events_rate = draws_per_sec(n_events, sw.elapsed_seconds());

  const double speedup = baseline_rate > 0.0 ? batched_rate / baseline_rate : 0.0;
  std::cout << "baseline per-draw (bisection quantile) : " << bench::fmt(baseline_rate / 1e6, 3)
            << " Mdraws/s\n"
            << "table per-draw sample()                : " << bench::fmt(table_rate / 1e6, 3)
            << " Mdraws/s\n"
            << "batched sample_many (1 thread)         : " << bench::fmt(batched_rate / 1e6, 3)
            << " Mdraws/s\n"
            << "batched sample_many_parallel (pool)    : " << bench::fmt(parallel_rate / 1e6, 3)
            << " Mdraws/s\n"
            << "simulate_plan runs/s (inline | pool)   : " << bench::fmt(runs_inline, 0)
            << " | " << bench::fmt(runs_pool, 0) << "\n"
            << "simulator events/s (50% cancelled)     : " << bench::fmt(events_rate / 1e6, 3)
            << " M\n";
  bench::print_claim("batched bathtub sampling >= 5x the per-draw bisection baseline",
                     "speedup = " + bench::fmt(speedup, 1) + "x");

  JsonObject doc;
  doc.emplace_back("benchmark", JsonValue("mc_throughput"));
  doc.emplace_back("smoke", JsonValue(smoke));
  doc.emplace_back("threads", JsonValue(ThreadPool::global().thread_count()));
  doc.emplace_back("vkernel_path", JsonValue(std::string(vk::path_name(vk::active_path()))));
  doc.emplace_back("baseline_draws_per_sec", JsonValue(baseline_rate));
  doc.emplace_back("table_sample_draws_per_sec", JsonValue(table_rate));
  doc.emplace_back("batched_draws_per_sec", JsonValue(batched_rate));
  doc.emplace_back("batched_parallel_draws_per_sec", JsonValue(parallel_rate));
  doc.emplace_back("speedup_batched_vs_baseline", JsonValue(speedup));
  doc.emplace_back("simulate_plan_runs_per_sec_inline", JsonValue(runs_inline));
  doc.emplace_back("simulate_plan_runs_per_sec_pool", JsonValue(runs_pool));
  doc.emplace_back("simulator_events_per_sec", JsonValue(events_rate));
  doc.emplace_back("checksum", JsonValue(sink));  // keeps the loops observable

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";

  if (min_batched > 0.0 && batched_rate < min_batched) {
    std::cerr << "FAIL: batched sample_many " << bench::fmt(batched_rate / 1e6, 3)
              << " Mdraws/s is below the recorded floor "
              << bench::fmt(min_batched / 1e6, 3) << " Mdraws/s\n";
    return 1;
  }
  return 0;
}
