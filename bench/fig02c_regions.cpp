// Figure 2c — n1-highcpu-16 preemption characteristics in different regions.
//
// Reproduces: lifetime CDFs of n1-highcpu-16 in the four study zones.
// Paper claim (Observation 3): the three-phase bathtub shape is universal
// across zones; absolute rates differ mildly.
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "dist/empirical.hpp"
#include "fit/model_fitters.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 2c", "n1-highcpu-16 lifetime CDFs by zone");

  std::vector<dist::EmpiricalDistribution> ecdfs;
  std::vector<std::string> header = {"t_hours"};
  std::uint64_t seed = 9000;
  for (trace::Zone zone : trace::all_zones()) {
    trace::RegimeKey key = bench::headline_regime();
    key.zone = zone;
    ecdfs.emplace_back(trace::generate_campaign({key, 150, ++seed}).lifetimes());
    header.push_back(trace::to_string(zone));
  }

  Table table(header, "CDF of time to preemption by zone");
  for (double t : linspace(0.0, 24.0, 25)) {
    std::vector<std::string> row = {bench::fmt(t, 1)};
    for (const auto& e : ecdfs) row.push_back(bench::fmt(e.cdf(t), 3));
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // Universality check: the bathtub model must fit every zone well.
  std::string fits;
  double min_r2 = 1.0;
  std::size_t zone_index = 0;
  for (trace::Zone zone : trace::all_zones()) {
    const auto pts = ecdfs[zone_index++].ecdf_points();
    const fit::FitResult fr = fit::fit_bathtub(pts.t, pts.f, 24.0);
    fits += trace::to_string(zone) + " r2=" + bench::fmt(fr.gof.r2, 3) + " ";
    min_r2 = std::min(min_r2, fr.gof.r2);
  }
  bench::print_claim(
      "the three-phase bathtub shape holds in every zone (only rates differ)",
      "per-zone bathtub fits: " + fits + "(min r2=" + bench::fmt(min_r2, 3) + ")");
  return 0;
}
