// Eq. 3 — expected lifetime of each VM type (the paper's MTTF substitute).
//
// Reproduces: the Eq. 3 closed-form expected lifetime for ground-truth
// parameters and for parameters re-fitted from a synthetic campaign, per VM
// type. Used by the paper for coarse-grained server selection (Sec. 3.2.2).
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/model.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Eq. 3", "expected VM lifetime by type (us-east1-b, day, batch)");

  Table table({"vm_type", "eq3_truth_h", "eq3_fitted_h", "mean_truth_h", "mean_fitted_h",
               "fit_r2"},
              "Expected lifetime (Eq. 3) and full mean (with 24 h reclaim atom)");
  std::uint64_t seed = 31000;
  double max_mean_err = 0.0;
  for (const trace::VmSpec& spec : trace::all_vm_specs()) {
    trace::RegimeKey key = bench::headline_regime();
    key.type = spec.type;
    const auto truth = trace::ground_truth_distribution(key);
    const auto lifetimes = trace::generate_campaign({key, 400, ++seed}).lifetimes();
    const core::PreemptionModel fitted = core::PreemptionModel::fit(lifetimes);
    const double mean_err =
        std::abs(fitted.mean_lifetime() - truth.mean()) / truth.mean();
    max_mean_err = std::max(max_mean_err, mean_err);
    table.add_row({spec.name, bench::fmt(truth.expected_lifetime_eq3(), 2),
                   bench::fmt(fitted.expected_lifetime(), 2), bench::fmt(truth.mean(), 2),
                   bench::fmt(fitted.mean_lifetime(), 2),
                   bench::fmt(fitted.fit_quality()->r2, 4)});
  }
  std::cout << table << "\n";

  bench::print_claim(
      "Eq. 3 gives a usable MTTF substitute per VM type; the full mean "
      "(Eq. 3 + deadline atom) is the robust statistic because fits can "
      "trade mass between the deadline wall and the 24 h reclaim atom",
      "max relative error of fitted vs ground-truth mean lifetime = " +
          bench::fmt(max_mean_err * 100.0, 1) + "%");
  return 0;
}
