// Figure 2a — preemption characteristics of different VM types.
//
// Reproduces: lifetime CDFs for n1-highcpu-{2,4,8,16,32} in us-central1-c.
// Paper claim (Observation 4): "Larger VMs are more likely to be preempted."
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/table.hpp"
#include "dist/empirical.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 2a", "lifetime CDFs by VM type (us-central1-c)");

  const std::vector<trace::VmType> types = {
      trace::VmType::kN1Highcpu2, trace::VmType::kN1Highcpu4, trace::VmType::kN1Highcpu8,
      trace::VmType::kN1Highcpu16, trace::VmType::kN1Highcpu32};

  std::vector<dist::EmpiricalDistribution> ecdfs;
  std::vector<std::string> header = {"t_hours"};
  std::uint64_t seed = 40000;
  for (trace::VmType type : types) {
    trace::RegimeKey key{type, trace::Zone::kUsCentral1C, trace::DayPeriod::kDay,
                         trace::WorkloadKind::kBatch};
    ecdfs.emplace_back(trace::generate_campaign({key, 400, ++seed}).lifetimes());
    header.push_back(trace::to_string(type));
  }

  Table table(header, "CDF of time to preemption by VM type");
  for (double t : linspace(0.0, 24.0, 25)) {
    std::vector<std::string> row = {bench::fmt(t, 1)};
    for (const auto& e : ecdfs) row.push_back(bench::fmt(e.cdf(t), 3));
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  // Measured ordering at the 6 h probe.
  std::string ordering;
  bool monotone = true;
  double prev = -1.0;
  for (std::size_t i = 0; i < types.size(); ++i) {
    const double f6 = ecdfs[i].cdf(6.0);
    ordering += trace::to_string(types[i]) + "=" + bench::fmt(f6, 3) + " ";
    if (f6 < prev - 0.03) monotone = false;  // allow sampling noise
    prev = f6;
  }
  bench::print_claim(
      "larger VMs (16, 32 CPUs) have a higher probability of preemption than "
      "smaller VMs",
      "F(6h) by type: " + ordering + (monotone ? "(monotone increasing)" : "(NOT monotone!)"));
  return 0;
}
