// Ablation — the Sec. 8 "phase-wise model" alternative.
//
// The paper sketches a piecewise (segmented linear) CDF as a simpler future
// alternative to the closed-form bathtub model. This ablation fits both to
// the same campaign and drives the scheduling policy with each, evaluating
// decisions under the ground truth. Expected outcome: the segmented model is
// a usable approximation (the policy mostly cares about phase boundaries),
// with the smooth model slightly ahead — supporting the paper's argument
// that even coarse bathtub models retain most of the benefit.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dist/empirical.hpp"
#include "fit/model_fitters.hpp"
#include "fit/segmented.hpp"
#include "policy/scheduling.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Ablation", "smooth bathtub vs segmented phase-wise model (Sec. 8)");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const auto lifetimes = bench::headline_sample(400, 606);
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points();

  const fit::FitResult bathtub = fit::fit_bathtub(pts.t, pts.f, 24.0);
  const fit::SegmentedFit segmented = fit::fit_segmented_cdf(pts.t, pts.f, 24.0);

  Table fit_table({"model", "rmse", "r2", "notes"}, "Fit quality on the same ECDF");
  fit_table.add_row({"bathtub (Eq. 1)", bench::fmt(bathtub.gof.rmse, 4),
                     bench::fmt(bathtub.gof.r2, 4), "4 parameters, closed-form moments"});
  fit_table.add_row({"segmented linear", bench::fmt(segmented.gof.rmse, 4),
                     bench::fmt(segmented.gof.r2, 4),
                     "breaks at " + bench::fmt(segmented.break1, 1) + " h / " +
                         bench::fmt(segmented.break2, 1) + " h"});
  std::cout << fit_table << "\n";

  // Drive the reuse policy with each model; evaluate under the truth.
  const policy::ModelDrivenScheduler with_bathtub(bathtub.distribution->clone(), truth.clone());
  const policy::ModelDrivenScheduler with_segments(segmented.model->clone(), truth.clone());
  const policy::ModelDrivenScheduler oracle(truth.clone(), truth.clone());
  const policy::MemorylessScheduler memoryless(truth.clone());

  Table policy_table({"job_hours", "memoryless", "segmented", "bathtub", "oracle"},
                     "Average job failure probability (evaluated under ground truth)");
  double worst_gap = 0.0;
  for (double job : {2.0, 4.0, 6.0, 10.0, 16.0}) {
    const double m = memoryless.average_failure_probability(job);
    const double s = with_segments.average_failure_probability(job);
    const double b = with_bathtub.average_failure_probability(job);
    const double o = oracle.average_failure_probability(job);
    policy_table.add_row({bench::fmt(job, 1), bench::fmt(m, 3), bench::fmt(s, 3),
                          bench::fmt(b, 3), bench::fmt(o, 3)});
    worst_gap = std::max(worst_gap, s - o);
  }
  std::cout << policy_table << "\n";

  bench::print_claim(
      "a piece-wise phase model could capture the phase transitions and "
      "drive the same policies (Sec. 8)",
      "segmented-model policy trails the oracle by at most " +
          bench::fmt(worst_gap * 100.0, 1) + " percentage points of failure probability");
  return 0;
}
