// Micro benchmarks: portfolio optimizer throughput and market-fit speedup
// (google-benchmark).
//
// The optimizer sits on the service's request path (/v1/portfolio quotes and
// allocates per call), and the ~40-market grid refits whenever drift forces
// a catalog rebuild — so both the allocation loop and the parallel fit
// fan-out are operational hot paths.
#include <benchmark/benchmark.h>

#include "common/thread_pool.hpp"
#include "portfolio/optimizer.hpp"

namespace {

using namespace preempt;

const portfolio::MarketCatalog& fitted_catalog() {
  static const portfolio::MarketCatalog catalog = [] {
    portfolio::MarketCatalog c = portfolio::MarketCatalog::synthetic(60, 2019);
    c.fit_all();
    return c;
  }();
  return catalog;
}

portfolio::PortfolioConfig config_for(std::size_t jobs) {
  portfolio::PortfolioConfig config;
  config.jobs = jobs;
  config.risk_bound = 0.05;
  return config;
}

/// Quote + greedy allocation over the full grid (markets x jobs).
void BM_GreedyAllocation(benchmark::State& state) {
  const auto& catalog = fitted_catalog();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const portfolio::PortfolioOptimizer optimizer(catalog, config_for(jobs));
    benchmark::DoNotOptimize(optimizer.optimize_greedy());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs * catalog.size()));
}
BENCHMARK(BM_GreedyAllocation)->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

/// Allocation with cached quotes only (the inner greedy loop).
void BM_GreedyLoopOnly(benchmark::State& state) {
  const auto& catalog = fitted_catalog();
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const portfolio::PortfolioOptimizer optimizer(catalog, config_for(jobs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize_greedy());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_GreedyLoopOnly)->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

/// Exhaustive reference solver on a deliberately tiny instance.
void BM_ExhaustiveReference(benchmark::State& state) {
  const auto& catalog = fitted_catalog();
  portfolio::PortfolioConfig config = config_for(static_cast<std::size_t>(state.range(0)));
  config.risk_bound = 0.02;  // keep the eligible set small
  const portfolio::PortfolioOptimizer optimizer(catalog, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimizer.optimize_exhaustive());
  }
}
BENCHMARK(BM_ExhaustiveReference)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

/// Serial fit of the whole 40-market grid.
void BM_FitAllMarketsSerial(benchmark::State& state) {
  for (auto _ : state) {
    portfolio::MarketCatalog catalog = portfolio::MarketCatalog::synthetic(60, 2019);
    catalog.fit_all();
    benchmark::DoNotOptimize(catalog.fitted_count());
  }
}
BENCHMARK(BM_FitAllMarketsSerial)->Unit(benchmark::kMillisecond);

/// Parallel fit fan-out; compare against the serial baseline for speedup.
void BM_FitAllMarketsParallel(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    portfolio::MarketCatalog catalog = portfolio::MarketCatalog::synthetic(60, 2019);
    catalog.fit_all(pool);
    benchmark::DoNotOptimize(catalog.fitted_count());
  }
}
BENCHMARK(BM_FitAllMarketsParallel)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
