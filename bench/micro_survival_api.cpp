// Micro benchmarks — survival estimators, censored MLE, JSON and HTTP
// message machinery (google-benchmark).
#include <benchmark/benchmark.h>

#include "api/http.hpp"
#include "common/json.hpp"
#include "common/random.hpp"
#include "dist/bathtub.hpp"
#include "fit/bootstrap.hpp"
#include "fit/model_fitters.hpp"
#include "survival/kaplan_meier.hpp"
#include "survival/mle.hpp"
#include "survival/nelson_aalen.hpp"
#include "trace/ground_truth.hpp"

namespace {

using namespace preempt;

survival::SurvivalData make_data(std::size_t n, bool censored) {
  const auto d = trace::ground_truth_distribution(trace::RegimeKey{});
  Rng rng(7);
  std::vector<survival::Observation> obs;
  obs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = d.sample(rng);
    if (censored && i % 3 == 0) {
      obs.push_back({t * 0.5, false});
    } else {
      obs.push_back({t, true});
    }
  }
  return survival::SurvivalData(std::move(obs));
}

void BM_KaplanMeier(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survival::kaplan_meier(data));
  }
}
BENCHMARK(BM_KaplanMeier)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NelsonAalen(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survival::nelson_aalen(data));
  }
}
BENCHMARK(BM_NelsonAalen)->Arg(1000)->Arg(10000);

void BM_WeibullMle(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survival::fit_weibull_mle(data));
  }
}
BENCHMARK(BM_WeibullMle)->Arg(500)->Arg(2000);

void BM_BathtubMle(benchmark::State& state) {
  const auto data = make_data(static_cast<std::size_t>(state.range(0)), true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(survival::fit_bathtub_mle(data));
  }
}
BENCHMARK(BM_BathtubMle)->Arg(300)->Unit(benchmark::kMillisecond);

std::vector<double> bootstrap_sample() {
  const auto d = trace::ground_truth_distribution(trace::RegimeKey{});
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(d.sample(rng));
  return xs;
}

fit::SampleFitter bathtub_fitter() {
  return [](std::span<const double> xs) { return fit::fit_bathtub_to_samples(xs, 24.0).params; };
}

void BM_BootstrapSerial(benchmark::State& state) {
  const auto xs = bootstrap_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::bootstrap_parameters(xs, bathtub_fitter(), 32));
  }
}
BENCHMARK(BM_BootstrapSerial)->Unit(benchmark::kMillisecond);

void BM_BootstrapParallel(benchmark::State& state) {
  const auto xs = bootstrap_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::bootstrap_parameters_parallel(xs, bathtub_fitter(), 32));
  }
}
BENCHMARK(BM_BootstrapParallel)->Unit(benchmark::kMillisecond);

void BM_JsonParse(benchmark::State& state) {
  // A representative bag report payload.
  JsonObject obj;
  for (int i = 0; i < 12; ++i) {
    obj.emplace_back("field_" + std::to_string(i), 3.14159 * i);
  }
  JsonArray arr;
  for (int i = 0; i < 50; ++i) arr.emplace_back(0.25 * i);
  obj.emplace_back("lifetimes", std::move(arr));
  const std::string text = JsonValue(std::move(obj)).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_json(text));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_JsonParse);

void BM_HttpParse(benchmark::State& state) {
  const std::string wire =
      "POST /api/bags HTTP/1.1\r\nhost: 127.0.0.1\r\ncontent-type: application/json\r\n"
      "content-length: 48\r\n\r\n{\"app\":\"shapes\",\"jobs\":50,\"vms\":16,\"seed\":1234}";
  for (auto _ : state) {
    api::HttpRequestParser parser;
    parser.feed(wire.data(), wire.size());
    benchmark::DoNotOptimize(parser.complete());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_HttpParse);

}  // namespace
