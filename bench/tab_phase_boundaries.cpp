// Observation 1 — "the lifetimes of VMs are not uniformly distributed, but
// have three distinct phases" — quantified nonparametrically.
//
// For every VM type, draw a campaign, estimate the hazard with the
// Nelson-Aalen estimator (no model assumption), and report the infant /
// stable / deadline-wall hazard levels plus the phase boundaries the fitted
// bathtub model implies. The paper reads the phases off CDF plots; the
// hazard ratios make the same statement as numbers.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/analysis.hpp"
#include "fit/model_fitters.hpp"
#include "survival/nelson_aalen.hpp"
#include "survival/observation.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Obs. 1", "three preemption phases, nonparametric hazard view");

  Table table({"vm_type", "infant_hazard", "stable_hazard", "wall_hazard", "infant/stable",
               "wall/stable", "model_infant_end_h", "model_wall_start_h"},
              "Nelson-Aalen smoothed hazards (1/h): infant @0.5h, stable over [6,18]h, wall @23.7h; "
              "phase boundaries from the fitted bathtub model");

  double min_infant_ratio = 1e9, min_wall_ratio = 1e9;
  for (const auto& spec : trace::all_vm_specs()) {
    trace::RegimeKey regime = bench::headline_regime();
    regime.type = spec.type;
    const auto lifetimes =
        trace::generate_campaign({regime, 3000, 7000 + static_cast<unsigned>(spec.type)})
            .lifetimes();

    const auto na =
        survival::nelson_aalen(survival::SurvivalData::all_events(lifetimes));
    const double infant = na.smoothed_hazard(0.5, 0.5);
    const double stable = na.smoothed_hazard(12.0, 6.0);
    const double wall = na.smoothed_hazard(23.7, 0.3);
    // Zero events in the stable window means the hazard is below the
    // one-event resolution of the estimator; report ratios as lower bounds
    // against that floor instead of dividing by zero.
    const double floor =
        1.0 / (static_cast<double>(lifetimes.size()) * 12.0);  // 1 event / (n x 12 h)
    const bool floored = stable < floor;
    const double stable_for_ratio = std::max(stable, floor);
    min_infant_ratio = std::min(min_infant_ratio, infant / stable_for_ratio);
    min_wall_ratio = std::min(min_wall_ratio, wall / stable_for_ratio);
    const std::string bound = floored ? ">=" : "";

    const auto fit = fit::fit_bathtub_to_samples(lifetimes, 24.0);
    const auto& bathtub = dynamic_cast<const dist::BathtubDistribution&>(*fit.distribution);
    table.add_row({spec.name, bench::fmt(infant, 3), bench::fmt(stable, 4),
                   bench::fmt(wall, 2), bound + bench::fmt(infant / stable_for_ratio, 1) + "x",
                   bound + bench::fmt(wall / stable_for_ratio, 0) + "x",
                   bench::fmt(bathtub.infant_phase_end(), 2),
                   bench::fmt(bathtub.deadline_phase_start(), 2)});
  }
  std::cout << table << "\n";

  bench::print_claim(
      "lifetimes have three distinct phases: steep infant mortality, a long "
      "stable middle, and a deadline wall (bathtub hazard)",
      "for every VM type the nonparametric hazard is >= " +
          bench::fmt(min_infant_ratio, 1) + "x stable early and >= " +
          bench::fmt(min_wall_ratio, 0) + "x stable at the wall");
  return 0;
}
