// Micro benchmarks: discrete-event service simulation throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "mc/engine.hpp"
#include "sim/service.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace preempt;

void BM_ServiceSmallBag(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  for (auto _ : state) {
    sim::ServiceConfig cfg;
    cfg.cluster_size = 8;
    cfg.seed = 11;
    sim::BatchService svc(cfg, truth.clone(), truth.clone());
    sim::BagOfJobs bag;
    bag.spec.work_hours = 14.0 / 60.0;
    bag.spec.gang_vms = 2;
    bag.count = static_cast<std::size_t>(state.range(0));
    svc.submit_bag(bag);
    benchmark::DoNotOptimize(svc.run());
  }
}
BENCHMARK(BM_ServiceSmallBag)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMicrosecond);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  // Half the scheduled events are cancelled before run(); the old linear
  // callback scan made this workload quadratic in pending events.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    long counter = 0;
    std::vector<std::uint64_t> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      ids.push_back(sim.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; }));
    }
    for (int i = 0; i < n; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_LifetimeSampling(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(truth.sample(rng));
  }
}
BENCHMARK(BM_LifetimeSampling);

void BM_LifetimeSamplingBatched(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  std::vector<double> buffer(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (auto _ : state) {
    truth.sample_many(rng, buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LifetimeSamplingBatched)->Arg(1024)->Arg(16384);

void BM_LifetimeSamplingParallel(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  std::vector<double> buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    mc::sample_many_parallel(truth, 5, buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LifetimeSamplingParallel)->Arg(1 << 18);

}  // namespace
