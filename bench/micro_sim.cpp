// Micro benchmarks: discrete-event service simulation throughput.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/service.hpp"

namespace {

using namespace preempt;

void BM_ServiceSmallBag(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  for (auto _ : state) {
    sim::ServiceConfig cfg;
    cfg.cluster_size = 8;
    cfg.seed = 11;
    sim::BatchService svc(cfg, truth.clone(), truth.clone());
    sim::BagOfJobs bag;
    bag.spec.work_hours = 14.0 / 60.0;
    bag.spec.gang_vms = 2;
    bag.count = static_cast<std::size_t>(state.range(0));
    svc.submit_bag(bag);
    benchmark::DoNotOptimize(svc.run());
  }
}
BENCHMARK(BM_ServiceSmallBag)->Arg(20)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long counter = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i % 97), [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMicrosecond);

void BM_LifetimeSampling(benchmark::State& state) {
  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(truth.sample(rng));
  }
}
BENCHMARK(BM_LifetimeSampling);

}  // namespace
