// Figure 9a — cost per job with our batch service vs on-demand VMs.
//
// Reproduces: bags of 100 jobs of each workload (Nanoconfinement, Shapes,
// LULESH) on a cluster of 32 preemptible n1-highcpu-32 VMs vs the same work
// at on-demand prices.
// Paper claim: "our service can reduce costs by 5x for all the applications".
//
// The experiment cells come from the declarative scenario registry
// (src/scenario, named sweep "paper-fig09a-cost"): each cell is one workload
// repacked onto the Fig. 9 market, executed by scenario::run. Reports are
// byte-identical to the historical hand-wired BatchService setup.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 9a", "cost per job: our service vs on-demand");

  const scenario::NamedScenario* named = scenario::find_builtin("paper-fig09a-cost");
  Table table({"application", "our_cost_per_job", "on_demand_per_job", "reduction",
               "preemptions", "runtime_increase_pct"},
              "Bag of 100 jobs on 32 x n1-highcpu-32");
  double min_reduction = 1e9;
  for (const scenario::ScenarioSpec& cell : scenario::expand(named->sweep)) {
    const sim::ServiceReport r = scenario::run(cell).report;
    table.add_row({cell.app, "$" + bench::fmt(r.cost_per_job, 4),
                   "$" + bench::fmt(r.on_demand_cost_per_job, 4),
                   bench::fmt(r.cost_reduction_factor, 2) + "x",
                   std::to_string(r.preemptions),
                   bench::fmt(r.increase_fraction * 100.0, 1)});
    min_reduction = std::min(min_reduction, r.cost_reduction_factor);
  }
  std::cout << table << "\n";

  bench::print_claim("the service reduces cost by ~5x vs on-demand for all three applications",
                     "minimum cost reduction across applications = " +
                         bench::fmt(min_reduction, 2) + "x (price-book ceiling 4.73x)");
  return 0;
}
