// Figure 9a — cost per job with our batch service vs on-demand VMs.
//
// Reproduces: bags of 100 jobs of each workload (Nanoconfinement, Shapes,
// LULESH) on a cluster of 32 preemptible n1-highcpu-32 VMs vs the same work
// at on-demand prices.
// Paper claim: "our service can reduce costs by 5x for all the applications".
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/service.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 9a", "cost per job: our service vs on-demand");

  trace::RegimeKey key = bench::headline_regime();
  key.type = trace::VmType::kN1Highcpu32;
  key.zone = trace::Zone::kUsCentral1C;
  const auto truth = trace::ground_truth_distribution(key);

  Table table({"application", "our_cost_per_job", "on_demand_per_job", "reduction",
               "preemptions", "runtime_increase_pct"},
              "Bag of 100 jobs on 32 x n1-highcpu-32");
  double min_reduction = 1e9;
  for (const sim::Workload& base : sim::all_workloads()) {
    const sim::Workload w = sim::repack_for_vm_type(base, trace::VmType::kN1Highcpu32);
    sim::ServiceConfig cfg;
    cfg.vm_type = trace::VmType::kN1Highcpu32;
    cfg.cluster_size = 32;
    cfg.seed = 4242;
    sim::BatchService svc(cfg, truth.clone(), truth.clone());
    sim::BagOfJobs bag;
    bag.name = w.name;
    bag.spec = w.job;
    bag.count = 100;
    svc.submit_bag(bag);
    const sim::ServiceReport r = svc.run();
    table.add_row({w.name, "$" + bench::fmt(r.cost_per_job, 4),
                   "$" + bench::fmt(r.on_demand_cost_per_job, 4),
                   bench::fmt(r.cost_reduction_factor, 2) + "x",
                   std::to_string(r.preemptions),
                   bench::fmt(r.increase_fraction * 100.0, 1)});
    min_reduction = std::min(min_reduction, r.cost_reduction_factor);
  }
  std::cout << table << "\n";

  bench::print_claim("the service reduces cost by ~5x vs on-demand for all three applications",
                     "minimum cost reduction across applications = " +
                         bench::fmt(min_reduction, 2) + "x (price-book ceiling 4.73x)");
  return 0;
}
