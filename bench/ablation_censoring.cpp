// Ablation — measurement-campaign censoring and estimator choice.
//
// The paper's methodology (Sec. 3.1) fits the model to an ECDF of observed
// lifetimes, implicitly assuming every VM is watched until preemption. In a
// live service, VMs are routinely relinquished when their job finishes;
// treating those censored lifetimes as preemptions biases the model the
// policies run on. This ablation sweeps the censoring fraction and compares
// three estimators of the expected lifetime (the policy-relevant scalar):
//   naive  — ECDF least squares, censorings counted as preemptions,
//   KM     — least squares on the Kaplan-Meier corrected CDF,
//   MLE    — censored bathtub maximum likelihood.
#include <iostream>

#include "bench_util.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "fit/model_fitters.hpp"
#include "survival/kaplan_meier.hpp"
#include "survival/mle.hpp"
#include "trace/ground_truth.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Ablation", "censoring-aware estimation vs the paper's plain ECDF fit");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const double truth_mean = truth.mean();
  constexpr int kVms = 800;

  Table table({"censored_pct", "naive_err_pct", "km_err_pct", "mle_err_pct"},
              "error of fitted mean lifetime vs ground truth (" +
                  bench::fmt(truth_mean, 2) + " h); job completions censor at Uniform(c0, 30) h");

  for (double c0 : {24.0, 12.0, 6.0, 3.0, 1.0}) {
    Rng rng(91);
    std::vector<double> lifetimes, cutoffs;
    for (int i = 0; i < kVms; ++i) {
      lifetimes.push_back(truth.sample(rng));
      cutoffs.push_back(c0 + (30.0 - c0) * rng.uniform());
    }
    const auto data = survival::SurvivalData::censor_at(lifetimes, cutoffs);
    const double censored_pct =
        100.0 * static_cast<double>(data.censored_count()) / static_cast<double>(data.size());

    std::vector<double> naive_lifetimes;
    for (const auto& o : data.observations()) naive_lifetimes.push_back(o.time);
    const auto naive = fit::fit_bathtub_to_samples(naive_lifetimes, 24.0);

    const auto km_pts = survival::kaplan_meier(data).cdf_points();
    const auto km_fit = fit::fit_bathtub(km_pts.t, km_pts.f, 24.0);

    const auto mle = survival::fit_bathtub_mle(data);

    auto err = [&](const dist::Distribution& d) {
      return 100.0 * (d.mean() - truth_mean) / truth_mean;
    };
    table.add_row({bench::fmt(censored_pct, 1), bench::fmt(err(*naive.distribution), 1),
                   bench::fmt(err(*km_fit.distribution), 1),
                   bench::fmt(err(*mle.distribution), 1)});
  }
  std::cout << table << "\n";

  bench::print_claim(
      "(extension; no paper counterpart) ECDF fitting degrades with campaign "
      "censoring while KM-corrected LS and censored MLE stay calibrated",
      "see error columns: naive error grows with censored fraction, the "
      "censoring-aware columns stay within a few percent");
  return 0;
}
