// Figure 4 — impact of constrained preemptions on job running times.
//
// Reproduces:
//   4a: computation wasted by one preemption vs job length (bathtub/uniform);
//   4b: expected increase in running time vs job length.
// Paper claims: uniform waste = J/2 and increase = J^2/48; bathtub crosses
// over near 5 h; a 10 h job gains ~30 min (vs ~2 h uniform); waste reduction
// reaches ~40x for long jobs.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dist/uniform.hpp"
#include "policy/running_time.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 4", "wasted computation and expected runtime increase");

  const auto bathtub = trace::ground_truth_distribution(bench::headline_regime());
  const dist::UniformLifetime uniform(24.0);

  Table table({"job_hours", "waste_bathtub_h", "waste_uniform_h", "increase_bathtub_h",
               "increase_uniform_h", "uniform_over_bathtub"},
              "Fig. 4a (waste given one preemption) and 4b (expected increase)");
  for (double j = 1.0; j <= 24.0; j += 1.0) {
    const double wb = policy::expected_wasted_work_single(bathtub, std::min(j, 23.9));
    const double wu = policy::expected_wasted_work_single(uniform, j);
    const double ib = policy::expected_increase(bathtub, j);
    const double iu = policy::expected_increase(uniform, j);
    table.add_row({bench::fmt(j, 1), bench::fmt(wb, 3), bench::fmt(wu, 3), bench::fmt(ib, 3),
                   bench::fmt(iu, 3), bench::fmt(iu / ib, 1)});
  }
  std::cout << table << "\n";

  const double crossover = policy::crossover_job_length(bathtub, uniform);
  const double inc10_b = policy::expected_increase(bathtub, 10.0);
  const double inc10_u = policy::expected_increase(uniform, 10.0);
  const double ratio20 = policy::expected_increase(uniform, 20.0) /
                         policy::expected_increase(bathtub, 20.0);

  bench::print_claim(
      "crossover at ~5 h; 10 h job: ~0.5 h increase (bathtub) vs ~2 h "
      "(uniform); waste reduction between 1x-40x",
      "crossover=" + bench::fmt(crossover, 2) + " h; 10 h job increase: bathtub=" +
          bench::fmt(inc10_b, 2) + " h vs uniform=" + bench::fmt(inc10_u, 2) +
          " h (ratio " + bench::fmt(inc10_u / inc10_b, 1) + "x); 20 h job ratio=" +
          bench::fmt(ratio20, 1) + "x");
  return 0;
}
