// Recorded fleet-simulator performance baseline (BENCH_fleet.json).
//
// Measures (a) the calendar-queue event loop before and after the intrusive
// tombstone rework — the "before" is an inline copy of the old hash-map
// cancellation scheme (id -> callback map, erased on cancel/execute) — on a
// schedule/cancel-heavy workload, and (b) end-to-end fleet simulation
// throughput in tasks/s on a burst-cycle workload under the paper's headline
// preemption regime. Writes the numbers to a JSON file so CI can archive a
// per-machine baseline.
//
// Usage: bench_fleet_throughput [--smoke] [--out PATH]
//   --smoke   small event/fleet sizes (CI); --out defaults to BENCH_fleet.json
#include <cstring>
#include <fstream>
#include <iostream>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/stopwatch.hpp"
#include "fleet/simulation.hpp"
#include "sim/simulator.hpp"
#include "trace/ground_truth.hpp"

namespace {

using namespace preempt;

/// The pre-rework event core: a binary heap of entries plus an id -> callback
/// hash map; cancel() erases from the map and run() skips entries whose id no
/// longer resolves. Kept here verbatim as the benchmark baseline.
class LegacySimulator {
 public:
  std::uint64_t schedule_at(double when, sim::EventCallback callback, int priority = 0) {
    const std::uint64_t id = next_id_++;
    queue_.push(Entry{when, priority, next_sequence_++, id});
    callbacks_.emplace(id, std::move(callback));
    return id;
  }

  void cancel(std::uint64_t event_id) { callbacks_.erase(event_id); }

  std::uint64_t run() {
    std::uint64_t count = 0;
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      const auto it = callbacks_.find(top.id);
      if (it == callbacks_.end()) continue;  // cancelled
      sim::EventCallback callback = std::move(it->second);
      callbacks_.erase(it);
      now_ = std::max(now_, top.time);
      callback();
      ++count;
    }
    return count;
  }

 private:
  struct Entry {
    double time;
    int priority;
    std::uint64_t sequence;
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return sequence > other.sequence;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, sim::EventCallback> callbacks_;
};

/// Schedule `n` events across a wide time range, cancel every other one, and
/// drain — the cancel-heavy pattern migrations and preemptions produce.
template <typename Simulator>
double events_per_sec(std::size_t n, double* sink) {
  Simulator sim;
  std::vector<std::uint64_t> ids;
  ids.reserve(n);
  long counter = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(sim.schedule_at(static_cast<double>(i % 9973), [&counter] { ++counter; }));
  }
  for (std::size_t i = 0; i < n; i += 2) sim.cancel(ids[i]);
  sim.run();
  const double seconds = sw.elapsed_seconds();
  *sink += static_cast<double>(counter);
  return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
}

/// A scaled fleet-burst-cycle shape: two machine classes, a strict bursty
/// tier and a best-effort steady filler.
fleet::FleetSpec fleet_spec(double scale) {
  fleet::FleetSpec spec;
  fleet::MachineClass standard;
  standard.name = "standard-16";
  standard.count = static_cast<std::size_t>(600 * scale);
  standard.cores = 16;
  standard.memory_mb = 32768.0;
  fleet::MachineClass highcpu = standard;
  highcpu.name = "highcpu-32";
  highcpu.count = static_cast<std::size_t>(400 * scale);
  highcpu.cores = 32;
  highcpu.memory_mb = 16384.0;
  highcpu.mips = {3500.0, 3000.0, 2500.0, 2000.0};
  highcpu.p_state_power_w = {14.0, 10.0, 7.0, 5.0};
  spec.machines = {standard, highcpu};

  fleet::TaskClass interactive;
  interactive.name = "interactive";
  interactive.sla = fleet::SlaTier::kSla0;
  interactive.pattern = fleet::ArrivalPattern::kBurstCycle;
  interactive.interarrival_hours = 0.0004 / scale;
  interactive.runtime_hours = 0.05;
  interactive.memory_mb = 512.0;
  fleet::TaskClass batch;
  batch.name = "batch";
  batch.sla = fleet::SlaTier::kSla3;
  batch.pattern = fleet::ArrivalPattern::kSteady;
  batch.interarrival_hours = 0.0006 / scale;
  batch.runtime_hours = 0.2;
  batch.memory_mb = 2048.0;
  spec.tasks = {interactive, batch};
  spec.placement = "mbfd";
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_fleet.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  bench::print_header("FLEET", "event-core tombstone rework + fleet throughput");

  double sink = 0.0;
  const std::size_t n_events = smoke ? 100000 : 1000000;
  const double legacy_rate = events_per_sec<LegacySimulator>(n_events, &sink);
  const double tombstone_rate = events_per_sec<sim::Simulator>(n_events, &sink);
  const double speedup = legacy_rate > 0.0 ? tombstone_rate / legacy_rate : 0.0;

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const fleet::FleetSpec spec = fleet_spec(smoke ? 0.05 : 1.0);
  Stopwatch sw;
  const fleet::FleetReport report = fleet::simulate_fleet(spec, 2020, &truth);
  const double fleet_seconds = sw.elapsed_seconds();
  const double tasks_per_sec =
      fleet_seconds > 0.0 ? static_cast<double>(report.tasks_submitted) / fleet_seconds : 0.0;
  sink += report.total_energy_kwh;

  std::cout << "events/s, hash-map cancel (before)    : " << bench::fmt(legacy_rate / 1e6, 3)
            << " M\n"
            << "events/s, tombstone slots (after)     : " << bench::fmt(tombstone_rate / 1e6, 3)
            << " M\n"
            << "fleet machines | tasks                : " << report.machines << " | "
            << report.tasks_submitted << "\n"
            << "fleet simulation tasks/s              : " << bench::fmt(tasks_per_sec, 0)
            << "\n";
  bench::print_claim("tombstone event slots keep cancel-heavy runs ahead of the hash-map scheme",
                     "speedup = " + bench::fmt(speedup, 2) + "x");

  JsonObject doc;
  doc.emplace_back("benchmark", JsonValue("fleet_throughput"));
  doc.emplace_back("smoke", JsonValue(smoke));
  doc.emplace_back("events", JsonValue(static_cast<double>(n_events)));
  doc.emplace_back("legacy_events_per_sec", JsonValue(legacy_rate));
  doc.emplace_back("tombstone_events_per_sec", JsonValue(tombstone_rate));
  doc.emplace_back("speedup_tombstone_vs_legacy", JsonValue(speedup));
  doc.emplace_back("fleet_machines", JsonValue(static_cast<double>(report.machines)));
  doc.emplace_back("fleet_tasks", JsonValue(static_cast<double>(report.tasks_submitted)));
  doc.emplace_back("fleet_seconds", JsonValue(fleet_seconds));
  doc.emplace_back("fleet_tasks_per_sec", JsonValue(tasks_per_sec));
  doc.emplace_back("checksum", JsonValue(sink));  // keeps the loops observable

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
