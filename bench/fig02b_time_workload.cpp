// Figure 2b — variations due to time of day and workload.
//
// Reproduces: lifetime CDFs for idle/non-idle VMs and day/night launches.
// Paper claim (Observation 5): "VMs have a slightly longer lifetime during
// the night ... idle VMs have longer lifetimes than VMs running some
// workload."
#include <iostream>

#include "bench_util.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/empirical.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 2b", "lifetime CDFs by time-of-day and workload");

  trace::RegimeKey base = bench::headline_regime();

  auto key_with = [&base](trace::DayPeriod period, trace::WorkloadKind workload) {
    trace::RegimeKey k = base;
    k.period = period;
    k.workload = workload;
    return k;
  };

  struct Series {
    std::string label;
    trace::RegimeKey key;
  };
  const std::vector<Series> series = {
      {"idle", key_with(trace::DayPeriod::kDay, trace::WorkloadKind::kIdle)},
      {"non-idle", key_with(trace::DayPeriod::kDay, trace::WorkloadKind::kBatch)},
      {"night", key_with(trace::DayPeriod::kNight, trace::WorkloadKind::kBatch)},
      {"day", key_with(trace::DayPeriod::kDay, trace::WorkloadKind::kBatch)},
  };

  std::vector<dist::EmpiricalDistribution> ecdfs;
  std::vector<std::string> header = {"t_hours"};
  std::uint64_t seed = 7000;
  for (const Series& s : series) {
    ecdfs.emplace_back(trace::generate_campaign({s.key, 200, ++seed}).lifetimes());
    header.push_back(s.label);
  }

  Table table(header, "CDF of time to preemption");
  for (double t : linspace(0.0, 24.0, 25)) {
    std::vector<std::string> row = {bench::fmt(t, 1)};
    for (const auto& e : ecdfs) row.push_back(bench::fmt(e.cdf(t), 3));
    table.add_row(std::move(row));
  }
  std::cout << table << "\n";

  const double mean_idle = mean(ecdfs[0].sorted_samples());
  const double mean_busy = mean(ecdfs[1].sorted_samples());
  const double mean_night = mean(ecdfs[2].sorted_samples());
  const double mean_day = mean(ecdfs[3].sorted_samples());
  bench::print_claim(
      "night launches and idle VMs live longer than day launches / busy VMs",
      "mean lifetime (h): idle=" + bench::fmt(mean_idle, 2) +
          " vs non-idle=" + bench::fmt(mean_busy, 2) +
          "; night=" + bench::fmt(mean_night, 2) + " vs day=" + bench::fmt(mean_day, 2));
  return 0;
}
