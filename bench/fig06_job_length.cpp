// Figure 6 — job failure probability for jobs of different lengths.
//
// Reproduces: failure probability averaged across start times, memoryless vs
// model-driven.
// Paper claim: "For all but the shortest and longest jobs, the failure
// probability with our policy is half of that of existing memoryless
// policies."
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/scheduling.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 6", "average failure probability vs job length");

  const auto truth = trace::ground_truth_distribution(bench::headline_regime());
  const policy::ModelDrivenScheduler ours(truth.clone());
  const policy::MemorylessScheduler memoryless(truth.clone());

  Table table({"job_hours", "memoryless", "our_policy", "ratio"},
              "P(job failure), averaged over start times in [0, 24)");
  double mid_ratio_sum = 0.0;
  int mid_count = 0;
  for (double j = 1.0; j <= 23.0; j += 1.0) {
    const double a = ours.average_failure_probability(j);
    const double b = memoryless.average_failure_probability(j);
    table.add_row({bench::fmt(j, 1), bench::fmt(b, 3), bench::fmt(a, 3), bench::fmt(a / b, 2)});
    if (j >= 5.0 && j <= 14.0) {
      mid_ratio_sum += a / b;
      ++mid_count;
    }
  }
  std::cout << table << "\n";

  bench::print_claim(
      "our policy halves the failure probability for all but the shortest "
      "and longest jobs",
      "mean ours/memoryless ratio over 5-14 h jobs = " +
          bench::fmt(mid_ratio_sum / mid_count, 2) + " (0.5 = exactly half)");
  return 0;
}
