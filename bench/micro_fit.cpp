// Micro benchmarks: model-fitting throughput (google-benchmark).
//
// The paper's service refits models continuously from fresh preemption data
// (Sec. 8 "a long-running cloud service can continuously update the model"),
// so fitting cost matters operationally.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "dist/empirical.hpp"
#include "fit/model_fitters.hpp"

namespace {

using namespace preempt;

std::vector<double> sample(std::size_t n) { return bench::headline_sample(n, 99); }

void BM_FitBathtub(benchmark::State& state) {
  const auto lifetimes = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_bathtub_to_samples(lifetimes, 24.0));
  }
}
BENCHMARK(BM_FitBathtub)->Arg(100)->Arg(400)->Arg(1600)->Unit(benchmark::kMillisecond);

void BM_FitAllFamilies(benchmark::State& state) {
  const auto lifetimes = sample(400);
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit::fit_all_families(pts.t, pts.f, 24.0));
  }
}
BENCHMARK(BM_FitAllFamilies)->Unit(benchmark::kMillisecond);

void BM_EcdfConstruction(benchmark::State& state) {
  const auto lifetimes = sample(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    dist::EmpiricalDistribution ecdf(lifetimes);
    benchmark::DoNotOptimize(ecdf.ecdf_points());
  }
}
BENCHMARK(BM_EcdfConstruction)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_BathtubCdf(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    if (t > 24.0) t = 0.0;
    benchmark::DoNotOptimize(d.cdf(t));
  }
}
BENCHMARK(BM_BathtubCdf);

void BM_BathtubPartialExpectation(benchmark::State& state) {
  const auto d = trace::ground_truth_distribution(bench::headline_regime());
  double a = 0.0;
  for (auto _ : state) {
    a += 0.001;
    if (a > 12.0) a = 0.0;
    benchmark::DoNotOptimize(d.partial_expectation(a, a + 6.0));
  }
}
BENCHMARK(BM_BathtubPartialExpectation);

}  // namespace
