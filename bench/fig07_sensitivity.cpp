// Figure 7 — impact of suboptimal bathtub model parameters on scheduling.
//
// Reproduces: average job failure probability with (a) the memoryless policy,
// (b) the best-fit bathtub model and (c) a deliberately wrong bathtub model
// (n1-highcpu-16 parameters applied to n1-highcpu-32 VMs).
// Paper claims: the suboptimal model costs < 2% extra failures vs best fit
// and still beats memoryless by >= 15%.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "policy/scheduling.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 7", "sensitivity of the scheduling policy to model misfit");

  // Truth: n1-highcpu-32 behaviour; misfit model: n1-highcpu-16 parameters.
  trace::RegimeKey key32 = bench::headline_regime();
  key32.type = trace::VmType::kN1Highcpu32;
  key32.zone = trace::Zone::kUsCentral1C;  // Fig. 2a's zone
  const auto truth32 = trace::ground_truth_distribution(key32);
  trace::RegimeKey key16 = key32;
  key16.type = trace::VmType::kN1Highcpu16;
  const auto model16 = trace::ground_truth_distribution(key16);

  const policy::MemorylessScheduler memoryless(truth32.clone());
  const policy::ModelDrivenScheduler best_fit(truth32.clone(), truth32.clone());
  const policy::ModelDrivenScheduler suboptimal(model16.clone(), truth32.clone());

  Table table({"job_hours", "memoryless", "best_fit", "suboptimal", "sub_minus_best"},
              "P(job failure), averaged over start times");
  double max_delta = 0.0;
  double worst_vs_memoryless = 0.0;
  for (double j = 1.0; j <= 23.0; j += 1.0) {
    const double m = memoryless.average_failure_probability(j);
    const double b = best_fit.average_failure_probability(j);
    const double s = suboptimal.average_failure_probability(j);
    table.add_row({bench::fmt(j, 1), bench::fmt(m, 3), bench::fmt(b, 3), bench::fmt(s, 3),
                   bench::fmt(s - b, 4)});
    max_delta = std::max(max_delta, s - b);
    if (j >= 2.0 && j <= 20.0) worst_vs_memoryless = std::max(worst_vs_memoryless, s / m);
  }
  std::cout << table << "\n";

  bench::print_claim(
      "suboptimal bathtub parameters increase failure probability by < 2% "
      "over the best fit, and still reduce it >= 15% vs memoryless",
      "max(suboptimal - best_fit) = " + bench::fmt(max_delta * 100.0, 2) +
          " percentage points; worst suboptimal/memoryless ratio (2-20 h) = " +
          bench::fmt(worst_vs_memoryless, 2));
  return 0;
}
