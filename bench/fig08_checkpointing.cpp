// Figure 8 — checkpointing effectiveness.
//
// Reproduces:
//   8a: expected % increase in running time vs job start time (4 h job),
//       model-driven DP schedule vs Young-Daly with MTTF = 1 h;
//   8b: expected % increase vs job length at start time 0.
// Paper claims: our policy stays < 5% (≈1% mid-life); Young-Daly sits at a
// constant ~25%; for jobs started at 0 ours is ~10% for short jobs and ~3%
// on average for longer ones.
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "dist/exponential.hpp"
#include "dist/truncated.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

int main() {
  using namespace preempt;
  bench::print_header("Fig. 8", "checkpointing: model-driven DP vs Young-Daly");

  // The experiment's configuration — ground-truth law, DP grid, Young-Daly
  // MTTF, Monte-Carlo runs/seed — comes from the scenario registry entry;
  // the grids swept below are the figure's axes.
  const scenario::ScenarioSpec spec =
      scenario::find_builtin("paper-fig08-checkpointing")->sweep.base;
  const auto truth_ptr = scenario::make_ground_truth(spec);
  const dist::Distribution& truth = *truth_ptr;
  const policy::CheckpointConfig cfg = scenario::checkpoint_config(spec);
  const double kMttfYoungDaly = spec.mttf_hours;  // "an MTTF of 1 hour" (Sec. 6.2.2)
  const double kDelta = spec.checkpoint_cost_hours;

  // One value table covers every job length up to 9 h (the Fig. 8b range).
  const policy::CheckpointDp dp(truth, 9.0, cfg);

  // The memoryless baseline's own world-view: exponential failures with
  // MTTF = 1 h (constrained to the 24 h horizon). The paper's flat ~25% line
  // is this self-assessment; "yd_under_truth" evaluates the same plan under
  // the actual bathtub distribution.
  const dist::TruncatedDistribution yd_world(
      std::make_unique<dist::Exponential>(1.0 / kMttfYoungDaly), 24.0);

  // --- Fig. 8a: 4 h job, varying start time --------------------------------
  Table fig8a({"start_hours", "ours_pct", "young_daly_pct", "yd_under_truth_pct"},
              "Fig. 8a: % increase in running time, 4 h job");
  const policy::CheckpointPlan yd4 = policy::young_daly_plan(4.0, kMttfYoungDaly, kDelta);
  double ours_mid = 0.0, yd_mid = 0.0;
  for (double s = 0.0; s <= 16.0; s += 1.0) {
    const double ours = (dp.expected_makespan_partial(4.0, s) - 4.0) / 4.0 * 100.0;
    const double yd_self = (policy::evaluate_plan(yd_world, yd4, s, cfg) - 4.0) / 4.0 * 100.0;
    const double yd_truth = (policy::evaluate_plan(truth, yd4, s, cfg) - 4.0) / 4.0 * 100.0;
    fig8a.add_row({bench::fmt(s, 1), bench::fmt(ours, 2), bench::fmt(yd_self, 2),
                   bench::fmt(yd_truth, 2)});
    if (s >= 5.0 && s <= 15.0) {
      ours_mid = std::max(ours_mid, ours);
      yd_mid = std::max(yd_mid, yd_self);
    }
  }
  std::cout << fig8a << "\n";

  // --- Fig. 8b: jobs start at VM-time 0, varying length --------------------
  Table fig8b({"job_hours", "ours_pct", "young_daly_pct", "ours_mc_pct", "mc_ci95_pct"},
              "Fig. 8b: % increase in running time, start time = 0");
  double ours_total = 0.0;
  int count = 0;
  for (double j = 1.0; j <= 9.0; j += 1.0) {
    const double ours = (dp.expected_makespan_partial(j, 0.0) - j) / j * 100.0;
    const policy::CheckpointPlan yd = policy::young_daly_plan(j, kMttfYoungDaly, kDelta);
    const double theirs = (policy::evaluate_plan(yd_world, yd, 0.0, cfg) - j) / j * 100.0;
    // Monte-Carlo validation of the DP schedule under the true multi-failure
    // semantics (fresh VM per restart).
    policy::CheckpointPlan dp_plan;
    dp_plan.checkpoint_cost_hours = kDelta;
    dp_plan.work_segments_hours = dp.schedule_partial(j, 0.0);
    policy::SimulationOptions sim_opts;
    sim_opts.runs = spec.replications;
    sim_opts.seed = spec.seed;
    const policy::SimulatedMakespan sim_res = policy::simulate_plan(truth, dp_plan, sim_opts);
    const double mc = (sim_res.mean_hours - j) / j * 100.0;
    const double mc_ci = sim_res.ci95_half_hours / j * 100.0;
    fig8b.add_row({bench::fmt(j, 1), bench::fmt(ours, 2), bench::fmt(theirs, 2),
                   bench::fmt(mc, 2), "+/-" + bench::fmt(mc_ci, 2)});
    ours_total += ours;
    ++count;
  }
  std::cout << fig8b << "\n";

  const double yd_flat =
      (policy::evaluate_plan(yd_world, yd4, 0.0, cfg) - 4.0) / 4.0 * 100.0;
  bench::print_claim(
      "ours < 5% (about 1% mid-life) vs Young-Daly ~25%; at start 0 ours is "
      "~10% for short jobs, ~3% average for longer jobs",
      "4 h job mid-life: ours <= " + bench::fmt(ours_mid, 2) + "% vs Young-Daly " +
          bench::fmt(yd_mid, 2) + "%; start-0 Young-Daly = " + bench::fmt(yd_flat, 1) +
          "%, ours average over 1-9 h = " + bench::fmt(ours_total / count, 2) + "%");
  return 0;
}
