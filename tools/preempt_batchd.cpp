// `preempt-batchd` — the batch-service controller daemon (paper Sec. 5).
//
//   preempt-batchd --port 8080              # serve until stdin closes / Ctrl-D
//   preempt-batchd --store jobs.jsonl       # persist bag jobs across restarts
//   preempt-batchd --self-check             # start, exercise the API, exit
//   preempt-batchd --self-check-shard       # 3-worker sharded sweep, one killed
//
// Endpoints are documented in src/api/service_daemon.hpp. Example session:
//   curl localhost:8080/healthz
//   curl 'localhost:8080/v1/models?type=n1-highcpu-16&zone=us-east1-b'
//   curl -X POST localhost:8080/v1/bags -d '{"app":"shapes","jobs":50,"vms":16}'
//   curl localhost:8080/v1/bags/1
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/api_client.hpp"
#include "api/http_client.hpp"
#include "api/service_daemon.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "shard/coordinator.hpp"
#include "shard/metrics.hpp"

namespace {

/// Probe every /v1 route (including the async bag flow), the deprecated
/// /api/* aliases, and the router's error envelope through the typed client.
int self_check(preempt::api::ServiceDaemon& daemon) {
  using preempt::api::ApiClient;
  using preempt::api::http_get;
  using preempt::api::http_post;
  const ApiClient client(daemon.port());
  int failures = 0;
  auto check = [&](const std::string& what, bool ok) {
    std::cout << (ok ? "  ok  " : " FAIL ") << what << "\n";
    if (!ok) ++failures;
  };

  check("GET /healthz", client.healthy());
  preempt::api::RegimeQuery model_query;
  model_query.type = "n1-highcpu-16";
  check("GET /v1/models", client.model(model_query).expected_lifetime_hours > 0.0);
  check("GET /v1/lifetimes", client.lifetime().mean_lifetime_hours > 0.0);
  check("GET /v1/decisions/reuse", client.reuse_decision(9.0, 6.0).expected_fresh_hours > 0.0);

  // Async bag lifecycle: 202 -> poll -> done, with replication statistics.
  preempt::api::BagSubmission submission;
  submission.app = "shapes";
  submission.jobs = 20;
  submission.vms = 8;
  submission.replications = 4;
  const auto queued = client.submit_bag(submission);
  check("POST /v1/bags -> 202 job resource", queued.id > 0 && !queued.status.empty());
  const auto done = client.wait_for_bag(queued.id, 120.0);
  check("async bag reaches done", done.status == "done" && done.report.has_value());
  check("replicated bag reports ci95",
        done.report && done.report->metrics.count("cost_per_job") > 0 &&
            done.report->metrics.at("cost_per_job").ci95 >= 0.0);
  check("GET /v1/bags pagination",
        client.list_bags("done", 1, 0).jobs.size() == 1 && client.list_bags().total >= 1);

  check("POST /v1/observations",
        client.observe_lifetimes({2.5, 11.0, 23.9, 16.2, 8.8}).observed == 5);
  check("GET /v1/portfolio",
        client.get_json("/v1/portfolio?jobs=50").number_or("markets_used", 0) >= 1);

  // Declarative scenario surface: the registry lists the paper setups and a
  // quick named scenario runs end to end on the async job queue.
  const auto scenario_list = client.scenarios();
  check("GET /v1/scenarios lists the paper setups",
        scenario_list.number_or("total", 0) >= 5 &&
            client.scenario("paper-fig09-quick").number_or("cells", 0) == 1);
  const auto scenario_job = client.run_scenario("paper-fig09-quick", R"({"replications":2})");
  const auto scenario_done = client.wait_for_bag(scenario_job.id, 120.0);
  // The 202 snapshot may already say "running" if a worker grabbed the job
  // first — only the terminal state is asserted.
  check("POST /v1/scenarios/{name}/run reaches done",
        scenario_job.id > 0 && !scenario_job.status.empty() &&
            scenario_done.status == "done" &&
            scenario_done.scenario == "paper-fig09-quick" &&
            scenario_done.scenario_result.is_object());

  // The fleet scenario kind rides the same async queue: a compact cluster
  // simulation runs end to end and reports the per-SLA violation block.
  const auto fleet_job = client.run_scenario("fleet-quick", R"({"replications":1})");
  const auto fleet_done = client.wait_for_bag(fleet_job.id, 120.0);
  const auto* fleet_report = fleet_done.scenario_result.find("report");
  check("POST /v1/scenarios/fleet-quick/run simulates the fleet",
        fleet_done.status == "done" && fleet_report != nullptr &&
            fleet_report->number_or("machines", 0) == 40 &&
            fleet_report->find("sla") != nullptr);

  // Deprecated aliases answer with the legacy payloads.
  check("GET /api/model (alias)", http_get(daemon.port(), "/api/model").status == 200);
  const auto legacy =
      http_post(daemon.port(), "/api/bags", R"({"app":"shapes","jobs":10,"vms":8})");
  check("POST /api/bags (sync alias) -> 201", legacy.status == 201);
  check("GET /api/bags/1 (alias)", http_get(daemon.port(), "/api/bags/1").status == 200);

  // Router error handling: envelope + metrics.
  check("404 routing", http_get(daemon.port(), "/nope").status == 404);
  check("405 method dispatch", http_post(daemon.port(), "/healthz", "").status == 405);
  bool envelope_ok = false;
  try {
    client.get_json("/v1/bags/notanumber");
  } catch (const preempt::api::ApiError& e) {
    envelope_ok = e.status() == 400 && e.code() == "invalid_argument";
  }
  check("error envelope carries code", envelope_ok);
  const auto metrics = client.metrics();
  bool counted = false;
  for (const auto& m : metrics) {
    if (m.route == "/v1/bags/{id}" && m.method == "GET" && m.requests > 0) counted = true;
  }
  check("GET /v1/metrics counts per route", counted);

  std::cout << (failures == 0 ? "self-check passed\n" : "self-check FAILED\n");
  return failures == 0 ? 0 : 1;
}

/// Kill-and-restart probe: run a bag to completion on a store-backed daemon,
/// tear the daemon down, start a fresh one on the same journal, and re-read
/// the finished job's report through the API. Uses its own journal file so it
/// cannot interleave with the main daemon's open store.
int restart_probe(preempt::api::ServiceDaemon::Options options, const std::string& store) {
  using preempt::api::ApiClient;
  options.store_path = store;
  int failures = 0;
  auto check = [&](const std::string& what, bool ok) {
    std::cout << (ok ? "  ok  " : " FAIL ") << what << "\n";
    if (!ok) ++failures;
  };

  std::uint64_t id = 0;
  std::size_t jobs_completed = 0;
  {
    preempt::api::ServiceDaemon daemon(options);
    daemon.start(0);
    const ApiClient client(daemon.port());
    preempt::api::BagSubmission submission;
    submission.app = "shapes";
    submission.jobs = 10;
    submission.vms = 8;
    const auto queued = client.submit_bag(submission);
    const auto done = client.wait_for_bag(queued.id, 120.0);
    id = queued.id;
    jobs_completed = done.report ? done.report->jobs_completed : 0;
    check("store-backed bag reaches done", done.status == "done" && jobs_completed > 0);
    daemon.stop();
  }  // daemon destroyed: the only copy of the report now lives in the journal

  {
    preempt::api::ServiceDaemon daemon(options);  // replays the journal
    daemon.start(0);
    const ApiClient client(daemon.port());
    const auto job = client.bag(id);
    check("restarted daemon re-serves the finished job from the store",
          job.status == "done" && job.report.has_value() &&
              job.report->jobs_completed == jobs_completed);
    daemon.stop();
  }
  std::remove(store.c_str());
  std::remove((store + ".tmp").c_str());
  return failures == 0 ? 0 : 1;
}

/// Sharded-sweep self check (src/shard): boot three in-process worker
/// daemons, scatter a six-cell sweep over them, kill worker 0 the moment its
/// first shard is accepted (so its work is provably in flight and
/// unreachable), and assert that the coordinator re-dispatches the dead
/// worker's shards and still produces a merged report byte-identical to the
/// single-node sweep.
int self_check_shard() {
  namespace scenario = preempt::scenario;
  namespace shard = preempt::shard;
  int failures = 0;
  auto check = [&](const std::string& what, bool ok) {
    std::cout << (ok ? "  ok  " : " FAIL ") << what << "\n";
    if (!ok) ++failures;
  };

  const scenario::NamedScenario* named = scenario::find_builtin("fleet-quick");
  if (named == nullptr) {
    std::cout << " FAIL fleet-quick scenario missing from the registry\n";
    return 1;
  }
  scenario::SweepSpec sweep = named->sweep;
  scenario::SweepAxis seeds;
  seeds.field = "seed";
  for (int s = 1; s <= 6; ++s) seeds.values.push_back(preempt::JsonValue(s));
  sweep.axes.push_back(std::move(seeds));

  // The ground truth the merge must match byte for byte.
  const std::string expected = scenario::to_json(scenario::run_sweep(sweep)).dump();

  shard::ShardMetricsRegistry::instance().reset();
  std::vector<std::unique_ptr<preempt::api::ServiceDaemon>> daemons;
  shard::CoordinatorOptions options;
  for (int i = 0; i < 3; ++i) {
    daemons.push_back(std::make_unique<preempt::api::ServiceDaemon>());
    daemons.back()->start(0);
    options.workers.push_back(daemons.back()->port());
  }
  const std::string victim = "127.0.0.1:" + std::to_string(options.workers[0]);

  options.shards = 6;  // two shards per worker; worker 0 always owns cells
  options.request_timeout_seconds = 5.0;
  bool killed = false;
  options.observer = [&](const shard::ShardEventInfo& event) {
    if (!killed && event.event == shard::ShardEvent::kDispatched && event.endpoint == victim) {
      killed = true;
      daemons[0]->stop();  // mid-sweep: its accepted shard can never be fetched
    }
  };

  shard::ShardCoordinator coordinator(std::move(options));
  const shard::ShardOutcome outcome = coordinator.run(sweep);

  check("worker 0 killed mid-sweep", killed);
  check("coordinator re-dispatched the dead worker's shards", outcome.redispatches >= 1);
  check("merged report complete despite the dead worker", outcome.complete);
  check("merged report byte-identical to the single-node sweep",
        outcome.report.dump() == expected);
  bool victim_retired = false;
  for (const shard::WorkerRunStats& w : outcome.workers) {
    if (w.endpoint == victim && !w.alive) victim_retired = true;
  }
  check("dead worker reported as retired", victim_retired);

  // The coordinator shares a process with the surviving daemons, so their
  // /v1/metrics export carries the shard counters.
  const preempt::api::ApiClient client(daemons[1]->port());
  const auto metrics = client.get_json("/v1/metrics");
  const auto* shard_metrics = metrics.find("shard");
  check("surviving daemon exports shard metrics",
        shard_metrics != nullptr && shard_metrics->number_or("shards_completed", 0) >= 6);

  for (std::size_t i = 1; i < daemons.size(); ++i) daemons[i]->stop();
  std::cout << (failures == 0 ? "shard self-check passed\n" : "shard self-check FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  preempt::FlagSet flags("preempt-batchd");
  flags.add_int("port", 0, "TCP port to bind on loopback (0 = ephemeral)");
  flags.add_int("seed", 2019, "bootstrap campaign seed");
  flags.add_int("http-workers", 4, "HTTP connection worker threads");
  flags.add_int("bag-workers", 2, "async bag simulation worker threads");
  flags.add_int("max-finished-jobs", 1024,
                "finished bag/scenario jobs retained (oldest evicted beyond this)");
  flags.add_string("store", "",
                   "persist bag jobs to this JSONL journal (replayed on startup)");
  flags.add_bool("self-check", "start, probe every endpoint, and exit");
  flags.add_bool("self-check-shard",
                 "run a 3-worker sharded sweep with one worker killed mid-sweep, and exit");
  try {
    flags.parse(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const preempt::Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  // Validate before the size_t casts: a negative count would wrap to ~2^64
  // and sail past the queues' `workers >= 1` preconditions into a
  // std::length_error from vector::reserve.
  const int http_workers = flags.get_int("http-workers");
  const int bag_workers = flags.get_int("bag-workers");
  const int max_finished_jobs = flags.get_int("max-finished-jobs");
  if (http_workers < 1 || bag_workers < 1) {
    std::cerr << "--http-workers and --bag-workers must be >= 1\n";
    return 2;
  }
  if (max_finished_jobs < 1) {
    std::cerr << "--max-finished-jobs must be >= 1\n";
    return 2;
  }

  if (flags.get_bool("self-check-shard")) {
    try {
      return self_check_shard();  // boots its own worker daemons
    } catch (const preempt::Error& e) {
      std::cerr << "preempt-batchd --self-check-shard: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    preempt::api::ServiceDaemon::Options options;
    options.bootstrap_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    options.http_workers = static_cast<std::size_t>(http_workers);
    options.bag_workers = static_cast<std::size_t>(bag_workers);
    options.max_finished_jobs = static_cast<std::size_t>(max_finished_jobs);
    options.store_path = flags.get_string("store");
    preempt::api::ServiceDaemon daemon(options);
    daemon.start(static_cast<std::uint16_t>(flags.get_int("port")));
    std::cout << "preempt-batchd listening on 127.0.0.1:" << daemon.port() << "\n";

    if (flags.get_bool("self-check")) {
      int rc = self_check(daemon);
      daemon.stop();
      // With persistence configured, also prove the journal survives a full
      // daemon restart (on a sibling store file, so it can't interleave with
      // the store the daemon above still had open).
      if (rc == 0 && !options.store_path.empty()) {
        rc = restart_probe(options, options.store_path + ".probe");
      }
      return rc;
    }

    std::cout << "serving until stdin closes (Ctrl-D to stop)\n";
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    daemon.stop();
    return 0;
  } catch (const preempt::Error& e) {
    std::cerr << "preempt-batchd: " << e.what() << "\n";
    return 1;
  }
}
