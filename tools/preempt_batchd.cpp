// `preempt-batchd` — the batch-service controller daemon (paper Sec. 5).
//
//   preempt-batchd --port 8080        # serve until stdin closes / Ctrl-D
//   preempt-batchd --self-check      # start, exercise the API, exit
//
// Endpoints are documented in src/api/service_daemon.hpp. Example session:
//   curl localhost:8080/healthz
//   curl 'localhost:8080/api/model?type=n1-highcpu-16&zone=us-east1-b'
//   curl -X POST localhost:8080/api/bags -d '{"app":"shapes","jobs":50,"vms":16}'
#include <iostream>
#include <string>
#include <vector>

#include "api/http_client.hpp"
#include "api/service_daemon.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

namespace {

int self_check(preempt::api::ServiceDaemon& daemon) {
  using preempt::api::http_get;
  using preempt::api::http_post;
  const std::uint16_t port = daemon.port();
  int failures = 0;
  auto check = [&](const std::string& what, bool ok) {
    std::cout << (ok ? "  ok  " : " FAIL ") << what << "\n";
    if (!ok) ++failures;
  };
  check("GET /healthz", http_get(port, "/healthz").status == 200);
  check("GET /api/model", http_get(port, "/api/model?type=n1-highcpu-16").status == 200);
  check("GET /api/decisions/reuse",
        http_get(port, "/api/decisions/reuse?age=9&job=6").status == 200);
  check("POST /api/bags",
        http_post(port, "/api/bags", R"({"app":"shapes","jobs":20,"vms":8})").status == 201);
  check("GET /api/bags/1", http_get(port, "/api/bags/1").status == 200);
  check("404 routing", http_get(port, "/nope").status == 404);
  std::cout << (failures == 0 ? "self-check passed\n" : "self-check FAILED\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  preempt::FlagSet flags("preempt-batchd");
  flags.add_int("port", 0, "TCP port to bind on loopback (0 = ephemeral)");
  flags.add_int("seed", 2019, "bootstrap campaign seed");
  flags.add_bool("self-check", "start, probe every endpoint, and exit");
  try {
    flags.parse(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const preempt::Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    preempt::api::ServiceDaemon::Options options;
    options.bootstrap_seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    preempt::api::ServiceDaemon daemon(options);
    daemon.start(static_cast<std::uint16_t>(flags.get_int("port")));
    std::cout << "preempt-batchd listening on 127.0.0.1:" << daemon.port() << "\n";

    if (flags.get_bool("self-check")) {
      const int rc = self_check(daemon);
      daemon.stop();
      return rc;
    }

    std::cout << "serving until stdin closes (Ctrl-D to stop)\n";
    std::string line;
    while (std::getline(std::cin, line)) {
    }
    daemon.stop();
    return 0;
  } catch (const preempt::Error& e) {
    std::cerr << "preempt-batchd: " << e.what() << "\n";
    return 1;
  }
}
