// Negative lint fixture: header without #pragma once. Never compiled.
#ifndef PREEMPT_LINT_FIXTURE_BAD_HEADER_HPP
#define PREEMPT_LINT_FIXTURE_BAD_HEADER_HPP

namespace preempt {
inline int fixture_header_value() { return 42; }
}  // namespace preempt

#endif
