// Fixture for the hot-path-libm rule: a sample_many body that burns one
// libm call per draw instead of going through the vkernel batch kernels.
#include <cmath>
#include <cstddef>

namespace preempt::dist {

class BadExponential {
 public:
  // Declaration alone must NOT fire — only a body can.
  void sample_many(double* out, std::size_t n) const;
};

void BadExponential::sample_many(double* out, std::size_t n) const {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = -std::log(1.0 - 0.5);  // should be vk::log1p_many on the batch
  }
  out[0] += std::exp(-1.0);  // lint: allow(hot-path-libm)  waived line stays quiet
}

}  // namespace preempt::dist
