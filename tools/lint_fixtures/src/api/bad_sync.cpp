// Negative lint fixture: raw synchronisation primitives, a swallowed
// catch-all and a parent-relative include. Never compiled.
#include "../common/bad_header.hpp"

#include <mutex>

namespace preempt::api {

// raw-sync: should be preempt::Mutex / preempt::LockGuard.
std::mutex fixture_mutex;

void fixture_swallow() {
  try {
    fixture_locked_work();
  } catch (...) {
    // catch-all: silently dropped — no rethrow, no capture, no log.
  }
}

void fixture_locked_work() {
  const std::lock_guard<std::mutex> lock(fixture_mutex);
}

}  // namespace preempt::api
