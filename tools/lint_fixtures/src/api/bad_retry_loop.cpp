// Negative lint fixture: a hand-rolled retry loop around an ApiClient call.
// Retries belong to the shard coordinator (src/shard/), which owns the
// deadline, backoff and hedging policy. Never compiled.
#include "api/api_client.hpp"

namespace preempt::api {

// retry-loop: catches the client failure inside the loop and spins again
// with its own ad-hoc policy instead of going through the coordinator.
JsonValue fixture_naive_retry(ApiClient& client) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      return client.get_json("/healthz");
    } catch (const IoError&) {
      // swallow and retry with no backoff, no deadline, no jitter
    }
  }
  throw IoError("gave up");
}

}  // namespace preempt::api
