// Negative lint fixture: wall-clock reads inside a determinism zone.
// Never compiled — tools/lint_fixtures/ exists only so that
// `lint_checks.py --self-test` can prove the rules still fire.
#include <chrono>

namespace preempt::sim {

double fixture_wallclock_leak() {
  // wallclock: simulated time must come from the event clock.
  const auto t = std::chrono::steady_clock::now();
  const auto w = std::chrono::system_clock::now();
  return static_cast<double>(t.time_since_epoch().count() + w.time_since_epoch().count());
}

}  // namespace preempt::sim
