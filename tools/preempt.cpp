// `preempt` — command-line front end for libpreempt.
//
//   preempt generate --type n1-highcpu-16 --count 200 > campaign.csv
//   preempt fit --input campaign.csv --extended
//   preempt checkpoint --job 5 --delta-min 1
//   preempt simulate --app nanoconfinement --jobs 100 --vms 32
//
// All logic lives in src/cli (testable); this file only adapts argv.
#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return preempt::cli::run_cli(args, std::cout, std::cerr);
}
