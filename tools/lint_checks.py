#!/usr/bin/env python3
"""Repo lint rules clang-tidy cannot express.

Rules (each can be waived on one line with `// lint: allow(<rule>)`):

  raw-sync        No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock / std::shared_mutex / std::condition_variable
                  in src/ outside common/thread_annotations.{hpp,cpp} — all
                  locking goes through the annotated preempt::Mutex wrappers so
                  clang's -Wthread-safety and the lock-order checker see it.
  wallclock       No argless system_clock::now() / steady_clock::now() inside
                  the determinism zones src/sim/ and src/fleet/: simulated time
                  comes from the event clock, and a wall-clock read there is a
                  reproducibility bug by construction.
  catch-all       No `catch (...)` that swallows silently: the handler body
                  must rethrow, stash the exception (std::current_exception),
                  or log through PREEMPT_LOG_*.
  pragma-once     Every header in src/ starts its preprocessor life with
                  `#pragma once`.
  parent-include  No `#include "../..."` — includes are rooted at src/ so the
                  same header is never spelled two ways.
  retry-loop      No hand-rolled retry loop around ApiClient / HTTP helper
                  calls (a for/while whose body both calls the client and
                  catches the failure) outside src/shard/ — retry, backoff and
                  hedging live in the shard coordinator so every caller gets
                  the same deadline and jitter policy instead of its own.
  hot-path-libm   No per-draw std::exp / std::log / std::pow family calls
                  inside a sample_many body under src/dist/ — batched draws go
                  through the lane-exact kernels in common/vkernel.hpp so the
                  scalar and SIMD paths stay bit-identical and the batch rate
                  does not quietly fall back to one libm call per draw.

Exit status: 0 when clean, 1 when violations are found (they are printed as
file:line: rule: message, one per line).

`--self-test` runs the same rules over tools/lint_fixtures/ — a deliberately
bad file set — and fails unless EVERY rule fires there, so a regression that
silently disables a rule breaks CI instead of going unnoticed.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Files allowed to touch raw std synchronisation primitives: the annotated
# wrapper itself and its checker implementation.
RAW_SYNC_ALLOWED = {
    "src/common/thread_annotations.hpp",
    "src/common/thread_annotations.cpp",
}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock|condition_variable(_any)?)\b"
)
WALLCLOCK_RE = re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)::now\(\)")
CATCH_ALL_RE = re.compile(r"catch\s*\(\s*\.\.\.\s*\)")
PARENT_INCLUDE_RE = re.compile(r'#\s*include\s+"\.\./')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
ALLOW_RE = re.compile(r"//\s*lint:\s*allow\((?P<rule>[a-z-]+)\)")

DETERMINISM_ZONES = ("src/sim/", "src/fleet/")

# The shard coordinator is the one sanctioned retry/backoff implementation;
# everywhere else a loop that catches client errors and spins again is a
# policy fork waiting to disagree about deadlines.
RETRY_LOOP_EXEMPT = ("src/shard/",)

# Batched sampling bodies must use the vkernel batch primitives; a stray
# libm call there is a silent 3-4x throughput loss and a scalar/SIMD
# bit-identity hazard. Scoped to src/dist/ sample_many definitions.
HOT_PATH_DIRS = ("src/dist/",)
SAMPLE_MANY_RE = re.compile(r"\bsample_many\s*\(")
HOT_LIBM_RE = re.compile(r"\bstd::(exp|exp2|expm1|log|log2|log10|log1p|pow)\s*\(")

LOOP_HEAD_RE = re.compile(r"\b(?:for|while)\s*\(")
CLIENT_CALL_RE = re.compile(
    r"\bhttp_(?:request|get|post)\s*\("
    r"|\.\s*(?:get_json|post_json|run_scenario|run_cells|submit_bag|wait_for_bag)\s*\("
)


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of // comments and string literal bodies."""
    line = re.sub(r'"(\\.|[^"\\])*"', '""', line)
    line = re.sub(r"//.*$", "", line)
    return line


def find_matching_brace(text: str, open_idx: int) -> int:
    """Index just past the brace matching text[open_idx] ('{'); len() if unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def find_matching_paren(text: str, open_idx: int) -> int:
    """Index just past the paren matching text[open_idx] ('('); len() if unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


class Linter:
    def __init__(self) -> None:
        self.violations: list[tuple[str, int, str, str]] = []
        self.rules_fired: set[str] = set()

    def report(self, path: str, line_no: int, rule: str, message: str) -> None:
        self.violations.append((path, line_no, rule, message))
        self.rules_fired.add(rule)

    def allowed(self, line: str, rule: str) -> bool:
        m = ALLOW_RE.search(line)
        return bool(m) and m.group("rule") == rule

    def lint_file(self, root: Path, path: Path) -> None:
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()

        # pragma-once: every header carries the directive (a comment merely
        # mentioning it does not count — the regex wants a real directive line).
        if path.suffix in (".hpp", ".h") and not PRAGMA_ONCE_RE.search(text):
            self.report(rel, 1, "pragma-once", "header lacks #pragma once")

        for i, raw_line in enumerate(lines, start=1):
            line = strip_comments_and_strings(raw_line)

            if RAW_SYNC_RE.search(line) and rel not in RAW_SYNC_ALLOWED:
                if not self.allowed(raw_line, "raw-sync"):
                    self.report(
                        rel, i, "raw-sync",
                        f"raw {RAW_SYNC_RE.search(line).group(0)} — use the annotated "
                        "wrappers from common/thread_annotations.hpp",
                    )

            if rel.startswith(DETERMINISM_ZONES) and WALLCLOCK_RE.search(line):
                if not self.allowed(raw_line, "wallclock"):
                    self.report(
                        rel, i, "wallclock",
                        f"{WALLCLOCK_RE.search(line).group(0)} inside a determinism zone — "
                        "simulation time must come from the event clock",
                    )

            # Checked on the raw line: the include path is a string literal,
            # which strip_comments_and_strings would blank out.
            if PARENT_INCLUDE_RE.search(raw_line):
                if not self.allowed(raw_line, "parent-include"):
                    self.report(
                        rel, i, "parent-include",
                        'parent-relative #include "../..." — include paths are rooted at src/',
                    )

        self.lint_catch_all(rel, text, lines)
        self.lint_retry_loop(rel, text, lines)
        self.lint_hot_path_libm(rel, text, lines)

    def lint_hot_path_libm(self, rel: str, text: str, lines: list[str]) -> None:
        if not rel.startswith(HOT_PATH_DIRS):
            return
        for m in SAMPLE_MANY_RE.finditer(text):
            params_end = find_matching_paren(text, text.index("(", m.start()))
            # A definition's body follows the parameter list after optional
            # qualifiers; declarations (`;`) and call sites never match.
            rest = text[params_end:].lstrip()
            changed = True
            while changed:
                changed = False
                for tok in ("const", "noexcept", "override", "final"):
                    if rest.startswith(tok):
                        rest = rest[len(tok):].lstrip()
                        changed = True
            if not rest.startswith("{"):
                continue
            open_idx = len(text) - len(rest)
            body_end = find_matching_brace(text, open_idx)
            for call in HOT_LIBM_RE.finditer(text, open_idx, body_end):
                line_no = text.count("\n", 0, call.start()) + 1
                raw_line = lines[line_no - 1] if line_no <= len(lines) else ""
                if self.allowed(raw_line, "hot-path-libm"):
                    continue
                if not HOT_LIBM_RE.search(strip_comments_and_strings(raw_line)):
                    continue  # the match sat in a comment or string
                self.report(
                    rel, line_no, "hot-path-libm",
                    f"{call.group(0).rstrip('(').strip()} in a sample_many body — "
                    "use the batch kernels from common/vkernel.hpp",
                )

    def lint_retry_loop(self, rel: str, text: str, lines: list[str]) -> None:
        if rel.startswith(RETRY_LOOP_EXEMPT):
            return
        for m in LOOP_HEAD_RE.finditer(text):
            line_no = text.count("\n", 0, m.start()) + 1
            if line_no <= len(lines) and self.allowed(lines[line_no - 1], "retry-loop"):
                continue
            cond_end = find_matching_paren(text, m.end() - 1)
            # Only braced loop bodies; requiring `{` right after the condition
            # also keeps the trailing `while (...)` of a do-while out of scope
            # (its body was already scanned at the `do`-side brace... which this
            # rule does not walk — a do/while retry reads as a while retry the
            # moment anyone reformats it, and none exist in-tree).
            rest = text[cond_end:]
            stripped = rest.lstrip()
            if not stripped.startswith("{"):
                continue
            open_idx = cond_end + (len(rest) - len(stripped))
            body = text[open_idx:find_matching_brace(text, open_idx)]
            body = "\n".join(strip_comments_and_strings(l) for l in body.splitlines())
            if "catch" in body and CLIENT_CALL_RE.search(body):
                self.report(
                    rel, line_no, "retry-loop",
                    "hand-rolled retry loop around a client call — route retries "
                    "through the shard coordinator (src/shard/) instead",
                )

    def lint_catch_all(self, rel: str, text: str, lines: list[str]) -> None:
        for m in CATCH_ALL_RE.finditer(text):
            line_no = text.count("\n", 0, m.start()) + 1
            if line_no <= len(lines) and self.allowed(lines[line_no - 1], "catch-all"):
                continue
            open_idx = text.find("{", m.end())
            if open_idx < 0:
                continue
            body = text[open_idx:find_matching_brace(text, open_idx)]
            # Comments don't handle exceptions: a body whose only mention of
            # "rethrow" is prose still swallows.
            body = "\n".join(strip_comments_and_strings(l) for l in body.splitlines())
            handles = any(
                marker in body
                for marker in ("throw", "rethrow_exception", "current_exception", "PREEMPT_LOG")
            )
            if not handles:
                self.report(
                    rel, line_no, "catch-all",
                    "catch (...) swallows the exception — rethrow, capture with "
                    "std::current_exception, or log it",
                )


def source_files(root: Path, subdirs: list[str]) -> list[Path]:
    out: list[Path] = []
    for sub in subdirs:
        base = root / sub
        if not base.exists():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in (".cpp", ".hpp", ".h") and "lint_fixtures" not in path.parts:
                out.append(path)
    return out


ALL_RULES = {"raw-sync", "wallclock", "catch-all", "pragma-once", "parent-include",
             "retry-loop", "hot-path-libm"}


def run_lint(root: Path, subdirs: list[str]) -> int:
    linter = Linter()
    files = source_files(root, subdirs)
    for path in files:
        linter.lint_file(root, path)
    for path, line_no, rule, message in linter.violations:
        print(f"{path}:{line_no}: {rule}: {message}")
    print(f"lint_checks: {len(files)} files, {len(linter.violations)} violation(s)")
    return 1 if linter.violations else 0


def run_self_test(root: Path) -> int:
    """The negative fixture must trip every rule — proves none went dead."""
    fixtures = root / "tools" / "lint_fixtures"
    linter = Linter()
    files = [p for p in sorted(fixtures.rglob("*")) if p.suffix in (".cpp", ".hpp", ".h")]
    if not files:
        print(f"lint_checks --self-test: no fixtures under {fixtures}", file=sys.stderr)
        return 1
    # The fixture tree mirrors the repo layout (tools/lint_fixtures/src/sim/...)
    # and is linted with the fixture dir as root, so path-scoped rules — the
    # determinism zones, the raw-sync allowlist — apply exactly as they would
    # to real sources.
    for path in files:
        linter.lint_file(fixtures, path)
    missing = ALL_RULES - linter.rules_fired
    for path, line_no, rule, message in linter.violations:
        print(f"[fixture] {path}:{line_no}: {rule}: {message}")
    if missing:
        print(f"lint_checks --self-test: rules never fired on the bad fixture: "
              f"{', '.join(sorted(missing))}", file=sys.stderr)
        return 1
    print(f"lint_checks --self-test: all {len(ALL_RULES)} rules fired on the fixture set")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--subdirs", nargs="*", default=["src", "tools"],
                        help="directories to lint (default: src tools)")
    parser.add_argument("--self-test", action="store_true",
                        help="lint tools/lint_fixtures/ and require every rule to fire")
    args = parser.parse_args()
    root = args.root.resolve()
    if args.self_test:
        return run_self_test(root)
    return run_lint(root, args.subdirs)


if __name__ == "__main__":
    sys.exit(main())
