// End-to-end tests of the `preempt` tool commands, driven through the same
// run_cli() entry point the binary uses (stdout/stderr captured).
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace preempt::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const Args& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

/// Temp file that cleans up after itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name) : path_("/tmp/preempt_cli_test_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CliDispatch, HelpAndUnknownCommands) {
  EXPECT_EQ(run({"help"}).code, 0);
  EXPECT_NE(run({"help"}).out.find("commands:"), std::string::npos);
  EXPECT_EQ(run({}).code, 2);
  const auto unknown = run({"frobnicate"});
  EXPECT_EQ(unknown.code, 2);
  EXPECT_NE(unknown.err.find("unknown command"), std::string::npos);
}

TEST(CliDispatch, LibraryErrorsBecomeExitCodeOne) {
  const auto r = run({"fit", "--input", "/tmp/definitely_missing_file.csv"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(CliDispatch, BadFlagValueIsReported) {
  const auto r = run({"generate", "--count", "many"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--count"), std::string::npos);
}

TEST(CliGenerate, EmitsParsableCsv) {
  const auto r = run({"generate", "--count", "50", "--seed", "5"});
  EXPECT_EQ(r.code, 0);
  // Header + 50 rows.
  EXPECT_EQ(static_cast<int>(std::count(r.out.begin(), r.out.end(), '\n')), 51);
  EXPECT_NE(r.out.find("lifetime_hours"), std::string::npos);
}

TEST(CliGenerate, WritesToFile) {
  TempFile file("gen.csv");
  const auto r = run({"generate", "--count", "30", "--out", file.path()});
  EXPECT_EQ(r.code, 0);
  std::ifstream in(file.path());
  ASSERT_TRUE(in.good());
  EXPECT_NE(r.err.find("30 records"), std::string::npos);
}

TEST(CliGenerate, HelpPrintsUsage) {
  const auto r = run({"generate", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("--count"), std::string::npos);
}

TEST(CliFitPipeline, GenerateThenFitFindsBathtub) {
  TempFile file("fit.csv");
  ASSERT_EQ(run({"generate", "--count", "200", "--seed", "11", "--out", file.path()}).code, 0);
  const auto r = run({"fit", "--input", file.path()});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("best fit: bathtub"), std::string::npos);
}

TEST(CliFit, BootstrapIntervalsBracketTheEstimate) {
  const auto r = run({"fit", "--count", "120", "--seed", "3", "--bootstrap", "30"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("bootstrap 95% CIs"), std::string::npos);
  EXPECT_NE(r.out.find("tau1"), std::string::npos);
}

TEST(CliFit, ExtendedAndMleOptions) {
  const auto r = run({"fit", "--count", "150", "--seed", "3", "--extended", "--mle"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("exponentiated_weibull"), std::string::npos);
  EXPECT_NE(r.out.find("censored bathtub MLE"), std::string::npos);
}

TEST(CliFit, FiltersByTypeWhenRequested) {
  TempFile file("mixed.csv");
  ASSERT_EQ(run({"generate", "--study", "--out", file.path()}).code, 0);
  const auto r = run({"fit", "--input", file.path(), "--type", "n1-highcpu-32", "--zone",
                      "us-central1-c"});
  EXPECT_EQ(r.code, 0);
}

TEST(CliLifetime, TableCoversAllTypes) {
  const auto r = run({"lifetime"});
  EXPECT_EQ(r.code, 0);
  for (const char* type : {"n1-highcpu-2", "n1-highcpu-4", "n1-highcpu-8", "n1-highcpu-16",
                           "n1-highcpu-32"}) {
    EXPECT_NE(r.out.find(type), std::string::npos) << type;
  }
}

TEST(CliLifetime, RejectsUnknownZone) {
  const auto r = run({"lifetime", "--zone", "mars-central-1"});
  EXPECT_EQ(r.code, 1);
}

TEST(CliSchedule, LateJobGetsFreshVm) {
  const auto r = run({"schedule", "--age", "20", "--job", "6", "--count", "300", "--seed", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("LAUNCH A FRESH VM"), std::string::npos);
}

TEST(CliSchedule, MidLifeJobReusesVm) {
  const auto r = run({"schedule", "--age", "8", "--job", "4", "--count", "300", "--seed", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("REUSE"), std::string::npos);
}

TEST(CliCheckpoint, ScheduleGrowsAndBeatsYoungDaly) {
  const auto r =
      run({"checkpoint", "--job", "4", "--delta-min", "1", "--count", "300", "--seed", "5"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("expected increase (DP)"), std::string::npos);
  EXPECT_NE(r.out.find("Young-Daly"), std::string::npos);
}

TEST(CliSimulate, CompletesBagAndReportsCost) {
  const auto r = run({"simulate", "--app", "shapes", "--jobs", "30", "--vms", "8", "--seed",
                      "7"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("jobs completed"), std::string::npos);
  EXPECT_NE(r.out.find("cost reduction"), std::string::npos);
}

TEST(CliSimulate, RejectsUnknownWorkloadAndPolicy) {
  EXPECT_EQ(run({"simulate", "--app", "doom"}).code, 1);
  EXPECT_EQ(run({"simulate", "--policy", "vibes"}).code, 1);
}

TEST(CliDrift, CleanStreamExitsZero) {
  const auto r = run({"drift", "--count", "400", "--baseline", "150", "--seed", "21"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("no drift detected"), std::string::npos);
}

TEST(CliDrift, InjectedDriftIsDetected) {
  const auto r =
      run({"drift", "--count", "500", "--baseline", "150", "--seed", "21", "--inject-drift"});
  EXPECT_EQ(r.code, 3);
  EXPECT_NE(r.out.find("ALARM"), std::string::npos);
}

TEST(CliDrift, RefusesTinyStreams) {
  const auto r = run({"drift", "--count", "100", "--baseline", "150"});
  EXPECT_EQ(r.code, 1);
}

TEST(CliScenario, ListShowAndRun) {
  const auto list = run({"scenario", "list"});
  EXPECT_EQ(list.code, 0);
  EXPECT_NE(list.out.find("paper-fig09a-cost"), std::string::npos);
  EXPECT_NE(list.out.find("grid-cluster-policy"), std::string::npos);

  const auto show = run({"scenario", "show", "--name", "paper-fig09-quick"});
  EXPECT_EQ(show.code, 0);
  EXPECT_NE(show.out.find("\"kind\": \"service\""), std::string::npos);

  const auto result =
      run({"scenario", "run", "--name", "paper-fig09-quick", "--jobs", "4", "--vms", "2",
           "--replications", "2"});
  EXPECT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("jobs completed"), std::string::npos);
  EXPECT_NE(result.out.find("replication statistics"), std::string::npos);
}

TEST(CliScenario, SweepFromFileWithAxes) {
  TempFile spec("scenario.json");
  {
    std::ofstream f(spec.path());
    f << R"({"kind":"service","app":"shapes","jobs":4,"vms":4,"seed":5,"replications":2})";
  }
  const auto sweep = run({"scenario", "sweep", "--file", spec.path(), "--axes",
                          "policy=model,fresh", "--json"});
  EXPECT_EQ(sweep.code, 0) << sweep.err;
  EXPECT_NE(sweep.out.find("policy=fresh"), std::string::npos);
  EXPECT_NE(sweep.out.find("\"ci95\""), std::string::npos);
}

TEST(CliScenario, ErrorsAreClean) {
  EXPECT_EQ(run({"scenario", "run", "--name", "nope"}).code, 1);
  EXPECT_EQ(run({"scenario", "frobnicate", "--name", "paper-fig09-quick"}).code, 2);
  EXPECT_EQ(run({"scenario", "run"}).code, 1);  // neither --name nor --file
}

}  // namespace
}  // namespace preempt::cli
