// The annotated lock layer: preempt::Mutex/LockGuard/UniqueLock/CondVar
// round-trips, and the global lock-acquisition-order checker — consistent
// orders stay silent, an ABBA inversion aborts deterministically with both
// mutex names in the message.
#include "common/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace preempt {
namespace {

// RAII: force the checker on/off for one test, restore after, and drop the
// edges the test recorded so order graphs never leak across tests.
class ScopedChecker {
 public:
  explicit ScopedChecker(bool enabled) : was_(lockorder::enabled()) {
    lockorder::reset_for_test();
    lockorder::set_enabled(enabled);
  }
  ~ScopedChecker() {
    lockorder::set_enabled(was_);
    lockorder::reset_for_test();
  }

 private:
  bool was_;
};

TEST(ThreadAnnotations, LockGuardRoundTrip) {
  const ScopedChecker checker(true);
  Mutex m{"test.roundtrip"};
  int value = 0;
  {
    const LockGuard lock(m);
    value = 1;
  }
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(ThreadAnnotations, UniqueLockHandsCapabilityBackAndForth) {
  const ScopedChecker checker(true);
  Mutex m{"test.unique"};
  UniqueLock lock(m);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_TRUE(m.try_lock());  // really released
  m.unlock();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(ThreadAnnotations, CondVarProducerConsumer) {
  const ScopedChecker checker(true);
  Mutex m{"test.condvar"};
  CondVar cv;
  std::deque<int> queue;
  bool done = false;
  constexpr int kItems = 200;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        const LockGuard lock(m);
        queue.push_back(i);
      }
      cv.notify_one();
    }
    {
      const LockGuard lock(m);
      done = true;
    }
    cv.notify_all();
  });

  std::vector<int> received;
  {
    UniqueLock lock(m);
    for (;;) {
      while (!done && queue.empty()) cv.wait(lock);
      while (!queue.empty()) {
        received.push_back(queue.front());
        queue.pop_front();
      }
      if (done && queue.empty()) break;
    }
  }
  producer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(ThreadAnnotations, CondVarWaitUntilTimesOut) {
  const ScopedChecker checker(true);
  Mutex m{"test.deadline"};
  CondVar cv;
  UniqueLock lock(m);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(cv.wait_until(lock, deadline), std::cv_status::timeout);
  EXPECT_TRUE(lock.owns_lock());  // reacquired after the timed wait
}

TEST(ThreadAnnotations, ConsistentOrderIsSilent) {
  const ScopedChecker checker(true);
  Mutex a{"test.order.first"};
  Mutex b{"test.order.second"};
  // Same nesting order many times, from two threads: no abort, no false
  // positive.
  auto nest = [&] {
    for (int i = 0; i < 100; ++i) {
      const LockGuard la(a);
      const LockGuard lb(b);
    }
  };
  std::thread t1(nest);
  std::thread t2(nest);
  t1.join();
  t2.join();
  SUCCEED();
}

TEST(ThreadAnnotationsDeathTest, TwoMutexInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The whole scenario runs inside the death statement so the established
  // order and the inversion share one process regardless of death-test style.
  EXPECT_DEATH(
      {
        lockorder::set_enabled(true);
        Mutex a{"death.a"};
        Mutex b{"death.b"};
        {
          const LockGuard la(a);
          const LockGuard lb(b);  // establishes a -> b
        }
        const LockGuard lb(b);
        const LockGuard la(a);  // b -> a closes the cycle: abort
      },
      "lock-order inversion.*death\\.a.*death\\.b");
}

TEST(ThreadAnnotationsDeathTest, RecursiveLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockorder::set_enabled(true);
        Mutex m{"death.recursive"};
        const LockGuard first(m);
        const LockGuard second(m);  // relock on the same thread: abort
      },
      "recursive lock.*death\\.recursive");
}

#if defined(__SANITIZE_THREAD__)
#define PREEMPT_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PREEMPT_TSAN_ACTIVE 1
#endif
#endif

TEST(ThreadAnnotations, CheckerDisabledRecordsNothing) {
#ifdef PREEMPT_TSAN_ACTIVE
  // TSan's own lock-order detector flags the deliberate ABBA below — that is
  // the sanitizer working as intended, not a regression, so skip it there.
  GTEST_SKIP() << "deliberate ABBA pattern trips TSan's deadlock detector";
#endif
  const ScopedChecker checker(false);
  Mutex a{"test.disabled.a"};
  Mutex b{"test.disabled.b"};
  // Both orders, checker off: must not abort (the tier-1 RelWithDebInfo
  // build runs exactly this configuration).
  {
    const LockGuard la(a);
    const LockGuard lb(b);
  }
  {
    const LockGuard lb(b);
    const LockGuard la(a);
  }
  SUCCEED();
}

// The pool's internal queue mutex is a preempt::Mutex now; make sure heavy
// submit/drain traffic still behaves with the checker enabled.
TEST(ThreadAnnotations, ThreadPoolRunsUnderChecker) {
  const ScopedChecker checker(true);
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  parallel_for(pool, 0, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<int>(i % 7), std::memory_order_relaxed);
  });
  int expected = 0;
  for (int i = 0; i < 1000; ++i) expected += i % 7;
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace preempt
