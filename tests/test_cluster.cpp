#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace preempt::sim {
namespace {

VmInstance make_vm(std::uint64_t id, double launch = 0.0) {
  VmInstance vm;
  vm.id = id;
  vm.launch_time = launch;
  vm.preempt_time = launch + 24.0;
  return vm;
}

TEST(Cluster, RegisterMakesNodeIdle) {
  ClusterManager c;
  c.register_node(make_vm(1));
  EXPECT_EQ(c.node(1).state, VmState::kIdle);
  EXPECT_EQ(c.alive_count(), 1u);
  EXPECT_EQ(c.busy_count(), 0u);
}

TEST(Cluster, IdleNodesSortedByLaunchTime) {
  ClusterManager c;
  c.register_node(make_vm(1, 5.0));
  c.register_node(make_vm(2, 1.0));
  c.register_node(make_vm(3, 3.0));
  const auto idle = c.idle_nodes();
  ASSERT_EQ(idle.size(), 3u);
  EXPECT_EQ(idle[0], 2u);
  EXPECT_EQ(idle[1], 3u);
  EXPECT_EQ(idle[2], 1u);
}

TEST(Cluster, AssignAndRelease) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.register_node(make_vm(2));
  c.assign({1, 2}, 77);
  EXPECT_EQ(c.node(1).state, VmState::kBusy);
  EXPECT_EQ(c.node(1).running_job, 77u);
  EXPECT_EQ(c.busy_count(), 2u);
  EXPECT_TRUE(c.idle_nodes().empty());
  c.release({1, 2}, 4.5);
  EXPECT_EQ(c.node(1).state, VmState::kIdle);
  EXPECT_DOUBLE_EQ(c.node(1).idle_since, 4.5);
  EXPECT_EQ(c.node(2).running_job, 0u);
}

TEST(Cluster, AssignRequiresIdleNodes) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.assign({1}, 5);
  EXPECT_THROW(c.assign({1}, 6), Error);
}

TEST(Cluster, PreemptionReturnsRunningJob) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.assign({1}, 42);
  const std::uint64_t job = c.mark_preempted(1, 3.0);
  EXPECT_EQ(job, 42u);
  EXPECT_EQ(c.node(1).state, VmState::kPreempted);
  EXPECT_DOUBLE_EQ(c.node(1).stop_time, 3.0);
  EXPECT_EQ(c.alive_count(), 0u);
}

TEST(Cluster, PreemptingIdleNodeReturnsZero) {
  ClusterManager c;
  c.register_node(make_vm(1));
  EXPECT_EQ(c.mark_preempted(1, 2.0), 0u);
}

TEST(Cluster, TerminationOnlyFromIdle) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.assign({1}, 9);
  EXPECT_THROW(c.mark_terminated(1, 1.0), Error);
  c.release({1}, 1.0);
  c.mark_terminated(1, 2.0);
  EXPECT_EQ(c.node(1).state, VmState::kTerminated);
}

TEST(Cluster, ReleaseSkipsDeadNodes) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.register_node(make_vm(2));
  c.assign({1, 2}, 8);
  c.mark_preempted(1, 1.0);
  c.release({1, 2}, 1.0);  // must not throw on the preempted node
  EXPECT_EQ(c.node(1).state, VmState::kPreempted);
  EXPECT_EQ(c.node(2).state, VmState::kIdle);
}

TEST(Cluster, JobCheckedReleaseRequiresOwnership) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.register_node(make_vm(2));
  c.assign({1}, 8);
  c.assign({2}, 9);
  // Releasing node 2 under job 8's gang is a simulator bug, not a no-op.
  EXPECT_THROW(c.release({1, 2}, /*job_id=*/8, 1.0), SimError);
  // Node 1 was checked before any mutation: the gang release is atomic.
  EXPECT_EQ(c.node(1).state, VmState::kBusy);
  c.release({1}, /*job_id=*/8, 2.0);
  EXPECT_EQ(c.node(1).state, VmState::kIdle);
  EXPECT_DOUBLE_EQ(c.node(1).idle_since, 2.0);
}

TEST(Cluster, JobCheckedReleaseSkipsDeadNodesButVerifiesBusyOnes) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.register_node(make_vm(2));
  c.assign({1, 2}, 8);
  c.mark_preempted(1, 1.0);
  c.release({1, 2}, /*job_id=*/8, 1.0);  // the preempted member is skipped
  EXPECT_EQ(c.node(1).state, VmState::kPreempted);
  EXPECT_EQ(c.node(2).state, VmState::kIdle);
}

TEST(Cluster, ReleaseOfUnknownIdsThrows) {
  ClusterManager c;
  c.register_node(make_vm(1));
  c.assign({1}, 8);
  EXPECT_THROW(c.release({1, 99}, 1.0), SimError);
  EXPECT_THROW(c.release({99}, /*job_id=*/8, 1.0), SimError);
}

TEST(Cluster, BilledHoursStopAtTermination) {
  ClusterManager c;
  VmInstance vm = make_vm(1, 2.0);
  c.register_node(vm);
  c.mark_terminated(1, 10.0);
  EXPECT_DOUBLE_EQ(c.node(1).billed_hours(50.0), 8.0);
}

TEST(Cluster, UnknownIdsThrow) {
  ClusterManager c;
  EXPECT_THROW(c.node(99), SimError);
  EXPECT_FALSE(c.has_node(99));
  EXPECT_THROW(c.mark_preempted(99, 0.0), SimError);
}

TEST(Cluster, DuplicateRegistrationThrows) {
  ClusterManager c;
  c.register_node(make_vm(1));
  EXPECT_THROW(c.register_node(make_vm(1)), Error);
}

}  // namespace
}  // namespace preempt::sim
