#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace preempt {
namespace {

TEST(Matrix, IdentityAndIndexing) {
  Matrix m = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, GramMatrix) {
  Matrix a(3, 2);
  a(0, 0) = 1;
  a(1, 0) = 2;
  a(2, 0) = 3;
  a(0, 1) = 4;
  a(1, 1) = 5;
  a(2, 1) = 6;
  const Matrix g = a.gram();
  EXPECT_DOUBLE_EQ(g(0, 0), 14.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 32.0);
  EXPECT_DOUBLE_EQ(g(1, 0), 32.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 77.0);
}

TEST(Matrix, MatrixVectorProducts) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto av = a.times({1.0, 1.0});
  EXPECT_DOUBLE_EQ(av[0], 3.0);
  EXPECT_DOUBLE_EQ(av[1], 7.0);
  const auto atv = a.transpose_times({1.0, 1.0});
  EXPECT_DOUBLE_EQ(atv[0], 4.0);
  EXPECT_DOUBLE_EQ(atv[1], 6.0);
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  const auto x = cholesky_solve(a, {8.0, 7.0});
  // Solution of [[4,2],[2,3]] x = [8,7] is x = [1.25, 1.5].
  EXPECT_NEAR(x[0], 1.25, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 5;
  a(1, 0) = 5;
  a(1, 1) = 1;  // eigenvalues 6, -4
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), NumericError);
}

TEST(QrLeastSquares, ExactSquareSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto x = qr_least_squares(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(QrLeastSquares, OverdeterminedRegression) {
  // Fit y = b0 + b1 x through 4 points lying on y = 1 + 2x exactly.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    b[i] = 1.0 + 2.0 * i;
  }
  const auto x = qr_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(QrLeastSquares, MinimisesResidualOnInconsistentSystem) {
  // Points (0,0), (1,1), (2,1): LS line is y = 1/6 + x/2.
  Matrix a(3, 2);
  std::vector<double> b = {0.0, 1.0, 1.0};
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
  }
  const auto x = qr_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(x[1], 0.5, 1e-12);
}

TEST(QrLeastSquares, RejectsRankDeficiency) {
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 0.0;  // second column is zero
  }
  EXPECT_THROW(qr_least_squares(a, {1.0, 2.0, 3.0}), NumericError);
}

TEST(QrLeastSquares, RejectsUnderdeterminedShape) {
  Matrix a(1, 2);
  EXPECT_THROW(qr_least_squares(a, {1.0}), InvalidArgument);
}

}  // namespace
}  // namespace preempt
