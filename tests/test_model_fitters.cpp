// Parameter-recovery tests for the per-family fitters (the Fig. 1 pipeline).
#include "fit/model_fitters.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/weibull.hpp"
#include "test_util.hpp"

namespace preempt::fit {
namespace {

using preempt::testing::reference_bathtub;
using preempt::testing::reference_params;

/// Exact CDF points of a model on a grid (noise-free recovery case).
std::pair<std::vector<double>, std::vector<double>> exact_points(const dist::Distribution& d,
                                                                 double lo, double hi, int n) {
  std::vector<double> ts, fs;
  for (int i = 0; i < n; ++i) {
    const double t = lo + (hi - lo) * i / (n - 1);
    ts.push_back(t);
    fs.push_back(d.cdf(t));
  }
  return {ts, fs};
}

TEST(FitExponential, RecoversRateFromExactCurve) {
  const dist::Exponential truth(0.35);
  const auto [ts, fs] = exact_points(truth, 0.1, 12.0, 40);
  const FitResult fr = fit_exponential(ts, fs);
  EXPECT_TRUE(fr.converged);
  EXPECT_NEAR(fr.params[0], 0.35, 1e-4);
  EXPECT_LT(fr.gof.rmse, 1e-5);
}

TEST(FitWeibull, RecoversBothParameters) {
  const dist::Weibull truth(0.2, 2.3);
  const auto [ts, fs] = exact_points(truth, 0.1, 12.0, 50);
  const FitResult fr = fit_weibull(ts, fs);
  EXPECT_TRUE(fr.converged);
  EXPECT_NEAR(fr.params[0], 0.2, 1e-3);
  EXPECT_NEAR(fr.params[1], 2.3, 1e-2);
}

TEST(FitGompertzMakeham, RecoversAgingCurve) {
  const dist::GompertzMakeham truth(0.05, 0.02, 0.4);
  const auto [ts, fs] = exact_points(truth, 0.1, 15.0, 60);
  const FitResult fr = fit_gompertz_makeham(ts, fs);
  // GM has correlated parameters; accept any fit that reproduces the CDF.
  EXPECT_LT(fr.gof.rmse, 1e-3);
  EXPECT_GT(fr.gof.r2, 0.999);
}

TEST(FitBathtub, RecoversAllFourParameters) {
  const auto truth = reference_bathtub();
  const auto [ts, fs] = exact_points(truth, 0.05, 23.95, 96);
  const FitResult fr = fit_bathtub(ts, fs, 24.0);
  EXPECT_TRUE(fr.converged);
  EXPECT_NEAR(fr.params[0], 0.45, 0.01);   // A
  EXPECT_NEAR(fr.params[1], 1.0, 0.05);    // tau1
  EXPECT_NEAR(fr.params[2], 0.8, 0.05);    // tau2
  EXPECT_NEAR(fr.params[3], 24.0, 0.25);   // b
  EXPECT_GT(fr.gof.r2, 0.9999);
}

TEST(FitBathtub, RecoversSmallVmRegime) {
  auto p = reference_params();
  p.scale = 0.32;
  p.tau1 = 2.4;
  const dist::BathtubDistribution truth(p);
  const auto [ts, fs] = exact_points(truth, 0.05, 23.95, 96);
  const FitResult fr = fit_bathtub(ts, fs, 24.0);
  EXPECT_NEAR(fr.params[0], 0.32, 0.01);
  EXPECT_NEAR(fr.params[1], 2.4, 0.1);
}

TEST(FitBathtub, WorksFromSampledLifetimes) {
  const auto truth = reference_bathtub();
  Rng rng(31337);
  std::vector<double> lifetimes;
  for (int i = 0; i < 800; ++i) lifetimes.push_back(truth.sample(rng));
  const FitResult fr = fit_bathtub_to_samples(lifetimes, 24.0);
  EXPECT_NEAR(fr.params[0], 0.45, 0.04);
  EXPECT_NEAR(fr.params[1], 1.0, 0.3);
  EXPECT_GT(fr.gof.r2, 0.99);
}

TEST(FitBathtub, PaperSampleSizeOfHundredStillFitsShape) {
  // Fig. 1 uses "a sample of over 100 preemption events".
  const auto truth = reference_bathtub();
  Rng rng(2718);
  std::vector<double> lifetimes;
  for (int i = 0; i < 120; ++i) lifetimes.push_back(truth.sample(rng));
  const FitResult fr = fit_bathtub_to_samples(lifetimes, 24.0);
  EXPECT_GT(fr.gof.r2, 0.95);
  // The fitted model must still predict the 6 h fresh-VM failure probability
  // in the right ballpark (the Fig. 5 plateau).
  EXPECT_NEAR(fr.distribution->cdf(6.0), truth.cdf(6.0), 0.08);
}

TEST(FitAllFamilies, BathtubWinsOnConstrainedData) {
  // The paper's headline comparison: on constrained-preemption data the new
  // model fits far better than exponential / Weibull / Gompertz-Makeham.
  const auto truth = reference_bathtub();
  Rng rng(99);
  std::vector<double> lifetimes;
  for (int i = 0; i < 500; ++i) lifetimes.push_back(truth.sample(rng));
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points(dist::EcdfConvention::kHazen);
  const auto fits = fit_all_families(pts.t, pts.f, 24.0);
  ASSERT_EQ(fits.size(), 4u);
  EXPECT_EQ(fits[0].distribution->name(), "bathtub");
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LT(fits[0].gof.sse, fits[i].gof.sse)
        << "bathtub should beat " << fits[i].distribution->name();
  }
  // And not by a little: the paper's Fig. 1 shows a qualitative gap.
  EXPECT_LT(fits[0].gof.sse * 4.0, fits[1].gof.sse);
}

TEST(FitAllFamilies, ExponentialWinsOnMemorylessData) {
  // Sanity check in the other direction: on truly memoryless data the
  // exponential family should match the bathtub's quality (no overfit gap).
  const dist::Exponential truth(0.15);
  Rng rng(55);
  std::vector<double> lifetimes;
  for (int i = 0; i < 500; ++i) lifetimes.push_back(std::min(truth.sample(rng), 23.99));
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points(dist::EcdfConvention::kHazen);
  const auto fits = fit_all_families(pts.t, pts.f, 24.0);
  EXPECT_LT(fits[1].gof.rmse, 0.03);  // exponential fits memoryless data well
}

TEST(Fitters, RejectDegenerateInput) {
  const std::vector<double> ts = {1.0, 2.0};
  const std::vector<double> fs = {0.1, 0.2};
  EXPECT_THROW(fit_exponential(ts, fs), InvalidArgument);  // < 5 points
  const std::vector<double> bad_f = {0.1, 0.2, 1.5, 0.4, 0.5};
  const std::vector<double> ok_t = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_THROW(fit_exponential(ok_t, bad_f), InvalidArgument);  // F > 1
}

TEST(GofStatistics, ComputesAllMetrics) {
  const std::vector<double> obs = {1.0, 2.0, 3.0};
  const std::vector<double> pred = {1.1, 1.9, 3.2};
  const GofStats s = gof_statistics(obs, pred, 2);
  EXPECT_NEAR(s.sse, 0.01 + 0.01 + 0.04, 1e-12);
  EXPECT_NEAR(s.max_abs, 0.2, 1e-12);
  EXPECT_EQ(s.n, 3u);
  EXPECT_EQ(s.k, 2u);
  EXPECT_GT(s.r2, 0.9);
}

}  // namespace
}  // namespace preempt::fit
