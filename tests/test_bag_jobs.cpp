// The async bag-job queue: lifecycle states, worker-pool execution, failure
// capture, waiting, and the pagination/filter contract — with a stub
// executor, so no daemon bootstrap is needed.
#include "api/bag_jobs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace preempt::api {
namespace {

TEST(BagJobQueue, RunsJobsToDoneOnWorkers) {
  std::atomic<int> executed{0};
  BagJobQueue queue(2, [&](BagJobRecord& record) {
    ++executed;
    record.report.jobs_completed = record.spec.jobs;
  });
  BagJobSpec spec;
  spec.jobs = 7;
  const std::uint64_t id = queue.submit(spec);
  ASSERT_TRUE(queue.wait(id, 10.0));
  const auto record = queue.get(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->status, BagJobStatus::kDone);
  EXPECT_EQ(record->report.jobs_completed, 7u);
  EXPECT_EQ(executed.load(), 1);
  EXPECT_EQ(queue.done_count(), 1u);
  EXPECT_EQ(queue.worker_count(), 2u);
}

TEST(BagJobQueue, ExecutorExceptionsBecomeFailedJobs) {
  BagJobQueue queue(1, [](BagJobRecord& record) {
    if (record.spec.seed == 13) throw std::runtime_error("unlucky seed");
    record.report.jobs_completed = 1;
  });
  BagJobSpec bad;
  bad.seed = 13;
  BagJobSpec good;
  good.seed = 1;
  const auto bad_id = queue.submit(bad);
  const auto good_id = queue.submit(good);
  ASSERT_TRUE(queue.wait(bad_id, 10.0));
  ASSERT_TRUE(queue.wait(good_id, 10.0));
  EXPECT_EQ(queue.get(bad_id)->status, BagJobStatus::kFailed);
  EXPECT_NE(queue.get(bad_id)->error.find("unlucky seed"), std::string::npos);
  // A failed job does not poison the worker: the next one still runs.
  EXPECT_EQ(queue.get(good_id)->status, BagJobStatus::kDone);
  EXPECT_EQ(queue.done_count(), 1u);
}

TEST(BagJobQueue, ListPaginatesAndFiltersByStatus) {
  BagJobQueue queue(1, [](BagJobRecord& record) {
    if (record.spec.seed % 2 == 1) throw std::runtime_error("odd");
  });
  std::vector<std::uint64_t> ids;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    BagJobSpec spec;
    spec.seed = seed;
    ids.push_back(queue.submit(spec));
  }
  for (const auto id : ids) ASSERT_TRUE(queue.wait(id, 10.0));

  const auto all = queue.list(std::nullopt, 100, 0);
  EXPECT_EQ(all.total, 6u);
  ASSERT_EQ(all.jobs.size(), 6u);
  for (std::size_t i = 1; i < all.jobs.size(); ++i) {
    EXPECT_LT(all.jobs[i - 1].id, all.jobs[i].id);  // id-ascending
  }

  const auto done = queue.list(BagJobStatus::kDone, 100, 0);
  EXPECT_EQ(done.total, 3u);
  const auto failed = queue.list(BagJobStatus::kFailed, 2, 1);
  EXPECT_EQ(failed.total, 3u);  // total counts matches, not the page
  EXPECT_EQ(failed.jobs.size(), 2u);
  const auto past_end = queue.list(std::nullopt, 10, 99);
  EXPECT_EQ(past_end.total, 6u);
  EXPECT_TRUE(past_end.jobs.empty());
  EXPECT_TRUE(queue.list(BagJobStatus::kQueued, 10, 0).jobs.empty());
}

TEST(BagJobQueue, WaitTimesOutOnRunningJobs) {
  std::atomic<bool> release{false};
  BagJobQueue queue(1, [&](BagJobRecord&) {
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const auto id = queue.submit(BagJobSpec{});
  EXPECT_FALSE(queue.wait(id, 0.05));
  EXPECT_FALSE(queue.wait(999, 0.01));  // unknown id
  release.store(true);
  EXPECT_TRUE(queue.wait(id, 10.0));
}

TEST(BagJobQueue, BoundedStoreEvictsOldestFinishedFifo) {
  BagJobQueue::Options options;
  options.max_finished_jobs = 2;
  BagJobQueue queue(1, [](BagJobRecord& record) {
    record.report.jobs_completed = record.spec.jobs;
  }, options);
  EXPECT_EQ(queue.max_finished_jobs(), 2u);
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 5; ++i) {
    BagJobSpec spec;
    spec.jobs = i + 1;
    ids.push_back(queue.submit(spec));
    ASSERT_TRUE(queue.wait(ids.back(), 10.0));  // serialize completion order
  }
  // Only the two most recently finished jobs survive.
  EXPECT_FALSE(queue.get(ids[0]).has_value());
  EXPECT_FALSE(queue.get(ids[1]).has_value());
  EXPECT_FALSE(queue.get(ids[2]).has_value());
  ASSERT_TRUE(queue.get(ids[3]).has_value());
  ASSERT_TRUE(queue.get(ids[4]).has_value());
  // Evicted ids are distinguishable from ids that never existed.
  EXPECT_TRUE(queue.evicted(ids[0]));
  EXPECT_FALSE(queue.evicted(ids[4]));
  EXPECT_FALSE(queue.evicted(999));
  // done_count is cumulative: eviction does not erase history.
  EXPECT_EQ(queue.done_count(), 5u);
  // The listing only sees retained records.
  EXPECT_EQ(queue.list(std::nullopt, 100, 0).total, 2u);
}

TEST(BagJobQueue, FailedJobsCountTowardTheFinishedCap) {
  BagJobQueue::Options options;
  options.max_finished_jobs = 1;
  BagJobQueue queue(1, [](BagJobRecord& record) {
    if (record.spec.seed == 13) throw std::runtime_error("boom");
    record.report.jobs_completed = 1;
  }, options);
  BagJobSpec bad;
  bad.seed = 13;
  const auto bad_id = queue.submit(bad);
  ASSERT_TRUE(queue.wait(bad_id, 10.0));
  EXPECT_EQ(queue.get(bad_id)->status, BagJobStatus::kFailed);
  const auto good_id = queue.submit(BagJobSpec{});
  ASSERT_TRUE(queue.wait(good_id, 10.0));
  // The failed record was the oldest finished one and is evicted.
  EXPECT_FALSE(queue.get(bad_id).has_value());
  EXPECT_TRUE(queue.evicted(bad_id));
  EXPECT_TRUE(queue.get(good_id).has_value());
}

TEST(BagJobQueue, WaitOnEvictedIdReturnsImmediately) {
  BagJobQueue::Options options;
  options.max_finished_jobs = 1;
  BagJobQueue queue(1, [](BagJobRecord&) {}, options);
  const auto first = queue.submit(BagJobSpec{});
  ASSERT_TRUE(queue.wait(first, 10.0));
  const auto second = queue.submit(BagJobSpec{});
  ASSERT_TRUE(queue.wait(second, 10.0));
  ASSERT_TRUE(queue.evicted(first));
  // An evicted job was terminal: wait() must not block for the timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(queue.wait(first, 30.0));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  // Unknown ids still fail fast.
  EXPECT_FALSE(queue.wait(999, 0.01));
}

TEST(BagJobStatusStrings, RoundTrip) {
  for (const auto status : {BagJobStatus::kQueued, BagJobStatus::kRunning, BagJobStatus::kDone,
                            BagJobStatus::kFailed}) {
    const auto parsed = bag_job_status_from_string(to_string(status));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, status);
  }
  EXPECT_FALSE(bag_job_status_from_string("nonsense").has_value());
}

}  // namespace
}  // namespace preempt::api
