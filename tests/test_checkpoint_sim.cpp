// Monte-Carlo validation of checkpoint plans (the ground-truth semantics the
// analytic evaluator and DP approximate).
#include "policy/checkpoint_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/uniform.hpp"
#include "test_util.hpp"

namespace preempt::policy {
namespace {

using preempt::testing::reference_bathtub;

constexpr double kMinute = 1.0 / 60.0;

TEST(SimulatePlan, NoFailuresMeansPlanDuration) {
  // A tiny job in the stable phase almost never fails: mean ≈ work + deltas.
  const auto d = reference_bathtub();
  CheckpointPlan plan;
  plan.checkpoint_cost_hours = kMinute;
  plan.work_segments_hours = {0.25, 0.25};
  SimulationOptions opts;
  opts.runs = 3000;
  opts.start_age_hours = 8.0;  // stable phase
  const SimulatedMakespan res = simulate_plan(d, plan, opts);
  EXPECT_NEAR(res.mean_hours, 0.5 + kMinute, 0.01);
  EXPECT_LT(res.mean_preemptions, 0.01);
}

TEST(SimulatePlan, FreshVmJobsSeeInfantMortality) {
  const auto d = reference_bathtub();
  const CheckpointPlan plan = no_checkpoint_plan(2.0, kMinute);
  SimulationOptions opts;
  opts.runs = 4000;
  opts.start_age_hours = 0.0;
  const SimulatedMakespan res = simulate_plan(d, plan, opts);
  // F(2h) ≈ 0.45 * (1 - e^-2) ≈ 0.39: retries are common.
  EXPECT_GT(res.mean_preemptions, 0.3);
  EXPECT_GT(res.mean_hours, 2.0);
}

TEST(SimulatePlan, MatchesAnalyticEvaluatorOnUniform) {
  // Closed-form cross-check (see test_checkpoint_dp): single 6 h segment
  // under Uniform(24), FreshVm restarts -> expected makespan 7 h.
  const dist::UniformLifetime u(24.0);
  const CheckpointPlan plan = no_checkpoint_plan(6.0, kMinute);
  SimulationOptions opts;
  opts.runs = 20000;
  opts.seed = 321;
  const SimulatedMakespan res = simulate_plan(u, plan, opts);
  EXPECT_NEAR(res.mean_hours, 7.0, 0.15);
}

TEST(SimulatePlan, CheckpointingReducesMakespanOnLongJobs) {
  const auto d = reference_bathtub();
  SimulationOptions opts;
  opts.runs = 3000;
  const SimulatedMakespan none = simulate_plan(d, no_checkpoint_plan(6.0, kMinute), opts);
  const SimulatedMakespan yd = simulate_plan(d, young_daly_plan(6.0, 1.0, kMinute), opts);
  EXPECT_LT(yd.mean_hours, none.mean_hours);
}

TEST(SimulatePlan, DpScheduleBeatsYoungDalyUnderBathtub) {
  // The headline Fig. 8 ordering, validated by simulation rather than the
  // analytic evaluator.
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  const CheckpointDp dp(d, 4.0, cfg);
  CheckpointPlan dp_plan;
  dp_plan.checkpoint_cost_hours = kMinute;
  dp_plan.work_segments_hours = dp.schedule(0.0);

  SimulationOptions opts;
  opts.runs = 6000;
  opts.seed = 99;
  const SimulatedMakespan ours = simulate_plan(d, dp_plan, opts);
  const SimulatedMakespan theirs = simulate_plan(d, young_daly_plan(4.0, 1.0, kMinute), opts);
  EXPECT_LT(ours.mean_hours, theirs.mean_hours * 1.02);  // allow MC noise
  // Young-Daly's constant 11 min cadence alone adds ~9% overhead; ours must
  // land well below it on a fresh VM (paper: ~10% vs ~25%).
  EXPECT_LT((ours.mean_hours - 4.0) / 4.0, 0.20);
}

TEST(SimulatePlan, RestartOverheadIsCharged) {
  const auto d = reference_bathtub();
  const CheckpointPlan plan = no_checkpoint_plan(2.0, kMinute);
  SimulationOptions cheap;
  cheap.runs = 4000;
  SimulationOptions pricey = cheap;
  pricey.restart_overhead_hours = 0.5;
  const double m_cheap = simulate_plan(d, plan, cheap).mean_hours;
  const double m_pricey = simulate_plan(d, plan, pricey).mean_hours;
  EXPECT_GT(m_pricey, m_cheap);
}

TEST(SimulatePlan, ConditionalStartAgeSampling) {
  // Starting mid-life conditions the first VM's lifetime on survival to 8 h:
  // preemptions within a short job there are then rare.
  const auto d = reference_bathtub();
  const CheckpointPlan plan = no_checkpoint_plan(1.0, kMinute);
  SimulationOptions opts;
  opts.runs = 4000;
  opts.start_age_hours = 8.0;
  const SimulatedMakespan res = simulate_plan(d, plan, opts);
  EXPECT_LT(res.mean_preemptions, 0.02);
}

TEST(SimulatePlan, DeterministicPerSeed) {
  const auto d = reference_bathtub();
  const CheckpointPlan plan = young_daly_plan(2.0, 1.0, kMinute);
  SimulationOptions opts;
  opts.runs = 500;
  opts.seed = 42;
  const auto a = simulate_plan(d, plan, opts);
  const auto b = simulate_plan(d, plan, opts);
  EXPECT_DOUBLE_EQ(a.mean_hours, b.mean_hours);
  EXPECT_DOUBLE_EQ(a.mean_preemptions, b.mean_preemptions);
}

TEST(SimulatePlan, ThreadCountDoesNotChangeResults) {
  // The replication engine's chunked jump-streams make the pooled run
  // bit-identical to the inline run.
  const auto d = reference_bathtub();
  const CheckpointPlan plan = young_daly_plan(3.0, 1.0, kMinute);
  SimulationOptions pooled;
  pooled.runs = 3000;
  pooled.seed = 7;
  pooled.threads = 0;
  SimulationOptions inline_run = pooled;
  inline_run.threads = 1;
  const auto a = simulate_plan(d, plan, pooled);
  const auto b = simulate_plan(d, plan, inline_run);
  EXPECT_DOUBLE_EQ(a.mean_hours, b.mean_hours);
  EXPECT_DOUBLE_EQ(a.stddev_hours, b.stddev_hours);
  EXPECT_DOUBLE_EQ(a.mean_preemptions, b.mean_preemptions);
  EXPECT_DOUBLE_EQ(a.max_hours, b.max_hours);
}

TEST(SimulatePlan, ReportsConfidenceInterval) {
  const auto d = reference_bathtub();
  const CheckpointPlan plan = no_checkpoint_plan(2.0, kMinute);
  SimulationOptions opts;
  opts.runs = 2000;
  const SimulatedMakespan res = simulate_plan(d, plan, opts);
  EXPECT_GT(res.stddev_hours, 0.0);
  EXPECT_GT(res.std_error_hours, 0.0);
  EXPECT_LT(res.std_error_hours, res.stddev_hours);
  EXPECT_NEAR(res.ci95_half_hours, 1.96 * res.std_error_hours,
              1e-4 * res.std_error_hours);
  EXPECT_GE(res.max_hours, res.mean_hours);
}

TEST(SimulatePlan, ValidatesArguments) {
  const auto d = reference_bathtub();
  CheckpointPlan empty;
  EXPECT_THROW(simulate_plan(d, empty, {}), InvalidArgument);
  SimulationOptions opts;
  opts.runs = 0;
  EXPECT_THROW(simulate_plan(d, no_checkpoint_plan(1.0, kMinute), opts), InvalidArgument);
}

}  // namespace
}  // namespace preempt::policy
