#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::trace {
namespace {

RegimeKey base_key() {
  return RegimeKey{VmType::kN1Highcpu16, Zone::kUsEast1B, DayPeriod::kDay, WorkloadKind::kBatch};
}

// --- ground truth catalog ------------------------------------------------------

TEST(GroundTruth, BaseRegimeMatchesCalibration) {
  const auto p = ground_truth_params(base_key());
  EXPECT_DOUBLE_EQ(p.scale, 0.45);
  EXPECT_DOUBLE_EQ(p.tau1, 1.0);
  EXPECT_DOUBLE_EQ(p.tau2, 0.8);
  EXPECT_DOUBLE_EQ(p.deadline, 24.0);
}

TEST(GroundTruth, LargerVmsPreemptMore) {
  // Observation 4: larger VMs have a higher preemption probability.
  double prev_f6 = 0.0;
  for (VmType type : {VmType::kN1Highcpu2, VmType::kN1Highcpu4, VmType::kN1Highcpu8,
                      VmType::kN1Highcpu16, VmType::kN1Highcpu32}) {
    RegimeKey key = base_key();
    key.type = type;
    const auto d = ground_truth_distribution(key);
    const double f6 = d.cdf(6.0);
    EXPECT_GT(f6, prev_f6) << to_string(type);
    prev_f6 = f6;
  }
}

TEST(GroundTruth, NightVmsLiveLonger) {
  // Observation 5: lifetimes are longer at night.
  RegimeKey day = base_key();
  RegimeKey night = base_key();
  night.period = DayPeriod::kNight;
  const auto d_day = ground_truth_distribution(day);
  const auto d_night = ground_truth_distribution(night);
  // Compare full means (incl. the deadline atom): night VMs survive to the
  // 24 h reclaim more often, so Eq. 3's continuous part alone would mislead.
  EXPECT_GT(d_night.mean(), d_day.mean());
  EXPECT_LT(d_night.cdf(6.0), d_day.cdf(6.0));
}

TEST(GroundTruth, IdleVmsLiveLonger) {
  RegimeKey busy = base_key();
  RegimeKey idle = base_key();
  idle.workload = WorkloadKind::kIdle;
  const auto d_busy = ground_truth_distribution(busy);
  const auto d_idle = ground_truth_distribution(idle);
  EXPECT_LT(d_idle.cdf(6.0), d_busy.cdf(6.0));
}

TEST(GroundTruth, ZonesDifferButModestly) {
  RegimeKey east = base_key();
  RegimeKey west = base_key();
  west.zone = Zone::kUsWest1A;
  const auto d_east = ground_truth_distribution(east);
  const auto d_west = ground_truth_distribution(west);
  EXPECT_NE(d_east.cdf(6.0), d_west.cdf(6.0));
  EXPECT_NEAR(d_east.cdf(6.0), d_west.cdf(6.0), 0.15);
}

TEST(GroundTruth, AllRegimesProduceValidDistributions) {
  for (const VmSpec& spec : all_vm_specs()) {
    for (Zone zone : all_zones()) {
      for (DayPeriod period : {DayPeriod::kDay, DayPeriod::kNight}) {
        for (WorkloadKind workload : {WorkloadKind::kIdle, WorkloadKind::kBatch}) {
          const RegimeKey key{spec.type, zone, period, workload};
          const auto d = ground_truth_distribution(key);
          EXPECT_GT(d.expected_lifetime_eq3(), 0.0);
          EXPECT_LE(d.cdf(24.0), 1.0);
        }
      }
    }
  }
}

// --- generator -------------------------------------------------------------------

TEST(Generator, CampaignIsDeterministicPerSeed) {
  const CampaignConfig cfg{base_key(), 50, 1234};
  const Dataset a = generate_campaign(cfg);
  const Dataset b = generate_campaign(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records()[i].lifetime_hours, b.records()[i].lifetime_hours);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  const Dataset a = generate_campaign({base_key(), 50, 1});
  const Dataset b = generate_campaign({base_key(), 50, 2});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a.records()[i].lifetime_hours != b.records()[i].lifetime_hours;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, LifetimesRespectTheDeadline) {
  const Dataset ds = generate_campaign({base_key(), 400, 7});
  for (const auto& r : ds.records()) {
    EXPECT_GE(r.lifetime_hours, 0.0);
    EXPECT_LE(r.lifetime_hours, kMaxLifetimeHours);
  }
}

TEST(Generator, LaunchHoursMatchRequestedPeriod) {
  const Dataset day = generate_campaign({base_key(), 100, 3});
  for (const auto& r : day.records()) {
    EXPECT_GE(r.launch_hour, 8.0);
    EXPECT_LT(r.launch_hour, 20.0);
  }
  RegimeKey nk = base_key();
  nk.period = DayPeriod::kNight;
  const Dataset night = generate_campaign({nk, 100, 3});
  for (const auto& r : night.records()) {
    EXPECT_TRUE(r.launch_hour >= 20.0 || r.launch_hour < 8.0) << r.launch_hour;
  }
}

TEST(Generator, SampleMeanTracksGroundTruth) {
  const auto d = ground_truth_distribution(base_key());
  const Dataset ds = generate_campaign({base_key(), 4000, 11});
  const auto lifetimes = ds.lifetimes();
  double sum = 0.0;
  for (double x : lifetimes) sum += x;
  EXPECT_NEAR(sum / lifetimes.size(), d.mean(), 0.25);
}

TEST(Generator, StudyCoversTheFullFactorialGrid) {
  StudyConfig cfg;
  cfg.vms_per_cell = 8;
  const Dataset ds = generate_study(cfg);
  // 5 types x 4 zones x 8 VMs.
  EXPECT_EQ(ds.size(), 5u * 4u * 8u);
  EXPECT_EQ(ds.group_by_type().size(), 5u);
  EXPECT_EQ(ds.group_by_zone().size(), 4u);
  // Both periods and workloads occur.
  EXPECT_GT(ds.by_period(DayPeriod::kNight).size(), 0u);
  EXPECT_GT(ds.by_workload(WorkloadKind::kIdle).size(), 0u);
}

// --- dataset -------------------------------------------------------------------

TEST(Dataset, FiltersCompose) {
  StudyConfig cfg;
  cfg.vms_per_cell = 8;
  const Dataset ds = generate_study(cfg);
  const Dataset slice = ds.by_type(VmType::kN1Highcpu16).by_zone(Zone::kUsEast1B);
  for (const auto& r : slice.records()) {
    EXPECT_EQ(r.type, VmType::kN1Highcpu16);
    EXPECT_EQ(r.zone, Zone::kUsEast1B);
  }
  EXPECT_EQ(slice.size(), 8u);
}

TEST(Dataset, CsvRoundTripPreservesRecords) {
  const Dataset ds = generate_campaign({base_key(), 25, 17});
  const Dataset back = Dataset::from_csv(ds.to_csv());
  ASSERT_EQ(back.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& a = ds.records()[i];
    const auto& b = back.records()[i];
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.zone, b.zone);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.day_of_week, b.day_of_week);
    EXPECT_NEAR(a.lifetime_hours, b.lifetime_hours, 1e-6);
  }
}

TEST(Dataset, RejectsCorruptCsv) {
  EXPECT_THROW(Dataset::from_csv("vm_type,zone\nnope,alsono\n"), IoError);
  const Dataset ds = generate_campaign({base_key(), 5, 1});
  std::string csv = ds.to_csv();
  csv.replace(csv.find("n1-highcpu-16"), 13, "n1-nonexistent");
  EXPECT_THROW(Dataset::from_csv(csv), IoError);
}

TEST(Dataset, AddValidatesRecords) {
  Dataset ds;
  PreemptionRecord r;
  r.lifetime_hours = 25.0;  // beyond the 24 h constraint
  EXPECT_THROW(ds.add(r), InvalidArgument);
  r.lifetime_hours = 5.0;
  r.launch_hour = 24.5;
  EXPECT_THROW(ds.add(r), InvalidArgument);
}

}  // namespace
}  // namespace preempt::trace
