#include "common/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"

namespace preempt {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, DeterministicStream) {
  Xoshiro256StarStar a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, JumpChangesStream) {
  Xoshiro256StarStar a(42), b(42);
  b.jump();
  bool any_different = false;
  for (int i = 0; i < 10; ++i) any_different |= (a() != b());
  EXPECT_TRUE(any_different);
}

TEST(Rng, UniformInOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ToOpenUnitNeverReturnsEndpoints) {
  // Regression: uniform() used to map the all-zero-bits draw to exactly 0.0,
  // which inverse-transform sampling turns into zero-length lifetimes (and
  // quantile(0) short-circuits). The transform now lands on cell midpoints.
  EXPECT_GT(Rng::to_open_unit(0), 0.0);
  EXPECT_DOUBLE_EQ(Rng::to_open_unit(0), 0x1.0p-53);
  EXPECT_LT(Rng::to_open_unit(~std::uint64_t{0}), 1.0);
  EXPECT_DOUBLE_EQ(Rng::to_open_unit(~std::uint64_t{0}), 1.0 - 0x1.0p-53);
  // Midpoints are uniform: consecutive bit patterns are 2^-52 apart.
  EXPECT_DOUBLE_EQ(Rng::to_open_unit(std::uint64_t{1} << 12) - Rng::to_open_unit(0),
                   0x1.0p-52);
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_NEAR(sum_sq / kN - 0.25, 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t k = rng.uniform_index(7);
    EXPECT_LT(k, 7u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(13);
  constexpr double kRate = 0.5;
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(kRate);
  EXPECT_NEAR(sum / kN, 1.0 / kRate, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.08);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete({}), InvalidArgument);
  EXPECT_THROW(rng.discrete({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(rng.discrete({1.0, -1.0}), InvalidArgument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(29);
  Rng child = parent.fork();
  // Parent and child should not emit identical sequences.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, SameSeedSameSequenceAcrossInstances) {
  Rng a(31), b(31);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIndicesMatchSequentialDraws) {
  // The batched form consumes the stream exactly like repeated
  // uniform_index calls — bootstrap results must not change.
  Rng batched(37), sequential(37);
  std::vector<std::uint64_t> batch(257);
  batched.uniform_indices(10, batch);
  for (const std::uint64_t idx : batch) {
    EXPECT_EQ(idx, sequential.uniform_index(10));
    EXPECT_LT(idx, 10u);
  }
  // And the generators end in the same state.
  EXPECT_DOUBLE_EQ(batched.uniform(), sequential.uniform());
  // Empty batches are a no-op.
  std::vector<std::uint64_t> empty;
  batched.uniform_indices(10, empty);
  EXPECT_DOUBLE_EQ(batched.uniform(), sequential.uniform());
}

}  // namespace
}  // namespace preempt
