// The batched Monte-Carlo replication engine: accumulators, chunked
// jump-derived streams, thread-count-independent determinism.
#include "mc/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "dist/exponential.hpp"
#include "mc/accumulator.hpp"
#include "test_util.hpp"

namespace preempt::mc {
namespace {

TEST(Accumulator, MatchesDirectMoments) {
  const std::vector<double> xs = {1.0, 4.0, 2.5, 8.0, 0.5, 3.0};
  Accumulator acc;
  for (double x : xs) acc.add(x);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(acc.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 0.5);
  EXPECT_DOUBLE_EQ(acc.max(), 8.0);
  EXPECT_NEAR(acc.std_error(), stddev(xs) / std::sqrt(6.0), 1e-12);
  EXPECT_GT(acc.ci95_half(), acc.std_error());
}

TEST(Accumulator, MergeEqualsSingleStream) {
  Rng rng(3);
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.uniform(0.0, 10.0);

  Accumulator whole;
  for (double x : xs) whole.add(x);

  Accumulator a, b, c;
  for (std::size_t i = 0; i < 150; ++i) a.add(xs[i]);
  for (std::size_t i = 150; i < 300; ++i) b.add(xs[i]);
  for (std::size_t i = 300; i < xs.size(); ++i) c.add(xs[i]);
  a.merge(b);
  a.merge(c);

  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, EmptyAndSingleObservation) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.std_error(), 0.0);
  Accumulator other;
  acc.merge(other);  // merging an empty shard is a no-op
  EXPECT_EQ(acc.count(), 1u);
}

TEST(Engine, EstimatesExponentialMean) {
  const dist::Exponential d(0.5);
  EngineOptions options;
  options.replications = 20000;
  options.seed = 17;
  const auto report = run_replications(
      options, {"lifetime"},
      [&](std::size_t, Rng& rng, Recorder& rec) { rec.record(0, d.sample(rng)); });
  const MetricSummary& m = report.metric("lifetime");
  EXPECT_EQ(m.count, 20000u);
  EXPECT_NEAR(m.mean, 2.0, 5.0 * m.std_error);
  EXPECT_GT(m.ci95_half, 0.0);
  EXPECT_NEAR(m.stddev, 2.0, 0.1);  // exponential: stddev == mean
}

TEST(Engine, DeterministicRegardlessOfThreadMode) {
  const auto d = preempt::testing::reference_bathtub();
  const auto body = [&](std::size_t, Rng& rng, Recorder& rec) {
    rec.record(0, d.sample(rng));
    rec.record(1, rng.uniform());
  };
  EngineOptions pool;
  pool.replications = 5000;
  pool.seed = 23;
  pool.max_threads = 0;  // shared pool
  EngineOptions inline_run = pool;
  inline_run.max_threads = 1;  // same layout, calling thread only

  const auto a = run_replications(pool, {"x", "u"}, body);
  const auto b = run_replications(inline_run, {"x", "u"}, body);
  ASSERT_EQ(a.chunks, b.chunks);
  for (std::size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].mean, b.metrics[m].mean) << m;
    EXPECT_EQ(a.metrics[m].variance, b.metrics[m].variance) << m;
    EXPECT_EQ(a.metrics[m].min, b.metrics[m].min) << m;
    EXPECT_EQ(a.metrics[m].max, b.metrics[m].max) << m;
  }
}

TEST(Engine, SingleChunkContinuesMasterSeedStream) {
  // Chunk 0's stream is the master seed's own sequence, so a small run is
  // bit-identical to plain sequential code using Rng(seed).
  EngineOptions options;
  options.replications = 100;  // < one chunk
  options.seed = 31;
  std::vector<double> engine_draws;
  const auto report = run_replications(options, {"u"},
                                       [&](std::size_t, Rng& rng, Recorder& rec) {
                                         const double u = rng.uniform();
                                         engine_draws.push_back(u);
                                         rec.record(0, u);
                                       });
  EXPECT_EQ(report.chunks, 1u);
  Rng plain(31);
  for (std::size_t i = 0; i < engine_draws.size(); ++i) {
    ASSERT_EQ(engine_draws[i], plain.uniform()) << i;
  }
}

TEST(Engine, MetricLookupByNameThrowsOnUnknown) {
  EngineOptions options;
  options.replications = 8;
  const auto report = run_replications(
      options, {"a"}, [](std::size_t, Rng&, Recorder& rec) { rec.record(0, 1.0); });
  EXPECT_DOUBLE_EQ(report.metric("a").mean, 1.0);
  EXPECT_THROW(report.metric("missing"), InvalidArgument);
  EXPECT_THROW(
      run_replications(options, {}, ReplicationBody{}), InvalidArgument);
}

TEST(Engine, BodyExceptionsPropagate) {
  EngineOptions options;
  options.replications = 4000;  // multiple chunks on the pool
  EXPECT_THROW(run_replications(options, {"x"},
                                [](std::size_t rep, Rng&, Recorder&) {
                                  if (rep == 1234) throw InvalidArgument("boom");
                                }),
               InvalidArgument);
}

TEST(Engine, SampleManyParallelMatchesSequentialLayout) {
  const auto d = preempt::testing::reference_bathtub();
  // Below one chunk the layout is a single stream == Rng(seed).
  std::vector<double> parallel(1000);
  sample_many_parallel(d, 77, parallel);
  Rng rng(77);
  std::vector<double> sequential(1000);
  d.sample_many(rng, sequential);
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    ASSERT_EQ(parallel[i], sequential[i]) << i;
  }
  // Calling again reproduces the same draws (pure function of seed + size).
  std::vector<double> again(1000);
  sample_many_parallel(d, 77, again);
  EXPECT_EQ(parallel, again);
}

TEST(Engine, SampleManyParallelDeterministicAcrossSizesAboveChunking) {
  const dist::Exponential d(1.0);
  std::vector<double> a(40000), b(40000);
  sample_many_parallel(d, 5, a);
  sample_many_parallel(d, 5, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace preempt::mc
