#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/interpolation.hpp"
#include "common/string_util.hpp"
#include "common/table.hpp"

namespace preempt {
namespace {

// --- LinearInterpolator -----------------------------------------------------

TEST(Interpolator, HitsKnotsExactly) {
  const std::vector<double> xs = {0.0, 1.0, 3.0};
  const std::vector<double> ys = {0.0, 2.0, 4.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(3.0), 4.0);
}

TEST(Interpolator, LinearBetweenKnotsAndClampedOutside) {
  const std::vector<double> xs = {0.0, 2.0};
  const std::vector<double> ys = {0.0, 4.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f(1.0), 2.0);
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f(5.0), 4.0);
}

TEST(Interpolator, InverseOfMonotoneData) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 0.5, 1.0};
  const LinearInterpolator f(xs, ys);
  EXPECT_DOUBLE_EQ(f.inverse(0.25), 0.5);
  EXPECT_DOUBLE_EQ(f.inverse(0.75), 1.5);
  EXPECT_DOUBLE_EQ(f.inverse(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(f.inverse(2.0), 2.0);
}

TEST(Interpolator, RejectsBadInput) {
  const std::vector<double> xs = {0.0, 0.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(LinearInterpolator(xs, ys), InvalidArgument);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(LinearInterpolator(one, one), InvalidArgument);
}

// --- Table -------------------------------------------------------------------

TEST(Table, AlignedPrintContainsHeaderAndData) {
  Table t({"a", "bb"}, "demo");
  t.add_row({"1", "2"});
  std::ostringstream os;
  os << t;
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
}

TEST(Table, NumericRowFormatting) {
  Table t({"x", "y"});
  t.add_numeric_row({1.23456, 2.0}, 2);
  EXPECT_EQ(t.rows()[0][0], "1.23");
  EXPECT_EQ(t.rows()[0][1], "2.00");
}

TEST(Table, CsvExport) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), InvalidArgument);
}

// --- CSV ----------------------------------------------------------------------

TEST(Csv, ParsesSimpleDocument) {
  const CsvDocument doc = parse_csv("a,b\n1,2\n3,4\n");
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][1], "4");
  EXPECT_EQ(doc.column("b"), 1u);
}

TEST(Csv, HandlesQuotedFieldsAndEmbeddedCommas) {
  const CsvDocument doc = parse_csv("name,note\nx,\"hello, world\"\n");
  EXPECT_EQ(doc.rows[0][1], "hello, world");
}

TEST(Csv, HandlesEscapedQuotes) {
  const CsvDocument doc = parse_csv("a\n\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(doc.rows[0][0], "say \"hi\"");
}

TEST(Csv, RoundTripsThroughToCsv) {
  const std::vector<std::string> header = {"a", "b"};
  const std::vector<std::vector<std::string>> rows = {{"1", "with,comma"}, {"2", "plain"}};
  const CsvDocument doc = parse_csv(to_csv(header, rows));
  EXPECT_EQ(doc.rows[0][1], "with,comma");
  EXPECT_EQ(doc.rows[1][1], "plain");
}

TEST(Csv, RejectsRaggedRows) { EXPECT_THROW(parse_csv("a,b\n1\n"), IoError); }

TEST(Csv, RejectsUnknownColumn) {
  const CsvDocument doc = parse_csv("a,b\n1,2\n");
  EXPECT_THROW(doc.column("missing"), IoError);
}

// --- string_util ----------------------------------------------------------------

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, TrimAndLower) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(StringUtil, JoinInvertsSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(StringUtil, NumberFormatting) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_general(0.000123456, 3), "0.000123");
}

TEST(StringUtil, ParseDoubleValidatesWholeString) {
  EXPECT_DOUBLE_EQ(parse_double(" 1.5 "), 1.5);
  EXPECT_THROW(parse_double("1.5x"), IoError);
  EXPECT_THROW(parse_double(""), IoError);
}

TEST(StringUtil, ParseIntValidatesWholeString) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_THROW(parse_int("4.2"), IoError);
}

}  // namespace
}  // namespace preempt
