// Accuracy and dispatch tests for the vectorized math kernels.
//
// Two properties are asserted, matching the vkernel.hpp contract:
//   1. Accuracy: the scalar reference kernels stay within a few ULP of libm
//     over the sampling domain, including subnormal and edge inputs.
//   2. Bit-identity: the batched entry points produce byte-identical output
//     on the dispatched SIMD path and the forced-scalar path — the property
//     every sample_many golden test in the repo leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.hpp"
#include "common/vkernel.hpp"

namespace vk = preempt::vk;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kQnan = std::numeric_limits<double>::quiet_NaN();

/// Distance in representable doubles (0 for bit-equal, including -0 vs 0).
std::uint64_t ulp_distance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) && std::isnan(b) ? 0 : ~0ull;
  }
  // Map the double line onto an ordered integer line (sign-magnitude to
  // offset binary) so the difference counts representable values.
  const auto ordered = [](double x) -> std::int64_t {
    std::int64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    return bits < 0 ? std::numeric_limits<std::int64_t>::min() - bits : bits;
  };
  const std::int64_t oa = ordered(a);
  const std::int64_t ob = ordered(b);
  return oa > ob ? static_cast<std::uint64_t>(oa) - static_cast<std::uint64_t>(ob)
                 : static_cast<std::uint64_t>(ob) - static_cast<std::uint64_t>(oa);
}

/// RAII guard so a failing test cannot leave the process pinned to scalar.
struct ForceScalarGuard {
  explicit ForceScalarGuard(bool on) { vk::force_scalar(on); }
  ~ForceScalarGuard() { vk::force_scalar(false); }
};

/// Inputs that hit every special-case branch of the kernels.
std::vector<double> edge_inputs() {
  return {
      0.0, -0.0, 1.0, -1.0, kInf, -kInf, kQnan,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),        // smallest normal
      0.5 * std::numeric_limits<double>::min(),  // subnormal
      std::numeric_limits<double>::max(),
      709.0, 710.0, 709.782712893383996843,      // exp overflow boundary
      -745.0, -746.0, -708.0,                    // exp subnormal/underflow
      0.34657359027997265471, -0.34657359027997265471,  // expm1 split
      0.41421356237309514547, -0.29289321881345247560,  // log1p band edges
      1.4142135623730951, 1.4142135623730949,    // sqrt2 mantissa split
      1e-300, 1e300, 2.5e-311,                   // log subnormal prescale
  };
}

}  // namespace

TEST(VkernelAccuracy, ExpUlpSweepOverSamplingDomain) {
  preempt::Rng rng(20260808u);
  std::uint64_t worst = 0;
  // The samplers feed exp with -t/tau values in roughly [-2000, 0] and the
  // Newton refinement stays within [-50, 1]; sweep wider than both.
  for (int i = 0; i < 200000; ++i) {
    const double x = -708.0 + 1416.0 * rng.uniform();
    const std::uint64_t d = ulp_distance(vk::exp(x), std::exp(x));
    worst = std::max(worst, d);
    ASSERT_LE(d, 4u) << "x = " << x;
  }
  for (int i = 0; i < 200000; ++i) {
    const double x = -50.0 + 51.0 * rng.uniform();
    ASSERT_LE(ulp_distance(vk::exp(x), std::exp(x)), 2u) << "x = " << x;
  }
  EXPECT_GT(worst, 0u);  // not secretly calling libm
}

TEST(VkernelAccuracy, ExpSubnormalResults) {
  preempt::Rng rng(1u);
  for (int i = 0; i < 20000; ++i) {
    const double x = -709.0 - 36.0 * rng.uniform();  // results down to 2^-1075
    const double got = vk::exp(x);
    const double want = std::exp(x);
    ASSERT_LE(ulp_distance(got, want), 4u) << "x = " << x;
  }
  EXPECT_EQ(vk::exp(-745.2), std::exp(-745.2));  // deep subnormal
  EXPECT_EQ(vk::exp(-746.0), 0.0);
  EXPECT_EQ(vk::exp(-1e6), 0.0);
}

TEST(VkernelAccuracy, LogUlpSweep) {
  preempt::Rng rng(2u);
  for (int i = 0; i < 200000; ++i) {
    const double x = std::exp(-745.0 + 1454.0 * rng.uniform());
    ASSERT_LE(ulp_distance(vk::log(x), std::log(x)), 2u) << "x = " << x;
  }
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform();  // the quantile-domain inputs
    if (x == 0.0) continue;
    ASSERT_LE(ulp_distance(vk::log(x), std::log(x)), 2u) << "x = " << x;
  }
  // Subnormal inputs go through the 2^54 prescale.
  for (int i = 0; i < 20000; ++i) {
    const double x =
        std::numeric_limits<double>::denorm_min() * (1.0 + 1e6 * rng.uniform());
    ASSERT_LE(ulp_distance(vk::log(x), std::log(x)), 2u) << "x = " << x;
  }
}

TEST(VkernelAccuracy, Expm1UlpSweep) {
  preempt::Rng rng(3u);
  // Just above the |x| = ln2/2 split, exp(x) − 1 cancels ~1.5 bits, so the
  // worst case is ~3.4x exp's own error — bounded by 8 ulp, not 4.
  for (int i = 0; i < 200000; ++i) {
    const double x = -40.0 + 80.0 * rng.uniform();
    ASSERT_LE(ulp_distance(vk::expm1(x), std::expm1(x)), 8u) << "x = " << x;
  }
  for (int i = 0; i < 50000; ++i) {
    const double x = -1e-8 + 2e-8 * rng.uniform();  // tiny hazards
    ASSERT_LE(ulp_distance(vk::expm1(x), std::expm1(x)), 2u) << "x = " << x;
  }
}

TEST(VkernelAccuracy, Log1pUlpSweep) {
  preempt::Rng rng(4u);
  for (int i = 0; i < 200000; ++i) {
    const double u = rng.uniform();
    if (u == 1.0) continue;
    ASSERT_LE(ulp_distance(vk::log1p(-u), std::log1p(-u)), 2u) << "u = " << u;
  }
  for (int i = 0; i < 50000; ++i) {
    const double x = -1.0 + 2e10 * rng.uniform();
    ASSERT_LE(ulp_distance(vk::log1p(x), std::log1p(x)), 2u) << "x = " << x;
  }
}

TEST(VkernelAccuracy, SpecialValues) {
  EXPECT_TRUE(std::isnan(vk::exp(kQnan)));
  EXPECT_EQ(vk::exp(kInf), kInf);
  EXPECT_EQ(vk::exp(-kInf), 0.0);
  EXPECT_EQ(vk::exp(0.0), 1.0);
  EXPECT_EQ(vk::exp(710.0), kInf);

  EXPECT_TRUE(std::isnan(vk::log(kQnan)));
  EXPECT_TRUE(std::isnan(vk::log(-1.0)));
  EXPECT_EQ(vk::log(0.0), -kInf);
  EXPECT_EQ(vk::log(-0.0), -kInf);
  EXPECT_EQ(vk::log(kInf), kInf);
  EXPECT_EQ(vk::log(1.0), 0.0);

  EXPECT_TRUE(std::isnan(vk::expm1(kQnan)));
  EXPECT_EQ(vk::expm1(-kInf), -1.0);
  EXPECT_EQ(vk::expm1(kInf), kInf);
  EXPECT_EQ(vk::expm1(0.0), 0.0);

  EXPECT_TRUE(std::isnan(vk::log1p(kQnan)));
  EXPECT_EQ(vk::log1p(-1.0), -kInf);
  EXPECT_TRUE(std::isnan(vk::log1p(-2.0)));
  EXPECT_EQ(vk::log1p(0.0), 0.0);
  EXPECT_EQ(vk::log1p(kInf), kInf);
}

TEST(VkernelDispatch, PathReportingIsConsistent) {
  const vk::Path path = vk::active_path();
  EXPECT_NE(vk::path_name(path), nullptr);
  if (!vk::simd_compiled()) {
    EXPECT_EQ(path, vk::Path::kScalar);
  }
  {
    ForceScalarGuard guard(true);
    EXPECT_TRUE(vk::scalar_forced());
    EXPECT_EQ(vk::active_path(), vk::Path::kScalar);
  }
  EXPECT_FALSE(vk::scalar_forced());
  EXPECT_EQ(vk::active_path(), path);
}

namespace {

using ManyFn = void (*)(const double*, double*, std::size_t) noexcept;
using ScalarFn = double (*)(double) noexcept;

/// Asserts dispatched *_many ≡ forced-scalar *_many ≡ scalar kernel loop,
/// bit for bit, across sizes that exercise vector bodies and tails.
void check_bit_identity(ManyFn many, ScalarFn scalar,
                        const std::vector<double>& inputs) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{5}, std::size_t{8},
                        std::size_t{13}, std::size_t{64}, inputs.size()}) {
    ASSERT_LE(n, inputs.size());
    std::vector<double> simd_out(n, 0.125);
    std::vector<double> scalar_out(n, 0.25);
    std::vector<double> reference(n, 0.5);
    many(inputs.data(), simd_out.data(), n);
    {
      ForceScalarGuard guard(true);
      many(inputs.data(), scalar_out.data(), n);
    }
    for (std::size_t i = 0; i < n; ++i) reference[i] = scalar(inputs[i]);
    if (n > 0) {
      EXPECT_EQ(std::memcmp(simd_out.data(), scalar_out.data(),
                            n * sizeof(double)),
                0)
          << "dispatched vs forced-scalar mismatch at n = " << n;
      EXPECT_EQ(std::memcmp(simd_out.data(), reference.data(),
                            n * sizeof(double)),
                0)
          << "dispatched vs per-element kernel mismatch at n = " << n;
    }
  }
  // In-place operation (out == x) must give the same bits.
  std::vector<double> in_place(inputs);
  std::vector<double> separate(inputs.size());
  many(inputs.data(), separate.data(), inputs.size());
  many(in_place.data(), in_place.data(), in_place.size());
  EXPECT_EQ(std::memcmp(in_place.data(), separate.data(),
                        inputs.size() * sizeof(double)),
            0);
}

std::vector<double> identity_inputs(double lo, double hi) {
  preempt::Rng rng(77u);
  std::vector<double> xs = edge_inputs();
  for (int i = 0; i < 4096; ++i) xs.push_back(lo + (hi - lo) * rng.uniform());
  // Misalign the vector bodies relative to the edge block.
  xs.insert(xs.begin(), 0.75);
  return xs;
}

}  // namespace

TEST(VkernelBitIdentity, ExpManyMatchesScalarPath) {
  check_bit_identity(&vk::exp_many, &vk::exp, identity_inputs(-760.0, 760.0));
}

TEST(VkernelBitIdentity, LogManyMatchesScalarPath) {
  std::vector<double> xs = identity_inputs(0.0, 1.0);
  preempt::Rng rng(78u);
  for (int i = 0; i < 1024; ++i) {
    xs.push_back(std::exp(-745.0 + 1454.0 * rng.uniform()));
    xs.push_back(-rng.uniform());  // negative → NaN lanes
  }
  check_bit_identity(&vk::log_many, &vk::log, xs);
}

TEST(VkernelBitIdentity, Expm1ManyMatchesScalarPath) {
  check_bit_identity(&vk::expm1_many, &vk::expm1,
                     identity_inputs(-40.0, 40.0));
}

TEST(VkernelBitIdentity, Log1pManyMatchesScalarPath) {
  std::vector<double> xs = identity_inputs(-1.0, 3.0);
  preempt::Rng rng(79u);
  for (int i = 0; i < 1024; ++i) xs.push_back(-rng.uniform());
  check_bit_identity(&vk::log1p_many, &vk::log1p, xs);
}
