// Sequential CUSUM change-point detection on PIT residuals.
#include "core/cusum.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/bathtub.hpp"
#include "dist/exponential.hpp"
#include "test_util.hpp"

namespace preempt::core {
namespace {

using Side = CusumDetector::AlarmSide;

TEST(Cusum, NoAlarmUnderBaseline) {
  const auto baseline = preempt::testing::reference_bathtub();
  CusumDetector detector(baseline);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto s = detector.observe(baseline.sample(rng));
    ASSERT_FALSE(s.alarm) << "false alarm at sample " << i;
  }
  EXPECT_EQ(detector.status().samples, 2000u);
  EXPECT_EQ(detector.status().side, Side::kNone);
}

TEST(Cusum, DetectsShorterLifetimes) {
  // Provider policy change: infant mortality doubles (tau1 halves) and the
  // plateau rises. Lifetimes get stochastically shorter.
  const auto baseline = preempt::testing::reference_bathtub();
  auto shifted_params = preempt::testing::reference_params();
  shifted_params.tau1 = 0.5;
  shifted_params.scale = 0.6;
  const dist::BathtubDistribution shifted(shifted_params);

  CusumDetector detector(baseline);
  Rng rng(7);
  int alarm_at = -1;
  for (int i = 0; i < 500; ++i) {
    const auto s = detector.observe(shifted.sample(rng));
    if (s.alarm) {
      alarm_at = i;
      break;
    }
  }
  ASSERT_GE(alarm_at, 0) << "no alarm after 500 shifted samples";
  EXPECT_LT(alarm_at, 200);  // should fire well before a KS window would fill
  EXPECT_EQ(detector.status().side, Side::kShorterLifetimes);
}

TEST(Cusum, DetectsLongerLifetimes) {
  // Demand drop: preemptions get rarer (plateau falls).
  const auto baseline = preempt::testing::reference_bathtub();
  auto shifted_params = preempt::testing::reference_params();
  shifted_params.scale = 0.2;
  const dist::BathtubDistribution shifted(shifted_params);

  CusumDetector detector(baseline);
  Rng rng(11);
  int alarm_at = -1;
  for (int i = 0; i < 500; ++i) {
    if (detector.observe(shifted.sample(rng)).alarm) {
      alarm_at = i;
      break;
    }
  }
  ASSERT_GE(alarm_at, 0);
  EXPECT_EQ(detector.status().side, Side::kLongerLifetimes);
}

TEST(Cusum, AlarmLatches) {
  const auto baseline = preempt::testing::reference_bathtub();
  CusumDetector detector(baseline);
  // Hammer with zero lifetimes until alarm.
  while (!detector.observe(0.01).alarm) {
  }
  // Feeding normal data afterwards must not clear the alarm.
  Rng rng(13);
  const auto s = detector.observe(baseline.sample(rng));
  EXPECT_TRUE(s.alarm);
}

TEST(Cusum, ResetClearsState) {
  const auto baseline = preempt::testing::reference_bathtub();
  CusumDetector detector(baseline);
  while (!detector.observe(0.01).alarm) {
  }
  detector.reset();
  const auto s = detector.status();
  EXPECT_FALSE(s.alarm);
  EXPECT_EQ(s.samples, 0u);
  EXPECT_EQ(s.stat_shorter, 0.0);
  EXPECT_EQ(s.stat_longer, 0.0);
}

TEST(Cusum, ThresholdTradesDelayForFalseAlarms) {
  // A lower threshold must fire no later than a higher one on the same data.
  const auto baseline = preempt::testing::reference_bathtub();
  auto shifted_params = preempt::testing::reference_params();
  shifted_params.tau1 = 0.4;
  shifted_params.scale = 0.6;
  const dist::BathtubDistribution shifted(shifted_params);

  auto alarm_index = [&](double threshold) {
    CusumDetector::Options opts;
    opts.threshold = threshold;
    CusumDetector detector(baseline, opts);
    Rng rng(17);  // identical stream for both
    for (int i = 0; i < 2000; ++i) {
      if (detector.observe(shifted.sample(rng)).alarm) return i;
    }
    return -1;
  };
  const int fast = alarm_index(4.0);
  const int slow = alarm_index(10.0);
  ASSERT_GE(fast, 0);
  ASSERT_GE(slow, 0);
  EXPECT_LE(fast, slow);
}

TEST(Cusum, DeadlineAtomDoesNotFalseAlarm) {
  // A baseline with a big atom (low plateau): ~half the mass is deadline
  // reclaims. Feeding the baseline's own samples (with many exact-24 values)
  // must not trip the detector.
  auto params = preempt::testing::reference_params();
  params.scale = 0.25;
  const dist::BathtubDistribution baseline(params);
  CusumDetector detector(baseline);
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_FALSE(detector.observe(baseline.sample(rng)).alarm) << i;
  }
}

TEST(Cusum, WorksWithUnboundedBaseline) {
  const dist::Exponential baseline(0.1);
  CusumDetector detector(baseline);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(detector.observe(baseline.sample(rng)).alarm);
  }
  // Rate doubles -> shorter lifetimes -> alarm.
  const dist::Exponential faster(0.3);
  bool alarmed = false;
  for (int i = 0; i < 500 && !alarmed; ++i) {
    alarmed = detector.observe(faster.sample(rng)).alarm;
  }
  EXPECT_TRUE(alarmed);
  EXPECT_EQ(detector.status().side, Side::kShorterLifetimes);
}

TEST(Cusum, Preconditions) {
  const auto baseline = preempt::testing::reference_bathtub();
  CusumDetector::Options bad;
  bad.threshold = 0.0;
  EXPECT_THROW(CusumDetector(baseline, bad), InvalidArgument);
  bad.threshold = 5.0;
  bad.allowance = -1.0;
  EXPECT_THROW(CusumDetector(baseline, bad), InvalidArgument);
  CusumDetector detector(baseline);
  EXPECT_THROW(detector.observe(-1.0), InvalidArgument);
  EXPECT_THROW(detector.observe(std::numeric_limits<double>::infinity()), InvalidArgument);
}

}  // namespace
}  // namespace preempt::core
