// Tests of the Sec. 4.1 running-time analysis (Eqs. 4-8) against closed forms
// and the paper's Fig. 4 anchors.
#include "policy/running_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"
#include "test_util.hpp"

namespace preempt::policy {
namespace {

using preempt::testing::reference_bathtub;

TEST(RunningTime, UniformWasteIsHalfJobLength) {
  // Paper Sec. 6.1: "for the uniform distribution, the wasted work ... is
  // given by J/2".
  const dist::UniformLifetime u(24.0);
  for (double j : {1.0, 5.0, 12.0, 20.0}) {
    EXPECT_NEAR(expected_wasted_work_single(u, j), j / 2.0, 1e-10);
  }
}

TEST(RunningTime, UniformIncreaseIsQuadratic) {
  // Expected increase = J^2/48 for L = 24 (Sec. 6.1).
  const dist::UniformLifetime u(24.0);
  for (double j : {2.0, 6.0, 10.0, 24.0}) {
    EXPECT_NEAR(expected_increase(u, j), j * j / 48.0, 1e-10);
  }
}

TEST(RunningTime, BathtubTenHourJobAnchor) {
  // Fig. 4b text: "for a 10 hour job, the increase in running time is about
  // 30 minutes ... if failures were uniformly distributed, ... 2 hours".
  const auto d = reference_bathtub();
  const double bathtub_increase = expected_increase(d, 10.0);
  EXPECT_GT(bathtub_increase, 0.35);
  EXPECT_LT(bathtub_increase, 0.6);
  const dist::UniformLifetime u(24.0);
  EXPECT_NEAR(expected_increase(u, 10.0), 100.0 / 48.0, 1e-9);  // ≈ 2.08 h
}

TEST(RunningTime, BathtubWasteNearDeadlineMatchesFig4a) {
  // Fig. 4a: wasted hours for a ~24 h job reach ≈ 12 h.
  const auto d = reference_bathtub();
  const double w = expected_wasted_work_single(d, 23.9);
  EXPECT_GT(w, 11.0);
  EXPECT_LT(w, 12.7);
}

TEST(RunningTime, BathtubShortJobsWasteMoreThanUniform) {
  // Fig. 4b: "the high rate of early failures ... results in a slightly worse
  // running time for short jobs" — below the crossover the bathtub increase
  // exceeds the uniform increase.
  const auto d = reference_bathtub();
  const dist::UniformLifetime u(24.0);
  for (double j : {1.0, 2.0, 3.0}) {
    EXPECT_GT(expected_increase(d, j), expected_increase(u, j)) << "J=" << j;
  }
}

TEST(RunningTime, CrossoverNearFiveHours) {
  // Fig. 4b: "for jobs longer than 5 hours, a cross-over point is reached".
  const auto d = reference_bathtub();
  const dist::UniformLifetime u(24.0);
  const double crossover = crossover_job_length(d, u);
  EXPECT_GT(crossover, 3.8);
  EXPECT_LT(crossover, 5.5);
  // Beyond it, bathtub is strictly better.
  for (double j : {6.0, 10.0, 18.0}) {
    EXPECT_LT(expected_increase(d, j), expected_increase(u, j)) << "J=" << j;
  }
}

TEST(RunningTime, WasteReductionUpTo40x) {
  // Sec. 6.1: bathtub waste is "between 1x-40x" lower than uniform for long
  // jobs. Check a >4x gap at 10 h and >1x over the post-crossover range.
  const auto d = reference_bathtub();
  const dist::UniformLifetime u(24.0);
  EXPECT_GT(expected_increase(u, 10.0) / expected_increase(d, 10.0), 4.0);
  EXPECT_GT(expected_increase(u, 20.0) / expected_increase(d, 20.0), 1.0);
}

TEST(RunningTime, MakespanIsJobPlusIncrease) {
  const auto d = reference_bathtub();
  for (double j : {1.0, 6.0, 12.0}) {
    EXPECT_NEAR(expected_makespan(d, j), j + expected_increase(d, j), 1e-12);
  }
}

TEST(RunningTime, MakespanFromAgeZeroMatchesBase) {
  const auto d = reference_bathtub();
  EXPECT_NEAR(expected_makespan_from_age(d, 0.0, 6.0), expected_makespan(d, 6.0), 1e-12);
}

TEST(RunningTime, MidlifeStartHasNearZeroPenalty) {
  // Eq. 8: a job running entirely inside the stable phase sees almost no
  // expected increase.
  const auto d = reference_bathtub();
  const double penalty = expected_makespan_from_age(d, 8.0, 4.0) - 4.0;
  EXPECT_LT(penalty, 0.01);
  EXPECT_GE(penalty, 0.0);
}

TEST(RunningTime, DeadlineStartHasHugePenalty) {
  const auto d = reference_bathtub();
  const double penalty = expected_makespan_from_age(d, 19.0, 6.0) - 6.0;
  EXPECT_GT(penalty, 5.0);
}

TEST(RunningTime, ExponentialWasteIsNotHalfJob) {
  // For memoryless failures E[W1] < J/2 (density decays), the contrast the
  // paper draws in Sec. 4.1.
  const dist::Exponential e(0.5);
  const double j = 4.0;
  EXPECT_LT(expected_wasted_work_single(e, j), j / 2.0);
}

TEST(RunningTime, ZeroJobLengthEdgeCases) {
  const auto d = reference_bathtub();
  EXPECT_DOUBLE_EQ(expected_wasted_work_single(d, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_increase(d, 0.0), 0.0);
  EXPECT_THROW(expected_increase(d, -1.0), InvalidArgument);
}

TEST(RunningTime, MultiFailureMakespanUniformClosedForm) {
  // Uniform(24), job 6 h: p = 3/4, E[X 1{X<=6}] = 36/48 = 0.75
  // -> E[M] = 6 + 0.75/0.75 = 7 (matches the plan-evaluator closed form).
  const dist::UniformLifetime u(24.0);
  EXPECT_NEAR(expected_makespan_with_restarts(u, 6.0), 7.0, 1e-9);
}

TEST(RunningTime, MultiFailureDominatesSingleFailureApproximation) {
  // Multiple retries can only add time relative to Eq. 7's at-most-one-
  // failure approximation.
  const auto d = reference_bathtub();
  for (double j : {1.0, 4.0, 8.0, 16.0}) {
    EXPECT_GE(expected_makespan_with_restarts(d, j), expected_makespan(d, j) - 1e-9)
        << "J=" << j;
  }
}

TEST(RunningTime, MultiFailureClosedFormValue) {
  // F(2h) ≈ 0.389, E[X 1{X<=2}] ≈ 0.267 -> E[M] = 2 + 0.267/0.611 ≈ 2.44,
  // noticeably above Eq. 7's single-failure 2 + 0.267 = 2.27.
  const auto d = reference_bathtub();
  const double m = expected_makespan_with_restarts(d, 2.0);
  EXPECT_NEAR(m, 2.4375, 0.01);
  EXPECT_GT(m, expected_makespan(d, 2.0));
}

TEST(RunningTime, MultiFailureChargesRestartOverhead) {
  const auto d = reference_bathtub();
  const double cheap = expected_makespan_with_restarts(d, 4.0, 0.0);
  const double pricey = expected_makespan_with_restarts(d, 4.0, 0.25);
  EXPECT_GT(pricey, cheap);
}

TEST(RunningTime, MultiFailureRejectsImpossibleJobs) {
  // A 25 h job can never beat the 24 h deadline without checkpointing.
  const auto d = reference_bathtub();
  EXPECT_THROW(expected_makespan_with_restarts(d, 25.0), InvalidArgument);
}

TEST(RunningTime, CrossoverReturnsNanWhenNoCrossing) {
  const dist::UniformLifetime u(24.0);
  const double c = crossover_job_length(u, u);  // identical distributions
  EXPECT_TRUE(std::isnan(c) || c >= 0.0);  // degenerate: zero difference everywhere
}

}  // namespace
}  // namespace preempt::policy
