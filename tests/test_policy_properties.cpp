// Cross-regime property sweep (TEST_P over every VM type's ground truth):
// the policy guarantees the paper argues for must hold in *every* preemption
// regime, not just the headline one.
#include <gtest/gtest.h>

#include <numeric>

#include "dist/uniform.hpp"
#include "policy/checkpoint.hpp"
#include "policy/running_time.hpp"
#include "policy/scheduling.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::policy {
namespace {

struct RegimeCase {
  std::string label;
  trace::RegimeKey key;
};

std::vector<RegimeCase> regimes() {
  std::vector<RegimeCase> out;
  for (const trace::VmSpec& spec : trace::all_vm_specs()) {
    trace::RegimeKey key;
    key.type = spec.type;
    out.push_back({spec.name, key});
  }
  // One night regime and one idle regime for diversity.
  trace::RegimeKey night;
  night.period = trace::DayPeriod::kNight;
  out.push_back({std::string("n1_highcpu_16_night"), night});
  trace::RegimeKey idle;
  idle.workload = trace::WorkloadKind::kIdle;
  out.push_back({std::string("n1_highcpu_16_idle"), idle});
  return out;
}

class RegimeProps : public ::testing::TestWithParam<RegimeCase> {
 protected:
  dist::BathtubDistribution truth() const {
    return trace::ground_truth_distribution(GetParam().key);
  }
};

TEST_P(RegimeProps, ModelDrivenNeverWorseThanMemoryless) {
  // The literal Eq. 8 rule can be *marginally* worse than memoryless for
  // very short jobs (it rejects young VMs whose conditional risk is already
  // below the fresh-VM level — see DESIGN.md); allow half a percentage point
  // there, and demand strict dominance from 3 h up.
  const auto d = truth();
  const ModelDrivenScheduler ours(d.clone());
  const MemorylessScheduler baseline(d.clone());
  for (double job : {1.0, 2.0}) {
    EXPECT_LE(ours.average_failure_probability(job),
              baseline.average_failure_probability(job) + 0.005)
        << "job=" << job;
  }
  for (double job : {3.0, 6.0, 12.0, 18.0}) {
    EXPECT_LE(ours.average_failure_probability(job),
              baseline.average_failure_probability(job) + 1e-9)
        << "job=" << job;
  }
}

TEST_P(RegimeProps, ConditionalRuleAlsoNeverWorse) {
  const auto d = truth();
  const ModelDrivenScheduler ours(d.clone(), d.clone(), ReuseRule::kConditionalWaste);
  const MemorylessScheduler baseline(d.clone());
  for (double job : {1.0, 6.0, 12.0}) {
    EXPECT_LE(ours.average_failure_probability(job),
              baseline.average_failure_probability(job) + 1e-9)
        << "job=" << job;
  }
}

TEST_P(RegimeProps, FreshVmDecisionIsAlwaysReuse) {
  // E[T_0] <= E[T_0] trivially: a brand-new VM is always acceptable.
  const auto d = truth();
  const ModelDrivenScheduler ours(d.clone());
  for (double job : {0.5, 4.0, 12.0}) {
    EXPECT_TRUE(ours.decide(0.0, job).reuse) << "job=" << job;
  }
}

TEST_P(RegimeProps, FailureProbabilityMonotoneInJobLength) {
  const auto d = truth();
  for (double age : {0.0, 6.0, 15.0}) {
    double prev = -1.0;
    for (double job : {0.5, 2.0, 4.0, 8.0, 16.0}) {
      const double p = job_failure_probability(d, age, job);
      EXPECT_GE(p, prev - 1e-12) << "age=" << age << " job=" << job;
      prev = p;
    }
  }
}

TEST_P(RegimeProps, ExpectedIncreaseMonotoneInJobLength) {
  const auto d = truth();
  double prev = -1.0;
  for (double job : {1.0, 4.0, 8.0, 16.0, 23.0}) {
    const double inc = expected_increase(d, job);
    EXPECT_GE(inc, prev - 1e-12);
    prev = inc;
  }
}

TEST_P(RegimeProps, WasteNeverExceedsJobLength) {
  // E[W1(T)] <= T: you cannot lose more than the whole job to one failure.
  const auto d = truth();
  for (double job : {0.5, 3.0, 9.0, 20.0, 23.9}) {
    EXPECT_LE(expected_wasted_work_single(d, job), job + 1e-9) << "job=" << job;
  }
}

TEST_P(RegimeProps, DpScheduleCoversWorkAndBeatsNoCheckpoint) {
  const auto d = truth();
  CheckpointConfig cfg;
  cfg.step_hours = 2.0 / 60.0;  // coarser grid keeps the sweep fast
  const CheckpointDp dp(d, 4.0, cfg);
  const auto schedule = dp.schedule(0.0);
  const double total = std::accumulate(schedule.begin(), schedule.end(), 0.0);
  EXPECT_NEAR(total, 4.0, 1e-6);
  const double none =
      evaluate_plan(d, no_checkpoint_plan(4.0, cfg.checkpoint_cost_hours), 0.0, cfg);
  EXPECT_LE(dp.expected_makespan(0.0), none + 1e-9);
  EXPECT_GE(dp.expected_makespan(0.0), 4.0 - 1e-9);
}

TEST_P(RegimeProps, DpMakespanDecreasesIntoTheStablePhase) {
  const auto d = truth();
  CheckpointConfig cfg;
  cfg.step_hours = 2.0 / 60.0;
  const CheckpointDp dp(d, 2.0, cfg);
  EXPECT_LE(dp.expected_makespan(8.0), dp.expected_makespan(0.0) + 1e-9);
}

TEST_P(RegimeProps, BathtubBeatsUniformForLongJobs) {
  // The Fig. 4 argument generalises: past the crossover, constrained bathtub
  // preemptions waste less than uniform ones in every regime.
  const auto d = truth();
  const dist::UniformLifetime uniform(24.0);
  EXPECT_LT(expected_increase(d, 16.0), expected_increase(uniform, 16.0));
}

INSTANTIATE_TEST_SUITE_P(AllRegimes, RegimeProps, ::testing::ValuesIn(regimes()),
                         [](const ::testing::TestParamInfo<RegimeCase>& param_info) {
                           std::string name = param_info.param.label;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace preempt::policy
