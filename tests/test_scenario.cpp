// The declarative scenario subsystem: JSON round-trips and strict parsing,
// the by-name distribution factory, sweep expansion, the built-in registry,
// and golden determinism — scenario::run must be byte-identical to the
// pre-refactor hand-wired BatchService / mc-engine paths for equivalent
// spec + seed.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/random.hpp"
#include "common/vkernel.hpp"
#include "dist/factory.hpp"
#include "mc/engine.hpp"
#include "scenario/registry.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/workloads.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::scenario {
namespace {

ScenarioSpec quick_service_spec() {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kService;
  spec.app = "shapes";
  spec.jobs = 10;
  spec.cluster_size = 8;
  spec.seed = 99;
  spec.ground_truth.source = DistributionSpec::Source::kRegime;
  return spec;
}

// --- distribution factory ---------------------------------------------------

TEST(DistFactory, ConstructsEveryParametricFamilyByName) {
  const std::vector<std::pair<std::string, std::vector<double>>> cases = {
      {"bathtub", {0.45, 1.0, 0.8, 24.0, 24.0}},
      {"exponential", {0.5}},
      {"weibull", {0.2, 1.4}},
      {"gamma", {2.0, 0.5}},
      {"lognormal", {1.0, 0.6}},
      {"uniform", {24.0}},
      {"gompertz-makeham", {0.02, 0.01, 0.3}},
      {"exponentiated_weibull", {0.2, 1.5, 0.7}},
  };
  for (const auto& [family, params] : cases) {
    const auto d = dist::make_distribution(family, params);
    ASSERT_NE(d, nullptr) << family;
    EXPECT_EQ(d->name(), family);
  }
}

TEST(DistFactory, ConstructsDataFamiliesAndTruncatedWrappers) {
  const auto empirical = dist::make_distribution("empirical", std::vector<double>{1.0, 2.0, 5.0});
  EXPECT_EQ(empirical->name(), "empirical");
  const auto piecewise =
      dist::make_distribution("piecewise", std::vector<double>{0.0, 12.0, 0.0, 0.8});
  EXPECT_EQ(piecewise->name(), "piecewise");
  const auto truncated =
      dist::make_distribution("exponential-truncated", std::vector<double>{0.5, 24.0});
  EXPECT_EQ(truncated->name(), "exponential-truncated");
  EXPECT_DOUBLE_EQ(truncated->support_end(), 24.0);
}

TEST(DistFactory, RejectsUnknownFamilyAndWrongArity) {
  EXPECT_THROW(dist::make_distribution("gaussian", std::vector<double>{0.0, 1.0}),
               InvalidArgument);
  try {
    dist::make_distribution("weibull", std::vector<double>{0.2});
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expects 2 parameters"), std::string::npos) << what;
    EXPECT_NE(what.find("lambda, k"), std::string::npos) << what;
  }
}

// --- JSON round-trip + strict parsing ---------------------------------------

TEST(ScenarioJson, ServiceSpecRoundTrips) {
  ScenarioSpec spec = quick_service_spec();
  spec.name = "rt";
  spec.vm_type = trace::VmType::kN1Highcpu32;
  spec.policy = sim::ReusePolicyKind::kAlwaysFresh;
  spec.replications = 4;
  spec.decision.source = DistributionSpec::Source::kFamily;
  spec.decision.family = "weibull";
  spec.decision.params = {0.2, 1.4};
  const JsonValue json = to_json(spec);
  const ScenarioSpec back = scenario_from_json(json);
  EXPECT_EQ(json.dump(), to_json(back).dump());
  EXPECT_EQ(back.policy, sim::ReusePolicyKind::kAlwaysFresh);
  EXPECT_EQ(back.decision.family, "weibull");
  ASSERT_TRUE(back.vm_type.has_value());
  EXPECT_EQ(*back.vm_type, trace::VmType::kN1Highcpu32);
}

TEST(ScenarioJson, CheckpointAndPortfolioSpecsRoundTrip) {
  ScenarioSpec ck;
  ck.kind = ScenarioKind::kCheckpoint;
  ck.scheduler = "young-daly";
  ck.job_hours = 6.0;
  ck.start_age_hours = 2.0;
  ck.replications = 500;
  ck.ground_truth.source = DistributionSpec::Source::kFitted;
  ck.ground_truth.fit_samples = 250;
  ck.ground_truth.fit_seed = 7;
  EXPECT_EQ(to_json(ck).dump(), to_json(scenario_from_json(to_json(ck))).dump());

  ScenarioSpec pf;
  pf.kind = ScenarioKind::kPortfolio;
  pf.jobs = 40;
  pf.job_hours = 0.5;
  pf.risk_bound = 0.1;
  pf.correlation_penalty = 1.0;
  EXPECT_EQ(to_json(pf).dump(), to_json(scenario_from_json(to_json(pf))).dump());
}

TEST(ScenarioJson, StrictParsingRejectsBadSpecs) {
  // Unknown field.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"kind":"service","warp":9})")),
               InvalidArgument);
  // Field of another kind.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"kind":"service","scheduler":"dp"})")),
               InvalidArgument);
  // Portfolio scenarios have no single ground truth.
  EXPECT_THROW(scenario_from_json(
                   parse_json(R"({"kind":"portfolio","ground_truth":{"source":"regime"}})")),
               InvalidArgument);
  // Bad enum values.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"kind":"quantum"})")), InvalidArgument);
  EXPECT_THROW(scenario_from_json(parse_json(R"({"policy":"yolo"})")), InvalidArgument);
  EXPECT_THROW(scenario_from_json(parse_json(R"({"vm_type":"m5.large"})")), InvalidArgument);
  // Range violations.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"jobs":0})")), InvalidArgument);
  EXPECT_THROW(scenario_from_json(parse_json(R"({"replications":0})")), InvalidArgument);
  EXPECT_THROW(scenario_from_json(parse_json(R"({"jobs":2.5})")), InvalidArgument);
  // Unknown app and un-packable repack target.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"app":"doom"})")), InvalidArgument);
  // A cluster smaller than the workload's gang can never dispatch.
  EXPECT_THROW(scenario_from_json(parse_json(R"({"app":"shapes","vms":2})")),
               InvalidArgument);
  // Bad ground-truth family parameters surface at parse time.
  EXPECT_THROW(
      scenario_from_json(parse_json(
          R"({"ground_truth":{"source":"family","family":"weibull","params":[1]}})")),
      InvalidArgument);
}

// --- sweep expansion ---------------------------------------------------------

TEST(Sweep, ExpandsCartesianGridWithNamedCells) {
  SweepSpec sweep;
  sweep.base = quick_service_spec();
  sweep.base.name = "grid";
  sweep.axes = parse_axes("vms=4,8,16;policy=model,fresh;seed=1,2");
  EXPECT_EQ(sweep.cardinality(), 12u);
  const auto cells = expand(sweep);
  ASSERT_EQ(cells.size(), 12u);
  EXPECT_EQ(cells.front().name, "grid/vms=4/policy=model/seed=1");
  EXPECT_EQ(cells.back().name, "grid/vms=16/policy=fresh/seed=2");
  // The last axis varies fastest.
  EXPECT_EQ(cells[1].name, "grid/vms=4/policy=model/seed=2");
  EXPECT_EQ(cells[0].cluster_size, 4u);
  EXPECT_EQ(cells[11].policy, sim::ReusePolicyKind::kAlwaysFresh);
}

TEST(Sweep, RejectsBadAxes) {
  SweepSpec sweep;
  sweep.base = quick_service_spec();
  SweepAxis axis;
  axis.field = "vms";
  EXPECT_THROW(expand({sweep.base, {axis}}), InvalidArgument);  // no values
  axis.values = {JsonValue(8)};
  EXPECT_THROW(expand({sweep.base, {axis, axis}}), InvalidArgument);  // duplicate
  SweepAxis unknown;
  unknown.field = "warp";
  unknown.values = {JsonValue(1)};
  EXPECT_THROW(expand({sweep.base, {unknown}}), InvalidArgument);
  // A single invalid corner rejects the whole grid.
  SweepAxis jobs;
  jobs.field = "jobs";
  jobs.values = {JsonValue(10), JsonValue(0)};
  EXPECT_THROW(expand({sweep.base, {jobs}}), InvalidArgument);
}

TEST(Sweep, ParseAxesTypesValues) {
  const auto axes = parse_axes("vms=16,32;app=shapes;checkpointing=true");
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_EQ(axes[0].field, "vms");
  ASSERT_EQ(axes[0].values.size(), 2u);
  EXPECT_TRUE(axes[0].values[0].is_number());
  EXPECT_TRUE(axes[1].values[0].is_string());
  EXPECT_TRUE(axes[2].values[0].is_bool());
  EXPECT_THROW(parse_axes("noequals"), InvalidArgument);
  EXPECT_THROW(parse_axes("vms="), InvalidArgument);
}

TEST(Sweep, JsonRoundTripAndBareScenarioAccepted) {
  SweepSpec sweep;
  sweep.base = quick_service_spec();
  sweep.base.name = "rt";
  sweep.axes = parse_axes("vms=8,16");
  const SweepSpec back = sweep_from_json(to_json(sweep));
  EXPECT_EQ(to_json(back).dump(), to_json(sweep).dump());
  // A bare scenario object is a single-cell sweep.
  const SweepSpec bare = sweep_from_json(to_json(sweep.base));
  EXPECT_TRUE(bare.axes.empty());
  EXPECT_EQ(expand(bare).size(), 1u);
}

// --- registry ----------------------------------------------------------------

TEST(Registry, BuiltinsValidateExpandAndRoundTrip) {
  ASSERT_GE(builtin_scenarios().size(), 8u);
  for (const NamedScenario& named : builtin_scenarios()) {
    SCOPED_TRACE(named.name);
    EXPECT_FALSE(named.summary.empty());
    const auto cells = expand(named.sweep);  // validates every cell
    EXPECT_GE(cells.size(), 1u);
    const JsonValue json = to_json(named.sweep.base);
    EXPECT_EQ(json.dump(), to_json(scenario_from_json(json)).dump());
  }
  EXPECT_EQ(find_builtin("nope"), nullptr);
  ASSERT_NE(find_builtin("paper-fig09a-cost"), nullptr);
  EXPECT_EQ(expand(find_builtin("paper-fig09a-cost")->sweep).size(), 3u);
  EXPECT_EQ(find_builtin("grid-cluster-policy")->sweep.cardinality(), 12u);
}

// --- golden determinism ------------------------------------------------------

/// scenario::run of a Fig. 9a cell must equal the pre-refactor hand-wired
/// BatchService setup field for field (bit-identical doubles).
TEST(ScenarioGolden, ServiceCellMatchesHandWiredFig09aPath) {
  trace::RegimeKey key{trace::VmType::kN1Highcpu32, trace::Zone::kUsCentral1C,
                       trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};
  const auto truth = trace::ground_truth_distribution(key);
  const sim::Workload w =
      sim::repack_for_vm_type(sim::nanoconfinement(), trace::VmType::kN1Highcpu32);
  sim::ServiceConfig cfg;
  cfg.vm_type = trace::VmType::kN1Highcpu32;
  cfg.cluster_size = 32;
  cfg.seed = 4242;
  sim::BatchService svc(cfg, truth.clone(), truth.clone());
  sim::BagOfJobs bag;
  bag.name = w.name;
  bag.spec = w.job;
  bag.count = 100;
  svc.submit_bag(bag);
  const sim::ServiceReport expected = svc.run();

  const auto cells = expand(find_builtin("paper-fig09a-cost")->sweep);
  ASSERT_EQ(cells.front().app, "nanoconfinement");
  const sim::ServiceReport actual = run(cells.front()).report;

  EXPECT_EQ(actual.jobs_completed, expected.jobs_completed);
  EXPECT_EQ(actual.makespan_hours, expected.makespan_hours);
  EXPECT_EQ(actual.ideal_makespan_hours, expected.ideal_makespan_hours);
  EXPECT_EQ(actual.increase_fraction, expected.increase_fraction);
  EXPECT_EQ(actual.total_cost, expected.total_cost);
  EXPECT_EQ(actual.cost_per_job, expected.cost_per_job);
  EXPECT_EQ(actual.on_demand_cost_per_job, expected.on_demand_cost_per_job);
  EXPECT_EQ(actual.cost_reduction_factor, expected.cost_reduction_factor);
  EXPECT_EQ(actual.preemptions, expected.preemptions);
  EXPECT_EQ(actual.preemptions_total, expected.preemptions_total);
  EXPECT_EQ(actual.vms_launched, expected.vms_launched);
  EXPECT_EQ(actual.fresh_vm_launches, expected.fresh_vm_launches);
  EXPECT_EQ(actual.total_vm_hours, expected.total_vm_hours);
  EXPECT_EQ(actual.wasted_hours, expected.wasted_hours);
}

/// Replicated service scenarios must reproduce the legacy daemon fan-out:
/// same metric names, same substream seeding, same rep-0 representative.
TEST(ScenarioGolden, ReplicatedRunMatchesHandWiredMcFanOut) {
  ScenarioSpec spec = quick_service_spec();
  spec.replications = 3;

  // Hand-wired legacy path (the daemon's historical execute_bag loop).
  const auto ground_truth = make_ground_truth(spec);
  const sim::Workload workload = resolve_workload(spec);
  auto run_once = [&](std::uint64_t seed) {
    sim::ServiceConfig cfg;
    cfg.vm_type = workload.vm_type;
    cfg.cluster_size = spec.cluster_size;
    cfg.seed = seed;
    cfg.reuse_policy = spec.policy;
    sim::BatchService service(cfg, ground_truth->clone(), ground_truth->clone());
    sim::BagOfJobs bag;
    bag.name = spec.app;
    bag.spec = workload.job;
    bag.count = spec.jobs;
    service.submit_bag(bag);
    return service.run();
  };
  mc::EngineOptions engine;
  engine.replications = spec.replications;
  engine.seed = spec.seed;
  sim::ServiceReport rep0;
  const mc::ReplicationReport expected = mc::run_replications(
      engine,
      {"cost_per_job", "makespan_hours", "cost_reduction_factor", "preemptions", "wasted_hours"},
      [&](std::size_t replication, Rng&, mc::Recorder& rec) {
        const sim::ServiceReport r = run_once(substream_seed(spec.seed, replication));
        rec.record(0, r.cost_per_job);
        rec.record(1, r.makespan_hours);
        rec.record(2, r.cost_reduction_factor);
        rec.record(3, static_cast<double>(r.preemptions));
        rec.record(4, r.wasted_hours);
        if (replication == 0) rep0 = r;
      });

  const ScenarioResult actual = run(spec);
  EXPECT_EQ(actual.report.cost_per_job, rep0.cost_per_job);
  EXPECT_EQ(actual.report.makespan_hours, rep0.makespan_hours);
  ASSERT_EQ(actual.metrics.size(), expected.metrics.size());
  for (std::size_t i = 0; i < expected.metrics.size(); ++i) {
    EXPECT_EQ(actual.metrics[i].name, expected.metrics[i].name);
    EXPECT_EQ(actual.metrics[i].mean, expected.metrics[i].mean);
    EXPECT_EQ(actual.metrics[i].std_error, expected.metrics[i].std_error);
    EXPECT_EQ(actual.metrics[i].ci95_half, expected.metrics[i].ci95_half);
    EXPECT_EQ(actual.metrics[i].min, expected.metrics[i].min);
    EXPECT_EQ(actual.metrics[i].max, expected.metrics[i].max);
  }
}

TEST(ScenarioGolden, SameSpecSameSeedIsDeterministic) {
  ScenarioSpec spec = quick_service_spec();
  spec.replications = 2;
  EXPECT_EQ(run(spec).to_json().dump(), run(spec).to_json().dump());
}

TEST(ScenarioGolden, CheckpointScenarioMatchesDirectSimulatePlan) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kCheckpoint;
  spec.scheduler = "young-daly";
  spec.job_hours = 2.0;
  spec.mttf_hours = 1.0;
  spec.seed = 77;
  spec.replications = 200;

  const auto truth = make_ground_truth(spec);
  const policy::CheckpointPlan plan =
      policy::young_daly_plan(2.0, 1.0, spec.checkpoint_cost_hours);
  policy::SimulationOptions options;
  options.runs = 200;
  options.seed = 77;
  const policy::SimulatedMakespan expected = policy::simulate_plan(*truth, plan, options);

  const ScenarioResult actual = run(spec);
  EXPECT_EQ(actual.makespan.mean_hours, expected.mean_hours);
  EXPECT_EQ(actual.makespan.ci95_half_hours, expected.ci95_half_hours);
  EXPECT_EQ(actual.makespan.mean_preemptions, expected.mean_preemptions);
  EXPECT_EQ(actual.makespan.runs, 200u);
}

TEST(ScenarioRun, FamilyGroundTruthAndRepackedWorkloads) {
  // A service scenario under an explicit (misfit) exponential world, with
  // the gang repacked onto 8-core VMs: the Fig. 7-style sensitivity shape.
  ScenarioSpec spec = quick_service_spec();
  spec.vm_type = trace::VmType::kN1Highcpu8;  // 64 cores -> gang of 8
  spec.ground_truth.source = DistributionSpec::Source::kFamily;
  spec.ground_truth.family = "exponential-truncated";
  spec.ground_truth.params = {1.0 / 6.0, 24.0};
  const ScenarioResult result = run(spec);
  EXPECT_EQ(result.report.jobs_completed, 10u);
  EXPECT_GT(result.report.cost_per_job, 0.0);
}

TEST(ScenarioFleet, RegistrySweepRoundTripsThroughJson) {
  for (const char* name : {"fleet-quick", "fleet-burst-cycle", "fleet-small-bursts",
                           "fleet-migrations"}) {
    const NamedScenario* named = find_builtin(name);
    ASSERT_NE(named, nullptr) << name;
    EXPECT_EQ(named->sweep.base.kind, ScenarioKind::kFleet) << name;
    const std::string once = to_json(named->sweep).dump(2);
    const SweepSpec parsed = sweep_from_json(to_json(named->sweep));
    EXPECT_EQ(to_json(parsed).dump(2), once) << name;
    for (const ScenarioSpec& cell : expand(parsed)) validate(cell);
  }
}

TEST(ScenarioFleet, PlacementFieldAliasesTheFleetBlock) {
  const NamedScenario* named = find_builtin("fleet-quick");
  ASSERT_NE(named, nullptr);
  SweepSpec sweep = named->sweep;
  apply_override(sweep, "placement", JsonValue("mbfd"));
  EXPECT_EQ(sweep.base.fleet.placement, "mbfd");
  EXPECT_THROW(apply_override(sweep, "placement", JsonValue("bogus")), InvalidArgument);
}

// Acceptance: the flagship fleet scenario simulates >= 1,000 machines and
// >= 100,000 tasks, reports every per-SLA metric with replication stats, and
// is byte-identical across runs (the mc engine's substream seeding makes the
// result independent of worker-thread interleaving as well).
TEST(ScenarioFleet, BurstCycleScaleAndDeterminismAcceptance) {
  const NamedScenario* named = find_builtin("fleet-burst-cycle");
  ASSERT_NE(named, nullptr);
  const std::vector<ScenarioSpec> cells = expand(named->sweep);
  ASSERT_EQ(cells.size(), 1u);

  const ScenarioResult first = run(cells.front());
  EXPECT_GE(first.fleet_report.machines, 1000u);
  EXPECT_GE(first.fleet_report.tasks_submitted, 100000u);
  EXPECT_GT(first.fleet_report.total_energy_kwh, 0.0);
  EXPECT_GT(first.fleet_report.machine_preemptions, 0u);
  for (const char* metric :
       {"sla0_violation_rate", "sla1_violation_rate", "sla2_violation_rate",
        "sla3_violation_rate", "total_energy_kwh", "migrations", "machine_preemptions",
        "task_preemptions", "tasks_completed", "makespan_hours"}) {
    const bool found = std::any_of(first.metrics.begin(), first.metrics.end(),
                                   [&](const auto& m) { return m.name == metric; });
    EXPECT_TRUE(found) << metric;
  }

  const ScenarioResult second = run(cells.front());
  EXPECT_EQ(first.to_json().dump(), second.to_json().dump());
}

// Acceptance: the fleet fast paths are pure optimizations. For every
// registered fleet scenario, the indexed placement policies, the batched
// per-machine preemption draws, and the SIMD sampling kernels each produce
// a byte-identical report to their reference counterparts (-scan policies,
// batch size 1, forced-scalar kernels).
TEST(ScenarioFleet, FastPathsAreByteIdenticalOnEveryRegisteredScenario) {
  for (const char* name : {"fleet-quick", "fleet-burst-cycle", "fleet-small-bursts",
                           "fleet-migrations"}) {
    const NamedScenario* named = find_builtin(name);
    ASSERT_NE(named, nullptr) << name;
    const std::vector<ScenarioSpec> cells = expand(named->sweep);
    ASSERT_EQ(cells.size(), 1u) << name;
    const ScenarioSpec& base = cells.front();

    const std::string reference = run(base).to_json().dump();

    {
      ScenarioSpec scan = base;
      scan.fleet.placement += "-scan";
      EXPECT_EQ(run(scan).to_json().dump(), reference) << name << " (indexed vs scan)";
    }
    {
      ScenarioSpec per_draw = base;
      per_draw.fleet.preemption_draw_batch = 1;
      EXPECT_EQ(run(per_draw).to_json().dump(), reference) << name << " (batch 8 vs 1)";
    }
    {
      vk::force_scalar(true);
      const std::string scalar = run(base).to_json().dump();
      vk::force_scalar(false);
      EXPECT_EQ(scalar, reference) << name << " (simd vs scalar)";
    }
  }
}

TEST(ScenarioRun, PortfolioScenarioIsDeterministic) {
  ScenarioSpec spec;
  spec.kind = ScenarioKind::kPortfolio;
  spec.jobs = 30;
  spec.job_hours = 0.25;
  spec.catalog_vms_per_cell = 20;  // keep the 40-market fit cheap
  spec.replications = 2;
  const ScenarioResult a = run(spec);
  const ScenarioResult b = run(spec);
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.market_report.jobs_completed, 30u);
}

}  // namespace
}  // namespace preempt::scenario
