// HTTP message parsing and the threaded loopback server + client pair.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "api/http.hpp"
#include "api/http_client.hpp"
#include "api/http_server.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace preempt::api {
namespace {

// ------------------------------------------------------------------- parser

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  const std::string wire = "GET /path?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()));
  ASSERT_TRUE(parser.complete());
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/path?x=1");
  EXPECT_EQ(req.path(), "/path");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.headers.at("host"), "localhost");
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpRequestParser, ParsesPostBodyAcrossFeeds) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /api HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
  // Feed byte by byte: the parser must be fully incremental.
  for (char c : wire) {
    ASSERT_TRUE(parser.feed(&c, 1));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpRequestParser, HeaderKeysAreLowercasedAndTrimmed) {
  HttpRequestParser parser;
  const std::string wire = "GET / HTTP/1.1\r\nX-Thing:   padded value  \r\n\r\n";
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()));
  EXPECT_EQ(parser.request().headers.at("x-thing"), "padded value");
}

TEST(HttpRequestParser, RejectsMalformedInput) {
  {
    HttpRequestParser parser;
    const std::string wire = "NOT-HTTP\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
    EXPECT_TRUE(parser.failed());
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\nbroken header line\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
}

TEST(HttpRequestParser, RejectsOversizedBodies) {
  // A syntactically valid length beyond the cap is a size rejection (the
  // server answers 413), distinguishable from a malformed header (400).
  HttpRequestParser parser;
  const std::string wire = "POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n";
  EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  EXPECT_TRUE(parser.body_too_large());
  EXPECT_NE(parser.error().find("exceeds"), std::string::npos);
}

TEST(HttpRequestParser, ContentLengthMustBeDigitsOnly) {
  // (Leading/trailing whitespace is trimmed from header values before this
  // check, so " 12" is fine; signs, hex, and trailing junk are not.)
  for (const char* bad : {"-1", "+5", "12abc", "0x10", ""}) {
    HttpRequestParser parser;
    const std::string wire =
        "POST / HTTP/1.1\r\ncontent-length: " + std::string(bad) + "\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size())) << bad;
    EXPECT_TRUE(parser.failed()) << bad;
    EXPECT_FALSE(parser.body_too_large()) << bad;  // malformed, not merely big
    EXPECT_EQ(parser.error(), "bad content-length") << bad;
  }
}

TEST(HttpRequestParser, ContentLengthOverflowIsTooLarge) {
  // 20 nines overflows unsigned 64-bit: size rejection, not a crash.
  HttpRequestParser parser;
  const std::string wire =
      "POST / HTTP/1.1\r\ncontent-length: 99999999999999999999\r\n\r\n";
  EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  EXPECT_TRUE(parser.body_too_large());
}

TEST(HttpRequestParser, SetMaxBodyTightensTheCap) {
  HttpRequestParser parser;
  parser.set_max_body(10);
  const std::string wire = "POST / HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
  EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  EXPECT_TRUE(parser.body_too_large());
  EXPECT_NE(parser.error().find("10-byte"), std::string::npos);
}

TEST(HttpRequestParser, RemainderCarriesPipelinedBytes) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "abc");
  // The next request's bytes survive for the keep-alive loop to re-feed.
  HttpRequestParser next;
  const std::string rest = parser.remainder();
  ASSERT_TRUE(next.feed(rest.data(), rest.size()));
  ASSERT_TRUE(next.complete());
  EXPECT_EQ(next.request().target, "/b");
}

TEST(HttpRequest, QueryParsing) {
  HttpRequest req;
  req.target = "/p?a=1&b=two%20words&empty=&flag";
  EXPECT_EQ(req.query("a").value(), "1");
  EXPECT_EQ(req.query("b").value(), "two words");
  EXPECT_EQ(req.query("empty").value(), "");
  EXPECT_EQ(req.query("flag").value(), "");
  EXPECT_FALSE(req.query("missing").has_value());
  HttpRequest no_query;
  no_query.target = "/p";
  EXPECT_FALSE(no_query.query("a").has_value());
}

TEST(UrlDecode, Basics) {
  EXPECT_EQ(url_decode("a%2Fb%3Dc"), "a/b=c");
  EXPECT_EQ(url_decode("no-escapes"), "no-escapes");
  EXPECT_EQ(url_decode("%zz"), "%zz");  // malformed escape passes through
  EXPECT_EQ(url_decode("%41%61"), "Aa");
}

TEST(HttpResponse, SerializeCarriesContentLength) {
  HttpResponse r = HttpResponse::json(200, R"({"k":1})");
  const std::string wire = r.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-type: application/json"), std::string::npos);
}

// ------------------------------------------------------------- live server

TEST(HttpServer, RoundTripsRequests) {
  HttpServer server;
  std::atomic<int> hits{0};
  server.start([&hits](const HttpRequest& req) {
    ++hits;
    if (req.path() == "/echo") return HttpResponse::text(200, req.body);
    return HttpResponse::not_found();
  });
  ASSERT_GT(server.port(), 0);

  const HttpResponse echo = http_post(server.port(), "/echo", "payload-123");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "payload-123");

  const HttpResponse missing = http_get(server.port(), "/nowhere");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(hits.load(), 2);
  server.stop();
}

TEST(HttpServer, ServesConcurrentClients) {
  HttpServer server;
  server.start([](const HttpRequest& req) {
    return HttpResponse::text(200, "ok:" + req.path());
  });
  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      const auto r = http_get(server.port(), "/c" + std::to_string(i));
      if (r.status == 200 && r.body == "ok:/c" + std::to_string(i)) ++successes;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), kThreads);
  server.stop();
}

TEST(HttpServer, HandlerExceptionsBecome500) {
  HttpServer server;
  // Quotes in the message: the body must stay valid JSON (escaped through
  // the serializer) and use the standard envelope even from a raw handler.
  server.start([](const HttpRequest&) -> HttpResponse {
    throw NumericError("deliberate \"failure\"");
  });
  const auto r = http_get(server.port(), "/");
  EXPECT_EQ(r.status, 500);
  const JsonValue body = parse_json(r.body);
  const JsonValue* envelope = body.find("error");
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->string_or("code", ""), "internal");
  EXPECT_NE(envelope->string_or("message", "").find("deliberate \"failure\""),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, MalformedRequestGets400) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "never"); });
  // http_request builds valid requests, so talk raw for this one.
  const HttpResponse r = [&] {
    // A request with a broken header line.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string wire = "GET / HTTP/1.1\r\nbroken\r\n\r\n";
    EXPECT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    ::shutdown(fd, SHUT_WR);
    std::string received;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    HttpResponse parsed;
    parsed.status = received.find("400") != std::string::npos ? 400 : 0;
    return parsed;
  }();
  EXPECT_EQ(r.status, 400);
  server.stop();
}

TEST(HttpServer, WorkerPoolStaysBoundedAcrossManyRequests) {
  // Regression: the old thread-per-connection server grew its thread vector
  // for the life of the process (finished threads were never reaped). The
  // fixed pool must serve any number of connections with the configured
  // thread count, and every request must still be answered.
  HttpServer server;
  HttpServer::Options options;
  options.worker_threads = 2;
  server.start([](const HttpRequest& req) { return HttpResponse::text(200, req.body); },
               options);
  ASSERT_EQ(server.worker_threads(), 2u);

  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    const auto r = http_post(server.port(), "/echo", "ping-" + std::to_string(i));
    ASSERT_EQ(r.status, 200);
    ASSERT_EQ(r.body, "ping-" + std::to_string(i));
    ASSERT_EQ(server.worker_threads(), 2u);  // no per-connection thread growth
  }
  EXPECT_EQ(server.connections_served(), static_cast<std::uint64_t>(kRequests));
  server.stop();
}

TEST(HttpServer, ConcurrentClientsShareTheWorkerPool) {
  HttpServer server;
  HttpServer::Options options;
  options.worker_threads = 3;
  server.start([](const HttpRequest& req) { return HttpResponse::text(200, req.path()); },
               options);
  constexpr int kClients = 16;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const auto r = http_get(server.port(), "/c" + std::to_string(i));
      if (r.status == 200 && r.body == "/c" + std::to_string(i)) ++successes;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), kClients);
  EXPECT_EQ(server.worker_threads(), 3u);
  EXPECT_EQ(server.connections_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "a"); });
  const auto port1 = server.port();
  EXPECT_EQ(http_get(port1, "/").status, 200);
  server.stop();
  server.stop();  // no-op
  // A fresh start binds a new ephemeral port and serves again.
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "b"); });
  EXPECT_EQ(http_get(server.port(), "/").body, "b");
  server.stop();
}

TEST(HttpServer, RequiresHandler) {
  HttpServer server;
  EXPECT_THROW(server.start(nullptr), InvalidArgument);
}

TEST(HttpClient, ConnectFailureThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(http_get(1, "/"), IoError);
}

// ------------------------------------------------------ response parsing

TEST(HttpClient, ParsesFramedResponse) {
  const HttpResponse r = parse_http_response(
      "HTTP/1.1 202 Accepted\r\nlocation: /v1/bags/7\r\ncontent-length: 4\r\n\r\nbody");
  EXPECT_EQ(r.status, 202);
  EXPECT_EQ(r.headers.at("location"), "/v1/bags/7");
  EXPECT_EQ(r.body, "body");
}

TEST(HttpClient, MalformedContentLengthThrowsIoError) {
  // Regression: these used to escape as raw std::invalid_argument /
  // std::out_of_range from std::stoll instead of the layer's IoError.
  for (const char* bad : {"abc", "-1", "99999999999999999999", "12junk", ""}) {
    const std::string wire =
        "HTTP/1.1 200 OK\r\ncontent-length: " + std::string(bad) + "\r\n\r\nbody";
    EXPECT_THROW(parse_http_response(wire), IoError) << bad;
  }
}

TEST(HttpClient, ImplausibleContentLengthThrowsIoError) {
  // Parses fine as a number but no real response of this API is 100GB: the
  // framed reader must not be talked into waiting for one.
  EXPECT_THROW(
      parse_http_response("HTTP/1.1 200 OK\r\ncontent-length: 107374182400\r\n\r\n"),
      IoError);
}

// ---------------------------------------------------------- keep-alive

TEST(HttpServer, KeepAliveServesManyRequestsOnOneConnection) {
  HttpServer server;
  server.start([](const HttpRequest& req) { return HttpResponse::text(200, req.body); });

  constexpr int kRequests = 20;
  {
    HttpConnection connection(server.port());
    for (int i = 0; i < kRequests; ++i) {
      const auto r = connection.post("/echo", "ping-" + std::to_string(i));
      ASSERT_EQ(r.status, 200);
      ASSERT_EQ(r.body, "ping-" + std::to_string(i));
    }
    EXPECT_TRUE(connection.connected());
  }
  // All requests answered, all down one socket.
  EXPECT_EQ(server.requests_served(), static_cast<std::uint64_t>(kRequests));
  EXPECT_LE(server.connections_served(), 1u);
  server.stop();
}

TEST(HttpServer, MaxRequestsPerConnectionForcesReconnect) {
  HttpServer server;
  HttpServer::Options options;
  options.max_requests_per_connection = 2;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "ok"); }, options);

  HttpConnection connection(server.port());
  for (int i = 0; i < 5; ++i) {
    // The server closes after every 2nd response; the client notices the
    // close header / dead socket and reconnects transparently.
    ASSERT_EQ(connection.get("/").status, 200) << i;
  }
  EXPECT_EQ(server.requests_served(), 5u);
  EXPECT_GE(server.connections_served(), 2u);
  server.stop();
}

TEST(HttpServer, HonorsConnectionCloseHeader) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "bye"); });
  // The one-shot client requests Connection: close; the server must answer
  // with close framing (read-until-EOF would hang forever otherwise).
  const auto r = http_get(server.port(), "/");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers.at("connection"), "close");
  server.stop();
}

TEST(HttpServer, KeepAliveDisabledAnswersClose) {
  HttpServer server;
  HttpServer::Options options;
  options.keep_alive = false;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "ok"); }, options);
  HttpConnection connection(server.port());
  const auto r = connection.get("/");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.headers.at("connection"), "close");
  EXPECT_FALSE(connection.connected());  // client dropped the socket too
  // And the next request still works (fresh connection under the hood).
  EXPECT_EQ(connection.get("/").status, 200);
  server.stop();
}

TEST(HttpServer, IdleTimeoutClosesButClientRecovers) {
  HttpServer server;
  HttpServer::Options options;
  options.idle_timeout_seconds = 1;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "ok"); }, options);
  HttpConnection connection(server.port());
  ASSERT_EQ(connection.get("/").status, 200);
  // Sit idle past the server's timeout: the server hangs up, and the next
  // request must transparently reconnect instead of failing.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  EXPECT_EQ(connection.get("/").status, 200);
  EXPECT_EQ(server.requests_served(), 2u);
  server.stop();
}

// --------------------------------------------------------- request-size cap

TEST(HttpServer, OversizedBodyAnswers413Envelope) {
  HttpServer server;
  HttpServer::Options options;
  options.max_request_bytes = 1024;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "never"); },
               options);
  const auto r = http_post(server.port(), "/big", std::string(2048, 'x'));
  EXPECT_EQ(r.status, 413);
  const JsonValue body = parse_json(r.body);
  const JsonValue* envelope = body.find("error");
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->string_or("code", ""), "payload_too_large");
  server.stop();
}

TEST(HttpServer, AbsurdContentLengthRejectedBeforeBodyArrives) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "never"); });
  // Headers announce a terabyte; no body is ever sent. The server must
  // answer 413 from the header alone instead of buffering toward it.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string wire = "POST / HTTP/1.1\r\ncontent-length: 1099511627776\r\n\r\n";
  ASSERT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
  std::string received;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(received.find("413"), std::string::npos);
  EXPECT_NE(received.find("payload_too_large"), std::string::npos);
  server.stop();
}

// ------------------------------------------------------------- shed latency

TEST(HttpServer, ShedFloodDoesNotStallTheAcceptLoop) {
  // Regression: the old shed path did send+shutdown+100ms-drain on the only
  // accept thread, so each shed connection that stayed open added ~100ms of
  // accept latency (10 idle sheds ~ 1s serialized). Shed sockets now drain
  // on the reaper thread, so a flood of them must be refused back-to-back.
  HttpServer server;
  HttpServer::Options options;
  options.worker_threads = 1;
  options.max_pending_connections = 1;
  std::promise<void> handler_entered;
  std::promise<void> release_handler;
  auto released = release_handler.get_future().share();
  std::atomic<bool> entered{false};
  server.start(
      [&](const HttpRequest&) {
        if (!entered.exchange(true)) handler_entered.set_value();
        released.wait();
        return HttpResponse::text(200, "slow");
      },
      options);

  // Occupy the lone worker, then the one pending slot.
  std::thread blocked1([&] { (void)http_get(server.port(), "/block"); });
  handler_entered.get_future().wait();
  std::thread blocked2([&] { (void)http_get(server.port(), "/queued"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Flood: sequential idle connections (connect, send nothing, wait for the
  // 503). Sequential on purpose — each one's latency includes any stall the
  // previous shed left on the accept thread.
  constexpr int kFlood = 10;
  const auto begin = std::chrono::steady_clock::now();
  int refused = 0;
  for (int i = 0; i < kFlood; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);  // the 503, unprompted
    if (n > 0 && std::string(buf, static_cast<std::size_t>(n)).find("503") !=
                     std::string::npos) {
      ++refused;
    }
    ::close(fd);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();

  EXPECT_EQ(refused, kFlood);
  EXPECT_GE(server.connections_shed(), static_cast<std::uint64_t>(kFlood));
  // Old behavior: ~100ms per idle shed (>= 1s here). Reaper behavior: ms.
  EXPECT_LT(elapsed, 0.5);

  release_handler.set_value();
  blocked1.join();
  blocked2.join();
  server.stop();
}

// ----------------------------------------------------- client recv deadline

/// A listener that accepts into the kernel backlog but never serves: the
/// client's connect() succeeds, its request is swallowed, and no byte ever
/// comes back — the shape of a worker that wedged after accept().
class StallingListener {
 public:
  StallingListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~StallingListener() { ::close(fd_); }
  std::uint16_t port() const noexcept { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

// Regression: without a receive deadline, a wedged server blocked the
// one-shot client forever. With one, the read fails as IoTimeout promptly.
TEST(HttpClientRecvTimeout, OneShotRequestTimesOutOnAWedgedServer) {
  StallingListener stall;
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW(
      http_request(stall.port(), "GET", "/healthz", "", "application/json", 0.2),
      IoTimeout);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  EXPECT_LT(elapsed, 3.0) << "deadline must bound the read, not hang";
}

// The keep-alive connection path: same deadline, and crucially the timeout
// must NOT trigger the stale-socket resend (the server may have started
// executing a POST it never answered; resending could double-submit).
TEST(HttpClientRecvTimeout, ConnectionTimesOutWithoutRetrying) {
  StallingListener stall;
  HttpConnection conn(stall.port());
  conn.set_recv_timeout(0.2);
  EXPECT_DOUBLE_EQ(conn.recv_timeout(), 0.2);
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_THROW(conn.request("POST", "/v1/bags", "{}"), IoTimeout);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  // A retry would roughly double the wait; one timeout stays close to 0.2s.
  EXPECT_LT(elapsed, 1.0);
}

TEST(HttpClientRecvTimeout, ZeroMeansUnboundedStaysTheDefault) {
  HttpConnection conn_default(1);  // never connected; just inspect the knob
  EXPECT_DOUBLE_EQ(conn_default.recv_timeout(), 0.0);
  conn_default.set_recv_timeout(-3.0);  // negatives clamp to "unbounded"
  EXPECT_DOUBLE_EQ(conn_default.recv_timeout(), 0.0);
}

}  // namespace
}  // namespace preempt::api
