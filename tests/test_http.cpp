// HTTP message parsing and the threaded loopback server + client pair.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "api/http.hpp"
#include "api/http_client.hpp"
#include "api/http_server.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace preempt::api {
namespace {

// ------------------------------------------------------------------- parser

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser parser;
  const std::string wire = "GET /path?x=1 HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()));
  ASSERT_TRUE(parser.complete());
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/path?x=1");
  EXPECT_EQ(req.path(), "/path");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.headers.at("host"), "localhost");
  EXPECT_TRUE(req.body.empty());
}

TEST(HttpRequestParser, ParsesPostBodyAcrossFeeds) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /api HTTP/1.1\r\ncontent-length: 11\r\n\r\nhello world";
  // Feed byte by byte: the parser must be fully incremental.
  for (char c : wire) {
    ASSERT_TRUE(parser.feed(&c, 1));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpRequestParser, HeaderKeysAreLowercasedAndTrimmed) {
  HttpRequestParser parser;
  const std::string wire = "GET / HTTP/1.1\r\nX-Thing:   padded value  \r\n\r\n";
  ASSERT_TRUE(parser.feed(wire.data(), wire.size()));
  EXPECT_EQ(parser.request().headers.at("x-thing"), "padded value");
}

TEST(HttpRequestParser, RejectsMalformedInput) {
  {
    HttpRequestParser parser;
    const std::string wire = "NOT-HTTP\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
    EXPECT_TRUE(parser.failed());
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\nbroken header line\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\ncontent-length: banana\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
  {
    HttpRequestParser parser;
    const std::string wire = "GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
    EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  }
}

TEST(HttpRequestParser, RejectsOversizedBodies) {
  HttpRequestParser parser;
  const std::string wire = "POST / HTTP/1.1\r\ncontent-length: 999999999999\r\n\r\n";
  EXPECT_FALSE(parser.feed(wire.data(), wire.size()));
  EXPECT_EQ(parser.error(), "bad content-length");
}

TEST(HttpRequest, QueryParsing) {
  HttpRequest req;
  req.target = "/p?a=1&b=two%20words&empty=&flag";
  EXPECT_EQ(req.query("a").value(), "1");
  EXPECT_EQ(req.query("b").value(), "two words");
  EXPECT_EQ(req.query("empty").value(), "");
  EXPECT_EQ(req.query("flag").value(), "");
  EXPECT_FALSE(req.query("missing").has_value());
  HttpRequest no_query;
  no_query.target = "/p";
  EXPECT_FALSE(no_query.query("a").has_value());
}

TEST(UrlDecode, Basics) {
  EXPECT_EQ(url_decode("a%2Fb%3Dc"), "a/b=c");
  EXPECT_EQ(url_decode("no-escapes"), "no-escapes");
  EXPECT_EQ(url_decode("%zz"), "%zz");  // malformed escape passes through
  EXPECT_EQ(url_decode("%41%61"), "Aa");
}

TEST(HttpResponse, SerializeCarriesContentLength) {
  HttpResponse r = HttpResponse::json(200, R"({"k":1})");
  const std::string wire = r.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-length: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("content-type: application/json"), std::string::npos);
}

// ------------------------------------------------------------- live server

TEST(HttpServer, RoundTripsRequests) {
  HttpServer server;
  std::atomic<int> hits{0};
  server.start([&hits](const HttpRequest& req) {
    ++hits;
    if (req.path() == "/echo") return HttpResponse::text(200, req.body);
    return HttpResponse::not_found();
  });
  ASSERT_GT(server.port(), 0);

  const HttpResponse echo = http_post(server.port(), "/echo", "payload-123");
  EXPECT_EQ(echo.status, 200);
  EXPECT_EQ(echo.body, "payload-123");

  const HttpResponse missing = http_get(server.port(), "/nowhere");
  EXPECT_EQ(missing.status, 404);
  EXPECT_EQ(hits.load(), 2);
  server.stop();
}

TEST(HttpServer, ServesConcurrentClients) {
  HttpServer server;
  server.start([](const HttpRequest& req) {
    return HttpResponse::text(200, "ok:" + req.path());
  });
  constexpr int kThreads = 8;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    clients.emplace_back([&, i] {
      const auto r = http_get(server.port(), "/c" + std::to_string(i));
      if (r.status == 200 && r.body == "ok:/c" + std::to_string(i)) ++successes;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), kThreads);
  server.stop();
}

TEST(HttpServer, HandlerExceptionsBecome500) {
  HttpServer server;
  // Quotes in the message: the body must stay valid JSON (escaped through
  // the serializer) and use the standard envelope even from a raw handler.
  server.start([](const HttpRequest&) -> HttpResponse {
    throw NumericError("deliberate \"failure\"");
  });
  const auto r = http_get(server.port(), "/");
  EXPECT_EQ(r.status, 500);
  const JsonValue body = parse_json(r.body);
  const JsonValue* envelope = body.find("error");
  ASSERT_NE(envelope, nullptr);
  EXPECT_EQ(envelope->string_or("code", ""), "internal");
  EXPECT_NE(envelope->string_or("message", "").find("deliberate \"failure\""),
            std::string::npos);
  server.stop();
}

TEST(HttpServer, MalformedRequestGets400) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "never"); });
  // http_request builds valid requests, so talk raw for this one.
  const HttpResponse r = [&] {
    // A request with a broken header line.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string wire = "GET / HTTP/1.1\r\nbroken\r\n\r\n";
    EXPECT_GT(::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL), 0);
    ::shutdown(fd, SHUT_WR);
    std::string received;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      received.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    HttpResponse parsed;
    parsed.status = received.find("400") != std::string::npos ? 400 : 0;
    return parsed;
  }();
  EXPECT_EQ(r.status, 400);
  server.stop();
}

TEST(HttpServer, WorkerPoolStaysBoundedAcrossManyRequests) {
  // Regression: the old thread-per-connection server grew its thread vector
  // for the life of the process (finished threads were never reaped). The
  // fixed pool must serve any number of connections with the configured
  // thread count, and every request must still be answered.
  HttpServer server;
  HttpServer::Options options;
  options.worker_threads = 2;
  server.start([](const HttpRequest& req) { return HttpResponse::text(200, req.body); },
               options);
  ASSERT_EQ(server.worker_threads(), 2u);

  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) {
    const auto r = http_post(server.port(), "/echo", "ping-" + std::to_string(i));
    ASSERT_EQ(r.status, 200);
    ASSERT_EQ(r.body, "ping-" + std::to_string(i));
    ASSERT_EQ(server.worker_threads(), 2u);  // no per-connection thread growth
  }
  EXPECT_EQ(server.connections_served(), static_cast<std::uint64_t>(kRequests));
  server.stop();
}

TEST(HttpServer, ConcurrentClientsShareTheWorkerPool) {
  HttpServer server;
  HttpServer::Options options;
  options.worker_threads = 3;
  server.start([](const HttpRequest& req) { return HttpResponse::text(200, req.path()); },
               options);
  constexpr int kClients = 16;
  std::atomic<int> successes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      const auto r = http_get(server.port(), "/c" + std::to_string(i));
      if (r.status == 200 && r.body == "/c" + std::to_string(i)) ++successes;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(successes.load(), kClients);
  EXPECT_EQ(server.worker_threads(), 3u);
  EXPECT_EQ(server.connections_served(), static_cast<std::uint64_t>(kClients));
  server.stop();
}

TEST(HttpServer, StopIsIdempotentAndRestartable) {
  HttpServer server;
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "a"); });
  const auto port1 = server.port();
  EXPECT_EQ(http_get(port1, "/").status, 200);
  server.stop();
  server.stop();  // no-op
  // A fresh start binds a new ephemeral port and serves again.
  server.start([](const HttpRequest&) { return HttpResponse::text(200, "b"); });
  EXPECT_EQ(http_get(server.port(), "/").body, "b");
  server.stop();
}

TEST(HttpServer, RequiresHandler) {
  HttpServer server;
  EXPECT_THROW(server.start(nullptr), InvalidArgument);
}

TEST(HttpClient, ConnectFailureThrows) {
  // Port 1 on loopback is essentially never listening.
  EXPECT_THROW(http_get(1, "/"), IoError);
}

}  // namespace
}  // namespace preempt::api
