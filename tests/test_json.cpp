// JSON value, parser and writer (common/json.hpp).
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace preempt {
namespace {

TEST(JsonValue, KindsAndAccessors) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(nullptr).is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_DOUBLE_EQ(JsonValue(2.5).as_number(), 2.5);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_TRUE(JsonValue(JsonArray{}).is_array());
  EXPECT_TRUE(JsonValue(JsonObject{}).is_object());
  EXPECT_THROW(JsonValue(1.0).as_string(), InvalidArgument);
  EXPECT_THROW(JsonValue("x").as_number(), InvalidArgument);
}

TEST(JsonValue, ObjectLookupHelpers) {
  JsonObject obj;
  obj.emplace_back("a", 1.5);
  obj.emplace_back("s", "text");
  obj.emplace_back("flag", true);
  const JsonValue v(std::move(obj));
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 7.0), 7.0);
  EXPECT_EQ(v.string_or("s", ""), "text");
  EXPECT_TRUE(v.bool_or("flag", false));
  EXPECT_EQ(v.find("nope"), nullptr);
  EXPECT_NE(v.find("a"), nullptr);
  // Wrong-typed member falls back.
  EXPECT_DOUBLE_EQ(v.number_or("s", 3.0), 3.0);
}

TEST(JsonDump, ScalarsAndEscapes) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
  EXPECT_EQ(JsonValue("a\"b\\c\n").dump(), R"("a\"b\\c\n")");
  EXPECT_EQ(JsonValue(std::string(1, '\x01')).dump(), "\"\\u0001\"");
  // No Inf/NaN in JSON.
  EXPECT_EQ(JsonValue(std::nan("")).dump(), "null");
}

TEST(JsonDump, NestedStructure) {
  JsonObject inner;
  inner.emplace_back("x", 1);
  JsonArray arr;
  arr.emplace_back(JsonValue(std::move(inner)));
  arr.emplace_back("two");
  JsonObject outer;
  outer.emplace_back("list", std::move(arr));
  EXPECT_EQ(JsonValue(std::move(outer)).dump(), R"({"list":[{"x":1},"two"]})");
}

TEST(JsonDump, PrettyPrintIsReparseable) {
  JsonObject obj;
  obj.emplace_back("a", JsonArray{JsonValue(1), JsonValue(2)});
  obj.emplace_back("b", "text");
  const JsonValue v(std::move(obj));
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const JsonValue round = parse_json(pretty);
  EXPECT_EQ(round.dump(), v.dump());
}

TEST(JsonParse, RoundTripsValues) {
  for (const char* text : {
           R"(null)",
           R"(true)",
           R"(-12.75)",
           R"("hello")",
           R"([])",
           R"({})",
           R"([1,2,3])",
           R"({"a":{"b":[false,null,"x"]},"c":1e-3})",
       }) {
    const JsonValue v = parse_json(text);
    EXPECT_EQ(parse_json(v.dump()).dump(), v.dump()) << text;
  }
}

TEST(JsonParse, Whitespace) {
  const JsonValue v = parse_json(" {\n \"a\" :\t[ 1 , 2 ] }\r\n");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_array().size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse_json(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
}

TEST(JsonParse, Numbers) {
  EXPECT_DOUBLE_EQ(parse_json("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("2.25E-2").as_number(), 0.0225);
}

TEST(JsonParse, Failures) {
  for (const char* bad : {
           "", "tru", "nul", "[1,", "{\"a\":}", "{\"a\" 1}", "[1 2]", "\"unterminated",
           "{\"a\":1}extra", "01x", "\"bad\\q\"", "[--1]",
       }) {
    EXPECT_THROW(parse_json(bad), IoError) << "accepted: " << bad;
  }
}

TEST(JsonParse, RejectsRawControlCharacters) {
  std::string s = "\"a";
  s += '\x02';
  s += '"';
  EXPECT_THROW(parse_json(s), IoError);
}

TEST(JsonParse, DeepNestingWorks) {
  std::string text;
  for (int i = 0; i < 60; ++i) text += '[';
  text += "1";
  for (int i = 0; i < 60; ++i) text += ']';
  const JsonValue v = parse_json(text);
  EXPECT_TRUE(v.is_array());
}

}  // namespace
}  // namespace preempt
