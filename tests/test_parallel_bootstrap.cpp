// Parallel bootstrap: determinism across runs, agreement with the serial
// implementation, and failure handling under a flaky fitter.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/exponential.hpp"
#include "fit/bootstrap.hpp"
#include "fit/model_fitters.hpp"
#include "test_util.hpp"

namespace preempt::fit {
namespace {

std::vector<double> exponential_sample(double rate, int n, std::uint64_t seed) {
  Rng rng(seed);
  const dist::Exponential d(rate);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(d.sample(rng));
  return xs;
}

/// Closed-form exponential rate "fitter": fast and exact for testing.
SampleFitter rate_fitter() {
  return [](std::span<const double> xs) {
    double sum = 0.0;
    for (double x : xs) sum += x;
    PREEMPT_CHECK(sum > 0.0, "degenerate resample");
    return std::vector<double>{static_cast<double>(xs.size()) / sum};
  };
}

TEST(ParallelBootstrap, DeterministicAcrossRuns) {
  const auto xs = exponential_sample(0.5, 200, 3);
  const auto a = bootstrap_parameters_parallel(xs, rate_fitter(), 100, 0.95, 42);
  const auto b = bootstrap_parameters_parallel(xs, rate_fitter(), 100, 0.95, 42);
  ASSERT_EQ(a.params.size(), 1u);
  EXPECT_DOUBLE_EQ(a.params[0].mean, b.params[0].mean);
  EXPECT_DOUBLE_EQ(a.params[0].stddev, b.params[0].stddev);
  EXPECT_DOUBLE_EQ(a.params[0].ci_lo, b.params[0].ci_lo);
  EXPECT_DOUBLE_EQ(a.params[0].ci_hi, b.params[0].ci_hi);
  EXPECT_EQ(a.replicates, b.replicates);
}

TEST(ParallelBootstrap, SeedChangesTheDraws) {
  const auto xs = exponential_sample(0.5, 200, 3);
  const auto a = bootstrap_parameters_parallel(xs, rate_fitter(), 100, 0.95, 1);
  const auto b = bootstrap_parameters_parallel(xs, rate_fitter(), 100, 0.95, 2);
  EXPECT_NE(a.params[0].mean, b.params[0].mean);
}

TEST(ParallelBootstrap, AgreesWithSerialStatistically) {
  const auto xs = exponential_sample(0.25, 400, 11);
  const auto serial = bootstrap_parameters(xs, rate_fitter(), 400, 0.95, 7);
  const auto parallel = bootstrap_parameters_parallel(xs, rate_fitter(), 400, 0.95, 7);
  // Different stream layouts, same estimand: means within a couple of
  // bootstrap standard errors, similar CI widths.
  EXPECT_NEAR(parallel.params[0].mean, serial.params[0].mean,
              3.0 * serial.params[0].stddev / std::sqrt(400.0) * 10.0);
  const double w_serial = serial.params[0].ci_hi - serial.params[0].ci_lo;
  const double w_parallel = parallel.params[0].ci_hi - parallel.params[0].ci_lo;
  EXPECT_NEAR(w_parallel / w_serial, 1.0, 0.35);
}

TEST(ParallelBootstrap, CiCoversTheTruth) {
  const auto xs = exponential_sample(0.4, 500, 19);
  const auto r = bootstrap_parameters_parallel(xs, rate_fitter(), 300, 0.99, 5);
  EXPECT_LT(r.params[0].ci_lo, 0.4);
  EXPECT_GT(r.params[0].ci_hi, 0.4);
  EXPECT_NEAR(r.params[0].estimate, 0.4, 0.06);
}

TEST(ParallelBootstrap, WorksWithTheBathtubFitter) {
  Rng rng(23);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> xs;
  for (int i = 0; i < 150; ++i) xs.push_back(truth.sample(rng));
  SampleFitter fitter = [](std::span<const double> samples) {
    return fit_bathtub_to_samples(samples, 24.0).params;
  };
  const auto r = bootstrap_parameters_parallel(xs, fitter, 40, 0.9, 31);
  ASSERT_EQ(r.params.size(), 4u);
  // A (plateau) interval should bracket the truth.
  EXPECT_LT(r.params[0].ci_lo, 0.45);
  EXPECT_GT(r.params[0].ci_hi, 0.45);
}

TEST(ParallelBootstrap, SkipsFailingReplicatesButEnforcesQuorum) {
  const auto xs = exponential_sample(0.5, 100, 3);
  double full_sum = 0.0;
  for (double x : xs) full_sum += x;
  // Fails ~30% of replicates deterministically by resample content — but
  // never the mandatory full-sample fit.
  SampleFitter flaky = [full_sum](std::span<const double> samples) {
    double sum = 0.0;
    for (double x : samples) sum += x;
    if (sum != full_sum && std::fmod(sum, 1.0) < 0.3) throw NumericError("synthetic failure");
    return std::vector<double>{static_cast<double>(samples.size()) / sum};
  };
  const auto r = bootstrap_parameters_parallel(xs, flaky, 100, 0.95, 13);
  EXPECT_LT(r.replicates, 100u);
  EXPECT_GE(r.replicates * 2, std::size_t{100});

  // A fitter that dies on the full sample propagates immediately.
  SampleFitter always_fails = [](std::span<const double>) -> std::vector<double> {
    throw NumericError("no");
  };
  EXPECT_THROW(bootstrap_parameters_parallel(xs, always_fails, 20, 0.95, 13), NumericError);

  // One that passes the full sample but fails most resamples trips the
  // half-must-succeed quorum.
  SampleFitter mostly_fails = [full_sum](std::span<const double> samples) {
    double sum = 0.0;
    for (double x : samples) sum += x;
    if (sum != full_sum) throw NumericError("synthetic failure");
    return std::vector<double>{1.0};
  };
  EXPECT_THROW(bootstrap_parameters_parallel(xs, mostly_fails, 20, 0.95, 13),
               InvalidArgument);
}

TEST(ParallelBootstrap, Preconditions) {
  const auto xs = exponential_sample(0.5, 50, 3);
  EXPECT_THROW(bootstrap_parameters_parallel({}, rate_fitter(), 100), InvalidArgument);
  EXPECT_THROW(bootstrap_parameters_parallel(xs, rate_fitter(), 5), InvalidArgument);
  EXPECT_THROW(bootstrap_parameters_parallel(xs, rate_fitter(), 100, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace preempt::fit
