// Batched sampling contract: for every family in the library, sample_many
// consumes the generator exactly as sequential sample() calls would, so the
// batched and per-draw streams are bit-for-bit identical — including on
// jump-derived worker streams, which is what makes the Monte-Carlo engine's
// sharded replications reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.hpp"
#include "common/vkernel.hpp"
#include "dist/bathtub.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "dist/exponentiated_weibull.hpp"
#include "dist/gamma.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/lognormal.hpp"
#include "dist/piecewise.hpp"
#include "dist/truncated.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

struct Family {
  std::string label;
  std::shared_ptr<const Distribution> dist;
};

std::vector<Family> all_families() {
  std::vector<Family> fams;
  fams.push_back({"exponential", std::make_shared<Exponential>(0.25)});
  fams.push_back({"weibull_wearout", std::make_shared<Weibull>(0.1, 2.5)});
  fams.push_back({"weibull_infant", std::make_shared<Weibull>(0.2, 0.7)});
  fams.push_back({"lognormal", std::make_shared<LogNormal>(1.8, 0.9)});
  fams.push_back({"gamma_infant", std::make_shared<Gamma>(0.6, 0.1)});
  fams.push_back({"gamma_wearout", std::make_shared<Gamma>(3.0, 0.25)});
  fams.push_back({"gompertz_makeham", std::make_shared<GompertzMakeham>(0.05, 0.01, 0.25)});
  fams.push_back({"exp_weibull", std::make_shared<ExponentiatedWeibull>(0.08, 3.0, 0.2)});
  fams.push_back({"uniform", std::make_shared<UniformLifetime>(24.0)});
  fams.push_back({"bathtub", std::make_shared<BathtubDistribution>(
                                 preempt::testing::reference_params())});
  {
    const std::vector<double> ts = {0.0, 3.0, 20.0, 24.0};
    const std::vector<double> fs = {0.0, 0.3, 0.45, 1.0};
    fams.push_back({"piecewise", std::make_shared<PiecewiseLinearCdf>(ts, fs)});
  }
  fams.push_back({"truncated_gamma", std::make_shared<TruncatedDistribution>(
                                         std::make_unique<Gamma>(0.6, 0.1), 24.0)});
  {
    Rng rng(99);
    std::vector<double> data;
    const auto truth = preempt::testing::reference_bathtub();
    for (int i = 0; i < 200; ++i) data.push_back(truth.sample(rng));
    fams.push_back({"empirical", std::make_shared<EmpiricalDistribution>(data)});
  }
  return fams;
}

/// Pins the vkernel to its scalar reference path for a scope.
class ForceScalarGuard {
 public:
  ForceScalarGuard() : prev_(vk::scalar_forced()) { vk::force_scalar(true); }
  ~ForceScalarGuard() { vk::force_scalar(prev_); }
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;

 private:
  bool prev_;
};

class SampleManyGolden : public ::testing::TestWithParam<Family> {};

TEST_P(SampleManyGolden, MatchesSequentialSampleBitForBit) {
  const Distribution& d = *GetParam().dist;
  constexpr std::size_t kN = 2000;
  Rng sequential(4242);
  std::vector<double> expected(kN);
  for (double& x : expected) x = d.sample(sequential);

  Rng batched(4242);
  std::vector<double> actual(kN);
  d.sample_many(batched, actual);

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(expected[i], actual[i]) << GetParam().label << " draw " << i;
  }
  // The two generators must also end in the same state.
  EXPECT_EQ(sequential.uniform(), batched.uniform()) << GetParam().label;
}

TEST_P(SampleManyGolden, MatchesSequentialSampleOnJumpedStream) {
  // Worker shards draw from jump-derived streams; the contract must hold
  // there too or parallel replications would not be reproducible.
  const Distribution& d = *GetParam().dist;
  constexpr std::size_t kN = 500;
  Rng master_a(7), master_b(7);
  master_a.fork();  // discard the pre-jump stream; keep the jumped master
  master_b.fork();

  std::vector<double> expected(kN);
  for (double& x : expected) x = d.sample(master_a);
  std::vector<double> actual(kN);
  d.sample_many(master_b, actual);

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(expected[i], actual[i]) << GetParam().label << " draw " << i;
  }
}

TEST_P(SampleManyGolden, DrawsStayInSupport) {
  const Distribution& d = *GetParam().dist;
  Rng rng(11);
  std::vector<double> draws(4000);
  d.sample_many(rng, draws);
  for (double x : draws) {
    ASSERT_GE(x, 0.0) << GetParam().label;
    ASSERT_LE(x, d.support_end()) << GetParam().label;
  }
}

TEST_P(SampleManyGolden, ScalarAndSimdPathsBitIdentical) {
  // The vkernel's determinism contract: the dispatched SIMD lanes compute
  // the same rounding sequence as the scalar reference kernel, so a batch
  // drawn on the SSE2/AVX2 path is bit-for-bit the batch drawn with the
  // kernel pinned to scalar. This is what makes reports reproducible across
  // machines with different vector ISAs (and across -DPREEMPT_SIMD=ON/OFF
  // builds). Runs under the sanitizer jobs too, so the vector paths get
  // ASan/UBSan/TSan coverage. When SIMD is compiled out both runs take the
  // scalar path and the check is trivially true.
  const Distribution& d = *GetParam().dist;
  constexpr std::size_t kN = 3000;

  std::vector<double> dispatched(kN);
  Rng rng_simd(20260808);
  d.sample_many(rng_simd, dispatched);

  std::vector<double> scalar(kN);
  Rng rng_scalar(20260808);
  {
    ForceScalarGuard guard;
    d.sample_many(rng_scalar, scalar);
  }

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(dispatched[i], scalar[i]) << GetParam().label << " draw " << i;
  }
  // Same number of uniforms consumed on both paths.
  EXPECT_EQ(rng_simd.uniform(), rng_scalar.uniform()) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SampleManyGolden, ::testing::ValuesIn(all_families()),
                         [](const ::testing::TestParamInfo<Family>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace preempt::dist
