#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/empirical.hpp"
#include "dist/piecewise.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

// --- EmpiricalDistribution ----------------------------------------------------

TEST(Empirical, StepCdf) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  const EmpiricalDistribution e(samples);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
}

TEST(Empirical, EcdfPointsConventions) {
  const std::vector<double> samples = {2.0, 1.0, 3.0};  // unsorted on purpose
  const EmpiricalDistribution e(samples);
  const auto hazen = e.ecdf_points(EcdfConvention::kHazen);
  ASSERT_EQ(hazen.t.size(), 3u);
  EXPECT_DOUBLE_EQ(hazen.t[0], 1.0);  // sorted
  EXPECT_NEAR(hazen.f[0], 0.5 / 3.0, 1e-15);
  EXPECT_NEAR(hazen.f[2], 2.5 / 3.0, 1e-15);
  const auto step = e.ecdf_points(EcdfConvention::kStep);
  EXPECT_NEAR(step.f[2], 1.0, 1e-15);
}

TEST(Empirical, QuantileMeanMinMax) {
  const std::vector<double> samples = {1.0, 3.0, 5.0, 7.0};
  const EmpiricalDistribution e(samples);
  EXPECT_DOUBLE_EQ(e.mean(), 4.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(e.support_end(), 7.0);
}

TEST(Empirical, SampleFollowsInverseTransformConvention) {
  // sample() and quantile(uniform()) must agree draw-for-draw — direct and
  // inverse-transform sampling used to follow different conventions (raw
  // order statistics vs type-7 interpolation) and disagreed in distribution.
  const std::vector<double> samples = {1.0, 2.0, 3.0};
  const EmpiricalDistribution e(samples);
  Rng direct(5), inverse(5);
  for (int i = 0; i < 100; ++i) {
    const double x = e.sample(direct);
    EXPECT_DOUBLE_EQ(x, e.quantile(inverse.uniform()));
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 3.0);
  }
}

TEST(Empirical, HistogramDensityIntegratesToOne) {
  Rng rng(77);
  std::vector<double> samples;
  const auto d = preempt::testing::reference_bathtub();
  for (int i = 0; i < 2000; ++i) samples.push_back(d.sample(rng));
  const EmpiricalDistribution e(samples);
  const auto hist = e.histogram_density(24);
  double mass = 0.0;
  const double width = (e.support_end() - e.sorted_samples().front()) / 24.0;
  for (const auto& [center, density] : hist) mass += density * width;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(Empirical, KsDistanceToPerfectModelIsSmall) {
  Rng rng(123);
  const auto d = preempt::testing::reference_bathtub();
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(d.sample(rng));
  const EmpiricalDistribution e(samples);
  EXPECT_LT(e.ks_distance(d), 0.03);
  // A mismatched model must be farther away.
  auto wrong = preempt::testing::reference_params();
  wrong.tau1 = 5.0;
  wrong.scale = 0.2;
  EXPECT_GT(e.ks_distance(BathtubDistribution(wrong)), 0.1);
}

TEST(Empirical, RejectsBadSamples) {
  std::vector<double> empty;
  EXPECT_THROW(EmpiricalDistribution{empty}, InvalidArgument);
  const std::vector<double> negative = {1.0, -2.0};
  EXPECT_THROW(EmpiricalDistribution{negative}, InvalidArgument);
}

// --- PiecewiseLinearCdf ---------------------------------------------------------

PiecewiseLinearCdf three_phase() {
  // Infant to 3 h (F 0->0.3), stable to 20 h (0.3->0.45), wall to 24 h (->1).
  const std::vector<double> ts = {0.0, 3.0, 20.0, 24.0};
  const std::vector<double> fs = {0.0, 0.3, 0.45, 1.0};
  return PiecewiseLinearCdf(ts, fs);
}

TEST(Piecewise, InterpolatesCdf) {
  const auto d = three_phase();
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.5), 0.15);
  EXPECT_NEAR(d.cdf(11.5), 0.3 + 0.15 * (11.5 - 3.0) / 17.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(24.0), 1.0);
}

TEST(Piecewise, PdfIsPiecewiseConstant) {
  const auto d = three_phase();
  EXPECT_NEAR(d.pdf(1.0), 0.1, 1e-12);
  EXPECT_NEAR(d.pdf(10.0), 0.15 / 17.0, 1e-12);
  EXPECT_NEAR(d.pdf(22.0), 0.55 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.pdf(25.0), 0.0);
}

TEST(Piecewise, QuantileInvertsCdf) {
  const auto d = three_phase();
  for (double p : {0.1, 0.3, 0.4, 0.7, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
}

TEST(Piecewise, PartialExpectationMatchesNumeric) {
  const auto d = three_phase();
  double numeric = 0.0;
  const int n = 48000;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) * 24.0 / n;
    numeric += x * d.pdf(x) * 24.0 / n;
  }
  EXPECT_NEAR(d.partial_expectation(0.0, 24.0), numeric, 1e-4);
}

TEST(Piecewise, NoAtomWhenCdfReachesOne) {
  const auto d = three_phase();
  EXPECT_NEAR(d.deadline_atom(), 0.0, 1e-12);
}

TEST(Piecewise, AtomWhenCdfFallsShort) {
  const std::vector<double> ts = {0.0, 24.0};
  const std::vector<double> fs = {0.0, 0.8};
  const PiecewiseLinearCdf d(ts, fs);
  EXPECT_NEAR(d.deadline_atom(), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(d.cdf(24.0), 1.0);
  EXPECT_NEAR(d.mean(), d.partial_expectation(0, 24) + 0.2 * 24.0, 1e-12);
}

TEST(Piecewise, AtomAtFirstKnotCountsTowardMean) {
  // F jumps from 0 to 0.5 at t=1 (an atom), then rises linearly to 1 at t=2:
  // mean = 0.5*1 + ∫_1^2 t*0.5 dt = 0.5 + 0.75 = 1.25.
  const std::vector<double> ts = {1.0, 2.0};
  const std::vector<double> fs = {0.5, 1.0};
  const PiecewiseLinearCdf d(ts, fs);
  EXPECT_NEAR(d.mean(), 1.25, 1e-12);
  // The sample mean must agree with mean() — the two share the atom.
  Rng rng(31);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.02);
}

TEST(Piecewise, RejectsBadKnots) {
  const std::vector<double> ts = {0.0, 1.0};
  const std::vector<double> down = {0.5, 0.2};
  EXPECT_THROW(PiecewiseLinearCdf(ts, down), InvalidArgument);
  const std::vector<double> dup_t = {1.0, 1.0};
  const std::vector<double> fs = {0.0, 1.0};
  EXPECT_THROW(PiecewiseLinearCdf(dup_t, fs), InvalidArgument);
}

}  // namespace
}  // namespace preempt::dist
