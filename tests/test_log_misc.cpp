// Coverage for the remaining common utilities: logging and the stopwatch.
#include <gtest/gtest.h>

#include <thread>

#include "common/log.hpp"
#include "common/stopwatch.hpp"

namespace preempt {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST(Log, EmittingBelowLevelIsSafeNoop) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must not crash or throw; output (if any) goes to stderr.
  PREEMPT_LOG_DEBUG << "invisible " << 42;
  PREEMPT_LOG_ERROR << "also invisible at kOff";
  log_message(LogLevel::kInfo, "direct call");
  SUCCEED();
}

TEST(Log, StreamingFormatsArbitraryTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  PREEMPT_LOG_WARN << "pi=" << 3.14159 << " n=" << 7 << " flag=" << true;
  SUCCEED();
}

TEST(Log, ConcurrentLoggingDoesNotRace) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) PREEMPT_LOG_INFO << "thread message " << i;
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.elapsed_seconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(sw.elapsed_ms(), sw.elapsed_seconds() * 1e3, 50.0);
}

TEST(Stopwatch, ResetRestartsTheClock) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), 0.015);
}

}  // namespace
}  // namespace preempt
