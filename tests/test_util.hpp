// Shared helpers for the libpreempt test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "dist/bathtub.hpp"

namespace preempt::testing {

/// The calibration anchor from DESIGN.md Sec. 7: ground truth for
/// n1-highcpu-16 @ us-east1-b.
inline dist::BathtubParams reference_params() {
  dist::BathtubParams p;
  p.scale = 0.45;
  p.tau1 = 1.0;
  p.tau2 = 0.8;
  p.deadline = 24.0;
  p.horizon = 24.0;
  return p;
}

inline dist::BathtubDistribution reference_bathtub() {
  return dist::BathtubDistribution(reference_params());
}

/// Relative-error expectation for strictly positive quantities.
#define EXPECT_NEAR_REL(actual, expected, rel)                                \
  EXPECT_NEAR((actual), (expected), std::abs(expected) * (rel))               \
      << "actual=" << (actual) << " expected=" << (expected)

}  // namespace preempt::testing
