#include "common/root_find.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace preempt {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactRootAtEndpoint) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0), InvalidArgument);
}

TEST(Brent, FindsSqrtTwoFast) {
  const double r = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-12);
}

TEST(Brent, TranscendentalRoot) {
  // x = cos(x) has root ~0.7390851332.
  const double r = brent([](double x) { return x - std::cos(x); }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-10);
}

TEST(Brent, SteepExponentialRoot) {
  // The bathtub quantile shape: e^{(x-24)/0.8} = 0.5 -> x = 24 + 0.8 ln 0.5.
  const double r =
      brent([](double x) { return std::exp((x - 24.0) / 0.8) - 0.5; }, 0.0, 24.0);
  EXPECT_NEAR(r, 24.0 + 0.8 * std::log(0.5), 1e-9);
}

TEST(Brent, RequiresSignChange) {
  EXPECT_THROW(brent([](double x) { return x * x + 1.0; }, -1.0, 1.0), InvalidArgument);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const double m = golden_section_minimize([](double x) { return (x - 3.0) * (x - 3.0); }, 0.0, 10.0);
  EXPECT_NEAR(m, 3.0, 1e-8);
}

TEST(GoldenSection, FindsAsymmetricMinimum) {
  auto f = [](double x) { return std::exp(x) - 3.0 * x; };  // min at ln 3
  const double m = golden_section_minimize(f, 0.0, 3.0);
  EXPECT_NEAR(m, std::log(3.0), 1e-8);
}

TEST(GoldenSection, RequiresOrderedBracket) {
  EXPECT_THROW(golden_section_minimize([](double x) { return x; }, 1.0, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt
