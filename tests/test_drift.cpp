// Tests of the Sec. 8 change-point monitor (drift detection + refitting).
#include "core/drift.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/random.hpp"
#include "test_util.hpp"

namespace preempt::core {
namespace {

using preempt::testing::reference_bathtub;
using preempt::testing::reference_params;

PreemptionModel baseline_model() { return PreemptionModel::from_params(reference_params()); }

TEST(Drift, NoAlarmUnderTheBaselineRegime) {
  DriftDetector detector(baseline_model());
  const auto truth = reference_bathtub();
  Rng rng(17);
  DriftDetector::Status status;
  for (int i = 0; i < 400; ++i) status = detector.observe(truth.sample(rng));
  EXPECT_FALSE(status.drift) << "ks=" << status.ks << " thr=" << status.threshold;
  EXPECT_EQ(status.samples, detector.options().window);
}

TEST(Drift, QuietBeforeMinSamples) {
  DriftDetector detector(baseline_model());
  const auto status = detector.observe(5.0);
  EXPECT_FALSE(status.drift);
  EXPECT_EQ(status.samples, 1u);
  EXPECT_DOUBLE_EQ(status.ks, 0.0);
}

TEST(Drift, AlarmsAfterRegimeChange) {
  // Simulate a provider policy change: preemptions become much more
  // aggressive (the n1-highcpu-32 regime replaces the 16-core one).
  DriftDetector detector(baseline_model());
  auto changed = reference_params();
  changed.scale = 0.50;
  changed.tau1 = 0.4;
  const dist::BathtubDistribution new_regime(changed);
  Rng rng(23);
  DriftDetector::Status status;
  for (int i = 0; i < 200; ++i) status = detector.observe(new_regime.sample(rng));
  EXPECT_TRUE(status.drift);
  EXPECT_GT(status.ks, status.threshold);
}

TEST(Drift, RefitAdoptsTheNewRegime) {
  // A baseline refitted from a finite window is itself an estimate, so the
  // plain KS critical value is anti-conservative (Lilliefors effect); a
  // production monitor of an *estimated* baseline raises ks_critical.
  DriftDetector::Options opts;
  opts.window = 240;
  opts.ks_critical = 2.0;
  DriftDetector detector(baseline_model(), opts);
  auto changed = reference_params();
  changed.scale = 0.50;
  changed.tau1 = 0.4;
  const dist::BathtubDistribution new_regime(changed);
  Rng rng(29);
  for (int i = 0; i < 240; ++i) detector.observe(new_regime.sample(rng));
  ASSERT_TRUE(detector.status().drift);

  const PreemptionModel& refitted = detector.refit();
  EXPECT_NEAR(refitted.params().tau1, 0.4, 0.25);
  EXPECT_NEAR(refitted.params().scale, 0.50, 0.05);
  // Window cleared; the alarm resets.
  EXPECT_EQ(detector.status().samples, 0u);
  EXPECT_FALSE(detector.status().drift);

  // Feeding the new regime to the refitted detector stays quiet.
  DriftDetector::Status status;
  for (int i = 0; i < 200; ++i) status = detector.observe(new_regime.sample(rng));
  EXPECT_FALSE(status.drift) << "ks=" << status.ks;
}

TEST(Drift, SlidingWindowForgetsOldRegime) {
  DriftDetector::Options opts;
  opts.window = 60;
  DriftDetector detector(baseline_model(), opts);
  const auto truth = reference_bathtub();
  auto changed = reference_params();
  changed.tau1 = 0.3;
  changed.scale = 0.5;
  const dist::BathtubDistribution new_regime(changed);
  Rng rng(31);
  for (int i = 0; i < 100; ++i) detector.observe(new_regime.sample(rng));
  EXPECT_TRUE(detector.status().drift);
  // A long stretch of baseline behaviour flushes the window; alarm clears.
  DriftDetector::Status status;
  for (int i = 0; i < 200; ++i) status = detector.observe(truth.sample(rng));
  EXPECT_FALSE(status.drift) << "ks=" << status.ks;
}

TEST(Drift, ValidatesInput) {
  DriftDetector::Options bad;
  bad.window = 5;
  EXPECT_THROW(DriftDetector(baseline_model(), bad), InvalidArgument);
  DriftDetector detector(baseline_model());
  EXPECT_THROW(detector.observe(-1.0), InvalidArgument);
  EXPECT_THROW(detector.refit(), InvalidArgument);  // empty window
}

}  // namespace
}  // namespace preempt::core
