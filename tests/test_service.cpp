// End-to-end tests of the batch computing service simulation (paper Sec. 5-6).
#include "sim/service.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "test_util.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::sim {
namespace {

using preempt::testing::reference_bathtub;

dist::DistributionPtr truth() { return reference_bathtub().clone(); }

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.vm_type = trace::VmType::kN1Highcpu16;
  cfg.cluster_size = 8;
  cfg.seed = 7;
  return cfg;
}

BagOfJobs small_bag(std::size_t count, double minutes, int gang) {
  BagOfJobs bag;
  bag.name = "test-bag";
  bag.spec.name = "job";
  bag.spec.work_hours = minutes / 60.0;
  bag.spec.gang_vms = gang;
  return bag.count = count, bag;
}

TEST(Service, CompletesAllJobs) {
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(20, 15.0, 2));
  const ServiceReport report = svc.run();
  EXPECT_EQ(report.jobs_completed, 20u);
  for (const Job& job : svc.jobs()) {
    EXPECT_EQ(job.state, JobState::kCompleted);
    EXPECT_GE(job.finish_time, job.submit_time);
    EXPECT_NEAR(job.completed_work, job.spec.work_hours, 1e-9);
  }
}

TEST(Service, DeterministicPerSeed) {
  auto run_once = [] {
    BatchService svc(small_config(), truth(), truth());
    svc.submit_bag(small_bag(15, 10.0, 2));
    return svc.run();
  };
  const ServiceReport a = run_once();
  const ServiceReport b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(Service, PreemptibleIsMuchCheaperThanOnDemand) {
  // The Fig. 9a headline: ~5x cost reduction.
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(40, 14.0, 2));
  const ServiceReport report = svc.run();
  EXPECT_GT(report.cost_reduction_factor, 2.5);
  EXPECT_LT(report.cost_per_job, report.on_demand_cost_per_job);
}

TEST(Service, CostsAccrueOnlyWhileVmsRun) {
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(10, 10.0, 1));
  const ServiceReport report = svc.run();
  EXPECT_GT(report.total_vm_hours, 0.0);
  EXPECT_GT(report.total_cost, 0.0);
  // VM hours can't exceed cluster size x makespan (+ hot-spare retention).
  const double bound = (report.makespan_hours + 1.5) * (8 + report.vms_launched);
  EXPECT_LT(report.total_vm_hours, bound);
}

TEST(Service, GangJobsOccupyMultipleVms) {
  ServiceConfig cfg = small_config();
  cfg.cluster_size = 4;
  BatchService svc(cfg, truth(), truth());
  svc.submit_bag(small_bag(6, 12.0, 4));  // whole cluster per job
  const ServiceReport report = svc.run();
  EXPECT_EQ(report.jobs_completed, 6u);
  // Jobs must serialise: makespan at least 6 x 12 min of work.
  EXPECT_GE(report.makespan_hours, 6.0 * 12.0 / 60.0 - 1e-6);
}

TEST(Service, PreemptionsAreObservedOnLongBags) {
  // A bag long enough to stretch over many VM lifetimes must see preemptions.
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(300, 20.0, 2));
  const ServiceReport report = svc.run();
  EXPECT_GT(report.preemptions_total, 0);
  EXPECT_GT(report.vms_launched, 8);  // replacements happened
}

TEST(Service, WastedHoursTrackPreemptionsHittingJobs) {
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(300, 20.0, 2));
  const ServiceReport report = svc.run();
  if (report.preemptions > 0) {
    EXPECT_GT(report.wasted_hours, 0.0);
  }
  EXPECT_GE(report.increase_fraction, 0.0);
}

TEST(Service, ModelDrivenBeatsMemorylessOnJobFailures) {
  // Sec. 6.2.1: the reuse policy halves job failure probability; in service
  // terms, fewer preemptions hit running jobs.
  auto run_policy = [](ReusePolicyKind kind) {
    ServiceConfig cfg;
    cfg.cluster_size = 8;
    cfg.seed = 1234;
    cfg.reuse_policy = kind;
    BatchService svc(cfg, reference_bathtub().clone(), reference_bathtub().clone());
    BagOfJobs bag;
    bag.spec.work_hours = 2.0;  // long jobs: the end-of-life window matters
    bag.spec.gang_vms = 1;
    bag.count = 400;
    svc.submit_bag(bag);
    return svc.run();
  };
  const ServiceReport ours = run_policy(ReusePolicyKind::kModelDriven);
  const ServiceReport memoryless = run_policy(ReusePolicyKind::kMemoryless);
  EXPECT_LT(ours.preemptions, memoryless.preemptions);
  EXPECT_LT(ours.wasted_hours, memoryless.wasted_hours);
}

TEST(Service, CheckpointingReducesWaste) {
  auto run_ckpt = [](bool enabled) {
    ServiceConfig cfg;
    cfg.cluster_size = 4;
    cfg.seed = 77;
    cfg.checkpointing = enabled;
    const auto model = reference_bathtub();
    std::unique_ptr<CheckpointPlanner> planner;
    if (enabled) {
      auto dp = std::make_shared<const policy::CheckpointDp>(model, 3.0,
                                                             policy::CheckpointConfig{});
      planner = std::make_unique<DpCheckpointPlanner>(dp);
    }
    BatchService svc(cfg, model.clone(), model.clone(), std::move(planner));
    BagOfJobs bag;
    bag.spec.work_hours = 3.0;
    bag.spec.gang_vms = 1;
    bag.spec.checkpointable = true;
    bag.spec.checkpoint_cost_hours = 1.0 / 60.0;
    bag.count = 60;
    svc.submit_bag(bag);
    return svc.run();
  };
  const ServiceReport with = run_ckpt(true);
  const ServiceReport without = run_ckpt(false);
  EXPECT_LT(with.wasted_hours, without.wasted_hours);
  EXPECT_GT(with.checkpoint_overhead_hours, 0.0);
  EXPECT_DOUBLE_EQ(without.checkpoint_overhead_hours, 0.0);
}

TEST(Service, HotSparesExpireWhenIdle) {
  // Mid-bag idling: one long job keeps the service busy while the rest of
  // the cluster sits idle past the retention window. (At bag completion the
  // cluster is drained immediately, so only mid-bag idling exercises spares.)
  ServiceConfig cfg = small_config();
  cfg.cluster_size = 6;
  cfg.hot_spare_retention_hours = 0.25;
  BatchService svc(cfg, truth(), truth());
  svc.submit_bag(small_bag(1, 120.0, 1));  // 2 h job pins the service open
  svc.submit_bag(small_bag(3, 3.0, 1));    // short jobs leave idle VMs behind
  const ServiceReport report = svc.run();
  EXPECT_GT(report.hot_spare_expirations, 0);
}

TEST(Service, MixedBagsShareTheCluster) {
  // Two bags with different shapes (the service is not restricted to
  // homogeneous workloads): a gang bag and a single-VM bag.
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(10, 12.0, 4));
  svc.submit_bag(small_bag(20, 6.0, 1));
  const ServiceReport report = svc.run();
  EXPECT_EQ(report.jobs_completed, 30u);
  for (const Job& job : svc.jobs()) EXPECT_EQ(job.state, JobState::kCompleted);
  // Heterogeneous bags fall back to the work-conservation ideal bound.
  EXPECT_GT(report.ideal_makespan_hours, 0.0);
  EXPECT_GE(report.makespan_hours, report.ideal_makespan_hours - 1e-9);
}

TEST(Service, ClusterDrainsWhenBagCompletes) {
  BatchService svc(small_config(), truth(), truth());
  svc.submit_bag(small_bag(5, 10.0, 1));
  const ServiceReport report = svc.run();
  // Billing stops when the bag finishes: the total VM-hours cannot include
  // an hour-long hot-spare tail for the whole cluster.
  EXPECT_LT(report.total_vm_hours, (report.makespan_hours + 0.25) * 8.0 + 1.0);
}

TEST(Service, ReuseRuleKnobIsHonoured) {
  // The literal Eq. 8 rule churns the fleet on very short jobs; the
  // conditional rule reuses young VMs (see DESIGN.md / ablation bench).
  auto run_rule = [](policy::ReuseRule rule) {
    ServiceConfig cfg = small_config();
    cfg.reuse_rule = rule;
    BatchService svc(cfg, reference_bathtub().clone(), reference_bathtub().clone());
    svc.submit_bag(small_bag(40, 10.0, 1));
    return svc.run();
  };
  const ServiceReport literal = run_rule(policy::ReuseRule::kPaperEq8);
  const ServiceReport conditional = run_rule(policy::ReuseRule::kConditionalWaste);
  EXPECT_GT(literal.fresh_vm_launches, conditional.fresh_vm_launches);
}

TEST(Service, ValidatesConfiguration) {
  EXPECT_THROW(BatchService(small_config(), nullptr, truth()), InvalidArgument);
  ServiceConfig cfg = small_config();
  cfg.checkpointing = true;  // no planner supplied
  EXPECT_THROW(BatchService(cfg, truth(), truth()), InvalidArgument);
  BatchService svc(small_config(), truth(), truth());
  EXPECT_THROW(svc.run(), InvalidArgument);  // no jobs
  BagOfJobs bag = small_bag(1, 10.0, 99);   // gang larger than cluster
  EXPECT_THROW(svc.submit_bag(bag), InvalidArgument);
}

}  // namespace
}  // namespace preempt::sim
