// The fleet subsystem: energy-consistent machine state transitions, strict
// FleetSpec JSON, placement-policy behavior differences, and determinism of
// simulate_fleet (same seed => byte-identical report).
#include "fleet/simulation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "fleet/fleet.hpp"
#include "fleet/placement.hpp"
#include "fleet/spec.hpp"

namespace preempt::fleet {
namespace {

MachineClass tiny_class(std::size_t count = 1) {
  MachineClass mc;
  mc.name = "tiny";
  mc.count = count;
  mc.cores = 4;
  mc.memory_mb = 8192.0;
  mc.mips = {3000.0};
  mc.p_state_power_w = {12.0};
  mc.s_state_power_w = {120.0, 10.0};
  mc.s_state_wake_hours = {0.0, 0.25};
  return mc;
}

Task tiny_task(std::uint64_t id = 1, double memory_mb = 1024.0) {
  Task task;
  task.id = id;
  task.memory_mb = memory_mb;
  task.runtime_hours = 0.1;
  task.remaining_hours = 0.1;
  return task;
}

// --- Fleet: energy ledger and state machine ---------------------------------

TEST(Fleet, IdleMachineIntegratesChassisPower) {
  Fleet fleet({tiny_class()});
  // 120 W for one hour = 0.120 kWh.
  EXPECT_NEAR(fleet.total_energy_kwh(1.0), 0.120, 1e-12);
}

TEST(Fleet, BusyCoresAddCorePowerOnTopOfChassis) {
  Fleet fleet({tiny_class()});
  const Task a = tiny_task(1);
  const Task b = tiny_task(2);
  fleet.reserve(1, a, 0.0);
  fleet.start_task(1, a, 0.0);
  fleet.reserve(1, b, 0.0);
  fleet.start_task(1, b, 0.0);
  // (120 + 2 * 12) W for one hour.
  EXPECT_NEAR(fleet.total_energy_kwh(1.0), 0.144, 1e-12);
  fleet.finish_task(1, a, 1.0);
  fleet.finish_task(1, b, 1.0);
  // Second hour idle again.
  EXPECT_NEAR(fleet.total_energy_kwh(2.0), 0.144 + 0.120, 1e-12);
}

TEST(Fleet, SleepDrawsSStatePowerAndWakeDrawsS0) {
  Fleet fleet({tiny_class()});
  fleet.sleep(1, 1, 0.0);
  EXPECT_EQ(fleet.machine(1).power, MachinePower::kSleeping);
  EXPECT_EQ(fleet.sleeping_count(), 1u);
  // One hour asleep at 10 W.
  EXPECT_NEAR(fleet.total_energy_kwh(1.0), 0.010, 1e-12);
  const double ready = fleet.begin_wake(1, 1.0);
  EXPECT_NEAR(ready, 1.25, 1e-12);
  EXPECT_EQ(fleet.machine(1).power, MachinePower::kWaking);
  fleet.complete_wake(1, ready);
  EXPECT_EQ(fleet.machine(1).power, MachinePower::kOn);
  // The 0.25 h transition drew S0 chassis power (120 W).
  EXPECT_NEAR(fleet.total_energy_kwh(ready), 0.010 + 0.120 * 0.25, 1e-12);
}

TEST(Fleet, SleepRequiresAnIdleMachine) {
  Fleet fleet({tiny_class()});
  const Task a = tiny_task(1);
  fleet.reserve(1, a, 0.0);
  EXPECT_THROW(fleet.sleep(1, 1, 0.0), Error);
}

TEST(Fleet, PreemptedMachineDrawsNothingAndRejectsPlacements) {
  Fleet fleet({tiny_class()});
  const Task a = tiny_task(1);
  fleet.reserve(1, a, 0.0);
  fleet.start_task(1, a, 0.0);
  fleet.mark_preempted(1, 1.0);
  const Machine& m = fleet.machine(1);
  EXPECT_EQ(m.power, MachinePower::kPreempted);
  EXPECT_EQ(m.cores_busy, 0u);
  EXPECT_FALSE(fleet.fits(m, tiny_task(2)));
  // Dark from t=1 on: only the busy first hour is in the ledger.
  EXPECT_NEAR(fleet.total_energy_kwh(3.0), (120.0 + 12.0) / 1000.0, 1e-12);
  fleet.relaunch(1, 3.0);
  EXPECT_EQ(fleet.machine(1).power, MachinePower::kOn);
  EXPECT_TRUE(fleet.fits(fleet.machine(1), tiny_task(2)));
}

TEST(Fleet, FitsChecksCoresAndMemory) {
  Fleet fleet({tiny_class()});
  const Machine& m = fleet.machine(1);
  EXPECT_TRUE(fleet.fits(m, tiny_task(1)));
  EXPECT_FALSE(fleet.fits(m, tiny_task(1, 9000.0)));  // more RAM than the class has
  for (std::uint64_t i = 1; i <= 4; ++i) {
    const Task t = tiny_task(i);
    fleet.reserve(1, t, 0.0);
  }
  EXPECT_FALSE(fleet.fits(m, tiny_task(5)));  // all cores reserved
}

TEST(Fleet, PowerIndexTracksEveryTransition) {
  // The bitsets the placement policies walk must mirror machine states
  // exactly through the whole on <-> sleeping/waking, preempted <->
  // relaunched state machine.
  Fleet fleet({tiny_class(70)});  // spills into a second bitset word
  auto ids_in = [](const MachineBits& bits) {
    std::vector<std::uint64_t> ids;
    for_each_machine(bits, [&](std::uint64_t id) {
      ids.push_back(id);
      return true;
    });
    return ids;
  };
  EXPECT_EQ(ids_in(fleet.on_bits()).size(), 70u);
  EXPECT_EQ(fleet.on_count(), 70u);
  EXPECT_EQ(fleet.class_range(0).begin, 1u);
  EXPECT_EQ(fleet.class_range(0).end, 71u);

  fleet.sleep(65, 1, 0.0);  // second word
  fleet.sleep(2, 1, 0.0);
  EXPECT_EQ(fleet.on_count(), 68u);
  EXPECT_EQ(fleet.sleeping_count(), 2u);
  EXPECT_EQ(ids_in(fleet.sleeping_bits()), (std::vector<std::uint64_t>{2, 65}));
  EXPECT_EQ(ids_in(fleet.sleeping_bits(1)), (std::vector<std::uint64_t>{2, 65}));

  const double ready = fleet.begin_wake(65, 0.0);
  EXPECT_EQ(ids_in(fleet.waking_bits()), (std::vector<std::uint64_t>{65}));
  EXPECT_EQ(ids_in(fleet.sleeping_bits(1)), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(fleet.sleeping_count(), 1u);
  fleet.complete_wake(65, ready);
  EXPECT_EQ(fleet.on_count(), 69u);
  EXPECT_TRUE(ids_in(fleet.waking_bits()).empty());

  fleet.mark_preempted(7, 1.0);  // preempted machines are in no set
  EXPECT_EQ(fleet.on_count(), 68u);
  auto on = ids_in(fleet.on_bits());
  EXPECT_EQ(std::count(on.begin(), on.end(), 7u), 0);
  fleet.relaunch(7, 2.0);
  EXPECT_EQ(fleet.on_count(), 69u);

  // Preempting a waking machine must drop it from the waking set.
  fleet.begin_wake(2, 2.0);
  fleet.mark_preempted(2, 2.1);
  EXPECT_TRUE(ids_in(fleet.waking_bits()).empty());
  EXPECT_EQ(fleet.sleeping_count(), 0u);
  EXPECT_TRUE(ids_in(fleet.sleeping_bits(1)).empty());
}

TEST(Fleet, CapacityIndexTracksReservationsAndPower) {
  // awake_free_bits must follow core occupancy through reserve/start/finish
  // as well as every power transition — it is what placement walks.
  Fleet fleet({tiny_class(2)});
  auto in_free = [&](std::uint64_t id) {
    bool found = false;
    for_each_machine(fleet.awake_free_bits(), [&](std::uint64_t i) {
      if (i == id) found = true;
      return !found;
    });
    return found;
  };
  EXPECT_TRUE(in_free(1));
  EXPECT_TRUE(in_free(2));

  // Fill machine 1's four cores: the last reservation evicts it.
  std::vector<Task> tasks;
  for (std::uint64_t i = 1; i <= 4; ++i) tasks.push_back(tiny_task(i));
  for (int i = 0; i < 3; ++i) {
    fleet.reserve(1, tasks[i], 0.0);
    EXPECT_TRUE(in_free(1)) << "after reservation " << i + 1;
  }
  fleet.reserve(1, tasks[3], 0.0);
  EXPECT_FALSE(in_free(1));
  fleet.start_task(1, tasks[3], 0.0);
  EXPECT_FALSE(in_free(1));  // reserved -> busy keeps the total
  fleet.finish_task(1, tasks[3], 0.1);
  EXPECT_TRUE(in_free(1));
  fleet.unreserve(1, tasks[2], 0.1);
  EXPECT_TRUE(in_free(1));

  // Power transitions: sleepers leave the set, waking machines are
  // placeable again, preempted machines are out until relaunch.
  fleet.sleep(2, 1, 0.2);
  EXPECT_FALSE(in_free(2));
  fleet.begin_wake(2, 0.3);
  EXPECT_TRUE(in_free(2));
  fleet.mark_preempted(1, 0.4);
  EXPECT_FALSE(in_free(1));
  fleet.relaunch(1, 0.5);
  EXPECT_TRUE(in_free(1));
}

TEST(Fleet, UnknownMachineIdThrows) {
  Fleet fleet({tiny_class(2)});
  EXPECT_THROW(fleet.machine(0), SimError);
  EXPECT_THROW(fleet.machine(3), SimError);
}

// --- FleetSpec JSON ----------------------------------------------------------

FleetSpec small_spec() {
  FleetSpec spec;
  spec.machines = {tiny_class(8)};
  TaskClass steady;
  steady.name = "batch";
  steady.sla = SlaTier::kSla2;
  steady.pattern = ArrivalPattern::kSteady;
  steady.interarrival_hours = 0.05;
  steady.runtime_hours = 0.1;
  steady.memory_mb = 1024.0;
  TaskClass bursty;
  bursty.name = "frontend";
  bursty.sla = SlaTier::kSla0;
  bursty.pattern = ArrivalPattern::kSmallBursts;
  bursty.interarrival_hours = 0.02;
  bursty.burst_on_hours = 0.5;
  bursty.burst_off_hours = 3.5;
  bursty.runtime_hours = 0.1;
  bursty.memory_mb = 512.0;
  spec.tasks = {steady, bursty};
  return spec;
}

TEST(FleetSpec, RoundTripsThroughJsonLosslessly) {
  const FleetSpec spec = small_spec();
  const std::string once = to_json(spec).dump(2);
  const FleetSpec parsed = fleet_spec_from_json(to_json(spec));
  EXPECT_EQ(to_json(parsed).dump(2), once);
}

TEST(FleetSpec, RejectsUnknownFieldsAndBadValues) {
  {
    JsonObject obj = to_json(small_spec()).as_object();
    obj.emplace_back("surprise", JsonValue(1.0));
    EXPECT_THROW(fleet_spec_from_json(JsonValue(std::move(obj))), InvalidArgument);
  }
  {
    FleetSpec spec = small_spec();
    spec.tasks[0].memory_mb = 1e9;  // fits no machine class
    EXPECT_THROW(validate(spec), InvalidArgument);
  }
  {
    FleetSpec spec = small_spec();
    spec.placement = "round-robin";
    EXPECT_THROW(validate(spec), InvalidArgument);
  }
  {
    FleetSpec spec = small_spec();
    spec.tasks[1].interarrival_hours = 0.0;
    EXPECT_THROW(validate(spec), InvalidArgument);
  }
  {
    FleetSpec spec = small_spec();
    spec.machines[0].s_state_wake_hours = {0.0};  // size != s_states
    EXPECT_THROW(validate(spec), InvalidArgument);
  }
}

TEST(FleetPlacement, FactoryKnowsEveryAdvertisedPolicy) {
  for (const std::string& name : placement_policy_names()) {
    const auto policy = make_placement_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_THROW(make_placement_policy("nope"), InvalidArgument);
}

// --- simulate_fleet ----------------------------------------------------------

TEST(FleetSimulation, SameSeedIsByteIdentical) {
  const FleetSpec spec = small_spec();
  const dist::Exponential law(1.0 / 6.0);
  const std::string a = simulate_fleet(spec, 2020, &law).to_json().dump(2);
  const std::string b = simulate_fleet(spec, 2020, &law).to_json().dump(2);
  EXPECT_EQ(a, b);
  const std::string c = simulate_fleet(spec, 2021, &law).to_json().dump(2);
  EXPECT_NE(a, c);
}

TEST(FleetSimulation, CompletesEverythingWithoutPreemptions) {
  const FleetSpec spec = small_spec();
  const FleetReport report = simulate_fleet(spec, 7, nullptr);
  EXPECT_GT(report.tasks_submitted, 100u);
  EXPECT_EQ(report.tasks_completed, report.tasks_submitted);
  EXPECT_EQ(report.machine_preemptions, 0u);
  EXPECT_EQ(report.task_preemptions, 0u);
  EXPECT_GT(report.total_energy_kwh, 0.0);
  EXPECT_GE(report.makespan_hours, 24.0);
}

TEST(FleetSimulation, PreemptionsRestartTasksButWorkStillDrains) {
  const FleetSpec spec = small_spec();
  const dist::Exponential law(1.0 / 6.0);  // mean 6 h machine lifetime
  const FleetReport report = simulate_fleet(spec, 7, &law);
  EXPECT_GT(report.machine_preemptions, 0u);
  EXPECT_GT(report.task_preemptions, 0u);
  EXPECT_EQ(report.tasks_completed, report.tasks_submitted);
}

// The headline trade-off of the tentpole: an energy-aware policy must spend
// less energy than always-on first-fit, and pay for it with SLA violations
// from deep-sleep wake latency (0.25 h against a 0.12 h response target).
TEST(FleetSimulation, PoliciesTradeEnergyAgainstSlaViolations) {
  FleetSpec spec = small_spec();
  spec.tasks[1].interarrival_hours = 0.01;  // bursts overwhelm one machine
  spec.preemptions = false;

  spec.placement = "first-fit";
  const FleetReport always_on = simulate_fleet(spec, 11, nullptr);
  spec.placement = "e-eco";
  const FleetReport eco = simulate_fleet(spec, 11, nullptr);

  EXPECT_EQ(always_on.tasks_completed, always_on.tasks_submitted);
  EXPECT_EQ(eco.tasks_completed, eco.tasks_submitted);
  // first-fit never sleeps a machine, so it burns strictly more energy.
  EXPECT_GT(always_on.total_energy_kwh, eco.total_energy_kwh);
  // e-eco pays with strictly more strict-tier violations.
  const std::size_t tier0 = static_cast<std::size_t>(SlaTier::kSla0);
  EXPECT_GT(eco.sla_violations[tier0], always_on.sla_violations[tier0]);
}

TEST(FleetSimulation, MbfdConsolidationMigratesFirstFitDoesNot) {
  FleetSpec spec = small_spec();
  spec.tasks[0].runtime_hours = 1.0;  // long enough to be worth moving
  spec.tasks[0].interarrival_hours = 0.1;
  spec.rebalance_interval_hours = 0.5;
  const dist::Exponential law(1.0 / 6.0);

  spec.placement = "mbfd";
  const FleetReport consolidated = simulate_fleet(spec, 3, &law);
  EXPECT_GT(consolidated.migrations, 0u);

  spec.placement = "first-fit";
  const FleetReport pinned = simulate_fleet(spec, 3, &law);
  EXPECT_EQ(pinned.migrations, 0u);
}

}  // namespace
}  // namespace preempt::fleet
