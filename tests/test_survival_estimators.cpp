// Kaplan-Meier / Nelson-Aalen / log-rank behaviour, including hand-computed
// textbook examples and consistency with the plain ECDF on uncensored data.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/empirical.hpp"
#include "dist/exponential.hpp"
#include "survival/kaplan_meier.hpp"
#include "survival/logrank.hpp"
#include "survival/nelson_aalen.hpp"
#include "test_util.hpp"

namespace preempt::survival {
namespace {

SurvivalData textbook_data() {
  // Classic 10-subject example: events at 1, 3, 3, 6, 10; censorings at
  // 2+, 4+, 5+, 8+, 12+.
  return SurvivalData({{1, true},
                       {2, false},
                       {3, true},
                       {3, true},
                       {4, false},
                       {5, false},
                       {6, true},
                       {8, false},
                       {10, true},
                       {12, false}});
}

TEST(SurvivalData, SortsAndCounts) {
  const auto data = textbook_data();
  EXPECT_EQ(data.size(), 10u);
  EXPECT_EQ(data.event_count(), 5u);
  EXPECT_EQ(data.censored_count(), 5u);
  EXPECT_DOUBLE_EQ(data.total_exposure(), 1 + 2 + 3 + 3 + 4 + 5 + 6 + 8 + 10 + 12);
  // Sorted ascending.
  double prev = 0.0;
  for (const auto& o : data.observations()) {
    EXPECT_GE(o.time, prev);
    prev = o.time;
  }
}

TEST(SurvivalData, EventsPrecedeCensoringsAtTies) {
  const SurvivalData data({{3.0, false}, {3.0, true}});
  EXPECT_TRUE(data.observations()[0].event);
  EXPECT_FALSE(data.observations()[1].event);
}

TEST(SurvivalData, RejectsBadTimes) {
  EXPECT_THROW(SurvivalData({{-1.0, true}}), InvalidArgument);
  EXPECT_THROW(SurvivalData({{std::nan(""), true}}), InvalidArgument);
}

TEST(SurvivalData, CensorAtHelper) {
  const std::vector<double> lifetimes = {1.0, 5.0, 9.0};
  const std::vector<double> cutoffs = {2.0, 2.0, 10.0};
  const auto data = SurvivalData::censor_at(lifetimes, cutoffs);
  EXPECT_EQ(data.event_count(), 2u);  // 1.0 and 9.0 observed
  EXPECT_EQ(data.censored_count(), 1u);
  // the censored one is recorded at its cutoff
  EXPECT_DOUBLE_EQ(data.observations()[1].time, 2.0);
  EXPECT_FALSE(data.observations()[1].event);
}

TEST(KaplanMeier, TextbookExample) {
  // Hand computation (at-risk sets shrink by censorings at 2+, 4+, 5+, 8+):
  //  t=1:  n=10 d=1 -> S = 9/10                = 0.9
  //  t=3:  n=8  d=2 -> S = 0.9 * 6/8           = 0.675
  //  t=6:  n=4  d=1 -> S = 0.675 * 3/4         = 0.50625
  //  t=10: n=2  d=1 -> S = 0.50625 * 1/2       = 0.253125
  const auto km = kaplan_meier(textbook_data());
  ASSERT_EQ(km.times.size(), 4u);
  EXPECT_DOUBLE_EQ(km.times[0], 1.0);
  EXPECT_DOUBLE_EQ(km.times[1], 3.0);
  EXPECT_DOUBLE_EQ(km.times[2], 6.0);
  EXPECT_DOUBLE_EQ(km.times[3], 10.0);
  EXPECT_NEAR(km.survival[0], 0.9, 1e-12);
  EXPECT_NEAR(km.survival[1], 0.675, 1e-12);
  EXPECT_NEAR(km.survival[2], 0.50625, 1e-12);
  EXPECT_NEAR(km.survival[3], 0.253125, 1e-12);
  EXPECT_EQ(km.at_risk[0], 10u);
  EXPECT_EQ(km.at_risk[1], 8u);
  EXPECT_EQ(km.at_risk[2], 4u);
  EXPECT_EQ(km.at_risk[3], 2u);
  EXPECT_EQ(km.events[1], 2u);
}

TEST(KaplanMeier, StepLookupAndMedian) {
  const auto km = kaplan_meier(textbook_data());
  EXPECT_DOUBLE_EQ(km.survival_at(0.5), 1.0);
  EXPECT_NEAR(km.survival_at(1.0), 0.9, 1e-12);
  EXPECT_NEAR(km.survival_at(2.9), 0.9, 1e-12);
  EXPECT_NEAR(km.survival_at(3.0), 0.675, 1e-12);
  EXPECT_NEAR(km.cdf_at(7.0), 1.0 - 0.50625, 1e-12);
  EXPECT_DOUBLE_EQ(km.median(), 10.0);  // first S <= 0.5 happens at t=10
}

TEST(KaplanMeier, MedianUndefinedUnderHeavyCensoring) {
  const SurvivalData data({{1.0, true}, {2.0, false}, {3.0, false}, {4.0, false}});
  const auto km = kaplan_meier(data);
  EXPECT_TRUE(std::isnan(km.median()));
}

TEST(KaplanMeier, MatchesEcdfWhenUncensored) {
  Rng rng(5);
  const dist::Exponential d(0.4);
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(d.sample(rng));
  const auto km = kaplan_meier(SurvivalData::all_events(xs));
  const dist::EmpiricalDistribution ecdf(xs);
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    EXPECT_NEAR(km.cdf_at(t), ecdf.cdf(t), 1e-12) << t;
  }
}

TEST(KaplanMeier, ConfidenceBandsBracketTheEstimate) {
  const auto km = kaplan_meier(textbook_data(), 0.95);
  for (std::size_t i = 0; i < km.times.size(); ++i) {
    EXPECT_LE(km.lower[i], km.survival[i] + 1e-12);
    EXPECT_GE(km.upper[i], km.survival[i] - 1e-12);
    EXPECT_GE(km.lower[i], 0.0);
    EXPECT_LE(km.upper[i], 1.0);
  }
  // Wider confidence -> wider band.
  const auto km99 = kaplan_meier(textbook_data(), 0.99);
  EXPECT_LE(km99.lower[1], km.lower[1]);
  EXPECT_GE(km99.upper[1], km.upper[1]);
}

TEST(KaplanMeier, Preconditions) {
  EXPECT_THROW(kaplan_meier(SurvivalData{}), InvalidArgument);
  EXPECT_THROW(kaplan_meier(SurvivalData({{1.0, false}})), InvalidArgument);
  EXPECT_THROW(kaplan_meier(textbook_data(), 0.0), InvalidArgument);
  EXPECT_THROW(kaplan_meier(textbook_data(), 1.0), InvalidArgument);
}

TEST(KaplanMeier, CdfPointsFeedTheFitters) {
  const auto km = kaplan_meier(textbook_data());
  const auto pts = km.cdf_points();
  ASSERT_EQ(pts.t.size(), pts.f.size());
  for (std::size_t i = 1; i < pts.f.size(); ++i) {
    EXPECT_GE(pts.f[i], pts.f[i - 1]);
  }
  EXPECT_NEAR(pts.f[0], 0.1, 1e-12);
}

TEST(NelsonAalen, TextbookExample) {
  //  t=1:  H = 1/10 = 0.1
  //  t=3:  H = 0.1 + 2/8  = 0.35
  //  t=6:  H = 0.35 + 1/4 = 0.6
  //  t=10: H = 0.6 + 1/2  = 1.1
  const auto na = nelson_aalen(textbook_data());
  ASSERT_EQ(na.times.size(), 4u);
  EXPECT_NEAR(na.cumulative_hazard[0], 0.1, 1e-12);
  EXPECT_NEAR(na.cumulative_hazard[1], 0.35, 1e-12);
  EXPECT_NEAR(na.cumulative_hazard[2], 0.6, 1e-12);
  EXPECT_NEAR(na.cumulative_hazard[3], 1.1, 1e-12);
  EXPECT_NEAR(na.variance[0], 0.01, 1e-12);
  EXPECT_NEAR(na.variance[1], 0.01 + 2.0 / 64.0, 1e-12);
}

TEST(NelsonAalen, ApproximatesNegLogKm) {
  // For many at-risk subjects, H ≈ -ln S: check on a larger sample.
  Rng rng(9);
  const dist::Exponential d(0.3);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(d.sample(rng));
  const auto data = SurvivalData::all_events(xs);
  const auto km = kaplan_meier(data);
  const auto na = nelson_aalen(data);
  for (double t : {1.0, 2.0, 4.0}) {
    EXPECT_NEAR(na.cumulative_hazard_at(t), -std::log(km.survival_at(t)), 0.02) << t;
  }
}

TEST(NelsonAalen, CumulativeHazardTracksExponentialRate) {
  Rng rng(11);
  const dist::Exponential d(0.25);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(d.sample(rng));
  const auto na = nelson_aalen(SurvivalData::all_events(xs));
  // H(t) = λt for the exponential.
  EXPECT_NEAR(na.cumulative_hazard_at(4.0), 1.0, 0.08);
  EXPECT_NEAR(na.smoothed_hazard(3.0, 1.0), 0.25, 0.05);
}

TEST(NelsonAalen, HazardRevealsBathtubPhases) {
  // The nonparametric hazard must dip in the middle and spike near the
  // deadline for bathtub data — Observation 1 without any model fitting.
  Rng rng(13);
  const auto d = preempt::testing::reference_bathtub();
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) xs.push_back(d.sample(rng));
  const auto na = nelson_aalen(SurvivalData::all_events(xs));
  const double infant = na.smoothed_hazard(0.5, 0.5);
  const double stable = na.smoothed_hazard(12.0, 2.0);
  const double wall = na.smoothed_hazard(23.7, 0.3);
  EXPECT_GT(infant, 3.0 * stable);
  EXPECT_GT(wall, 10.0 * stable);
}

TEST(LogRank, IdenticalGroupsAreNotSignificant) {
  Rng rng(17);
  const dist::Exponential d(0.2);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) a.push_back(d.sample(rng));
  for (int i = 0; i < 300; ++i) b.push_back(d.sample(rng));
  const auto r = log_rank_test(SurvivalData::all_events(a), SurvivalData::all_events(b));
  EXPECT_FALSE(r.significant(0.01));
  EXPECT_GT(r.p_value, 0.01);
}

TEST(LogRank, DetectsRateDifference) {
  Rng rng(19);
  const dist::Exponential fast(0.4), slow(0.2);
  std::vector<double> a, b;
  for (int i = 0; i < 300; ++i) a.push_back(fast.sample(rng));
  for (int i = 0; i < 300; ++i) b.push_back(slow.sample(rng));
  const auto r = log_rank_test(SurvivalData::all_events(a), SurvivalData::all_events(b));
  EXPECT_TRUE(r.significant(0.001));
  EXPECT_GT(r.observed_a, r.expected_a);  // faster group has more events than expected
}

TEST(LogRank, WorksUnderCensoring) {
  // Same groups, half the observations administratively censored at 3 h:
  // the test must remain non-significant.
  Rng rng(23);
  const dist::Exponential d(0.3);
  std::vector<double> a, b, cut(300, 3.0);
  for (int i = 0; i < 300; ++i) a.push_back(d.sample(rng));
  for (int i = 0; i < 300; ++i) b.push_back(d.sample(rng));
  const auto r =
      log_rank_test(SurvivalData::censor_at(a, cut), SurvivalData::censor_at(b, cut));
  EXPECT_GT(r.p_value, 0.01);
}

TEST(LogRank, Preconditions) {
  const auto data = textbook_data();
  EXPECT_THROW(log_rank_test(SurvivalData{}, data), InvalidArgument);
  EXPECT_THROW(log_rank_test(data, SurvivalData{}), InvalidArgument);
}

}  // namespace
}  // namespace preempt::survival
