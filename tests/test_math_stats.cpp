#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/stats.hpp"

namespace preempt {
namespace {

TEST(Math, LinspaceEndpointsAndSpacing) {
  const auto xs = linspace(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_DOUBLE_EQ(xs[1], 0.25);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
}

TEST(Math, LinspaceSinglePoint) {
  const auto xs = linspace(3.0, 9.0, 1);
  ASSERT_EQ(xs.size(), 1u);
  EXPECT_DOUBLE_EQ(xs[0], 3.0);
}

TEST(Math, LinspaceRejectsZeroPoints) { EXPECT_THROW(linspace(0, 1, 0), InvalidArgument); }

TEST(Math, IsCloseBehaviour) {
  EXPECT_TRUE(is_close(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(is_close(1.0, 1.001));
  EXPECT_TRUE(is_close(0.0, 1e-12, 1e-9, 1e-9));
}

TEST(Math, ClampFunctions) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(Math, KahanSumBeatsNaiveOnIllConditionedSeries) {
  KahanSum k;
  k.add(1.0);
  for (int i = 0; i < 10000000; ++i) k.add(1e-16);
  EXPECT_NEAR(k.value(), 1.0 + 1e-9, 1e-12);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, MeanRejectsEmpty) {
  std::vector<double> empty;
  EXPECT_THROW(mean(empty), InvalidArgument);
}

TEST(Stats, QuantileType7Convention) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Stats, PearsonCorrelationPerfectAndAnti) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> dn = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, dn), -1.0, 1e-12);
}

TEST(Stats, LinearRegressionRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-10);
  EXPECT_NEAR(fit.slope, 2.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearRegressionR2OnNoisyData) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 10; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LinearFit fit = linear_regression(xs, ys);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_LT(fit.r2, 1.0);
}

TEST(Stats, SummarizeBundlesEverything) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
}

}  // namespace
}  // namespace preempt
