#include "fit/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "fit/curve_fit.hpp"

namespace preempt::fit {
namespace {

TEST(LevenbergMarquardt, SolvesLinearProblemExactly) {
  // Residuals r_i = (a + b x_i) - y_i for y = 2 + 3x.
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  ResidualFn residuals = [&xs](const std::vector<double>& p) {
    std::vector<double> r(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      r[i] = p[0] + p[1] * xs[i] - (2.0 + 3.0 * xs[i]);
    }
    return r;
  };
  const LmResult res = levenberg_marquardt(residuals, {0.0, 0.0});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 2.0, 1e-6);
  EXPECT_NEAR(res.params[1], 3.0, 1e-6);
  EXPECT_NEAR(res.sse, 0.0, 1e-10);
}

TEST(LevenbergMarquardt, SolvesNonlinearExponentialFit) {
  // y = 5 e^{-0.7 x} sampled exactly; recover (5, 0.7).
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(0.25 * i);
    ys.push_back(5.0 * std::exp(-0.7 * 0.25 * i));
  }
  ModelFn model = [](double x, const std::vector<double>& p) {
    return p[0] * std::exp(-p[1] * x);
  };
  const LmResult res = curve_fit(model, xs, ys, {1.0, 0.1});
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.params[0], 5.0, 1e-5);
  EXPECT_NEAR(res.params[1], 0.7, 1e-5);
}

TEST(LevenbergMarquardt, RosenbrockStyleValley) {
  // Classic hard case expressed as residuals: r1 = 10(y - x^2), r2 = 1 - x.
  ResidualFn residuals = [](const std::vector<double>& p) {
    return std::vector<double>{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
  };
  LmOptions opts;
  opts.max_iterations = 500;
  const LmResult res = levenberg_marquardt(residuals, {-1.2, 1.0}, {}, opts);
  EXPECT_NEAR(res.params[0], 1.0, 1e-4);
  EXPECT_NEAR(res.params[1], 1.0, 1e-4);
}

TEST(LevenbergMarquardt, RespectsBounds) {
  // Unconstrained minimum at p = 5; box caps it at 2.
  ResidualFn residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 5.0};
  };
  Bounds bounds{{0.0}, {2.0}};
  const LmResult res = levenberg_marquardt(residuals, {1.0}, bounds);
  EXPECT_NEAR(res.params[0], 2.0, 1e-9);
}

TEST(LevenbergMarquardt, StartsFromProjectedGuess) {
  ResidualFn residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] - 1.0};
  };
  Bounds bounds{{0.0}, {2.0}};
  // Initial guess outside the box gets projected, then optimised.
  const LmResult res = levenberg_marquardt(residuals, {50.0}, bounds);
  EXPECT_NEAR(res.params[0], 1.0, 1e-9);
}

TEST(LevenbergMarquardt, ReportsIterationsAndMessage) {
  ResidualFn residuals = [](const std::vector<double>& p) {
    return std::vector<double>{p[0] * p[0] - 2.0};
  };
  const LmResult res = levenberg_marquardt(residuals, {1.0});
  EXPECT_GE(res.iterations, 1);
  EXPECT_FALSE(res.message.empty());
  EXPECT_NEAR(res.params[0], std::sqrt(2.0), 1e-6);
}

TEST(LevenbergMarquardt, RejectsMalformedInput) {
  ResidualFn residuals = [](const std::vector<double>&) { return std::vector<double>{0.0}; };
  EXPECT_THROW(levenberg_marquardt(residuals, {}), InvalidArgument);
  Bounds bad{{1.0}, {0.0}};  // lower > upper
  EXPECT_THROW(levenberg_marquardt(residuals, {0.5}, bad), InvalidArgument);
}

TEST(LevenbergMarquardt, ThrowsOnNonFiniteInitialResiduals) {
  ResidualFn residuals = [](const std::vector<double>& p) {
    return std::vector<double>{std::log(p[0])};  // NaN at p = -1
  };
  EXPECT_THROW(levenberg_marquardt(residuals, {-1.0}), NumericError);
}

TEST(CurveFit, ValidatesShapes) {
  ModelFn model = [](double x, const std::vector<double>& p) { return p[0] * x; };
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(curve_fit(model, xs, ys, {1.0}), InvalidArgument);
}

TEST(CurveFit, FitsThroughNoise) {
  // y = 4 x + noise; the LS slope must land near 4.
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i * 0.1);
    ys.push_back(4.0 * i * 0.1 + ((i % 3) - 1) * 0.05);
  }
  ModelFn model = [](double x, const std::vector<double>& p) { return p[0] * x; };
  const LmResult res = curve_fit(model, xs, ys, {0.5});
  EXPECT_NEAR(res.params[0], 4.0, 0.05);
}

}  // namespace
}  // namespace preempt::fit
