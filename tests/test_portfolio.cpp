// The multi-market portfolio subsystem: catalog enumeration and lazy fits,
// optimizer invariants (bag conservation, risk bound, greedy-vs-exhaustive),
// and the multi-market dispatch service with drift-driven rebalancing.
#include "portfolio/optimizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dist/exponential.hpp"
#include "portfolio/multi_market_service.hpp"

namespace preempt::portfolio {
namespace {

/// One shared catalog: market fits dominate the suite's runtime.
const MarketCatalog& shared_catalog() {
  static const MarketCatalog catalog = MarketCatalog::synthetic(50, 2019);
  return catalog;
}

PortfolioConfig small_config(std::size_t jobs, double risk = 0.05) {
  PortfolioConfig config;
  config.jobs = jobs;
  config.risk_bound = risk;
  config.job_hours = 0.25;
  return config;
}

TEST(MarketCatalog, EnumeratesTheFullGrid) {
  const auto& catalog = shared_catalog();
  // 5 VM types x 4 zones x 2 day periods.
  EXPECT_EQ(catalog.size(), 40u);
  // Labels are unique and stable.
  std::vector<std::string> labels;
  for (const auto& m : catalog.markets()) labels.push_back(m.label());
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end());
}

TEST(MarketCatalog, PricesComeFromTheVmCatalog) {
  const auto& catalog = shared_catalog();
  for (const auto& m : catalog.markets()) {
    EXPECT_DOUBLE_EQ(m.price_per_hour, trace::vm_spec(m.regime.type).preemptible_per_hour);
  }
}

TEST(MarketCatalog, LazyFitCachesModels) {
  MarketCatalog catalog = MarketCatalog::synthetic(40, 7);
  EXPECT_EQ(catalog.fitted_count(), 0u);
  const auto& first = catalog.model(3);
  EXPECT_EQ(catalog.fitted_count(), 1u);
  const auto& again = catalog.model(3);
  EXPECT_EQ(&first, &again);  // cached, not refit
  EXPECT_GT(first.expected_lifetime(), 0.0);
}

TEST(MarketCatalog, ParallelFitMatchesSerialFit) {
  MarketCatalog serial = MarketCatalog::synthetic(40, 11);
  MarketCatalog parallel = MarketCatalog::synthetic(40, 11);
  serial.fit_all();
  ThreadPool pool(4);
  parallel.fit_all(pool);
  ASSERT_EQ(serial.fitted_count(), serial.size());
  ASSERT_EQ(parallel.fitted_count(), parallel.size());
  for (std::size_t m = 0; m < serial.size(); ++m) {
    // Same data, same deterministic fit — bit-identical parameters.
    EXPECT_EQ(serial.model(m).params().scale, parallel.model(m).params().scale) << m;
    EXPECT_EQ(serial.model(m).params().tau1, parallel.model(m).params().tau1) << m;
  }
}

TEST(MarketCatalog, RejectsEmptyDataset) {
  EXPECT_THROW(MarketCatalog(trace::Dataset{}), InvalidArgument);
}

TEST(PortfolioOptimizer, AllocationSumsToBagSize) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(137));
  const auto allocation = optimizer.optimize_greedy();
  EXPECT_EQ(allocation.total(), 137u);
  EXPECT_EQ(allocation.counts.size(), shared_catalog().size());
}

TEST(PortfolioOptimizer, RiskBoundIsRespected) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(200, 0.05));
  const auto allocation = optimizer.optimize_greedy();
  for (const auto& quote : optimizer.quotes()) {
    if (allocation.counts[quote.market] > 0) {
      EXPECT_LE(quote.failure_probability, 0.05) << quote.market;
      EXPECT_TRUE(quote.eligible);
    }
  }
}

TEST(PortfolioOptimizer, DiversifiesAcrossMarkets) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(100));
  const auto allocation = optimizer.optimize_greedy();
  // The pairwise correlated-failure penalty spreads the bag.
  EXPECT_GE(allocation.markets_used, 3u);
}

TEST(PortfolioOptimizer, DeterministicAcrossRuns) {
  const PortfolioOptimizer a(shared_catalog(), small_config(100));
  const PortfolioOptimizer b(shared_catalog(), small_config(100));
  EXPECT_EQ(a.optimize_greedy().counts, b.optimize_greedy().counts);
}

TEST(PortfolioOptimizer, GreedyMatchesExhaustiveOnSmallInstances) {
  // The objective is separable-convex, so incremental greedy should be exact;
  // the acceptance bar is the looser 10%.
  for (const std::size_t jobs : {1u, 2u, 5u, 9u}) {
    for (const double risk : {0.02, 0.03}) {
      const PortfolioOptimizer optimizer(shared_catalog(), small_config(jobs, risk));
      const auto greedy = optimizer.optimize_greedy();
      const auto reference = optimizer.optimize_exhaustive();
      EXPECT_EQ(greedy.total(), reference.total());
      EXPECT_LE(greedy.objective, reference.objective * 1.10 + 1e-12)
          << "jobs=" << jobs << " risk=" << risk;
      // And in fact exact, up to floating-point noise.
      EXPECT_NEAR(greedy.objective, reference.objective,
                  1e-9 * std::max(1.0, reference.objective));
    }
  }
}

TEST(PortfolioOptimizer, ObjectiveChargesCorrelationPenalty) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(10));
  // Concentrating the bag must cost at least as much as the optimum.
  std::size_t cheapest = 0;
  double best_cost = 1e300;
  for (const auto& q : optimizer.quotes()) {
    if (q.eligible && q.expected_cost < best_cost) {
      best_cost = q.expected_cost;
      cheapest = q.market;
    }
  }
  std::vector<std::size_t> concentrated(shared_catalog().size(), 0);
  concentrated[cheapest] = 10;
  const auto greedy = optimizer.optimize_greedy();
  EXPECT_LE(greedy.objective, optimizer.objective(concentrated) + 1e-12);
}

TEST(PortfolioOptimizer, ThrowsWhenNoMarketMeetsTheRiskBound) {
  PortfolioConfig config = small_config(10, 1e-9);
  const PortfolioOptimizer optimizer(shared_catalog(), config);
  EXPECT_EQ(optimizer.eligible_count(), 0u);
  EXPECT_THROW(optimizer.optimize_greedy(), InvalidArgument);
  EXPECT_THROW(optimizer.optimize_exhaustive(), InvalidArgument);
}

TEST(PortfolioOptimizer, ExhaustiveRefusesLargeInstances) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(500, 0.2));
  EXPECT_THROW(optimizer.optimize_exhaustive(), InvalidArgument);
}

TEST(MultiMarketService, CompletesTheBagDeterministically) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(40));
  const auto allocation = optimizer.optimize_greedy();
  MultiMarketConfig config;
  config.seed = 99;
  MultiMarketService service(shared_catalog(), config);
  const auto report = service.run(allocation);
  EXPECT_EQ(report.jobs_completed, 40u);
  EXPECT_EQ(report.jobs_abandoned, 0u);
  EXPECT_GT(report.total_cost, 0.0);
  EXPECT_GT(report.makespan_hours, 0.0);

  MultiMarketService repeat(shared_catalog(), config);
  const auto second = repeat.run(allocation);
  EXPECT_EQ(second.jobs_completed, report.jobs_completed);
  EXPECT_DOUBLE_EQ(second.total_cost, report.total_cost);
  EXPECT_DOUBLE_EQ(second.makespan_hours, report.makespan_hours);
}

TEST(MultiMarketService, DriftedMarketTriggersRebalancing) {
  const PortfolioOptimizer optimizer(shared_catalog(), small_config(60));
  const auto allocation = optimizer.optimize_greedy();
  // Find the most-loaded market and make its real lifetimes collapse to
  // minutes: jobs there keep getting preempted until CUSUM notices.
  std::size_t loaded = 0;
  for (std::size_t m = 1; m < allocation.counts.size(); ++m) {
    if (allocation.counts[m] > allocation.counts[loaded]) loaded = m;
  }
  MultiMarketConfig config;
  config.seed = 5;
  config.cusum_threshold = 4.0;  // alarm quickly in a short test
  MultiMarketService service(shared_catalog(), config);
  service.set_ground_truth(loaded, std::make_unique<dist::Exponential>(30.0));
  const auto report = service.run(allocation);
  EXPECT_GE(report.rebalances, 1u);
  EXPECT_EQ(report.jobs_completed, 60u);
  bool saw_migration = false;
  for (const auto& m : report.markets) {
    if (m.market == loaded) {
      EXPECT_TRUE(m.drift_alarm);
      EXPECT_GT(m.migrated_out, 0u);
    }
    saw_migration = saw_migration || m.migrated_in > 0;
  }
  EXPECT_TRUE(saw_migration);
}

TEST(MultiMarketService, RejectsMismatchedAllocation) {
  MultiMarketService service(shared_catalog(), MultiMarketConfig{});
  Allocation bad;
  bad.counts = {1, 2, 3};
  EXPECT_THROW(service.run(bad), InvalidArgument);
}

}  // namespace
}  // namespace preempt::portfolio
