#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/truncated.hpp"
#include "dist/uniform.hpp"

namespace preempt::dist {
namespace {

// --- Gompertz-Makeham --------------------------------------------------------

TEST(GompertzMakeham, CdfClosedForm) {
  const GompertzMakeham d(0.1, 0.01, 0.5);
  const double t = 2.0;
  const double cumulative = 0.1 * t + 0.01 / 0.5 * (std::exp(0.5 * t) - 1.0);
  EXPECT_NEAR(d.cdf(t), 1.0 - std::exp(-cumulative), 1e-14);
}

TEST(GompertzMakeham, PdfIsDerivativeOfCdf) {
  const GompertzMakeham d(0.05, 0.02, 0.3);
  const double h = 1e-6;
  for (double t : {0.5, 2.0, 8.0}) {
    const double numeric = (d.cdf(t + h) - d.cdf(t - h)) / (2.0 * h);
    EXPECT_NEAR(d.pdf(t), numeric, 1e-6);
  }
}

TEST(GompertzMakeham, HazardGrowsExponentially) {
  const GompertzMakeham d(0.01, 0.001, 1.0);
  EXPECT_LT(d.hazard(0.5), d.hazard(5.0));
  // hazard(t) = lambda + alpha e^{beta t}
  EXPECT_NEAR(d.hazard(3.0), 0.01 + 0.001 * std::exp(3.0), 1e-9);
}

TEST(GompertzMakeham, ReducesTowardExponentialForTinyAlpha) {
  const GompertzMakeham d(0.5, 1e-12, 0.1);
  const Exponential e(0.5);
  EXPECT_NEAR(d.cdf(3.0), e.cdf(3.0), 1e-9);
}

TEST(GompertzMakeham, RejectsBadParameters) {
  EXPECT_THROW(GompertzMakeham(-0.1, 0.1, 0.1), InvalidArgument);
  EXPECT_THROW(GompertzMakeham(0.1, 0.0, 0.1), InvalidArgument);
  EXPECT_THROW(GompertzMakeham(0.1, 0.1, 0.0), InvalidArgument);
}

// --- Uniform -------------------------------------------------------------------

TEST(UniformLifetime, CdfIsLinear) {
  const UniformLifetime u(24.0);
  EXPECT_DOUBLE_EQ(u.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(u.cdf(6.0), 0.25);
  EXPECT_DOUBLE_EQ(u.cdf(24.0), 1.0);
  EXPECT_DOUBLE_EQ(u.cdf(30.0), 1.0);
}

TEST(UniformLifetime, MeanAndQuantile) {
  const UniformLifetime u(24.0);
  EXPECT_DOUBLE_EQ(u.mean(), 12.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.5), 12.0);
  EXPECT_DOUBLE_EQ(u.quantile(0.25), 6.0);
}

TEST(UniformLifetime, PartialExpectationClosedForm) {
  const UniformLifetime u(24.0);
  // ∫_0^J t/24 dt = J^2/48 — the paper's uniform "expected increase".
  EXPECT_NEAR(u.partial_expectation(0.0, 10.0), 100.0 / 48.0, 1e-12);
  EXPECT_NEAR(u.partial_expectation(6.0, 12.0), (144.0 - 36.0) / 48.0, 1e-12);
  // Clamped outside the support.
  EXPECT_NEAR(u.partial_expectation(20.0, 40.0), (576.0 - 400.0) / 48.0, 1e-12);
}

TEST(UniformLifetime, WastedWorkIsHalfJobLength) {
  const UniformLifetime u(24.0);
  // E[W1(J)] = (J^2/(2L)) / (J/L) = J/2 (paper Sec. 6.1).
  const double j = 7.0;
  EXPECT_NEAR(u.partial_expectation(0.0, j) / u.cdf(j), j / 2.0, 1e-12);
}

TEST(UniformLifetime, RejectsBadHorizon) {
  EXPECT_THROW(UniformLifetime(0.0), InvalidArgument);
}

// --- Truncation ------------------------------------------------------------------

TEST(Truncated, NormalisesMassToHorizon) {
  TruncatedDistribution t(std::make_unique<Exponential>(0.1), 24.0);
  EXPECT_DOUBLE_EQ(t.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.cdf(24.0), 1.0);
  EXPECT_DOUBLE_EQ(t.cdf(30.0), 1.0);
  // Interior values are scaled by 1/F(24).
  const Exponential base(0.1);
  EXPECT_NEAR(t.cdf(10.0), base.cdf(10.0) / base.cdf(24.0), 1e-12);
}

TEST(Truncated, PdfIntegratesToOne) {
  TruncatedDistribution t(std::make_unique<Exponential>(0.05), 24.0);
  double sum = 0.0;
  const int n = 4800;
  for (int i = 0; i < n; ++i) {
    const double x = (i + 0.5) * 24.0 / n;
    sum += t.pdf(x) * 24.0 / n;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Truncated, QuantileInvertsCdf) {
  TruncatedDistribution t(std::make_unique<Exponential>(0.2), 24.0);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(t.cdf(t.quantile(p)), p, 1e-10);
  }
}

TEST(Truncated, MeanIsBelowHorizonAndBaseMean) {
  TruncatedDistribution t(std::make_unique<Exponential>(0.05), 24.0);  // base mean 20 h
  const double m = t.mean();
  EXPECT_LT(m, 20.0);
  EXPECT_LT(m, 24.0);
  EXPECT_GT(m, 0.0);
}

TEST(Truncated, CloneIsIndependentAndEqual) {
  TruncatedDistribution t(std::make_unique<Exponential>(0.2), 12.0);
  const auto copy = t.clone();
  EXPECT_NEAR(copy->cdf(5.0), t.cdf(5.0), 1e-15);
  EXPECT_EQ(copy->name(), "exponential-truncated");
}

TEST(Truncated, RejectsNullAndEmptyMass) {
  EXPECT_THROW(TruncatedDistribution(nullptr, 24.0), InvalidArgument);
  EXPECT_THROW(TruncatedDistribution(std::make_unique<Exponential>(1.0), -1.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::dist
