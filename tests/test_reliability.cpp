#include "dist/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

using preempt::testing::reference_bathtub;

TEST(Reliability, MttfOfExponential) {
  const Exponential d(0.25);
  EXPECT_NEAR(mttf(d), 4.0, 1e-12);
}

TEST(Reliability, ConditionalSurvivalMemoryless) {
  const Exponential d(0.5);
  EXPECT_NEAR(conditional_survival(d, 3.0, 2.0), d.survival(2.0), 1e-12);
  EXPECT_NEAR(conditional_failure(d, 3.0, 2.0), d.cdf(2.0), 1e-12);
}

TEST(Reliability, ConditionalSurvivalBathtubStablePhase) {
  const auto d = reference_bathtub();
  // A VM that survived the infant phase is very likely to survive the stable
  // middle (Observation 1 / Sec. 3.1 significance discussion).
  EXPECT_GT(conditional_survival(d, 5.0, 6.0), 0.99);
  // But almost surely dies crossing the deadline wall.
  EXPECT_LT(conditional_survival(d, 20.0, 4.0), 1e-6);
}

TEST(Reliability, ConditionalSurvivalAtDeadEndIsZero) {
  const auto d = reference_bathtub();
  EXPECT_DOUBLE_EQ(conditional_survival(d, 24.0, 1.0), 0.0);
}

TEST(Reliability, MeanResidualLifeExponentialIsConstant) {
  const Exponential d(0.5);
  EXPECT_NEAR(mean_residual_life(d, 0.0), 2.0, 1e-6);
  EXPECT_NEAR(mean_residual_life(d, 7.0), 2.0, 1e-6);
}

TEST(Reliability, MeanResidualLifeUniform) {
  const UniformLifetime d(24.0);
  // MRL(s) = (24 - s)/2 for uniform.
  EXPECT_NEAR(mean_residual_life(d, 0.0), 12.0, 1e-9);
  EXPECT_NEAR(mean_residual_life(d, 12.0), 6.0, 1e-9);
}

TEST(Reliability, BathtubMrlPeaksAfterInfantPhase) {
  const auto d = reference_bathtub();
  const double at_birth = mean_residual_life(d, 0.0);
  const double post_infant = mean_residual_life(d, 4.0);
  const double near_deadline = mean_residual_life(d, 22.0);
  // Surviving the infant phase buys a longer outlook than birth; the wall
  // destroys it.
  EXPECT_GT(post_infant, at_birth);
  EXPECT_LT(near_deadline, 2.0);
}

TEST(Reliability, MttfFromInitialRateMatchesPaperBaseline) {
  // Sec. 6.2.2 derives the Young-Daly MTTF from the initial failure rate.
  const auto d = reference_bathtub();
  // h(0) = A (1/tau1 + e^{-30}/tau2) ≈ 0.45 -> MTTF ≈ 2.22 h.
  EXPECT_NEAR(mttf_from_initial_rate(d), 1.0 / 0.45, 0.01);
}

TEST(Reliability, PhaseClassification) {
  const auto d = reference_bathtub();
  EXPECT_EQ(classify_phase(d, 0.5), Phase::kInfant);
  EXPECT_EQ(classify_phase(d, 12.0), Phase::kStable);
  EXPECT_EQ(classify_phase(d, 23.0), Phase::kDeadline);
}

TEST(Reliability, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::kInfant), "infant");
  EXPECT_STREQ(phase_name(Phase::kStable), "stable");
  EXPECT_STREQ(phase_name(Phase::kDeadline), "deadline");
}

TEST(Reliability, PreconditionsChecked) {
  const Exponential d(1.0);
  EXPECT_THROW(conditional_survival(d, -1.0, 1.0), InvalidArgument);
  EXPECT_THROW(mean_residual_life(d, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::dist
