// Censored maximum-likelihood fitters and the Nelder-Mead engine behind the
// bathtub MLE.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/exponential.hpp"
#include "dist/weibull.hpp"
#include "fit/model_fitters.hpp"
#include "fit/nelder_mead.hpp"
#include "survival/mle.hpp"
#include "test_util.hpp"

namespace preempt::survival {
namespace {

// ---------------------------------------------------------------- NelderMead

TEST(NelderMead, MinimisesQuadratic) {
  auto f = [](const std::vector<double>& p) {
    return (p[0] - 3.0) * (p[0] - 3.0) + 2.0 * (p[1] + 1.0) * (p[1] + 1.0);
  };
  const auto r = fit::nelder_mead(f, {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.params[0], 3.0, 1e-5);
  EXPECT_NEAR(r.params[1], -1.0, 1e-5);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

TEST(NelderMead, MinimisesRosenbrock) {
  auto f = [](const std::vector<double>& p) {
    const double a = 1.0 - p[0];
    const double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  fit::NelderMeadOptions opts;
  opts.max_iterations = 20000;
  const auto r = fit::nelder_mead(f, {-1.2, 1.0}, {}, opts);
  EXPECT_NEAR(r.params[0], 1.0, 1e-4);
  EXPECT_NEAR(r.params[1], 1.0, 1e-4);
}

TEST(NelderMead, RespectsBounds) {
  auto f = [](const std::vector<double>& p) { return (p[0] - 5.0) * (p[0] - 5.0); };
  const fit::Bounds bounds{{0.0}, {2.0}};
  const auto r = fit::nelder_mead(f, {1.0}, bounds);
  EXPECT_NEAR(r.params[0], 2.0, 1e-6);  // pinned at the boundary
}

TEST(NelderMead, RejectsBadStart) {
  auto f = [](const std::vector<double>& p) { return std::log(p[0]); };  // -inf at 0
  EXPECT_THROW(fit::nelder_mead(f, {0.0}), NumericError);
  EXPECT_THROW(fit::nelder_mead(f, {}), InvalidArgument);
}

// -------------------------------------------------------------- exponential

SurvivalData exponential_censored_sample(double rate, double cutoff, int n, std::uint64_t seed) {
  Rng rng(seed);
  const dist::Exponential d(rate);
  std::vector<double> lifetimes, cutoffs(n, cutoff);
  for (int i = 0; i < n; ++i) lifetimes.push_back(d.sample(rng));
  return SurvivalData::censor_at(lifetimes, cutoffs);
}

TEST(ExponentialMle, ClosedFormOnUncensoredData) {
  const SurvivalData data = SurvivalData::all_events(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  const auto r = fit_exponential_mle(data);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.params[0], 4.0 / 10.0, 1e-12);  // d / sum(t)
}

TEST(ExponentialMle, UnbiasedUnderHeavyCensoring) {
  // 60%+ of the mass is beyond the cutoff; the MLE must still recover λ.
  const auto data = exponential_censored_sample(0.25, 2.0, 4000, 29);
  ASSERT_LT(data.event_count(), data.size() / 2);
  const auto r = fit_exponential_mle(data);
  EXPECT_NEAR(r.params[0], 0.25, 0.02);
}

TEST(ExponentialMle, LikelihoodIsMaximal) {
  const auto data = exponential_censored_sample(0.5, 3.0, 500, 31);
  const auto r = fit_exponential_mle(data);
  const double at_hat = censored_log_likelihood(dist::Exponential(r.params[0]), data);
  EXPECT_NEAR(at_hat, r.log_likelihood, 1e-9);
  for (double lam : {r.params[0] * 0.8, r.params[0] * 1.2}) {
    EXPECT_LT(censored_log_likelihood(dist::Exponential(lam), data), at_hat);
  }
}

// ------------------------------------------------------------------ weibull

TEST(WeibullMle, RecoversParametersUncensored) {
  Rng rng(37);
  const dist::Weibull truth(0.2, 1.8);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(truth.sample(rng));
  const auto r = fit_weibull_mle(SurvivalData::all_events(xs));
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.params[0], 0.2, 0.01);
  EXPECT_NEAR(r.params[1], 1.8, 0.08);
}

TEST(WeibullMle, RecoversParametersCensored) {
  Rng rng(41);
  const dist::Weibull truth(0.15, 2.2);
  std::vector<double> xs, cutoffs;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(truth.sample(rng));
    cutoffs.push_back(6.0);  // censors ~the upper third
  }
  const auto data = SurvivalData::censor_at(xs, cutoffs);
  ASSERT_GT(data.censored_count(), 100u);
  const auto r = fit_weibull_mle(data);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.params[0], 0.15, 0.01);
  EXPECT_NEAR(r.params[1], 2.2, 0.15);
}

TEST(WeibullMle, ExponentialSpecialCase) {
  Rng rng(43);
  const dist::Exponential truth(0.35);
  std::vector<double> xs;
  for (int i = 0; i < 3000; ++i) xs.push_back(truth.sample(rng));
  const auto r = fit_weibull_mle(SurvivalData::all_events(xs));
  EXPECT_NEAR(r.params[1], 1.0, 0.05);  // shape ≈ 1
  EXPECT_NEAR(r.params[0], 0.35, 0.02);
}

TEST(WeibullMle, AicPrefersTrueFamily) {
  // Data from an exponential: Weibull's extra parameter should not pay for
  // itself — AIC(exponential) <= AIC(weibull) + small slack.
  const auto data = exponential_censored_sample(0.3, 8.0, 1000, 47);
  const auto exp_fit = fit_exponential_mle(data);
  const auto wb_fit = fit_weibull_mle(data);
  EXPECT_LT(exp_fit.aic, wb_fit.aic + 2.5);
}

// ------------------------------------------------------------------ bathtub

TEST(BathtubMle, RecoversParametersFromSamples) {
  Rng rng(53);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> xs;
  for (int i = 0; i < 2500; ++i) xs.push_back(truth.sample(rng));
  const auto r = fit_bathtub_mle(SurvivalData::all_events(xs));
  EXPECT_NEAR(r.params[0], 0.45, 0.05);  // A
  EXPECT_NEAR(r.params[1], 1.0, 0.2);    // tau1
  EXPECT_NEAR(r.params[3], 24.0, 0.5);   // b
}

TEST(BathtubMle, HandlesJobCompletionCensoring) {
  // VMs whose job finished at ~10 h are censored, thinning the stable phase.
  Rng rng(59);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> xs, cutoffs;
  for (int i = 0; i < 3000; ++i) {
    xs.push_back(truth.sample(rng));
    cutoffs.push_back(i % 3 == 0 ? 10.0 : 30.0);  // a third of the fleet censored at 10 h
  }
  const auto data = SurvivalData::censor_at(xs, cutoffs);
  ASSERT_GT(data.censored_count(), 200u);
  const auto r = fit_bathtub_mle(data);
  EXPECT_NEAR(r.params[0], 0.45, 0.06);
  EXPECT_NEAR(r.params[3], 24.0, 0.6);
}

TEST(BathtubMle, DeadlineReclaimsEnterTheAtom) {
  // Samples at exactly the horizon are deadline reclaims; a model whose fit
  // ignored them would underestimate the atom. Use a high-atom truth.
  auto params = preempt::testing::reference_params();
  params.scale = 0.3;  // bigger atom: 1 - F(24) is larger
  const dist::BathtubDistribution truth(params);
  Rng rng(61);
  std::vector<double> xs;
  for (int i = 0; i < 2500; ++i) xs.push_back(truth.sample(rng));
  const std::size_t reclaims = static_cast<std::size_t>(
      std::count_if(xs.begin(), xs.end(), [](double t) { return t >= 24.0 - 1e-9; }));
  ASSERT_GT(reclaims, 100u);
  const auto r = fit_bathtub_mle(SurvivalData::all_events(xs));
  EXPECT_NEAR(r.params[0], 0.3, 0.05);
}

TEST(BathtubMle, AgreesWithLeastSquaresOnCleanData) {
  // Both estimators see the same uncensored sample; fitted CDFs should agree
  // pointwise to a few percent (they are different estimators, not clones).
  Rng rng(67);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(truth.sample(rng));
  const auto mle = fit_bathtub_mle(SurvivalData::all_events(xs));
  const auto ls = fit::fit_bathtub_to_samples(xs, 24.0);
  for (double t : {1.0, 6.0, 12.0, 20.0, 23.5}) {
    EXPECT_NEAR(mle.distribution->cdf(t), ls.distribution->cdf(t), 0.04) << t;
  }
}

TEST(BathtubMle, Preconditions) {
  EXPECT_THROW(fit_bathtub_mle(SurvivalData{}), InvalidArgument);
  BathtubMleOptions opts;
  opts.horizon = -1.0;
  EXPECT_THROW(
      fit_bathtub_mle(SurvivalData::all_events(std::vector<double>{1.0, 2.0}), opts),
      InvalidArgument);
}

TEST(CensoredLogLikelihood, MatchesHandComputation) {
  const dist::Exponential d(0.5);
  const SurvivalData data({{2.0, true}, {3.0, false}});
  // ln f(2) + ln S(3) = ln(0.5 e^{-1}) + (-1.5)
  const double expected = std::log(0.5) - 1.0 - 1.5;
  EXPECT_NEAR(censored_log_likelihood(d, data), expected, 1e-12);
}

}  // namespace
}  // namespace preempt::survival
