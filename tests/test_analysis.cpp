#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.hpp"
#include "test_util.hpp"

namespace preempt::core {
namespace {

using preempt::testing::reference_bathtub;

std::vector<double> sample_lifetimes(int n, std::uint64_t seed = 404) {
  const auto d = reference_bathtub();
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(d.sample(rng));
  return out;
}

TEST(CompareDistributions, FitsAllFourFamilies) {
  const auto cmp = compare_distributions(sample_lifetimes(400));
  ASSERT_EQ(cmp.fits.size(), 4u);
  EXPECT_EQ(cmp.fits[0].distribution->name(), "bathtub");
  EXPECT_EQ(cmp.fits[1].distribution->name(), "exponential");
  EXPECT_EQ(cmp.fits[2].distribution->name(), "weibull");
  EXPECT_EQ(cmp.fits[3].distribution->name(), "gompertz-makeham");
}

TEST(CompareDistributions, BathtubWinsOnConstrainedData) {
  const auto cmp = compare_distributions(sample_lifetimes(400));
  EXPECT_EQ(cmp.best().distribution->name(), "bathtub");
}

TEST(CompareDistributions, SummaryTableHasOneRowPerFamily) {
  const auto cmp = compare_distributions(sample_lifetimes(200));
  const Table t = cmp.summary_table();
  EXPECT_EQ(t.row_count(), 4u);
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("bathtub"), std::string::npos);
  EXPECT_NE(os.str().find("r2"), std::string::npos);
}

TEST(CompareDistributions, CdfTableCoversHorizon) {
  const auto cmp = compare_distributions(sample_lifetimes(200));
  const Table t = cmp.cdf_table(13);
  EXPECT_EQ(t.row_count(), 13u);
  EXPECT_EQ(t.header().size(), 2u + 4u);  // t, empirical + 4 fits
}

TEST(CompareDistributions, PdfTableMatchesHeaderWidth) {
  const auto cmp = compare_distributions(sample_lifetimes(200));
  const Table t = cmp.pdf_table(7);
  EXPECT_EQ(t.row_count(), 7u);
  for (const auto& row : t.rows()) EXPECT_EQ(row.size(), t.header().size());
}

TEST(PhaseReport, ReflectsBathtubAnatomy) {
  const auto d = reference_bathtub();
  const PhaseReport r = phase_report(d);
  EXPECT_NEAR(r.infant_end_hours, 3.0, 1e-9);
  EXPECT_GT(r.deadline_start_hours, 12.0);
  EXPECT_LT(r.deadline_start_hours, 24.0);
  // Infant hazard dominates stable hazard by orders of magnitude.
  EXPECT_GT(r.infant_hazard_per_hour, 100.0 * r.stable_hazard_per_hour);
}

}  // namespace
}  // namespace preempt::core
