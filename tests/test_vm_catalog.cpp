#include "trace/vm_catalog.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace preempt::trace {
namespace {

TEST(VmCatalog, HasAllFiveStudyTypes) {
  const auto specs = all_vm_specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].vcpus, 2);
  EXPECT_EQ(specs[4].vcpus, 32);
}

TEST(VmCatalog, PricesScaleLinearlyWithSize) {
  const auto& small = vm_spec(VmType::kN1Highcpu2);
  const auto& big = vm_spec(VmType::kN1Highcpu32);
  EXPECT_NEAR(big.on_demand_per_hour / small.on_demand_per_hour, 16.0, 0.01);
  EXPECT_NEAR(big.preemptible_per_hour / small.preemptible_per_hour, 16.0, 0.01);
}

TEST(VmCatalog, PreemptibleDiscountNearFiveX) {
  // The "7-10x lower cost" claim (Sec. 1) refers to list-price extremes; the
  // 2019 n1-highcpu book gives ~4.7x, which drives the paper's "5x" result.
  for (const VmSpec& s : all_vm_specs()) {
    const double factor = s.on_demand_per_hour / s.preemptible_per_hour;
    EXPECT_GT(factor, 4.0) << s.name;
    EXPECT_LT(factor, 5.5) << s.name;
  }
}

TEST(VmCatalog, NameRoundTrips) {
  for (const VmSpec& s : all_vm_specs()) {
    const auto parsed = vm_type_from_string(s.name);
    ASSERT_TRUE(parsed.has_value()) << s.name;
    EXPECT_EQ(*parsed, s.type);
    EXPECT_EQ(to_string(s.type), s.name);
  }
  EXPECT_FALSE(vm_type_from_string("n1-standard-1").has_value());
}

TEST(VmCatalog, ZoneRoundTrips) {
  for (Zone z : all_zones()) {
    const auto parsed = zone_from_string(to_string(z));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, z);
  }
  EXPECT_FALSE(zone_from_string("mars-north-1").has_value());
}

TEST(VmCatalog, PeriodAndWorkloadRoundTrips) {
  EXPECT_EQ(day_period_from_string("day"), DayPeriod::kDay);
  EXPECT_EQ(day_period_from_string("night"), DayPeriod::kNight);
  EXPECT_FALSE(day_period_from_string("dusk").has_value());
  EXPECT_EQ(workload_from_string("idle"), WorkloadKind::kIdle);
  EXPECT_EQ(workload_from_string("batch"), WorkloadKind::kBatch);
  EXPECT_FALSE(workload_from_string("gpu").has_value());
}

TEST(VmCatalog, DayPeriodOfHourMatchesPaperWindow) {
  // Night is 8 PM - 8 AM (Sec. 3.1, Observation 5).
  EXPECT_EQ(day_period_of_hour(12.0), DayPeriod::kDay);
  EXPECT_EQ(day_period_of_hour(8.0), DayPeriod::kDay);
  EXPECT_EQ(day_period_of_hour(19.99), DayPeriod::kDay);
  EXPECT_EQ(day_period_of_hour(20.0), DayPeriod::kNight);
  EXPECT_EQ(day_period_of_hour(3.0), DayPeriod::kNight);
  EXPECT_THROW(day_period_of_hour(24.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::trace
