#include "common/integrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt {
namespace {

TEST(AdaptiveSimpson, PolynomialExact) {
  const double v = integrate_adaptive([](double x) { return 3.0 * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(v, 8.0, 1e-10);
}

TEST(AdaptiveSimpson, ExponentialDecay) {
  const double v = integrate_adaptive([](double x) { return std::exp(-x); }, 0.0, 10.0);
  EXPECT_NEAR(v, 1.0 - std::exp(-10.0), 1e-9);
}

TEST(AdaptiveSimpson, ReversedLimitsFlipSign) {
  const double fwd = integrate_adaptive([](double x) { return x; }, 0.0, 1.0);
  const double bwd = integrate_adaptive([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(fwd, -bwd, 1e-12);
}

TEST(AdaptiveSimpson, ZeroWidthIsZero) {
  EXPECT_DOUBLE_EQ(integrate_adaptive([](double) { return 1e9; }, 2.0, 2.0), 0.0);
}

TEST(AdaptiveSimpson, OscillatoryIntegrand) {
  const double v = integrate_adaptive([](double x) { return std::sin(x); }, 0.0, kPi);
  EXPECT_NEAR(v, 2.0, 1e-8);
}

TEST(GaussLegendre, RuleIsSymmetricAndNormalised) {
  const auto& rule = gauss_legendre_rule(16);
  ASSERT_EQ(rule.nodes.size(), 16u);
  double wsum = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    wsum += rule.weights[i];
    EXPECT_NEAR(rule.nodes[i], -rule.nodes[15 - i], 1e-14);
    EXPECT_NEAR(rule.weights[i], rule.weights[15 - i], 1e-14);
  }
  EXPECT_NEAR(wsum, 2.0, 1e-12);
}

TEST(GaussLegendre, ExactForHighDegreePolynomials) {
  // n-point GL is exact up to degree 2n-1: try x^15 with n=8 on [0,1] = 1/16.
  const double v = integrate_gauss([](double x) { return std::pow(x, 15); }, 0.0, 1.0, 8);
  EXPECT_NEAR(v, 1.0 / 16.0, 1e-13);
}

TEST(GaussLegendre, MatchesAdaptiveOnSmoothFunction) {
  auto f = [](double x) { return std::exp(-x) * std::cos(3.0 * x); };
  const double a = integrate_adaptive(f, 0.0, 5.0, 1e-12);
  const double g = integrate_gauss(f, 0.0, 5.0, 32);
  EXPECT_NEAR(a, g, 1e-9);
}

TEST(GaussComposite, HandlesSharpWall) {
  // The bathtub deadline wall: e^{(x-24)/0.8} over [0, 24].
  auto wall = [](double x) { return std::exp((x - 24.0) / 0.8); };
  const double expected = 0.8 * (1.0 - std::exp(-30.0));
  const double v = integrate_gauss_composite(wall, 0.0, 24.0, 96, 16);
  EXPECT_NEAR(v, expected, 1e-10);
}

TEST(GaussLegendre, RejectsInvalidOrder) {
  EXPECT_THROW(gauss_legendre_rule(0), InvalidArgument);
  EXPECT_THROW(gauss_legendre_rule(1000), InvalidArgument);
}

TEST(Trapezoid, ExactForLinearData) {
  const std::vector<double> xs = {0.0, 1.0, 3.0};
  const std::vector<double> ys = {0.0, 2.0, 6.0};
  EXPECT_NEAR(trapezoid(xs, ys), 9.0, 1e-12);
}

TEST(Trapezoid, RejectsNonIncreasingAbscissae) {
  const std::vector<double> xs = {0.0, 1.0, 1.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  EXPECT_THROW(trapezoid(xs, ys), InvalidArgument);
}

TEST(AdaptiveSimpson, ThrowsOnNonFiniteIntegrand) {
  EXPECT_THROW(integrate_adaptive([](double x) { return 1.0 / x; }, -1.0, 1.0), Error);
}

}  // namespace
}  // namespace preempt
