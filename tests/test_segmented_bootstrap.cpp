#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/piecewise.hpp"
#include "fit/bootstrap.hpp"
#include "fit/model_fitters.hpp"
#include "fit/segmented.hpp"
#include "test_util.hpp"

namespace preempt::fit {
namespace {

TEST(Segmented, RecoversThreePhaseCdf) {
  // Truth: piecewise linear with breaks at 3 h and 20 h.
  const std::vector<double> knot_t = {0.0, 3.0, 20.0, 24.0};
  const std::vector<double> knot_f = {0.0, 0.3, 0.45, 1.0};
  const dist::PiecewiseLinearCdf truth(knot_t, knot_f);
  std::vector<double> ts, fs;
  for (int i = 0; i < 97; ++i) {
    const double t = 24.0 * i / 96.0;
    ts.push_back(t);
    fs.push_back(truth.cdf(t));
  }
  const SegmentedFit fit = fit_segmented_cdf(ts, fs, 24.0, 32);
  EXPECT_NEAR(fit.break1, 3.0, 1.0);
  EXPECT_NEAR(fit.break2, 20.0, 1.5);
  EXPECT_LT(fit.gof.rmse, 0.02);
}

TEST(Segmented, ApproximatesBathtubReasonably) {
  // Sec. 8 "phase-wise model": a 3-segment CDF should track the smooth
  // bathtub well in the stable region.
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> ts, fs;
  for (int i = 1; i < 96; ++i) {
    const double t = 24.0 * i / 96.0;
    ts.push_back(t);
    fs.push_back(truth.raw_cdf(t));
  }
  const SegmentedFit fit = fit_segmented_cdf(ts, fs, 24.0, 24);
  EXPECT_LT(fit.gof.rmse, 0.05);
  EXPECT_GT(fit.gof.r2, 0.95);
  // The fitted model is itself a usable distribution.
  EXPECT_GE(fit.model->cdf(12.0), 0.3);
  EXPECT_LE(fit.model->cdf(12.0), 0.6);
}

TEST(Segmented, RejectsTinyInput) {
  const std::vector<double> ts = {0.0, 1.0, 2.0};
  const std::vector<double> fs = {0.0, 0.5, 1.0};
  EXPECT_THROW(fit_segmented_cdf(ts, fs, 24.0), InvalidArgument);
}

TEST(Bootstrap, QuantifiesFitUncertainty) {
  const auto truth = preempt::testing::reference_bathtub();
  Rng rng(8);
  std::vector<double> lifetimes;
  for (int i = 0; i < 300; ++i) lifetimes.push_back(truth.sample(rng));

  SampleFitter fitter = [](std::span<const double> xs) {
    return fit_bathtub_to_samples(xs, 24.0).params;
  };
  const BootstrapResult res = bootstrap_parameters(lifetimes, fitter, 60, 0.9, 77);
  ASSERT_EQ(res.params.size(), 4u);
  EXPECT_GE(res.replicates, 30u);
  // A (scale): CI must bracket the truth and be reasonably tight.
  EXPECT_LE(res.params[0].ci_lo, 0.45);
  EXPECT_GE(res.params[0].ci_hi, 0.45);
  EXPECT_GT(res.params[0].stddev, 0.0);
  EXPECT_LT(res.params[0].ci_hi - res.params[0].ci_lo, 0.2);
}

TEST(Bootstrap, ValidatesArguments) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  SampleFitter fitter = [](std::span<const double>) { return std::vector<double>{1.0}; };
  std::vector<double> empty;
  EXPECT_THROW(bootstrap_parameters(empty, fitter), InvalidArgument);
  EXPECT_THROW(bootstrap_parameters(xs, fitter, 5), InvalidArgument);       // too few reps
  EXPECT_THROW(bootstrap_parameters(xs, fitter, 50, 1.5), InvalidArgument);  // bad confidence
}

TEST(Bootstrap, SkipsFailingReplicates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  int calls = 0;
  SampleFitter flaky = [&calls](std::span<const double>) -> std::vector<double> {
    // Full-sample call (first) succeeds; 30% of replicates throw.
    ++calls;
    if (calls % 10 == 3) throw NumericError("synthetic failure");
    return {1.0};
  };
  const BootstrapResult res = bootstrap_parameters(xs, flaky, 50, 0.9, 5);
  EXPECT_LT(res.replicates, 50u);
  EXPECT_GE(res.replicates, 25u);
}

}  // namespace
}  // namespace preempt::fit
