// Full-pipeline integration tests: synthetic measurement campaign -> dataset
// -> model fitting -> policies -> service, mirroring how the paper's system
// is assembled end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/model.hpp"
#include "core/registry.hpp"
#include "policy/checkpoint.hpp"
#include "policy/running_time.hpp"
#include "dist/uniform.hpp"
#include "policy/scheduling.hpp"
#include "sim/service.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"

namespace preempt {
namespace {

trace::RegimeKey base_key() {
  return trace::RegimeKey{trace::VmType::kN1Highcpu16, trace::Zone::kUsEast1B,
                          trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};
}

TEST(Pipeline, TraceToModelReproducesGroundTruthBehaviour) {
  const trace::Dataset ds = trace::generate_campaign({base_key(), 600, 2020});
  const core::PreemptionModel fitted = core::PreemptionModel::fit(ds.lifetimes());
  const auto truth = trace::ground_truth_distribution(base_key());

  // The fitted model must reproduce operational quantities of the truth.
  for (double t : {2.0, 6.0, 12.0, 20.0, 23.0}) {
    EXPECT_NEAR(fitted.distribution().raw_cdf(t), truth.raw_cdf(t), 0.05) << "t=" << t;
  }
  EXPECT_NEAR(fitted.expected_lifetime(), truth.expected_lifetime_eq3(), 0.6);
}

TEST(Pipeline, FittedPolicyDecisionsMatchTruthPolicyDecisions) {
  const trace::Dataset ds = trace::generate_campaign({base_key(), 600, 99});
  const core::PreemptionModel fitted = core::PreemptionModel::fit(ds.lifetimes());
  const auto truth = trace::ground_truth_distribution(base_key());
  const policy::ModelDrivenScheduler truth_policy(truth.clone());

  int agreements = 0, total = 0;
  for (double age = 0.5; age < 24.0; age += 0.5) {
    for (double job : {2.0, 6.0, 10.0}) {
      const bool a = fitted.reuse_decision(age, job).reuse;
      const bool b = truth_policy.decide(age, job).reuse;
      agreements += (a == b) ? 1 : 0;
      ++total;
    }
  }
  // Decisions agree almost everywhere (Fig. 7's robustness result).
  EXPECT_GT(static_cast<double>(agreements) / total, 0.95);
}

TEST(Pipeline, CsvRoundTripThenRegistryLookup) {
  trace::StudyConfig cfg;
  cfg.vms_per_cell = 24;
  const trace::Dataset ds = trace::generate_study(cfg);
  const trace::Dataset back = trace::Dataset::from_csv(ds.to_csv());
  const core::ModelRegistry reg = core::ModelRegistry::fit_from_dataset(back);
  const core::PreemptionModel& m = reg.lookup(base_key());
  EXPECT_GT(m.expected_lifetime(), 5.0);
  EXPECT_LT(m.expected_lifetime(), 20.0);
}

TEST(Pipeline, FittedModelDrivesCheckpointingEndToEnd) {
  const trace::Dataset ds = trace::generate_campaign({base_key(), 500, 314});
  const core::PreemptionModel fitted = core::PreemptionModel::fit(ds.lifetimes());
  const policy::CheckpointDp dp = fitted.make_checkpoint_dp(4.0);
  const auto schedule = dp.schedule(0.0);
  EXPECT_GE(schedule.size(), 2u);
  // The schedule generated from the *fitted* model must also perform well
  // under the *true* distribution (evaluate cross-model).
  const auto truth = trace::ground_truth_distribution(base_key());
  policy::CheckpointPlan plan;
  plan.checkpoint_cost_hours = 1.0 / 60.0;
  plan.work_segments_hours = schedule;
  const double ours = policy::evaluate_plan(truth, plan, 0.0, {});
  const double yd = policy::evaluate_plan(
      truth, policy::young_daly_plan(4.0, 1.0, 1.0 / 60.0), 0.0, {});
  EXPECT_LT(ours, yd);
}

TEST(Pipeline, ServiceRunWithFittedModelsCompletes) {
  // The paper's bootstrapped loop: fit from a small campaign, run the
  // service with the fitted model while the provider follows ground truth.
  const trace::Dataset ds = trace::generate_campaign({base_key(), 200, 555});
  const core::PreemptionModel fitted = core::PreemptionModel::fit(ds.lifetimes());
  const auto truth = trace::ground_truth_distribution(base_key());

  sim::ServiceConfig cfg;
  cfg.cluster_size = 8;
  cfg.seed = 99;
  sim::BatchService svc(cfg, truth.clone(), fitted.distribution().clone());
  sim::BagOfJobs bag;
  bag.spec.work_hours = 14.0 / 60.0;
  bag.spec.gang_vms = 2;
  bag.count = 50;
  svc.submit_bag(bag);
  const sim::ServiceReport report = svc.run();
  EXPECT_EQ(report.jobs_completed, 50u);
  EXPECT_GT(report.cost_reduction_factor, 2.0);
}

TEST(Pipeline, Fig4StoryHoldsOnFittedModels) {
  // The full Fig. 4 narrative computed on a *fitted* model rather than the
  // ground truth: crossover near 5 h, 10 h job increase ≈ 30 min.
  const trace::Dataset ds = trace::generate_campaign({base_key(), 800, 11});
  const core::PreemptionModel fitted = core::PreemptionModel::fit(ds.lifetimes());
  const dist::UniformLifetime uniform(24.0);
  const double crossover =
      policy::crossover_job_length(fitted.distribution(), uniform);
  EXPECT_GT(crossover, 3.0);
  EXPECT_LT(crossover, 6.5);
  const double increase_10h = policy::expected_increase(fitted.distribution(), 10.0);
  EXPECT_GT(increase_10h, 0.3);
  EXPECT_LT(increase_10h, 0.8);
}

}  // namespace
}  // namespace preempt
