#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace preempt {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, ComputesDisjointChunks) {
  ThreadPool pool(3);
  std::vector<int> data(1000, 0);
  parallel_for(pool, 0, data.size(), [&data](std::size_t i) { data[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], static_cast<int>(i));
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("bad index");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, GrainIsRespectedFunctionally) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, 100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 25);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelFor, EveryIndexRunsExactlyOnceAcrossPoolSizesAndGrains) {
  // The work-stealing cursor must hand out each chunk exactly once no
  // matter how many executors race on it or how the range divides.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    ThreadPool pool(threads);
    for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{10000}}) {
      const std::size_t begin = 3, end = 420;  // deliberately not round
      std::vector<std::atomic<int>> hits(end);
      for (auto& h : hits) h.store(0);
      parallel_for(
          pool, begin, end, [&hits](std::size_t i) { hits[i].fetch_add(1); }, grain);
      for (std::size_t i = 0; i < end; ++i) {
        ASSERT_EQ(hits[i].load(), i >= begin ? 1 : 0)
            << "threads=" << threads << " grain=" << grain << " i=" << i;
      }
    }
  }
}

TEST(ParallelFor, DrivesWholeRangeEvenWhenABodyThrows) {
  // Bodies reference caller-owned state, so an exception must not abandon
  // the remaining chunks — it is recorded and rethrown after the range.
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(parallel_for(
                   pool, 0, 200,
                   [&ran](std::size_t i) {
                     ran.fetch_add(1);
                     if (i % 50 == 7) throw std::runtime_error("bad index");
                   },
                   /*grain=*/8),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 200);
}

TEST(ParallelFor, ReductionIsThreadCountIndependent) {
  // A deterministic per-index reduction into per-index slots merged in
  // index order must give the same answer for any pool size — the property
  // the Monte-Carlo engine's chunked shards rely on.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> slot(257, 0.0);
    parallel_for(pool, 0, slot.size(),
                 [&slot](std::size_t i) { slot[i] = std::sin(static_cast<double>(i)); });
    double sum = 0.0;
    for (double x : slot) sum += x;  // fixed merge order
    return sum;
  };
  const double reference = run(1);
  EXPECT_EQ(run(2), reference);
  EXPECT_EQ(run(4), reference);
  EXPECT_EQ(run(9), reference);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace preempt
