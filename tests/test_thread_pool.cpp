#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace preempt {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ParallelFor, ComputesDisjointChunks) {
  ThreadPool pool(3);
  std::vector<int> data(1000, 0);
  parallel_for(pool, 0, data.size(), [&data](std::size_t i) { data[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], static_cast<int>(i));
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("bad index");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, GrainIsRespectedFunctionally) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallel_for(pool, 0, 100, [&sum](std::size_t i) { sum.fetch_add(static_cast<long>(i)); }, 25);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelFor, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace preempt
