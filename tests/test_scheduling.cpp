// Tests of the Sec. 4.2 job-scheduling / VM-reuse policy and the Fig. 5-7
// experiments' underlying quantities.
#include "policy/scheduling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "test_util.hpp"

namespace preempt::policy {
namespace {

using preempt::testing::reference_bathtub;
using preempt::testing::reference_params;

dist::DistributionPtr ref_ptr() { return reference_bathtub().clone(); }

TEST(FailureProbability, FreshVmMatchesCdf) {
  const auto d = reference_bathtub();
  EXPECT_NEAR(job_failure_probability(d, 0.0, 6.0), d.cdf(6.0), 1e-12);
  // The Fig. 5 plateau: ≈ 0.45 for the reference regime.
  EXPECT_NEAR(job_failure_probability(d, 0.0, 6.0), 0.4489, 1e-3);
}

TEST(FailureProbability, CertainFailurePastDeadline) {
  const auto d = reference_bathtub();
  // A 6 h job started after hour 18 cannot finish before the 24 h deadline.
  EXPECT_DOUBLE_EQ(job_failure_probability(d, 18.0, 6.0), 1.0);
  EXPECT_DOUBLE_EQ(job_failure_probability(d, 23.0, 6.0), 1.0);
}

TEST(FailureProbability, StablePhaseIsNearlySafe) {
  const auto d = reference_bathtub();
  EXPECT_LT(job_failure_probability(d, 9.0, 6.0), 0.001);
}

TEST(FailureProbability, MemorylessIsAgeIndependent) {
  const dist::Exponential e(0.3);
  EXPECT_NEAR(job_failure_probability(e, 0.0, 2.0), job_failure_probability(e, 7.0, 2.0), 1e-12);
}

TEST(FailureProbability, ZeroLengthJobNeverFails) {
  const auto d = reference_bathtub();
  EXPECT_DOUBLE_EQ(job_failure_probability(d, 5.0, 0.0), 0.0);
}

TEST(GangFailure, SingleVmReducesToJobFailure) {
  const auto d = reference_bathtub();
  const std::vector<double> one = {0.0};
  EXPECT_NEAR(gang_failure_probability(d, one, 6.0), job_failure_probability(d, 0.0, 6.0),
              1e-12);
}

TEST(GangFailure, IndependenceProductForm) {
  const auto d = reference_bathtub();
  const std::vector<double> ages = {0.0, 8.0, 12.0};
  double expected = 1.0;
  for (double age : ages) expected *= 1.0 - job_failure_probability(d, age, 4.0);
  EXPECT_NEAR(gang_failure_probability(d, ages, 4.0), 1.0 - expected, 1e-12);
}

TEST(GangFailure, GrowsWithGangSizeAndDominatesWorstMember) {
  const auto d = reference_bathtub();
  const std::vector<double> small = {8.0, 9.0};
  const std::vector<double> large = {8.0, 9.0, 0.5, 19.5};
  const double p_small = gang_failure_probability(d, small, 4.0);
  const double p_large = gang_failure_probability(d, large, 4.0);
  EXPECT_GT(p_large, p_small);
  double worst = 0.0;
  for (double age : large) worst = std::max(worst, job_failure_probability(d, age, 4.0));
  EXPECT_GE(p_large, worst - 1e-12);
}

TEST(GangFailure, CertainWhenAnyMemberCannotFinish) {
  const auto d = reference_bathtub();
  const std::vector<double> ages = {8.0, 21.0};  // second VM dies before +4 h
  EXPECT_DOUBLE_EQ(gang_failure_probability(d, ages, 4.0), 1.0);
}

TEST(GangFailure, RejectsEmptyGang) {
  const auto d = reference_bathtub();
  const std::vector<double> none;
  EXPECT_THROW(gang_failure_probability(d, none, 4.0), InvalidArgument);
}

TEST(GangFailure, ZeroLengthJobNeverFails) {
  const auto d = reference_bathtub();
  const std::vector<double> ages = {0.0, 8.0, 23.9};
  EXPECT_DOUBLE_EQ(gang_failure_probability(d, ages, 0.0), 0.0);
}

TEST(GangFailure, CertainWhenJobOutlivesSupportForEveryMember) {
  const auto d = reference_bathtub();
  // A 25 h job cannot fit inside the 24 h deadline from any start age.
  const std::vector<double> fresh = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(gang_failure_probability(d, fresh, 25.0), 1.0);
}

TEST(GangFailure, MemberPastSupportEndFailsImmediately) {
  const auto d = reference_bathtub();
  // One member is already at the deadline: survival there is zero, so any
  // positive-length job fails with certainty no matter how young the rest are.
  const std::vector<double> ages = {0.5, 24.0};
  EXPECT_DOUBLE_EQ(gang_failure_probability(d, ages, 0.25), 1.0);
}

TEST(GangFailure, UnboundedSupportNeverHitsTheDeadlineWall) {
  const dist::Exponential e(0.1);
  // No deadline: even a 100 h job has failure probability < 1...
  const std::vector<double> ages = {0.0, 50.0};
  const double p = gang_failure_probability(e, ages, 100.0);
  EXPECT_LT(p, 1.0);
  // ... and the memoryless product form holds at any ages.
  const double single = job_failure_probability(e, 0.0, 100.0);
  EXPECT_NEAR(p, 1.0 - (1.0 - single) * (1.0 - single), 1e-12);
}

TEST(ModelDriven, ReusesStableVms) {
  const ModelDrivenScheduler policy(ref_ptr());
  for (double age : {4.0, 8.0, 12.0, 15.0}) {
    const ReuseDecision d = policy.decide(age, 6.0);
    EXPECT_TRUE(d.reuse) << "age=" << age;
  }
}

TEST(ModelDriven, RelinquishesNearDeadline) {
  // Fig. 5: "after 18 hours, we will be better off running the job on a
  // newer VM" (our rule switches somewhat earlier; the decision boundary
  // must lie in the late afternoon of VM life).
  const ModelDrivenScheduler policy(ref_ptr());
  for (double age : {18.0, 20.0, 23.0}) {
    EXPECT_FALSE(policy.decide(age, 6.0).reuse) << "age=" << age;
  }
}

TEST(ModelDriven, FailureProbabilityIsCappedAtFreshVmLevel) {
  // Once the policy switches to fresh VMs the failure probability is constant
  // at F(T) (the flat right side of Fig. 5).
  const ModelDrivenScheduler policy(ref_ptr());
  const auto d = reference_bathtub();
  const double fresh = d.cdf(6.0);
  for (double age : {0.0, 5.0, 10.0, 17.0, 19.0, 22.0, 23.5}) {
    EXPECT_LE(policy.policy_failure_probability(age, 6.0), fresh + 1e-9) << "age=" << age;
  }
}

TEST(Memoryless, AlwaysReusesAndFailsLate) {
  const MemorylessScheduler policy(ref_ptr());
  EXPECT_TRUE(policy.decide(23.0, 6.0).reuse);
  // Certain failure when reusing past the 18 h boundary (Fig. 5).
  EXPECT_DOUBLE_EQ(policy.policy_failure_probability(19.0, 6.0), 1.0);
}

TEST(AlwaysFresh, NeverReuses) {
  const AlwaysFreshScheduler policy(ref_ptr());
  const ReuseDecision d = policy.decide(10.0, 6.0);
  EXPECT_FALSE(d.reuse);
  EXPECT_NEAR(d.failure_probability, reference_bathtub().cdf(6.0), 1e-12);
}

TEST(Fig6, ModelDrivenHalvesAverageFailureProbability) {
  // Fig. 6: "for all but the shortest and longest jobs, the failure
  // probability with our policy is half of that of existing memoryless
  // policies".
  const ModelDrivenScheduler ours(ref_ptr());
  const MemorylessScheduler baseline(ref_ptr());
  for (double job : {6.0, 8.0, 12.0}) {
    const double a = ours.average_failure_probability(job);
    const double b = baseline.average_failure_probability(job);
    EXPECT_LT(a, 0.62 * b) << "job=" << job;
  }
  // The paper carves out "the shortest and longest jobs"; still, ours must
  // never be worse.
  for (double job : {1.0, 4.0, 20.0}) {
    EXPECT_LE(ours.average_failure_probability(job),
              baseline.average_failure_probability(job) + 1e-9)
        << "job=" << job;
  }
}

TEST(Fig6, FailureProbabilityGrowsWithJobLength) {
  const ModelDrivenScheduler ours(ref_ptr());
  double prev = -1.0;
  for (double job : {2.0, 6.0, 12.0, 18.0, 23.0}) {
    const double p = ours.average_failure_probability(job);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Fig7, SuboptimalModelBarelyHurts) {
  // Fig. 7: using n1-highcpu-16 parameters to schedule n1-highcpu-32 VMs
  // (a deliberately bad fit) increases job failure probability by < 2%.
  auto p32 = reference_params();
  p32.scale = 0.50;
  p32.tau1 = 0.7;
  const dist::BathtubDistribution truth32(p32);

  const ModelDrivenScheduler best_fit(truth32.clone(), truth32.clone());
  const ModelDrivenScheduler suboptimal(ref_ptr() /* 16-core model */, truth32.clone());
  const MemorylessScheduler memoryless(truth32.clone());

  for (double job : {4.0, 6.0, 10.0}) {
    const double best = best_fit.average_failure_probability(job);
    const double sub = suboptimal.average_failure_probability(job);
    const double memless = memoryless.average_failure_probability(job);
    EXPECT_LT(std::abs(sub - best), 0.02) << "job=" << job;
    // And even the wrong bathtub beats memoryless clearly (>= 15%).
    EXPECT_LT(sub, 0.85 * memless) << "job=" << job;
  }
}

TEST(ConditionalRule, ReusesYoungVmsForShortJobs) {
  // The literal Eq. 8 rejects a 30-minute-old VM for a 12-minute job (t f(t)
  // peaks at t = tau1); the conditional-waste rule does not.
  const ModelDrivenScheduler paper(ref_ptr(), ref_ptr(), ReuseRule::kPaperEq8);
  const ModelDrivenScheduler corrected(ref_ptr(), ref_ptr(), ReuseRule::kConditionalWaste);
  const double age = 0.5, job = 0.2;
  EXPECT_FALSE(paper.decide(age, job).reuse);     // the artifact
  EXPECT_TRUE(corrected.decide(age, job).reuse);  // the fix
}

TEST(ConditionalRule, AgreesWithPaperRuleOnFig5Regime) {
  // For the 6 h jobs of Fig. 5 both rules reuse mid-life and reject late.
  const ModelDrivenScheduler paper(ref_ptr(), ref_ptr(), ReuseRule::kPaperEq8);
  const ModelDrivenScheduler corrected(ref_ptr(), ref_ptr(), ReuseRule::kConditionalWaste);
  for (double age : {6.0, 10.0, 14.0}) {
    EXPECT_TRUE(paper.decide(age, 6.0).reuse) << age;
    EXPECT_TRUE(corrected.decide(age, 6.0).reuse) << age;
  }
  for (double age : {19.0, 22.0}) {
    EXPECT_FALSE(paper.decide(age, 6.0).reuse) << age;
    EXPECT_FALSE(corrected.decide(age, 6.0).reuse) << age;
  }
}

TEST(ConditionalRule, NeverReusesWhenCompletionIsImpossible) {
  const ModelDrivenScheduler corrected(ref_ptr(), ref_ptr(), ReuseRule::kConditionalWaste);
  EXPECT_FALSE(corrected.decide(23.0, 2.0).reuse);
  EXPECT_FALSE(corrected.decide(23.95, 0.2).reuse);
}

TEST(TransitionLength, ExistsForLateStarts) {
  // T* (Sec. 4.2): at age 19 the switch point is small; long jobs go fresh.
  const ModelDrivenScheduler policy(ref_ptr());
  const double t_star = policy.transition_job_length(19.0);
  ASSERT_FALSE(std::isnan(t_star));
  EXPECT_GT(t_star, 0.0);
  EXPECT_LT(t_star, 6.0);
  // Consistency: shorter than T* reuses, longer relinquishes.
  EXPECT_TRUE(policy.decide(19.0, std::max(0.05, t_star - 0.2)).reuse);
  EXPECT_FALSE(policy.decide(19.0, t_star + 0.2).reuse);
}

TEST(TransitionLength, EarlyAgesReuseEverything) {
  const ModelDrivenScheduler policy(ref_ptr());
  const double t_star = policy.transition_job_length(6.0);
  // At age 6 h every job up to the horizon is better on the warm VM or the
  // transition sits far to the right.
  EXPECT_TRUE(std::isnan(t_star) || t_star > 10.0);
}

TEST(Preconditions, RejectBadArguments) {
  const ModelDrivenScheduler policy(ref_ptr());
  EXPECT_THROW(policy.decide(-1.0, 6.0), InvalidArgument);
  EXPECT_THROW(policy.decide(5.0, 0.0), InvalidArgument);
  const auto d = reference_bathtub();
  EXPECT_THROW(job_failure_probability(d, -1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::policy
