// Property-based invariants every lifetime distribution must satisfy,
// parameterised over all families in the library (TEST_P sweep).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/random.hpp"
#include "dist/bathtub.hpp"
#include "dist/exponential.hpp"
#include "dist/exponentiated_weibull.hpp"
#include "dist/gamma.hpp"
#include "dist/gompertz_makeham.hpp"
#include "dist/lognormal.hpp"
#include "dist/piecewise.hpp"
#include "dist/truncated.hpp"
#include "dist/uniform.hpp"
#include "dist/weibull.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

struct Case {
  std::string label;
  std::shared_ptr<const Distribution> dist;
  double probe_end;  ///< upper probe time (finite even for unbounded laws)
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  cases.push_back({"exponential", std::make_shared<Exponential>(0.25), 40.0});
  cases.push_back({"weibull_wearout", std::make_shared<Weibull>(0.1, 2.5), 40.0});
  cases.push_back({"weibull_infant", std::make_shared<Weibull>(0.2, 0.7), 40.0});
  cases.push_back({"gompertz_makeham", std::make_shared<GompertzMakeham>(0.05, 0.01, 0.25), 40.0});
  cases.push_back({"uniform", std::make_shared<UniformLifetime>(24.0), 24.0});
  cases.push_back(
      {"bathtub_ref", std::make_shared<BathtubDistribution>(preempt::testing::reference_params()),
       24.0});
  {
    auto p = preempt::testing::reference_params();
    p.scale = 0.32;
    p.tau1 = 2.4;
    cases.push_back({"bathtub_small_vm", std::make_shared<BathtubDistribution>(p), 24.0});
  }
  cases.push_back({"truncated_exponential",
                   std::make_shared<TruncatedDistribution>(std::make_unique<Exponential>(0.08), 24.0),
                   24.0});
  cases.push_back({"lognormal", std::make_shared<LogNormal>(1.8, 0.9), 60.0});
  cases.push_back({"gamma_infant", std::make_shared<Gamma>(0.6, 0.1), 60.0});
  cases.push_back({"gamma_wearout", std::make_shared<Gamma>(3.0, 0.25), 60.0});
  cases.push_back(
      {"exp_weibull_bathtub", std::make_shared<ExponentiatedWeibull>(0.08, 3.0, 0.2), 60.0});
  cases.push_back(
      {"exp_weibull_plain", std::make_shared<ExponentiatedWeibull>(0.15, 1.4, 1.0), 60.0});
  {
    const std::vector<double> ts = {0.0, 3.0, 20.0, 24.0};
    const std::vector<double> fs = {0.0, 0.3, 0.45, 1.0};
    cases.push_back({"piecewise", std::make_shared<PiecewiseLinearCdf>(ts, fs), 24.0});
  }
  return cases;
}

class DistributionProps : public ::testing::TestWithParam<Case> {};

TEST_P(DistributionProps, CdfIsMonotoneWithinBounds) {
  const auto& d = *GetParam().dist;
  double prev = 0.0;
  for (int i = 0; i <= 200; ++i) {
    const double t = GetParam().probe_end * i / 200.0;
    const double f = d.cdf(t);
    EXPECT_GE(f, prev - 1e-12) << "at t=" << t;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(DistributionProps, SurvivalComplementsCdf) {
  const auto& d = *GetParam().dist;
  for (int i = 0; i <= 40; ++i) {
    const double t = GetParam().probe_end * i / 40.0;
    EXPECT_NEAR(d.cdf(t) + d.survival(t), 1.0, 1e-12);
  }
}

TEST_P(DistributionProps, PdfIsNonNegative) {
  const auto& d = *GetParam().dist;
  for (int i = 0; i <= 200; ++i) {
    const double t = GetParam().probe_end * i / 200.0;
    EXPECT_GE(d.pdf(t), 0.0) << "at t=" << t;
  }
}

TEST_P(DistributionProps, PdfMatchesCdfSlopeAtSmoothPoints) {
  const auto& d = *GetParam().dist;
  if (GetParam().label == "piecewise") return;  // slope jumps at knots
  const double h = 1e-5;
  for (double frac : {0.11, 0.37, 0.53, 0.79}) {
    const double t = GetParam().probe_end * frac;
    const double numeric = (d.cdf(t + h) - d.cdf(t - h)) / (2.0 * h);
    // Skip deadline-atom neighbourhoods where cdf jumps.
    if (numeric > 1e3) continue;
    EXPECT_NEAR(d.pdf(t), numeric, 5e-4 + 1e-3 * std::abs(numeric)) << "at t=" << t;
  }
}

TEST_P(DistributionProps, QuantileIsRightInverseOfCdf) {
  const auto& d = *GetParam().dist;
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.9}) {
    const double t = d.quantile(p);
    EXPECT_GE(d.cdf(t), p - 1e-6) << "p=" << p;
    if (t > 1e-9) {
      EXPECT_LE(d.cdf(t * (1.0 - 1e-9)) - 1e-6, p) << "p=" << p;
    }
  }
}

TEST_P(DistributionProps, SampleMeanApproximatesMean) {
  const auto& d = *GetParam().dist;
  Rng rng(2024);
  constexpr int kN = 20000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  const double expected = d.mean();
  EXPECT_NEAR(sum / kN, expected, std::max(0.05, 0.03 * expected)) << GetParam().label;
}

TEST_P(DistributionProps, SamplesStayInSupport) {
  const auto& d = *GetParam().dist;
  Rng rng(11);
  const double end = d.support_end();
  for (int i = 0; i < 2000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.0);
    if (std::isfinite(end)) {
      EXPECT_LE(x, end + 1e-9);
    }
  }
}

TEST_P(DistributionProps, PartialExpectationIsAdditiveAndBounded) {
  const auto& d = *GetParam().dist;
  const double end = GetParam().probe_end;
  const double whole = d.partial_expectation(0.0, end);
  const double split =
      d.partial_expectation(0.0, end / 3.0) + d.partial_expectation(end / 3.0, end);
  EXPECT_NEAR(whole, split, 1e-6 * std::max(1.0, whole));
  // ∫ t f dt over [a,b] is at most b * P(a < T <= b).
  const double bound = end * (d.cdf(end) - d.cdf(0.0));
  EXPECT_LE(whole, bound + 1e-9);
  EXPECT_GE(whole, 0.0);
}

TEST_P(DistributionProps, CloneBehavesIdentically) {
  const auto& d = *GetParam().dist;
  const auto c = d.clone();
  for (double frac : {0.1, 0.5, 0.9}) {
    const double t = GetParam().probe_end * frac;
    EXPECT_DOUBLE_EQ(c->cdf(t), d.cdf(t));
    EXPECT_DOUBLE_EQ(c->pdf(t), d.pdf(t));
  }
  EXPECT_EQ(c->name(), d.name());
  EXPECT_EQ(c->parameters(), d.parameters());
}

TEST_P(DistributionProps, HazardIsNonNegative) {
  const auto& d = *GetParam().dist;
  for (double frac : {0.05, 0.3, 0.6, 0.9}) {
    const double t = GetParam().probe_end * frac;
    EXPECT_GE(d.hazard(t), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionProps, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           return param_info.param.label;
                         });

}  // namespace
}  // namespace preempt::dist
