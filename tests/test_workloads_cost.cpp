#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cost.hpp"
#include "sim/planner.hpp"
#include "sim/workloads.hpp"
#include "test_util.hpp"

namespace preempt::sim {
namespace {

TEST(Workloads, PaperDefinitions) {
  const Workload nano = nanoconfinement();
  EXPECT_NEAR(nano.job.work_hours, 14.0 / 60.0, 1e-12);
  EXPECT_EQ(nano.job.gang_vms, 4);
  EXPECT_EQ(nano.vm_type, trace::VmType::kN1Highcpu16);

  const Workload sh = shapes();
  EXPECT_NEAR(sh.job.work_hours, 9.0 / 60.0, 1e-12);
  EXPECT_EQ(sh.job.gang_vms, 4);

  const Workload lu = lulesh();
  EXPECT_NEAR(lu.job.work_hours, 12.5 / 60.0, 1e-12);
  EXPECT_EQ(lu.job.gang_vms, 8);
  EXPECT_EQ(lu.vm_type, trace::VmType::kN1Highcpu8);

  EXPECT_EQ(all_workloads().size(), 3u);
}

TEST(Workloads, RepackPreservesTotalCores) {
  // Fig. 9 runs everything on n1-highcpu-32 clusters: 64 cores = 2 VMs.
  const Workload nano32 = repack_for_vm_type(nanoconfinement(), trace::VmType::kN1Highcpu32);
  EXPECT_EQ(nano32.job.gang_vms, 2);
  EXPECT_EQ(nano32.vm_type, trace::VmType::kN1Highcpu32);
  const Workload lu32 = repack_for_vm_type(lulesh(), trace::VmType::kN1Highcpu32);
  EXPECT_EQ(lu32.job.gang_vms, 2);  // 8 x 8 = 64 cores
}

TEST(Workloads, RepackRejectsUnevenPacking) {
  Workload odd = nanoconfinement();
  odd.job.gang_vms = 3;  // 48 cores do not fill n1-highcpu-32 VMs evenly
  EXPECT_THROW(repack_for_vm_type(odd, trace::VmType::kN1Highcpu32), InvalidArgument);
}

TEST(Workloads, RepackRejectionIsClientReadable) {
  // The scenario layer forwards user-chosen targets straight through, so the
  // rejection must name the workload and core counts without a file:line
  // prefix — and a target larger than the whole gang must reject too, never
  // silently round the gang down to zero VMs.
  Workload odd = nanoconfinement();
  odd.job.gang_vms = 3;  // 48 cores
  try {
    repack_for_vm_type(odd, trace::VmType::kN1Highcpu32);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nanoconfinement"), std::string::npos) << what;
    EXPECT_NE(what.find("48"), std::string::npos) << what;
    EXPECT_NE(what.find("n1-highcpu-32"), std::string::npos) << what;
    EXPECT_EQ(what.find(".cpp:"), std::string::npos) << what;  // no file:line prefix
  }
  Workload tiny = nanoconfinement();
  tiny.vm_type = trace::VmType::kN1Highcpu2;
  tiny.job.gang_vms = 1;  // 2 cores cannot fill a 16-core VM
  EXPECT_THROW(repack_for_vm_type(tiny, trace::VmType::kN1Highcpu16), InvalidArgument);
}

TEST(CostModel, ChargesByHourAndKind) {
  const CostModel cm;
  const auto& spec = trace::vm_spec(trace::VmType::kN1Highcpu16);
  EXPECT_NEAR(cm.vm_cost(trace::VmType::kN1Highcpu16, 10.0, false),
              10.0 * spec.on_demand_per_hour, 1e-12);
  EXPECT_NEAR(cm.vm_cost(trace::VmType::kN1Highcpu16, 10.0, true),
              10.0 * spec.preemptible_per_hour, 1e-12);
  EXPECT_THROW(cm.vm_cost(trace::VmType::kN1Highcpu16, -1.0, true), InvalidArgument);
}

TEST(CostModel, DiscountFactorNearFive) {
  const CostModel cm;
  EXPECT_NEAR(cm.discount_factor(trace::VmType::kN1Highcpu32), 4.73, 0.05);
}

TEST(Planners, NoCheckpointPlanner) {
  const NoCheckpointPlanner p;
  const auto plan = p.plan(2.5, 0.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_DOUBLE_EQ(plan[0], 2.5);
  EXPECT_EQ(p.name(), "none");
}

TEST(Planners, YoungDalyPlanner) {
  const YoungDalyPlanner p(1.0, 1.0 / 60.0);
  const auto plan = p.plan(1.0, 5.0);  // age is ignored
  double total = 0.0;
  for (double w : plan) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(plan.size(), 3u);  // ~11 min cadence over 1 h
}

TEST(Planners, DpPlannerUsesValueTable) {
  const auto d = preempt::testing::reference_bathtub();
  auto dp = std::make_shared<const policy::CheckpointDp>(d, 2.0, policy::CheckpointConfig{});
  const DpCheckpointPlanner p(dp);
  const auto plan = p.plan(2.0, 0.0);
  double total = 0.0;
  for (double w : plan) total += w;
  EXPECT_NEAR(total, 2.0, 1e-9);
  // Remaining-work replanning stays inside the table.
  const auto partial = p.plan(1.0, 6.0);
  total = 0.0;
  for (double w : partial) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Beyond the table throws.
  EXPECT_THROW(p.plan(3.0, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::sim
