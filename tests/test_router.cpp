// The /v1 REST router: pattern matching, path-parameter extraction, method
// dispatch, the middleware chain, the JSON error envelope, and per-route
// metrics.
#include "api/router.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"

namespace preempt::api {
namespace {

HttpRequest make_request(const std::string& method, const std::string& target) {
  HttpRequest r;
  r.method = method;
  r.target = target;
  r.version = "HTTP/1.1";
  return r;
}

TEST(Router, DispatchesByMethodAndPattern) {
  Router router;
  router.add("GET", "/v1/things", [](RouteContext&) { return HttpResponse::text(200, "list"); });
  router.add("POST", "/v1/things",
             [](RouteContext&) { return HttpResponse::text(201, "create"); });
  router.add("GET", "/healthz", [](RouteContext&) { return HttpResponse::text(200, "ok"); });

  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/things")).body, "list");
  EXPECT_EQ(router.dispatch(make_request("POST", "/v1/things")).body, "create");
  EXPECT_EQ(router.dispatch(make_request("GET", "/healthz")).body, "ok");
  // The query string is not part of the route.
  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/things?limit=5")).body, "list");
}

TEST(Router, ExtractsPathParameters) {
  Router router;
  router.add("GET", "/v1/bags/{id}", [](RouteContext& ctx) {
    return HttpResponse::text(200, "bag:" + ctx.param("id"));
  });
  router.add("GET", "/v1/markets/{zone}/{type}", [](RouteContext& ctx) {
    return HttpResponse::text(200, ctx.param("zone") + "|" + ctx.param("type"));
  });

  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/bags/42")).body, "bag:42");
  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/markets/us-east1-b/n1-highcpu-16")).body,
            "us-east1-b|n1-highcpu-16");
  // Captures are URL-decoded.
  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/bags/a%2Fb")).body, "bag:a/b");
  // A capture never spans segments.
  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/bags/1/extra")).status, 404);
  EXPECT_EQ(router.dispatch(make_request("GET", "/v1/bags")).status, 404);
}

TEST(Router, ParamIdParsesStrictly) {
  Router router;
  std::uint64_t seen = 0;
  bool ok = false;
  router.add("GET", "/v1/bags/{id}", [&](RouteContext& ctx) {
    ok = ctx.param_id("id", seen);
    return HttpResponse::text(200, "x");
  });
  router.dispatch(make_request("GET", "/v1/bags/17"));
  EXPECT_TRUE(ok);
  EXPECT_EQ(seen, 17u);
  router.dispatch(make_request("GET", "/v1/bags/17abc"));
  EXPECT_FALSE(ok);
  router.dispatch(make_request("GET", "/v1/bags/-3"));
  EXPECT_FALSE(ok);
}

TEST(Router, NotFoundAndMethodNotAllowedEnvelopes) {
  Router router;
  router.add("GET", "/v1/things", [](RouteContext&) { return HttpResponse::text(200, "x"); });
  router.add("POST", "/v1/things", [](RouteContext&) { return HttpResponse::text(201, "y"); });

  const HttpResponse missing = router.dispatch(make_request("GET", "/nope"));
  EXPECT_EQ(missing.status, 404);
  const JsonValue missing_body = parse_json(missing.body);
  ASSERT_NE(missing_body.find("error"), nullptr);
  EXPECT_EQ(missing_body.find("error")->string_or("code", ""), "not_found");
  EXPECT_FALSE(missing_body.find("error")->string_or("message", "").empty());

  const HttpResponse wrong = router.dispatch(make_request("DELETE", "/v1/things"));
  EXPECT_EQ(wrong.status, 405);
  EXPECT_EQ(parse_json(wrong.body).find("error")->string_or("code", ""), "method_not_allowed");
  // The Allow header lists every method registered on the path.
  ASSERT_TRUE(wrong.headers.count("allow"));
  EXPECT_EQ(wrong.headers.at("allow"), "GET, POST");
}

TEST(Router, HandlerExceptionsBecomeEnvelopes) {
  Router router;
  router.add("GET", "/bad-arg",
             [](RouteContext&) -> HttpResponse { throw InvalidArgument("no such regime"); });
  router.add("GET", "/boom",
             [](RouteContext&) -> HttpResponse { throw std::runtime_error("kaboom"); });

  const HttpResponse bad = router.dispatch(make_request("GET", "/bad-arg"));
  EXPECT_EQ(bad.status, 400);
  const JsonValue bad_body = parse_json(bad.body);
  EXPECT_EQ(bad_body.find("error")->string_or("code", ""), "invalid_argument");
  EXPECT_NE(bad_body.find("error")->string_or("message", "").find("no such regime"),
            std::string::npos);

  const HttpResponse boom = router.dispatch(make_request("GET", "/boom"));
  EXPECT_EQ(boom.status, 500);
  EXPECT_EQ(parse_json(boom.body).find("error")->string_or("code", ""), "internal");

  // Exception text with JSON-hostile characters survives the envelope.
  router.add("GET", "/quote", [](RouteContext&) -> HttpResponse {
    throw InvalidArgument("bad \"name\"\nwith newline");
  });
  const HttpResponse quoted = router.dispatch(make_request("GET", "/quote"));
  EXPECT_EQ(parse_json(quoted.body).find("error")->string_or("message", ""),
            "bad \"name\"\nwith newline");
}

TEST(Router, ThrownErrorsStillPassThroughMiddleware) {
  // Handler exceptions are translated inside the chain, so middleware
  // decorates errored responses exactly like returned ones.
  Router router;
  router.use([](RouteContext&, const NextHandler& next) {
    HttpResponse r = next();
    r.headers["x-decorated"] = "1";
    return r;
  });
  router.add("GET", "/throws",
             [](RouteContext&) -> HttpResponse { throw InvalidArgument("nope"); });
  const HttpResponse r = router.dispatch(make_request("GET", "/throws"));
  EXPECT_EQ(r.status, 400);
  EXPECT_TRUE(r.headers.count("x-decorated"));
}

TEST(Router, MiddlewareRunsOutermostFirstAndCanDecorate) {
  Router router;
  std::string trail;
  router.use([&trail](RouteContext&, const NextHandler& next) {
    trail += "a(";
    HttpResponse r = next();
    trail += ")a";
    r.headers["x-outer"] = "1";
    return r;
  });
  router.use([&trail](RouteContext&, const NextHandler& next) {
    trail += "b(";
    HttpResponse r = next();
    trail += ")b";
    return r;
  });
  router.add("GET", "/x", [&trail](RouteContext&) {
    trail += "h";
    return HttpResponse::text(200, "x");
  });

  const HttpResponse r = router.dispatch(make_request("GET", "/x"));
  EXPECT_EQ(trail, "a(b(h)b)a");
  EXPECT_EQ(r.headers.at("x-outer"), "1");
  // Middleware also wraps unmatched dispatches.
  router.dispatch(make_request("GET", "/nope"));
  EXPECT_EQ(trail, "a(b(h)b)aa(b()b)a");
}

TEST(Router, RequestIdMiddlewareStampsResponses) {
  Router router;
  router.use(request_id_middleware());
  router.add("GET", "/x", [](RouteContext& ctx) {
    EXPECT_FALSE(ctx.request_id.empty());
    return HttpResponse::text(200, "x");
  });

  const HttpResponse fresh = router.dispatch(make_request("GET", "/x"));
  ASSERT_TRUE(fresh.headers.count("x-request-id"));
  EXPECT_EQ(fresh.headers.at("x-request-id").rfind("req-", 0), 0u);

  HttpRequest tagged = make_request("GET", "/x");
  tagged.headers["x-request-id"] = "caller-7";
  EXPECT_EQ(router.dispatch(tagged).headers.at("x-request-id"), "caller-7");
}

TEST(Router, MetricsCountPerRoute) {
  Router router;
  router.add("GET", "/a", [](RouteContext&) { return HttpResponse::text(200, "a"); });
  router.add("GET", "/b",
             [](RouteContext&) -> HttpResponse { throw InvalidArgument("nope"); });

  router.dispatch(make_request("GET", "/a"));
  router.dispatch(make_request("GET", "/a"));
  router.dispatch(make_request("GET", "/b"));
  router.dispatch(make_request("GET", "/missing"));

  const auto metrics = router.metrics();
  ASSERT_EQ(metrics.size(), 3u);  // two routes + the unmatched aggregate
  EXPECT_EQ(metrics[0].pattern, "/a");
  EXPECT_EQ(metrics[0].requests, 2u);
  EXPECT_EQ(metrics[0].errors, 0u);
  EXPECT_GE(metrics[0].total_ms, 0.0);
  EXPECT_GE(metrics[0].max_ms, 0.0);
  EXPECT_EQ(metrics[1].pattern, "/b");
  EXPECT_EQ(metrics[1].requests, 1u);
  EXPECT_EQ(metrics[1].errors, 1u);
  EXPECT_EQ(metrics[2].pattern, "(unmatched)");
  EXPECT_EQ(metrics[2].requests, 1u);
  EXPECT_EQ(metrics[2].errors, 1u);

  const JsonValue doc = router.metrics_json();
  EXPECT_EQ(doc.number_or("requests_total", 0), 4);
  ASSERT_NE(doc.find("routes"), nullptr);
  EXPECT_EQ(doc.find("routes")->as_array().size(), 3u);
}

TEST(Router, RegistrationValidation) {
  Router router;
  EXPECT_THROW(router.add("GET", "no-slash", [](RouteContext&) { return HttpResponse(); }),
               InvalidArgument);
  EXPECT_THROW(router.add("GET", "/x", nullptr), InvalidArgument);
  EXPECT_THROW(router.add("GET", "/x/{}", [](RouteContext&) { return HttpResponse(); }),
               InvalidArgument);
  EXPECT_THROW(router.use(nullptr), InvalidArgument);
}

}  // namespace
}  // namespace preempt::api
