// QuantileTable: monotone inverse-CDF grid with deadline-atom handling.
#include "dist/quantile_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "dist/gamma.hpp"
#include "dist/gompertz_makeham.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

using preempt::testing::reference_bathtub;

// Exponential CDF with rate 1 over [0, 20]: closed-form inverse available.
double exp_cdf(double t) { return -std::expm1(-t); }
double exp_quantile(double p) { return -std::log1p(-p); }

TEST(QuantileTable, LookupErrorBoundedByOneCell) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 512);
  const double cell = 20.0 / 512.0;
  for (int i = 1; i < 100; ++i) {
    const double p = exp_cdf(20.0) * i / 100.0;
    EXPECT_NEAR(table.lookup(p), exp_quantile(p), cell) << "p=" << p;
  }
}

TEST(QuantileTable, LookupIsMonotone) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 256);
  double prev = -1.0;
  for (int i = 0; i <= 1000; ++i) {
    const double t = table.lookup(static_cast<double>(i) / 1000.0);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(QuantileTable, InvertRefinesToTolerance) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 128);  // coarse on purpose
  const auto eval = [](double t) { return std::pair{exp_cdf(t), std::exp(-t)}; };
  for (int i = 1; i < 200; ++i) {
    const double p = exp_cdf(20.0) * i / 200.0;
    EXPECT_NEAR(table.invert(p, eval, 1e-10), exp_quantile(p), 1e-8) << "p=" << p;
  }
}

TEST(QuantileTable, AtomMapsToAtomLocation) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 64, /*p_atom=*/0.9, /*t_atom=*/24.0);
  const auto eval = [](double t) { return std::pair{exp_cdf(t), std::exp(-t)}; };
  EXPECT_DOUBLE_EQ(table.lookup(0.9), 24.0);
  EXPECT_DOUBLE_EQ(table.lookup(0.95), 24.0);
  EXPECT_DOUBLE_EQ(table.invert(0.99, eval, 1e-10), 24.0);
  EXPECT_LT(table.lookup(0.89), 20.0);
}

TEST(QuantileTable, ClampsOutsideTabulatedRange) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 64);
  EXPECT_DOUBLE_EQ(table.lookup(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(table.lookup(0.0), 0.0);
  // Beyond the tabulated CDF mass but below the atom: clamps to the grid end.
  EXPECT_DOUBLE_EQ(table.lookup(1.0), 20.0);
}

TEST(QuantileTable, RejectsDegenerateGrids) {
  EXPECT_THROW(QuantileTable(exp_cdf, 0.0, 20.0, 0), Error);
  EXPECT_THROW(QuantileTable(exp_cdf, 5.0, 5.0, 16), InvalidArgument);
}

// --- batched inversion ≡ scalar inversion, bit for bit -----------------------

// Lane-style evaluator matching the scalar eval() above operation for
// operation: the batched refinements are only allowed to regroup work, not
// change per-lane arithmetic.
void exp_eval_lanes(const double* t, double* cdf_out, double* pdf_out,
                    std::size_t lanes) {
  for (std::size_t j = 0; j < lanes; ++j) {
    cdf_out[j] = -std::expm1(-t[j]);
    pdf_out[j] = std::exp(-t[j]);
  }
}

// Probe set spanning the interesting regimes: clamps below p_lo and above
// p_hi, the atom, cell boundaries, and a pseudo-random interior spread.
std::vector<double> probe_ps(double p_atom) {
  std::vector<double> ps = {-0.5, 0.0, 1e-300, 0.999999, 1.0, 1.5};
  if (p_atom <= 1.0) {
    ps.push_back(p_atom);
    ps.push_back(std::nextafter(p_atom, 0.0));
    ps.push_back(0.5 * (p_atom + 1.0));
  }
  // Low-discrepancy interior fill (deterministic, hits many grid cells).
  double x = 0.0;
  for (int i = 0; i < 400; ++i) {
    x += 0.6180339887498949;
    x -= std::floor(x);
    ps.push_back(x);
  }
  return ps;
}

TEST(QuantileTable, InvertFastManyMatchesInvertFastBitForBit) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 128);
  const auto ps = probe_ps(/*p_atom=*/2.0);
  std::vector<double> batched(ps.size());
  table.invert_fast_many<16>(ps.data(), batched.data(), ps.size(), exp_eval_lanes);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double scalar = table.invert_fast(ps[i], exp_eval_lanes);
    ASSERT_EQ(scalar, batched[i]) << "p=" << ps[i];
  }
  // Odd n exercises the padding lanes; they must not perturb real lanes.
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{17}}) {
    std::vector<double> part(n);
    table.invert_fast_many<16>(ps.data(), part.data(), n, exp_eval_lanes);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], part[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(QuantileTable, InvertFastManyHandlesAtomAndClamps) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 64, /*p_atom=*/0.9, /*t_atom=*/24.0);
  const auto ps = probe_ps(0.9);
  std::vector<double> batched(ps.size());
  table.invert_fast_many<8>(ps.data(), batched.data(), ps.size(), exp_eval_lanes);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double scalar = table.invert_fast(ps[i], exp_eval_lanes);
    ASSERT_EQ(scalar, batched[i]) << "p=" << ps[i];
    if (ps[i] >= 0.9) ASSERT_EQ(batched[i], 24.0) << "p=" << ps[i];
  }
}

TEST(QuantileTable, InvertManyMatchesInvertBitForBit) {
  const QuantileTable table(exp_cdf, 0.0, 20.0, 128);
  const auto eval = [](double t) { return std::pair{exp_cdf(t), std::exp(-t)}; };
  const double tol = 1e-12;
  const auto ps = probe_ps(/*p_atom=*/2.0);
  std::vector<double> batched(ps.size());
  table.invert_many<8>(ps.data(), batched.data(), ps.size(), exp_eval_lanes, tol);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const double scalar = table.invert(ps[i], eval, tol);
    ASSERT_EQ(scalar, batched[i]) << "p=" << ps[i];
  }
}

TEST(QuantileTable, InvertFastStaysWithinOneCellOfInvert) {
  // The single-sweep inverse trades the convergence loop for a one-eval
  // polish; its error must stay below one grid cell even where the density
  // is small, and be far tighter in the bulk.
  const QuantileTable table(exp_cdf, 0.0, 20.0, 512);
  const auto eval = [](double t) { return std::pair{exp_cdf(t), std::exp(-t)}; };
  const double cell = 20.0 / 512.0;
  for (int i = 1; i < 500; ++i) {
    const double p = exp_cdf(20.0) * i / 500.0;
    const double exact = table.invert(p, eval, 1e-12);
    EXPECT_NEAR(table.invert_fast(p, exp_eval_lanes), exact, cell) << "p=" << p;
  }
}

// --- the bathtub law's cached table, including the deadline atom -------------

TEST(QuantileTable, BathtubQuantileMatchesBisectionReference) {
  // The stated accuracy contract of the table-backed bathtub quantile: within
  // 1e-8 hours of the exact (bisection) inverse across the whole continuous
  // range, right up to the edge of the deadline atom.
  const auto d = reference_bathtub();
  const double p_atom = d.raw_cdf(24.0);
  for (int i = 1; i <= 400; ++i) {
    const double p = p_atom * i / 401.0;
    // Reference inverse by bisection on the raw CDF.
    double lo = 0.0, hi = 24.0;
    for (int it = 0; it < 100; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (d.raw_cdf(mid) < p) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    EXPECT_NEAR(d.quantile(p), 0.5 * (lo + hi), 1e-8) << "p=" << p;
  }
}

TEST(QuantileTable, BathtubDeadlineAtomEdge) {
  const auto d = reference_bathtub();
  const double p_atom = d.raw_cdf(24.0);
  // Just below the atom the quantile approaches the horizon continuously...
  EXPECT_LT(d.quantile(p_atom - 1e-9), 24.0);
  EXPECT_GT(d.quantile(p_atom - 1e-9), 23.9);
  // ...at and above it the draw is the deadline reclaim itself.
  EXPECT_DOUBLE_EQ(d.quantile(p_atom), 24.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.99), 24.0);
}

TEST(QuantileTable, GammaAndGompertzRoundTrip) {
  // The lazily cached tables behind Gamma/Gompertz-Makeham quantiles must
  // keep the CDF round-trip tight (these used to be pure bisection).
  const Gamma gamma(0.6, 0.1);
  const GompertzMakeham gm(0.05, 0.01, 0.25);
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(gamma.cdf(gamma.quantile(p)), p, 1e-8) << "gamma p=" << p;
    EXPECT_NEAR(gm.cdf(gm.quantile(p)), p, 1e-8) << "gm p=" << p;
  }
}

}  // namespace
}  // namespace preempt::dist
