// Cross-module integration of the extension stack: native CSV -> public
// importer -> survival estimators -> fits -> drift feed through the HTTP
// daemon. Each test crosses at least two modules on purpose.
#include <gtest/gtest.h>

#include <cmath>

#include "api/service_daemon.hpp"
#include "common/json.hpp"
#include "common/random.hpp"
#include "dist/empirical.hpp"
#include "fit/model_fitters.hpp"
#include "survival/kaplan_meier.hpp"
#include "survival/mle.hpp"
#include "trace/generator.hpp"
#include "trace/public_dataset.hpp"
#include "test_util.hpp"

namespace preempt {
namespace {

TEST(IntegrationExtended, NativeCsvRoundTripsThroughPublicImporter) {
  // The dataset our generator writes must be ingestible by the tolerant
  // public-schema importer (vm_type / zone / lifetime_hours are aliases).
  const trace::Dataset native = trace::generate_campaign({trace::RegimeKey{}, 80, 3});
  const auto report = trace::import_public_csv(native.to_csv());
  EXPECT_EQ(report.skipped, 0u);
  ASSERT_EQ(report.imported, native.size());
  for (std::size_t i = 0; i < native.size(); ++i) {
    // to_csv prints 6 decimals, so equality holds to that precision only.
    EXPECT_NEAR(report.dataset.records()[i].lifetime_hours,
                native.records()[i].lifetime_hours, 1e-5);
    EXPECT_EQ(report.dataset.records()[i].type, native.records()[i].type);
    EXPECT_EQ(report.dataset.records()[i].zone, native.records()[i].zone);
  }
}

TEST(IntegrationExtended, KaplanMeierMatchesEmpiricalDistributionUncensored) {
  // Two independent implementations of the same estimand: the KM curve on
  // uncensored data must equal the step ECDF everywhere.
  Rng rng(17);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(truth.sample(rng));
  const auto km = survival::kaplan_meier(survival::SurvivalData::all_events(xs));
  const dist::EmpiricalDistribution ecdf(xs);
  for (double t = 0.0; t <= 24.0; t += 0.4) {
    EXPECT_NEAR(km.cdf_at(t), ecdf.cdf(t), 1e-12) << t;
  }
}

TEST(IntegrationExtended, ImportedSampleDataFitsBathtubBest) {
  // Full pipeline on the bundled public-schema file: import, fit all paper
  // families, and the bathtub must win (the data came from bathtub truth).
  const auto report = trace::load_public_csv(std::string(PREEMPT_SOURCE_DIR) +
                                             "/data/sample_lifetimes_hours.csv");
  const auto lifetimes = report.dataset.by_type(trace::VmType::kN1Highcpu16).lifetimes();
  ASSERT_GE(lifetimes.size(), 100u);
  const dist::EmpiricalDistribution ecdf(lifetimes);
  const auto pts = ecdf.ecdf_points(dist::EcdfConvention::kHazen);
  const auto fits = fit::fit_all_families(pts.t, pts.f, 24.0);
  for (std::size_t i = 1; i < fits.size(); ++i) {
    EXPECT_LT(fits[0].gof.sse, fits[i].gof.sse) << fits[i].distribution->name();
  }
}

TEST(IntegrationExtended, DaemonDriftFeedAlarmsOnRegimeChange) {
  // Stream shifted lifetimes through the HTTP-layer drift endpoint until the
  // monitors notice; exercises JSON encode/decode + daemon routing + both
  // change-point detectors against a fitted (not exact) baseline.
  api::ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 30;
  api::ServiceDaemon daemon(options);

  auto shifted_params = preempt::testing::reference_params();
  shifted_params.tau1 = 0.4;
  shifted_params.scale = 0.65;
  const dist::BathtubDistribution shifted(shifted_params);
  Rng rng(23);

  bool drift_detected = false;
  for (int batch = 0; batch < 40 && !drift_detected; ++batch) {
    JsonArray lifetimes;
    for (int i = 0; i < 25; ++i) lifetimes.emplace_back(shifted.sample(rng));
    JsonObject body;
    body.emplace_back("lifetimes", std::move(lifetimes));
    api::HttpRequest request;
    request.method = "POST";
    request.target = "/api/lifetimes";
    request.version = "HTTP/1.1";
    request.body = JsonValue(std::move(body)).dump();
    const auto response = daemon.handle(request);
    ASSERT_EQ(response.status, 200);
    drift_detected = parse_json(response.body).bool_or("drift_detected", false);
  }
  EXPECT_TRUE(drift_detected) << "1000 shifted lifetimes did not trip the monitors";
}

TEST(IntegrationExtended, CensoredMleSurvivesExtremeCensoring) {
  // Failure injection: 90% of the fleet censored at 1 h. The MLE must still
  // return finite parameters without throwing (quality degrades, validity
  // must not).
  Rng rng(29);
  const auto truth = preempt::testing::reference_bathtub();
  std::vector<double> lifetimes, cutoffs;
  for (int i = 0; i < 500; ++i) {
    lifetimes.push_back(truth.sample(rng));
    cutoffs.push_back(i % 10 == 0 ? 30.0 : 1.0);
  }
  const auto data = survival::SurvivalData::censor_at(lifetimes, cutoffs);
  const auto r = survival::fit_bathtub_mle(data);
  for (double param : r.params) EXPECT_TRUE(std::isfinite(param));
  EXPECT_TRUE(std::isfinite(r.log_likelihood));
}

}  // namespace
}  // namespace preempt
