#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/random.hpp"
#include "dist/exponential.hpp"
#include "dist/weibull.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

TEST(Exponential, CdfPdfClosedForms) {
  const Exponential d(0.5);
  EXPECT_DOUBLE_EQ(d.cdf(0.0), 0.0);
  EXPECT_NEAR(d.cdf(2.0), 1.0 - std::exp(-1.0), 1e-15);
  EXPECT_NEAR(d.pdf(2.0), 0.5 * std::exp(-1.0), 1e-15);
  EXPECT_DOUBLE_EQ(d.cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(-1.0), 0.0);
}

TEST(Exponential, MeanAndMttf) {
  const Exponential d = Exponential::from_mttf(4.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.mttf(), 4.0);
  EXPECT_DOUBLE_EQ(d.rate(), 0.25);
}

TEST(Exponential, QuantileInvertsCdf) {
  const Exponential d(1.3);
  for (double p : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(d.cdf(d.quantile(p)), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_TRUE(std::isinf(d.quantile(1.0)));
}

TEST(Exponential, HazardIsConstant) {
  const Exponential d(0.7);
  EXPECT_NEAR(d.hazard(0.1), 0.7, 1e-12);
  EXPECT_NEAR(d.hazard(5.0), 0.7, 1e-9);
  EXPECT_NEAR(d.hazard(20.0), 0.7, 1e-6);
}

TEST(Exponential, MemorylessProperty) {
  const Exponential d(0.4);
  // P(T > s + t | T > s) == P(T > t).
  const double s = 2.0, t = 3.0;
  EXPECT_NEAR(d.survival(s + t) / d.survival(s), d.survival(t), 1e-12);
}

TEST(Exponential, PartialExpectationClosedFormMatchesNumeric) {
  const Exponential d(0.9);
  const double closed = d.partial_expectation(0.5, 4.0);
  // Fall back to the base-class numeric integration for comparison.
  const Weibull as_weibull(0.9, 1.0);  // Weibull k=1 has no closed-form override
  const double numeric = as_weibull.partial_expectation(0.5, 4.0);
  EXPECT_NEAR(closed, numeric, 1e-9);
}

TEST(Exponential, SampleMeanMatches) {
  const Exponential d(2.0);
  Rng rng(99);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Exponential, RejectsBadRate) {
  EXPECT_THROW(Exponential(0.0), InvalidArgument);
  EXPECT_THROW(Exponential(-1.0), InvalidArgument);
}

TEST(Weibull, ReducesToExponentialAtShapeOne) {
  const Weibull w(0.5, 1.0);
  const Exponential e(0.5);
  for (double t : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(w.cdf(t), e.cdf(t), 1e-12);
    EXPECT_NEAR(w.pdf(t), e.pdf(t), 1e-12);
  }
}

TEST(Weibull, CdfClosedForm) {
  const Weibull w(0.2, 2.0);
  EXPECT_NEAR(w.cdf(5.0), 1.0 - std::exp(-1.0), 1e-15);
}

TEST(Weibull, MeanUsesGamma) {
  const Weibull w(1.0, 2.0);
  EXPECT_NEAR(w.mean(), std::tgamma(1.5), 1e-12);
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(0.3, 1.7);
  for (double p : {0.05, 0.25, 0.5, 0.95}) {
    EXPECT_NEAR(w.cdf(w.quantile(p)), p, 1e-12);
  }
}

TEST(Weibull, HazardShapeByK) {
  const Weibull infant(1.0, 0.5);   // decreasing hazard
  const Weibull wearout(1.0, 3.0);  // increasing hazard
  EXPECT_GT(infant.hazard(0.1), infant.hazard(2.0));
  EXPECT_LT(wearout.hazard(0.1), wearout.hazard(2.0));
}

TEST(Weibull, CannotProduceSharpDeadlineWall) {
  // The paper's core observation: even a steep Weibull rises smoothly, so the
  // ratio cdf(23.9)/cdf(20) stays modest, unlike the empirical wall at 24 h.
  const auto bathtub = preempt::testing::reference_bathtub();
  const Weibull steep(1.0 / 20.0, 8.0);
  const double bathtub_jump = (bathtub.cdf(23.9) - bathtub.cdf(20.0));
  const double weibull_jump = (steep.cdf(23.9) - steep.cdf(20.0));
  // The bathtub packs most of its late mass into the last 4 hours.
  EXPECT_GT(bathtub_jump, 0.35);
  EXPECT_LT(weibull_jump, bathtub_jump);
}

TEST(Weibull, RejectsBadParameters) {
  EXPECT_THROW(Weibull(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(Weibull(1.0, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace preempt::dist
