// Public-dataset CSV importer: schema tolerance, unit inference, failure
// injection, and the bundled data/ sample files.
#include "trace/public_dataset.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace preempt::trace {
namespace {

TEST(PublicDataset, ImportsCanonicalSchema) {
  const std::string csv =
      "machine_type,zone,launch_hour,day_of_week,lifetime_hours\n"
      "n1-highcpu-16,us-east1-b,10.5,2,7.25\n"
      "n1-highcpu-2,us-west1-a,22.0,6,23.9\n";
  const auto report = import_public_csv(csv);
  EXPECT_EQ(report.imported, 2u);
  EXPECT_EQ(report.skipped, 0u);
  ASSERT_EQ(report.dataset.size(), 2u);
  const auto& r0 = report.dataset.records()[0];
  EXPECT_EQ(r0.type, VmType::kN1Highcpu16);
  EXPECT_EQ(r0.zone, Zone::kUsEast1B);
  EXPECT_DOUBLE_EQ(r0.lifetime_hours, 7.25);
  EXPECT_EQ(r0.period, DayPeriod::kDay);
  EXPECT_EQ(r0.day_of_week, 2);
  const auto& r1 = report.dataset.records()[1];
  EXPECT_EQ(r1.period, DayPeriod::kNight);
}

TEST(PublicDataset, InfersSecondsFromColumnName) {
  const std::string csv =
      "instance_type,duration_seconds\n"
      "n1-highcpu-8,7200\n";
  ImportOptions opts;
  opts.default_zone = Zone::kUsCentral1C;
  const auto report = import_public_csv(csv, opts);
  ASSERT_EQ(report.imported, 1u);
  EXPECT_DOUBLE_EQ(report.dataset.records()[0].lifetime_hours, 2.0);
  EXPECT_EQ(report.dataset.records()[0].zone, Zone::kUsCentral1C);
}

TEST(PublicDataset, InfersMinutesFromColumnName) {
  const std::string csv =
      "type,zone,lifetime_minutes\n"
      "n1-highcpu-4,us-west1-a,90\n";
  const auto report = import_public_csv(csv);
  ASSERT_EQ(report.imported, 1u);
  EXPECT_DOUBLE_EQ(report.dataset.records()[0].lifetime_hours, 1.5);
}

TEST(PublicDataset, HeaderMatchingIsCaseInsensitive) {
  const std::string csv =
      "Machine_Type,ZONE,Lifetime\n"
      "n1-highcpu-16,us-east1-b,3.5\n";
  const auto report = import_public_csv(csv);
  EXPECT_EQ(report.imported, 1u);
}

TEST(PublicDataset, SkipsUnknownTypesAndZones) {
  const std::string csv =
      "machine_type,zone,lifetime_hours\n"
      "n1-highcpu-16,us-east1-b,5.0\n"
      "e2-standard-4,us-east1-b,5.0\n"
      "n1-highcpu-16,europe-west4-a,5.0\n";
  const auto report = import_public_csv(csv);
  EXPECT_EQ(report.imported, 1u);
  EXPECT_EQ(report.skipped, 2u);
  EXPECT_EQ(report.warnings.size(), 2u);
}

TEST(PublicDataset, SkipsJunkLifetimes) {
  const std::string csv =
      "machine_type,zone,lifetime_hours\n"
      "n1-highcpu-16,us-east1-b,not-a-number\n"
      "n1-highcpu-16,us-east1-b,-2\n"
      "n1-highcpu-16,us-east1-b,0\n"
      "n1-highcpu-16,us-east1-b,500\n"
      "n1-highcpu-16,us-east1-b,12.5\n";
  const auto report = import_public_csv(csv);
  EXPECT_EQ(report.imported, 1u);
  EXPECT_EQ(report.skipped, 4u);
}

TEST(PublicDataset, StrictModeThrowsOnFirstBadRow) {
  const std::string csv =
      "machine_type,zone,lifetime_hours\n"
      "mystery-vm,us-east1-b,5.0\n";
  ImportOptions opts;
  opts.strict = true;
  EXPECT_THROW(import_public_csv(csv, opts), IoError);
}

TEST(PublicDataset, DuplicateSkipReasonsAreDeduplicated) {
  const std::string csv =
      "machine_type,zone,lifetime_hours\n"
      "bad-vm,us-east1-b,5.0\n"
      "bad-vm,us-east1-b,6.0\n"
      "bad-vm,us-east1-b,7.0\n";
  const auto report = import_public_csv(csv);
  EXPECT_EQ(report.skipped, 3u);
  EXPECT_EQ(report.warnings.size(), 1u);
}

TEST(PublicDataset, RequiresLifetimeColumn) {
  EXPECT_THROW(import_public_csv("machine_type,zone\nn1-highcpu-16,us-east1-b\n"), IoError);
}

TEST(PublicDataset, RequiresTypeOrDefault) {
  const std::string csv = "zone,lifetime_hours\nus-east1-b,5.0\n";
  EXPECT_THROW(import_public_csv(csv), IoError);
  ImportOptions opts;
  opts.default_type = VmType::kN1Highcpu16;
  const auto report = import_public_csv(csv, opts);
  EXPECT_EQ(report.imported, 1u);
  EXPECT_EQ(report.dataset.records()[0].type, VmType::kN1Highcpu16);
}

TEST(PublicDataset, RequiresZoneOrDefault) {
  const std::string csv = "machine_type,lifetime_hours\nn1-highcpu-16,5.0\n";
  EXPECT_THROW(import_public_csv(csv), IoError);
}

TEST(PublicDataset, NormalisesLaunchHour) {
  const std::string csv =
      "machine_type,zone,launch_hour,lifetime_hours\n"
      "n1-highcpu-16,us-east1-b,25.5,5.0\n"   // wraps to 1.5
      "n1-highcpu-16,us-east1-b,-3.0,5.0\n";  // wraps to 21.0
  const auto report = import_public_csv(csv);
  ASSERT_EQ(report.imported, 2u);
  EXPECT_DOUBLE_EQ(report.dataset.records()[0].launch_hour, 1.5);
  EXPECT_DOUBLE_EQ(report.dataset.records()[1].launch_hour, 21.0);
}

TEST(PublicDataset, RejectsMalformedCsv) {
  EXPECT_THROW(import_public_csv("machine_type,zone,lifetime_hours\na,b\n"), IoError);
}

TEST(PublicDataset, LoadsBundledHoursSample) {
  const auto report = load_public_csv(std::string(PREEMPT_SOURCE_DIR) + "/data/sample_lifetimes_hours.csv");
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.imported, 240u);
  // Both types and both zones present.
  EXPECT_EQ(report.dataset.group_by_type().size(), 2u);
  EXPECT_EQ(report.dataset.group_by_zone().size(), 2u);
  // All lifetimes within the 24 h constraint (up to atom rounding).
  for (const auto& r : report.dataset.records()) {
    EXPECT_GT(r.lifetime_hours, 0.0);
    EXPECT_LE(r.lifetime_hours, 24.0 + 1e-6);
  }
}

TEST(PublicDataset, LoadsBundledSecondsSample) {
  ImportOptions opts;
  opts.default_zone = Zone::kUsWest1A;
  const auto report = load_public_csv(std::string(PREEMPT_SOURCE_DIR) + "/data/sample_lifetimes_seconds.csv", opts);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_EQ(report.imported, 80u);
  for (const auto& r : report.dataset.records()) {
    EXPECT_LE(r.lifetime_hours, 24.0 + 1e-6);
    EXPECT_EQ(r.type, VmType::kN1Highcpu32);
  }
}

TEST(PublicDataset, LoadThrowsOnMissingFile) {
  EXPECT_THROW(load_public_csv(std::string(PREEMPT_SOURCE_DIR) + "/data/definitely_not_here.csv"), IoError);
}

}  // namespace
}  // namespace preempt::trace
