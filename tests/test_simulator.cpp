#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace preempt::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&order] { order.push_back(3); });
  sim.schedule_at(1.0, [&order] { order.push_back(1); });
  sim.schedule_at(2.0, [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByPriorityThenFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&order] { order.push_back(10); }, /*priority=*/0);
  sim.schedule_at(1.0, [&order] { order.push_back(-5); }, /*priority=*/-1);
  sim.schedule_at(1.0, [&order] { order.push_back(11); }, /*priority=*/0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-5, 10, 11}));
}

TEST(Simulator, ScheduleInUsesRelativeTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&sim, &fired_at] {
    sim.schedule_in(1.5, [&sim, &fired_at] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&fired] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunStopsAtMaxTime) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&count] { ++count; });
  sim.schedule_at(5.0, [&count] { ++count; });
  sim.run(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToMaxTimeOnEarlyExit) {
  // Regression: run(max_time) used to leave now() at the last executed event,
  // so a subsequent schedule_in(delay) anchored its delay in the past.
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&count] { ++count; });
  sim.schedule_at(5.0, [&count] { ++count; });
  sim.run(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // min(max_time, next-event time)

  double fired_at = -1.0;
  sim.schedule_in(0.5, [&sim, &fired_at] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);  // anchored at the window end, not at 1.0
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunWithoutLimitKeepsClockAtLastEvent) {
  Simulator sim;
  sim.schedule_at(3.0, [] {});
  sim.run();  // no limit: queue drains, clock stays at the last event
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, BoundedRunAdvancesClockEvenWhenQueueDrains) {
  // The window-end contract must not depend on whether later events happen
  // to remain queued: run(2.0) simulates the whole [0, 2] window either way.
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run(2.0);  // queue drains at 1.0, but the window ran to 2.0
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);

  double fired_at = -1.0;
  sim.schedule_in(0.5, [&sim, &fired_at] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, CancelHeavyWorkloadExecutesSurvivors) {
  // Exercises the hash-map callback store: half the events cancelled up
  // front, the rest must still run in time order.
  Simulator sim;
  int executed = 0;
  std::vector<std::uint64_t> ids;
  constexpr int kN = 10000;
  ids.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    ids.push_back(sim.schedule_at(static_cast<double>(i % 97), [&executed] { ++executed; }));
  }
  for (int i = 0; i < kN; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(executed, kN / 2);
  EXPECT_EQ(sim.executed_events(), static_cast<std::uint64_t>(kN / 2));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_in(1.0, step);
  };
  sim.schedule_at(0.0, step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, RejectsPastAndNullEvents) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_at(10.0, nullptr), InvalidArgument);
}

TEST(Simulator, SameTimeEventScheduledDuringExecutionRuns) {
  Simulator sim;
  bool inner = false;
  sim.schedule_at(1.0, [&] { sim.schedule_at(1.0, [&inner] { inner = true; }); });
  sim.run();
  EXPECT_TRUE(inner);
}

// One full pass over the tombstone scheme: schedule 1M events, cancel every
// other one, and pin both the executed count and the execution order (as a
// position-weighted checksum) across two identical runs. This is the
// regression net for the hash-map -> slot-slab rework: a recycling bug would
// drop or reorder survivors, a cancellation bug would change the count.
TEST(Simulator, MillionEventsHalfCancelledDeterministic) {
  constexpr std::size_t kN = 1'000'000;
  auto run_once = [] {
    Simulator sim;
    std::vector<std::uint64_t> ids;
    ids.reserve(kN);
    std::uint64_t checksum = 0;
    std::uint64_t position = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      const auto tag = static_cast<std::uint64_t>(i);
      ids.push_back(sim.schedule_at(static_cast<double>(i % 9973), [&checksum, &position, tag] {
        checksum += (++position) * (tag + 1);
      }));
    }
    for (std::size_t i = 0; i < kN; i += 2) sim.cancel(ids[i]);
    sim.run();
    EXPECT_EQ(sim.executed_events(), kN / 2);
    return checksum;
  };
  const std::uint64_t first = run_once();
  const std::uint64_t second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

TEST(Simulator, CancelAfterExecutionIsNoOp) {
  Simulator sim;
  int fired = 0;
  const auto id = sim.schedule_at(1.0, [&fired] { ++fired; });
  sim.run();
  sim.cancel(id);  // must not disturb anything
  sim.cancel(id);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Simulator, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
  Simulator sim;
  const auto first = sim.schedule_at(1.0, [] {});
  sim.run();  // slot recycled once the entry pops
  bool fired = false;
  const auto second = sim.schedule_at(2.0, [&fired] { fired = true; });
  ASSERT_NE(first, second);  // generation bump makes the old id stale
  sim.cancel(first);         // stale id: must not tombstone the new occupant
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, CancelZeroAndUnknownIdsAreNoOps) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(1.0, [&fired] { fired = true; });
  sim.cancel(0);
  sim.cancel(0xffffffffffffffffULL);
  sim.run();
  EXPECT_TRUE(fired);
}

// Satellite coverage for the bounded-run clock contract (pins the PR 3
// early-exit fix): windows interleaved with schedule_in and cancels whose
// targets lie across the window boundary.
TEST(Simulator, BoundedWindowsInterleavedWithScheduleInAndCancels) {
  Simulator sim;
  std::vector<int> order;

  sim.schedule_at(0.5, [&order] { order.push_back(1); });
  const auto in_window_cancelled = sim.schedule_at(0.75, [&order] { order.push_back(-1); });
  const auto beyond_window = sim.schedule_at(3.5, [&order] { order.push_back(-2); });
  sim.schedule_at(4.5, [&order] { order.push_back(4); });

  sim.cancel(in_window_cancelled);
  EXPECT_EQ(sim.run(1.0), 1u);  // only the 0.5 event fires in [0, 1]
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);

  // Relative scheduling anchors at the window end; the event lands at 3.0,
  // i.e. inside the *next* window.
  sim.schedule_in(2.0, [&order] { order.push_back(3); });
  // Cancelling an event queued beyond the already-simulated window must work
  // from between runs (its queue entry is still pending).
  sim.cancel(beyond_window);

  EXPECT_EQ(sim.run(4.0), 1u);  // the 3.0 event; the 3.5 one is tombstoned
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);

  EXPECT_EQ(sim.run(), 1u);  // drains the 4.5 event
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, CancelAcrossWindowBoundaryFromInsideAnEvent) {
  Simulator sim;
  bool fired = false;
  const auto far_event = sim.schedule_at(10.0, [&fired] { fired = true; });
  // An event inside the first window cancels one beyond it.
  sim.schedule_at(0.5, [&sim, far_event] { sim.cancel(far_event); });
  sim.run(1.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.executed_events(), 1u);
}

}  // namespace
}  // namespace preempt::sim
