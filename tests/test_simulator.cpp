#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace preempt::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&order] { order.push_back(3); });
  sim.schedule_at(1.0, [&order] { order.push_back(1); });
  sim.schedule_at(2.0, [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakByPriorityThenFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&order] { order.push_back(10); }, /*priority=*/0);
  sim.schedule_at(1.0, [&order] { order.push_back(-5); }, /*priority=*/-1);
  sim.schedule_at(1.0, [&order] { order.push_back(11); }, /*priority=*/0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{-5, 10, 11}));
}

TEST(Simulator, ScheduleInUsesRelativeTime) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&sim, &fired_at] {
    sim.schedule_in(1.5, [&sim, &fired_at] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&fired] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunStopsAtMaxTime) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&count] { ++count; });
  sim.schedule_at(5.0, [&count] { ++count; });
  sim.run(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunAdvancesClockToMaxTimeOnEarlyExit) {
  // Regression: run(max_time) used to leave now() at the last executed event,
  // so a subsequent schedule_in(delay) anchored its delay in the past.
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&count] { ++count; });
  sim.schedule_at(5.0, [&count] { ++count; });
  sim.run(2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // min(max_time, next-event time)

  double fired_at = -1.0;
  sim.schedule_in(0.5, [&sim, &fired_at] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);  // anchored at the window end, not at 1.0
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunWithoutLimitKeepsClockAtLastEvent) {
  Simulator sim;
  sim.schedule_at(3.0, [] {});
  sim.run();  // no limit: queue drains, clock stays at the last event
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, BoundedRunAdvancesClockEvenWhenQueueDrains) {
  // The window-end contract must not depend on whether later events happen
  // to remain queued: run(2.0) simulates the whole [0, 2] window either way.
  Simulator sim;
  sim.schedule_at(1.0, [] {});
  sim.run(2.0);  // queue drains at 1.0, but the window ran to 2.0
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);

  double fired_at = -1.0;
  sim.schedule_in(0.5, [&sim, &fired_at] { fired_at = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, CancelHeavyWorkloadExecutesSurvivors) {
  // Exercises the hash-map callback store: half the events cancelled up
  // front, the rest must still run in time order.
  Simulator sim;
  int executed = 0;
  std::vector<std::uint64_t> ids;
  constexpr int kN = 10000;
  ids.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    ids.push_back(sim.schedule_at(static_cast<double>(i % 97), [&executed] { ++executed; }));
  }
  for (int i = 0; i < kN; i += 2) sim.cancel(ids[static_cast<std::size_t>(i)]);
  sim.run();
  EXPECT_EQ(executed, kN / 2);
  EXPECT_EQ(sim.executed_events(), static_cast<std::uint64_t>(kN / 2));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) sim.schedule_in(1.0, step);
  };
  sim.schedule_at(0.0, step);
  sim.run();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  EXPECT_EQ(sim.executed_events(), 5u);
}

TEST(Simulator, RejectsPastAndNullEvents) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), InvalidArgument);
  EXPECT_THROW(sim.schedule_at(10.0, nullptr), InvalidArgument);
}

TEST(Simulator, SameTimeEventScheduledDuringExecutionRuns) {
  Simulator sim;
  bool inner = false;
  sim.schedule_at(1.0, [&] { sim.schedule_at(1.0, [&inner] { inner = true; }); });
  sim.run();
  EXPECT_TRUE(inner);
}

}  // namespace
}  // namespace preempt::sim
