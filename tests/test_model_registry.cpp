#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/model.hpp"
#include "core/registry.hpp"
#include "test_util.hpp"
#include "trace/generator.hpp"

namespace preempt::core {
namespace {

using preempt::testing::reference_bathtub;
using preempt::testing::reference_params;

TEST(PreemptionModel, FromParamsExposesDistribution) {
  const PreemptionModel m = PreemptionModel::from_params(reference_params());
  EXPECT_NEAR(m.params().scale, 0.45, 1e-12);
  EXPECT_FALSE(m.fit_quality().has_value());
  EXPECT_NEAR(m.expected_lifetime(), 10.89, 0.01);
  EXPECT_NEAR(m.mean_lifetime(), 10.89 + 2.4, 0.02);
}

TEST(PreemptionModel, FitRecoversGroundTruth) {
  const auto truth = reference_bathtub();
  Rng rng(5150);
  std::vector<double> lifetimes;
  for (int i = 0; i < 600; ++i) lifetimes.push_back(truth.sample(rng));
  const PreemptionModel m = PreemptionModel::fit(lifetimes);
  ASSERT_TRUE(m.fit_quality().has_value());
  EXPECT_GT(m.fit_quality()->r2, 0.99);
  EXPECT_NEAR(m.params().scale, 0.45, 0.05);
  EXPECT_NEAR(m.params().tau1, 1.0, 0.35);
}

TEST(PreemptionModel, AnalysisPassthroughsAreConsistent) {
  const PreemptionModel m = PreemptionModel::from_params(reference_params());
  EXPECT_NEAR(m.job_failure_probability(0.0, 6.0), 0.4489, 1e-3);
  EXPECT_GT(m.expected_makespan(10.0), 10.0);
  EXPECT_NEAR(m.expected_makespan_from_age(8.0, 4.0), 4.0, 0.01);
  EXPECT_GT(m.preemption_rate(0.1), m.preemption_rate(12.0));
  EXPECT_GT(m.expected_wasted_work(10.0), 0.0);
}

TEST(PreemptionModel, PolicyFactories) {
  const PreemptionModel m = PreemptionModel::from_params(reference_params());
  EXPECT_TRUE(m.reuse_decision(8.0, 6.0).reuse);
  EXPECT_FALSE(m.reuse_decision(20.0, 6.0).reuse);
  const auto scheduler = m.make_scheduler();
  EXPECT_EQ(scheduler->name(), "model-driven");
  const auto dp = m.make_checkpoint_dp(2.0);
  EXPECT_GE(dp.expected_makespan(0.0), 2.0);
}

TEST(Registry, FitsAllPoolingLevels) {
  trace::StudyConfig cfg;
  cfg.vms_per_cell = 30;
  const trace::Dataset ds = trace::generate_study(cfg);
  const ModelRegistry reg = ModelRegistry::fit_from_dataset(ds);
  EXPECT_NE(reg.global(), nullptr);
  EXPECT_NE(reg.by_type(trace::VmType::kN1Highcpu16), nullptr);
  EXPECT_NE(reg.by_type_zone(trace::VmType::kN1Highcpu16, trace::Zone::kUsEast1B), nullptr);
  EXPECT_GT(reg.model_count(), 5u);
}

TEST(Registry, LookupFallsBackGracefully) {
  trace::StudyConfig cfg;
  cfg.vms_per_cell = 30;
  cfg.idle_fraction = 0.0;  // no idle cells -> full keys with idle miss
  const trace::Dataset ds = trace::generate_study(cfg);
  const ModelRegistry reg = ModelRegistry::fit_from_dataset(ds);
  trace::RegimeKey key;
  key.type = trace::VmType::kN1Highcpu16;
  key.zone = trace::Zone::kUsEast1B;
  key.workload = trace::WorkloadKind::kIdle;  // never observed
  // Falls back to (type, zone) or coarser without throwing.
  const PreemptionModel& m = reg.lookup(key);
  EXPECT_GT(m.expected_lifetime(), 0.0);
}

TEST(Registry, PerTypeModelsReflectObservation4) {
  trace::StudyConfig cfg;
  cfg.vms_per_cell = 60;
  const trace::Dataset ds = trace::generate_study(cfg);
  const ModelRegistry reg = ModelRegistry::fit_from_dataset(ds);
  const PreemptionModel* small = reg.by_type(trace::VmType::kN1Highcpu2);
  const PreemptionModel* big = reg.by_type(trace::VmType::kN1Highcpu32);
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  // Larger VMs preempt more: 6 h fresh failure probability must be higher.
  EXPECT_GT(big->job_failure_probability(0.0, 6.0),
            small->job_failure_probability(0.0, 6.0));
}

TEST(Registry, RejectsEmptyDataset) {
  const trace::Dataset empty;
  EXPECT_THROW(ModelRegistry::fit_from_dataset(empty), InvalidArgument);
}

}  // namespace
}  // namespace preempt::core
