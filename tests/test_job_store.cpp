// Persistent bag-job store (src/api/job_store.*): record round-trips, journal
// replay semantics (requeue, torn tail, compaction, done_total accounting) and
// end-to-end BagJobQueue persistence across a simulated kill-and-restart.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/bag_jobs.hpp"
#include "api/job_store.hpp"
#include "common/json.hpp"
#include "scenario/registry.hpp"

namespace preempt::api {
namespace {

/// Journal file in the test's cwd, removed (with its compaction tmp) on exit.
struct TempJournal {
  explicit TempJournal(const std::string& name) : path("test_store_" + name + ".jsonl") {
    std::remove(path.c_str());
  }
  ~TempJournal() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

BagJobRecord sample_done_record(std::uint64_t id) {
  BagJobRecord record;
  record.id = id;
  record.status = BagJobStatus::kDone;
  record.spec.app = "shapes";
  record.spec.jobs = 20;
  record.spec.vms = 8;
  record.spec.seed = 7;
  record.spec.policy = sim::ReusePolicyKind::kMemoryless;
  record.spec.policy_name = "memoryless";
  record.spec.replications = 3;
  record.report.jobs_completed = 20;
  record.report.makespan_hours = 4.5;
  record.report.ideal_makespan_hours = 4.0;
  record.report.increase_fraction = 0.125;
  record.report.total_cost = 12.25;
  record.report.cost_per_job = 0.6125;
  record.report.on_demand_cost_per_job = 2.0;
  record.report.cost_reduction_factor = 3.26;
  record.report.preemptions = 3;
  record.report.preemptions_total = 5;
  record.report.vms_launched = 11;
  record.report.fresh_vm_launches = 2;
  record.report.hot_spare_expirations = 1;
  record.report.total_vm_hours = 36.5;
  record.report.wasted_hours = 1.75;
  record.report.checkpoint_overhead_hours = 0.25;
  mc::MetricSummary m;
  m.name = "cost_per_job";
  m.count = 3;
  m.mean = 0.61;
  m.variance = 0.004;
  m.stddev = 0.0632;
  m.std_error = 0.0365;
  m.ci95_half = 0.0715;
  m.min = 0.55;
  m.max = 0.68;
  record.metrics.push_back(m);
  return record;
}

// ------------------------------------------------------- record round-trip

TEST(JobRecord, RoundTripsEveryReportField) {
  const BagJobRecord record = sample_done_record(42);
  const BagJobRecord back = job_record_from_json(job_record_to_json(record));
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.status, BagJobStatus::kDone);
  EXPECT_EQ(back.spec.app, "shapes");
  EXPECT_EQ(back.spec.jobs, 20u);
  EXPECT_EQ(back.spec.vms, 8u);
  EXPECT_EQ(back.spec.seed, 7u);
  EXPECT_EQ(back.spec.policy, sim::ReusePolicyKind::kMemoryless);
  EXPECT_EQ(back.spec.policy_name, "memoryless");
  EXPECT_EQ(back.spec.replications, 3u);
  EXPECT_EQ(back.report.jobs_completed, 20u);
  EXPECT_DOUBLE_EQ(back.report.makespan_hours, 4.5);
  EXPECT_DOUBLE_EQ(back.report.ideal_makespan_hours, 4.0);
  EXPECT_DOUBLE_EQ(back.report.increase_fraction, 0.125);
  EXPECT_DOUBLE_EQ(back.report.total_cost, 12.25);
  EXPECT_DOUBLE_EQ(back.report.cost_per_job, 0.6125);
  EXPECT_DOUBLE_EQ(back.report.on_demand_cost_per_job, 2.0);
  EXPECT_DOUBLE_EQ(back.report.cost_reduction_factor, 3.26);
  EXPECT_EQ(back.report.preemptions, 3);
  EXPECT_EQ(back.report.preemptions_total, 5);
  EXPECT_EQ(back.report.vms_launched, 11);
  EXPECT_EQ(back.report.fresh_vm_launches, 2);
  EXPECT_EQ(back.report.hot_spare_expirations, 1);
  EXPECT_DOUBLE_EQ(back.report.total_vm_hours, 36.5);
  EXPECT_DOUBLE_EQ(back.report.wasted_hours, 1.75);
  EXPECT_DOUBLE_EQ(back.report.checkpoint_overhead_hours, 0.25);
  ASSERT_EQ(back.metrics.size(), 1u);
  EXPECT_EQ(back.metrics[0].name, "cost_per_job");
  EXPECT_EQ(back.metrics[0].count, 3u);
  EXPECT_DOUBLE_EQ(back.metrics[0].mean, 0.61);
  EXPECT_DOUBLE_EQ(back.metrics[0].ci95_half, 0.0715);
}

TEST(JobRecord, RoundTripsFailureWithScenarioSpec) {
  BagJobRecord record;
  record.id = 9;
  record.status = BagJobStatus::kFailed;
  record.error = "executor exploded";
  record.spec.scenario_name = "paper-fig09-quick";
  record.spec.scenario = scenario::find_builtin("paper-fig09-quick")->sweep;

  const BagJobRecord back = job_record_from_json(job_record_to_json(record));
  EXPECT_EQ(back.status, BagJobStatus::kFailed);
  EXPECT_EQ(back.error, "executor exploded");
  EXPECT_EQ(back.spec.scenario_name, "paper-fig09-quick");
  ASSERT_TRUE(back.spec.scenario.has_value());
  EXPECT_EQ(back.spec.scenario->base.seed, record.spec.scenario->base.seed);
  EXPECT_EQ(back.spec.scenario->cardinality(), record.spec.scenario->cardinality());
}

TEST(JobRecord, RoundTripsScenarioResultWhenDone) {
  BagJobRecord record = sample_done_record(11);
  record.spec.scenario_name = "paper-fig09-quick";
  record.spec.scenario = scenario::find_builtin("paper-fig09-quick")->sweep;
  JsonObject result;
  result.emplace_back("cells", 1.0);
  record.scenario_result = JsonValue(std::move(result));

  const BagJobRecord back = job_record_from_json(job_record_to_json(record));
  EXPECT_EQ(back.spec.scenario_name, "paper-fig09-quick");
  EXPECT_EQ(back.scenario_result.number_or("cells", 0), 1.0);
}

TEST(JobRecord, RoundTripsExplicitCellListJobs) {
  BagJobRecord record = sample_done_record(13);
  record.spec.scenario_name = "shard-2/3";
  scenario::ScenarioSpec cell;
  cell.name = "cell-a";
  cell.app = "shapes";
  cell.jobs = 5;
  cell.seed = 17;
  record.spec.cells.push_back(cell);
  cell.name = "cell-b";
  cell.seed = 18;
  record.spec.cells.push_back(cell);

  const BagJobRecord back = job_record_from_json(job_record_to_json(record));
  EXPECT_EQ(back.spec.scenario_name, "shard-2/3");
  ASSERT_EQ(back.spec.cells.size(), 2u);
  EXPECT_EQ(back.spec.cells[0].name, "cell-a");
  EXPECT_EQ(back.spec.cells[0].seed, 17u);
  EXPECT_EQ(back.spec.cells[1].name, "cell-b");
  EXPECT_EQ(back.spec.cells[1].seed, 18u);
  EXPECT_EQ(back.spec.cells[1].jobs, 5u);
  // A cells job without a SweepSpec must not grow one across the journal.
  EXPECT_FALSE(back.spec.scenario.has_value());
}

// ---------------------------------------------------------------- replay

TEST(JournalReplay, MissingFileIsEmptyState) {
  const JournalReplay replay = replay_journal("test_store_never_written.jsonl");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_EQ(replay.next_id, 1u);
  EXPECT_EQ(replay.done_total, 0u);
}

TEST(JournalReplay, LaterEventsWinAndTerminalOrderTracksCompletion) {
  TempJournal journal("replay");
  {
    JobJournal log(journal.path);
    BagJobRecord a = sample_done_record(1);
    a.status = BagJobStatus::kQueued;
    BagJobRecord b = sample_done_record(2);
    b.status = BagJobStatus::kQueued;
    log.append(make_submit_event(a));
    log.append(make_submit_event(b));
    log.append(make_running_event(2));
    log.append(make_terminal_event(sample_done_record(2)));  // 2 finishes first
    log.append(make_running_event(1));
    log.append(make_terminal_event(sample_done_record(1)));
  }
  const JournalReplay replay = replay_journal(journal.path);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].id, 1u);  // id-ascending
  EXPECT_EQ(replay.records[0].status, BagJobStatus::kDone);
  EXPECT_EQ(replay.records[0].report.jobs_completed, 20u);
  EXPECT_EQ(replay.next_id, 3u);
  EXPECT_EQ(replay.done_total, 2u);
  ASSERT_EQ(replay.terminal_order.size(), 2u);
  EXPECT_EQ(replay.terminal_order[0], 2u);  // completion order, not id order
  EXPECT_EQ(replay.terminal_order[1], 1u);
}

TEST(JournalReplay, InFlightJobsKeepTheirJournaledStatus) {
  TempJournal journal("inflight");
  {
    JobJournal log(journal.path);
    BagJobRecord queued = sample_done_record(1);
    queued.status = BagJobStatus::kQueued;
    log.append(make_submit_event(queued));
    log.append(make_running_event(1));  // crash while running
  }
  const JournalReplay replay = replay_journal(journal.path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].status, BagJobStatus::kRunning);
  EXPECT_TRUE(replay.terminal_order.empty());
  EXPECT_EQ(replay.done_total, 0u);
}

TEST(JournalReplay, TornTailIsIgnored) {
  TempJournal journal("torn");
  {
    JobJournal log(journal.path);
    log.append(make_submit_event(sample_done_record(1)));
  }
  {
    // Simulate a crash mid-append: a truncated JSON line with no newline.
    std::ofstream out(journal.path, std::ios::app);
    out << R"({"event":"done","job":{"id":2,"stat)";
  }
  const JournalReplay replay = replay_journal(journal.path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].id, 1u);
  EXPECT_EQ(replay.next_id, 2u);
}

TEST(JournalReplay, SnapshotResetsAndTerminalAfterSnapshotDoesNotDoubleCount) {
  TempJournal journal("snapshot");
  {
    JobJournal log(journal.path);
    log.append(make_submit_event(sample_done_record(7)));  // pre-compaction noise
    const std::vector<BagJobRecord> live = {sample_done_record(3)};
    log.compact(make_snapshot_event(live, /*next_id=*/4, /*done_total=*/5));
    // A redundant terminal event for a record the snapshot already carries as
    // done (compaction races an in-flight append) must not bump done_total.
    log.append(make_terminal_event(sample_done_record(3)));
  }
  const JournalReplay replay = replay_journal(journal.path);
  ASSERT_EQ(replay.records.size(), 1u);  // the snapshot wiped id 7
  EXPECT_EQ(replay.records[0].id, 3u);
  EXPECT_EQ(replay.next_id, 4u);
  EXPECT_EQ(replay.done_total, 5u);
  EXPECT_EQ(replay.terminal_order.size(), 1u);
}

TEST(JobJournal, CompactionShrinksTheLog) {
  TempJournal journal("compact");
  JobJournal log(journal.path);
  for (std::uint64_t id = 1; id <= 50; ++id) {
    log.append(make_submit_event(sample_done_record(id)));
    log.append(make_terminal_event(sample_done_record(id)));
  }
  const std::size_t before = log.bytes();
  const std::vector<BagJobRecord> live = {sample_done_record(50)};
  log.compact(make_snapshot_event(live, 51, 50));
  EXPECT_LT(log.bytes(), before / 10);
  // And the compacted log still replays.
  const JournalReplay replay = replay_journal(journal.path);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.done_total, 50u);
}

// ------------------------------------------- BagJobQueue persistence e2e

BagJobQueue::Options store_options(const std::string& path, std::size_t cap = 1024) {
  BagJobQueue::Options options;
  options.store_path = path;
  options.max_finished_jobs = cap;
  return options;
}

TEST(BagJobQueuePersistence, FinishedJobsSurviveRestart) {
  TempJournal journal("queue_restart");
  std::uint64_t id = 0;
  {
    BagJobQueue queue(1,
                      [](BagJobRecord& record) {
                        record.report.jobs_completed = record.spec.jobs;
                        record.report.cost_per_job = 0.5;
                      },
                      store_options(journal.path));
    BagJobSpec spec;
    spec.jobs = 12;
    id = queue.submit(spec);
    ASSERT_TRUE(queue.wait(id, 30.0));
  }  // queue destroyed — the journal is the only copy now

  BagJobQueue restarted(1, [](BagJobRecord&) {}, store_options(journal.path));
  const auto record = restarted.get(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->status, BagJobStatus::kDone);
  EXPECT_EQ(record->report.jobs_completed, 12u);
  EXPECT_DOUBLE_EQ(record->report.cost_per_job, 0.5);
  EXPECT_EQ(restarted.done_count(), 1u);
  // New submissions continue the id sequence instead of reusing old ids.
  BagJobSpec next;
  EXPECT_EQ(restarted.submit(next), id + 1);
}

TEST(BagJobQueuePersistence, InterruptedJobsAreRequeuedAndRun) {
  TempJournal journal("queue_requeue");
  {
    // Hand-write a journal describing a crash with one queued and one
    // running job (no BagJobQueue wrote this — the point is the replay).
    JobJournal log(journal.path);
    BagJobRecord queued;
    queued.id = 1;
    queued.status = BagJobStatus::kQueued;
    queued.spec.jobs = 5;
    BagJobRecord running;
    running.id = 2;
    running.status = BagJobStatus::kQueued;
    running.spec.jobs = 6;
    log.append(make_submit_event(queued));
    log.append(make_submit_event(running));
    log.append(make_running_event(2));
  }
  BagJobQueue queue(2,
                    [](BagJobRecord& record) {
                      record.report.jobs_completed = record.spec.jobs;
                    },
                    store_options(journal.path));
  ASSERT_TRUE(queue.wait(1, 30.0));
  ASSERT_TRUE(queue.wait(2, 30.0));
  EXPECT_EQ(queue.get(1)->status, BagJobStatus::kDone);
  EXPECT_EQ(queue.get(2)->status, BagJobStatus::kDone);
  EXPECT_EQ(queue.get(2)->report.jobs_completed, 6u);
  EXPECT_EQ(queue.done_count(), 2u);
}

TEST(BagJobQueuePersistence, EvictionOrderSurvivesRestart) {
  TempJournal journal("queue_evict");
  {
    BagJobQueue queue(1, [](BagJobRecord&) {}, store_options(journal.path, /*cap=*/2));
    for (int i = 0; i < 3; ++i) {
      const std::uint64_t id = queue.submit(BagJobSpec{});
      ASSERT_TRUE(queue.wait(id, 30.0));
    }
    EXPECT_FALSE(queue.get(1).has_value());  // evicted live (cap 2)
    EXPECT_TRUE(queue.evicted(1));
  }
  BagJobQueue restarted(1, [](BagJobRecord&) {}, store_options(journal.path, /*cap=*/2));
  EXPECT_FALSE(restarted.get(1).has_value());
  EXPECT_TRUE(restarted.evicted(1));  // still "gone", not "never was"
  EXPECT_TRUE(restarted.get(2).has_value());
  EXPECT_TRUE(restarted.get(3).has_value());
  EXPECT_EQ(restarted.done_count(), 3u);  // eviction never uncounts
}

TEST(BagJobQueuePersistence, FailedJobsKeepTheirErrorAcrossRestart) {
  TempJournal journal("queue_failed");
  std::uint64_t id = 0;
  {
    BagJobQueue queue(1,
                      [](BagJobRecord&) { throw std::runtime_error("boom"); },
                      store_options(journal.path));
    id = queue.submit(BagJobSpec{});
    ASSERT_TRUE(queue.wait(id, 30.0));
  }
  BagJobQueue restarted(1, [](BagJobRecord&) {}, store_options(journal.path));
  const auto record = restarted.get(id);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->status, BagJobStatus::kFailed);
  EXPECT_NE(record->error.find("boom"), std::string::npos);
}

TEST(BagJobQueuePersistence, CompactionKeepsTheLogBounded) {
  TempJournal journal("queue_bounded");
  BagJobQueue::Options options = store_options(journal.path, /*cap=*/4);
  options.compact_threshold_bytes = 8 * 1024;  // force frequent compactions
  std::size_t log_bytes = 0;
  {
    BagJobQueue queue(2,
                      [](BagJobRecord& record) {
                        record.report.jobs_completed = record.spec.jobs;
                      },
                      options);
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t id = queue.submit(BagJobSpec{});
      ASSERT_TRUE(queue.wait(id, 30.0));
    }
  }
  {
    std::ifstream in(journal.path, std::ios::ate | std::ios::binary);
    ASSERT_TRUE(in.good());
    log_bytes = static_cast<std::size_t>(in.tellg());
  }
  // 100 finished jobs went through; the log holds ~a snapshot of 4 plus a
  // few appends, nowhere near 100 records' worth of history.
  EXPECT_LT(log_bytes, 64 * 1024u);
  BagJobQueue restarted(1, [](BagJobRecord&) {}, options);
  EXPECT_EQ(restarted.done_count(), 100u);
  EXPECT_EQ(restarted.list(std::nullopt, 1000, 0).total, 4u);
}

}  // namespace
}  // namespace preempt::api
