// The sharded sweep coordinator (src/shard): deterministic partitioning,
// gather-exact merging for every registered sweep, end-to-end byte-identity
// against the single-node sweep report over live worker daemons, worker
// failure -> re-dispatch, tail hedging, and terminal partial-failure
// reporting.
#include "shard/coordinator.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>

#include "api/http_server.hpp"
#include "api/service_daemon.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"
#include "shard/metrics.hpp"
#include "shard/partition.hpp"

namespace preempt::shard {
namespace {

const std::size_t kShardCounts[] = {1, 2, 3, 7};

// ---------------------------------------------------------------- partition

TEST(Partition, RoundRobinCoversEveryCellExactlyOnce) {
  for (const std::size_t cells : {1u, 2u, 5u, 12u, 97u}) {
    for (const std::size_t shards : kShardCounts) {
      const auto assignment = partition_cells(cells, shards);
      ASSERT_EQ(assignment.size(), std::min<std::size_t>(shards, cells));
      std::vector<int> seen(cells, 0);
      for (const auto& shard : assignment) {
        for (std::size_t prev = 0, k = 0; k < shard.size(); ++k) {
          ASSERT_LT(shard[k], cells);
          if (k > 0) EXPECT_GT(shard[k], prev) << "cells within a shard ascend";
          prev = shard[k];
          ++seen[shard[k]];
        }
      }
      for (const int count : seen) EXPECT_EQ(count, 1);
      // Balanced to within one cell.
      std::size_t smallest = cells, largest = 0;
      for (const auto& shard : assignment) {
        smallest = std::min(smallest, shard.size());
        largest = std::max(largest, shard.size());
      }
      EXPECT_LE(largest - smallest, 1u);
    }
  }
}

TEST(Partition, AssignmentIsDeterministic) {
  EXPECT_EQ(partition_cells(37, 7), partition_cells(37, 7));
  EXPECT_EQ(partition_cells(37, 7)[0], (std::vector<std::size_t>{0, 7, 14, 21, 28, 35}));
}

TEST(Partition, RejectsZeroShards) {
  EXPECT_THROW(partition_cells(4, 0), InvalidArgument);
}

// What a worker sends back for one dispatched shard, built from the same
// serializers the daemon uses.
JsonValue fake_worker_response(const std::vector<scenario::ScenarioSpec>& cells,
                               const std::vector<std::size_t>& shard,
                               const std::vector<JsonValue>& results) {
  JsonArray rows;
  for (const std::size_t index : shard) {
    JsonObject row;
    row.emplace_back("name", cells[index].name);
    row.emplace_back("spec", scenario::to_json(cells[index]));
    row.emplace_back("result", results[index]);
    rows.push_back(JsonValue(std::move(row)));
  }
  JsonObject body;
  body.emplace_back("cells", JsonValue(std::move(rows)));
  return JsonValue(std::move(body));
}

std::vector<JsonValue> synthetic_results(std::size_t count) {
  std::vector<JsonValue> results;
  for (std::size_t i = 0; i < count; ++i) {
    JsonObject r;
    r.emplace_back("cell_index", i);
    r.emplace_back("value", 0.1 * static_cast<double>(i) + 1.0 / 3.0);
    results.push_back(JsonValue(std::move(r)));
  }
  return results;
}

// Scatter/gather at the merge layer is byte-exact for EVERY registered sweep
// scenario and every shard count: splitting the grid N ways and adopting the
// (synthetic) per-cell results back reproduces the grid-order report bit for
// bit, independent of N. This covers the whole registry without paying for
// cell execution; live execution is covered below on a cheap sweep.
TEST(Partition, MergeReconstructsEveryRegisteredSweepByteExactly) {
  for (const scenario::NamedScenario& named : scenario::builtin_scenarios()) {
    const std::vector<scenario::ScenarioSpec> cells = scenario::expand(named.sweep);
    const std::vector<JsonValue> results = synthetic_results(cells.size());
    const std::vector<bool> all(cells.size(), true);
    const std::string expected = merge_report(cells, results, all).dump();
    for (const std::size_t shard_count : kShardCounts) {
      std::vector<JsonValue> gathered(cells.size());
      std::vector<bool> have(cells.size(), false);
      for (const auto& shard : partition_cells(cells.size(), shard_count)) {
        adopt_shard_result(cells, shard, fake_worker_response(cells, shard, results),
                           gathered, have);
      }
      EXPECT_EQ(merge_report(cells, gathered, have).dump(), expected)
          << named.name << " over " << shard_count << " shards";
    }
  }
}

TEST(Partition, AdoptRejectsMismatchedWorkerAnswers) {
  scenario::SweepSpec sweep;
  sweep.base.name = "adopt";
  sweep.base.app = "shapes";
  scenario::SweepAxis seeds;
  seeds.field = "seed";
  seeds.values = {JsonValue(1), JsonValue(2)};
  sweep.axes.push_back(seeds);
  const auto cells = scenario::expand(sweep);
  const auto results = synthetic_results(cells.size());
  const std::vector<std::size_t> shard{0, 1};
  std::vector<JsonValue> gathered(cells.size());
  std::vector<bool> have(cells.size(), false);

  // Not an object with "cells".
  EXPECT_THROW(adopt_shard_result(cells, shard, JsonValue(JsonArray{}), gathered, have),
               InvalidArgument);
  // Wrong cell count.
  EXPECT_THROW(adopt_shard_result(cells, {0}, fake_worker_response(cells, shard, results),
                                  gathered, have),
               InvalidArgument);
  // Wrong cell name.
  JsonValue renamed = fake_worker_response(cells, shard, results);
  EXPECT_THROW(adopt_shard_result(cells, {1, 0}, renamed, gathered, have), InvalidArgument);
  for (const bool flag : have) EXPECT_FALSE(flag) << "failed adopts must not half-merge";
}

// ------------------------------------------------------------ parse_workers

TEST(ParseWorkers, AcceptsPortsAndLoopbackHostPorts) {
  EXPECT_EQ(parse_workers("8080"), (std::vector<std::uint16_t>{8080}));
  EXPECT_EQ(parse_workers("8080,8081, 8082"), (std::vector<std::uint16_t>{8080, 8081, 8082}));
  EXPECT_EQ(parse_workers("127.0.0.1:9001,localhost:9002"),
            (std::vector<std::uint16_t>{9001, 9002}));
}

TEST(ParseWorkers, RejectsBadEntries) {
  EXPECT_THROW(parse_workers(""), InvalidArgument);
  EXPECT_THROW(parse_workers("8080,,8081"), InvalidArgument);
  EXPECT_THROW(parse_workers("example.com:80"), InvalidArgument);
  EXPECT_THROW(parse_workers("10.0.0.1:80"), InvalidArgument);
  EXPECT_THROW(parse_workers("notaport"), InvalidArgument);
  EXPECT_THROW(parse_workers("0"), InvalidArgument);
  EXPECT_THROW(parse_workers("70000"), InvalidArgument);
}

// -------------------------------------------------------------- coordinator

/// Three worker daemons shared by the end-to-end tests (the bootstrap study
/// fit dominates construction cost; handle()/the HTTP surface are
/// thread-safe).
class ShardCoordinatorTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWorkers = 3;

  static api::ServiceDaemon& worker(std::size_t i) {
    static std::vector<std::unique_ptr<api::ServiceDaemon>> daemons = [] {
      std::vector<std::unique_ptr<api::ServiceDaemon>> out;
      for (std::size_t k = 0; k < kWorkers; ++k) {
        api::ServiceDaemon::Options options;
        options.bootstrap_vms_per_cell = 30;  // keep the fixture fast
        out.push_back(std::make_unique<api::ServiceDaemon>(options));
        out.back()->start(0);
      }
      return out;
    }();
    return *daemons[i];
  }

  /// A cheap six-cell service sweep (10-job bags on 4 VMs, 3 seeds x 2
  /// policies) whose single-node report is the byte-identity ground truth.
  static scenario::SweepSpec cheap_sweep() {
    scenario::SweepSpec sweep;
    sweep.base.name = "shard-e2e";
    sweep.base.app = "shapes";
    sweep.base.jobs = 10;
    sweep.base.cluster_size = 4;
    scenario::SweepAxis seeds;
    seeds.field = "seed";
    seeds.values = {JsonValue(1), JsonValue(2), JsonValue(3)};
    sweep.axes.push_back(seeds);
    scenario::SweepAxis policies;
    policies.field = "policy";
    policies.values = {JsonValue("model"), JsonValue("fresh")};
    sweep.axes.push_back(policies);
    return sweep;
  }

  static const std::string& expected_report() {
    static const std::string expected =
        scenario::to_json(scenario::run_sweep(cheap_sweep())).dump();
    return expected;
  }

  static CoordinatorOptions base_options(std::size_t workers) {
    CoordinatorOptions options;
    for (std::size_t i = 0; i < workers; ++i) options.workers.push_back(worker(i).port());
    options.request_timeout_seconds = 30.0;
    options.run_deadline_seconds = 120.0;
    return options;
  }

  /// A loopback port with no listener behind it (bound, then closed).
  static std::uint16_t dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    ::close(fd);
    return ntohs(addr.sin_port);
  }
};

TEST_F(ShardCoordinatorTest, RejectsEmptyConfigurations) {
  EXPECT_THROW(ShardCoordinator(CoordinatorOptions{}), InvalidArgument);
  ShardCoordinator coordinator(base_options(1));
  EXPECT_THROW(coordinator.run_cells({}), InvalidArgument);
}

// The headline guarantee: for the same seed, the merged sharded report is
// byte-identical to the single-node sweep report, for 1, 2 and 3 workers
// and for more shards than workers.
TEST_F(ShardCoordinatorTest, MergedReportIsByteIdenticalToSingleNode) {
  for (const std::size_t workers : {1u, 2u, 3u}) {
    ShardCoordinator coordinator(base_options(workers));
    const ShardOutcome outcome = coordinator.run(cheap_sweep());
    EXPECT_TRUE(outcome.complete);
    EXPECT_TRUE(outcome.unfinished_cells.empty());
    EXPECT_EQ(outcome.report.dump(), expected_report()) << workers << " workers";
  }
  CoordinatorOptions options = base_options(3);
  options.shards = 7;  // more shards than workers (capped at the cell count)
  ShardCoordinator coordinator(std::move(options));
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.report.dump(), expected_report());
}

TEST_F(ShardCoordinatorTest, ObserverSeesDispatchAndCompletionEvents) {
  CoordinatorOptions options = base_options(2);
  std::size_t dispatched = 0, done = 0, all_dispatched = 0;
  options.observer = [&](const ShardEventInfo& event) {
    if (event.event == ShardEvent::kDispatched) ++dispatched;
    if (event.event == ShardEvent::kShardDone) ++done;
    if (event.event == ShardEvent::kAllDispatched) ++all_dispatched;
  };
  ShardCoordinator coordinator(std::move(options));
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(dispatched, 2u);
  EXPECT_EQ(done, 2u);
  EXPECT_EQ(all_dispatched, 1u);
}

// A worker that dies mid-sweep is retired after bounded retries and its
// shards re-dispatch to survivors; the merge still matches single-node.
TEST_F(ShardCoordinatorTest, DeadWorkerShardsRedispatchToSurvivors) {
  CoordinatorOptions options = base_options(2);
  options.workers[0] = dead_port();  // connect refused from the first attempt
  options.backoff_base_seconds = 0.01;
  options.max_attempts = 2;
  const std::string victim = "127.0.0.1:" + std::to_string(options.workers[0]);
  bool victim_died = false;
  options.observer = [&](const ShardEventInfo& event) {
    if (event.event == ShardEvent::kWorkerDead && event.endpoint == victim) {
      victim_died = true;
    }
  };
  ShardCoordinator coordinator(std::move(options));
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  EXPECT_TRUE(victim_died);
  EXPECT_GE(outcome.redispatches, 1u);
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.report.dump(), expected_report());
  ASSERT_EQ(outcome.workers.size(), 2u);
  EXPECT_FALSE(outcome.workers[0].alive);
  EXPECT_TRUE(outcome.workers[1].alive);
}

TEST_F(ShardCoordinatorTest, AllWorkersDeadYieldsTerminalPartialFailure) {
  CoordinatorOptions options;
  options.workers = {dead_port()};
  options.backoff_base_seconds = 0.01;
  options.max_attempts = 2;
  options.run_deadline_seconds = 30.0;
  ShardCoordinator coordinator(std::move(options));
  const auto started = std::chrono::steady_clock::now();
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  const double elapsed = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - started).count();
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.unfinished_cells.size(), 6u) << "every cell reported unfinished";
  EXPECT_EQ(outcome.report.find("cells")->as_array().size(), 0u);
  EXPECT_LT(elapsed, 20.0) << "partial failure must terminate promptly, not hang";
}

/// A worker that accepts shard submissions but never finishes them: 202 on
/// dispatch, "running" on every poll, forever.
class StallingWorker {
 public:
  StallingWorker() {
    server_.start([](const api::HttpRequest& request) {
      if (request.method == "POST") {
        return api::HttpResponse::json(202, R"({"id":1,"status":"queued"})");
      }
      return api::HttpResponse::json(200, R"({"id":1,"status":"running"})");
    });
  }
  ~StallingWorker() { server_.stop(); }
  std::uint16_t port() const noexcept { return server_.port(); }

 private:
  api::HttpServer server_;
};

// Tail hedging: the shard stuck on a stalling worker is duplicated onto the
// idle healthy worker once it ages past the hedge threshold; the first
// completion wins and the merge is still byte-identical.
TEST_F(ShardCoordinatorTest, HedgingRescuesAStragglerShard) {
  StallingWorker stall;
  CoordinatorOptions options;
  options.workers = {stall.port(), worker(0).port()};
  options.request_timeout_seconds = 30.0;
  options.hedge = true;
  options.hedge_after_seconds = 0.05;
  options.run_deadline_seconds = 120.0;
  std::size_t hedges_seen = 0;
  options.observer = [&](const ShardEventInfo& event) {
    if (event.event == ShardEvent::kHedged) ++hedges_seen;
  };
  ShardCoordinator coordinator(std::move(options));
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  EXPECT_TRUE(outcome.complete);
  EXPECT_GE(outcome.hedges, 1u);
  EXPECT_EQ(hedges_seen, outcome.hedges);
  EXPECT_EQ(outcome.report.dump(), expected_report());
}

// Without hedging, a stalling worker pins its shard until the run deadline;
// the coordinator then reports exactly which cells never finished.
TEST_F(ShardCoordinatorTest, RunDeadlineNamesUnfinishedCells) {
  StallingWorker stall;
  CoordinatorOptions options;
  options.workers = {stall.port()};
  options.request_timeout_seconds = 5.0;
  options.poll_interval_seconds = 0.02;
  options.run_deadline_seconds = 0.5;
  ShardCoordinator coordinator(std::move(options));
  const ShardOutcome outcome = coordinator.run(cheap_sweep());
  EXPECT_FALSE(outcome.complete);
  const auto cells = scenario::expand(cheap_sweep());
  ASSERT_EQ(outcome.unfinished_cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(outcome.unfinished_cells[i], cells[i].name);
  }
}

// ------------------------------------------------------------------ metrics

TEST(ShardMetrics, CountersAndPercentilesExport) {
  ShardMetricsRegistry& registry = ShardMetricsRegistry::instance();
  registry.reset();
  registry.record_dispatch("127.0.0.1:1");
  registry.record_dispatch("127.0.0.1:1");
  registry.record_retry("127.0.0.1:1");
  registry.record_hedge("127.0.0.1:2");
  registry.record_failure("127.0.0.1:1");
  for (int i = 1; i <= 100; ++i) {
    registry.record_completion("127.0.0.1:1", 0.01 * i);
  }

  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].endpoint, "127.0.0.1:1");
  EXPECT_EQ(snapshot[0].dispatched, 2u);
  EXPECT_EQ(snapshot[0].retried, 1u);
  EXPECT_EQ(snapshot[0].failed, 1u);
  EXPECT_EQ(snapshot[0].completed, 100u);
  EXPECT_NEAR(snapshot[0].p50_seconds, 0.50, 1e-9);
  EXPECT_NEAR(snapshot[0].p99_seconds, 0.99, 1e-9);
  EXPECT_EQ(snapshot[1].hedged, 1u);

  const JsonValue json = registry.to_json();
  EXPECT_EQ(json.number_or("shards_dispatched", 0), 2.0);
  EXPECT_EQ(json.number_or("shards_completed", 0), 100.0);
  EXPECT_EQ(json.find("workers")->as_array().size(), 2u);

  const std::string prom = registry.prometheus();
  EXPECT_NE(prom.find("preempt_shard_dispatched_total{worker=\"127.0.0.1:1\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("preempt_shard_hedged_total{worker=\"127.0.0.1:2\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("preempt_shard_latency_seconds{worker=\"127.0.0.1:1\","
                      "quantile=\"0.5\"} 0.5"),
            std::string::npos);
  registry.reset();
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(ShardEvents, ToStringNamesEveryEvent) {
  EXPECT_EQ(to_string(ShardEvent::kDispatched), "dispatched");
  EXPECT_EQ(to_string(ShardEvent::kAllDispatched), "all_dispatched");
  EXPECT_EQ(to_string(ShardEvent::kShardDone), "shard_done");
  EXPECT_EQ(to_string(ShardEvent::kWorkerDead), "worker_dead");
  EXPECT_EQ(to_string(ShardEvent::kRedispatch), "redispatch");
  EXPECT_EQ(to_string(ShardEvent::kHedged), "hedged");
}

}  // namespace
}  // namespace preempt::shard
