// The batch-service HTTP API daemon: /v1 routing, async bag jobs, legacy
// /api/* alias compatibility, payload validation, and an end-to-end session
// over live loopback sockets.
#include "api/service_daemon.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "api/api_client.hpp"
#include "api/http_client.hpp"
#include "common/json.hpp"
#include "scenario/scenario.hpp"
#include "shard/metrics.hpp"

namespace preempt::api {
namespace {

/// One daemon shared by the suite: the bootstrap study fit is the expensive
/// part (~seconds), and handle() is thread-safe across all endpoints.
class ServiceApiTest : public ::testing::Test {
 protected:
  static ServiceDaemon& daemon() {
    static ServiceDaemon instance = [] {
      ServiceDaemon::Options options;
      options.bootstrap_vms_per_cell = 30;  // keep the fixture fast
      return ServiceDaemon(options);
    }();
    return instance;
  }

  static HttpRequest get(const std::string& target) {
    HttpRequest r;
    r.method = "GET";
    r.target = target;
    r.version = "HTTP/1.1";
    return r;
  }

  static HttpRequest post(const std::string& target, const std::string& body) {
    HttpRequest r = get(target);
    r.method = "POST";
    r.body = body;
    return r;
  }

  /// Submit an async bag and block until it is done; returns the job id.
  static std::uint64_t run_bag(const std::string& body) {
    const auto created = daemon().handle(post("/v1/bags", body));
    EXPECT_EQ(created.status, 202);
    const auto id = static_cast<std::uint64_t>(parse_json(created.body).number_or("id", 0));
    EXPECT_GT(id, 0u);
    EXPECT_TRUE(daemon().wait_for_bag(id, 120.0));
    return id;
  }

  static std::vector<std::string> keys_of(const JsonValue& v) {
    std::vector<std::string> keys;
    for (const auto& [k, value] : v.as_object()) keys.push_back(k);
    return keys;
  }
};

TEST_F(ServiceApiTest, Healthz) {
  const auto r = daemon().handle(get("/healthz"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(parse_json(r.body).string_or("status", ""), "ok");
  // The middleware chain stamps every response with a request id.
  EXPECT_TRUE(r.headers.count("x-request-id"));
}

TEST_F(ServiceApiTest, ModelEndpointReturnsBathtubParams) {
  const auto r = daemon().handle(get("/v1/models?type=n1-highcpu-16&zone=us-east1-b"));
  ASSERT_EQ(r.status, 200);
  const JsonValue v = parse_json(r.body);
  EXPECT_GT(v.number_or("A", 0.0), 0.1);
  EXPECT_GT(v.number_or("tau1", 0.0), 0.0);
  EXPECT_NEAR(v.number_or("b", 0.0), 24.0, 3.0);
  EXPECT_GT(v.number_or("expected_lifetime_hours", 0.0), 5.0);
}

TEST_F(ServiceApiTest, ModelEndpointValidatesRegime) {
  EXPECT_EQ(daemon().handle(get("/v1/models?type=quantum-vm")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/models?zone=atlantis-1a")).status, 400);
}

TEST_F(ServiceApiTest, LargerVmsHaveShorterLifetimes) {
  // Observation 4 through the API: compare fitted expected lifetimes.
  const auto small = parse_json(
      daemon().handle(get("/v1/lifetimes?type=n1-highcpu-2&zone=us-central1-c")).body);
  const auto large = parse_json(
      daemon().handle(get("/v1/lifetimes?type=n1-highcpu-32&zone=us-central1-c")).body);
  EXPECT_GT(small.number_or("mean_lifetime_hours", 0.0),
            large.number_or("mean_lifetime_hours", 100.0));
}

TEST_F(ServiceApiTest, ReuseDecisionFlipsNearDeadline) {
  const auto young =
      parse_json(daemon().handle(get("/v1/decisions/reuse?age=8&job=4")).body);
  EXPECT_TRUE(young.bool_or("reuse", false));
  const auto old =
      parse_json(daemon().handle(get("/v1/decisions/reuse?age=21&job=6")).body);
  EXPECT_FALSE(old.bool_or("reuse", true));
}

TEST_F(ServiceApiTest, ReuseDecisionValidatesParameters) {
  EXPECT_EQ(daemon().handle(get("/v1/decisions/reuse?age=1")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/decisions/reuse?age=x&job=2")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/decisions/reuse?age=-1&job=2")).status, 400);
}

TEST_F(ServiceApiTest, PortfolioAllocatesAcrossMarkets) {
  const auto r = daemon().handle(get("/v1/portfolio?jobs=100&risk=0.05"));
  ASSERT_EQ(r.status, 200);
  const JsonValue v = parse_json(r.body);
  EXPECT_EQ(v.number_or("jobs", 0), 100);
  EXPECT_EQ(v.number_or("markets_total", 0), 40);
  EXPECT_GE(v.number_or("markets_used", 0), 3);
  const JsonValue* allocation = v.find("allocation");
  ASSERT_NE(allocation, nullptr);
  ASSERT_TRUE(allocation->is_array());
  double placed = 0.0;
  for (const auto& row : allocation->as_array()) {
    placed += row.number_or("jobs", 0.0);
    EXPECT_LE(row.number_or("failure_probability", 1.0), 0.05);
  }
  EXPECT_DOUBLE_EQ(placed, 100.0);
  // Same request via POST body, same deterministic allocation.
  const auto again =
      daemon().handle(post("/v1/portfolio", R"({"jobs":100,"risk":0.05})"));
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(again.body, r.body);
}

TEST_F(ServiceApiTest, PortfolioValidatesParameters) {
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?jobs=abc")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?risk=0")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/portfolio", "not json")).status, 400);
  // Strict token parse: trailing garbage and non-finite values 400 instead
  // of leaking into the optimizer.
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?risk=nan")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?jobs=50abc")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?job_hours=-5")).status, 400);
}

// ------------------------------------------------------------ async bag jobs

TEST_F(ServiceApiTest, AsyncBagLifecycle) {
  const auto created = daemon().handle(
      post("/v1/bags", R"({"app":"shapes","jobs":20,"vms":8,"seed":7})"));
  ASSERT_EQ(created.status, 202);
  const JsonValue resource = parse_json(created.body);
  const auto id = static_cast<std::uint64_t>(resource.number_or("id", 0));
  ASSERT_GT(id, 0u);
  // 202 resource: queued (or already picked up), never synchronously done
  // with a report — and it tells the client where to poll.
  const std::string status = resource.string_or("status", "");
  EXPECT_TRUE(status == "queued" || status == "running" || status == "done");
  ASSERT_TRUE(created.headers.count("location"));
  EXPECT_EQ(created.headers.at("location"), "/v1/bags/" + std::to_string(id));

  ASSERT_TRUE(daemon().wait_for_bag(id, 120.0));
  const auto fetched = daemon().handle(get("/v1/bags/" + std::to_string(id)));
  ASSERT_EQ(fetched.status, 200);
  const JsonValue job = parse_json(fetched.body);
  EXPECT_EQ(job.string_or("status", ""), "done");
  EXPECT_EQ(job.string_or("app", ""), "shapes");
  const JsonValue* report = job.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->number_or("jobs_completed", 0), 20);
  EXPECT_GT(report->number_or("cost_reduction_factor", 0.0), 2.0);
}

TEST_F(ServiceApiTest, ReplicatedBagReportsConfidenceIntervals) {
  // A bag long enough that replications differ (preemptions are near-certain
  // somewhere in 6 x 8 VM-lifetimes), so the spread statistics are nonzero.
  const auto id =
      run_bag(R"({"app":"nanoconfinement","jobs":40,"vms":8,"seed":5,"replications":6})");
  const JsonValue job =
      parse_json(daemon().handle(get("/v1/bags/" + std::to_string(id))).body);
  EXPECT_EQ(job.number_or("replications", 0), 6);
  const JsonValue* report = job.find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->number_or("replications", 0), 6);
  const JsonValue* metrics = report->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const JsonValue* cost = metrics->find("cost_per_job");
  ASSERT_NE(cost, nullptr);
  EXPECT_GT(cost->number_or("mean", 0.0), 0.0);
  EXPECT_GT(cost->number_or("std_error", -1.0), 0.0);
  EXPECT_GT(cost->number_or("ci95", -1.0), 0.0);
  ASSERT_NE(metrics->find("makespan_hours"), nullptr);
  // The representative report is the first replication: deterministic.
  const auto again =
      run_bag(R"({"app":"nanoconfinement","jobs":40,"vms":8,"seed":5,"replications":6})");
  EXPECT_EQ(
      parse_json(daemon().handle(get("/v1/bags/" + std::to_string(again))).body)
          .find("report")->dump(),
      report->dump());
}

TEST_F(ServiceApiTest, BagListingPaginatesAndFilters) {
  for (int i = 0; i < 3; ++i) {
    run_bag(R"({"app":"lulesh","jobs":4,"vms":8,"seed":)" + std::to_string(100 + i) + "}");
  }
  const JsonValue all = parse_json(daemon().handle(get("/v1/bags")).body);
  const auto total = static_cast<std::size_t>(all.number_or("total", 0));
  EXPECT_GE(total, 3u);

  const JsonValue page =
      parse_json(daemon().handle(get("/v1/bags?status=done&limit=2&offset=1")).body);
  EXPECT_EQ(page.find("jobs")->as_array().size(), 2u);
  EXPECT_EQ(page.number_or("limit", 0), 2);
  EXPECT_EQ(page.number_or("offset", 0), 1);
  for (const auto& job : page.find("jobs")->as_array()) {
    EXPECT_EQ(job.string_or("status", ""), "done");
  }
  // Ids ascend within a page.
  const auto& jobs = page.find("jobs")->as_array();
  EXPECT_LT(jobs[0].number_or("id", 0), jobs[1].number_or("id", 0));

  // An offset past the end yields an empty page with the same total.
  const JsonValue past =
      parse_json(daemon().handle(get("/v1/bags?offset=100000")).body);
  EXPECT_EQ(past.find("jobs")->as_array().size(), 0u);
  EXPECT_GE(past.number_or("total", 0), 3);

  // No queued leftovers once everything we waited on is done.
  EXPECT_EQ(daemon().handle(get("/v1/bags?status=nonsense")).status, 400);
  // Pagination parameters are validated strictly: no prefix parsing, no
  // silent clamping.
  EXPECT_EQ(daemon().handle(get("/v1/bags?limit=5garbage")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/bags?limit=-1")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/bags?limit=999999")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/bags?offset=x")).status, 400);
}

TEST_F(ServiceApiTest, BagValidation) {
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"app":"doom"})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"jobs":0})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"policy":"vibes"})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"replications":0})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"seed":-1})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", R"({"seed":1e300})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/bags", "not json")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/bags/999999")).status, 404);
  EXPECT_EQ(daemon().handle(get("/v1/bags/notanumber")).status, 400);

  // Validation failures carry the clean message, not the PREEMPT_REQUIRE
  // file:line prefix — those are programmer-facing, not 400 bodies.
  const JsonValue bad_jobs = parse_json(daemon().handle(post("/v1/bags", R"({"jobs":0})")).body);
  EXPECT_EQ(bad_jobs.find("error")->string_or("message", ""), "jobs must be in 1..100000");
}

TEST_F(ServiceApiTest, LegacyBagsIgnoreReplicationsField) {
  // The pre-/v1 API ignored unknown body fields, so "replications" — even a
  // value /v1 would reject — must neither 400 nor take effect on the alias.
  const auto created = daemon().handle(
      post("/api/bags", R"({"app":"shapes","jobs":5,"vms":4,"seed":1,"replications":0})"));
  ASSERT_EQ(created.status, 201);
  const JsonValue body = parse_json(created.body);
  EXPECT_EQ(body.number_or("jobs_completed", 0), 5);
  EXPECT_EQ(body.find("metrics"), nullptr);
}

TEST_F(ServiceApiTest, ErrorsUseTheStandardEnvelope) {
  const auto missing = daemon().handle(get("/v1/bags/999999"));
  const JsonValue body = parse_json(missing.body);
  const JsonValue* envelope = body.find("error");
  ASSERT_NE(envelope, nullptr);
  ASSERT_TRUE(envelope->is_object());
  EXPECT_EQ(envelope->string_or("code", ""), "not_found");
  EXPECT_FALSE(envelope->string_or("message", "").empty());
  EXPECT_EQ(parse_json(daemon().handle(get("/nope")).body).find("error")->string_or("code", ""),
            "not_found");
  EXPECT_EQ(parse_json(daemon().handle(post("/healthz", "")).body)
                .find("error")->string_or("code", ""),
            "method_not_allowed");
}

TEST_F(ServiceApiTest, LifetimesFeedDriftMonitors) {
  // Baseline-consistent lifetimes: no drift. (v1 spelling.)
  const auto ok = daemon().handle(post(
      "/v1/observations",
      R"({"lifetimes":[2.5,11.0,23.9,0.7,16.2,8.8,21.5,3.4,23.95,12.1]})"));
  ASSERT_EQ(ok.status, 200);
  const JsonValue v = parse_json(ok.body);
  EXPECT_EQ(v.number_or("observed", 0), 10);
  EXPECT_FALSE(v.bool_or("drift_detected", true));
}

TEST_F(ServiceApiTest, LifetimesValidation) {
  EXPECT_EQ(daemon().handle(post("/v1/observations", R"({"lifetimes":[]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/observations", R"({"lifetimes":[-1]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/observations", R"({"lifetimes":["x"]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/observations", R"({})")).status, 400);
  // A batch with a bad tail is rejected atomically (valid prefix must not
  // reach the drift monitors).
  EXPECT_EQ(daemon().handle(post("/v1/observations", R"({"lifetimes":[5.0,2.0,-1]})")).status,
            400);
  // The legacy alias validates identically.
  EXPECT_EQ(daemon().handle(post("/api/lifetimes", R"({"lifetimes":[]})")).status, 400);
}

TEST_F(ServiceApiTest, RoutingErrors) {
  EXPECT_EQ(daemon().handle(get("/api/unknown")).status, 404);
  EXPECT_EQ(daemon().handle(post("/healthz", "")).status, 405);
  EXPECT_EQ(daemon().handle(post("/v1/models", "")).status, 405);
  EXPECT_EQ(daemon().handle(post("/api/model", "")).status, 405);
  HttpRequest del = get("/v1/bags");
  del.method = "DELETE";
  EXPECT_EQ(daemon().handle(del).status, 405);
}

TEST_F(ServiceApiTest, MetricsReportPerRouteTraffic) {
  daemon().handle(get("/healthz"));
  const auto r = daemon().handle(get("/v1/metrics"));
  ASSERT_EQ(r.status, 200);
  const JsonValue v = parse_json(r.body);
  EXPECT_GT(v.number_or("requests_total", 0.0), 0.0);
  const JsonValue* routes = v.find("routes");
  ASSERT_NE(routes, nullptr);
  bool saw_healthz = false;
  for (const auto& row : routes->as_array()) {
    if (row.string_or("route", "") == "/healthz" && row.string_or("method", "") == "GET") {
      saw_healthz = true;
      EXPECT_GE(row.number_or("requests", 0.0), 1.0);
      EXPECT_GE(row.number_or("mean_latency_ms", -1.0), 0.0);
      EXPECT_GE(row.number_or("max_latency_ms", -1.0), 0.0);
    }
  }
  EXPECT_TRUE(saw_healthz);
}

// ------------------------------------------------- legacy alias compatibility

TEST_F(ServiceApiTest, LegacyAliasesReturnV1Payloads) {
  // Read-only aliases answer byte-identically to their /v1 homes, plus the
  // deprecation pointer.
  const std::pair<const char*, const char*> pairs[] = {
      {"/api/model?type=n1-highcpu-16", "/v1/models?type=n1-highcpu-16"},
      {"/api/lifetime?type=n1-highcpu-4", "/v1/lifetimes?type=n1-highcpu-4"},
      {"/api/decisions/reuse?age=9&job=6", "/v1/decisions/reuse?age=9&job=6"},
  };
  for (const auto& [legacy, v1] : pairs) {
    const auto legacy_response = daemon().handle(get(legacy));
    const auto v1_response = daemon().handle(get(v1));
    ASSERT_EQ(legacy_response.status, 200) << legacy;
    EXPECT_EQ(legacy_response.body, v1_response.body) << legacy;
    ASSERT_TRUE(legacy_response.headers.count("x-deprecated")) << legacy;
    EXPECT_EQ(legacy_response.headers.at("x-deprecated").rfind("use /v1", 0), 0u) << legacy;
    EXPECT_FALSE(v1_response.headers.count("x-deprecated")) << v1;
  }
  // Errored alias responses are decorated too (exceptions translate inside
  // the middleware chain).
  const auto bad = daemon().handle(post("/api/bags", R"({"policy":"vibes"})"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_TRUE(bad.headers.count("x-deprecated"));
}

TEST_F(ServiceApiTest, LegacyBagFlowKeepsPayloadShape) {
  // The synchronous legacy submission still answers 201 with the frozen
  // report schema — exact keys in the exact order.
  const auto created = daemon().handle(
      post("/api/bags", R"({"app":"lulesh","jobs":10,"vms":8,"seed":3})"));
  ASSERT_EQ(created.status, 201);
  const JsonValue report = parse_json(created.body);
  const std::vector<std::string> expected_keys{
      "id",           "app",         "jobs_completed",
      "makespan_hours", "increase_fraction", "cost_per_job",
      "on_demand_cost_per_job", "cost_reduction_factor", "preemptions",
      "preemptions_total", "vms_launched", "wasted_hours"};
  EXPECT_EQ(keys_of(report), expected_keys);
  EXPECT_EQ(report.number_or("jobs_completed", 0), 10);
  const auto id = static_cast<std::uint64_t>(report.number_or("id", 0));
  ASSERT_GT(id, 0u);

  // GET /api/bags/{id} re-serves the identical legacy payload.
  const auto fetched = daemon().handle(get("/api/bags/" + std::to_string(id)));
  ASSERT_EQ(fetched.status, 200);
  EXPECT_EQ(fetched.body, created.body);

  // GET /api/bags summarises with the frozen key set.
  const auto listed = daemon().handle(get("/api/bags"));
  ASSERT_EQ(listed.status, 200);
  const JsonValue bags = parse_json(listed.body);
  ASSERT_NE(bags.find("bags"), nullptr);
  ASSERT_GE(bags.find("bags")->as_array().size(), 1u);
  EXPECT_EQ(keys_of(bags.find("bags")->as_array().front()),
            (std::vector<std::string>{"id", "app", "jobs_completed", "cost_reduction_factor"}));

  EXPECT_EQ(daemon().handle(get("/api/bags/999999")).status, 404);
  EXPECT_EQ(daemon().handle(get("/api/bags/notanumber")).status, 400);
}

TEST_F(ServiceApiTest, LegacyAndV1BagsAgreeNumerically) {
  // The same spec through both generations produces the same simulation.
  const auto legacy = parse_json(daemon().handle(
      post("/api/bags", R"({"app":"shapes","jobs":12,"vms":8,"seed":99})")).body);
  const auto id = run_bag(R"({"app":"shapes","jobs":12,"vms":8,"seed":99})");
  const JsonValue job =
      parse_json(daemon().handle(get("/v1/bags/" + std::to_string(id))).body);
  const JsonValue* report = job.find("report");
  ASSERT_NE(report, nullptr);
  for (const char* field : {"jobs_completed", "makespan_hours", "cost_per_job",
                            "preemptions", "vms_launched", "wasted_hours"}) {
    EXPECT_DOUBLE_EQ(report->number_or(field, -1.0), legacy.number_or(field, -2.0)) << field;
  }
}

// ---------------------------------------------------------------- end to end

TEST_F(ServiceApiTest, EndToEndOverSockets) {
  // The same daemon served over a real socket: drive the async v1 flow with
  // the typed client and the legacy flow with curl-like calls.
  daemon().start(0);
  const std::uint16_t port = daemon().port();
  ASSERT_GT(port, 0);

  const ApiClient client(port);
  EXPECT_TRUE(client.healthy());
  EXPECT_GT(client.model({.type = "n1-highcpu-16"}).expected_lifetime_hours, 0.0);

  BagSubmission submission;
  submission.app = "lulesh";
  submission.jobs = 10;
  submission.vms = 8;
  submission.seed = 3;
  const BagJobInfo queued = client.submit_bag(submission);
  const BagJobInfo done = client.wait_for_bag(queued.id, 120.0);
  EXPECT_EQ(done.status, "done");
  ASSERT_TRUE(done.report.has_value());
  EXPECT_EQ(done.report->jobs_completed, 10u);
  EXPECT_GE(client.list_bags("done").total, 1u);

  // Typed errors carry the envelope.
  try {
    client.bag(999999);
    FAIL() << "expected ApiError";
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 404);
    EXPECT_EQ(e.code(), "not_found");
  }

  // Legacy flow over the same socket.
  const auto legacy =
      http_post(port, "/api/bags", R"({"app":"lulesh","jobs":10,"vms":8,"seed":3})");
  ASSERT_EQ(legacy.status, 201);
  const auto id = static_cast<std::uint64_t>(parse_json(legacy.body).number_or("id", 0));
  const auto round = http_get(port, "/api/bags/" + std::to_string(id));
  EXPECT_EQ(round.status, 200);
  EXPECT_EQ(parse_json(round.body).string_or("app", ""), "lulesh");

  daemon().stop();
}

TEST_F(ServiceApiTest, ScenariosListAndShow) {
  const auto list = daemon().handle(get("/v1/scenarios"));
  ASSERT_EQ(list.status, 200);
  const JsonValue v = parse_json(list.body);
  EXPECT_GE(v.number_or("total", 0), 8.0);
  bool found_quick = false;
  for (const JsonValue& row : v.find("scenarios")->as_array()) {
    if (row.string_or("name", "") == "paper-fig09-quick") found_quick = true;
  }
  EXPECT_TRUE(found_quick);

  const auto show = daemon().handle(get("/v1/scenarios/paper-fig09a-cost"));
  ASSERT_EQ(show.status, 200);
  const JsonValue detail = parse_json(show.body);
  EXPECT_EQ(detail.number_or("cells", 0), 3.0);
  const JsonValue* sweep = detail.find("sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->find("base")->string_or("kind", ""), "service");

  EXPECT_EQ(daemon().handle(get("/v1/scenarios/unknown-scenario")).status, 404);
}

TEST_F(ServiceApiTest, ScenarioRunValidatesOverridesWith400s) {
  // Unknown scenario name.
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/nope/run", "{}")).status, 404);
  // Unknown override field.
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/paper-fig09-quick/run", R"({"warp":9})")).status,
            400);
  // Override of another kind's field.
  EXPECT_EQ(daemon()
                .handle(post("/v1/scenarios/paper-fig09-quick/run", R"({"scheduler":"dp"})"))
                .status,
            400);
  // The scenario's identity cannot be overridden (regardless of key order).
  EXPECT_EQ(daemon()
                .handle(post("/v1/scenarios/paper-fig09-quick/run",
                             R"({"kind":"checkpoint","job_hours":2})"))
                .status,
            400);
  EXPECT_EQ(daemon()
                .handle(post("/v1/scenarios/paper-fig09-quick/run", R"({"name":"alias"})"))
                .status,
            400);
  // Fields swept by the scenario's own axes reject instead of being
  // silently clobbered by expansion.
  const auto swept = daemon().handle(post("/v1/scenarios/paper-fig09a-cost/run",
                                          R"({"app":"lulesh"})"));
  EXPECT_EQ(swept.status, 400);
  EXPECT_NE(parse_json(swept.body).find("error")->string_or("message", "").find("axes"),
            std::string::npos);
  // Out-of-range override caught by cell validation before queueing.
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/paper-fig09-quick/run", R"({"jobs":0})")).status,
            400);
  const auto bad = daemon().handle(post("/v1/scenarios/paper-fig09-quick/run",
                                        R"({"replications":-1})"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_EQ(parse_json(bad.body).find("error")->string_or("code", ""), "invalid_argument");
}

TEST_F(ServiceApiTest, ScenarioRunExecutesOnTheJobQueue) {
  const auto created = daemon().handle(
      post("/v1/scenarios/paper-fig09-quick/run", R"({"replications":2,"jobs":5})"));
  ASSERT_EQ(created.status, 202);
  const JsonValue queued = parse_json(created.body);
  EXPECT_EQ(queued.string_or("scenario", ""), "paper-fig09-quick");
  const auto id = static_cast<std::uint64_t>(queued.number_or("id", 0));
  ASSERT_GT(id, 0u);
  EXPECT_EQ(created.headers.at("location"), "/v1/bags/" + std::to_string(id));
  ASSERT_TRUE(daemon().wait_for_bag(id, 120.0));

  const auto fetched = daemon().handle(get("/v1/bags/" + std::to_string(id)));
  ASSERT_EQ(fetched.status, 200);
  const JsonValue job = parse_json(fetched.body);
  EXPECT_EQ(job.string_or("status", ""), "done");
  EXPECT_EQ(job.string_or("kind", ""), "service");
  const JsonValue* result = job.find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* report = result->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->number_or("jobs_completed", 0), 5.0);
  EXPECT_GT(result->find("metrics")->find("cost_per_job")->number_or("mean", 0), 0.0);
  // Single service cells also expose the familiar top-level report block,
  // so bag-polling clients see the usual shape.
  const JsonValue* top_report = job.find("report");
  ASSERT_NE(top_report, nullptr);
  EXPECT_EQ(top_report->number_or("jobs_completed", 0), 5.0);
  EXPECT_GT(top_report->find("metrics")->find("cost_per_job")->number_or("mean", 0), 0.0);
}

TEST_F(ServiceApiTest, ScenarioSweepRunsAllCellsInOneJob) {
  // Shrink the Fig. 9a sweep for test time: 5-job bags on 4 VMs, 3 cells.
  const auto created = daemon().handle(
      post("/v1/scenarios/paper-fig09a-cost/run", R"({"jobs":5,"vms":4})"));
  ASSERT_EQ(created.status, 202);
  const JsonValue queued = parse_json(created.body);
  EXPECT_EQ(queued.number_or("cells", 0), 3.0);
  const auto id = static_cast<std::uint64_t>(queued.number_or("id", 0));
  ASSERT_TRUE(daemon().wait_for_bag(id, 120.0));
  const JsonValue job = parse_json(daemon().handle(get("/v1/bags/" + std::to_string(id))).body);
  ASSERT_EQ(job.string_or("status", ""), "done");
  const JsonValue* cells = job.find("result")->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->as_array().size(), 3u);
  EXPECT_NE(cells->as_array()[1].string_or("name", "").find("app=shapes"), std::string::npos);
}

/// A small valid service cell for the shard-dispatch endpoint tests.
std::string cell_json(const std::string& name, std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.name = name;
  spec.app = "shapes";
  spec.jobs = 5;
  spec.cluster_size = 4;
  spec.seed = seed;
  return scenario::to_json(spec).dump();
}

TEST_F(ServiceApiTest, RunCellsValidatesTheDispatchBody) {
  // Missing / malformed "cells".
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/run", "{}")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/run", R"({"cells":[]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/scenarios/run", R"({"cells":42})")).status, 400);
  // Unknown top-level field and bad label.
  EXPECT_EQ(daemon()
                .handle(post("/v1/scenarios/run",
                             R"({"cells":[)" + cell_json("c", 1) + R"(],"nope":1})"))
                .status,
            400);
  EXPECT_EQ(daemon()
                .handle(post("/v1/scenarios/run",
                             R"({"cells":[)" + cell_json("c", 1) + R"(],"label":""})"))
                .status,
            400);
  // A bad cell fails the request up front, not the job later.
  const auto bad_cell = daemon().handle(
      post("/v1/scenarios/run", R"({"cells":[{"kind":"service","nope":true}]})"));
  EXPECT_EQ(bad_cell.status, 400);
  EXPECT_NE(parse_json(bad_cell.body).find("error")->string_or("message", "").find("nope"),
            std::string::npos);
}

TEST_F(ServiceApiTest, RunCellsExecutesAnExplicitCellList) {
  const std::string body = R"({"cells":[)" + cell_json("cell-a", 7) + "," +
                           cell_json("cell-b", 8) + R"(],"label":"shard-1/2"})";
  const auto created = daemon().handle(post("/v1/scenarios/run", body));
  ASSERT_EQ(created.status, 202);
  const JsonValue queued = parse_json(created.body);
  EXPECT_EQ(queued.string_or("scenario", ""), "shard-1/2");
  EXPECT_EQ(queued.number_or("cells", 0), 2.0);
  const auto id = static_cast<std::uint64_t>(queued.number_or("id", 0));
  ASSERT_GT(id, 0u);
  EXPECT_EQ(created.headers.at("location"), "/v1/bags/" + std::to_string(id));
  ASSERT_TRUE(daemon().wait_for_bag(id, 120.0));

  const JsonValue job = parse_json(daemon().handle(get("/v1/bags/" + std::to_string(id))).body);
  ASSERT_EQ(job.string_or("status", ""), "done");
  const JsonValue* cells = job.find("result")->find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->as_array().size(), 2u);
  // Dispatch order is preserved and each row carries the sweep-report shape.
  EXPECT_EQ(cells->as_array()[0].string_or("name", ""), "cell-a");
  EXPECT_EQ(cells->as_array()[1].string_or("name", ""), "cell-b");
  EXPECT_NE(cells->as_array()[0].find("spec"), nullptr);
  const JsonValue* report = cells->as_array()[0].find("result")->find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->number_or("jobs_completed", 0), 5.0);
}

TEST_F(ServiceApiTest, MetricsExportShardCoordinatorCounters) {
  shard::ShardMetricsRegistry::instance().reset();
  shard::ShardMetricsRegistry::instance().record_dispatch("127.0.0.1:19999");
  shard::ShardMetricsRegistry::instance().record_completion("127.0.0.1:19999", 0.25);

  const JsonValue metrics = parse_json(daemon().handle(get("/v1/metrics")).body);
  const JsonValue* block = metrics.find("shard");
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->number_or("shards_dispatched", 0), 1.0);
  EXPECT_EQ(block->number_or("shards_completed", 0), 1.0);
  const JsonValue& worker = block->find("workers")->as_array().at(0);
  EXPECT_EQ(worker.string_or("endpoint", ""), "127.0.0.1:19999");
  EXPECT_EQ(worker.number_or("p50_latency_seconds", 0), 0.25);

  const auto prom = daemon().handle(get("/v1/metrics?format=prometheus"));
  ASSERT_EQ(prom.status, 200);
  EXPECT_NE(prom.body.find("# TYPE preempt_shard_dispatched_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("preempt_shard_dispatched_total{worker=\"127.0.0.1:19999\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.body.find("preempt_shard_latency_seconds{worker=\"127.0.0.1:19999\","
                           "quantile=\"0.5\"} 0.25"),
            std::string::npos);
  shard::ShardMetricsRegistry::instance().reset();
}

TEST_F(ServiceApiTest, MetricsPrometheusExposition) {
  daemon().handle(get("/healthz"));  // ensure at least one counted request
  const auto r = daemon().handle(get("/v1/metrics?format=prometheus"));
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.headers.at("content-type").find("text/plain"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE preempt_http_requests_total counter"), std::string::npos);
  EXPECT_NE(r.body.find("preempt_http_requests_total{method=\"GET\",route=\"/healthz\"}"),
            std::string::npos);
  EXPECT_NE(r.body.find("# TYPE preempt_http_request_duration_ms_mean gauge"),
            std::string::npos);
  // JSON stays the default; unknown formats reject.
  EXPECT_TRUE(parse_json(daemon().handle(get("/v1/metrics")).body).is_object());
  EXPECT_EQ(daemon().handle(get("/v1/metrics?format=xml")).status, 400);
}

TEST_F(ServiceApiTest, EvictedBagJobsAnswer404WithEvictionMessage) {
  // A dedicated daemon with a 2-record finished-job store.
  ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 12;
  options.bag_workers = 1;
  options.max_finished_jobs = 2;
  ServiceDaemon small(options);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    const auto created =
        small.handle(post("/v1/bags", R"({"app":"shapes","jobs":2,"vms":2,"seed":1})"));
    ASSERT_EQ(created.status, 202);
    const auto id = static_cast<std::uint64_t>(parse_json(created.body).number_or("id", 0));
    ASSERT_TRUE(small.wait_for_bag(id, 120.0));
    ids.push_back(id);
  }
  const auto evicted = small.handle(get("/v1/bags/" + std::to_string(ids[0])));
  EXPECT_EQ(evicted.status, 404);
  const JsonValue error = *parse_json(evicted.body).find("error");
  EXPECT_EQ(error.string_or("code", ""), "evicted");
  EXPECT_NE(error.string_or("message", "").find("max-finished-jobs"), std::string::npos);
  // Retained jobs still resolve; never-assigned ids stay plain not_found.
  EXPECT_EQ(small.handle(get("/v1/bags/" + std::to_string(ids[2]))).status, 200);
  const auto unknown = small.handle(get("/v1/bags/999"));
  EXPECT_EQ(unknown.status, 404);
  EXPECT_EQ(parse_json(unknown.body).find("error")->string_or("code", ""), "not_found");
}

TEST_F(ServiceApiTest, SubmissionSnapshotSurvivesImmediateEviction) {
  // Regression pin for the 202 path's eviction race: post_bag_async and
  // run_scenario build the 202 body from a local snapshot taken at submit
  // time, never by re-reading the store — so even when the 1-record store
  // evicts the job before the handler returns, the 202 body stays complete.
  ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 12;
  options.bag_workers = 2;
  options.max_finished_jobs = 1;  // eviction pressure on every completion
  ServiceDaemon racy(options);
  for (int i = 0; i < 6; ++i) {
    const auto created =
        racy.handle(post("/v1/bags", R"({"app":"shapes","jobs":2,"vms":2,"seed":3})"));
    ASSERT_EQ(created.status, 202) << created.body;
    const JsonValue body = parse_json(created.body);
    EXPECT_GT(body.number_or("id", 0), 0.0) << created.body;
    const std::string status = body.string_or("status", "");
    EXPECT_TRUE(status == "queued" || status == "running" || status == "done") << status;
    EXPECT_TRUE(created.headers.count("location"));
  }
  const auto scenario =
      racy.handle(post("/v1/scenarios/paper-fig09-quick/run", R"({"replications":1})"));
  ASSERT_EQ(scenario.status, 202) << scenario.body;
  const JsonValue snap = parse_json(scenario.body);
  EXPECT_GT(snap.number_or("id", 0), 0.0);
  EXPECT_EQ(snap.string_or("scenario", ""), "paper-fig09-quick");
  const auto id = static_cast<std::uint64_t>(snap.number_or("id", 0));
  // And wait() on an id the store may have already evicted returns true
  // (terminal) instead of timing out as "unknown".
  EXPECT_TRUE(racy.wait_for_bag(id, 120.0));
  for (std::uint64_t evictable = 1; evictable < id; ++evictable) {
    EXPECT_TRUE(racy.wait_for_bag(evictable, 120.0)) << evictable;
  }
}

TEST_F(ServiceApiTest, StoreBackedDaemonSurvivesKillAndRestart) {
  // The tentpole acceptance test: run a bag on a store-backed daemon, tear
  // the daemon down completely, start a fresh one on the same journal, and
  // read the finished report back through GET /v1/bags/{id}.
  const std::string store = "test_service_restart.jsonl";
  std::remove(store.c_str());
  ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 12;
  options.bag_workers = 1;
  options.store_path = store;

  std::uint64_t id = 0;
  double cost_per_job = 0.0;
  {
    ServiceDaemon first(options);
    const auto created =
        first.handle(post("/v1/bags", R"({"app":"shapes","jobs":4,"vms":8,"seed":11})"));
    ASSERT_EQ(created.status, 202);
    id = static_cast<std::uint64_t>(parse_json(created.body).number_or("id", 0));
    ASSERT_TRUE(first.wait_for_bag(id, 120.0));
    const auto done = first.handle(get("/v1/bags/" + std::to_string(id)));
    ASSERT_EQ(done.status, 200);
    const JsonValue done_body = parse_json(done.body);
    const JsonValue* report = done_body.find("report");
    ASSERT_NE(report, nullptr) << done.body;
    cost_per_job = report->number_or("cost_per_job", 0.0);
    EXPECT_GT(cost_per_job, 0.0);
  }  // daemon destroyed — like a kill, the journal is the only copy

  {
    ServiceDaemon second(options);  // replays the journal on construction
    const auto resurrected = second.handle(get("/v1/bags/" + std::to_string(id)));
    ASSERT_EQ(resurrected.status, 200);
    const JsonValue body = parse_json(resurrected.body);
    EXPECT_EQ(body.string_or("status", ""), "done");
    const JsonValue* report = body.find("report");
    ASSERT_NE(report, nullptr);
    EXPECT_DOUBLE_EQ(report->number_or("cost_per_job", 0.0), cost_per_job);
    // The listing sees it too, and new ids continue past the replayed one.
    const auto listed = second.handle(get("/v1/bags?status=done"));
    EXPECT_GE(parse_json(listed.body).number_or("total", 0), 1.0);
    const auto fresh =
        second.handle(post("/v1/bags", R"({"app":"shapes","jobs":2,"vms":8})"));
    ASSERT_EQ(fresh.status, 202);
    EXPECT_GT(parse_json(fresh.body).number_or("id", 0), static_cast<double>(id));
    ASSERT_TRUE(second.wait_for_bag(
        static_cast<std::uint64_t>(parse_json(fresh.body).number_or("id", 0)), 120.0));
  }
  std::remove(store.c_str());
  std::remove((store + ".tmp").c_str());
}

}  // namespace
}  // namespace preempt::api
