// The batch-service HTTP API daemon: routing, payload validation, and an
// end-to-end session over live loopback sockets.
#include "api/service_daemon.hpp"

#include <gtest/gtest.h>

#include "api/http_client.hpp"
#include "common/json.hpp"

namespace preempt::api {
namespace {

/// One daemon shared by the suite: the bootstrap study fit is the expensive
/// part (~seconds), and handle() is thread-safe and stateless across most
/// endpoints.
class ServiceApiTest : public ::testing::Test {
 protected:
  static ServiceDaemon& daemon() {
    static ServiceDaemon instance = [] {
      ServiceDaemon::Options options;
      options.bootstrap_vms_per_cell = 30;  // keep the fixture fast
      return ServiceDaemon(options);
    }();
    return instance;
  }

  static HttpRequest get(const std::string& target) {
    HttpRequest r;
    r.method = "GET";
    r.target = target;
    r.version = "HTTP/1.1";
    return r;
  }

  static HttpRequest post(const std::string& target, const std::string& body) {
    HttpRequest r = get(target);
    r.method = "POST";
    r.body = body;
    return r;
  }
};

TEST_F(ServiceApiTest, Healthz) {
  const auto r = daemon().handle(get("/healthz"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(parse_json(r.body).string_or("status", ""), "ok");
}

TEST_F(ServiceApiTest, ModelEndpointReturnsBathtubParams) {
  const auto r = daemon().handle(get("/api/model?type=n1-highcpu-16&zone=us-east1-b"));
  ASSERT_EQ(r.status, 200);
  const JsonValue v = parse_json(r.body);
  EXPECT_GT(v.number_or("A", 0.0), 0.1);
  EXPECT_GT(v.number_or("tau1", 0.0), 0.0);
  EXPECT_NEAR(v.number_or("b", 0.0), 24.0, 3.0);
  EXPECT_GT(v.number_or("expected_lifetime_hours", 0.0), 5.0);
}

TEST_F(ServiceApiTest, ModelEndpointValidatesRegime) {
  EXPECT_EQ(daemon().handle(get("/api/model?type=quantum-vm")).status, 400);
  EXPECT_EQ(daemon().handle(get("/api/model?zone=atlantis-1a")).status, 400);
}

TEST_F(ServiceApiTest, LargerVmsHaveShorterLifetimes) {
  // Observation 4 through the API: compare fitted expected lifetimes.
  const auto small = parse_json(
      daemon().handle(get("/api/lifetime?type=n1-highcpu-2&zone=us-central1-c")).body);
  const auto large = parse_json(
      daemon().handle(get("/api/lifetime?type=n1-highcpu-32&zone=us-central1-c")).body);
  EXPECT_GT(small.number_or("mean_lifetime_hours", 0.0),
            large.number_or("mean_lifetime_hours", 100.0));
}

TEST_F(ServiceApiTest, ReuseDecisionFlipsNearDeadline) {
  const auto young =
      parse_json(daemon().handle(get("/api/decisions/reuse?age=8&job=4")).body);
  EXPECT_TRUE(young.bool_or("reuse", false));
  const auto old =
      parse_json(daemon().handle(get("/api/decisions/reuse?age=21&job=6")).body);
  EXPECT_FALSE(old.bool_or("reuse", true));
}

TEST_F(ServiceApiTest, ReuseDecisionValidatesParameters) {
  EXPECT_EQ(daemon().handle(get("/api/decisions/reuse?age=1")).status, 400);
  EXPECT_EQ(daemon().handle(get("/api/decisions/reuse?age=x&job=2")).status, 400);
  EXPECT_EQ(daemon().handle(get("/api/decisions/reuse?age=-1&job=2")).status, 400);
}

TEST_F(ServiceApiTest, PortfolioAllocatesAcrossMarkets) {
  const auto r = daemon().handle(get("/v1/portfolio?jobs=100&risk=0.05"));
  ASSERT_EQ(r.status, 200);
  const JsonValue v = parse_json(r.body);
  EXPECT_EQ(v.number_or("jobs", 0), 100);
  EXPECT_EQ(v.number_or("markets_total", 0), 40);
  EXPECT_GE(v.number_or("markets_used", 0), 3);
  const JsonValue* allocation = v.find("allocation");
  ASSERT_NE(allocation, nullptr);
  ASSERT_TRUE(allocation->is_array());
  double placed = 0.0;
  for (const auto& row : allocation->as_array()) {
    placed += row.number_or("jobs", 0.0);
    EXPECT_LE(row.number_or("failure_probability", 1.0), 0.05);
  }
  EXPECT_DOUBLE_EQ(placed, 100.0);
  // Same request via POST body, same deterministic allocation.
  const auto again =
      daemon().handle(post("/v1/portfolio", R"({"jobs":100,"risk":0.05})"));
  ASSERT_EQ(again.status, 200);
  EXPECT_EQ(again.body, r.body);
}

TEST_F(ServiceApiTest, PortfolioValidatesParameters) {
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?jobs=abc")).status, 400);
  EXPECT_EQ(daemon().handle(get("/v1/portfolio?risk=0")).status, 400);
  EXPECT_EQ(daemon().handle(post("/v1/portfolio", "not json")).status, 400);
}

TEST_F(ServiceApiTest, BagLifecycle) {
  const auto created = daemon().handle(
      post("/api/bags", R"({"app":"shapes","jobs":20,"vms":8,"seed":7})"));
  ASSERT_EQ(created.status, 201);
  const JsonValue report = parse_json(created.body);
  const auto id = static_cast<std::uint64_t>(report.number_or("id", 0));
  ASSERT_GT(id, 0u);
  EXPECT_EQ(report.number_or("jobs_completed", 0), 20);
  EXPECT_GT(report.number_or("cost_reduction_factor", 0.0), 2.0);

  const auto fetched = daemon().handle(get("/api/bags/" + std::to_string(id)));
  ASSERT_EQ(fetched.status, 200);
  EXPECT_EQ(parse_json(fetched.body).number_or("id", 0), static_cast<double>(id));

  const auto listed = daemon().handle(get("/api/bags"));
  ASSERT_EQ(listed.status, 200);
  EXPECT_GE(parse_json(listed.body).find("bags")->as_array().size(), 1u);
}

TEST_F(ServiceApiTest, BagValidation) {
  EXPECT_EQ(daemon().handle(post("/api/bags", R"({"app":"doom"})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/bags", R"({"jobs":0})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/bags", R"({"policy":"vibes"})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/bags", "not json")).status, 400);
  EXPECT_EQ(daemon().handle(get("/api/bags/999999")).status, 404);
  EXPECT_EQ(daemon().handle(get("/api/bags/notanumber")).status, 400);
}

TEST_F(ServiceApiTest, LifetimesFeedDriftMonitors) {
  // Baseline-consistent lifetimes: no drift.
  const auto ok = daemon().handle(post(
      "/api/lifetimes", R"({"lifetimes":[2.5,11.0,23.9,0.7,16.2,8.8,21.5,3.4,23.95,12.1]})"));
  ASSERT_EQ(ok.status, 200);
  const JsonValue v = parse_json(ok.body);
  EXPECT_EQ(v.number_or("observed", 0), 10);
  EXPECT_FALSE(v.bool_or("drift_detected", true));
}

TEST_F(ServiceApiTest, LifetimesValidation) {
  EXPECT_EQ(daemon().handle(post("/api/lifetimes", R"({"lifetimes":[]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/lifetimes", R"({"lifetimes":[-1]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/lifetimes", R"({"lifetimes":["x"]})")).status, 400);
  EXPECT_EQ(daemon().handle(post("/api/lifetimes", R"({})")).status, 400);
}

TEST_F(ServiceApiTest, RoutingErrors) {
  EXPECT_EQ(daemon().handle(get("/api/unknown")).status, 404);
  EXPECT_EQ(daemon().handle(post("/healthz", "")).status, 405);
  EXPECT_EQ(daemon().handle(post("/api/model", "")).status, 405);
  HttpRequest del = get("/api/bags");
  del.method = "DELETE";
  EXPECT_EQ(daemon().handle(del).status, 405);
}

TEST_F(ServiceApiTest, EndToEndOverSockets) {
  // The same daemon served over a real socket: submit a bag with curl-like
  // calls and read it back.
  daemon().start(0);
  const std::uint16_t port = daemon().port();
  ASSERT_GT(port, 0);

  EXPECT_EQ(http_get(port, "/healthz").status, 200);
  const auto created =
      http_post(port, "/api/bags", R"({"app":"lulesh","jobs":10,"vms":8,"seed":3})");
  ASSERT_EQ(created.status, 201);
  const auto id = static_cast<std::uint64_t>(parse_json(created.body).number_or("id", 0));
  const auto round = http_get(port, "/api/bags/" + std::to_string(id));
  EXPECT_EQ(round.status, 200);
  EXPECT_EQ(parse_json(round.body).string_or("app", ""), "lulesh");

  daemon().stop();
}

}  // namespace
}  // namespace preempt::api
