// Tests of the Sec. 4.3 checkpointing machinery: Young-Daly baseline, the
// fixed-plan evaluator, and the DP scheduler (Eqs. 9-13), including
// optimality against brute-force enumeration on small instances.
#include "policy/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "dist/exponential.hpp"
#include "dist/uniform.hpp"
#include "test_util.hpp"

namespace preempt::policy {
namespace {

using preempt::testing::reference_bathtub;

constexpr double kMinute = 1.0 / 60.0;

TEST(YoungDaly, IntervalFormula) {
  // tau = sqrt(2 * delta * MTTF); delta = 1 min, MTTF = 1 h -> ~10.95 min.
  const double tau = young_daly_interval(1.0, kMinute);
  EXPECT_NEAR(tau, std::sqrt(2.0 / 60.0), 1e-12);
  EXPECT_NEAR(tau * 60.0, 10.95, 0.01);
}

TEST(YoungDaly, PlanCoversJobExactly) {
  const CheckpointPlan plan = young_daly_plan(4.0, 1.0, kMinute);
  double total = 0.0;
  for (double w : plan.work_segments_hours) total += w;
  EXPECT_NEAR(total, 4.0, 1e-9);
  // All but the last segment equal the YD interval.
  const double tau = young_daly_interval(1.0, kMinute);
  for (std::size_t i = 0; i + 1 < plan.work_segments_hours.size(); ++i) {
    EXPECT_NEAR(plan.work_segments_hours[i], tau, 1e-12);
  }
  EXPECT_EQ(plan.checkpoint_count(), plan.work_segments_hours.size() - 1);
}

TEST(YoungDaly, ShortJobGetsSingleSegment) {
  const CheckpointPlan plan = young_daly_plan(0.05, 1.0, kMinute);
  EXPECT_EQ(plan.work_segments_hours.size(), 1u);
}

TEST(NoCheckpointPlan, SingleSegment) {
  const CheckpointPlan plan = no_checkpoint_plan(3.0, kMinute);
  ASSERT_EQ(plan.work_segments_hours.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.job_hours(), 3.0);
  EXPECT_EQ(plan.checkpoint_count(), 0u);
}

TEST(EvaluatePlan, UniformNoCheckpointClosedForm) {
  // Under Uniform(24) with FreshVm restarts and conditional lost work, a
  // single D-hour segment satisfies M = D + q D / (2p) with q = D/L:
  // D = 6 -> M = 7.
  const dist::UniformLifetime u(24.0);
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  cfg.step_hours = kMinute;
  const double m = evaluate_plan(u, no_checkpoint_plan(6.0, kMinute), 0.0, cfg);
  EXPECT_NEAR(m, 7.0, 0.01);
}

TEST(EvaluatePlan, LongerJobsCostSuperlinearlyWithoutCheckpoints) {
  const dist::UniformLifetime u(24.0);
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  const double m6 = evaluate_plan(u, no_checkpoint_plan(6.0, kMinute), 0.0, cfg);
  const double m12 = evaluate_plan(u, no_checkpoint_plan(12.0, kMinute), 0.0, cfg);
  EXPECT_GT(m12, 2.0 * m6);
}

TEST(EvaluatePlan, CheckpointingHelpsLongJobsUnderBathtub) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  const double none = evaluate_plan(d, no_checkpoint_plan(6.0, kMinute), 0.0, cfg);
  const double yd = evaluate_plan(d, young_daly_plan(6.0, 1.0, kMinute), 0.0, cfg);
  EXPECT_LT(yd, none);
}

TEST(EvaluatePlan, StartAgeMatters) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  const CheckpointPlan plan = young_daly_plan(2.0, 1.0, kMinute);
  const double stable = evaluate_plan(d, plan, 8.0, cfg);
  const double fresh = evaluate_plan(d, plan, 0.0, cfg);
  EXPECT_LT(stable, fresh);  // stable-phase starts see fewer failures
}

TEST(CheckpointDp, ScheduleSumsToJobLength) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  const CheckpointDp dp(d, 5.0, cfg);
  const auto schedule = dp.schedule(0.0);
  const double total = std::accumulate(schedule.begin(), schedule.end(), 0.0);
  EXPECT_NEAR(total, 5.0, 1e-9);
  EXPECT_GE(schedule.size(), 2u);  // a 5 h job on a fresh VM must checkpoint
}

TEST(CheckpointDp, IntervalsGrowOutOfTheInfantPhase) {
  // Sec. 4.3: "(15, 28, 38, 59, 128) minutes" — intervals grow as the VM
  // leaves the infant phase. Require monotone growth of the first few
  // intervals and a clearly larger final interval.
  const auto d = reference_bathtub();
  const CheckpointDp dp(d, 5.0, {});
  const auto schedule = dp.schedule(0.0);
  ASSERT_GE(schedule.size(), 3u);
  EXPECT_LT(schedule.front(), schedule.back());
  for (std::size_t i = 0; i + 1 < std::min<std::size_t>(schedule.size(), 4); ++i) {
    EXPECT_LE(schedule[i], schedule[i + 1] + 1e-9) << "interval " << i;
  }
  // First checkpoint lands early (paper: 15 min) — allow a broad band.
  EXPECT_LT(schedule.front(), 1.0);
  EXPECT_GT(schedule.front(), 2.0 * kMinute);
}

TEST(CheckpointDp, ExpectedMakespanAtLeastJobLength) {
  const auto d = reference_bathtub();
  const CheckpointDp dp(d, 3.0, {});
  for (double age : {0.0, 6.0, 12.0, 18.0}) {
    EXPECT_GE(dp.expected_makespan(age), 3.0 - 1e-9) << "age=" << age;
  }
}

TEST(CheckpointDp, StablePhaseStartIsCheapest) {
  // Fig. 8a: the expected increase is bathtub-shaped in the start age, lowest
  // mid-life.
  const auto d = reference_bathtub();
  const CheckpointDp dp(d, 4.0, {});
  const double at0 = dp.expected_increase_fraction(0.0);
  const double at8 = dp.expected_increase_fraction(8.0);
  const double at16 = dp.expected_increase_fraction(16.0);
  EXPECT_LT(at8, at0);
  EXPECT_LT(at8, at16);
  EXPECT_LT(at8, 0.05);  // "around 1%" mid-life; allow < 5%
}

TEST(CheckpointDp, BeatsYoungDalyUnderBathtub) {
  // Fig. 8a/8b: the DP schedule's expected increase stays below Young-Daly
  // with MTTF = 1 h across start ages.
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  const CheckpointDp dp(d, 4.0, cfg);
  const CheckpointPlan yd = young_daly_plan(4.0, 1.0, kMinute);
  for (double age : {0.0, 4.0, 8.0, 12.0}) {
    const double ours = dp.expected_makespan(age);
    const double theirs = evaluate_plan(d, yd, age, cfg);
    EXPECT_LE(ours, theirs + 1e-6) << "age=" << age;
  }
}

TEST(CheckpointDp, BeatsNoCheckpointing) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  const CheckpointDp dp(d, 6.0, cfg);
  const double none = evaluate_plan(d, no_checkpoint_plan(6.0, kMinute), 0.0, cfg);
  EXPECT_LT(dp.expected_makespan(0.0), none);
}

TEST(CheckpointDp, OptimalVersusBruteForceEnumeration) {
  // Small instance: J = 6 steps of 30 min under Uniform(24), delta = 1 step.
  // Enumerate all 2^5 static checkpoint placements and compare.
  const dist::UniformLifetime u(24.0);
  CheckpointConfig cfg;
  cfg.step_hours = 0.5;
  cfg.checkpoint_cost_hours = 0.5;
  cfg.restart = RestartModel::kFreshVm;
  const CheckpointDp dp(u, 3.0, cfg);

  double best = std::numeric_limits<double>::infinity();
  for (int mask = 0; mask < 32; ++mask) {
    CheckpointPlan plan;
    plan.checkpoint_cost_hours = 0.5;
    double run = 0.0;
    for (int step = 0; step < 6; ++step) {
      run += 0.5;
      const bool boundary_here = step < 5 && (mask & (1 << step));
      if (boundary_here) {
        plan.work_segments_hours.push_back(run);
        run = 0.0;
      }
    }
    if (run > 0.0) plan.work_segments_hours.push_back(run);
    best = std::min(best, evaluate_plan(u, plan, 0.0, cfg));
  }
  // The adaptive DP can only do at least as well as the best static plan.
  EXPECT_LE(dp.expected_makespan(0.0), best + 1e-6);
  // And it must not be wildly better (same semantics, small instance).
  EXPECT_GT(dp.expected_makespan(0.0), 0.9 * best);
}

TEST(CheckpointDp, PartialJobsAreConsistent) {
  const auto d = reference_bathtub();
  const CheckpointDp dp(d, 4.0, {});
  const double full = dp.expected_makespan_partial(4.0, 0.0);
  const double half = dp.expected_makespan_partial(2.0, 0.0);
  EXPECT_NEAR(full, dp.expected_makespan(0.0), 1e-12);
  EXPECT_LT(half, full);
  const auto partial_schedule = dp.schedule_partial(2.0, 8.0);
  const double total = std::accumulate(partial_schedule.begin(), partial_schedule.end(), 0.0);
  EXPECT_NEAR(total, 2.0, 1e-9);
}

TEST(CheckpointDp, PaperLostWorkFormAlsoWorks) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  cfg.lost_work = LostWorkForm::kPaper;
  const CheckpointDp dp(d, 2.0, cfg);
  EXPECT_GE(dp.expected_makespan(0.0), 2.0);
  EXPECT_LT(dp.expected_makespan(0.0), 4.0);
}

TEST(CheckpointDp, FreshVmRestartModel) {
  const auto d = reference_bathtub();
  CheckpointConfig cfg;
  cfg.restart = RestartModel::kFreshVm;
  const CheckpointDp dp(d, 3.0, cfg);
  EXPECT_GE(dp.expected_makespan(0.0), 3.0);
  const auto schedule = dp.schedule(0.0);
  EXPECT_NEAR(std::accumulate(schedule.begin(), schedule.end(), 0.0), 3.0, 1e-9);
}

TEST(CheckpointDp, RestartOverheadIncreasesMakespan) {
  // Restart overhead is charged on the fresh-VM path, so exercise kFreshVm
  // (under kContinueAge a short job from age 0 almost never reaches it).
  const auto d = reference_bathtub();
  CheckpointConfig cheap;
  cheap.restart = RestartModel::kFreshVm;
  CheckpointConfig pricey = cheap;
  pricey.restart_overhead_hours = 0.25;
  const CheckpointDp dp_cheap(d, 2.0, cheap);
  const CheckpointDp dp_pricey(d, 2.0, pricey);
  EXPECT_LT(dp_cheap.expected_makespan(0.0), dp_pricey.expected_makespan(0.0));
}

TEST(CheckpointDp, HigherCheckpointCostMeansFewerCheckpoints) {
  const auto d = reference_bathtub();
  CheckpointConfig cheap;
  cheap.checkpoint_cost_hours = 0.5 * kMinute;
  CheckpointConfig pricey;
  pricey.checkpoint_cost_hours = 10.0 * kMinute;
  const CheckpointDp dp_cheap(d, 4.0, cheap);
  const CheckpointDp dp_pricey(d, 4.0, pricey);
  EXPECT_GE(dp_cheap.schedule(0.0).size(), dp_pricey.schedule(0.0).size());
}

TEST(CheckpointDp, RequiresFiniteSupportDistribution) {
  const dist::Exponential e(0.5);
  EXPECT_THROW(CheckpointDp(e, 2.0, {}), InvalidArgument);
}

TEST(CheckpointDp, ValidatesConfigAndArguments) {
  const auto d = reference_bathtub();
  CheckpointConfig bad;
  bad.step_hours = 0.0;
  EXPECT_THROW(CheckpointDp(d, 2.0, bad), InvalidArgument);
  EXPECT_THROW(CheckpointDp(d, 0.0, {}), InvalidArgument);
  const CheckpointDp dp(d, 2.0, {});
  EXPECT_THROW(dp.expected_makespan_partial(3.0, 0.0), InvalidArgument);  // > table
}

}  // namespace
}  // namespace preempt::policy
