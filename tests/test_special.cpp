// Accuracy contracts for common/special.hpp against high-precision reference
// values (computed with mpmath at 50 digits).
#include "common/special.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace preempt {
namespace {

TEST(NormalCdf, ReferenceValues) {
  // mpmath: ncdf(x)
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.84134474606854293, 1e-14);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-14);
  EXPECT_NEAR(normal_cdf(2.5), 0.99379033467422384, 1e-14);
  EXPECT_NEAR(normal_cdf(-3.0), 1.3498980316300946e-3, 1e-16);
  // Deep lower tail keeps relative accuracy (the reason we use erfc).
  EXPECT_NEAR(normal_cdf(-8.0) / 6.2209605742717841e-16, 1.0, 1e-10);
}

TEST(NormalCdf, Symmetry) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.4}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-15) << x;
  }
}

TEST(NormalPdf, ReferenceValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.39894228040143268, 1e-15);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-15);
  EXPECT_NEAR(normal_pdf(-2.0), 0.053990966513188063, 1e-16);
}

TEST(NormalQuantile, RoundTripsThroughCdf) {
  for (double p = 0.0005; p < 1.0; p += 0.013) {
    const double x = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, ReferenceValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-15);
  EXPECT_NEAR(normal_quantile(0.975), 1.9599639845400545, 1e-12);
  EXPECT_NEAR(normal_quantile(0.84134474606854293), 1.0, 1e-12);
  EXPECT_NEAR(normal_quantile(1e-10), -6.3613409024040557, 1e-9);
}

TEST(NormalQuantile, EdgeCases) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normal_quantile(-0.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(1.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(std::numeric_limits<double>::quiet_NaN())));
}

TEST(ErfInv, MatchesErf) {
  for (double x : {-0.95, -0.5, -0.01, 0.0, 0.3, 0.77, 0.999}) {
    EXPECT_NEAR(std::erf(erf_inv(x)), x, 1e-12) << x;
  }
  EXPECT_EQ(erf_inv(1.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(erf_inv(-1.0), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(erf_inv(1.5)));
}

TEST(RegularizedGamma, ReferenceValues) {
  // mpmath: gammainc(a, 0, x, regularized=True)
  EXPECT_NEAR(regularized_gamma_p(1.0, 1.0), 0.63212055882855768, 1e-14);   // 1 - e^-1
  EXPECT_NEAR(regularized_gamma_p(0.5, 0.5), 0.68268949213708590, 1e-13);   // erf(1/sqrt2)... P(1/2,x)=erf(sqrt x)
  EXPECT_NEAR(regularized_gamma_p(2.0, 3.0), 0.80085172652854419, 1e-13);
  EXPECT_NEAR(regularized_gamma_p(5.0, 2.0), 0.052653017343711156, 1e-13);
  EXPECT_NEAR(regularized_gamma_p(10.0, 15.0), 0.93014633930059023, 1e-12);
  EXPECT_NEAR(regularized_gamma_p(100.0, 90.0), 0.15822098918643016, 1e-11);
}

TEST(RegularizedGamma, ComplementIdentity) {
  for (double a : {0.3, 1.0, 2.7, 9.0, 40.0}) {
    for (double x : {0.01, 0.5, 1.0, 3.0, 10.0, 60.0}) {
      EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x), 1.0, 1e-13)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGamma, HalfIntegerMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-13) << x;
  }
}

TEST(RegularizedGamma, IntegerIsPoissonTail) {
  // Q(n, x) = sum_{k<n} e^-x x^k / k! (Poisson CDF identity), n = 3, x = 2.
  const double x = 2.0;
  const double poisson = std::exp(-x) * (1.0 + x + x * x / 2.0);
  EXPECT_NEAR(regularized_gamma_q(3.0, x), poisson, 1e-14);
}

TEST(RegularizedGamma, BoundsAndMonotonicity) {
  EXPECT_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  double prev = -1.0;
  for (double x = 0.0; x <= 30.0; x += 0.5) {
    const double p = regularized_gamma_p(3.5, x);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(regularized_gamma_p(1.0, -1.0), InvalidArgument);
}

TEST(LogGamma, ReferenceValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-15);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-15);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-13);
  EXPECT_NEAR(log_gamma(0.5), 0.5 * std::log(M_PI), 1e-14);
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
}

TEST(Digamma, ReferenceValues) {
  // ψ(1) = -γ (Euler–Mascheroni), ψ(1/2) = -γ - 2 ln 2, ψ(n+1) = ψ(n) + 1/n.
  constexpr double euler = 0.57721566490153286;
  EXPECT_NEAR(digamma(1.0), -euler, 1e-12);
  EXPECT_NEAR(digamma(0.5), -euler - 2.0 * std::log(2.0), 1e-12);
  EXPECT_NEAR(digamma(2.0), -euler + 1.0, 1e-12);
  EXPECT_NEAR(digamma(10.0), 2.2517525890667211, 1e-12);
  EXPECT_THROW(digamma(-1.0), InvalidArgument);
}

TEST(Digamma, RecurrenceHolds) {
  for (double x : {0.3, 1.7, 4.2, 11.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-12) << x;
  }
}

}  // namespace
}  // namespace preempt
