// FlagSet parser: declaration, parsing forms, typed access, failure modes.
#include "common/cli.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace preempt {
namespace {

FlagSet make_flags() {
  FlagSet flags("test");
  flags.add_string("name", "default", "a string flag");
  flags.add_double("rate", 0.5, "a double flag");
  flags.add_int("count", 10, "an int flag");
  flags.add_bool("verbose", "a boolean flag");
  return flags;
}

TEST(FlagSet, DefaultsApplyWhenUnset) {
  auto flags = make_flags();
  flags.parse({});
  EXPECT_EQ(flags.get_string("name"), "default");
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 0.5);
  EXPECT_EQ(flags.get_int("count"), 10);
  EXPECT_FALSE(flags.get_bool("verbose"));
  EXPECT_FALSE(flags.is_set("name"));
}

TEST(FlagSet, ParsesSpaceSeparatedValues) {
  auto flags = make_flags();
  flags.parse({"--name", "abc", "--rate", "2.25", "--count", "-3"});
  EXPECT_EQ(flags.get_string("name"), "abc");
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.25);
  EXPECT_EQ(flags.get_int("count"), -3);
  EXPECT_TRUE(flags.is_set("name"));
}

TEST(FlagSet, ParsesEqualsForm) {
  auto flags = make_flags();
  flags.parse({"--name=xyz", "--rate=1e-3", "--verbose=true"});
  EXPECT_EQ(flags.get_string("name"), "xyz");
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 1e-3);
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, BareBooleanIsTrue) {
  auto flags = make_flags();
  flags.parse({"--verbose"});
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(FlagSet, CollectsPositionals) {
  auto flags = make_flags();
  flags.parse({"input.csv", "--count", "5", "more.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more.csv");
}

TEST(FlagSet, RejectsUnknownFlag) {
  auto flags = make_flags();
  EXPECT_THROW(flags.parse({"--bogus", "1"}), InvalidArgument);
}

TEST(FlagSet, RejectsMissingValue) {
  auto flags = make_flags();
  EXPECT_THROW(flags.parse({"--name"}), InvalidArgument);
}

TEST(FlagSet, RejectsTypeErrorsEagerly) {
  {
    auto flags = make_flags();
    EXPECT_THROW(flags.parse({"--rate", "not-a-number"}), InvalidArgument);
  }
  {
    auto flags = make_flags();
    EXPECT_THROW(flags.parse({"--count", "1.5x"}), InvalidArgument);
  }
  {
    auto flags = make_flags();
    EXPECT_THROW(flags.parse({"--verbose=banana"}), InvalidArgument);
  }
}

TEST(FlagSet, RequiredFlagEnforced) {
  FlagSet flags("test");
  flags.add_required("input", "mandatory input file");
  EXPECT_THROW(flags.parse({}), InvalidArgument);
  FlagSet flags2("test");
  flags2.add_required("input", "mandatory input file");
  flags2.parse({"--input", "file.csv"});
  EXPECT_EQ(flags2.get_string("input"), "file.csv");
}

TEST(FlagSet, RejectsDuplicateDeclaration) {
  FlagSet flags("test");
  flags.add_string("x", "", "first");
  EXPECT_THROW(flags.add_int("x", 1, "second"), InvalidArgument);
}

TEST(FlagSet, QueryingUndeclaredFlagThrows) {
  auto flags = make_flags();
  flags.parse({});
  EXPECT_THROW(flags.get_string("nope"), InvalidArgument);
}

TEST(FlagSet, UsageListsFlagsInDeclarationOrder) {
  const auto flags = make_flags();
  const std::string usage = flags.usage();
  const auto p_name = usage.find("--name");
  const auto p_rate = usage.find("--rate");
  const auto p_verbose = usage.find("--verbose");
  EXPECT_NE(p_name, std::string::npos);
  EXPECT_LT(p_name, p_rate);
  EXPECT_LT(p_rate, p_verbose);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

TEST(FlagSet, LastValueWins) {
  auto flags = make_flags();
  flags.parse({"--count", "1", "--count", "2"});
  EXPECT_EQ(flags.get_int("count"), 2);
}

}  // namespace
}  // namespace preempt
