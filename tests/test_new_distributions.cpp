// Family-specific behaviour of the extended comparator distributions
// (log-normal, gamma, exponentiated Weibull) and their least-squares fitters.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/integrate.hpp"
#include "common/random.hpp"
#include "dist/empirical.hpp"
#include "dist/exponentiated_weibull.hpp"
#include "dist/gamma.hpp"
#include "dist/lognormal.hpp"
#include "fit/model_fitters.hpp"
#include "test_util.hpp"

namespace preempt {
namespace {

using dist::EmpiricalDistribution;
using dist::ExponentiatedWeibull;
using dist::Gamma;
using dist::LogNormal;
using fit::fit_exponentiated_weibull;
using fit::fit_extended_families;
using fit::fit_gamma;
using fit::fit_lognormal;

// ---------------------------------------------------------------- LogNormal

TEST(LogNormal, MatchesClosedForms) {
  const LogNormal d(1.0, 0.5);
  // Median = e^mu; mean = e^{mu + sigma^2/2}.
  EXPECT_NEAR(d.quantile(0.5), std::exp(1.0), 1e-10);
  EXPECT_NEAR(d.mean(), std::exp(1.0 + 0.125), 1e-10);
  EXPECT_NEAR(d.cdf(d.quantile(0.9)), 0.9, 1e-10);
  EXPECT_NEAR(d.cdf(std::exp(1.0)), 0.5, 1e-12);
}

TEST(LogNormal, RejectsBadParameters) {
  EXPECT_THROW(LogNormal(0.0, 0.0), InvalidArgument);
  EXPECT_THROW(LogNormal(0.0, -1.0), InvalidArgument);
  EXPECT_THROW(LogNormal(std::nan(""), 1.0), InvalidArgument);
}

TEST(LogNormal, SamplingMatchesTheory) {
  const LogNormal d(0.5, 0.8);
  Rng rng(42);
  double sum = 0.0, sum_log = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum_log += std::log(x);
  }
  EXPECT_NEAR(sum_log / n, 0.5, 0.02);        // E[ln T] = mu
  EXPECT_NEAR(sum / n / d.mean(), 1.0, 0.05); // E[T]
}

// -------------------------------------------------------------------- Gamma

TEST(Gamma, ReducesToExponentialAtShapeOne) {
  const Gamma g(1.0, 0.3);
  for (double t : {0.5, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(g.cdf(t), -std::expm1(-0.3 * t), 1e-12) << t;
    EXPECT_NEAR(g.pdf(t), 0.3 * std::exp(-0.3 * t), 1e-12) << t;
  }
}

TEST(Gamma, PartialExpectationMatchesQuadrature) {
  const Gamma g(2.7, 0.4);
  for (auto [a, b] : {std::pair{0.0, 5.0}, {1.0, 8.0}, {0.0, 60.0}, {3.0, 3.0}}) {
    const double numeric =
        integrate_adaptive([&](double t) { return t * g.pdf(t); }, a, b, 1e-11);
    EXPECT_NEAR(g.partial_expectation(a, b), numeric, 1e-8) << a << "," << b;
  }
}

TEST(Gamma, FullPartialExpectationIsMean) {
  const Gamma g(4.0, 0.5);
  EXPECT_NEAR(g.partial_expectation(0.0, 400.0), g.mean(), 1e-6);
  EXPECT_NEAR(g.mean(), 8.0, 1e-12);
}

TEST(Gamma, RejectsBadParameters) {
  EXPECT_THROW(Gamma(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(Gamma(1.0, 0.0), InvalidArgument);
  EXPECT_THROW(Gamma(-2.0, 1.0), InvalidArgument);
}

// ------------------------------------------------------ ExponentiatedWeibull

TEST(ExponentiatedWeibull, ReducesToWeibullAtGammaOne) {
  const ExponentiatedWeibull ew(0.2, 1.7, 1.0);
  for (double t : {0.5, 2.0, 6.0, 15.0}) {
    EXPECT_NEAR(ew.cdf(t), -std::expm1(-std::pow(0.2 * t, 1.7)), 1e-12) << t;
  }
}

TEST(ExponentiatedWeibull, QuantileInvertsCdf) {
  const ExponentiatedWeibull ew(0.11, 2.4, 0.35);
  for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
    EXPECT_NEAR(ew.cdf(ew.quantile(p)), p, 1e-10) << p;
  }
  EXPECT_EQ(ew.quantile(0.0), 0.0);
}

TEST(ExponentiatedWeibull, BathtubRegimeHasBathtubHazard) {
  // k > 1, k*gamma < 1 produces decreasing-then-increasing hazard.
  const ExponentiatedWeibull ew(0.08, 3.0, 0.2);
  const double h_early = ew.hazard(0.5);
  const double h_mid = ew.hazard(6.0);
  const double h_late = ew.hazard(25.0);
  EXPECT_GT(h_early, h_mid);
  EXPECT_GT(h_late, h_mid);
}

TEST(ExponentiatedWeibull, PdfIntegratesToCdf) {
  const ExponentiatedWeibull ew(0.1, 2.0, 0.5);
  for (double t : {1.0, 5.0, 12.0}) {
    const double numeric = integrate_adaptive([&](double x) { return ew.pdf(x); }, 0.0, t, 1e-11);
    EXPECT_NEAR(numeric, ew.cdf(t), 1e-8) << t;
  }
}

// ------------------------------------------------------------------ fitters

std::pair<std::vector<double>, std::vector<double>> ecdf_of_samples(
    const dist::Distribution& d, std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(d.sample(rng));
  const EmpiricalDistribution ecdf(xs);
  const auto pts = ecdf.ecdf_points(dist::EcdfConvention::kHazen);
  return {pts.t, pts.f};
}

TEST(FitLogNormal, RecoversParameters) {
  const LogNormal truth(1.2, 0.6);
  const auto [ts, fs] = ecdf_of_samples(truth, 7, 600);
  const auto fr = fit_lognormal(ts, fs);
  ASSERT_TRUE(fr.converged);
  EXPECT_NEAR(fr.params[0], 1.2, 0.1);
  EXPECT_NEAR(fr.params[1], 0.6, 0.1);
  EXPECT_GT(fr.gof.r2, 0.99);
}

TEST(FitGamma, RecoversParameters) {
  const Gamma truth(2.5, 0.35);
  const auto [ts, fs] = ecdf_of_samples(truth, 11, 800);
  const auto fr = fit_gamma(ts, fs);
  ASSERT_TRUE(fr.converged);
  EXPECT_NEAR(fr.params[0] / 2.5, 1.0, 0.2);
  EXPECT_NEAR(fr.params[1] / 0.35, 1.0, 0.2);
  EXPECT_GT(fr.gof.r2, 0.99);
}

TEST(FitExponentiatedWeibull, RecoversWeibullSpecialCase) {
  // gamma = 1 data: fitter should find an equivalent CDF (params may trade
  // off, so score the fit, not the raw parameters).
  const ExponentiatedWeibull truth(0.15, 1.8, 1.0);
  const auto [ts, fs] = ecdf_of_samples(truth, 13, 700);
  const auto fr = fit_exponentiated_weibull(ts, fs);
  ASSERT_TRUE(fr.converged);
  EXPECT_GT(fr.gof.r2, 0.995);
}

TEST(FitExtendedFamilies, BathtubStillWinsOnConstrainedData) {
  // The headline claim extended to the bigger comparator zoo: on data from a
  // deadline-constrained bathtub, the paper's model must out-fit all six
  // classical families, including the "bathtub-capable" exponentiated Weibull
  // (which has no deadline wall).
  const auto params = preempt::testing::reference_params();
  const dist::BathtubDistribution truth(params);
  const auto [ts, fs] = ecdf_of_samples(truth, 17, 500);
  const auto results = fit_extended_families(ts, fs, params.horizon);
  ASSERT_EQ(results.size(), 7u);
  const double bathtub_sse = results[0].gof.sse;
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].gof.sse, 2.0 * bathtub_sse)
        << results[i].distribution->name() << " unexpectedly rivals the bathtub fit";
  }
}

}  // namespace
}  // namespace preempt
