// Tests of the paper's constrained-preemption model (Eqs. 1-3), including the
// quantitative anchors derived from the paper's figures (DESIGN.md Sec. 7).
#include "dist/bathtub.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/integrate.hpp"
#include "common/random.hpp"
#include "test_util.hpp"

namespace preempt::dist {
namespace {

using preempt::testing::reference_bathtub;
using preempt::testing::reference_params;

TEST(Bathtub, BoundaryConditionAtZero) {
  const auto d = reference_bathtub();
  // F(0) = A e^{-b/tau2} ~ 4e-14 — the paper's F(0) ≈ 0 boundary condition.
  EXPECT_NEAR(d.cdf(0.0), 0.0, 1e-12);
  EXPECT_GE(d.cdf(0.0), 0.0);
}

TEST(Bathtub, RawCdfMatchesEquationOne) {
  const auto d = reference_bathtub();
  const auto& p = d.params();
  for (double t : {0.5, 3.0, 12.0, 22.0, 23.9}) {
    const double expected =
        p.scale * (1.0 - std::exp(-t / p.tau1) + std::exp((t - p.deadline) / p.tau2));
    EXPECT_NEAR(d.raw_cdf(t), expected, 1e-14);
  }
}

TEST(Bathtub, PdfMatchesEquationTwo) {
  const auto d = reference_bathtub();
  const auto& p = d.params();
  for (double t : {0.5, 3.0, 12.0, 22.0}) {
    const double expected = p.scale * (std::exp(-t / p.tau1) / p.tau1 +
                                       std::exp((t - p.deadline) / p.tau2) / p.tau2);
    EXPECT_NEAR(d.pdf(t), expected, 1e-14);
  }
}

TEST(Bathtub, PdfIsDerivativeOfCdf) {
  const auto d = reference_bathtub();
  const double h = 1e-6;
  for (double t : {0.3, 1.0, 5.0, 15.0, 22.0}) {
    const double numeric = (d.raw_cdf(t + h) - d.raw_cdf(t - h)) / (2.0 * h);
    EXPECT_NEAR(d.pdf(t), numeric, 1e-6);
  }
}

TEST(Bathtub, CdfIsMonotoneNonDecreasing) {
  const auto d = reference_bathtub();
  double prev = -1.0;
  for (int i = 0; i <= 480; ++i) {
    const double f = d.cdf(i * 0.05);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(Bathtub, DeadlineAtomAccountsForMissingMass) {
  const auto d = reference_bathtub();
  // raw F(24) = 0.45 * (2 - e^{-24}) ≈ 0.9 -> atom ≈ 0.1.
  EXPECT_NEAR(d.raw_cdf(24.0), 0.9, 1e-9);
  EXPECT_NEAR(d.deadline_atom(), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(d.cdf(24.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(25.0), 1.0);
}

TEST(Bathtub, ExpectedLifetimeEq3ClosedForm) {
  const auto d = reference_bathtub();
  // Hand-computed: -A(t+tau1)e^{-t/tau1} + A(t-tau2)e^{(t-b)/tau2} over [0,24]
  // = 10.44 + 0.45 ≈ 10.89 h.
  EXPECT_NEAR(d.expected_lifetime_eq3(), 10.89, 0.01);
}

TEST(Bathtub, Eq3MatchesNumericIntegralOfTf) {
  const auto d = reference_bathtub();
  const double numeric = integrate_gauss_composite(
      [&d](double t) { return t * d.pdf(t); }, 0.0, 24.0, 192, 16);
  EXPECT_NEAR(d.expected_lifetime_eq3(), numeric, 1e-8);
}

TEST(Bathtub, MeanIncludesAtom) {
  const auto d = reference_bathtub();
  EXPECT_NEAR(d.mean(), d.expected_lifetime_eq3() + 24.0 * d.deadline_atom(), 1e-9);
}

TEST(Bathtub, MeanMatchesSurvivalIntegral) {
  const auto d = reference_bathtub();
  const double via_survival = integrate_gauss_composite(
      [&d](double t) { return d.survival(t); }, 0.0, 24.0, 192, 16);
  EXPECT_NEAR(d.mean(), via_survival, 1e-6);
}

TEST(Bathtub, PartialExpectationIsAdditive) {
  const auto d = reference_bathtub();
  const double whole = d.partial_expectation(0.0, 24.0);
  const double split = d.partial_expectation(0.0, 7.5) + d.partial_expectation(7.5, 24.0);
  EXPECT_NEAR(whole, split, 1e-10);
}

TEST(Bathtub, PartialExpectationOutsideSupportIsZero) {
  const auto d = reference_bathtub();
  EXPECT_DOUBLE_EQ(d.partial_expectation(24.0, 30.0), 0.0);
  EXPECT_DOUBLE_EQ(d.partial_expectation(-5.0, 0.0), 0.0);
}

TEST(Bathtub, QuantileInvertsRawCdf) {
  const auto d = reference_bathtub();
  for (double p : {0.05, 0.2, 0.44, 0.6, 0.85}) {
    EXPECT_NEAR(d.raw_cdf(d.quantile(p)), p, 1e-9);
  }
}

TEST(Bathtub, QuantileAboveRawMassHitsHorizon) {
  const auto d = reference_bathtub();
  EXPECT_DOUBLE_EQ(d.quantile(0.95), 24.0);  // inside the atom
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 24.0);
}

TEST(Bathtub, HazardIsBathtubShaped) {
  const auto d = reference_bathtub();
  const double early = d.hazard(0.1);
  const double mid = d.hazard(12.0);
  const double late = d.hazard(23.0);
  EXPECT_GT(early, 5.0 * mid);
  EXPECT_GT(late, 5.0 * mid);
}

TEST(Bathtub, PhaseBoundariesAreOrdered) {
  const auto d = reference_bathtub();
  EXPECT_NEAR(d.infant_phase_end(), 3.0, 1e-12);  // 3 tau1
  EXPECT_GT(d.deadline_phase_start(), d.infant_phase_end());
  EXPECT_LT(d.deadline_phase_start(), 24.0);
}

TEST(Bathtub, SamplingMatchesCdf) {
  const auto d = reference_bathtub();
  Rng rng(4242);
  constexpr int kN = 20000;
  std::vector<double> samples;
  samples.reserve(kN);
  int at_deadline = 0;
  for (int i = 0; i < kN; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 24.0);
    if (x == 24.0) ++at_deadline;
    samples.push_back(x);
  }
  // Atom frequency ≈ 0.1.
  EXPECT_NEAR(static_cast<double>(at_deadline) / kN, d.deadline_atom(), 0.01);
  // KS distance between the sample ECDF and the model CDF over the
  // continuous region (samples below the deadline atom).
  std::sort(samples.begin(), samples.end());
  double ks = 0.0;
  for (int i = 0; i < kN; ++i) {
    if (samples[i] >= 24.0) break;
    const double fr = d.raw_cdf(samples[i]);
    ks = std::max(ks, std::abs(fr - static_cast<double>(i) / kN));
  }
  EXPECT_LT(ks, 0.02);
}

TEST(Bathtub, PaperAnchorSixHourFailureProbability) {
  // Fig. 5: a 6 h job on a fresh VM fails with probability ≈ 0.4-0.45.
  const auto d = reference_bathtub();
  EXPECT_NEAR(d.cdf(6.0), 0.4489, 0.001);
}

TEST(Bathtub, LargerScaleMeansMorePreemptions) {
  auto p16 = reference_params();
  auto p32 = reference_params();
  p32.scale = 0.50;
  p32.tau1 = 0.7;
  const BathtubDistribution d16(p16), d32(p32);
  for (double t : {1.0, 6.0, 12.0, 20.0}) {
    EXPECT_GT(d32.cdf(t), d16.cdf(t));
  }
}

TEST(Bathtub, SaturatingParametersClampDensity) {
  // A = 0.5 with slow tau1 keeps raw F(24) near 1; the clamped CDF must stay
  // within [0, 1] and the density must vanish once saturated.
  BathtubParams p;
  p.scale = 0.5;
  p.tau1 = 0.2;  // very fast infant phase: raw cdf approaches 1 near deadline
  p.tau2 = 0.8;
  p.deadline = 24.0;
  p.horizon = 24.0;
  const BathtubDistribution d(p);
  for (double t : {0.0, 1.0, 12.0, 23.0, 23.99}) {
    EXPECT_GE(d.cdf(t), 0.0);
    EXPECT_LE(d.cdf(t), 1.0);
  }
}

TEST(Bathtub, ValidatesParameters) {
  BathtubParams p = reference_params();
  p.scale = 0.0;
  EXPECT_THROW(BathtubDistribution{p}, InvalidArgument);
  p = reference_params();
  p.tau1 = -1.0;
  EXPECT_THROW(BathtubDistribution{p}, InvalidArgument);
  p = reference_params();
  p.scale = 1.5;
  EXPECT_THROW(BathtubDistribution{p}, InvalidArgument);
  p = reference_params();
  p.horizon = 0.0;
  EXPECT_THROW(BathtubDistribution{p}, InvalidArgument);
}

TEST(Bathtub, CloneIsDeepAndEquivalent) {
  const auto d = reference_bathtub();
  const auto c = d.clone();
  EXPECT_EQ(c->name(), "bathtub");
  for (double t : {1.0, 12.0, 23.0}) EXPECT_DOUBLE_EQ(c->cdf(t), d.cdf(t));
}

}  // namespace
}  // namespace preempt::dist
