// Scenario sweep — declarative experiments over the batch service.
//
//   1. Describe ONE experiment cell as a ScenarioSpec (workload + market +
//      policy + ground-truth law + replications) — the same JSON-round-trip
//      object `preempt scenario` and POST /v1/scenarios/{name}/run use.
//   2. Attach sweep axes (cluster size x reuse policy) and expand the grid.
//   3. Run every cell; replications fan out over the src/mc engine, so each
//      cell reports mean +/- 95% CI per headline metric.
//
// Build & run:  ./build/example_scenario_sweep
#include <iostream>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"

int main() {
  using namespace preempt;

  // -- 1. One declarative cell ------------------------------------------------
  scenario::ScenarioSpec base;
  base.name = "example";
  base.kind = scenario::ScenarioKind::kService;
  base.app = "shapes";
  base.vm_type = trace::VmType::kN1Highcpu32;  // repack the gang onto 32-core VMs
  base.jobs = 25;
  base.cluster_size = 16;
  base.seed = 7;
  base.replications = 4;  // > 1 => mean/std_error/ci95 via src/mc
  base.ground_truth.source = scenario::DistributionSpec::Source::kRegime;
  base.ground_truth.regime =
      trace::RegimeKey{trace::VmType::kN1Highcpu32, trace::Zone::kUsCentral1C,
                       trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};

  std::cout << "spec as JSON (round-trips through scenario_from_json):\n"
            << scenario::to_json(base).dump(2) << "\n\n";

  // -- 2. Sweep axes ------------------------------------------------------------
  scenario::SweepSpec sweep;
  sweep.base = base;
  sweep.axes = scenario::parse_axes("vms=8,16;policy=model,fresh");
  std::cout << "expanding " << sweep.cardinality() << " cells...\n\n";

  // -- 3. Run the grid ----------------------------------------------------------
  for (const scenario::ScenarioSpec& cell : scenario::expand(sweep)) {
    const scenario::ScenarioResult result = scenario::run(cell);
    const auto& cost = result.metrics.empty()
                           ? mc::MetricSummary{}
                           : result.metrics.front();  // cost_per_job leads the list
    std::cout << cell.name << "\n  cost/job $" << cost.mean << " +/- " << cost.ci95_half
              << " (95% CI), preemptions (rep 0): " << result.report.preemptions << "\n";
  }

  // Named registry entries work the same way — e.g. the CI smoke scenario:
  const scenario::NamedScenario* quick = scenario::find_builtin("paper-fig09-quick");
  const scenario::ScenarioResult smoke = scenario::run(quick->sweep.base);
  std::cout << "\n" << quick->name << ": cost reduction "
            << smoke.report.cost_reduction_factor << "x vs on-demand\n";
  return 0;
}
