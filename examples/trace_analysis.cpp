// Trace analysis — the Sec. 3.1 empirical study, end to end.
//
// Runs a full factorial measurement campaign (5 types x 4 zones x day/night x
// idle/busy), persists it as CSV (the dataset format the paper publishes),
// reloads it, and reports per-group statistics, three-phase structure, and
// per-regime model fits via the ModelRegistry.
#include <cstdio>
#include <iostream>

#include "preempt.hpp"

int main() {
  using namespace preempt;
  set_log_level(LogLevel::kError);

  // -- run the campaign ---------------------------------------------------------
  trace::StudyConfig study;
  study.vms_per_cell = 44;  // ~880 VMs, the scale of the paper's study
  const trace::Dataset dataset = trace::generate_study(study);
  std::cout << "campaign produced " << dataset.size() << " preemption records\n";

  // -- CSV round trip -------------------------------------------------------------
  const std::string path = "/tmp/preempt_study.csv";
  dataset.save_csv(path);
  const trace::Dataset reloaded = trace::Dataset::load_csv(path);
  std::cout << "round-tripped through " << path << " (" << reloaded.size() << " records)\n\n";

  // -- per-type statistics ----------------------------------------------------------
  Table by_type({"vm_type", "n", "mean_h", "median_h", "p25_h", "p75_h", "frac_24h"},
                "Lifetimes by VM type (all zones pooled)");
  for (const auto& [type, group] : reloaded.group_by_type()) {
    const auto lifetimes = group.lifetimes();
    const Summary s = summarize(lifetimes);
    std::size_t at_deadline = 0;
    for (double x : lifetimes) {
      if (x >= 24.0 - 1e-9) ++at_deadline;
    }
    by_type.add_row({trace::to_string(type), std::to_string(s.count), fmt_double(s.mean, 2),
                     fmt_double(s.median, 2), fmt_double(s.p25, 2), fmt_double(s.p75, 2),
                     fmt_double(static_cast<double>(at_deadline) / s.count, 3)});
  }
  std::cout << by_type << "\n";

  // -- phase structure of the headline regime ------------------------------------
  const trace::Dataset headline = reloaded.by_type(trace::VmType::kN1Highcpu16)
                                      .by_zone(trace::Zone::kUsEast1B);
  const core::PreemptionModel model = core::PreemptionModel::fit(headline.lifetimes());
  const core::PhaseReport phases = core::phase_report(model.distribution());
  std::printf("n1-highcpu-16 @ us-east1-b: infant phase ends ~%.1f h, deadline phase from ~%.1f h\n",
              phases.infant_end_hours, phases.deadline_start_hours);
  std::printf("hazard: %.2f/h at launch vs %.4f/h mid-life\n\n",
              phases.infant_hazard_per_hour, phases.stable_hazard_per_hour);

  // -- registry over every regime --------------------------------------------------
  const core::ModelRegistry registry = core::ModelRegistry::fit_from_dataset(reloaded);
  std::cout << "model registry fitted " << registry.model_count() << " pooled models\n";
  Table fits({"vm_type", "A", "tau1_h", "tau2_h", "b_h", "exp_lifetime_h"},
             "Per-type fitted bathtub parameters");
  for (const trace::VmSpec& spec : trace::all_vm_specs()) {
    const core::PreemptionModel* m = registry.by_type(spec.type);
    if (m == nullptr) continue;
    const auto& p = m->params();
    fits.add_row({spec.name, fmt_double(p.scale, 3), fmt_double(p.tau1, 2),
                  fmt_double(p.tau2, 2), fmt_double(p.deadline, 1),
                  fmt_double(m->expected_lifetime(), 2)});
  }
  std::cout << fits;
  return 0;
}
