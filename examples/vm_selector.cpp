// VM selector — principled VM-type selection for a given job length.
//
// Sec. 4.1 "Consequences for applications": because constrained preemptions
// are not memoryless, the expected running-time penalty depends on the job
// length *and* the VM type's preemption regime; short jobs suffer most on
// types with high infant mortality. This tool ranks the catalog for a job.
#include <iostream>

#include "preempt.hpp"

int main(int argc, char** argv) {
  using namespace preempt;
  // Job length in hours (default 6 h), overridable from the command line.
  double job_hours = 6.0;
  if (argc > 1) job_hours = parse_double(argv[1]);

  std::cout << "Ranking preemptible VM types for a " << job_hours << " h single-VM job\n"
            << "(us-east1-b, day, busy; cost = preemptible price x expected makespan)\n\n";

  // Rank by the multi-failure makespan (renewal extension of Eq. 7): an
  // uncheckpointed job restarts from scratch on every preemption, so the
  // single-failure Eq. 7 underestimates the bill on failure-prone types.
  Table table({"vm_type", "fail_prob", "eq7_makespan_h", "restart_makespan_h", "price_per_h",
               "exp_cost_usd", "usd_per_work_h"},
              "Expected cost of running the job to completion (with restarts)");
  double best_cost_per_work = 1e300;
  std::string best_type;
  for (const trace::VmSpec& spec : trace::all_vm_specs()) {
    trace::RegimeKey key;
    key.type = spec.type;
    const auto model = trace::ground_truth_distribution(key);
    const double fail = policy::job_failure_probability(model, 0.0, job_hours);
    const double eq7 = policy::expected_makespan(model, job_hours);
    const double makespan = policy::expected_makespan_with_restarts(model, job_hours);
    const double cost = makespan * spec.preemptible_per_hour;
    const double cost_per_work = cost / job_hours;
    table.add_row({spec.name, fmt_double(fail, 3), fmt_double(eq7, 2), fmt_double(makespan, 2),
                   "$" + fmt_double(spec.preemptible_per_hour, 4), "$" + fmt_double(cost, 4),
                   "$" + fmt_double(cost_per_work, 4)});
    if (cost_per_work < best_cost_per_work) {
      best_cost_per_work = cost_per_work;
      best_type = spec.name;
    }
  }
  std::cout << table << "\n";
  std::cout << "cheapest per hour of useful work: " << best_type << "\n\n"
            << "Note: smaller VMs preempt less (Observation 4), matching Google's\n"
               "guidance to prefer smaller preemptible VMs when possible. For gang\n"
               "jobs, weigh this against needing more VMs per gang.\n";
  return 0;
}
