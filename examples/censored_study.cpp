// Censored-campaign study — survival analysis for preemption measurement.
//
// The paper's methodology (Sec. 3.1) measures VM lifetimes until preemption.
// In a realistic campaign many VMs are *not* preempted while observed: their
// job finishes and the VM is shut down, or the study window closes. Those
// lifetimes are right-censored. This example shows what goes wrong when a
// study ignores censoring, and how the survival toolkit fixes it:
//
//   1. simulate a campaign where ~40% of VMs are shut down early,
//   2. fit the bathtub model three ways:
//        (a) naive  — treat shutdowns as preemptions (biased),
//        (b) KM     — least squares on the Kaplan-Meier corrected CDF,
//        (c) MLE    — censored maximum likelihood (exact),
//   3. compare the fitted expected lifetimes against the ground truth, and
//   4. put a log-rank p-value on Observation 5 (night VMs live longer).
//
// Build & run:  ./build/examples/censored_study
#include <iostream>

#include "preempt.hpp"

int main() {
  using namespace preempt;
  using survival::SurvivalData;

  // -- 1. A campaign with job-completion censoring ----------------------------
  const trace::RegimeKey regime;  // n1-highcpu-16 / us-east1-b / day / batch
  const dist::BathtubDistribution truth(trace::ground_truth_params(regime));
  Rng rng(2019);

  std::vector<double> lifetimes, shutdown_times;
  for (int i = 0; i < 600; ++i) {
    lifetimes.push_back(truth.sample(rng));
    // Each VM runs a bag-of-jobs slice that finishes Uniform(4, 30) h after
    // launch; the VM is relinquished then if it has not been preempted.
    // (Slices longer than 24 h mean that part of the fleet is observed all
    // the way to the deadline — without that the 24 h wall is statistically
    // unidentifiable, censored or not.)
    shutdown_times.push_back(4.0 + 26.0 * rng.uniform());
  }
  const SurvivalData data = SurvivalData::censor_at(lifetimes, shutdown_times);
  std::cout << "campaign: " << data.size() << " VMs, " << data.event_count()
            << " preemptions observed, " << data.censored_count()
            << " censored by job completion ("
            << 100.0 * static_cast<double>(data.censored_count()) /
                   static_cast<double>(data.size())
            << "%)\n\n";

  // -- 2a. Naive fit: censorings mistaken for preemptions ---------------------
  std::vector<double> naive_lifetimes;
  for (const auto& o : data.observations()) naive_lifetimes.push_back(o.time);
  const auto naive = fit::fit_bathtub_to_samples(naive_lifetimes, 24.0);

  // -- 2b. Kaplan-Meier corrected least squares -------------------------------
  const auto km = survival::kaplan_meier(data);
  const auto pts = km.cdf_points();
  const auto km_fit = fit::fit_bathtub(pts.t, pts.f, 24.0);

  // -- 2c. Censored maximum likelihood ----------------------------------------
  const auto mle = survival::fit_bathtub_mle(data);

  // -- 3. Compare -------------------------------------------------------------
  // Full mean lifetime, including the mass reclaimed exactly at the deadline
  // (the Eq. 3 partial expectation alone would under-credit fits that push
  // late mass into the atom).
  auto expected_lifetime = [](const dist::Distribution& d) { return d.mean(); };
  const double truth_el = truth.mean();

  Table table({"estimator", "A", "tau1", "tau2", "b", "E[lifetime] (h)", "error vs truth"});
  auto add_row = [&](const std::string& name, const dist::Distribution& d,
                     const std::vector<double>& params) {
    const double el = expected_lifetime(d);
    table.add_row({name, fmt_double(params[0], 3), fmt_double(params[1], 3),
                   fmt_double(params[2], 3), fmt_double(params[3], 3),
                   fmt_double(el, 3),
                   fmt_double(100.0 * (el - truth_el) / truth_el, 1) + "%"});
  };
  table.add_row({"ground truth", fmt_double(truth.params().scale, 3),
                 fmt_double(truth.params().tau1, 3), fmt_double(truth.params().tau2, 3),
                 fmt_double(truth.params().deadline, 3), fmt_double(truth_el, 3), "--"});
  add_row("naive (censor=event)", *naive.distribution, naive.params);
  add_row("KM-corrected LS", *km_fit.distribution, km_fit.params);
  add_row("censored MLE", *mle.distribution, mle.params);
  std::cout << table << "\n";

  std::cout << "The naive estimator inflates the preemption rate (every job\n"
               "completion looks like a preemption); both censoring-aware\n"
               "estimators track the ground truth.\n\n";

  // -- 4. Observation 5 with a p-value -----------------------------------------
  trace::RegimeKey night = regime;
  night.period = trace::DayPeriod::kNight;
  const dist::BathtubDistribution night_truth(trace::ground_truth_params(night));
  std::vector<double> day_lt, night_lt;
  for (int i = 0; i < 300; ++i) {
    day_lt.push_back(truth.sample(rng));
    night_lt.push_back(night_truth.sample(rng));
  }
  const auto lr = survival::log_rank_test(SurvivalData::all_events(day_lt),
                                          SurvivalData::all_events(night_lt));
  std::cout << "log-rank test day vs night: chi2=" << lr.chi_squared
            << "  p=" << lr.p_value
            << (lr.significant() ? "  -> night VMs live significantly longer"
                                 : "  -> no significant difference")
            << "\n";
  return 0;
}
