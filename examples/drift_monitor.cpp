// Drift monitor — continuous model maintenance for a long-running service.
//
// The paper (Sec. 8) argues a service should detect provider policy changes
// by comparing observations against model predictions and refit. This
// example simulates exactly that: a service watches preemptions under one
// regime, the "provider" silently changes its reclamation policy, the
// monitor alarms, refits, and the alarm clears.
#include <cstdio>

#include "preempt.hpp"

int main() {
  using namespace preempt;

  // Phase 0: bootstrap a model from an initial campaign.
  trace::RegimeKey regime;  // n1-highcpu-16 @ us-east1-b
  const auto before = trace::ground_truth_distribution(regime);
  const auto boot = trace::generate_campaign({regime, 300, 1}).lifetimes();
  core::DriftDetector::Options opts;
  opts.window = 150;
  opts.ks_critical = 1.9;  // baseline is estimated -> Lilliefors-adjusted
  core::DriftDetector monitor(core::PreemptionModel::fit(boot), opts);
  std::printf("bootstrapped model: A=%.3f tau1=%.2f (from %zu lifetimes)\n\n",
              monitor.baseline().params().scale, monitor.baseline().params().tau1, boot.size());

  Rng rng(99);
  auto feed = [&](const dist::Distribution& source, int n, const char* label) {
    core::DriftDetector::Status last;
    int first_alarm = -1;
    for (int i = 0; i < n; ++i) {
      last = monitor.observe(source.sample(rng));
      if (last.drift && first_alarm < 0) first_alarm = i + 1;
    }
    std::printf("%-28s ks=%.3f threshold=%.3f drift=%s%s\n", label, last.ks, last.threshold,
                last.drift ? "YES" : "no",
                first_alarm > 0 ? (" (first alarm after " + std::to_string(first_alarm) +
                                   " observations)").c_str()
                                : "");
    return last;
  };

  // Phase 1: business as usual — no alarms.
  feed(before, 300, "stable regime:");

  // Phase 2: the provider tightens reclamation (e.g. capacity crunch):
  // preemptions become far more aggressive.
  auto crunch_params = trace::ground_truth_params(regime);
  crunch_params.scale = 0.50;
  crunch_params.tau1 = 0.45;
  const dist::BathtubDistribution after(crunch_params);
  const auto alarmed = feed(after, 200, "after policy change:");

  // Phase 3: refit from the recent window and keep going.
  if (alarmed.drift) {
    const core::PreemptionModel& refitted = monitor.refit();
    std::printf("\nrefitted model: A=%.3f tau1=%.2f (true new regime: A=%.3f tau1=%.2f)\n\n",
                refitted.params().scale, refitted.params().tau1, crunch_params.scale,
                crunch_params.tau1);
  }
  feed(after, 300, "post-refit:");

  std::printf("\nOperationally, a refit also refreshes the reuse policy: the 6 h-job\n"
              "fresh-VM failure probability moved from %.2f to %.2f.\n",
              before.cdf(6.0), monitor.baseline().distribution().cdf(6.0));
  return 0;
}
