// Checkpoint planner — non-uniform, failure-rate-aware checkpoint schedules.
//
// Shows how the DP scheduler (paper Sec. 4.3) adapts the checkpoint cadence
// to the VM's age: frequent checkpoints in the infant phase, sparse in the
// stable middle, and how it compares to classical Young-Daly for a range of
// job lengths and checkpoint costs.
#include <iostream>

#include "preempt.hpp"

int main() {
  using namespace preempt;
  const auto model = trace::ground_truth_distribution(trace::RegimeKey{});

  std::cout << "Checkpoint schedules under the constrained-preemption model\n"
            << "(n1-highcpu-16 @ us-east1-b; delta = 1 minute)\n\n";

  // -- schedules by start age ---------------------------------------------------
  const policy::CheckpointDp dp(model, 6.0, {});
  Table by_age({"vm_age_h", "intervals_min", "expected_increase_pct"},
               "6 h job: schedule vs VM age at start");
  for (double age : {0.0, 1.0, 3.0, 8.0, 14.0}) {
    std::string intervals;
    for (double w : dp.schedule(age)) {
      if (!intervals.empty()) intervals += ",";
      intervals += std::to_string(static_cast<int>(w * 60.0 + 0.5));
    }
    by_age.add_row({fmt_double(age, 1), intervals,
                    fmt_double(dp.expected_increase_fraction(age) * 100.0, 2)});
  }
  std::cout << by_age << "\n";

  // -- checkpoint cost sweep -----------------------------------------------------
  Table by_cost({"delta_min", "checkpoints", "first_interval_min", "increase_pct"},
                "4 h job on a fresh VM: effect of checkpoint cost");
  for (double delta_min : {0.25, 1.0, 5.0, 15.0}) {
    policy::CheckpointConfig cfg;
    cfg.checkpoint_cost_hours = delta_min / 60.0;
    const policy::CheckpointDp planner(model, 4.0, cfg);
    const auto schedule = planner.schedule(0.0);
    by_cost.add_row({fmt_double(delta_min, 2), std::to_string(schedule.size() - 1),
                     fmt_double(schedule.front() * 60.0, 0),
                     fmt_double(planner.expected_increase_fraction(0.0) * 100.0, 2)});
  }
  std::cout << by_cost << "\n";

  // -- Young-Daly comparison (analytic + Monte-Carlo) ----------------------------
  Table vs_yd({"job_h", "dp_increase_pct", "young_daly_pct", "dp_monte_carlo_pct"},
              "DP vs Young-Daly (MTTF = 1 h), jobs starting on a fresh VM");
  const policy::CheckpointDp big(model, 8.0, {});
  for (double job : {2.0, 4.0, 8.0}) {
    const double ours = (big.expected_makespan_partial(job, 0.0) - job) / job * 100.0;
    const auto yd = policy::young_daly_plan(job, 1.0, 1.0 / 60.0);
    const double theirs = (policy::evaluate_plan(model, yd, 0.0, {}) - job) / job * 100.0;
    policy::CheckpointPlan plan;
    plan.checkpoint_cost_hours = 1.0 / 60.0;
    plan.work_segments_hours = big.schedule_partial(job, 0.0);
    policy::SimulationOptions opts;
    opts.runs = 4000;
    const double mc = (policy::simulate_plan(model, plan, opts).mean_hours - job) / job * 100.0;
    vs_yd.add_row({fmt_double(job, 1), fmt_double(ours, 2), fmt_double(theirs, 2),
                   fmt_double(mc, 2)});
  }
  std::cout << vs_yd << "\n";
  return 0;
}
