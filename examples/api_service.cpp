// Batch service over HTTP — the paper's Sec. 5 user workflow end to end.
//
// Starts the controller daemon in-process on an ephemeral loopback port and
// then acts as a user of the versioned /v1 REST surface through the typed
// ApiClient: checks health, reads the fitted model for a regime, asks for a
// reuse decision, submits an async bag of jobs (202 -> poll -> done) with
// Monte-Carlo replications, and reads the per-route metrics back. Every call
// is a real HTTP request over a real socket; the same endpoints serve `curl`
// when run via tools/preempt-batchd.
//
// Build & run:  ./build/examples/api_service
#include <iostream>

#include "api/api_client.hpp"
#include "preempt.hpp"

int main() {
  using namespace preempt;

  // -- boot the controller -----------------------------------------------------
  api::ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 30;  // smaller Sec. 3.1 bootstrap, faster start
  api::ServiceDaemon daemon(options);
  daemon.start(0);
  const api::ApiClient client(daemon.port());
  std::cout << "controller listening on 127.0.0.1:" << daemon.port() << "\n\n";

  // -- 1. health ---------------------------------------------------------------
  std::cout << "GET /healthz -> " << (client.healthy() ? "ok" : "DOWN") << "\n\n";

  // -- 2. what does the service believe about this regime? ---------------------
  const auto model = client.model({.type = "n1-highcpu-16", .zone = "us-east1-b"});
  std::cout << "GET /v1/models?type=n1-highcpu-16&zone=us-east1-b\n  -> " << model.regime
            << ": A=" << model.scale << " tau1=" << model.tau1 << " tau2=" << model.tau2
            << " b=" << model.deadline << "\n  -> expected lifetime "
            << model.expected_lifetime_hours << " h\n\n";

  // -- 3. a scheduling question -------------------------------------------------
  const auto decision = client.reuse_decision(20.0, 6.0);
  std::cout << "GET /v1/decisions/reuse?age=20&job=6\n  -> "
            << (decision.reuse ? "REUSE" : "FRESH VM")
            << " (P(fail|existing) = " << decision.failure_probability << ")\n\n";

  // -- 4. submit an async bag of jobs and poll for the report -------------------
  api::BagSubmission submission;
  submission.app = "nanoconfinement";
  submission.jobs = 60;
  submission.vms = 16;
  submission.seed = 11;
  submission.replications = 8;  // fan over the mc engine for error bars
  auto job = client.submit_bag(submission);
  std::cout << "POST /v1/bags {nanoconfinement x60 on 16 VMs, 8 replications}\n  -> 202, job "
            << job.id << " " << job.status << "\n";
  job = client.wait_for_bag(job.id, 120.0);
  std::cout << "GET /v1/bags/" << job.id << "\n  -> " << job.status << "\n";
  if (job.status != "done") {
    std::cout << "  bag failed: " << job.error << "\n";
    daemon.stop();
    return 1;
  }
  const auto& report = *job.report;
  std::cout << "  cost reduction vs on-demand: " << report.cost_reduction_factor << "x\n";
  const auto cost = report.metrics.at("cost_per_job");
  std::cout << "  cost/job: $" << cost.mean << " +/- " << cost.std_error << " (95% CI +/- "
            << cost.ci95 << ")\n\n";

  // -- 5. what did all of that cost the server? ---------------------------------
  std::cout << "GET /v1/metrics\n";
  for (const auto& row : client.metrics()) {
    if (row.requests == 0) continue;
    std::cout << "  " << row.method << " " << row.route << ": " << row.requests
              << " requests, mean " << row.mean_latency_ms << " ms\n";
  }

  daemon.stop();
  return 0;
}
