// Batch service over HTTP — the paper's Sec. 5 user workflow end to end.
//
// Starts the controller daemon in-process on an ephemeral loopback port and
// then acts as a user: checks health, reads the fitted model for a regime,
// asks for a reuse decision, submits a bag of jobs and reads the report
// back. Every call is a real HTTP request over a real socket; the same
// endpoints serve `curl` when run via tools/preempt-batchd.
//
// Build & run:  ./build/examples/api_service
#include <iostream>

#include "preempt.hpp"

int main() {
  using namespace preempt;
  using api::http_get;
  using api::http_post;

  // -- boot the controller -----------------------------------------------------
  api::ServiceDaemon::Options options;
  options.bootstrap_vms_per_cell = 30;  // smaller Sec. 3.1 bootstrap, faster start
  api::ServiceDaemon daemon(options);
  daemon.start(0);
  const std::uint16_t port = daemon.port();
  std::cout << "controller listening on 127.0.0.1:" << port << "\n\n";

  // -- 1. health ---------------------------------------------------------------
  std::cout << "GET /healthz\n  -> " << http_get(port, "/healthz").body << "\n\n";

  // -- 2. what does the service believe about this regime? ---------------------
  const auto model = http_get(port, "/api/model?type=n1-highcpu-16&zone=us-east1-b");
  std::cout << "GET /api/model?type=n1-highcpu-16&zone=us-east1-b\n  -> "
            << parse_json(model.body).dump(2) << "\n\n";

  // -- 3. a scheduling question -------------------------------------------------
  const auto decision = http_get(port, "/api/decisions/reuse?age=20&job=6");
  std::cout << "GET /api/decisions/reuse?age=20&job=6\n  -> "
            << parse_json(decision.body).dump(2) << "\n\n";

  // -- 4. submit a bag of jobs and read the report ------------------------------
  const auto created = http_post(
      port, "/api/bags", R"({"app":"nanoconfinement","jobs":60,"vms":16,"seed":11})");
  const JsonValue report = parse_json(created.body);
  std::cout << "POST /api/bags {nanoconfinement x60 on 16 VMs}\n  -> "
            << report.dump(2) << "\n\n";

  const auto id = static_cast<int>(report.number_or("id", 0));
  const auto fetched = http_get(port, "/api/bags/" + std::to_string(id));
  std::cout << "GET /api/bags/" << id << "  (status " << fetched.status << ")\n";
  std::cout << "cost reduction vs on-demand: "
            << parse_json(fetched.body).number_or("cost_reduction_factor", 0.0) << "x\n";

  daemon.stop();
  return 0;
}
