// Quickstart — the 5-minute tour of libpreempt.
//
//   1. Obtain preemption observations (here: a synthetic measurement
//      campaign standing in for real Google Preemptible VM lifetimes).
//   2. Fit the constrained-preemption (bathtub) model.
//   3. Ask the model operational questions: expected lifetime, failure
//      probabilities, reuse decisions, and a checkpoint schedule.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "preempt.hpp"

int main() {
  using namespace preempt;

  // -- 1. Collect lifetimes ---------------------------------------------------
  // 200 n1-highcpu-16 VMs in us-east1-b (the paper's Fig. 1 regime). With real
  // data you would call trace::Dataset::load_csv("preemptions.csv") instead.
  trace::RegimeKey regime;  // defaults to n1-highcpu-16 / us-east1-b / day / batch
  const trace::Dataset dataset = trace::generate_campaign({regime, 200, /*seed=*/7});
  std::cout << "observed " << dataset.size() << " preemptions; median lifetime = "
            << median(dataset.lifetimes()) << " h\n\n";

  // -- 2. Fit the model -------------------------------------------------------
  const core::PreemptionModel model = core::PreemptionModel::fit(dataset.lifetimes());
  const auto& p = model.params();
  std::cout << "fitted bathtub parameters: A=" << p.scale << " tau1=" << p.tau1
            << " tau2=" << p.tau2 << " b=" << p.deadline
            << "  (r2=" << model.fit_quality()->r2 << ")\n";
  std::cout << "expected lifetime (Eq. 3): " << model.expected_lifetime() << " h\n\n";

  // -- 3a. Failure probabilities ----------------------------------------------
  std::cout << "P(6 h job fails | fresh VM)        = "
            << model.job_failure_probability(0.0, 6.0) << "\n";
  std::cout << "P(6 h job fails | 9 h old VM)      = "
            << model.job_failure_probability(9.0, 6.0) << "\n";
  std::cout << "P(6 h job fails | 19 h old VM)     = "
            << model.job_failure_probability(19.0, 6.0) << "\n\n";

  // -- 3b. VM reuse decisions (Sec. 4.2) ---------------------------------------
  for (double age : {9.0, 20.0}) {
    const policy::ReuseDecision d = model.reuse_decision(age, 6.0);
    std::cout << "6 h job on a " << age << " h old VM -> "
              << (d.reuse ? "REUSE it" : "LAUNCH A FRESH VM")
              << "  (E[T_s]=" << d.expected_existing << " h vs E[T_0]=" << d.expected_fresh
              << " h)\n";
  }
  std::cout << "\n";

  // -- 3c. Checkpoint schedule (Sec. 4.3) ---------------------------------------
  const policy::CheckpointDp dp = model.make_checkpoint_dp(5.0);
  std::cout << "checkpoint intervals for a 5 h job on a fresh VM (minutes):";
  for (double w : dp.schedule(0.0)) std::cout << " " << static_cast<int>(w * 60.0 + 0.5);
  std::cout << "\nexpected runtime increase: " << dp.expected_increase_fraction(0.0) * 100.0
            << "%\n";
  return 0;
}
