// Bag-of-jobs — run a scientific parameter sweep on the batch service.
//
// Recreates the paper's Sec. 6.3 scenario: a bag of 100 Nanoconfinement jobs
// on a cluster of 32 preemptible n1-highcpu-32 VMs, with the model-driven
// VM-reuse policy, and compares cost against conventional on-demand VMs.
// Also contrasts the three reuse policies on the same bag.
#include <iostream>

#include "preempt.hpp"

namespace {

preempt::sim::ServiceReport run_bag(preempt::sim::ReusePolicyKind policy, std::uint64_t seed) {
  using namespace preempt;
  trace::RegimeKey regime;
  regime.type = trace::VmType::kN1Highcpu32;
  regime.zone = trace::Zone::kUsCentral1C;
  const auto truth = trace::ground_truth_distribution(regime);

  sim::ServiceConfig cfg;
  cfg.vm_type = regime.type;
  cfg.cluster_size = 32;
  cfg.reuse_policy = policy;
  cfg.seed = seed;

  sim::BatchService service(cfg, truth.clone(), truth.clone());
  const sim::Workload workload =
      sim::repack_for_vm_type(sim::nanoconfinement(), trace::VmType::kN1Highcpu32);
  sim::BagOfJobs bag;
  bag.name = "nanoconfinement-sweep";
  bag.spec = workload.job;
  bag.count = 100;
  service.submit_bag(bag);
  return service.run();
}

}  // namespace

int main() {
  using namespace preempt;
  std::cout << "Bag of 100 Nanoconfinement jobs on 32 x n1-highcpu-32 (preemptible)\n\n";

  Table table({"reuse_policy", "makespan_h", "increase_pct", "preempts", "cost_per_job",
               "on_demand_per_job", "reduction"},
              "Policy comparison on the same bag");
  for (auto [policy, label] :
       {std::pair{sim::ReusePolicyKind::kModelDriven, "model-driven"},
        std::pair{sim::ReusePolicyKind::kMemoryless, "memoryless"},
        std::pair{sim::ReusePolicyKind::kAlwaysFresh, "always-fresh"}}) {
    const sim::ServiceReport r = run_bag(policy, /*seed=*/20200623);
    table.add_row({label, fmt_double(r.makespan_hours, 2),
                   fmt_double(r.increase_fraction * 100.0, 1), std::to_string(r.preemptions),
                   "$" + fmt_double(r.cost_per_job, 4),
                   "$" + fmt_double(r.on_demand_cost_per_job, 4),
                   fmt_double(r.cost_reduction_factor, 2) + "x"});
  }
  std::cout << table << "\n";
  std::cout << "The model-driven policy reuses stable mid-life VMs and retires\n"
               "VMs approaching the 24 h deadline, which is what keeps the\n"
               "preemption overhead low (paper Sec. 6.3: <3% per preemption,\n"
               "~5x cheaper than on-demand).\n";
  return 0;
}
