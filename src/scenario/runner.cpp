#include "scenario/runner.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/random.hpp"
#include "core/model.hpp"
#include "dist/factory.hpp"
#include "mc/engine.hpp"
#include "sim/planner.hpp"
#include "sim/workloads.hpp"
#include "trace/generator.hpp"

namespace preempt::scenario {

namespace {

dist::DistributionPtr resolve_distribution(const DistributionSpec& spec) {
  switch (spec.source) {
    case DistributionSpec::Source::kRegime:
      return trace::ground_truth_distribution(spec.regime).clone();
    case DistributionSpec::Source::kFitted: {
      // The controller's bootstrap path in miniature: synthesize a Sec. 3.1
      // campaign for the cell and fit the bathtub model to it.
      const trace::Dataset campaign =
          trace::generate_campaign({spec.regime, spec.fit_samples, spec.fit_seed});
      return core::PreemptionModel::fit(campaign.lifetimes()).distribution().clone();
    }
    case DistributionSpec::Source::kFamily:
      return dist::make_distribution(spec.family, spec.params);
    case DistributionSpec::Source::kTruth:
      break;
  }
  throw InvalidArgument("a ground-truth law cannot have source 'truth'");
}

void append_summary(JsonObject& obj, const std::vector<mc::MetricSummary>& metrics) {
  if (metrics.empty()) return;
  obj.emplace_back("metrics", metrics_block_json(metrics));
}

ScenarioResult run_checkpoint(const ScenarioSpec& spec) {
  const dist::DistributionPtr truth = make_ground_truth(spec);
  const policy::CheckpointConfig cfg = checkpoint_config(spec);
  policy::CheckpointPlan plan;
  if (spec.scheduler == "dp") {
    const policy::CheckpointDp dp(*truth, spec.job_hours, cfg);
    plan.checkpoint_cost_hours = cfg.checkpoint_cost_hours;
    plan.work_segments_hours = dp.schedule_partial(spec.job_hours, spec.start_age_hours);
  } else if (spec.scheduler == "young-daly") {
    plan = policy::young_daly_plan(spec.job_hours, spec.mttf_hours, cfg.checkpoint_cost_hours);
  } else {
    plan = policy::no_checkpoint_plan(spec.job_hours, cfg.checkpoint_cost_hours);
  }

  policy::SimulationOptions options;
  options.runs = spec.replications;
  options.seed = spec.seed;
  options.start_age_hours = spec.start_age_hours;
  options.restart_overhead_hours = cfg.restart_overhead_hours;

  ScenarioResult result;
  result.kind = ScenarioKind::kCheckpoint;
  // simulate_plan replicates through the mc engine internally; its
  // SimulatedMakespan already carries std_error/ci95, so no separate
  // metrics block is synthesized.
  result.makespan = policy::simulate_plan(*truth, plan, options);
  return result;
}

ScenarioResult run_fleet(const ScenarioSpec& spec) {
  // The lifetime law is resolved once and shared by every replication;
  // simulate_fleet ignores it when spec.fleet.preemptions is false.
  const dist::DistributionPtr truth = make_ground_truth(spec);

  auto run_once = [&](std::uint64_t seed) {
    return fleet::simulate_fleet(spec.fleet, seed, truth.get());
  };

  ScenarioResult result;
  result.kind = ScenarioKind::kFleet;
  if (spec.replications <= 1) {
    result.fleet_report = run_once(spec.seed);
    return result;
  }
  mc::EngineOptions engine;
  engine.replications = spec.replications;
  engine.seed = spec.seed;
  const mc::ReplicationReport stats = mc::run_replications(
      engine,
      {"sla0_violation_rate", "sla1_violation_rate", "sla2_violation_rate",
       "sla3_violation_rate", "total_energy_kwh", "migrations", "machine_preemptions",
       "task_preemptions", "tasks_completed", "makespan_hours"},
      [&](std::size_t replication, Rng& /*rng*/, mc::Recorder& rec) {
        const fleet::FleetReport r = run_once(substream_seed(spec.seed, replication));
        for (std::size_t tier = 0; tier < fleet::kSlaTiers; ++tier) {
          rec.record(tier, r.violation_rate(tier));
        }
        rec.record(4, r.total_energy_kwh);
        rec.record(5, static_cast<double>(r.migrations));
        rec.record(6, static_cast<double>(r.machine_preemptions));
        rec.record(7, static_cast<double>(r.task_preemptions));
        rec.record(8, static_cast<double>(r.tasks_completed));
        rec.record(9, r.makespan_hours);
        if (replication == 0) result.fleet_report = r;
      });
  result.metrics = stats.metrics;
  return result;
}

ScenarioResult run_portfolio(const ScenarioSpec& spec) {
  const portfolio::MarketCatalog catalog =
      portfolio::MarketCatalog::synthetic(spec.catalog_vms_per_cell, spec.catalog_seed);
  portfolio::PortfolioConfig config;
  config.jobs = spec.jobs;
  config.job_hours = spec.job_hours;
  config.risk_bound = spec.risk_bound;
  config.correlation_penalty = spec.correlation_penalty;
  const portfolio::PortfolioOptimizer optimizer(catalog, config);
  const portfolio::Allocation allocation = optimizer.optimize_greedy();

  auto run_once = [&](std::uint64_t seed) {
    portfolio::MultiMarketConfig mm;
    mm.job_hours = spec.job_hours;
    mm.seed = seed;
    portfolio::MultiMarketService service(catalog, mm);
    return service.run(allocation);
  };

  ScenarioResult result;
  result.kind = ScenarioKind::kPortfolio;
  if (spec.replications <= 1) {
    result.market_report = run_once(spec.seed);
    return result;
  }
  mc::EngineOptions engine;
  engine.replications = spec.replications;
  engine.seed = spec.seed;
  const mc::ReplicationReport stats = mc::run_replications(
      engine, {"cost_per_job", "makespan_hours", "jobs_completed", "rebalances"},
      [&](std::size_t replication, Rng& /*rng*/, mc::Recorder& rec) {
        const portfolio::MultiMarketReport r = run_once(substream_seed(spec.seed, replication));
        rec.record(0, r.cost_per_job);
        rec.record(1, r.makespan_hours);
        rec.record(2, static_cast<double>(r.jobs_completed));
        rec.record(3, static_cast<double>(r.rebalances));
        if (replication == 0) result.market_report = r;
      });
  result.metrics = stats.metrics;
  return result;
}

}  // namespace

void append_report_fields(JsonObject& obj, const sim::ServiceReport& report) {
  obj.emplace_back("jobs_completed", report.jobs_completed);
  obj.emplace_back("makespan_hours", report.makespan_hours);
  obj.emplace_back("increase_fraction", report.increase_fraction);
  obj.emplace_back("cost_per_job", report.cost_per_job);
  obj.emplace_back("on_demand_cost_per_job", report.on_demand_cost_per_job);
  obj.emplace_back("cost_reduction_factor", report.cost_reduction_factor);
  obj.emplace_back("preemptions", report.preemptions);
  obj.emplace_back("preemptions_total", report.preemptions_total);
  obj.emplace_back("vms_launched", report.vms_launched);
  obj.emplace_back("wasted_hours", report.wasted_hours);
}

JsonValue metrics_block_json(const std::vector<mc::MetricSummary>& metrics) {
  JsonObject block;
  for (const mc::MetricSummary& m : metrics) {
    JsonObject stat;
    stat.emplace_back("mean", m.mean);
    stat.emplace_back("std_error", m.std_error);
    stat.emplace_back("ci95", m.ci95_half);
    stat.emplace_back("min", m.min);
    stat.emplace_back("max", m.max);
    block.emplace_back(m.name, std::move(stat));
  }
  return JsonValue(std::move(block));
}

dist::DistributionPtr make_ground_truth(const ScenarioSpec& spec) {
  return resolve_distribution(spec.ground_truth);
}

dist::DistributionPtr make_decision_model(const ScenarioSpec& spec,
                                          const dist::Distribution& ground_truth) {
  if (spec.decision.source == DistributionSpec::Source::kTruth) return ground_truth.clone();
  return resolve_distribution(spec.decision);
}

sim::Workload resolve_workload(const ScenarioSpec& spec) {
  for (const sim::Workload& w : sim::all_workloads()) {
    if (w.name == spec.app) {
      return spec.vm_type ? sim::repack_for_vm_type(w, *spec.vm_type) : w;
    }
  }
  throw InvalidArgument("unknown app '" + spec.app + "' (try: nanoconfinement, shapes, lulesh)");
}

sim::ServiceConfig service_config(const ScenarioSpec& spec) {
  sim::ServiceConfig cfg;
  cfg.vm_type = resolve_workload(spec).vm_type;
  cfg.cluster_size = spec.cluster_size;
  cfg.seed = spec.seed;
  cfg.reuse_policy = spec.policy;
  cfg.checkpointing = spec.checkpointing;
  return cfg;
}

policy::CheckpointConfig checkpoint_config(const ScenarioSpec& spec) {
  policy::CheckpointConfig cfg;
  cfg.step_hours = spec.step_hours;
  cfg.checkpoint_cost_hours = spec.checkpoint_cost_hours;
  cfg.restart_overhead_hours = spec.restart_overhead_hours;
  return cfg;
}

ScenarioResult run_service(const ScenarioSpec& spec, const dist::Distribution& ground_truth,
                           const dist::Distribution& decision_model) {
  const sim::Workload workload = resolve_workload(spec);

  // The DP table is precomputed once per scenario (it only depends on the
  // decision model and the job length), then shared by every replication.
  std::shared_ptr<const policy::CheckpointDp> dp;
  if (spec.checkpointing) {
    policy::CheckpointConfig ck;
    ck.checkpoint_cost_hours = workload.job.checkpoint_cost_hours;
    dp = std::make_shared<const policy::CheckpointDp>(decision_model, workload.job.work_hours,
                                                      ck);
  }

  auto run_once = [&](std::uint64_t seed) {
    sim::ServiceConfig cfg;
    cfg.vm_type = workload.vm_type;
    cfg.cluster_size = spec.cluster_size;
    cfg.seed = seed;
    cfg.reuse_policy = spec.policy;
    cfg.checkpointing = spec.checkpointing;
    std::unique_ptr<sim::CheckpointPlanner> planner;
    if (dp) planner = std::make_unique<sim::DpCheckpointPlanner>(dp);
    sim::BatchService service(cfg, ground_truth.clone(), decision_model.clone(),
                              std::move(planner));
    sim::BagOfJobs bag;
    bag.name = spec.app;
    bag.spec = workload.job;
    bag.spec.checkpointable = cfg.checkpointing;
    bag.count = spec.jobs;
    service.submit_bag(bag);
    return service.run();
  };

  ScenarioResult result;
  result.kind = ScenarioKind::kService;
  if (spec.replications <= 1) {
    result.report = run_once(spec.seed);
    return result;
  }

  // Fan over the mc engine: per-replication seeds are a pure function of
  // (scenario seed, index), so reports are thread-count independent and the
  // first replication doubles as the representative report.
  mc::EngineOptions engine;
  engine.replications = spec.replications;
  engine.seed = spec.seed;
  const mc::ReplicationReport stats = mc::run_replications(
      engine,
      {"cost_per_job", "makespan_hours", "cost_reduction_factor", "preemptions", "wasted_hours"},
      [&](std::size_t replication, Rng& /*rng*/, mc::Recorder& rec) {
        const sim::ServiceReport r = run_once(substream_seed(spec.seed, replication));
        rec.record(0, r.cost_per_job);
        rec.record(1, r.makespan_hours);
        rec.record(2, r.cost_reduction_factor);
        rec.record(3, static_cast<double>(r.preemptions));
        rec.record(4, r.wasted_hours);
        // Single writer (only index 0), read after run_replications joins.
        if (replication == 0) result.report = r;
      });
  result.metrics = stats.metrics;
  return result;
}

ScenarioResult run(const ScenarioSpec& spec) {
  validate(spec);
  switch (spec.kind) {
    case ScenarioKind::kService: {
      const dist::DistributionPtr ground_truth = make_ground_truth(spec);
      const dist::DistributionPtr decision_model = make_decision_model(spec, *ground_truth);
      return run_service(spec, *ground_truth, *decision_model);
    }
    case ScenarioKind::kCheckpoint:
      return run_checkpoint(spec);
    case ScenarioKind::kPortfolio:
      return run_portfolio(spec);
    case ScenarioKind::kFleet:
      return run_fleet(spec);
  }
  throw InvalidArgument("unknown scenario kind");
}

JsonValue ScenarioResult::to_json() const {
  JsonObject obj;
  obj.emplace_back("kind", to_string(kind));
  switch (kind) {
    case ScenarioKind::kService: {
      JsonObject rep;
      append_report_fields(rep, report);
      obj.emplace_back("report", std::move(rep));
      break;
    }
    case ScenarioKind::kCheckpoint: {
      JsonObject rep;
      rep.emplace_back("mean_makespan_hours", makespan.mean_hours);
      rep.emplace_back("stddev_hours", makespan.stddev_hours);
      rep.emplace_back("std_error_hours", makespan.std_error_hours);
      rep.emplace_back("ci95_half_hours", makespan.ci95_half_hours);
      rep.emplace_back("mean_preemptions", makespan.mean_preemptions);
      rep.emplace_back("max_hours", makespan.max_hours);
      rep.emplace_back("runs", makespan.runs);
      obj.emplace_back("report", std::move(rep));
      break;
    }
    case ScenarioKind::kPortfolio: {
      JsonObject rep;
      rep.emplace_back("jobs_completed", market_report.jobs_completed);
      rep.emplace_back("jobs_abandoned", market_report.jobs_abandoned);
      rep.emplace_back("makespan_hours", market_report.makespan_hours);
      rep.emplace_back("total_cost", market_report.total_cost);
      rep.emplace_back("cost_per_job", market_report.cost_per_job);
      rep.emplace_back("rebalances", market_report.rebalances);
      std::size_t used = 0;
      for (const auto& m : market_report.markets) {
        if (m.assigned > 0 || m.migrated_in > 0) ++used;
      }
      rep.emplace_back("markets_used", used);
      obj.emplace_back("report", std::move(rep));
      break;
    }
    case ScenarioKind::kFleet:
      obj.emplace_back("report", fleet_report.to_json());
      break;
  }
  append_summary(obj, metrics);
  return JsonValue(std::move(obj));
}

}  // namespace preempt::scenario
