// Execution of declarative scenarios.
//
// A scenario run resolves the spec into the existing engines — the batch
// service DES (sim::BatchService), the checkpoint-plan Monte Carlo
// (policy::simulate_plan), or the multi-market portfolio simulation
// (portfolio::MultiMarketService) — and, when replications > 1, fans the
// runs over the src/mc replication engine with per-replication seeds that
// are a pure function of (spec seed, index). Identical spec + seed therefore
// produce identical reports regardless of thread count, and the service path
// is byte-identical to the controller daemon's historical hand-wired bag
// execution (same metric names, same substream seeding, same rep-0
// representative report).
#pragma once

#include "dist/distribution.hpp"
#include "fleet/simulation.hpp"
#include "mc/accumulator.hpp"
#include "policy/checkpoint.hpp"
#include "policy/checkpoint_sim.hpp"
#include "portfolio/multi_market_service.hpp"
#include "scenario/scenario.hpp"
#include "sim/service.hpp"

namespace preempt::scenario {

/// Outcome of one scenario run. Exactly one of the kind-specific payloads is
/// meaningful (matching `kind`); `metrics` carries the mc-engine replication
/// statistics (mean/std_error/ci95/min/max) for the headline metrics.
struct ScenarioResult {
  ScenarioKind kind = ScenarioKind::kService;
  sim::ServiceReport report;                    ///< service: replication-0 representative
  policy::SimulatedMakespan makespan;           ///< checkpoint
  portfolio::MultiMarketReport market_report;   ///< portfolio: replication-0 representative
  fleet::FleetReport fleet_report;              ///< fleet: replication-0 representative
  std::vector<mc::MetricSummary> metrics;

  JsonValue to_json() const;
};

/// Append a ServiceReport's headline metrics in the frozen field order the
/// bag API payloads use; scenario results and /v1/bags resources serialize
/// through this one definition.
void append_report_fields(JsonObject& obj, const sim::ServiceReport& report);

/// The {metric: {mean,std_error,ci95,min,max}} replication-statistics block
/// shared by scenario results and replicated bag reports.
JsonValue metrics_block_json(const std::vector<mc::MetricSummary>& metrics);

/// Resolve the ground-truth lifetime law of a spec. Throws on source=truth
/// (which only decision models may use).
dist::DistributionPtr make_ground_truth(const ScenarioSpec& spec);

/// Resolve the decision model; source=truth clones `ground_truth`.
dist::DistributionPtr make_decision_model(const ScenarioSpec& spec,
                                          const dist::Distribution& ground_truth);

/// The workload template after any vm_type repack (service kind).
sim::Workload resolve_workload(const ScenarioSpec& spec);

/// ServiceConfig assembled from a service-kind spec (seed included).
sim::ServiceConfig service_config(const ScenarioSpec& spec);

/// CheckpointConfig assembled from a checkpoint-kind spec.
policy::CheckpointConfig checkpoint_config(const ScenarioSpec& spec);

/// Validate + run a scenario end to end.
ScenarioResult run(const ScenarioSpec& spec);

/// Service-kind run with injected lifetime laws. This is the controller
/// daemon's path: its registry-fitted decision model (cloned under the
/// daemon lock) stands in for spec.decision, and execution — single run or
/// mc-engine fan-out — is shared with run().
ScenarioResult run_service(const ScenarioSpec& spec, const dist::Distribution& ground_truth,
                           const dist::Distribution& decision_model);

}  // namespace preempt::scenario
