// Declarative scenario specifications (the paper's Sec. 6 experiment shape:
// "pick a ground-truth lifetime law + workload + policy + market, run
// replications").
//
// A ScenarioSpec is the single validated object behind `preempt scenario`,
// the /v1/scenarios REST routes, and the fig08/fig09 bench harnesses. It
// composes the existing building blocks — sim::ServiceConfig + workload
// templates (service scenarios), policy::CheckpointConfig (checkpoint
// scenarios), portfolio::PortfolioConfig + MultiMarketConfig (portfolio
// scenarios) — plus a declarative choice of ground-truth lifetime law: a
// calibrated regime cell, a bathtub fitted to a synthetic campaign of a
// cell, or any dist/ family by name (dist::make_distribution).
//
// Specs round-trip through common/json; parsing is strict (unknown fields
// and out-of-range values are rejected with clean messages, so the REST
// surface answers 400 instead of mis-running a typo).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/spec.hpp"
#include "sim/service.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::scenario {

/// What a scenario simulates.
enum class ScenarioKind {
  kService,     ///< batch computing service on a bag of jobs (Sec. 5 / 6.3)
  kCheckpoint,  ///< one checkpoint plan executed under sampled preemptions (Sec. 6.2.2)
  kPortfolio,   ///< multi-market allocation executed by MultiMarketService
  kFleet,       ///< datacenter fleet: SLA tiers, power states, migration (src/fleet)
};

std::string to_string(ScenarioKind kind);
std::optional<ScenarioKind> scenario_kind_from_string(const std::string& text);

/// Where a lifetime law comes from.
struct DistributionSpec {
  enum class Source {
    kRegime,  ///< calibrated ground-truth bathtub of a VmType x Zone x Period cell
    kFitted,  ///< bathtub fitted to a synthetic measurement campaign of the cell
    kFamily,  ///< explicit family + parameters via dist::make_distribution
    kTruth,   ///< decision models only: believe the scenario's ground truth
  };

  Source source = Source::kRegime;
  trace::RegimeKey regime{};       ///< kRegime / kFitted cell
  std::size_t fit_samples = 300;   ///< kFitted campaign size
  std::uint64_t fit_seed = 2019;   ///< kFitted campaign seed
  std::string family;              ///< kFamily name (dist::distribution_families)
  std::vector<double> params;      ///< kFamily parameters

  /// The decision-model default: believe the scenario's ground truth.
  static DistributionSpec truth() {
    DistributionSpec spec;
    spec.source = Source::kTruth;
    return spec;
  }

  friend bool operator==(const DistributionSpec&, const DistributionSpec&) = default;
};

/// One declarative experiment cell. Only the fields of the active `kind`
/// (plus the common block) are serialized, validated and sweepable.
struct ScenarioSpec {
  // --- common ---
  std::string name;  ///< optional label (set for registry entries / sweep cells)
  ScenarioKind kind = ScenarioKind::kService;
  std::uint64_t seed = 42;
  std::size_t replications = 1;  ///< > 1 fans over the src/mc engine (ci95 per metric)
  DistributionSpec ground_truth;
  DistributionSpec decision = DistributionSpec::truth();

  // --- service ---
  std::string app = "nanoconfinement";       ///< workload template name
  std::optional<trace::VmType> vm_type;      ///< repack target (native type otherwise)
  std::size_t jobs = 100;                    ///< bag size (portfolio: bag size N)
  std::size_t cluster_size = 32;
  sim::ReusePolicyKind policy = sim::ReusePolicyKind::kModelDriven;
  bool checkpointing = false;

  // --- checkpoint ---
  std::string scheduler = "dp";        ///< dp | young-daly | none
  double job_hours = 4.0;              ///< (portfolio: failure-free per-job hours)
  double start_age_hours = 0.0;
  double mttf_hours = 1.0;             ///< young-daly world view (Sec. 6.2.2)
  double checkpoint_cost_hours = 1.0 / 60.0;
  double step_hours = 1.0 / 60.0;
  double restart_overhead_hours = 0.0;

  // --- portfolio ---
  double risk_bound = 0.05;
  double correlation_penalty = 0.5;
  std::size_t catalog_vms_per_cell = 44;
  std::uint64_t catalog_seed = 2019;

  // --- fleet ---
  /// Machine classes, task classes and policy knobs ("fleet" block). The
  /// top-level "placement" field aliases fleet.placement so sweeps can scan
  /// policies without repeating the whole block.
  fleet::FleetSpec fleet;
};

/// Serialize (kind-relevant fields only; stable key order).
JsonValue to_json(const ScenarioSpec& spec);

/// Strict parse + validate. Throws InvalidArgument with a clean message on
/// unknown fields, wrong types, or out-of-range values.
ScenarioSpec scenario_from_json(const JsonValue& value);

/// Set one field from a JSON value ("vms", "policy", "app", ...). Shared by
/// scenario_from_json, sweep-axis expansion and REST run overrides, so every
/// entry point accepts exactly the same field vocabulary. Throws
/// InvalidArgument on unknown fields, fields of another kind, or bad values.
void apply_field(ScenarioSpec& spec, const std::string& field, const JsonValue& value);

/// Full structural validation; throws InvalidArgument with a clean message.
void validate(const ScenarioSpec& spec);

/// Render a sweep-axis value the way apply_field accepts it ("32", "model",
/// "true") for cell naming and tables.
std::string axis_value_string(const JsonValue& value);

}  // namespace preempt::scenario
