// Named built-in scenarios reproducing the paper's experiment setups.
//
// Each entry is a SweepSpec (single-cell when it has no axes) that `preempt
// scenario run --name <x>`, POST /v1/scenarios/<x>/run, and the fig08/fig09
// bench harnesses all resolve through, so the paper's configurations live in
// exactly one place.
#pragma once

#include <string>
#include <vector>

#include "scenario/sweep.hpp"

namespace preempt::scenario {

struct NamedScenario {
  std::string name;
  std::string summary;
  SweepSpec sweep;

  bool single_cell() const { return sweep.axes.empty(); }
};

/// All built-ins, in listing order:
///   paper-nanoconfinement / paper-shapes / paper-lulesh  (Sec. 6 workloads)
///   paper-fig08-checkpointing                            (Fig. 8 DP vs YD)
///   paper-fig09a-cost                                    (Fig. 9a, 3 workloads)
///   paper-fig09b-preemptions                             (Fig. 9b, replicated)
///   paper-fig09-quick                                    (CI-sized smoke run)
///   grid-cluster-policy                                  (12-cell CI sweep demo)
///   portfolio-baseline                                   (multi-market run)
const std::vector<NamedScenario>& builtin_scenarios();

/// Lookup by name; nullptr when unknown.
const NamedScenario* find_builtin(const std::string& name);

}  // namespace preempt::scenario
