#include "scenario/scenario.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "dist/factory.hpp"
#include "fleet/placement.hpp"
#include "sim/workloads.hpp"

namespace preempt::scenario {

namespace {

void fail(const std::string& message) { throw InvalidArgument(message); }

/// Strict number read: the value must be a JSON number, finite.
double as_finite_number(const JsonValue& value, const std::string& field) {
  if (!value.is_number() || !std::isfinite(value.as_number())) {
    fail("scenario field '" + field + "' must be a finite number");
  }
  return value.as_number();
}

/// Whole non-negative integer up to 2^53 (exactly representable in a double).
std::uint64_t as_uint(const JsonValue& value, const std::string& field) {
  const double v = as_finite_number(value, field);
  if (v < 0 || v > 9007199254740992.0 || v != std::floor(v)) {
    fail("scenario field '" + field + "' must be a whole number in 0..2^53");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& as_string(const JsonValue& value, const std::string& field) {
  if (!value.is_string()) fail("scenario field '" + field + "' must be a string");
  return value.as_string();
}

bool as_bool(const JsonValue& value, const std::string& field) {
  if (!value.is_bool()) fail("scenario field '" + field + "' must be a boolean");
  return value.as_bool();
}

sim::ReusePolicyKind policy_from_string(const std::string& text) {
  const auto parsed = sim::reuse_policy_from_string(text);
  if (!parsed) fail("unknown policy '" + text + "' (expected model|memoryless|fresh)");
  return *parsed;
}

trace::VmType vm_type_from(const JsonValue& value, const std::string& field) {
  const auto parsed = trace::vm_type_from_string(as_string(value, field));
  if (!parsed) fail("unknown vm type '" + value.as_string() + "' in field '" + field + "'");
  return *parsed;
}

const char* source_string(DistributionSpec::Source source) {
  switch (source) {
    case DistributionSpec::Source::kRegime: return "regime";
    case DistributionSpec::Source::kFitted: return "fitted";
    case DistributionSpec::Source::kFamily: return "family";
    case DistributionSpec::Source::kTruth: return "truth";
  }
  return "regime";
}

JsonValue distribution_to_json(const DistributionSpec& spec) {
  JsonObject obj;
  obj.emplace_back("source", source_string(spec.source));
  switch (spec.source) {
    case DistributionSpec::Source::kTruth:
      break;
    case DistributionSpec::Source::kRegime:
    case DistributionSpec::Source::kFitted:
      obj.emplace_back("type", trace::to_string(spec.regime.type));
      obj.emplace_back("zone", trace::to_string(spec.regime.zone));
      obj.emplace_back("period", trace::to_string(spec.regime.period));
      obj.emplace_back("workload", trace::to_string(spec.regime.workload));
      if (spec.source == DistributionSpec::Source::kFitted) {
        obj.emplace_back("fit_samples", spec.fit_samples);
        obj.emplace_back("fit_seed", spec.fit_seed);
      }
      break;
    case DistributionSpec::Source::kFamily: {
      obj.emplace_back("family", spec.family);
      JsonArray params;
      for (double p : spec.params) params.emplace_back(p);
      obj.emplace_back("params", std::move(params));
      break;
    }
  }
  return JsonValue(std::move(obj));
}

DistributionSpec distribution_from_json(const JsonValue& value, const std::string& field) {
  if (!value.is_object()) fail("scenario field '" + field + "' must be an object");
  DistributionSpec spec;
  const std::string source = value.string_or("source", "regime");
  if (source == "regime") {
    spec.source = DistributionSpec::Source::kRegime;
  } else if (source == "fitted") {
    spec.source = DistributionSpec::Source::kFitted;
  } else if (source == "family") {
    spec.source = DistributionSpec::Source::kFamily;
  } else if (source == "truth") {
    spec.source = DistributionSpec::Source::kTruth;
  } else {
    fail("'" + field + ".source' must be regime|fitted|family|truth, got '" + source + "'");
  }
  for (const auto& [key, v] : value.as_object()) {
    if (key == "source") continue;
    const std::string path = field + "." + key;
    if (key == "type") {
      spec.regime.type = vm_type_from(v, path);
    } else if (key == "zone") {
      const auto zone = trace::zone_from_string(as_string(v, path));
      if (!zone) fail("unknown zone '" + v.as_string() + "' in field '" + path + "'");
      spec.regime.zone = *zone;
    } else if (key == "period") {
      const auto period = trace::day_period_from_string(as_string(v, path));
      if (!period) fail("unknown period '" + v.as_string() + "' in field '" + path + "'");
      spec.regime.period = *period;
    } else if (key == "workload") {
      const auto workload = trace::workload_from_string(as_string(v, path));
      if (!workload) fail("unknown workload '" + v.as_string() + "' in field '" + path + "'");
      spec.regime.workload = *workload;
    } else if (key == "fit_samples") {
      spec.fit_samples = static_cast<std::size_t>(as_uint(v, path));
    } else if (key == "fit_seed") {
      spec.fit_seed = as_uint(v, path);
    } else if (key == "family") {
      spec.family = as_string(v, path);
    } else if (key == "params") {
      if (!v.is_array()) fail("scenario field '" + path + "' must be an array of numbers");
      spec.params.clear();
      for (const auto& p : v.as_array()) spec.params.push_back(as_finite_number(p, path));
    } else {
      fail("unknown scenario field '" + path + "'");
    }
  }
  return spec;
}

void validate_distribution(const DistributionSpec& spec, const std::string& field,
                           bool truth_allowed) {
  switch (spec.source) {
    case DistributionSpec::Source::kTruth:
      if (!truth_allowed) fail("'" + field + ".source' cannot be 'truth'");
      break;
    case DistributionSpec::Source::kRegime:
      break;
    case DistributionSpec::Source::kFitted:
      if (spec.fit_samples < 10 || spec.fit_samples > 100000) {
        fail("'" + field + ".fit_samples' must be in 10..100000");
      }
      break;
    case DistributionSpec::Source::kFamily:
      // Constructing surfaces unknown families and bad parameters now, so a
      // queued REST run cannot fail late on a typo.
      dist::make_distribution(spec.family, spec.params);
      break;
  }
}

bool service_field(const std::string& field) {
  return field == "app" || field == "vm_type" || field == "jobs" || field == "vms" ||
         field == "policy" || field == "checkpointing" || field == "decision";
}

bool checkpoint_field(const std::string& field) {
  return field == "scheduler" || field == "job_hours" || field == "start_age_hours" ||
         field == "mttf_hours" || field == "checkpoint_cost_hours" || field == "step_hours" ||
         field == "restart_overhead_hours";
}

bool portfolio_field(const std::string& field) {
  return field == "jobs" || field == "job_hours" || field == "risk" || field == "lambda" ||
         field == "catalog_vms_per_cell" || field == "catalog_seed";
}

bool fleet_field(const std::string& field) {
  return field == "fleet" || field == "placement";
}

bool field_allowed(ScenarioKind kind, const std::string& field) {
  if (field == "name" || field == "kind" || field == "seed" || field == "replications") {
    return true;
  }
  // Portfolio scenarios have no single ground truth: every market cell of
  // the catalog carries its own calibrated law.
  if (field == "ground_truth") return kind != ScenarioKind::kPortfolio;
  switch (kind) {
    case ScenarioKind::kService: return service_field(field);
    case ScenarioKind::kCheckpoint: return checkpoint_field(field);
    case ScenarioKind::kPortfolio: return portfolio_field(field);
    case ScenarioKind::kFleet: return fleet_field(field);
  }
  return false;
}

}  // namespace

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kService: return "service";
    case ScenarioKind::kCheckpoint: return "checkpoint";
    case ScenarioKind::kPortfolio: return "portfolio";
    case ScenarioKind::kFleet: return "fleet";
  }
  return "service";
}

std::optional<ScenarioKind> scenario_kind_from_string(const std::string& text) {
  if (text == "service") return ScenarioKind::kService;
  if (text == "checkpoint") return ScenarioKind::kCheckpoint;
  if (text == "portfolio") return ScenarioKind::kPortfolio;
  if (text == "fleet") return ScenarioKind::kFleet;
  return std::nullopt;
}

JsonValue to_json(const ScenarioSpec& spec) {
  JsonObject obj;
  if (!spec.name.empty()) obj.emplace_back("name", spec.name);
  obj.emplace_back("kind", to_string(spec.kind));
  obj.emplace_back("seed", spec.seed);
  obj.emplace_back("replications", spec.replications);
  if (spec.kind != ScenarioKind::kPortfolio) {
    obj.emplace_back("ground_truth", distribution_to_json(spec.ground_truth));
  }
  switch (spec.kind) {
    case ScenarioKind::kService:
      obj.emplace_back("decision", distribution_to_json(spec.decision));
      obj.emplace_back("app", spec.app);
      if (spec.vm_type) obj.emplace_back("vm_type", trace::to_string(*spec.vm_type));
      obj.emplace_back("jobs", spec.jobs);
      obj.emplace_back("vms", spec.cluster_size);
      obj.emplace_back("policy", sim::to_string(spec.policy));
      obj.emplace_back("checkpointing", spec.checkpointing);
      break;
    case ScenarioKind::kCheckpoint:
      obj.emplace_back("scheduler", spec.scheduler);
      obj.emplace_back("job_hours", spec.job_hours);
      obj.emplace_back("start_age_hours", spec.start_age_hours);
      obj.emplace_back("mttf_hours", spec.mttf_hours);
      obj.emplace_back("checkpoint_cost_hours", spec.checkpoint_cost_hours);
      obj.emplace_back("step_hours", spec.step_hours);
      obj.emplace_back("restart_overhead_hours", spec.restart_overhead_hours);
      break;
    case ScenarioKind::kPortfolio:
      obj.emplace_back("jobs", spec.jobs);
      obj.emplace_back("job_hours", spec.job_hours);
      obj.emplace_back("risk", spec.risk_bound);
      obj.emplace_back("lambda", spec.correlation_penalty);
      obj.emplace_back("catalog_vms_per_cell", spec.catalog_vms_per_cell);
      obj.emplace_back("catalog_seed", spec.catalog_seed);
      break;
    case ScenarioKind::kFleet:
      // The fleet block carries "placement" itself, so no duplicate
      // top-level key is emitted; the alias exists for apply_field/sweeps.
      obj.emplace_back("fleet", fleet::to_json(spec.fleet));
      break;
  }
  return JsonValue(std::move(obj));
}

void apply_field(ScenarioSpec& spec, const std::string& field, const JsonValue& value) {
  if (!field_allowed(spec.kind, field)) {
    if (field_allowed(ScenarioKind::kService, field) ||
        field_allowed(ScenarioKind::kCheckpoint, field) ||
        field_allowed(ScenarioKind::kPortfolio, field) ||
        field_allowed(ScenarioKind::kFleet, field)) {
      fail("scenario field '" + field + "' does not apply to kind '" + to_string(spec.kind) +
           "'");
    }
    fail("unknown scenario field '" + field + "'");
  }
  if (field == "name") {
    spec.name = as_string(value, field);
  } else if (field == "kind") {
    const auto kind = scenario_kind_from_string(as_string(value, field));
    if (!kind) fail("unknown scenario kind '" + value.as_string() + "'");
    spec.kind = *kind;
  } else if (field == "seed") {
    spec.seed = as_uint(value, field);
  } else if (field == "replications") {
    spec.replications = static_cast<std::size_t>(as_uint(value, field));
  } else if (field == "ground_truth") {
    spec.ground_truth = distribution_from_json(value, field);
  } else if (field == "decision") {
    spec.decision = distribution_from_json(value, field);
  } else if (field == "app") {
    spec.app = as_string(value, field);
  } else if (field == "vm_type") {
    spec.vm_type = vm_type_from(value, field);
  } else if (field == "jobs") {
    spec.jobs = static_cast<std::size_t>(as_uint(value, field));
  } else if (field == "vms") {
    spec.cluster_size = static_cast<std::size_t>(as_uint(value, field));
  } else if (field == "policy") {
    spec.policy = policy_from_string(as_string(value, field));
  } else if (field == "checkpointing") {
    spec.checkpointing = as_bool(value, field);
  } else if (field == "scheduler") {
    spec.scheduler = as_string(value, field);
  } else if (field == "job_hours") {
    spec.job_hours = as_finite_number(value, field);
  } else if (field == "start_age_hours") {
    spec.start_age_hours = as_finite_number(value, field);
  } else if (field == "mttf_hours") {
    spec.mttf_hours = as_finite_number(value, field);
  } else if (field == "checkpoint_cost_hours") {
    spec.checkpoint_cost_hours = as_finite_number(value, field);
  } else if (field == "step_hours") {
    spec.step_hours = as_finite_number(value, field);
  } else if (field == "restart_overhead_hours") {
    spec.restart_overhead_hours = as_finite_number(value, field);
  } else if (field == "risk") {
    spec.risk_bound = as_finite_number(value, field);
  } else if (field == "lambda") {
    spec.correlation_penalty = as_finite_number(value, field);
  } else if (field == "catalog_vms_per_cell") {
    spec.catalog_vms_per_cell = static_cast<std::size_t>(as_uint(value, field));
  } else if (field == "catalog_seed") {
    spec.catalog_seed = as_uint(value, field);
  } else if (field == "fleet") {
    spec.fleet = fleet::fleet_spec_from_json(value);
  } else if (field == "placement") {
    fleet::make_placement_policy(as_string(value, field));  // reject typos at parse time
    spec.fleet.placement = value.as_string();
  } else {
    fail("unknown scenario field '" + field + "'");  // unreachable; keeps the chain total
  }
}

ScenarioSpec scenario_from_json(const JsonValue& value) {
  if (!value.is_object()) fail("a scenario spec must be a JSON object");
  ScenarioSpec spec;
  // Kind first: it gates which other fields are legal, independent of the
  // order the caller happened to write them in.
  if (const JsonValue* kind = value.find("kind")) apply_field(spec, "kind", *kind);
  for (const auto& [key, v] : value.as_object()) {
    if (key == "kind") continue;
    apply_field(spec, key, v);
  }
  validate(spec);
  return spec;
}

void validate(const ScenarioSpec& spec) {
  if (spec.replications < 1 || spec.replications > 100000) {
    fail("replications must be in 1..100000");
  }
  if (spec.kind != ScenarioKind::kPortfolio) {
    validate_distribution(spec.ground_truth, "ground_truth", /*truth_allowed=*/false);
  }
  switch (spec.kind) {
    case ScenarioKind::kService: {
      validate_distribution(spec.decision, "decision", /*truth_allowed=*/true);
      if (spec.jobs < 1 || spec.jobs > 100000) fail("jobs must be in 1..100000");
      if (spec.cluster_size < 1 || spec.cluster_size > 4096) fail("vms must be in 1..4096");
      const auto workloads = sim::all_workloads();
      const sim::Workload* found = nullptr;
      for (const auto& w : workloads) {
        if (w.name == spec.app) found = &w;
      }
      if (found == nullptr) {
        fail("unknown app '" + spec.app + "' (try: nanoconfinement, shapes, lulesh)");
      }
      // Surfaces un-packable vm_type choices and too-small clusters at
      // validation time rather than from inside a queued job.
      const sim::Workload resolved =
          spec.vm_type ? sim::repack_for_vm_type(*found, *spec.vm_type) : *found;
      if (static_cast<std::size_t>(resolved.job.gang_vms) > spec.cluster_size) {
        fail("app '" + spec.app + "' needs a gang of " +
             std::to_string(resolved.job.gang_vms) + " x " +
             trace::to_string(resolved.vm_type) + " VMs; vms=" +
             std::to_string(spec.cluster_size) + " is too small");
      }
      break;
    }
    case ScenarioKind::kCheckpoint:
      if (spec.scheduler != "dp" && spec.scheduler != "young-daly" &&
          spec.scheduler != "none") {
        fail("scheduler must be dp|young-daly|none, got '" + spec.scheduler + "'");
      }
      if (spec.job_hours <= 0.0 || spec.job_hours > 240.0) {
        fail("job_hours must be in (0, 240]");
      }
      if (spec.start_age_hours < 0.0) fail("start_age_hours must be >= 0");
      if (spec.mttf_hours <= 0.0) fail("mttf_hours must be > 0");
      if (spec.checkpoint_cost_hours <= 0.0) fail("checkpoint_cost_hours must be > 0");
      if (spec.step_hours <= 0.0) fail("step_hours must be > 0");
      if (spec.restart_overhead_hours < 0.0) fail("restart_overhead_hours must be >= 0");
      break;
    case ScenarioKind::kPortfolio:
      if (spec.jobs < 1 || spec.jobs > 100000) fail("jobs must be in 1..100000");
      if (spec.job_hours <= 0.0) fail("job_hours must be > 0");
      if (spec.risk_bound <= 0.0 || spec.risk_bound > 1.0) fail("risk must be in (0, 1]");
      if (spec.correlation_penalty < 0.0) fail("lambda must be >= 0");
      if (spec.catalog_vms_per_cell < 4 || spec.catalog_vms_per_cell > 1000) {
        fail("catalog_vms_per_cell must be in 4..1000");
      }
      break;
    case ScenarioKind::kFleet:
      fleet::validate(spec.fleet);
      break;
  }
}

std::string axis_value_string(const JsonValue& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "true" : "false";
  return value.dump();
}

}  // namespace preempt::scenario
