#include "scenario/sweep.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt::scenario {

namespace {

void fail(const std::string& message) { throw InvalidArgument(message); }

JsonValue typed_axis_value(const std::string& token) {
  if (token == "true") return JsonValue(true);
  if (token == "false") return JsonValue(false);
  char* end = nullptr;
  const double number = std::strtod(token.c_str(), &end);
  if (end != token.c_str() && *end == '\0') return JsonValue(number);
  return JsonValue(token);
}

}  // namespace

std::size_t SweepSpec::cardinality() const {
  std::size_t cells = 1;
  for (const SweepAxis& axis : axes) {
    if (axis.values.empty()) return 0;
    // Saturate instead of overflowing; expand() rejects past the cap anyway.
    if (cells > kMaxSweepCells) return cells;
    cells *= axis.values.size();
  }
  return cells;
}

JsonValue to_json(const SweepSpec& spec) {
  JsonObject obj;
  obj.emplace_back("base", to_json(spec.base));
  JsonArray axes;
  for (const SweepAxis& axis : spec.axes) {
    JsonObject a;
    a.emplace_back("field", axis.field);
    a.emplace_back("values", axis.values);
    axes.emplace_back(std::move(a));
  }
  obj.emplace_back("axes", std::move(axes));
  return JsonValue(std::move(obj));
}

SweepSpec sweep_from_json(const JsonValue& value) {
  if (!value.is_object()) fail("a sweep spec must be a JSON object");
  if (value.find("base") == nullptr) {
    // A bare scenario object is a single-cell sweep.
    return SweepSpec{scenario_from_json(value), {}};
  }
  SweepSpec spec;
  for (const auto& [key, v] : value.as_object()) {
    if (key == "base") {
      spec.base = scenario_from_json(v);
    } else if (key == "axes") {
      if (!v.is_array()) fail("'axes' must be an array of {field, values} objects");
      for (const JsonValue& axis_value : v.as_array()) {
        if (!axis_value.is_object()) fail("'axes' entries must be objects");
        SweepAxis axis;
        for (const auto& [axis_key, axis_field] : axis_value.as_object()) {
          if (axis_key == "field") {
            if (!axis_field.is_string()) fail("'axes[].field' must be a string");
            axis.field = axis_field.as_string();
          } else if (axis_key == "values") {
            if (!axis_field.is_array()) fail("'axes[].values' must be an array");
            axis.values = axis_field.as_array();
          } else {
            fail("unknown sweep field 'axes[]." + axis_key + "'");
          }
        }
        if (axis.field.empty()) fail("'axes[].field' is required");
        spec.axes.push_back(std::move(axis));
      }
    } else {
      fail("unknown sweep field '" + key + "'");
    }
  }
  return spec;
}

std::vector<ScenarioSpec> expand(const SweepSpec& spec) {
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    if (spec.axes[i].values.empty()) {
      fail("sweep axis '" + spec.axes[i].field + "' has no values");
    }
    for (std::size_t j = i + 1; j < spec.axes.size(); ++j) {
      if (spec.axes[i].field == spec.axes[j].field) {
        fail("sweep axis '" + spec.axes[i].field + "' appears twice");
      }
    }
  }
  const std::size_t cells = spec.cardinality();
  if (cells > kMaxSweepCells) {
    fail("sweep expands to " + std::to_string(cells) + " cells (max " +
         std::to_string(kMaxSweepCells) + ")");
  }

  std::vector<ScenarioSpec> expanded;
  expanded.reserve(cells);
  // Odometer over the axes: the last axis varies fastest.
  std::vector<std::size_t> index(spec.axes.size(), 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    ScenarioSpec s = spec.base;
    std::string suffix;
    for (std::size_t a = 0; a < spec.axes.size(); ++a) {
      const SweepAxis& axis = spec.axes[a];
      const JsonValue& value = axis.values[index[a]];
      apply_field(s, axis.field, value);
      suffix += "/" + axis.field + "=" + axis_value_string(value);
    }
    if (!suffix.empty()) s.name = (s.name.empty() ? "sweep" : s.name) + suffix;
    validate(s);
    expanded.push_back(std::move(s));
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      if (++index[a] < spec.axes[a].values.size()) break;
      index[a] = 0;
    }
  }
  return expanded;
}

SweepReport run_sweep(const SweepSpec& spec) {
  SweepReport report;
  for (ScenarioSpec& cell : expand(spec)) {
    ScenarioResult result = run(cell);
    report.cells.push_back(SweepCellResult{std::move(cell), std::move(result)});
  }
  return report;
}

JsonValue to_json(const SweepReport& report) {
  JsonArray cells;
  for (const SweepCellResult& cell : report.cells) {
    JsonObject obj;
    obj.emplace_back("name", cell.spec.name);
    obj.emplace_back("spec", to_json(cell.spec));
    obj.emplace_back("result", cell.result.to_json());
    cells.emplace_back(std::move(obj));
  }
  JsonObject out;
  out.emplace_back("cells", std::move(cells));
  return JsonValue(std::move(out));
}

void apply_override(SweepSpec& sweep, const std::string& field, const JsonValue& value) {
  if (field == "kind" || field == "name") {
    fail("'" + field + "' is the scenario's identity and cannot be overridden");
  }
  for (const SweepAxis& axis : sweep.axes) {
    if (axis.field == field) {
      fail("'" + field + "' is swept by this scenario's axes; overriding it would have "
           "no effect");
    }
  }
  apply_field(sweep.base, field, value);
}

std::vector<SweepAxis> parse_axes(const std::string& text) {
  std::vector<SweepAxis> axes;
  for (const std::string& clause : split(text, ';')) {
    const std::string trimmed = trim(clause);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos || eq == 0) {
      fail("axis clause '" + trimmed + "' must look like field=value[,value...]");
    }
    SweepAxis axis;
    axis.field = trim(trimmed.substr(0, eq));
    for (const std::string& token : split(trimmed.substr(eq + 1), ',')) {
      const std::string value = trim(token);
      if (value.empty()) fail("axis '" + axis.field + "' has an empty value");
      axis.values.push_back(typed_axis_value(value));
    }
    if (axis.values.empty()) fail("axis '" + axis.field + "' has no values");
    axes.push_back(std::move(axis));
  }
  if (axes.empty()) fail("no sweep axes in '" + text + "'");
  return axes;
}

}  // namespace preempt::scenario
