#include "scenario/registry.hpp"

namespace preempt::scenario {

namespace {

/// Standard fleet hardware: the cloudsim-eec-style two-class datacenter.
/// `scale` multiplies the machine counts (scale 1 = 1000 machines).
std::vector<fleet::MachineClass> fleet_machines(double scale) {
  fleet::MachineClass standard;
  standard.name = "standard-16";
  standard.count = static_cast<std::size_t>(600 * scale);
  standard.cores = 16;
  standard.memory_mb = 32768.0;

  fleet::MachineClass highcpu;
  highcpu.name = "highcpu-32";
  highcpu.count = static_cast<std::size_t>(400 * scale);
  highcpu.cores = 32;
  highcpu.memory_mb = 16384.0;
  highcpu.mips = {3500.0, 3000.0, 2500.0, 2000.0};
  highcpu.p_state_power_w = {14.0, 10.0, 7.0, 5.0};
  return {standard, highcpu};
}

fleet::TaskClass fleet_task(const std::string& name, fleet::SlaTier sla,
                            fleet::ArrivalPattern pattern, double interarrival_hours,
                            double runtime_hours, double memory_mb) {
  fleet::TaskClass tc;
  tc.name = name;
  tc.sla = sla;
  tc.pattern = pattern;
  tc.interarrival_hours = interarrival_hours;
  tc.runtime_hours = runtime_hours;
  tc.memory_mb = memory_mb;
  return tc;
}

/// The headline fleet: 1,000 machines, ~114k tasks over 24 h across all four
/// SLA tiers, preemptions drawn from the default calibrated regime cell.
ScenarioSpec fleet_base(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.kind = ScenarioKind::kFleet;
  spec.seed = 2020;
  spec.replications = 3;
  spec.ground_truth.source = DistributionSpec::Source::kRegime;
  spec.fleet.machines = fleet_machines(1.0);
  spec.fleet.tasks = {
      fleet_task("interactive", fleet::SlaTier::kSla0, fleet::ArrivalPattern::kBurstCycle,
                 0.0004, 0.05, 512.0),
      fleet_task("api", fleet::SlaTier::kSla1, fleet::ArrivalPattern::kSmallBursts, 0.0003,
                 0.02, 256.0),
      fleet_task("batch", fleet::SlaTier::kSla2, fleet::ArrivalPattern::kSteady, 0.0006, 0.2,
                 2048.0),
      fleet_task("analytics", fleet::SlaTier::kSla3, fleet::ArrivalPattern::kSteady, 0.001,
                 0.5, 4096.0),
  };
  // Short on/off spikes for the small-bursts class; long halves otherwise.
  spec.fleet.tasks[1].burst_on_hours = 0.25;
  spec.fleet.tasks[1].burst_off_hours = 0.75;
  return spec;
}

/// The Fig. 9 market: everything runs on 32-core VMs in us-central1-c
/// ("a cluster of 32 preemptible n1-highcpu-32 VMs", Sec. 6.3).
DistributionSpec fig09_truth() {
  DistributionSpec truth;
  truth.source = DistributionSpec::Source::kRegime;
  truth.regime = trace::RegimeKey{trace::VmType::kN1Highcpu32, trace::Zone::kUsCentral1C,
                                  trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};
  return truth;
}

/// One Sec. 6.3 workload on its native VM type: bag of 100 jobs, 32 VMs,
/// model-driven reuse, ground truth of the workload's own market cell, and a
/// decision model fitted to a synthetic bootstrap campaign of that cell.
ScenarioSpec section6_workload(const std::string& app, trace::VmType native) {
  ScenarioSpec spec;
  spec.name = "paper-" + app;
  spec.kind = ScenarioKind::kService;
  spec.app = app;
  spec.jobs = 100;
  spec.cluster_size = 32;
  spec.seed = 4242;
  spec.ground_truth.source = DistributionSpec::Source::kRegime;
  spec.ground_truth.regime =
      trace::RegimeKey{native, trace::Zone::kUsEast1B, trace::DayPeriod::kDay,
                       trace::WorkloadKind::kBatch};
  spec.decision.source = DistributionSpec::Source::kFitted;
  spec.decision.regime = spec.ground_truth.regime;
  return spec;
}

ScenarioSpec fig09_base(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.kind = ScenarioKind::kService;
  spec.app = "nanoconfinement";
  spec.vm_type = trace::VmType::kN1Highcpu32;
  spec.jobs = 100;
  spec.cluster_size = 32;
  spec.seed = 4242;
  spec.ground_truth = fig09_truth();
  spec.decision.source = DistributionSpec::Source::kTruth;
  return spec;
}

std::vector<NamedScenario> build() {
  std::vector<NamedScenario> out;

  out.push_back({"paper-nanoconfinement",
                 "Sec. 6 nanoconfinement MD bag (100 jobs, 32 x n1-highcpu-16)",
                 {section6_workload("nanoconfinement", trace::VmType::kN1Highcpu16), {}}});
  out.push_back({"paper-shapes",
                 "Sec. 6 nanoparticle-shapes MD bag (100 jobs, 32 x n1-highcpu-16)",
                 {section6_workload("shapes", trace::VmType::kN1Highcpu16), {}}});
  out.push_back({"paper-lulesh",
                 "Sec. 6 LULESH hydrodynamics bag (100 jobs, 32 x n1-highcpu-8)",
                 {section6_workload("lulesh", trace::VmType::kN1Highcpu8), {}}});

  {
    // Fig. 8: 4 h job, DP schedule executed under the true bathtub law,
    // 2000 Monte-Carlo runs (the fig8b "ours_mc" column's configuration).
    ScenarioSpec spec;
    spec.name = "paper-fig08-checkpointing";
    spec.kind = ScenarioKind::kCheckpoint;
    spec.scheduler = "dp";
    spec.job_hours = 4.0;
    spec.start_age_hours = 0.0;
    spec.mttf_hours = 1.0;  // the Young-Daly world view (Sec. 6.2.2)
    spec.seed = 1234;
    spec.replications = 2000;
    spec.ground_truth.source = DistributionSpec::Source::kRegime;  // headline regime
    out.push_back({"paper-fig08-checkpointing",
                   "Fig. 8 checkpointing: DP schedule under the true bathtub law",
                   {spec, {}}});
  }

  {
    SweepSpec sweep;
    sweep.base = fig09_base("paper-fig09a-cost");
    SweepAxis app;
    app.field = "app";
    app.values = {JsonValue("nanoconfinement"), JsonValue("shapes"), JsonValue("lulesh")};
    sweep.axes.push_back(std::move(app));
    out.push_back({"paper-fig09a-cost",
                   "Fig. 9a cost per job: all three workloads on 32 x n1-highcpu-32",
                   std::move(sweep)});
  }

  {
    ScenarioSpec spec = fig09_base("paper-fig09b-preemptions");
    spec.seed = 7919;
    spec.replications = 60;  // the bench's 60 seeded repetitions, mc-aggregated
    out.push_back({"paper-fig09b-preemptions",
                   "Fig. 9b running-time increase vs preemptions (60 replications)",
                   {spec, {}}});
  }

  {
    ScenarioSpec spec = fig09_base("paper-fig09-quick");
    spec.jobs = 10;
    spec.cluster_size = 8;
    spec.replications = 3;
    out.push_back({"paper-fig09-quick",
                   "CI-sized Fig. 9 smoke run (10 jobs, 8 VMs, 3 replications)",
                   {spec, {}}});
  }

  {
    SweepSpec sweep;
    sweep.base = fig09_base("grid-cluster-policy");
    sweep.base.jobs = 20;
    sweep.base.replications = 3;
    SweepAxis vm_type;
    vm_type.field = "vm_type";
    vm_type.values = {JsonValue("n1-highcpu-16"), JsonValue("n1-highcpu-32")};
    SweepAxis vms;
    vms.field = "vms";
    vms.values = {JsonValue(8), JsonValue(16), JsonValue(32)};
    SweepAxis policy;
    policy.field = "policy";
    policy.values = {JsonValue("model"), JsonValue("fresh")};
    sweep.axes = {std::move(vm_type), std::move(vms), std::move(policy)};
    out.push_back({"grid-cluster-policy",
                   "12-cell grid: vm_type x cluster size x reuse policy, ci95 per cell",
                   std::move(sweep)});
  }

  {
    // Fig. 4: expected running time vs job length under preemptions, no
    // checkpointing — the bare E[T(x)] growth curve.
    SweepSpec sweep;
    sweep.base.name = "paper-fig04-running-time";
    sweep.base.kind = ScenarioKind::kCheckpoint;
    sweep.base.scheduler = "none";
    sweep.base.seed = 1234;
    sweep.base.replications = 1000;
    sweep.base.ground_truth.source = DistributionSpec::Source::kRegime;
    SweepAxis job_hours;
    job_hours.field = "job_hours";
    job_hours.values = {JsonValue(1.0), JsonValue(2.0), JsonValue(4.0), JsonValue(6.0),
                        JsonValue(8.0)};
    sweep.axes.push_back(std::move(job_hours));
    out.push_back({"paper-fig04-running-time",
                   "Fig. 4 sensitivity: running time vs job length, no checkpointing",
                   std::move(sweep)});
  }

  {
    // Fig. 5: the bathtub's age-dependence — the same job started at
    // different VM ages sees very different preemption pressure.
    SweepSpec sweep;
    sweep.base.name = "paper-fig05-start-time";
    sweep.base.kind = ScenarioKind::kCheckpoint;
    sweep.base.scheduler = "none";
    sweep.base.job_hours = 6.0;
    sweep.base.seed = 1234;
    sweep.base.replications = 1000;
    sweep.base.ground_truth.source = DistributionSpec::Source::kRegime;
    SweepAxis start_age;
    start_age.field = "start_age_hours";
    start_age.values = {JsonValue(0.0), JsonValue(2.0), JsonValue(4.0), JsonValue(8.0),
                        JsonValue(12.0)};
    sweep.axes.push_back(std::move(start_age));
    out.push_back({"paper-fig05-start-time",
                   "Fig. 5 sensitivity: running time vs VM age at job start",
                   std::move(sweep)});
  }

  {
    // Fig. 6: job length x reuse policy over the batch service.
    SweepSpec sweep;
    sweep.base = fig09_base("paper-fig06-job-length");
    sweep.base.jobs = 50;
    sweep.base.replications = 3;
    SweepAxis app;
    app.field = "app";
    app.values = {JsonValue("nanoconfinement"), JsonValue("shapes"), JsonValue("lulesh")};
    SweepAxis policy;
    policy.field = "policy";
    policy.values = {JsonValue("model"), JsonValue("memoryless"), JsonValue("fresh")};
    sweep.axes = {std::move(app), std::move(policy)};
    out.push_back({"paper-fig06-job-length",
                   "Fig. 6 sensitivity: workload x reuse policy on the batch service",
                   std::move(sweep)});
  }

  {
    // Fig. 7: decision-model sensitivity — the right law, a fitted law, and
    // a deliberately mis-matched market cell, each under both reuse
    // policies.
    SweepSpec sweep;
    sweep.base = fig09_base("paper-fig07-sensitivity");
    sweep.base.jobs = 50;
    sweep.base.replications = 3;
    SweepAxis decision;
    decision.field = "decision";
    JsonObject truth_model;
    truth_model.emplace_back("source", "truth");
    JsonObject fitted;
    fitted.emplace_back("source", "fitted");
    fitted.emplace_back("type", "n1-highcpu-32");
    fitted.emplace_back("zone", "us-central1-c");
    JsonObject misfit;
    misfit.emplace_back("source", "regime");
    misfit.emplace_back("type", "n1-highcpu-16");
    misfit.emplace_back("zone", "us-east1-b");
    decision.values = {JsonValue(std::move(truth_model)), JsonValue(std::move(fitted)),
                       JsonValue(std::move(misfit))};
    SweepAxis policy;
    policy.field = "policy";
    policy.values = {JsonValue("model"), JsonValue("fresh")};
    sweep.axes = {std::move(decision), std::move(policy)};
    out.push_back({"paper-fig07-sensitivity",
                   "Fig. 7 sensitivity: decision model mis-specification x reuse policy",
                   std::move(sweep)});
  }

  out.push_back({"fleet-burst-cycle",
                 "1,000-machine fleet under burst-cycle load: ~114k tasks, 4 SLA tiers, "
                 "preemptions from the calibrated regime cell",
                 {fleet_base("fleet-burst-cycle"), {}}});

  {
    ScenarioSpec spec = fleet_base("fleet-small-bursts");
    spec.fleet.machines = fleet_machines(0.3);  // 300 machines
    spec.fleet.tasks = {
        fleet_task("spiky-frontend", fleet::SlaTier::kSla0,
                   fleet::ArrivalPattern::kSmallBursts, 0.0008, 0.03, 512.0),
        fleet_task("spiky-api", fleet::SlaTier::kSla1, fleet::ArrivalPattern::kSmallBursts,
                   0.001, 0.05, 1024.0),
        fleet_task("filler", fleet::SlaTier::kSla3, fleet::ArrivalPattern::kSteady, 0.002,
                   0.3, 2048.0),
    };
    for (std::size_t i = 0; i < 2; ++i) {
      spec.fleet.tasks[i].burst_on_hours = 0.2;
      spec.fleet.tasks[i].burst_off_hours = 1.8;
    }
    spec.fleet.placement = "e-eco";
    out.push_back({"fleet-small-bursts",
                   "300-machine fleet under short high-rate bursts with an e-eco warm pool "
                   "(wake latency vs energy)",
                   {spec, {}}});
  }

  {
    ScenarioSpec spec = fleet_base("fleet-migrations");
    spec.fleet.machines = fleet_machines(0.2);  // 200 machines
    spec.fleet.placement = "mbfd";
    spec.fleet.rebalance_interval_hours = 0.5;
    spec.fleet.tasks = {
        fleet_task("web", fleet::SlaTier::kSla1, fleet::ArrivalPattern::kBurstCycle, 0.002,
                   0.4, 2048.0),
        fleet_task("batch", fleet::SlaTier::kSla2, fleet::ArrivalPattern::kSteady, 0.003,
                   1.0, 4096.0),
    };
    out.push_back({"fleet-migrations",
                   "200-machine fleet with MBFD consolidation: migrations drain "
                   "lightly-loaded machines so they can sleep",
                   {spec, {}}});
  }

  {
    ScenarioSpec spec = fleet_base("fleet-quick");
    spec.fleet.machines = fleet_machines(0.04);  // 40 machines
    spec.fleet.horizon_hours = 8.0;
    spec.replications = 2;
    spec.fleet.tasks = {
        fleet_task("interactive", fleet::SlaTier::kSla0, fleet::ArrivalPattern::kBurstCycle,
                   0.02, 0.05, 512.0),
        fleet_task("batch", fleet::SlaTier::kSla2, fleet::ArrivalPattern::kSteady, 0.01, 0.2,
                   2048.0),
    };
    spec.fleet.placement = "e-eco";
    out.push_back({"fleet-quick",
                   "CI-sized fleet smoke run (40 machines, ~1.2k tasks, 2 replications)",
                   {spec, {}}});
  }

  {
    ScenarioSpec spec;
    spec.name = "portfolio-baseline";
    spec.kind = ScenarioKind::kPortfolio;
    spec.jobs = 100;
    spec.job_hours = 0.25;
    spec.risk_bound = 0.05;
    spec.correlation_penalty = 0.5;
    spec.seed = 42;
    spec.replications = 3;
    out.push_back({"portfolio-baseline",
                   "Mean-risk allocation of 100 jobs over the market grid, executed by "
                   "the multi-market service",
                   {spec, {}}});
  }

  return out;
}

}  // namespace

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> kScenarios = build();
  return kScenarios;
}

const NamedScenario* find_builtin(const std::string& name) {
  for (const NamedScenario& scenario : builtin_scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace preempt::scenario
