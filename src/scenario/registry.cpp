#include "scenario/registry.hpp"

namespace preempt::scenario {

namespace {

/// The Fig. 9 market: everything runs on 32-core VMs in us-central1-c
/// ("a cluster of 32 preemptible n1-highcpu-32 VMs", Sec. 6.3).
DistributionSpec fig09_truth() {
  DistributionSpec truth;
  truth.source = DistributionSpec::Source::kRegime;
  truth.regime = trace::RegimeKey{trace::VmType::kN1Highcpu32, trace::Zone::kUsCentral1C,
                                  trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};
  return truth;
}

/// One Sec. 6.3 workload on its native VM type: bag of 100 jobs, 32 VMs,
/// model-driven reuse, ground truth of the workload's own market cell, and a
/// decision model fitted to a synthetic bootstrap campaign of that cell.
ScenarioSpec section6_workload(const std::string& app, trace::VmType native) {
  ScenarioSpec spec;
  spec.name = "paper-" + app;
  spec.kind = ScenarioKind::kService;
  spec.app = app;
  spec.jobs = 100;
  spec.cluster_size = 32;
  spec.seed = 4242;
  spec.ground_truth.source = DistributionSpec::Source::kRegime;
  spec.ground_truth.regime =
      trace::RegimeKey{native, trace::Zone::kUsEast1B, trace::DayPeriod::kDay,
                       trace::WorkloadKind::kBatch};
  spec.decision.source = DistributionSpec::Source::kFitted;
  spec.decision.regime = spec.ground_truth.regime;
  return spec;
}

ScenarioSpec fig09_base(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  spec.kind = ScenarioKind::kService;
  spec.app = "nanoconfinement";
  spec.vm_type = trace::VmType::kN1Highcpu32;
  spec.jobs = 100;
  spec.cluster_size = 32;
  spec.seed = 4242;
  spec.ground_truth = fig09_truth();
  spec.decision.source = DistributionSpec::Source::kTruth;
  return spec;
}

std::vector<NamedScenario> build() {
  std::vector<NamedScenario> out;

  out.push_back({"paper-nanoconfinement",
                 "Sec. 6 nanoconfinement MD bag (100 jobs, 32 x n1-highcpu-16)",
                 {section6_workload("nanoconfinement", trace::VmType::kN1Highcpu16), {}}});
  out.push_back({"paper-shapes",
                 "Sec. 6 nanoparticle-shapes MD bag (100 jobs, 32 x n1-highcpu-16)",
                 {section6_workload("shapes", trace::VmType::kN1Highcpu16), {}}});
  out.push_back({"paper-lulesh",
                 "Sec. 6 LULESH hydrodynamics bag (100 jobs, 32 x n1-highcpu-8)",
                 {section6_workload("lulesh", trace::VmType::kN1Highcpu8), {}}});

  {
    // Fig. 8: 4 h job, DP schedule executed under the true bathtub law,
    // 2000 Monte-Carlo runs (the fig8b "ours_mc" column's configuration).
    ScenarioSpec spec;
    spec.name = "paper-fig08-checkpointing";
    spec.kind = ScenarioKind::kCheckpoint;
    spec.scheduler = "dp";
    spec.job_hours = 4.0;
    spec.start_age_hours = 0.0;
    spec.mttf_hours = 1.0;  // the Young-Daly world view (Sec. 6.2.2)
    spec.seed = 1234;
    spec.replications = 2000;
    spec.ground_truth.source = DistributionSpec::Source::kRegime;  // headline regime
    out.push_back({"paper-fig08-checkpointing",
                   "Fig. 8 checkpointing: DP schedule under the true bathtub law",
                   {spec, {}}});
  }

  {
    SweepSpec sweep;
    sweep.base = fig09_base("paper-fig09a-cost");
    SweepAxis app;
    app.field = "app";
    app.values = {JsonValue("nanoconfinement"), JsonValue("shapes"), JsonValue("lulesh")};
    sweep.axes.push_back(std::move(app));
    out.push_back({"paper-fig09a-cost",
                   "Fig. 9a cost per job: all three workloads on 32 x n1-highcpu-32",
                   std::move(sweep)});
  }

  {
    ScenarioSpec spec = fig09_base("paper-fig09b-preemptions");
    spec.seed = 7919;
    spec.replications = 60;  // the bench's 60 seeded repetitions, mc-aggregated
    out.push_back({"paper-fig09b-preemptions",
                   "Fig. 9b running-time increase vs preemptions (60 replications)",
                   {spec, {}}});
  }

  {
    ScenarioSpec spec = fig09_base("paper-fig09-quick");
    spec.jobs = 10;
    spec.cluster_size = 8;
    spec.replications = 3;
    out.push_back({"paper-fig09-quick",
                   "CI-sized Fig. 9 smoke run (10 jobs, 8 VMs, 3 replications)",
                   {spec, {}}});
  }

  {
    SweepSpec sweep;
    sweep.base = fig09_base("grid-cluster-policy");
    sweep.base.jobs = 20;
    sweep.base.replications = 3;
    SweepAxis vm_type;
    vm_type.field = "vm_type";
    vm_type.values = {JsonValue("n1-highcpu-16"), JsonValue("n1-highcpu-32")};
    SweepAxis vms;
    vms.field = "vms";
    vms.values = {JsonValue(8), JsonValue(16), JsonValue(32)};
    SweepAxis policy;
    policy.field = "policy";
    policy.values = {JsonValue("model"), JsonValue("fresh")};
    sweep.axes = {std::move(vm_type), std::move(vms), std::move(policy)};
    out.push_back({"grid-cluster-policy",
                   "12-cell grid: vm_type x cluster size x reuse policy, ci95 per cell",
                   std::move(sweep)});
  }

  {
    ScenarioSpec spec;
    spec.name = "portfolio-baseline";
    spec.kind = ScenarioKind::kPortfolio;
    spec.jobs = 100;
    spec.job_hours = 0.25;
    spec.risk_bound = 0.05;
    spec.correlation_penalty = 0.5;
    spec.seed = 42;
    spec.replications = 3;
    out.push_back({"portfolio-baseline",
                   "Mean-risk allocation of 100 jobs over the market grid, executed by "
                   "the multi-market service",
                   {spec, {}}});
  }

  return out;
}

}  // namespace

const std::vector<NamedScenario>& builtin_scenarios() {
  static const std::vector<NamedScenario> kScenarios = build();
  return kScenarios;
}

const NamedScenario* find_builtin(const std::string& name) {
  for (const NamedScenario& scenario : builtin_scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

}  // namespace preempt::scenario
