// Sweep expansion: a base scenario plus value axes, fanned into a grid.
//
// An axis is (field, values) where `field` is any scenario field accepted by
// apply_field ("vms", "policy", "vm_type", "app", ...). expand() takes the
// cartesian product across axes — grid cells inherit everything else from
// the base — and validates every cell up front, so an invalid corner of the
// grid rejects the whole sweep before any simulation starts. run_sweep()
// executes each cell (its replications go through the src/mc engine), which
// yields a CI-bearing aggregate report per cell.
#pragma once

#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace preempt::scenario {

struct SweepAxis {
  std::string field;
  JsonArray values;  ///< applied via apply_field; at least one value
};

/// A base spec plus axes; no axes means a single-cell "sweep".
struct SweepSpec {
  ScenarioSpec base;
  std::vector<SweepAxis> axes;

  std::size_t cardinality() const;
};

/// Serialise as {"base": {...}, "axes": [{"field","values"}...]}.
JsonValue to_json(const SweepSpec& spec);

/// Strict parse (unknown keys rejected); accepts a bare scenario object as a
/// single-cell sweep for convenience.
SweepSpec sweep_from_json(const JsonValue& value);

/// Expansion cap: grids beyond this are almost certainly a typo.
inline constexpr std::size_t kMaxSweepCells = 4096;

/// Cartesian expansion. Cell names append "/field=value" per axis to the
/// base name. Throws InvalidArgument on empty axes, duplicate fields,
/// grids over kMaxSweepCells, or any invalid cell.
std::vector<ScenarioSpec> expand(const SweepSpec& spec);

struct SweepCellResult {
  ScenarioSpec spec;
  ScenarioResult result;
};

struct SweepReport {
  std::vector<SweepCellResult> cells;
};

/// Expand + run every cell in grid order.
SweepReport run_sweep(const SweepSpec& spec);

/// Report as {"cells":[{"name","spec","result"}...]}.
JsonValue to_json(const SweepReport& report);

/// Parse the CLI axis shorthand "vms=16,32;policy=model,fresh". Values that
/// parse as numbers become JSON numbers, "true"/"false" booleans, anything
/// else strings. Throws InvalidArgument on malformed text.
std::vector<SweepAxis> parse_axes(const std::string& text);

/// Apply one caller override to the sweep base (the REST run body and the
/// CLI --seed/--jobs/... flags route through this). Rejects fields the
/// sweep's own axes set — expansion would silently clobber the override —
/// and the identity fields "kind"/"name". Throws InvalidArgument.
void apply_override(SweepSpec& sweep, const std::string& field, const JsonValue& value);

}  // namespace preempt::scenario
