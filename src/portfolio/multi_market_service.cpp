#include "portfolio/multi_market_service.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace preempt::portfolio {

namespace {
/// Lifetimes drawn per sample_many refill of a market's batch buffer.
constexpr std::size_t kLifetimeBatch = 256;
}  // namespace

MultiMarketService::MultiMarketService(const MarketCatalog& catalog, MultiMarketConfig config)
    : catalog_(&catalog), config_(config) {
  PREEMPT_REQUIRE(config_.job_hours > 0.0, "job length must be positive");
  PREEMPT_REQUIRE(config_.max_concurrent_per_market > 0, "need at least one VM slot");
  states_.resize(catalog.size());
  Rng master(config_.seed);
  for (std::size_t m = 0; m < catalog.size(); ++m) {
    states_[m].outcome.market = m;
    states_[m].ground_truth =
        trace::ground_truth_distribution(catalog.market(m).regime).clone();
    // Fork per-market streams 2^128 draws apart so one market's preemption
    // sequence never depends on another market's event interleaving.
    states_[m].stream = master.fork();
  }
  // Quote against the *fitted* models, mirroring what the optimizer saw.
  PortfolioConfig quote_config;
  quote_config.job_hours = config_.job_hours;
  quote_config.risk_bound = 1.0;  // quotes only; eligibility is re-derived
  const PortfolioOptimizer optimizer(catalog, quote_config);
  quotes_ = optimizer.quotes();
}

void MultiMarketService::set_ground_truth(std::size_t market, dist::DistributionPtr d) {
  PREEMPT_REQUIRE(market < states_.size(), "unknown market id");
  PREEMPT_REQUIRE(d != nullptr, "ground truth must not be null");
  states_[market].ground_truth = std::move(d);
  // Undrawn batched lifetimes still follow the old law; discard them.
  states_[market].lifetimes.clear();
  states_[market].next_lifetime = 0;
}

double MultiMarketService::draw_lifetime(std::size_t market) {
  MarketState& state = states_[market];
  if (state.next_lifetime >= state.lifetimes.size()) {
    state.lifetimes.resize(kLifetimeBatch);
    state.ground_truth->sample_many(state.stream, state.lifetimes);
    state.next_lifetime = 0;
  }
  return state.lifetimes[state.next_lifetime++];
}

std::size_t MultiMarketService::best_healthy_market() const {
  std::size_t best = states_.size();
  double best_marginal = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < states_.size(); ++m) {
    if (states_[m].quarantined) continue;
    const MarketQuote& q = quotes_[m];
    // Marginal quote weighted by current backlog so migrations spread.
    const double backlog = static_cast<double>(states_[m].queue.size() + states_[m].running);
    const double marginal = q.expected_cost * (1.0 + q.failure_probability * backlog);
    if (marginal < best_marginal) {
      best_marginal = marginal;
      best = m;
    }
  }
  return best;
}

void MultiMarketService::observe_lifetime(std::size_t market, double lifetime) {
  MarketState& state = states_[market];
  if (!state.monitor) {
    core::CusumDetector::Options opts;
    opts.threshold = config_.cusum_threshold;
    state.monitor = std::make_unique<core::CusumDetector>(
        catalog_->model(market).distribution(), opts);
  }
  const auto status = state.monitor->observe(lifetime);
  if (status.alarm && !state.quarantined) {
    state.outcome.drift_alarm = true;
    if (config_.rebalance_on_drift) {
      state.quarantined = true;
      rebalance_from(market);
    }
  }
}

void MultiMarketService::rebalance_from(std::size_t market) {
  MarketState& state = states_[market];
  if (state.queue.empty()) return;
  const std::size_t target = best_healthy_market();
  if (target >= states_.size() || target == market) {
    // Nowhere to go: lift the quarantine for the backlog's sake.
    state.quarantined = false;
    return;
  }
  ++rebalances_;
  while (!state.queue.empty()) {
    const std::uint64_t job = state.queue.front();
    state.queue.pop_front();
    ++state.outcome.migrated_out;
    ++states_[target].outcome.migrated_in;
    states_[target].queue.push_back(job);
  }
  try_dispatch(target);
}

void MultiMarketService::try_dispatch(std::size_t market) {
  MarketState& state = states_[market];
  while (state.running < config_.max_concurrent_per_market && !state.queue.empty()) {
    const std::uint64_t job = state.queue.front();
    state.queue.pop_front();
    ++state.running;
    sim_.schedule_in(config_.provision_delay_hours,
                     [this, market, job] { start_job(market, job); });
  }
}

void MultiMarketService::start_job(std::size_t market, std::uint64_t job_id) {
  MarketState& state = states_[market];
  const double lifetime = draw_lifetime(market);
  const double work = remaining_work_[job_id];

  if (lifetime >= work) {
    // Completes; the VM is released (and billed) at completion.
    state.outcome.vm_hours += work;
    sim_.schedule_in(work, [this, market, job_id] {
      MarketState& s = states_[market];
      --s.running;
      remaining_work_[job_id] = 0.0;
      ++s.outcome.completed;
      ++completed_;
      last_completion_ = sim_.now();
      try_dispatch(market);
    });
    return;
  }

  // Preempted mid-job: bill the VM's whole life, requeue the job (work is
  // lost — these short bag jobs do not checkpoint), feed the monitor.
  state.outcome.vm_hours += lifetime;
  sim_.schedule_in(lifetime, [this, market, job_id, lifetime] {
    MarketState& s = states_[market];
    --s.running;
    ++s.outcome.preemptions;
    observe_lifetime(market, lifetime);
    // The job may have been rebalanced away from `market` while running;
    // requeue wherever it is cheapest now if this market is quarantined.
    std::size_t home = market;
    if (s.quarantined) {
      const std::size_t target = best_healthy_market();
      if (target < states_.size()) {
        home = target;
        ++s.outcome.migrated_out;
        ++states_[target].outcome.migrated_in;
      }
    }
    states_[home].queue.push_back(job_id);
    try_dispatch(home);
    if (home != market) try_dispatch(market);
  });
}

MultiMarketReport MultiMarketService::run(const Allocation& allocation) {
  PREEMPT_REQUIRE(allocation.counts.size() == states_.size(),
                  "allocation size must match the catalog");
  PREEMPT_REQUIRE(remaining_work_.empty(),
                  "MultiMarketService::run is single-shot; construct a new service");
  std::uint64_t next_job = 0;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    states_[m].outcome.assigned = allocation.counts[m];
    for (std::size_t i = 0; i < allocation.counts[m]; ++i) {
      states_[m].queue.push_back(next_job++);
      remaining_work_.push_back(config_.job_hours);
    }
  }
  for (std::size_t m = 0; m < states_.size(); ++m) try_dispatch(m);
  sim_.run(config_.max_sim_hours);

  MultiMarketReport report;
  report.rebalances = rebalances_;
  report.jobs_completed = completed_;
  report.jobs_abandoned = static_cast<std::size_t>(next_job) - completed_;
  report.makespan_hours = last_completion_;
  for (std::size_t m = 0; m < states_.size(); ++m) {
    MarketOutcome outcome = states_[m].outcome;
    outcome.cost = cost_model_.vm_cost(catalog_->market(m).regime.type, outcome.vm_hours,
                                       /*preemptible=*/true);
    report.total_cost += outcome.cost;
    if (outcome.assigned > 0 || outcome.migrated_in > 0 || outcome.completed > 0) {
      report.markets.push_back(outcome);
    }
  }
  if (completed_ > 0) {
    report.cost_per_job = report.total_cost / static_cast<double>(completed_);
  }
  return report;
}

}  // namespace preempt::portfolio
