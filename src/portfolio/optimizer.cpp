#include "portfolio/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "policy/running_time.hpp"
#include "policy/scheduling.hpp"

namespace preempt::portfolio {

std::size_t Allocation::total() const {
  std::size_t n = 0;
  for (const std::size_t c : counts) n += c;
  return n;
}

PortfolioOptimizer::PortfolioOptimizer(const MarketCatalog& catalog, PortfolioConfig config)
    : config_(config) {
  PREEMPT_REQUIRE(config_.jobs > 0, "portfolio needs a non-empty bag");
  PREEMPT_REQUIRE(config_.job_hours > 0.0, "portfolio job length must be positive");
  PREEMPT_REQUIRE(config_.risk_bound > 0.0 && config_.risk_bound <= 1.0,
                  "risk bound must be in (0, 1]");
  PREEMPT_REQUIRE(config_.correlation_penalty >= 0.0, "correlation penalty must be >= 0");
  quotes_.reserve(catalog.size());
  for (std::size_t id = 0; id < catalog.size(); ++id) {
    const auto& d = catalog.model(id).distribution();
    MarketQuote q;
    q.market = id;
    q.failure_probability = policy::job_failure_probability(d, 0.0, config_.job_hours);
    q.expected_makespan_hours = policy::expected_makespan(d, config_.job_hours);
    q.expected_cost = catalog.market(id).price_per_hour * q.expected_makespan_hours;
    q.eligible = q.failure_probability <= config_.risk_bound;
    quotes_.push_back(q);
  }
}

std::size_t PortfolioOptimizer::eligible_count() const {
  return static_cast<std::size_t>(
      std::count_if(quotes_.begin(), quotes_.end(), [](const MarketQuote& q) { return q.eligible; }));
}

double PortfolioOptimizer::objective(const std::vector<std::size_t>& counts) const {
  PREEMPT_REQUIRE(counts.size() == quotes_.size(), "allocation size must match catalog");
  double j = 0.0;
  for (std::size_t m = 0; m < counts.size(); ++m) {
    const double n = static_cast<double>(counts[m]);
    const MarketQuote& q = quotes_[m];
    j += n * q.expected_cost +
         config_.correlation_penalty * 0.5 * n * (n - 1.0) * q.failure_probability *
             q.expected_cost;
  }
  return j;
}

Allocation PortfolioOptimizer::finish(std::vector<std::size_t> counts) const {
  Allocation out;
  out.counts = std::move(counts);
  out.objective = objective(out.counts);
  for (std::size_t m = 0; m < out.counts.size(); ++m) {
    if (out.counts[m] == 0) continue;
    ++out.markets_used;
    out.base_cost += static_cast<double>(out.counts[m]) * quotes_[m].expected_cost;
  }
  return out;
}

Allocation PortfolioOptimizer::optimize_greedy() const {
  PREEMPT_REQUIRE(eligible_count() > 0, "no market satisfies the risk bound");
  std::vector<std::size_t> counts(quotes_.size(), 0);
  for (std::size_t placed = 0; placed < config_.jobs; ++placed) {
    std::size_t best = quotes_.size();
    double best_marginal = std::numeric_limits<double>::infinity();
    for (const MarketQuote& q : quotes_) {
      if (!q.eligible) continue;
      // Marginal cost of the (n+1)-th job in market m:
      // ΔJ = c_m + λ c_m p_m n_m  (ties break on market id → deterministic).
      const double marginal =
          q.expected_cost * (1.0 + config_.correlation_penalty * q.failure_probability *
                                       static_cast<double>(counts[q.market]));
      if (marginal < best_marginal) {
        best_marginal = marginal;
        best = q.market;
      }
    }
    ++counts[best];
  }
  return finish(std::move(counts));
}

namespace {

/// Compositions of `remaining` over markets[index:]; prunes nothing (the
/// caller bounds the search space up front).
void enumerate(const PortfolioOptimizer& opt, const std::vector<std::size_t>& eligible,
               std::size_t index, std::size_t remaining, std::vector<std::size_t>& counts,
               double& best_value, std::vector<std::size_t>& best_counts) {
  if (index + 1 == eligible.size()) {
    counts[eligible[index]] = remaining;
    const double value = opt.objective(counts);
    if (value < best_value) {
      best_value = value;
      best_counts = counts;
    }
    counts[eligible[index]] = 0;
    return;
  }
  for (std::size_t take = 0; take <= remaining; ++take) {
    counts[eligible[index]] = take;
    enumerate(opt, eligible, index + 1, remaining - take, counts, best_value, best_counts);
  }
  counts[eligible[index]] = 0;
}

}  // namespace

Allocation PortfolioOptimizer::optimize_exhaustive() const {
  std::vector<std::size_t> eligible;
  for (const MarketQuote& q : quotes_) {
    if (q.eligible) eligible.push_back(q.market);
  }
  PREEMPT_REQUIRE(!eligible.empty(), "no market satisfies the risk bound");

  // Search space is C(N + M − 1, M − 1); refuse combinatorial explosions.
  double nodes = 1.0;
  for (std::size_t i = 1; i < eligible.size(); ++i) {
    nodes *= static_cast<double>(config_.jobs + i) / static_cast<double>(i);
  }
  PREEMPT_REQUIRE(nodes <= 2e6,
                  "exhaustive portfolio search is limited to small instances");

  std::vector<std::size_t> counts(quotes_.size(), 0);
  std::vector<std::size_t> best_counts(quotes_.size(), 0);
  double best_value = std::numeric_limits<double>::infinity();
  enumerate(*this, eligible, 0, config_.jobs, counts, best_value, best_counts);
  return finish(std::move(best_counts));
}

}  // namespace preempt::portfolio
