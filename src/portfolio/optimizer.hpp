// Portfolio allocation of a bag of jobs across spot markets.
//
// Each market quotes a per-job failure probability p_m (Sec. 4.1 running-time
// model on a fresh VM) and an expected per-job cost c_m = price_m · E[T_m]
// (Eq. 7 expected makespan at the market's preemptible rate). The optimizer
// picks a per-market job count vector n minimising the mean-risk objective
//
//   J(n) = Σ_m n_m c_m  +  λ Σ_m C(n_m, 2) p_m c_m
//
// subject to Σ n_m = N and p_m <= risk bound wherever n_m > 0. The quadratic
// term prices correlated rework: preemptions within one market hit all of its
// jobs together (capacity reclaims are market-wide events), so piling the bag
// into the single cheapest market is penalised pairwise — the classic
// portfolio-diversification effect. J is separable and convex in each n_m,
// so incremental greedy (always add the next job where the marginal cost
// c_m (1 + λ p_m n_m) is lowest) is exact; the exhaustive solver enumerates
// all compositions as an independent reference for small instances.
#pragma once

#include <vector>

#include "portfolio/market.hpp"

namespace preempt::portfolio {

struct PortfolioConfig {
  std::size_t jobs = 100;              ///< bag size N
  double job_hours = 0.25;             ///< failure-free per-job running time
  double risk_bound = 0.05;            ///< max per-job failure probability
  double correlation_penalty = 0.5;    ///< λ, weight of the pairwise risk term
};

/// Per-market quote derived from its fitted survival model.
struct MarketQuote {
  std::size_t market = 0;
  double failure_probability = 0.0;    ///< P(job fails | fresh VM), atom incl.
  double expected_makespan_hours = 0.0;///< Eq. 7 E[T]
  double expected_cost = 0.0;          ///< price · E[T], $ per job
  bool eligible = false;               ///< failure_probability <= risk bound
};

struct Allocation {
  std::vector<std::size_t> counts;     ///< jobs per market (catalog order)
  double objective = 0.0;              ///< J(n), $-denominated mean-risk cost
  double base_cost = 0.0;              ///< Σ n_m c_m, $ without the risk term
  std::size_t markets_used = 0;        ///< markets with n_m > 0

  std::size_t total() const;
};

class PortfolioOptimizer {
 public:
  /// Quotes every market in the catalog (forcing its lazy fit).
  PortfolioOptimizer(const MarketCatalog& catalog, PortfolioConfig config);

  const std::vector<MarketQuote>& quotes() const noexcept { return quotes_; }
  const PortfolioConfig& config() const noexcept { return config_; }
  std::size_t eligible_count() const;

  /// Mean-risk objective of an arbitrary allocation (counts in catalog order).
  double objective(const std::vector<std::size_t>& counts) const;

  /// Incremental greedy — exact for this convex separable objective.
  /// Throws InvalidArgument when no market satisfies the risk bound.
  Allocation optimize_greedy() const;

  /// Brute-force reference: enumerates every composition of N jobs over the
  /// eligible markets. Throws InvalidArgument when the search space exceeds
  /// ~2e6 nodes; use for small-N validation only.
  Allocation optimize_exhaustive() const;

 private:
  Allocation finish(std::vector<std::size_t> counts) const;

  PortfolioConfig config_;
  std::vector<MarketQuote> quotes_;  ///< all catalog data the solvers need
};

}  // namespace preempt::portfolio
