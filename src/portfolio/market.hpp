// Spot markets over the preemption-regime grid.
//
// A *market* is one cell of the VmType × Zone × DayPeriod grid: the unit at
// which the paper shows preemption behaviour to differ (Fig. 2a–2c) and the
// unit at which a portfolio scheduler can diversify a bag of jobs (Sharma et
// al., "Portfolio-driven Resource Management for Transient Cloud Servers").
// The MarketCatalog enumerates the grid and lazily fits one survival model
// per market from trace data, caching the fit and falling back to coarser
// data pools for sparsely observed markets.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "core/model.hpp"
#include "trace/dataset.hpp"
#include "trace/ground_truth.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::portfolio {

/// One spot market: a regime cell plus its published price.
struct Market {
  std::size_t id = 0;
  trace::RegimeKey regime;       ///< type/zone/period (workload = batch)
  double price_per_hour = 0.0;   ///< preemptible $/h of the market's VM type

  /// "n1-highcpu-16/us-east1-b/day" — stable display / JSON identifier.
  std::string label() const;
};

struct MarketCatalogOptions {
  double horizon_hours = 24.0;
  /// Markets with fewer observations borrow from coarser pools
  /// (type+zone, then type, then the whole dataset).
  std::size_t min_samples = 20;
};

class MarketCatalog {
 public:
  using Options = MarketCatalogOptions;

  /// Enumerate the full grid and attach the observation dataset.
  explicit MarketCatalog(trace::Dataset dataset, Options options = Options{});

  /// Catalog backed by a synthetic Sec. 3.1-style study (the stand-in for a
  /// live measurement campaign).
  static MarketCatalog synthetic(std::size_t vms_per_cell = 60, std::uint64_t seed = 2019,
                                 Options options = Options{});

  /// Movable (fresh mutex; the fit cache moves with the data).
  MarketCatalog(MarketCatalog&& other) noexcept;
  MarketCatalog& operator=(MarketCatalog&&) = delete;
  MarketCatalog(const MarketCatalog&) = delete;
  MarketCatalog& operator=(const MarketCatalog&) = delete;

  std::size_t size() const noexcept { return markets_.size(); }
  const Market& market(std::size_t id) const;
  const std::vector<Market>& markets() const noexcept { return markets_; }

  /// Fitted model for one market; fits on first use and caches (thread-safe).
  const core::PreemptionModel& model(std::size_t id) const;

  /// Observations attributed to a market (workload-pooled), before fallback.
  std::size_t sample_count(std::size_t id) const;

  /// Markets fitted so far (cache introspection for tests / benches).
  std::size_t fitted_count() const;

  /// Fit every market serially.
  void fit_all() const;

  /// Fit every market concurrently on `pool`; each market's least-squares
  /// fit is independent, so the grid parallelises embarrassingly.
  void fit_all(ThreadPool& pool) const;

 private:
  std::vector<double> market_lifetimes(std::size_t id) const;

  std::vector<Market> markets_;
  trace::Dataset dataset_;
  Options options_;

  mutable Mutex mutex_{"portfolio.fit_cache"};
  mutable std::vector<std::optional<core::PreemptionModel>> cache_ PREEMPT_GUARDED_BY(mutex_);
};

}  // namespace preempt::portfolio
