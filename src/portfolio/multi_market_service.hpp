// Multi-market batch service: executes a portfolio allocation as a
// discrete-event simulation, one VM fleet per market, all sharing a single
// sim::Simulator clock.
//
// Per-market preemptions are drawn from that market's ground-truth law
// (independently across markets — preemption pressure is a per-zone /
// per-type phenomenon). Each market owns a jump-derived RNG stream and
// refills a batch buffer via Distribution::sample_many, so draws are cheap
// and a market's lifetime sequence is independent of how events from other
// markets interleave on the shared clock. Every observed lifetime also feeds the market's
// CUSUM drift monitor (core/cusum); when a monitor fires the market is
// quarantined and its queued jobs rebalance to the cheapest healthy market,
// closing the paper's Sec. 8 "detect change-points and react" loop at the
// portfolio level.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/cusum.hpp"
#include "dist/distribution.hpp"
#include "portfolio/optimizer.hpp"
#include "sim/cost.hpp"
#include "sim/simulator.hpp"

namespace preempt::portfolio {

struct MultiMarketConfig {
  double job_hours = 0.25;                    ///< failure-free per-job run time
  double provision_delay_hours = 2.0 / 60.0;  ///< VM boot + registration
  std::size_t max_concurrent_per_market = 8;  ///< VM slots per market
  std::uint64_t seed = 42;
  double max_sim_hours = 24.0 * 30.0;         ///< safety cap on simulated time
  bool rebalance_on_drift = true;             ///< move queued jobs off alarmed markets
  double cusum_threshold = 8.0;               ///< per-market drift sensitivity
};

/// Per-market outcome of one run.
struct MarketOutcome {
  std::size_t market = 0;
  std::size_t assigned = 0;       ///< jobs initially allocated here
  std::size_t completed = 0;      ///< jobs finished here
  std::size_t migrated_in = 0;    ///< jobs received via rebalancing
  std::size_t migrated_out = 0;   ///< jobs pushed away via rebalancing
  int preemptions = 0;            ///< preemptions that hit running jobs
  double vm_hours = 0.0;
  double cost = 0.0;              ///< preemptible billing of this fleet
  bool drift_alarm = false;       ///< did the CUSUM monitor fire?
};

struct MultiMarketReport {
  std::vector<MarketOutcome> markets;
  std::size_t jobs_completed = 0;
  std::size_t jobs_abandoned = 0;   ///< still unfinished at the safety cap
  double makespan_hours = 0.0;
  double total_cost = 0.0;
  double cost_per_job = 0.0;
  std::size_t rebalances = 0;       ///< drift-triggered migration events
};

class MultiMarketService {
 public:
  MultiMarketService(const MarketCatalog& catalog, MultiMarketConfig config);

  /// Override one market's ground-truth lifetime law (drift injection; the
  /// default is the regime's calibrated ground truth).
  void set_ground_truth(std::size_t market, dist::DistributionPtr d);

  /// Execute an allocation (counts in catalog order) to completion.
  MultiMarketReport run(const Allocation& allocation);

 private:
  struct MarketState {
    std::deque<std::uint64_t> queue;       ///< pending job ids
    std::size_t running = 0;               ///< occupied VM slots
    dist::DistributionPtr ground_truth;
    Rng stream{0};                         ///< per-market jump-derived stream
    std::vector<double> lifetimes;         ///< batched draws (sample_many)
    std::size_t next_lifetime = 0;         ///< cursor into `lifetimes`
    std::unique_ptr<core::CusumDetector> monitor;
    bool quarantined = false;
    MarketOutcome outcome;
  };

  void try_dispatch(std::size_t market);
  void start_job(std::size_t market, std::uint64_t job_id);
  /// Next batched lifetime draw for the market (refills on demand).
  double draw_lifetime(std::size_t market);
  void observe_lifetime(std::size_t market, double lifetime);
  void rebalance_from(std::size_t market);
  /// Healthy market with the cheapest marginal cost; catalog size if none.
  std::size_t best_healthy_market() const;

  const MarketCatalog* catalog_;
  MultiMarketConfig config_;
  std::vector<MarketState> states_;
  std::vector<MarketQuote> quotes_;       ///< for rebalancing decisions
  sim::Simulator sim_;
  sim::CostModel cost_model_;
  std::vector<double> remaining_work_;    ///< per job id
  std::size_t completed_ = 0;
  std::size_t rebalances_ = 0;
  double last_completion_ = 0.0;
};

}  // namespace preempt::portfolio
