#include "portfolio/market.hpp"

#include <utility>

#include "common/error.hpp"
#include "trace/generator.hpp"

namespace preempt::portfolio {

std::string Market::label() const {
  return trace::to_string(regime.type) + "/" + trace::to_string(regime.zone) + "/" +
         trace::to_string(regime.period);
}

MarketCatalog::MarketCatalog(trace::Dataset dataset, Options options)
    : dataset_(std::move(dataset)), options_(options) {
  PREEMPT_REQUIRE(!dataset_.empty(), "market catalog needs observations");
  PREEMPT_REQUIRE(options_.horizon_hours > 0.0, "market horizon must be positive");
  std::size_t id = 0;
  for (const auto& spec : trace::all_vm_specs()) {
    for (const auto zone : trace::all_zones()) {
      for (const auto period : {trace::DayPeriod::kDay, trace::DayPeriod::kNight}) {
        Market m;
        m.id = id++;
        m.regime = trace::RegimeKey{spec.type, zone, period, trace::WorkloadKind::kBatch};
        m.price_per_hour = spec.preemptible_per_hour;
        markets_.push_back(std::move(m));
      }
    }
  }
  cache_.resize(markets_.size());
}

MarketCatalog::MarketCatalog(MarketCatalog&& other) noexcept
    : markets_(std::move(other.markets_)),
      dataset_(std::move(other.dataset_)),
      options_(other.options_) {
  const LockGuard lock(other.mutex_);
  cache_ = std::move(other.cache_);
}

MarketCatalog MarketCatalog::synthetic(std::size_t vms_per_cell, std::uint64_t seed,
                                       Options options) {
  trace::StudyConfig study;
  study.vms_per_cell = vms_per_cell;
  study.seed = seed;
  return MarketCatalog(trace::generate_study(study), options);
}

const Market& MarketCatalog::market(std::size_t id) const {
  PREEMPT_REQUIRE(id < markets_.size(), "unknown market id");
  return markets_[id];
}

std::vector<double> MarketCatalog::market_lifetimes(std::size_t id) const {
  const Market& m = market(id);
  // Pool over workloads: the portfolio always runs batch jobs, but idle
  // observations of the same cell still inform its preemption law.
  const trace::Dataset cell =
      dataset_.by_type(m.regime.type).by_zone(m.regime.zone).by_period(m.regime.period);
  if (cell.size() >= options_.min_samples) return cell.lifetimes();
  const trace::Dataset type_zone = dataset_.by_type(m.regime.type).by_zone(m.regime.zone);
  if (type_zone.size() >= options_.min_samples) return type_zone.lifetimes();
  const trace::Dataset type_pool = dataset_.by_type(m.regime.type);
  if (type_pool.size() >= options_.min_samples) return type_pool.lifetimes();
  return dataset_.lifetimes();
}

std::size_t MarketCatalog::sample_count(std::size_t id) const {
  const Market& m = market(id);
  return dataset_.by_type(m.regime.type).by_zone(m.regime.zone).by_period(m.regime.period).size();
}

const core::PreemptionModel& MarketCatalog::model(std::size_t id) const {
  PREEMPT_REQUIRE(id < markets_.size(), "unknown market id");
  {
    const LockGuard lock(mutex_);
    if (cache_[id].has_value()) return *cache_[id];
  }
  // Fit outside the lock so fit_all(pool) actually runs concurrently; a
  // racing duplicate fit of the same market produces the identical model.
  auto fitted =
      core::PreemptionModel::fit(market_lifetimes(id), options_.horizon_hours);
  const LockGuard lock(mutex_);
  if (!cache_[id].has_value()) cache_[id] = std::move(fitted);
  return *cache_[id];
}

std::size_t MarketCatalog::fitted_count() const {
  const LockGuard lock(mutex_);
  std::size_t n = 0;
  for (const auto& slot : cache_) {
    if (slot.has_value()) ++n;
  }
  return n;
}

void MarketCatalog::fit_all() const {
  for (std::size_t id = 0; id < markets_.size(); ++id) model(id);
}

void MarketCatalog::fit_all(ThreadPool& pool) const {
  parallel_for(pool, 0, markets_.size(), [this](std::size_t id) { model(id); });
}

}  // namespace preempt::portfolio
