#include "survival/kaplan_meier.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/special.hpp"

namespace preempt::survival {

double KaplanMeierEstimate::survival_at(double t) const {
  // Last event time <= t determines the current step.
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  if (it == times.begin()) return 1.0;
  return survival[static_cast<std::size_t>(it - times.begin()) - 1];
}

double KaplanMeierEstimate::cdf_at(double t) const { return 1.0 - survival_at(t); }

double KaplanMeierEstimate::median() const {
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (survival[i] <= 0.5) return times[i];
  }
  return std::numeric_limits<double>::quiet_NaN();
}

KaplanMeierEstimate::CdfPoints KaplanMeierEstimate::cdf_points() const {
  CdfPoints pts;
  pts.t = times;
  pts.f.reserve(survival.size());
  for (double s : survival) pts.f.push_back(1.0 - s);
  return pts;
}

KaplanMeierEstimate kaplan_meier(const SurvivalData& data, double confidence) {
  PREEMPT_REQUIRE(!data.empty(), "kaplan_meier needs observations");
  PREEMPT_REQUIRE(data.event_count() > 0, "kaplan_meier needs at least one event");
  PREEMPT_REQUIRE(confidence > 0.0 && confidence < 1.0, "confidence must be in (0,1)");

  KaplanMeierEstimate est;
  est.confidence = confidence;
  const double z = normal_quantile(0.5 + confidence / 2.0);

  const auto& obs = data.observations();  // sorted by (time, events-first)
  std::size_t at_risk = obs.size();
  double s = 1.0;
  double greenwood = 0.0;  // running sum d_i / (n_i (n_i - d_i))

  std::size_t i = 0;
  while (i < obs.size()) {
    const double t = obs[i].time;
    std::size_t events = 0, removed = 0;
    while (i < obs.size() && obs[i].time == t) {
      if (obs[i].event) ++events;
      ++removed;
      ++i;
    }
    if (events > 0) {
      const double n = static_cast<double>(at_risk);
      const double d = static_cast<double>(events);
      s *= 1.0 - d / n;
      if (n > d) greenwood += d / (n * (n - d));

      est.times.push_back(t);
      est.survival.push_back(s);
      est.at_risk.push_back(at_risk);
      est.events.push_back(events);

      const double se = s * std::sqrt(greenwood);
      est.std_error.push_back(se);
      if (s > 0.0 && s < 1.0) {
        // log(-log S) transform keeps the band inside (0, 1).
        const double theta = std::log(-std::log(s));
        const double se_theta = std::sqrt(greenwood) / std::abs(std::log(s));
        est.lower.push_back(std::exp(-std::exp(theta + z * se_theta)));
        est.upper.push_back(std::exp(-std::exp(theta - z * se_theta)));
      } else {
        est.lower.push_back(s);
        est.upper.push_back(s);
      }
    }
    at_risk -= removed;
  }
  return est;
}

}  // namespace preempt::survival
