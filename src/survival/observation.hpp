// Right-censored lifetime observations.
//
// The paper's empirical study (Sec. 3.1) measures VM lifetimes; in a live
// campaign some lifetimes are not fully observed — a VM may be shut down
// because its job finished, or the campaign ends while it is still running.
// Treating such right-censored observations as preemptions biases every
// downstream estimate. This module provides the survival-analysis view:
// (time, event) pairs, where event=false marks a censored lifetime.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace preempt::survival {

/// One VM lifetime observation.
struct Observation {
  double time = 0.0;   ///< hours from launch to preemption or censoring
  bool event = true;   ///< true: preemption observed; false: right-censored
};

/// A validated collection of observations, sorted by time on construction
/// (ties: events before censorings, the standard convention).
class SurvivalData {
 public:
  SurvivalData() = default;
  /// Throws InvalidArgument on negative or non-finite times or empty input
  /// where an estimator needs data (estimators validate separately).
  explicit SurvivalData(std::vector<Observation> observations);

  /// All lifetimes fully observed (no censoring).
  static SurvivalData all_events(std::span<const double> times);

  /// Administrative censoring: observation i is censored (with the recorded
  /// time cut) when the true lifetime exceeds `cutoffs[i]`. The classic case
  /// is "the campaign stopped after c hours".
  static SurvivalData censor_at(std::span<const double> lifetimes,
                                std::span<const double> cutoffs);

  std::size_t size() const noexcept { return observations_.size(); }
  bool empty() const noexcept { return observations_.empty(); }
  const std::vector<Observation>& observations() const noexcept { return observations_; }

  std::size_t event_count() const noexcept { return event_count_; }
  std::size_t censored_count() const noexcept { return observations_.size() - event_count_; }

  /// Sum of all observation times (total exposure) — the denominator of the
  /// exponential MLE.
  double total_exposure() const noexcept { return total_exposure_; }

  /// Times of observed events only.
  std::vector<double> event_times() const;

 private:
  std::vector<Observation> observations_;  // sorted by (time, !event)
  std::size_t event_count_ = 0;
  double total_exposure_ = 0.0;
};

}  // namespace preempt::survival
