// Two-sample log-rank test (Mantel-Cox) for comparing lifetime curves under
// right censoring.
//
// The paper's Observations 4-5 ("larger VMs are preempted more", "night
// launches live longer") are eyeballed from CDF plots; the log-rank test puts
// a p-value on them. Used by examples/trace_analysis and the survival tests.
#pragma once

#include "survival/observation.hpp"

namespace preempt::survival {

struct LogRankResult {
  double chi_squared = 0.0;   ///< test statistic, ~χ²(1) under H0
  double p_value = 1.0;       ///< P(χ²(1) >= chi_squared)
  double observed_a = 0.0;    ///< events observed in group A
  double expected_a = 0.0;    ///< events expected in group A under H0
  /// Convenience: true when p_value < alpha.
  bool significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Test H0: both groups share the same hazard. Throws InvalidArgument when
/// either group is empty or the pooled data has no events.
LogRankResult log_rank_test(const SurvivalData& group_a, const SurvivalData& group_b);

}  // namespace preempt::survival
