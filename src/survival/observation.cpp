#include "survival/observation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace preempt::survival {

SurvivalData::SurvivalData(std::vector<Observation> observations)
    : observations_(std::move(observations)) {
  for (const auto& o : observations_) {
    PREEMPT_REQUIRE(std::isfinite(o.time) && o.time >= 0.0,
                    "survival observation times must be finite and >= 0");
  }
  std::sort(observations_.begin(), observations_.end(), [](const auto& a, const auto& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.event && !b.event;  // events precede censorings at the same time
  });
  for (const auto& o : observations_) {
    if (o.event) ++event_count_;
    total_exposure_ += o.time;
  }
}

SurvivalData SurvivalData::all_events(std::span<const double> times) {
  std::vector<Observation> obs;
  obs.reserve(times.size());
  for (double t : times) obs.push_back({t, true});
  return SurvivalData(std::move(obs));
}

SurvivalData SurvivalData::censor_at(std::span<const double> lifetimes,
                                     std::span<const double> cutoffs) {
  PREEMPT_REQUIRE(lifetimes.size() == cutoffs.size(),
                  "censor_at needs one cutoff per lifetime");
  std::vector<Observation> obs;
  obs.reserve(lifetimes.size());
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    if (lifetimes[i] <= cutoffs[i]) {
      obs.push_back({lifetimes[i], true});
    } else {
      obs.push_back({cutoffs[i], false});
    }
  }
  return SurvivalData(std::move(obs));
}

std::vector<double> SurvivalData::event_times() const {
  std::vector<double> out;
  out.reserve(event_count_);
  for (const auto& o : observations_) {
    if (o.event) out.push_back(o.time);
  }
  return out;
}

}  // namespace preempt::survival
