// Kaplan-Meier product-limit estimator of the survival function under right
// censoring, with Greenwood variance and log-log confidence bands.
//
// KM generalises the ECDF that the paper fits against: on fully observed
// data 1 - KM(t) is exactly the ECDF, and with censored campaigns it remains
// unbiased where the plain ECDF is not. fit::fit_bathtub can therefore be
// pointed at cdf_points() of this estimate instead of the raw ECDF.
#pragma once

#include <cstddef>
#include <vector>

#include "survival/observation.hpp"

namespace preempt::survival {

/// The estimate: step function with one row per distinct event time.
struct KaplanMeierEstimate {
  std::vector<double> times;       ///< distinct event times, ascending
  std::vector<double> survival;    ///< S(t_i+) after the drop at t_i
  std::vector<double> std_error;   ///< Greenwood standard error of S(t_i)
  std::vector<double> lower;       ///< lower confidence band (log-log)
  std::vector<double> upper;       ///< upper confidence band
  std::vector<std::size_t> at_risk;  ///< n_i — subjects at risk entering t_i
  std::vector<std::size_t> events;   ///< d_i — events at t_i
  double confidence = 0.95;

  /// S(t): right-continuous step lookup; 1 before the first event.
  double survival_at(double t) const;
  /// 1 - S(t).
  double cdf_at(double t) const;
  /// Smallest event time with S <= 0.5, or NaN if the curve never reaches it
  /// (heavy censoring can leave the median unidentified).
  double median() const;

  /// (t, F) pairs usable directly by the least-squares CDF fitters.
  struct CdfPoints {
    std::vector<double> t;
    std::vector<double> f;
  };
  CdfPoints cdf_points() const;
};

/// Compute the KM estimate. Throws InvalidArgument when `data` is empty or
/// has no events, or if `confidence` is outside (0, 1).
KaplanMeierEstimate kaplan_meier(const SurvivalData& data, double confidence = 0.95);

}  // namespace preempt::survival
