#include "survival/logrank.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/special.hpp"

namespace preempt::survival {

LogRankResult log_rank_test(const SurvivalData& group_a, const SurvivalData& group_b) {
  PREEMPT_REQUIRE(!group_a.empty() && !group_b.empty(), "log_rank_test needs two non-empty groups");
  PREEMPT_REQUIRE(group_a.event_count() + group_b.event_count() > 0,
                  "log_rank_test needs at least one event");

  // Merge, remembering group membership; both inputs are already sorted.
  struct Tagged {
    double time;
    bool event;
    bool in_a;
  };
  std::vector<Tagged> all;
  all.reserve(group_a.size() + group_b.size());
  for (const auto& o : group_a.observations()) all.push_back({o.time, o.event, true});
  for (const auto& o : group_b.observations()) all.push_back({o.time, o.event, false});
  std::sort(all.begin(), all.end(), [](const Tagged& x, const Tagged& y) {
    if (x.time != y.time) return x.time < y.time;
    return x.event && !y.event;
  });

  std::size_t at_risk_a = group_a.size();
  std::size_t at_risk_b = group_b.size();
  double observed_a = 0.0, expected_a = 0.0, variance = 0.0;

  std::size_t i = 0;
  while (i < all.size()) {
    const double t = all[i].time;
    std::size_t events_a = 0, events_b = 0, removed_a = 0, removed_b = 0;
    while (i < all.size() && all[i].time == t) {
      if (all[i].in_a) {
        if (all[i].event) ++events_a;
        ++removed_a;
      } else {
        if (all[i].event) ++events_b;
        ++removed_b;
      }
      ++i;
    }
    const double d = static_cast<double>(events_a + events_b);
    if (d > 0.0) {
      const double na = static_cast<double>(at_risk_a);
      const double nb = static_cast<double>(at_risk_b);
      const double n = na + nb;
      observed_a += static_cast<double>(events_a);
      expected_a += d * na / n;
      // Hypergeometric variance of events_a given margins.
      if (n > 1.0) variance += d * (na / n) * (nb / n) * (n - d) / (n - 1.0);
    }
    at_risk_a -= removed_a;
    at_risk_b -= removed_b;
  }

  LogRankResult out;
  out.observed_a = observed_a;
  out.expected_a = expected_a;
  if (variance > 0.0) {
    const double diff = observed_a - expected_a;
    out.chi_squared = diff * diff / variance;
    // χ²(1) tail: P(X >= x) = Q(1/2, x/2).
    out.p_value = regularized_gamma_q(0.5, out.chi_squared / 2.0);
  }
  return out;
}

}  // namespace preempt::survival
