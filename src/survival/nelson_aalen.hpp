// Nelson-Aalen estimator of the cumulative hazard H(t) = ∫ h(u) du under
// right censoring.
//
// The bathtub shape the paper reports is a statement about the hazard; the
// Nelson-Aalen increments d_i/n_i give a direct nonparametric view of it,
// independent of the CDF fits (an empirical cross-check of Observation 1's
// three phases).
#pragma once

#include <cstddef>
#include <vector>

#include "survival/observation.hpp"

namespace preempt::survival {

struct NelsonAalenEstimate {
  std::vector<double> times;            ///< distinct event times, ascending
  std::vector<double> cumulative_hazard;  ///< H(t_i)
  std::vector<double> variance;         ///< Var[H(t_i)] (Poisson form d/n²)
  std::vector<std::size_t> at_risk;
  std::vector<std::size_t> events;

  /// H(t): right-continuous step lookup; 0 before the first event.
  double cumulative_hazard_at(double t) const;

  /// Smoothed hazard over [t - half_width, t + half_width]:
  /// ΔH / Δt, a crude kernel estimate good enough for phase plots.
  double smoothed_hazard(double t, double half_width) const;
};

/// Compute the NA estimate. Preconditions as for kaplan_meier.
NelsonAalenEstimate nelson_aalen(const SurvivalData& data);

}  // namespace preempt::survival
