#include "survival/nelson_aalen.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace preempt::survival {

double NelsonAalenEstimate::cumulative_hazard_at(double t) const {
  const auto it = std::upper_bound(times.begin(), times.end(), t);
  if (it == times.begin()) return 0.0;
  return cumulative_hazard[static_cast<std::size_t>(it - times.begin()) - 1];
}

double NelsonAalenEstimate::smoothed_hazard(double t, double half_width) const {
  PREEMPT_REQUIRE(half_width > 0.0, "smoothing half-width must be positive");
  const double lo = std::max(0.0, t - half_width);
  const double hi = t + half_width;
  const double dh = cumulative_hazard_at(hi) - cumulative_hazard_at(lo);
  return dh / (hi - lo);
}

NelsonAalenEstimate nelson_aalen(const SurvivalData& data) {
  PREEMPT_REQUIRE(!data.empty(), "nelson_aalen needs observations");
  PREEMPT_REQUIRE(data.event_count() > 0, "nelson_aalen needs at least one event");

  NelsonAalenEstimate est;
  const auto& obs = data.observations();
  std::size_t at_risk = obs.size();
  double h = 0.0;
  double var = 0.0;

  std::size_t i = 0;
  while (i < obs.size()) {
    const double t = obs[i].time;
    std::size_t events = 0, removed = 0;
    while (i < obs.size() && obs[i].time == t) {
      if (obs[i].event) ++events;
      ++removed;
      ++i;
    }
    if (events > 0) {
      const double n = static_cast<double>(at_risk);
      const double d = static_cast<double>(events);
      h += d / n;
      var += d / (n * n);
      est.times.push_back(t);
      est.cumulative_hazard.push_back(h);
      est.variance.push_back(var);
      est.at_risk.push_back(at_risk);
      est.events.push_back(events);
    }
    at_risk -= removed;
  }
  return est;
}

}  // namespace preempt::survival
