// Censored maximum-likelihood fitters.
//
// Least squares on the ECDF (the paper's methodology, src/fit) silently
// treats censored lifetimes as preemptions. The MLE handles censoring
// exactly: events contribute ln f(t), right-censored observations ln S(t),
// and — for the deadline-constrained bathtub model — reclaims at the horizon
// contribute the atom mass ln(1 - F(L⁻)).
#pragma once

#include <string>
#include <vector>

#include "dist/bathtub.hpp"
#include "dist/distribution.hpp"
#include "survival/observation.hpp"

namespace preempt::survival {

struct MleResult {
  dist::DistributionPtr distribution;  ///< fitted model (never null on return)
  std::vector<double> params;
  double log_likelihood = 0.0;
  double aic = 0.0;  ///< 2k - 2 lnL
  double bic = 0.0;  ///< k ln n - 2 lnL
  bool converged = false;
  std::string message;
};

/// Censored log-likelihood of a *continuous* lifetime law:
///   Σ_events ln f(t_i) + Σ_censored ln S(t_i).
/// Not suitable for distributions with probability atoms (use
/// fit_bathtub_mle for the deadline model); returns -infinity when any event
/// falls where the density vanishes.
double censored_log_likelihood(const dist::Distribution& d, const SurvivalData& data);

/// Exponential MLE — closed form: λ̂ = #events / total exposure.
MleResult fit_exponential_mle(const SurvivalData& data);

/// Weibull MLE — profile likelihood, Brent root on the shape score equation.
MleResult fit_weibull_mle(const SurvivalData& data);

/// Bathtub MLE on [0, horizon] — Nelder-Mead over (A, τ1, τ2, b) with the
/// deadline atom handled exactly: observations with time >= horizon - atom_tol
/// and event=true are treated as deadline reclaims.
struct BathtubMleOptions {
  double horizon = 24.0;
  double atom_tol = 1e-6;  ///< event times within this of the horizon count as reclaims
};
MleResult fit_bathtub_mle(const SurvivalData& data, const BathtubMleOptions& options = {});

}  // namespace preempt::survival
