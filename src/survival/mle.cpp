#include "survival/mle.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/math.hpp"
#include "common/root_find.hpp"
#include "dist/exponential.hpp"
#include "dist/weibull.hpp"
#include "fit/nelder_mead.hpp"

namespace preempt::survival {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Guard against ln(0) for event times recorded as exactly zero.
double positive_time(double t) { return std::max(t, 1e-12); }

void finish_information_criteria(MleResult& result, std::size_t k, std::size_t n) {
  result.aic = 2.0 * static_cast<double>(k) - 2.0 * result.log_likelihood;
  result.bic = static_cast<double>(k) * std::log(static_cast<double>(n)) -
               2.0 * result.log_likelihood;
}

}  // namespace

double censored_log_likelihood(const dist::Distribution& d, const SurvivalData& data) {
  PREEMPT_REQUIRE(!data.empty(), "log-likelihood needs observations");
  KahanSum ll;
  for (const auto& o : data.observations()) {
    if (o.event) {
      const double f = d.pdf(positive_time(o.time));
      if (f <= 0.0) return kNegInf;
      ll.add(std::log(f));
    } else {
      const double s = d.survival(o.time);
      if (s <= 0.0) return kNegInf;
      ll.add(std::log(s));
    }
  }
  return ll.value();
}

MleResult fit_exponential_mle(const SurvivalData& data) {
  PREEMPT_REQUIRE(data.event_count() > 0, "exponential MLE needs at least one event");
  PREEMPT_REQUIRE(data.total_exposure() > 0.0, "exponential MLE needs positive exposure");
  const double d = static_cast<double>(data.event_count());
  const double lambda = d / data.total_exposure();

  MleResult out;
  out.distribution = std::make_unique<dist::Exponential>(lambda);
  out.params = {lambda};
  out.log_likelihood = d * std::log(lambda) - lambda * data.total_exposure();
  out.converged = true;
  out.message = "closed form";
  finish_information_criteria(out, 1, data.size());
  return out;
}

MleResult fit_weibull_mle(const SurvivalData& data) {
  PREEMPT_REQUIRE(data.event_count() > 0, "weibull MLE needs at least one event");
  const double d = static_cast<double>(data.event_count());

  // Profile likelihood: for fixed shape k the scale is
  //   θ̂(k)^k = Σ_i t_i^k / d        (sum over ALL observations),
  // and the score in k reduces to
  //   g(k) = d/k + Σ_events ln t_i − d · Σ t_i^k ln t_i / Σ t_i^k.
  double sum_log_events = 0.0;
  for (const auto& o : data.observations()) {
    if (o.event) sum_log_events += std::log(positive_time(o.time));
  }
  auto score = [&](double k) {
    KahanSum sum_tk, sum_tk_log;
    for (const auto& o : data.observations()) {
      const double t = positive_time(o.time);
      const double tk = std::pow(t, k);
      sum_tk.add(tk);
      sum_tk_log.add(tk * std::log(t));
    }
    return d / k + sum_log_events - d * sum_tk_log.value() / sum_tk.value();
  };

  MleResult out;
  double k_lo = 0.05, k_hi = 50.0;
  double g_lo = score(k_lo), g_hi = score(k_hi);
  double k_hat;
  if (g_lo > 0.0 && g_hi < 0.0) {
    k_hat = brent(score, k_lo, k_hi);
    out.converged = true;
    out.message = "profile-likelihood root";
  } else {
    // Degenerate data (e.g. all events at one time): fall back to the
    // boundary with the higher likelihood.
    k_hat = std::abs(g_lo) < std::abs(g_hi) ? k_lo : k_hi;
    out.converged = false;
    out.message = "score equation had no sign change; boundary shape used";
  }

  KahanSum sum_tk;
  for (const auto& o : data.observations()) sum_tk.add(std::pow(positive_time(o.time), k_hat));
  const double theta = std::pow(sum_tk.value() / d, 1.0 / k_hat);
  const double lambda = 1.0 / theta;

  out.distribution = std::make_unique<dist::Weibull>(lambda, k_hat);
  out.params = {lambda, k_hat};
  out.log_likelihood = censored_log_likelihood(*out.distribution, data);
  finish_information_criteria(out, 2, data.size());
  return out;
}

MleResult fit_bathtub_mle(const SurvivalData& data, const BathtubMleOptions& options) {
  PREEMPT_REQUIRE(data.event_count() > 0, "bathtub MLE needs at least one event");
  PREEMPT_REQUIRE(options.horizon > 0.0, "bathtub MLE horizon must be positive");
  const double L = options.horizon;

  // Pre-split the data: interior events, deadline reclaims, censorings.
  std::vector<double> interior_events, censorings;
  std::size_t reclaims = 0;
  for (const auto& o : data.observations()) {
    if (o.event) {
      if (o.time >= L - options.atom_tol) {
        ++reclaims;
      } else {
        interior_events.push_back(positive_time(o.time));
      }
    } else {
      censorings.push_back(std::min(o.time, L));
    }
  }

  // Negative log-likelihood over p = {A, tau1, tau2, b}.
  auto nll = [&](const std::vector<double>& p) {
    const double A = p[0], tau1 = p[1], tau2 = p[2], b = p[3];
    auto raw_cdf = [&](double t) {
      return A * (1.0 - std::exp(-t / tau1) + std::exp((t - b) / tau2));
    };
    const double f_end = raw_cdf(L);
    if (f_end > 1.0) return std::numeric_limits<double>::max();  // invalid law
    const double f_start = raw_cdf(0.0);
    if (f_start > 0.2) return std::numeric_limits<double>::max();  // violates F(0) ≈ 0
    KahanSum ll;
    for (double t : interior_events) {
      const double f = A * (std::exp(-t / tau1) / tau1 + std::exp((t - b) / tau2) / tau2);
      if (f <= 0.0) return std::numeric_limits<double>::max();
      ll.add(std::log(f));
    }
    if (reclaims > 0) {
      const double atom = 1.0 - f_end;
      if (atom <= 0.0) return std::numeric_limits<double>::max();
      ll.add(static_cast<double>(reclaims) * std::log(atom));
    }
    for (double t : censorings) {
      const double s = 1.0 - raw_cdf(t);
      if (s <= 0.0) return std::numeric_limits<double>::max();
      ll.add(std::log(s));
    }
    return -ll.value();
  };

  const fit::Bounds bounds{{0.05, 0.05, 0.05, 0.5 * L}, {1.0, 20.0, 10.0, 1.5 * L}};
  fit::NelderMeadResult best;
  bool have_best = false;
  // Multi-start over plausible regimes (plateau height x infant speed).
  for (double a0 : {0.3, 0.45, 0.6}) {
    for (double tau1_0 : {0.5, 1.0, 3.0}) {
      std::vector<double> p0 = {a0, tau1_0, 0.8, L};
      if (!std::isfinite(nll(p0)) || nll(p0) >= std::numeric_limits<double>::max()) continue;
      auto r = fit::nelder_mead(nll, p0, bounds);
      if (!have_best || r.value < best.value) {
        best = std::move(r);
        have_best = true;
      }
    }
  }
  PREEMPT_CHECK(have_best, "all bathtub MLE starts were infeasible");

  dist::BathtubParams params;
  params.scale = best.params[0];
  params.tau1 = best.params[1];
  params.tau2 = best.params[2];
  params.deadline = best.params[3];
  params.horizon = L;

  MleResult out;
  out.distribution = std::make_unique<dist::BathtubDistribution>(params);
  out.params = best.params;
  out.log_likelihood = -best.value;
  out.converged = best.converged;
  out.message = best.message;
  finish_information_criteria(out, 4, data.size());
  return out;
}

}  // namespace preempt::survival
