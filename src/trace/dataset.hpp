// Preemption dataset: the record format of the empirical study (Sec. 3.1),
// compatible in spirit with the paper's published CSV dataset.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "trace/vm_catalog.hpp"

namespace preempt::trace {

/// One observed VM lifetime (a preemption event, or a 24 h deadline reclaim).
struct PreemptionRecord {
  VmType type = VmType::kN1Highcpu16;
  Zone zone = Zone::kUsEast1B;
  DayPeriod period = DayPeriod::kDay;       ///< derived from launch_hour
  WorkloadKind workload = WorkloadKind::kBatch;
  double launch_hour = 12.0;                ///< local time of launch, [0, 24)
  int day_of_week = 0;                      ///< 0 = Monday ... 6 = Sunday
  double lifetime_hours = 0.0;              ///< time to preemption
};

/// A collection of preemption observations with filtering and grouping.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<PreemptionRecord> records) : records_(std::move(records)) {}

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  const std::vector<PreemptionRecord>& records() const noexcept { return records_; }

  void add(PreemptionRecord record);
  void append(const Dataset& other);

  /// Records matching a predicate.
  Dataset filter(const std::function<bool(const PreemptionRecord&)>& pred) const;

  /// Common filters.
  Dataset by_type(VmType type) const;
  Dataset by_zone(Zone zone) const;
  Dataset by_period(DayPeriod period) const;
  Dataset by_workload(WorkloadKind workload) const;

  /// All lifetimes (hours), in record order.
  std::vector<double> lifetimes() const;

  /// Partition by VM type (only non-empty groups are returned).
  std::map<VmType, Dataset> group_by_type() const;
  std::map<Zone, Dataset> group_by_zone() const;

  /// CSV round-trip. Columns:
  /// vm_type,zone,period,workload,launch_hour,day_of_week,lifetime_hours
  std::string to_csv() const;
  static Dataset from_csv(const std::string& text);
  void save_csv(const std::string& path) const;
  static Dataset load_csv(const std::string& path);

 private:
  std::vector<PreemptionRecord> records_;
};

}  // namespace preempt::trace
