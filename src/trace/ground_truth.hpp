// Ground-truth preemption behaviour used by the synthetic trace generator.
//
// We do not have access to live Google Preemptible VMs, so (per DESIGN.md's
// substitution table) the "cloud provider" is a parameter catalog calibrated
// to the paper's published observations:
//   * base fit for n1-highcpu-16 @ us-east1-b: A=0.45, tau1=1.0, tau2=0.8,
//     b=24 (reproduces the Fig. 4/5 anchors, see DESIGN.md Sec. 7);
//   * Observation 4: larger VMs preempt more (A up, tau1 down with vCPUs);
//   * Observation 5: night launches and idle VMs live longer.
// Zones perturb the base mildly, matching the spread visible in Fig. 2c.
#pragma once

#include "dist/bathtub.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::trace {

/// Key identifying one preemption regime.
struct RegimeKey {
  VmType type = VmType::kN1Highcpu16;
  Zone zone = Zone::kUsEast1B;
  DayPeriod period = DayPeriod::kDay;
  WorkloadKind workload = WorkloadKind::kBatch;

  friend bool operator==(const RegimeKey&, const RegimeKey&) = default;
};

/// The maximum lifetime Google enforces on Preemptible VMs (hours).
inline constexpr double kMaxLifetimeHours = 24.0;

/// Ground-truth bathtub parameters for a regime. Deterministic.
dist::BathtubParams ground_truth_params(const RegimeKey& key);

/// Convenience: the ground-truth distribution itself.
dist::BathtubDistribution ground_truth_distribution(const RegimeKey& key);

}  // namespace preempt::trace
