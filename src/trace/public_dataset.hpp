// Importer for the paper's released preemption dataset
// (github.com/kadupitiya/goog-preemption-data).
//
// The release is a set of CSV files of observed VM lifetimes. Column naming
// in such research dumps is not standardised, so the importer is
// header-driven and tolerant:
//   * the machine type column may be named machine_type / vm_type /
//     instance_type / type;
//   * the zone column zone / region (optional — a file-level default can be
//     supplied instead);
//   * the lifetime column lifetime_hours / lifetime / time_to_preemption /
//     lifetime_seconds / duration_seconds / lifetime_minutes ... — a "sec" or
//     "min" fragment in the name selects the unit, otherwise hours;
//   * optional launch_hour / launch_time and day_of_week columns;
//   * rows naming unknown machine types or zones are skipped and counted
//     (or rejected, per options).
//
// Everything lands in the same trace::Dataset the synthetic generator
// produces, so the full analysis stack (ECDF, fits, policies, benches) runs
// on real data unchanged.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/dataset.hpp"

namespace preempt::trace {

struct ImportOptions {
  /// Zone to assume when the file has no zone column.
  std::optional<Zone> default_zone;
  /// VM type to assume when the file has no type column.
  std::optional<VmType> default_type;
  /// Reject the whole file on the first unparseable row instead of skipping.
  bool strict = false;
  /// Drop rows with non-positive or non-finite lifetimes (always counted).
  double max_lifetime_hours = 48.0;  ///< sanity cap; beyond it the row is junk
};

struct ImportReport {
  Dataset dataset;
  std::size_t imported = 0;
  std::size_t skipped = 0;
  std::vector<std::string> warnings;  ///< one entry per skip reason (deduplicated)
};

/// Import from CSV text. Throws IoError when the text is not CSV, has no
/// usable lifetime column, or (strict mode) any row is bad.
ImportReport import_public_csv(const std::string& text, const ImportOptions& options = {});

/// Convenience: read a file and import it.
ImportReport load_public_csv(const std::string& path, const ImportOptions& options = {});

}  // namespace preempt::trace
