#include "trace/generator.hpp"

#include "common/error.hpp"
#include "common/random.hpp"

namespace preempt::trace {

namespace {

/// Draw a local launch hour consistent with the requested period.
double draw_launch_hour(Rng& rng, DayPeriod period) {
  if (period == DayPeriod::kDay) return rng.uniform(8.0, 20.0);
  // Night wraps midnight: [20, 24) u [0, 8).
  const double x = rng.uniform(0.0, 12.0);
  return x < 4.0 ? 20.0 + x : x - 4.0;
}

}  // namespace

Dataset generate_campaign(const CampaignConfig& config) {
  PREEMPT_REQUIRE(config.vm_count >= 1, "campaign needs at least one VM");
  const dist::BathtubDistribution truth = ground_truth_distribution(config.regime);
  Rng rng(config.seed);
  Dataset out;
  for (std::size_t i = 0; i < config.vm_count; ++i) {
    PreemptionRecord r;
    r.type = config.regime.type;
    r.zone = config.regime.zone;
    r.period = config.regime.period;
    r.workload = config.regime.workload;
    r.launch_hour = draw_launch_hour(rng, config.regime.period);
    r.day_of_week = static_cast<int>(rng.uniform_index(7));
    r.lifetime_hours = truth.sample(rng);
    out.add(r);
  }
  return out;
}

Dataset generate_study(const StudyConfig& config) {
  PREEMPT_REQUIRE(config.vms_per_cell >= 4, "study needs at least 4 VMs per cell");
  PREEMPT_REQUIRE(config.night_fraction >= 0.0 && config.night_fraction <= 1.0,
                  "night_fraction must be in [0,1]");
  PREEMPT_REQUIRE(config.idle_fraction >= 0.0 && config.idle_fraction <= 1.0,
                  "idle_fraction must be in [0,1]");
  Dataset out;
  std::uint64_t stream = config.seed;
  for (const VmSpec& spec : all_vm_specs()) {
    for (Zone zone : all_zones()) {
      // Split the cell into the four period x workload mixes.
      const auto n = static_cast<double>(config.vms_per_cell);
      const auto n_night = static_cast<std::size_t>(n * config.night_fraction);
      const std::size_t n_day = config.vms_per_cell - n_night;
      const auto split = [&](std::size_t count, DayPeriod period) {
        const auto n_idle = static_cast<std::size_t>(
            static_cast<double>(count) * config.idle_fraction);
        const std::size_t n_batch = count - n_idle;
        if (n_batch > 0) {
          out.append(generate_campaign(
              {{spec.type, zone, period, WorkloadKind::kBatch}, n_batch, ++stream}));
        }
        if (n_idle > 0) {
          out.append(generate_campaign(
              {{spec.type, zone, period, WorkloadKind::kIdle}, n_idle, ++stream}));
        }
      };
      split(n_day, DayPeriod::kDay);
      split(n_night, DayPeriod::kNight);
    }
  }
  return out;
}

}  // namespace preempt::trace
