#include "trace/public_dataset.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt::trace {

namespace {

/// Case-insensitive lookup of the first matching column alias; nullopt when
/// none is present.
std::optional<std::size_t> find_column(const CsvDocument& doc,
                                       const std::vector<std::string>& aliases) {
  for (std::size_t i = 0; i < doc.header.size(); ++i) {
    const std::string name = to_lower(trim(doc.header[i]));
    for (const auto& alias : aliases) {
      if (name == alias) return i;
    }
  }
  return std::nullopt;
}

/// Lifetime unit implied by the column name: "sec" -> seconds, "min" ->
/// minutes, otherwise hours.
double unit_scale_to_hours(const std::string& column_name) {
  const std::string name = to_lower(column_name);
  if (name.find("sec") != std::string::npos) return 1.0 / 3600.0;
  if (name.find("min") != std::string::npos) return 1.0 / 60.0;
  return 1.0;
}

}  // namespace

ImportReport import_public_csv(const std::string& text, const ImportOptions& options) {
  const CsvDocument doc = parse_csv(text);

  const auto type_col = find_column(doc, {"machine_type", "vm_type", "instance_type", "type"});
  const auto zone_col = find_column(doc, {"zone", "region"});
  const auto life_col =
      find_column(doc, {"lifetime_hours", "lifetime", "time_to_preemption", "lifetime_seconds",
                        "duration_seconds", "duration_sec", "lifetime_minutes", "duration",
                        "time_to_preemption_hours"});
  const auto hour_col = find_column(doc, {"launch_hour", "launch_time", "hour"});
  const auto dow_col = find_column(doc, {"day_of_week", "dow", "weekday"});
  const auto workload_col = find_column(doc, {"workload", "workload_kind"});

  if (!life_col) {
    throw IoError("public dataset import: no lifetime column found (tried lifetime_hours, "
                  "lifetime, time_to_preemption, *_seconds, *_minutes)");
  }
  if (!type_col && !options.default_type) {
    throw IoError("public dataset import: no machine-type column and no default_type given");
  }
  if (!zone_col && !options.default_zone) {
    throw IoError("public dataset import: no zone column and no default_zone given");
  }
  const double scale = unit_scale_to_hours(doc.header[*life_col]);

  ImportReport report;
  std::set<std::string> warned;
  auto skip = [&](std::size_t row_index, const std::string& reason) {
    if (options.strict) {
      throw IoError("public dataset import: row " + std::to_string(row_index + 2) + ": " +
                    reason);
    }
    ++report.skipped;
    if (warned.insert(reason).second) report.warnings.push_back(reason);
  };

  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    PreemptionRecord rec;

    if (type_col) {
      const auto type = vm_type_from_string(trim(row[*type_col]));
      if (!type) {
        skip(r, "unknown machine type '" + row[*type_col] + "'");
        continue;
      }
      rec.type = *type;
    } else {
      rec.type = *options.default_type;
    }

    if (zone_col) {
      const auto zone = zone_from_string(trim(row[*zone_col]));
      if (!zone) {
        skip(r, "unknown zone '" + row[*zone_col] + "'");
        continue;
      }
      rec.zone = *zone;
    } else {
      rec.zone = *options.default_zone;
    }

    double lifetime = 0.0;
    try {
      lifetime = parse_double(row[*life_col]) * scale;
    } catch (const Error&) {
      skip(r, "unparseable lifetime '" + row[*life_col] + "'");
      continue;
    }
    if (!std::isfinite(lifetime) || lifetime <= 0.0) {
      skip(r, "non-positive lifetime");
      continue;
    }
    if (lifetime > options.max_lifetime_hours) {
      skip(r, "lifetime beyond the sanity cap");
      continue;
    }
    rec.lifetime_hours = lifetime;

    if (hour_col) {
      try {
        rec.launch_hour = std::fmod(parse_double(row[*hour_col]), 24.0);
        if (rec.launch_hour < 0.0) rec.launch_hour += 24.0;
      } catch (const Error&) {
        skip(r, "unparseable launch hour '" + row[*hour_col] + "'");
        continue;
      }
    }
    rec.period = day_period_of_hour(rec.launch_hour);

    if (dow_col) {
      try {
        const long dow = parse_int(row[*dow_col]);
        if (dow < 0 || dow > 6) {
          skip(r, "day_of_week outside 0..6");
          continue;
        }
        rec.day_of_week = static_cast<int>(dow);
      } catch (const Error&) {
        skip(r, "unparseable day_of_week '" + row[*dow_col] + "'");
        continue;
      }
    }

    if (workload_col) {
      const auto workload = workload_from_string(to_lower(trim(row[*workload_col])));
      if (!workload) {
        skip(r, "unknown workload '" + row[*workload_col] + "'");
        continue;
      }
      rec.workload = *workload;
    }

    report.dataset.add(rec);
    ++report.imported;
  }
  return report;
}

ImportReport load_public_csv(const std::string& path, const ImportOptions& options) {
  const CsvDocument doc = read_csv_file(path);
  return import_public_csv(to_csv(doc.header, doc.rows), options);
}

}  // namespace preempt::trace
