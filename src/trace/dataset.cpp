#include "trace/dataset.hpp"

#include <cmath>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/string_util.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::trace {

namespace {
void validate_record(const PreemptionRecord& r) {
  PREEMPT_REQUIRE(r.launch_hour >= 0.0 && r.launch_hour < 24.0, "launch_hour must be in [0,24)");
  PREEMPT_REQUIRE(r.day_of_week >= 0 && r.day_of_week <= 6, "day_of_week must be in [0,6]");
  PREEMPT_REQUIRE(std::isfinite(r.lifetime_hours) && r.lifetime_hours >= 0.0 &&
                      r.lifetime_hours <= kMaxLifetimeHours + 1e-9,
                  "lifetime must be in [0, 24] hours");
}
}  // namespace

void Dataset::add(PreemptionRecord record) {
  validate_record(record);
  records_.push_back(record);
}

void Dataset::append(const Dataset& other) {
  records_.insert(records_.end(), other.records_.begin(), other.records_.end());
}

Dataset Dataset::filter(const std::function<bool(const PreemptionRecord&)>& pred) const {
  Dataset out;
  for (const auto& r : records_) {
    if (pred(r)) out.records_.push_back(r);
  }
  return out;
}

Dataset Dataset::by_type(VmType type) const {
  return filter([type](const PreemptionRecord& r) { return r.type == type; });
}

Dataset Dataset::by_zone(Zone zone) const {
  return filter([zone](const PreemptionRecord& r) { return r.zone == zone; });
}

Dataset Dataset::by_period(DayPeriod period) const {
  return filter([period](const PreemptionRecord& r) { return r.period == period; });
}

Dataset Dataset::by_workload(WorkloadKind workload) const {
  return filter([workload](const PreemptionRecord& r) { return r.workload == workload; });
}

std::vector<double> Dataset::lifetimes() const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back(r.lifetime_hours);
  return out;
}

std::map<VmType, Dataset> Dataset::group_by_type() const {
  std::map<VmType, Dataset> out;
  for (const auto& r : records_) out[r.type].records_.push_back(r);
  return out;
}

std::map<Zone, Dataset> Dataset::group_by_zone() const {
  std::map<Zone, Dataset> out;
  for (const auto& r : records_) out[r.zone].records_.push_back(r);
  return out;
}

namespace {
const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> kHeader = {
      "vm_type", "zone", "period", "workload", "launch_hour", "day_of_week", "lifetime_hours"};
  return kHeader;
}
}  // namespace

std::string Dataset::to_csv() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records_.size());
  for (const auto& r : records_) {
    rows.push_back({to_string(r.type), to_string(r.zone), to_string(r.period),
                    to_string(r.workload), fmt_double(r.launch_hour, 4),
                    std::to_string(r.day_of_week), fmt_double(r.lifetime_hours, 6)});
  }
  return preempt::to_csv(csv_header(), rows);
}

Dataset Dataset::from_csv(const std::string& text) {
  const CsvDocument doc = parse_csv(text);
  const std::size_t c_type = doc.column("vm_type");
  const std::size_t c_zone = doc.column("zone");
  const std::size_t c_period = doc.column("period");
  const std::size_t c_workload = doc.column("workload");
  const std::size_t c_hour = doc.column("launch_hour");
  const std::size_t c_dow = doc.column("day_of_week");
  const std::size_t c_life = doc.column("lifetime_hours");

  Dataset out;
  for (const auto& row : doc.rows) {
    PreemptionRecord r;
    const auto type = vm_type_from_string(row[c_type]);
    const auto zone = zone_from_string(row[c_zone]);
    const auto period = day_period_from_string(row[c_period]);
    const auto workload = workload_from_string(row[c_workload]);
    if (!type || !zone || !period || !workload) {
      throw IoError("dataset CSV: unknown enum value in row");
    }
    r.type = *type;
    r.zone = *zone;
    r.period = *period;
    r.workload = *workload;
    r.launch_hour = parse_double(row[c_hour]);
    r.day_of_week = static_cast<int>(parse_int(row[c_dow]));
    r.lifetime_hours = parse_double(row[c_life]);
    out.add(r);
  }
  return out;
}

void Dataset::save_csv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(records_.size());
  for (const auto& r : records_) {
    rows.push_back({to_string(r.type), to_string(r.zone), to_string(r.period),
                    to_string(r.workload), fmt_double(r.launch_hour, 4),
                    std::to_string(r.day_of_week), fmt_double(r.lifetime_hours, 6)});
  }
  write_csv_file(path, csv_header(), rows);
}

Dataset Dataset::load_csv(const std::string& path) {
  const CsvDocument doc = read_csv_file(path);
  return from_csv(preempt::to_csv(doc.header, doc.rows));
}

}  // namespace preempt::trace
