#include "trace/ground_truth.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace preempt::trace {

namespace {

/// Base (A, tau1) per VM type; tau2/b are shared. Larger VMs reclaim faster:
/// the provider can recover more capacity per preemption (Observation 4).
struct TypeBase {
  double scale;
  double tau1;
};

TypeBase type_base(VmType type) {
  switch (type) {
    case VmType::kN1Highcpu2: return {0.32, 2.4};
    case VmType::kN1Highcpu4: return {0.36, 1.8};
    case VmType::kN1Highcpu8: return {0.40, 1.4};
    case VmType::kN1Highcpu16: return {0.45, 1.0};
    case VmType::kN1Highcpu32: return {0.50, 0.7};
  }
  throw InvalidArgument("unknown VM type");
}

/// Mild zone-to-zone spread (Fig. 2c): multiplicative tweaks on (A, tau1).
struct Modifier {
  double scale_mul;
  double tau1_mul;
};

Modifier zone_modifier(Zone zone) {
  switch (zone) {
    case Zone::kUsEast1B: return {1.00, 1.00};
    case Zone::kUsCentral1C: return {0.95, 1.10};
    case Zone::kUsCentral1F: return {1.05, 0.90};
    case Zone::kUsWest1A: return {0.90, 1.25};
  }
  throw InvalidArgument("unknown zone");
}

/// Night launches see lower demand, hence fewer early reclaims (Obs. 5).
Modifier period_modifier(DayPeriod period) {
  return period == DayPeriod::kNight ? Modifier{0.90, 1.30} : Modifier{1.00, 1.00};
}

/// Idle VMs overcommit well and are reclaimed less aggressively (Obs. 5).
Modifier workload_modifier(WorkloadKind workload) {
  return workload == WorkloadKind::kIdle ? Modifier{0.88, 1.40} : Modifier{1.00, 1.00};
}

}  // namespace

dist::BathtubParams ground_truth_params(const RegimeKey& key) {
  const TypeBase base = type_base(key.type);
  const Modifier z = zone_modifier(key.zone);
  const Modifier p = period_modifier(key.period);
  const Modifier w = workload_modifier(key.workload);

  dist::BathtubParams params;
  // A is capped at 0.5 so the raw CDF stays <= 1 over [0, 24]; any shortfall
  // below 1 is the deadline-reclamation atom at 24 h.
  params.scale = clamp(base.scale * z.scale_mul * p.scale_mul * w.scale_mul, 0.10, 0.50);
  params.tau1 = clamp(base.tau1 * z.tau1_mul * p.tau1_mul * w.tau1_mul, 0.2, 6.0);
  params.tau2 = 0.8;
  params.deadline = kMaxLifetimeHours;
  params.horizon = kMaxLifetimeHours;
  return params;
}

dist::BathtubDistribution ground_truth_distribution(const RegimeKey& key) {
  return dist::BathtubDistribution(ground_truth_params(key));
}

}  // namespace preempt::trace
