// Catalog of the VM types, zones and prices used in the paper's study.
//
// Types are the Google Cloud n1-highcpu family the paper measures
// (Fig. 2a); prices are the published 2019 us-central1 rates, which give the
// ~4.7x preemptible discount behind the paper's "5x cheaper" headline.
#pragma once

#include <optional>
#include <span>
#include <string>

namespace preempt::trace {

/// VM types from the empirical study (number = vCPU count).
enum class VmType {
  kN1Highcpu2,
  kN1Highcpu4,
  kN1Highcpu8,
  kN1Highcpu16,
  kN1Highcpu32,
};

/// Geographic zones from the empirical study (Fig. 2c).
enum class Zone {
  kUsCentral1C,
  kUsCentral1F,
  kUsWest1A,
  kUsEast1B,
};

/// Launch period relative to the VM's local time zone (Fig. 2b): day is
/// 8 AM - 8 PM, night is the complement.
enum class DayPeriod { kDay, kNight };

/// Workload running inside the VM during the measurement (Fig. 2b).
enum class WorkloadKind { kIdle, kBatch };

/// Static description of a VM type.
struct VmSpec {
  VmType type;
  std::string name;          ///< e.g. "n1-highcpu-16"
  int vcpus;                 ///< CPU count
  double memory_gb;          ///< RAM
  double on_demand_per_hour; ///< conventional price, $/h
  double preemptible_per_hour;  ///< transient price, $/h
};

/// All specs, ordered by size.
std::span<const VmSpec> all_vm_specs();

/// Spec lookup; throws InvalidArgument for unknown types.
const VmSpec& vm_spec(VmType type);

/// All zones in study order.
std::span<const Zone> all_zones();

// Name round-trips (throw InvalidArgument / return nullopt on junk).
std::string to_string(VmType type);
std::string to_string(Zone zone);
std::string to_string(DayPeriod period);
std::string to_string(WorkloadKind workload);
std::optional<VmType> vm_type_from_string(const std::string& name);
std::optional<Zone> zone_from_string(const std::string& name);
std::optional<DayPeriod> day_period_from_string(const std::string& name);
std::optional<WorkloadKind> workload_from_string(const std::string& name);

/// Day period implied by a local launch hour in [0, 24).
DayPeriod day_period_of_hour(double hour);

}  // namespace preempt::trace
