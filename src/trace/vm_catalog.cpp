#include "trace/vm_catalog.hpp"

#include <array>

#include "common/error.hpp"

namespace preempt::trace {

namespace {
// 2019 list prices, us-central1 (USD/hour). The preemptible discount is the
// flat ~79% Google applied to the n1 family.
constexpr int kTypeCount = 5;
const std::array<VmSpec, kTypeCount>& specs() {
  static const std::array<VmSpec, kTypeCount> kSpecs = {{
      {VmType::kN1Highcpu2, "n1-highcpu-2", 2, 1.80, 0.0709, 0.0150},
      {VmType::kN1Highcpu4, "n1-highcpu-4", 4, 3.60, 0.1418, 0.0300},
      {VmType::kN1Highcpu8, "n1-highcpu-8", 8, 7.20, 0.2836, 0.0600},
      {VmType::kN1Highcpu16, "n1-highcpu-16", 16, 14.40, 0.5672, 0.1200},
      {VmType::kN1Highcpu32, "n1-highcpu-32", 32, 28.80, 1.1344, 0.2400},
  }};
  return kSpecs;
}

const std::array<Zone, 4>& zones() {
  static const std::array<Zone, 4> kZones = {Zone::kUsCentral1C, Zone::kUsCentral1F,
                                             Zone::kUsWest1A, Zone::kUsEast1B};
  return kZones;
}
}  // namespace

std::span<const VmSpec> all_vm_specs() { return specs(); }

const VmSpec& vm_spec(VmType type) {
  for (const VmSpec& s : specs()) {
    if (s.type == type) return s;
  }
  throw InvalidArgument("unknown VM type");
}

std::span<const Zone> all_zones() { return zones(); }

std::string to_string(VmType type) { return vm_spec(type).name; }

std::string to_string(Zone zone) {
  switch (zone) {
    case Zone::kUsCentral1C: return "us-central1-c";
    case Zone::kUsCentral1F: return "us-central1-f";
    case Zone::kUsWest1A: return "us-west1-a";
    case Zone::kUsEast1B: return "us-east1-b";
  }
  throw InvalidArgument("unknown zone");
}

std::string to_string(DayPeriod period) {
  return period == DayPeriod::kDay ? "day" : "night";
}

std::string to_string(WorkloadKind workload) {
  return workload == WorkloadKind::kIdle ? "idle" : "batch";
}

std::optional<VmType> vm_type_from_string(const std::string& name) {
  for (const VmSpec& s : specs()) {
    if (s.name == name) return s.type;
  }
  return std::nullopt;
}

std::optional<Zone> zone_from_string(const std::string& name) {
  for (Zone z : zones()) {
    if (to_string(z) == name) return z;
  }
  return std::nullopt;
}

std::optional<DayPeriod> day_period_from_string(const std::string& name) {
  if (name == "day") return DayPeriod::kDay;
  if (name == "night") return DayPeriod::kNight;
  return std::nullopt;
}

std::optional<WorkloadKind> workload_from_string(const std::string& name) {
  if (name == "idle") return WorkloadKind::kIdle;
  if (name == "batch") return WorkloadKind::kBatch;
  return std::nullopt;
}

DayPeriod day_period_of_hour(double hour) {
  PREEMPT_REQUIRE(hour >= 0.0 && hour < 24.0, "hour must be in [0, 24)");
  return (hour >= 8.0 && hour < 20.0) ? DayPeriod::kDay : DayPeriod::kNight;
}

}  // namespace preempt::trace
