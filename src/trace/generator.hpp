// Synthetic preemption-trace generation: the stand-in for the paper's
// $5,000, 870-VM measurement campaign on Google Cloud (Sec. 3.1).
//
// Lifetimes are drawn from the ground-truth catalog (bathtub law with a
// deadline atom); the campaign structure mirrors the paper's methodology —
// several VM types, four zones, day/night launches over weekdays/weekends,
// idle and busy workloads.
#pragma once

#include <cstdint>

#include "trace/dataset.hpp"
#include "trace/ground_truth.hpp"

namespace preempt::trace {

/// One homogeneous batch of VM launches.
struct CampaignConfig {
  RegimeKey regime;            ///< type/zone/period/workload
  std::size_t vm_count = 100;  ///< VMs to launch
  std::uint64_t seed = 42;     ///< RNG stream seed
};

/// Generate lifetimes for one homogeneous campaign.
Dataset generate_campaign(const CampaignConfig& config);

/// Configuration of a full Sec. 3.1-style study.
struct StudyConfig {
  /// VMs per (type, zone) cell; the paper observed 870 preemptions total.
  std::size_t vms_per_cell = 44;
  /// Fraction of VMs launched at night / left idle.
  double night_fraction = 0.5;
  double idle_fraction = 0.25;
  std::uint64_t seed = 2019;  ///< the study ran Feb-Apr 2019
};

/// Run the full factorial study: all 5 VM types x 4 zones, with day/night and
/// idle/busy mixes. Produces ~vms_per_cell * 20 records.
Dataset generate_study(const StudyConfig& config);

}  // namespace preempt::trace
