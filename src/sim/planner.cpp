#include "sim/planner.hpp"

#include "common/error.hpp"

namespace preempt::sim {

std::vector<double> NoCheckpointPlanner::plan(double work_hours, double /*vm_age_hours*/) const {
  PREEMPT_REQUIRE(work_hours > 0.0, "work must be positive");
  return {work_hours};
}

YoungDalyPlanner::YoungDalyPlanner(double mttf_hours, double delta_hours)
    : mttf_hours_(mttf_hours), delta_hours_(delta_hours) {
  PREEMPT_REQUIRE(mttf_hours > 0.0, "MTTF must be positive");
  PREEMPT_REQUIRE(delta_hours > 0.0, "checkpoint cost must be positive");
}

std::vector<double> YoungDalyPlanner::plan(double work_hours, double /*vm_age_hours*/) const {
  PREEMPT_REQUIRE(work_hours > 0.0, "work must be positive");
  return policy::young_daly_plan(work_hours, mttf_hours_, delta_hours_).work_segments_hours;
}

DpCheckpointPlanner::DpCheckpointPlanner(std::shared_ptr<const policy::CheckpointDp> dp)
    : dp_(std::move(dp)) {
  PREEMPT_REQUIRE(dp_ != nullptr, "DP planner needs a value table");
}

std::vector<double> DpCheckpointPlanner::plan(double work_hours, double vm_age_hours) const {
  PREEMPT_REQUIRE(work_hours > 0.0, "work must be positive");
  // Clamp tiny remainders (rounding) up to one DP step.
  const double step = dp_->config().step_hours;
  const double work = std::max(work_hours, step);
  PREEMPT_REQUIRE(work <= dp_->job_hours() + 1e-9,
                  "work exceeds the precomputed DP table; build a larger table");
  auto segments = dp_->schedule_partial(std::min(work, dp_->job_hours()), vm_age_hours);
  PREEMPT_CHECK(!segments.empty(), "DP schedule came out empty");
  // Rescale rounding drift so segments sum exactly to the requested work.
  double total = 0.0;
  for (double s : segments) total += s;
  const double scale = work_hours / total;
  for (double& s : segments) s *= scale;
  return segments;
}

}  // namespace preempt::sim
