// The batch computing service (paper Sec. 5), as a discrete-event simulation.
//
// Mirrors the paper's architecture: a central controller owns a cluster of
// preemptible VMs (Slurm-like ClusterManager), accepts bags of jobs, applies
// the model-driven VM-reuse policy on every dispatch, optionally checkpoints
// jobs with a planner, keeps stable VMs as hot spares for one hour, and
// accounts costs at preemptible vs on-demand rates.
//
// The "cloud provider" is the ground-truth lifetime distribution: every VM
// launch samples a preemption time from it.
#pragma once

#include <deque>
#include <memory>
#include <optional>

#include "common/random.hpp"
#include "dist/distribution.hpp"
#include "policy/scheduling.hpp"
#include "sim/cluster.hpp"
#include "sim/cost.hpp"
#include "sim/job.hpp"
#include "sim/planner.hpp"
#include "sim/simulator.hpp"
#include "sim/workloads.hpp"

namespace preempt::sim {

/// Which VM-reuse rule the dispatcher applies (Sec. 4.2 / Sec. 6.2.1).
enum class ReusePolicyKind { kModelDriven, kMemoryless, kAlwaysFresh };

/// The user-facing policy vocabulary ("model" | "memoryless" | "fresh")
/// shared by the CLI, the bag API and the scenario layer.
std::string to_string(ReusePolicyKind policy);
std::optional<ReusePolicyKind> reuse_policy_from_string(const std::string& text);

struct ServiceConfig {
  trace::VmType vm_type = trace::VmType::kN1Highcpu16;
  std::size_t cluster_size = 32;            ///< target number of live VMs
  double provision_delay_hours = 2.0 / 60.0;  ///< VM boot + registration
  double hot_spare_retention_hours = 1.0;   ///< idle VMs kept alive this long
  ReusePolicyKind reuse_policy = ReusePolicyKind::kModelDriven;
  /// Formula behind the model-driven rule (kConditionalWaste avoids the
  /// literal Eq. 8's young-VM churn for short jobs; see DESIGN.md).
  policy::ReuseRule reuse_rule = policy::ReuseRule::kConditionalWaste;
  bool checkpointing = false;               ///< write checkpoints via `planner`
  std::uint64_t seed = 42;
  double max_sim_hours = 24.0 * 365.0;      ///< safety cap on simulated time
};

/// Aggregated outcome of one service run.
struct ServiceReport {
  std::size_t jobs_completed = 0;
  double makespan_hours = 0.0;          ///< submission of first to last completion
  double ideal_makespan_hours = 0.0;    ///< failure-free, perfectly packed
  double increase_fraction = 0.0;       ///< (makespan - ideal) / ideal
  double total_cost = 0.0;              ///< preemptible billing of all VMs
  double cost_per_job = 0.0;
  double on_demand_cost_per_job = 0.0;  ///< baseline: same work at on-demand rates
  double cost_reduction_factor = 0.0;   ///< on-demand / ours
  int preemptions = 0;                  ///< preemptions that hit running jobs
  int preemptions_total = 0;            ///< all preemptions incl. idle VMs
  int vms_launched = 0;
  int fresh_vm_launches = 0;            ///< launches forced by the reuse policy
  int hot_spare_expirations = 0;
  double total_vm_hours = 0.0;
  double wasted_hours = 0.0;            ///< job time lost to preemptions
  double checkpoint_overhead_hours = 0.0;
};

class BatchService {
 public:
  /// `ground_truth` drives actual preemptions; `decision_model` is what the
  /// policies believe (normally a fit of the same regime; give a misfit model
  /// to reproduce the Fig. 7 sensitivity study). `planner` may be null when
  /// checkpointing is disabled.
  BatchService(ServiceConfig config, dist::DistributionPtr ground_truth,
               dist::DistributionPtr decision_model,
               std::unique_ptr<CheckpointPlanner> planner = nullptr);

  /// Queue a bag; call before run().
  void submit_bag(const BagOfJobs& bag);

  /// Run the simulation to completion and produce the report.
  ServiceReport run();

  /// Access to per-job records after run() (completion order not guaranteed).
  const std::vector<Job>& jobs() const noexcept { return job_store_; }

 private:
  // --- dispatch machinery ---
  void provision_vm();
  void on_vm_ready(std::uint64_t vm_id);
  void on_vm_preempted(std::uint64_t vm_id);
  void on_hot_spare_timeout(std::uint64_t vm_id, double idle_since);
  void try_dispatch();
  void start_job(Job& job, const std::vector<std::uint64_t>& gang);
  void begin_segment(std::uint64_t job_id);
  void on_segment_complete(std::uint64_t job_id, std::uint64_t epoch);
  void fail_running_job(Job& job, std::uint64_t preempted_vm);
  void complete_job(Job& job);
  /// Next ground-truth lifetime, from a sample_many-refilled batch buffer
  /// (one virtual call per 256 launches instead of one per launch; the draw
  /// sequence — and so every report — is bit-identical to per-launch
  /// sample() because sample_many consumes the same stream in order).
  double draw_lifetime();
  double gang_age(const std::vector<std::uint64_t>& gang) const;
  bool accepts_vm(const Job& job, const VmInstance& vm) const;
  ServiceReport build_report() const;

  // --- state ---
  ServiceConfig config_;
  dist::DistributionPtr ground_truth_;
  std::unique_ptr<policy::SchedulingPolicy> reuse_policy_;
  std::unique_ptr<CheckpointPlanner> planner_;
  Simulator sim_;
  ClusterManager cluster_;
  Rng rng_;
  std::vector<double> lifetime_buffer_;  ///< batched ground-truth draws
  std::size_t next_lifetime_ = 0;

  std::vector<Job> job_store_;             // indexed by job id - 1
  std::deque<std::uint64_t> queue_;        // pending job ids
  std::uint64_t next_vm_id_ = 1;
  std::uint64_t next_epoch_ = 1;
  std::size_t provisions_in_flight_ = 0;

  /// Per running job: its gang, remaining segment plan, and an epoch guard
  /// invalidating stale completion events after a failure.
  struct RunContext {
    std::vector<std::uint64_t> gang;
    std::vector<double> segments;  ///< remaining segments incl. the active one
    double segment_started = 0.0;
    std::uint64_t epoch = 0;
  };
  std::map<std::uint64_t, RunContext> running_;

  // --- statistics ---
  int preemptions_total_ = 0;
  int preemptions_hitting_jobs_ = 0;
  int vms_launched_ = 0;
  int fresh_vm_launches_ = 0;
  int hot_spare_expirations_ = 0;
  double first_submit_ = -1.0;
  double last_completion_ = 0.0;
  CostModel cost_model_;
};

}  // namespace preempt::sim
