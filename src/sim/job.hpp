// Jobs and the bag-of-jobs abstraction (paper Sec. 5).
//
// Scientific simulation campaigns submit a *bag* of near-identical jobs that
// sweep a parameter space; within a bag, running times show little variance,
// which is what makes the model-driven policies practical (job lengths are
// known from earlier jobs in the bag).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace preempt::sim {

/// Static description of one job.
struct JobSpec {
  std::string name = "job";
  double work_hours = 1.0;       ///< failure-free running time
  int gang_vms = 1;              ///< VMs that must run simultaneously
  bool checkpointable = false;   ///< can the application write checkpoints?
  double checkpoint_cost_hours = 1.0 / 60.0;  ///< delta, when checkpointable
};

/// A bag of `count` jobs sharing one spec (different physical parameters).
struct BagOfJobs {
  std::string name = "bag";
  JobSpec spec;
  std::size_t count = 1;
};

enum class JobState { kPending, kRunning, kCompleted };

/// Dynamic per-job bookkeeping maintained by the batch service.
struct Job {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kPending;
  double submit_time = 0.0;
  double first_start_time = -1.0;
  double finish_time = -1.0;
  double completed_work = 0.0;   ///< checkpointed progress (hours of work)
  double wasted_hours = 0.0;     ///< work + checkpoint time lost to preemptions
  double overhead_hours = 0.0;   ///< checkpoint-write time spent
  int preemptions = 0;           ///< preemptions observed while running
  int fresh_vm_launches = 0;     ///< VMs launched because the policy refused reuse

  double remaining_work() const { return spec.work_hours - completed_work; }
};

}  // namespace preempt::sim
