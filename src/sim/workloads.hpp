// The paper's three scientific computing workloads (Sec. 6, "Environment and
// Workloads"), expressed as job templates for the batch service.
#pragma once

#include "sim/job.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::sim {

/// A named workload: a job spec plus the VM type it was benchmarked on.
struct Workload {
  std::string name;
  JobSpec job;
  trace::VmType vm_type;
};

/// Molecular dynamics of ions in nanoconfinement:
/// 14 min on a 64-core cluster (4 x n1-highcpu-16).
Workload nanoconfinement();

/// MD shape optimisation of charged deformable nanoparticles:
/// 9 min on a 64-core cluster (4 x n1-highcpu-16).
Workload shapes();

/// LULESH hydrodynamics proxy benchmark: 12.5 min on 8 x n1-highcpu-8.
Workload lulesh();

/// All three, in paper order.
std::vector<Workload> all_workloads();

/// The same workload re-packed onto a different VM type with the same total
/// core count (used by the Fig. 9 experiments, which run everything on
/// n1-highcpu-32 clusters).
Workload repack_for_vm_type(const Workload& w, trace::VmType target);

}  // namespace preempt::sim
