// Transient VM instances inside the simulator.
#pragma once

#include <cstdint>

#include "trace/vm_catalog.hpp"

namespace preempt::sim {

enum class VmState {
  kProvisioning,  ///< requested, not yet usable
  kIdle,          ///< running, no job assigned
  kBusy,          ///< running a job (gang member)
  kPreempted,     ///< reclaimed by the provider
  kTerminated,    ///< shut down by the service
};

/// One (simulated) preemptible VM.
struct VmInstance {
  std::uint64_t id = 0;
  trace::VmType type = trace::VmType::kN1Highcpu16;
  VmState state = VmState::kProvisioning;
  double launch_time = 0.0;   ///< when it became usable
  double preempt_time = 0.0;  ///< absolute time the provider will reclaim it
  double stop_time = -1.0;    ///< when it stopped accruing cost (preempt/terminate)
  std::uint64_t running_job = 0;  ///< job id when busy, else 0
  double idle_since = 0.0;        ///< for hot-spare retention

  double age(double now) const { return now - launch_time; }
  bool alive() const { return state == VmState::kIdle || state == VmState::kBusy; }
  /// Hours billed: from launch to stop (or `now` if still running).
  double billed_hours(double now) const {
    const double end = stop_time >= 0.0 ? stop_time : now;
    return end > launch_time ? end - launch_time : 0.0;
  }
};

}  // namespace preempt::sim
