#include "sim/service.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace preempt::sim {

namespace {
/// VMs younger than this are considered "fresh" and always acceptable (they
/// were just provisioned, typically on this very dispatch round).
constexpr double kFreshAgeHours = 2.0 / 60.0;
/// Lifetimes drawn per sample_many refill of the batch buffer.
constexpr std::size_t kLifetimeBatch = 256;
}  // namespace

std::string to_string(ReusePolicyKind policy) {
  switch (policy) {
    case ReusePolicyKind::kModelDriven: return "model";
    case ReusePolicyKind::kMemoryless: return "memoryless";
    case ReusePolicyKind::kAlwaysFresh: return "fresh";
  }
  return "model";
}

std::optional<ReusePolicyKind> reuse_policy_from_string(const std::string& text) {
  if (text == "model") return ReusePolicyKind::kModelDriven;
  if (text == "memoryless") return ReusePolicyKind::kMemoryless;
  if (text == "fresh") return ReusePolicyKind::kAlwaysFresh;
  return std::nullopt;
}

BatchService::BatchService(ServiceConfig config, dist::DistributionPtr ground_truth,
                           dist::DistributionPtr decision_model,
                           std::unique_ptr<CheckpointPlanner> planner)
    : config_(config),
      ground_truth_(std::move(ground_truth)),
      planner_(std::move(planner)),
      rng_(config.seed) {
  PREEMPT_REQUIRE(ground_truth_ != nullptr, "ground truth distribution must not be null");
  PREEMPT_REQUIRE(decision_model != nullptr, "decision model must not be null");
  PREEMPT_REQUIRE(config_.cluster_size >= 1, "cluster needs at least one VM");
  PREEMPT_REQUIRE(config_.provision_delay_hours >= 0.0, "provision delay must be >= 0");
  PREEMPT_REQUIRE(!config_.checkpointing || planner_ != nullptr,
                  "checkpointing requires a planner");
  switch (config_.reuse_policy) {
    case ReusePolicyKind::kModelDriven:
      reuse_policy_ = std::make_unique<policy::ModelDrivenScheduler>(
          std::move(decision_model), ground_truth_->clone(), config_.reuse_rule);
      break;
    case ReusePolicyKind::kMemoryless:
      reuse_policy_ = std::make_unique<policy::MemorylessScheduler>(ground_truth_->clone());
      break;
    case ReusePolicyKind::kAlwaysFresh:
      reuse_policy_ = std::make_unique<policy::AlwaysFreshScheduler>(ground_truth_->clone());
      break;
  }
}

void BatchService::submit_bag(const BagOfJobs& bag) {
  PREEMPT_REQUIRE(bag.count >= 1, "bag must contain at least one job");
  PREEMPT_REQUIRE(bag.spec.work_hours > 0.0, "jobs must have positive work");
  PREEMPT_REQUIRE(bag.spec.gang_vms >= 1, "jobs need at least one VM");
  PREEMPT_REQUIRE(static_cast<std::size_t>(bag.spec.gang_vms) <= config_.cluster_size,
                  "job gang exceeds the cluster size");
  for (std::size_t i = 0; i < bag.count; ++i) {
    Job job;
    job.id = job_store_.size() + 1;
    job.spec = bag.spec;
    job.submit_time = sim_.now();
    job_store_.push_back(job);
    queue_.push_back(job.id);
  }
  if (first_submit_ < 0.0) first_submit_ = sim_.now();
}

ServiceReport BatchService::run() {
  PREEMPT_REQUIRE(!job_store_.empty(), "no jobs submitted");
  for (std::size_t i = 0; i < config_.cluster_size; ++i) provision_vm();
  sim_.run(config_.max_sim_hours);
  for (const Job& job : job_store_) {
    PREEMPT_CHECK(job.state == JobState::kCompleted,
                  std::string("job ") + std::to_string(job.id) + " did not complete before max_sim_hours");
  }
  return build_report();
}

void BatchService::provision_vm() {
  ++vms_launched_;
  ++provisions_in_flight_;
  const std::uint64_t vm_id = next_vm_id_++;
  sim_.schedule_in(config_.provision_delay_hours, [this, vm_id] { on_vm_ready(vm_id); });
}

void BatchService::on_vm_ready(std::uint64_t vm_id) {
  --provisions_in_flight_;
  VmInstance vm;
  vm.id = vm_id;
  vm.type = config_.vm_type;
  vm.launch_time = sim_.now();
  const double lifetime = draw_lifetime();
  vm.preempt_time = sim_.now() + lifetime;
  cluster_.register_node(vm);
  sim_.schedule_at(vm.preempt_time, [this, vm_id] { on_vm_preempted(vm_id); },
                   /*priority=*/-1);  // preemptions beat same-time completions
  // A fresh-but-unused VM still expires as a hot spare.
  const double idle_since = sim_.now();
  sim_.schedule_in(config_.hot_spare_retention_hours,
                   [this, vm_id, idle_since] { on_hot_spare_timeout(vm_id, idle_since); });
  try_dispatch();
}

double BatchService::draw_lifetime() {
  if (next_lifetime_ >= lifetime_buffer_.size()) {
    lifetime_buffer_.resize(kLifetimeBatch);
    ground_truth_->sample_many(rng_, lifetime_buffer_);
    next_lifetime_ = 0;
  }
  return lifetime_buffer_[next_lifetime_++];
}

void BatchService::on_vm_preempted(std::uint64_t vm_id) {
  if (!cluster_.has_node(vm_id)) return;
  if (!cluster_.node(vm_id).alive()) return;  // already terminated
  const std::uint64_t job_id = cluster_.mark_preempted(vm_id, sim_.now());
  ++preemptions_total_;
  if (job_id != 0) {
    ++preemptions_hitting_jobs_;
    Job& job = job_store_[job_id - 1];
    fail_running_job(job, vm_id);
  }
}

void BatchService::on_hot_spare_timeout(std::uint64_t vm_id, double idle_since) {
  if (!cluster_.has_node(vm_id)) return;
  VmInstance& vm = cluster_.node(vm_id);
  if (vm.state != VmState::kIdle) return;
  if (vm.idle_since > idle_since + 1e-12) return;  // was reused since; timer is stale
  cluster_.mark_terminated(vm_id, sim_.now());
  ++hot_spare_expirations_;
}

bool BatchService::accepts_vm(const Job& job, const VmInstance& vm) const {
  const double age = vm.age(sim_.now());
  if (age <= kFreshAgeHours) return true;  // just provisioned
  return reuse_policy_->decide(age, job.remaining_work()).reuse;
}

void BatchService::try_dispatch() {
  while (!queue_.empty()) {
    Job& job = job_store_[queue_.front() - 1];
    const auto gang_size = static_cast<std::size_t>(job.spec.gang_vms);
    std::vector<std::uint64_t> accepted;
    std::vector<std::uint64_t> rejected;
    for (std::uint64_t id : cluster_.idle_nodes()) {
      if (accepted.size() == gang_size) break;
      const VmInstance& vm = cluster_.node(id);
      if (accepts_vm(job, vm)) {
        accepted.push_back(id);
      } else {
        rejected.push_back(id);
      }
    }
    if (accepted.size() == gang_size) {
      queue_.pop_front();
      start_job(job, accepted);
      continue;
    }
    // The job is blocked. Retire the rejects (their age only grows; the
    // policy chose fresh VMs over them) and top the fleet back up to the
    // configured cluster size — never beyond it, so busy VMs are waited for
    // rather than duplicated.
    for (std::uint64_t id : rejected) {
      cluster_.mark_terminated(id, sim_.now());
      ++fresh_vm_launches_;  // a replacement launch attributable to the policy
      job.fresh_vm_launches += 1;
    }
    const std::size_t alive = cluster_.alive_count();
    const std::size_t incoming = provisions_in_flight_;
    if (alive + incoming < config_.cluster_size) {
      const std::size_t to_provision = config_.cluster_size - alive - incoming;
      for (std::size_t i = 0; i < to_provision; ++i) provision_vm();
    }
    break;  // wait for provisioning or for busy VMs to free up
  }
}

double BatchService::gang_age(const std::vector<std::uint64_t>& gang) const {
  double oldest = 0.0;
  for (std::uint64_t id : gang) {
    oldest = std::max(oldest, cluster_.node(id).age(sim_.now()));
  }
  return oldest;
}

void BatchService::start_job(Job& job, const std::vector<std::uint64_t>& gang) {
  cluster_.assign(gang, job.id);
  job.state = JobState::kRunning;
  if (job.first_start_time < 0.0) job.first_start_time = sim_.now();

  RunContext ctx;
  ctx.gang = gang;
  ctx.epoch = next_epoch_++;
  if (config_.checkpointing && job.spec.checkpointable && planner_ != nullptr) {
    ctx.segments = planner_->plan(job.remaining_work(), gang_age(gang));
  } else {
    ctx.segments = {job.remaining_work()};
  }
  PREEMPT_CHECK(!ctx.segments.empty(), "job started with an empty plan");
  running_[job.id] = std::move(ctx);
  begin_segment(job.id);
}

void BatchService::begin_segment(std::uint64_t job_id) {
  RunContext& ctx = running_.at(job_id);
  const Job& job = job_store_[job_id - 1];
  const double work = ctx.segments.front();
  const bool writes_checkpoint = ctx.segments.size() > 1;
  const double duration = work + (writes_checkpoint ? job.spec.checkpoint_cost_hours : 0.0);
  ctx.segment_started = sim_.now();
  const std::uint64_t epoch = ctx.epoch;
  sim_.schedule_in(duration, [this, job_id, epoch] { on_segment_complete(job_id, epoch); });
}

void BatchService::on_segment_complete(std::uint64_t job_id, std::uint64_t epoch) {
  auto it = running_.find(job_id);
  if (it == running_.end() || it->second.epoch != epoch) return;  // stale event
  RunContext& ctx = it->second;
  Job& job = job_store_[job_id - 1];
  const double work = ctx.segments.front();
  const bool wrote_checkpoint = ctx.segments.size() > 1;
  ctx.segments.erase(ctx.segments.begin());
  job.completed_work += work;
  if (wrote_checkpoint) job.overhead_hours += job.spec.checkpoint_cost_hours;
  if (ctx.segments.empty()) {
    complete_job(job);
  } else {
    begin_segment(job_id);
  }
}

void BatchService::fail_running_job(Job& job, std::uint64_t preempted_vm) {
  auto it = running_.find(job.id);
  PREEMPT_CHECK(it != running_.end(), "failing a job that is not running");
  RunContext& ctx = it->second;
  job.wasted_hours += sim_.now() - ctx.segment_started;
  ++job.preemptions;
  // Release surviving gang members back to the pool.
  std::vector<std::uint64_t> survivors;
  for (std::uint64_t id : ctx.gang) {
    if (id != preempted_vm) survivors.push_back(id);
  }
  cluster_.release(survivors, job.id, sim_.now());
  for (std::uint64_t id : survivors) {
    if (!cluster_.has_node(id) || cluster_.node(id).state != VmState::kIdle) continue;
    const double idle_since = sim_.now();
    sim_.schedule_in(config_.hot_spare_retention_hours,
                     [this, id, idle_since] { on_hot_spare_timeout(id, idle_since); });
  }
  running_.erase(it);
  job.state = JobState::kPending;
  queue_.push_front(job.id);
  try_dispatch();
}

void BatchService::complete_job(Job& job) {
  auto it = running_.find(job.id);
  PREEMPT_CHECK(it != running_.end(), "completing a job that is not running");
  const std::vector<std::uint64_t> gang = it->second.gang;
  running_.erase(it);
  cluster_.release(gang, job.id, sim_.now());
  for (std::uint64_t id : gang) {
    if (!cluster_.has_node(id) || cluster_.node(id).state != VmState::kIdle) continue;
    const double idle_since = sim_.now();
    sim_.schedule_in(config_.hot_spare_retention_hours,
                     [this, id, idle_since] { on_hot_spare_timeout(id, idle_since); });
  }
  job.state = JobState::kCompleted;
  job.finish_time = sim_.now();
  last_completion_ = std::max(last_completion_, job.finish_time);
  try_dispatch();
  // Bag drained: release the whole cluster immediately (the operator shuts
  // the experiment down; hot spares are only kept while work may arrive).
  if (queue_.empty() && running_.empty()) {
    for (const auto& [id, vm] : cluster_.all_nodes()) {
      if (vm.state == VmState::kIdle) cluster_.mark_terminated(id, sim_.now());
    }
  }
}

ServiceReport BatchService::build_report() const {
  ServiceReport report;
  report.jobs_completed = job_store_.size();
  report.preemptions = preemptions_hitting_jobs_;
  report.preemptions_total = preemptions_total_;
  report.vms_launched = vms_launched_;
  report.fresh_vm_launches = fresh_vm_launches_;
  report.hot_spare_expirations = hot_spare_expirations_;

  double total_gang_vm_hours = 0.0;
  double longest_job = 0.0;
  for (const Job& job : job_store_) {
    report.wasted_hours += job.wasted_hours;
    report.checkpoint_overhead_hours += job.overhead_hours;
    total_gang_vm_hours += job.spec.work_hours * job.spec.gang_vms;
    longest_job = std::max(longest_job, job.spec.work_hours);
  }
  for (const auto& [id, vm] : cluster_.all_nodes()) {
    report.total_vm_hours += vm.billed_hours(sim_.now());
  }
  report.total_cost = cost_model_.vm_cost(config_.vm_type, report.total_vm_hours, true);
  report.cost_per_job = report.total_cost / static_cast<double>(report.jobs_completed);
  report.on_demand_cost_per_job =
      cost_model_.vm_cost(config_.vm_type, total_gang_vm_hours, false) /
      static_cast<double>(report.jobs_completed);
  report.cost_reduction_factor =
      report.cost_per_job > 0.0 ? report.on_demand_cost_per_job / report.cost_per_job : 0.0;

  report.makespan_hours = last_completion_ - std::max(0.0, first_submit_);
  // Failure-free lower bound. For a homogeneous bag the cluster runs waves of
  // floor(cluster/gang) concurrent gangs; otherwise fall back to the
  // work-conservation bound.
  bool homogeneous = true;
  for (const Job& job : job_store_) {
    if (job.spec.work_hours != job_store_.front().spec.work_hours ||
        job.spec.gang_vms != job_store_.front().spec.gang_vms) {
      homogeneous = false;
      break;
    }
  }
  if (homogeneous) {
    const auto concurrent = std::max<std::size_t>(
        1, config_.cluster_size / static_cast<std::size_t>(job_store_.front().spec.gang_vms));
    const auto waves =
        (job_store_.size() + concurrent - 1) / concurrent;
    report.ideal_makespan_hours =
        static_cast<double>(waves) * job_store_.front().spec.work_hours;
  } else {
    report.ideal_makespan_hours =
        std::max(total_gang_vm_hours / static_cast<double>(config_.cluster_size), longest_job);
  }
  report.increase_fraction =
      report.ideal_makespan_hours > 0.0
          ? (report.makespan_hours - report.ideal_makespan_hours) / report.ideal_makespan_hours
          : 0.0;
  return report;
}

}  // namespace preempt::sim
