#include "sim/workloads.hpp"

#include "common/error.hpp"

namespace preempt::sim {

namespace {
Workload make(const std::string& name, double minutes, int gang, trace::VmType type) {
  Workload w;
  w.name = name;
  w.job.name = name;
  w.job.work_hours = minutes / 60.0;
  w.job.gang_vms = gang;
  w.job.checkpointable = false;  // the paper's applications lack checkpointing
  w.job.checkpoint_cost_hours = 1.0 / 60.0;
  w.vm_type = type;
  return w;
}
}  // namespace

Workload nanoconfinement() {
  return make("nanoconfinement", 14.0, 4, trace::VmType::kN1Highcpu16);
}

Workload shapes() { return make("shapes", 9.0, 4, trace::VmType::kN1Highcpu16); }

Workload lulesh() { return make("lulesh", 12.5, 8, trace::VmType::kN1Highcpu8); }

std::vector<Workload> all_workloads() { return {nanoconfinement(), shapes(), lulesh()}; }

Workload repack_for_vm_type(const Workload& w, trace::VmType target) {
  PREEMPT_REQUIRE(w.job.gang_vms >= 1, "workload gang must have at least one VM");
  const int total_cores = trace::vm_spec(w.vm_type).vcpus * w.job.gang_vms;
  const int target_cores = trace::vm_spec(target).vcpus;
  // A clean client-facing error (the scenario layer passes user-chosen
  // targets straight through): a non-dividing target would otherwise drop
  // the remainder cores and silently shrink the gang.
  if (total_cores % target_cores != 0) {
    throw InvalidArgument("cannot repack workload '" + w.name + "' (" +
                          std::to_string(total_cores) + " cores) onto " +
                          trace::vm_spec(target).name + " (" + std::to_string(target_cores) +
                          " vCPUs): core count must divide evenly");
  }
  Workload out = w;
  out.vm_type = target;
  out.job.gang_vms = total_cores / target_cores;
  return out;
}

}  // namespace preempt::sim
