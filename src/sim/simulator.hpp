// Discrete-event simulation core.
//
// A classic calendar queue: events are callbacks scheduled at absolute times;
// ties break by (priority, insertion order) so runs are fully deterministic.
// Time is measured in hours, matching the rest of the library.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace preempt::sim {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  /// Current simulation time (hours since start).
  double now() const noexcept { return now_; }

  /// Number of events executed so far.
  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Schedule `callback` at absolute time `when` (>= now). Lower `priority`
  /// runs first among same-time events. Returns an id usable with cancel().
  std::uint64_t schedule_at(double when, EventCallback callback, int priority = 0);

  /// Schedule after a delay relative to now.
  std::uint64_t schedule_in(double delay, EventCallback callback, int priority = 0);

  /// Cancel a pending event (no-op if already executed or unknown). O(1):
  /// the slot is tombstoned and its callback released immediately; the queue
  /// entry is skipped lazily when it reaches the top.
  void cancel(std::uint64_t event_id);

  /// Run until the queue is empty or `max_time` is passed. Events scheduled
  /// beyond max_time remain queued. A bounded run leaves the clock at
  /// max_time (the whole window was simulated), so a subsequent
  /// schedule_in() anchors its delay at the window end rather than at the
  /// last executed event; an unbounded run (kNoLimit) leaves it at the last
  /// executed event. Returns the number of events executed.
  std::uint64_t run(double max_time = kNoLimit);

  /// True if no runnable events remain (tombstoned entries may linger in the
  /// queue until popped, so this can briefly report false after a cancel —
  /// the same contract the hash-map scheme had).
  bool idle() const { return queue_.empty(); }

  static constexpr double kNoLimit = 1e300;

 private:
  struct Entry {
    double time;
    int priority;
    std::uint64_t sequence;  // FIFO among equal (time, priority)
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return sequence > other.sequence;
    }
  };

  // Intrusive tombstone store. Each pending event owns one slot in a
  // contiguous slab; the public id packs (generation << 32 | slot index), so
  // cancel() is a bounds check + generation compare — no hashing, no
  // per-event node churn. Slots recycle through a free list when their queue
  // entry pops (executed or tombstoned); the generation bump at recycle time
  // makes stale ids from any earlier occupant harmless no-ops.
  struct Slot {
    EventCallback callback;
    std::uint32_t generation = 0;
    bool armed = false;  ///< false = tombstone (cancelled) or free
  };

  static constexpr std::uint64_t kIndexBits = 32;
  static constexpr std::uint64_t kIndexMask = (std::uint64_t{1} << kIndexBits) - 1;

  std::uint32_t acquire_slot(EventCallback callback);
  void recycle_slot(std::uint32_t index);

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace preempt::sim
