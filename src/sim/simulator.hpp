// Discrete-event simulation core.
//
// A classic calendar queue: events are callbacks scheduled at absolute times;
// ties break by (priority, insertion order) so runs are fully deterministic.
// Time is measured in hours, matching the rest of the library.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace preempt::sim {

using EventCallback = std::function<void()>;

class Simulator {
 public:
  /// Current simulation time (hours since start).
  double now() const noexcept { return now_; }

  /// Number of events executed so far.
  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Schedule `callback` at absolute time `when` (>= now). Lower `priority`
  /// runs first among same-time events. Returns an id usable with cancel().
  std::uint64_t schedule_at(double when, EventCallback callback, int priority = 0);

  /// Schedule after a delay relative to now.
  std::uint64_t schedule_in(double delay, EventCallback callback, int priority = 0);

  /// Cancel a pending event (no-op if already executed or unknown).
  void cancel(std::uint64_t event_id);

  /// Run until the queue is empty or `max_time` is passed. Events scheduled
  /// beyond max_time remain queued. A bounded run leaves the clock at
  /// max_time (the whole window was simulated), so a subsequent
  /// schedule_in() anchors its delay at the window end rather than at the
  /// last executed event; an unbounded run (kNoLimit) leaves it at the last
  /// executed event. Returns the number of events executed.
  std::uint64_t run(double max_time = kNoLimit);

  /// True if no runnable events remain.
  bool idle() const { return queue_.empty(); }

  static constexpr double kNoLimit = 1e300;

 private:
  struct Entry {
    double time;
    int priority;
    std::uint64_t sequence;  // FIFO among equal (time, priority)
    std::uint64_t id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return sequence > other.sequence;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // id -> callback; erased on execution/cancellation. A hash map keeps
  // cancel() and the per-event lookup in run() O(1) — with the previous
  // linear scan a run over n pending events cost O(n²).
  std::unordered_map<std::uint64_t, EventCallback> callbacks_;
};

}  // namespace preempt::sim
