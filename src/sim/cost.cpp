#include "sim/cost.hpp"

#include "common/error.hpp"

namespace preempt::sim {

double CostModel::vm_cost(trace::VmType type, double hours, bool preemptible) const {
  PREEMPT_REQUIRE(hours >= 0.0, "billed hours must be non-negative");
  const trace::VmSpec& spec = trace::vm_spec(type);
  return hours * (preemptible ? spec.preemptible_per_hour : spec.on_demand_per_hour);
}

double CostModel::discount_factor(trace::VmType type) const {
  const trace::VmSpec& spec = trace::vm_spec(type);
  return spec.on_demand_per_hour / spec.preemptible_per_hour;
}

}  // namespace preempt::sim
