#include "sim/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace preempt::sim {

void ClusterManager::register_node(VmInstance vm) {
  PREEMPT_CHECK(nodes_.find(vm.id) == nodes_.end(), "duplicate VM id registered");
  vm.state = VmState::kIdle;
  vm.idle_since = vm.launch_time;
  nodes_.emplace(vm.id, vm);
}

VmInstance& ClusterManager::node(std::uint64_t vm_id) {
  auto it = nodes_.find(vm_id);
  if (it == nodes_.end()) throw SimError(std::string("unknown VM id ") + std::to_string(vm_id));
  return it->second;
}

const VmInstance& ClusterManager::node(std::uint64_t vm_id) const {
  auto it = nodes_.find(vm_id);
  if (it == nodes_.end()) throw SimError(std::string("unknown VM id ") + std::to_string(vm_id));
  return it->second;
}

bool ClusterManager::has_node(std::uint64_t vm_id) const {
  return nodes_.find(vm_id) != nodes_.end();
}

std::vector<std::uint64_t> ClusterManager::idle_nodes() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, vm] : nodes_) {
    if (vm.state == VmState::kIdle) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](std::uint64_t a, std::uint64_t b) {
    const double ta = nodes_.at(a).launch_time;
    const double tb = nodes_.at(b).launch_time;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  return ids;
}

std::size_t ClusterManager::alive_count() const {
  std::size_t n = 0;
  for (const auto& [id, vm] : nodes_) {
    if (vm.alive()) ++n;
  }
  return n;
}

std::size_t ClusterManager::busy_count() const {
  std::size_t n = 0;
  for (const auto& [id, vm] : nodes_) {
    if (vm.state == VmState::kBusy) ++n;
  }
  return n;
}

void ClusterManager::assign(const std::vector<std::uint64_t>& vm_ids, std::uint64_t job_id) {
  for (std::uint64_t id : vm_ids) {
    VmInstance& vm = node(id);
    PREEMPT_CHECK(vm.state == VmState::kIdle, "assigning a non-idle VM");
    vm.state = VmState::kBusy;
    vm.running_job = job_id;
  }
}

void ClusterManager::release(const std::vector<std::uint64_t>& vm_ids, double now) {
  for (std::uint64_t id : vm_ids) {
    VmInstance& vm = node(id);  // unknown ids throw: a made-up gang is a bug
    if (vm.state != VmState::kBusy) continue;
    vm.state = VmState::kIdle;
    vm.running_job = 0;
    vm.idle_since = now;
  }
}

void ClusterManager::release(const std::vector<std::uint64_t>& vm_ids, std::uint64_t job_id,
                             double now) {
  for (std::uint64_t id : vm_ids) {
    const VmInstance& vm = node(id);
    if (vm.state == VmState::kBusy && vm.running_job != job_id) {
      throw SimError("releasing VM " + std::to_string(id) + " for job " +
                     std::to_string(job_id) + " but it is running job " +
                     std::to_string(vm.running_job));
    }
  }
  release(vm_ids, now);
}

std::uint64_t ClusterManager::mark_preempted(std::uint64_t vm_id, double now) {
  VmInstance& vm = node(vm_id);
  PREEMPT_CHECK(vm.alive(), "preempting a VM that is not running");
  const std::uint64_t job = vm.running_job;
  vm.state = VmState::kPreempted;
  vm.running_job = 0;
  vm.stop_time = now;
  return job;
}

void ClusterManager::mark_terminated(std::uint64_t vm_id, double now) {
  VmInstance& vm = node(vm_id);
  PREEMPT_CHECK(vm.state == VmState::kIdle, "terminating a VM that is not idle");
  vm.state = VmState::kTerminated;
  vm.stop_time = now;
}

}  // namespace preempt::sim
