// Checkpoint planners used by the batch service.
//
// A planner maps (remaining work, current VM age) to a list of work segments;
// the service writes a checkpoint after every segment except the last. The
// DP planner wraps policy::CheckpointDp (precomputed once per bag, as the
// paper's service does); Young-Daly is the memoryless baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "policy/checkpoint.hpp"

namespace preempt::sim {

class CheckpointPlanner {
 public:
  virtual ~CheckpointPlanner() = default;
  virtual std::string name() const = 0;
  /// Segment lengths (hours) for `work_hours` of remaining work on a VM of
  /// age `vm_age_hours`; must sum to work_hours.
  virtual std::vector<double> plan(double work_hours, double vm_age_hours) const = 0;
};

/// No checkpoints: a single segment (restart from scratch on failure).
class NoCheckpointPlanner final : public CheckpointPlanner {
 public:
  std::string name() const override { return "none"; }
  std::vector<double> plan(double work_hours, double vm_age_hours) const override;
};

/// Periodic Young-Daly intervals, age-independent.
class YoungDalyPlanner final : public CheckpointPlanner {
 public:
  YoungDalyPlanner(double mttf_hours, double delta_hours);
  std::string name() const override { return "young-daly"; }
  std::vector<double> plan(double work_hours, double vm_age_hours) const override;

 private:
  double mttf_hours_;
  double delta_hours_;
};

/// Model-driven DP schedule (paper Sec. 4.3), backed by a shared precomputed
/// value table covering jobs up to the table's job length.
class DpCheckpointPlanner final : public CheckpointPlanner {
 public:
  explicit DpCheckpointPlanner(std::shared_ptr<const policy::CheckpointDp> dp);
  std::string name() const override { return "model-dp"; }
  std::vector<double> plan(double work_hours, double vm_age_hours) const override;

 private:
  std::shared_ptr<const policy::CheckpointDp> dp_;
};

}  // namespace preempt::sim
