#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace preempt::sim {

namespace {

// Public ids are biased by +1 so 0 is never a valid id (the hash-map scheme
// also started at 1, and callers may use 0 as an "unset" sentinel).
constexpr std::uint64_t pack_id(std::uint32_t generation, std::uint32_t index) {
  return ((static_cast<std::uint64_t>(generation) << 32) | index) + 1;
}

}  // namespace

std::uint32_t Simulator::acquire_slot(EventCallback callback) {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    Slot& slot = slots_[index];
    slot.callback = std::move(callback);
    slot.armed = true;
    return index;
  }
  PREEMPT_CHECK(slots_.size() < kIndexMask, "too many pending events");
  slots_.push_back(Slot{std::move(callback), 0, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::recycle_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.armed = false;
  slot.callback = nullptr;
  ++slot.generation;  // stale ids of any earlier occupant stop matching
  free_slots_.push_back(index);
}

std::uint64_t Simulator::schedule_at(double when, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(when >= now_ - 1e-12, "cannot schedule events in the past");
  PREEMPT_REQUIRE(callback != nullptr, "event callback must not be null");
  const std::uint32_t index = acquire_slot(std::move(callback));
  const std::uint64_t id = pack_id(slots_[index].generation, index);
  queue_.push(Entry{std::max(when, now_), priority, next_sequence_++, id});
  return id;
}

std::uint64_t Simulator::schedule_in(double delay, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(callback), priority);
}

void Simulator::cancel(std::uint64_t event_id) {
  if (event_id == 0) return;
  const std::uint64_t packed = event_id - 1;
  const auto index = static_cast<std::uint32_t>(packed & kIndexMask);
  const auto generation = static_cast<std::uint32_t>(packed >> 32);
  if (index >= slots_.size()) return;
  Slot& slot = slots_[index];
  if (slot.generation != generation || !slot.armed) return;  // executed/unknown/stale
  // Tombstone: release the callback now (it may pin resources); the queue
  // entry is skipped and the slot recycled when it reaches the top.
  slot.armed = false;
  slot.callback = nullptr;
}

std::uint64_t Simulator::run(double max_time) {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (top.time > max_time) break;
    queue_.pop();
    const auto index = static_cast<std::uint32_t>((top.id - 1) & kIndexMask);
    Slot& slot = slots_[index];
    if (!slot.armed) {  // tombstoned by cancel(); reclaim the slot
      recycle_slot(index);
      continue;
    }
    EventCallback callback = std::move(slot.callback);
    recycle_slot(index);
    PREEMPT_CHECK(top.time >= now_ - 1e-12, "event queue went backwards in time");
    now_ = std::max(now_, top.time);
    callback();
    ++count;
    ++executed_;
  }
  // A bounded run simulated the whole window up to max_time even when no
  // event fired at its end (whether later events remain queued or the queue
  // drained early). Advance the clock so relative scheduling after run()
  // anchors at the window end, not in the past. The kNoLimit sentinel means
  // "run to drain": there the clock stays at the last executed event.
  if (max_time != kNoLimit) now_ = std::max(now_, max_time);
  return count;
}

}  // namespace preempt::sim
