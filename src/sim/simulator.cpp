#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace preempt::sim {

std::uint64_t Simulator::schedule_at(double when, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(when >= now_ - 1e-12, "cannot schedule events in the past");
  PREEMPT_REQUIRE(callback != nullptr, "event callback must not be null");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{std::max(when, now_), priority, next_sequence_++, id});
  callbacks_.emplace_back(id, std::move(callback));
  return id;
}

std::uint64_t Simulator::schedule_in(double delay, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(callback), priority);
}

EventCallback* Simulator::find_callback(std::uint64_t id) {
  for (auto& [cb_id, cb] : callbacks_) {
    if (cb_id == id) return &cb;
  }
  return nullptr;
}

void Simulator::cancel(std::uint64_t event_id) {
  // Lazy cancellation: drop the callback; the queue entry is skipped later.
  callbacks_.erase(std::remove_if(callbacks_.begin(), callbacks_.end(),
                                  [event_id](const auto& p) { return p.first == event_id; }),
                   callbacks_.end());
}

std::uint64_t Simulator::run(double max_time) {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (top.time > max_time) break;
    queue_.pop();
    EventCallback* cb = find_callback(top.id);
    if (cb == nullptr) continue;  // cancelled
    EventCallback callback = std::move(*cb);
    cancel(top.id);
    PREEMPT_CHECK(top.time >= now_ - 1e-12, "event queue went backwards in time");
    now_ = std::max(now_, top.time);
    callback();
    ++count;
    ++executed_;
  }
  return count;
}

}  // namespace preempt::sim
