#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace preempt::sim {

std::uint64_t Simulator::schedule_at(double when, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(when >= now_ - 1e-12, "cannot schedule events in the past");
  PREEMPT_REQUIRE(callback != nullptr, "event callback must not be null");
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{std::max(when, now_), priority, next_sequence_++, id});
  callbacks_.emplace(id, std::move(callback));
  return id;
}

std::uint64_t Simulator::schedule_in(double delay, EventCallback callback, int priority) {
  PREEMPT_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(callback), priority);
}

void Simulator::cancel(std::uint64_t event_id) {
  // Lazy cancellation: drop the callback; the queue entry is skipped later.
  callbacks_.erase(event_id);
}

std::uint64_t Simulator::run(double max_time) {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (top.time > max_time) break;
    queue_.pop();
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // cancelled
    EventCallback callback = std::move(it->second);
    callbacks_.erase(it);
    PREEMPT_CHECK(top.time >= now_ - 1e-12, "event queue went backwards in time");
    now_ = std::max(now_, top.time);
    callback();
    ++count;
    ++executed_;
  }
  // A bounded run simulated the whole window up to max_time even when no
  // event fired at its end (whether later events remain queued or the queue
  // drained early). Advance the clock so relative scheduling after run()
  // anchors at the window end, not in the past. The kNoLimit sentinel means
  // "run to drain": there the clock stays at the last executed event.
  if (max_time != kNoLimit) now_ = std::max(now_, max_time);
  return count;
}

}  // namespace preempt::sim
