// Cloud cost accounting (preemptible vs on-demand pricing).
#pragma once

#include "trace/vm_catalog.hpp"

namespace preempt::sim {

/// Price book backed by the trace catalog's 2019 GCP rates.
class CostModel {
 public:
  /// $ for `hours` of one VM of `type`.
  double vm_cost(trace::VmType type, double hours, bool preemptible) const;

  /// Preemptible discount factor (on-demand / preemptible price).
  double discount_factor(trace::VmType type) const;
};

}  // namespace preempt::sim
