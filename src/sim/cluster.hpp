// Slurm-like cluster manager: node registry plus gang allocation.
//
// The batch service treats each VM as a cluster "node" (the paper registers
// VMs as Slurm cloud nodes). The manager tracks node state and hands out
// gangs of idle nodes; it knows nothing about policies or costs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/vm.hpp"

namespace preempt::sim {

class ClusterManager {
 public:
  /// Register a newly usable VM (state becomes kIdle).
  void register_node(VmInstance vm);

  /// Node lookup (throws SimError for unknown ids).
  VmInstance& node(std::uint64_t vm_id);
  const VmInstance& node(std::uint64_t vm_id) const;
  bool has_node(std::uint64_t vm_id) const;

  /// All ids currently idle, oldest launch first.
  std::vector<std::uint64_t> idle_nodes() const;

  /// Count by liveness.
  std::size_t alive_count() const;
  std::size_t busy_count() const;

  /// Mark a gang of idle nodes busy on a job. All must be idle.
  void assign(const std::vector<std::uint64_t>& vm_ids, std::uint64_t job_id);

  /// Return a gang to the idle pool (e.g. after job completion/failure).
  /// Nodes that are no longer alive are skipped (a member may have been
  /// preempted in the same instant); unknown ids throw SimError.
  void release(const std::vector<std::uint64_t>& vm_ids, double now);

  /// Job-checked release: like release(), but every still-busy member must
  /// actually be running `job_id` — releasing somebody else's gang is a
  /// simulator bug and throws SimError instead of silently idling the node.
  void release(const std::vector<std::uint64_t>& vm_ids, std::uint64_t job_id, double now);

  /// Provider reclaimed the VM; returns the job that was running (0 if idle).
  std::uint64_t mark_preempted(std::uint64_t vm_id, double now);

  /// Service shut the VM down (hot-spare expiry or policy retirement).
  void mark_terminated(std::uint64_t vm_id, double now);

  /// Every node ever registered (for cost accounting).
  const std::map<std::uint64_t, VmInstance>& all_nodes() const noexcept { return nodes_; }

 private:
  std::map<std::uint64_t, VmInstance> nodes_;
};

}  // namespace preempt::sim
