// The batch-service controller's HTTP API (paper Sec. 5: "The controller ...
// exposes an HTTP API to end-users. Users submit jobs to the controller via
// the HTTP API").
//
// The surface is versioned under /v1 and served by a pattern router
// (src/api/router.hpp) with request-id + access-log middleware, per-route
// latency/count metrics, and the standardized error envelope
// {"error":{"code","message"}} on every non-2xx response.
//
//   GET  /healthz                        liveness probe
//   GET  /v1/models?type=&zone=&period=&workload=
//                                        fitted bathtub parameters for a regime
//   GET  /v1/lifetimes?type=&zone=       Eq. 3 expected lifetime for a regime
//   GET  /v1/decisions/reuse?age=&job=&type=&zone=
//                                        one Sec. 4.2 VM-reuse decision
//   POST /v1/bags                        submit a bag of jobs; returns 202 plus
//                                        an async job resource {"id","status"}.
//                                        Body {"app","jobs","vms","policy",
//                                        "seed","replications"}; replications>1
//                                        fans the bag over the src/mc engine
//                                        and reports std_error/ci95 per metric
//   GET  /v1/bags?status=&limit=&offset= paginated job listing
//   GET  /v1/bags/{id}                   one job resource (report when done)
//   POST /v1/observations                feed observed lifetimes to the drift
//                                        monitors {"type","zone","lifetimes":[..]}
//   GET/POST /v1/portfolio               allocate a bag across the spot-market
//                                        grid; query or JSON body
//                                        {"jobs","job_hours","risk","lambda"}
//   GET  /v1/scenarios                   named declarative scenarios (src/scenario)
//   GET  /v1/scenarios/{name}            one scenario's spec + sweep axes
//   POST /v1/scenarios/{name}/run        run a scenario (or its whole sweep) on
//                                        the async job queue; body fields are
//                                        spec overrides ({"seed","jobs",...});
//                                        poll the returned /v1/bags/{id} resource
//   POST /v1/scenarios/run               shard dispatch (src/shard coordinator):
//                                        body {"cells":[<scenario spec>...],
//                                        "label":"..."} runs each cell in order
//                                        on the async queue; the done job's
//                                        result is {"cells":[{"name","spec",
//                                        "result"}...]} — a sweep-report slice
//   GET  /v1/metrics                     per-route request counts and latency
//                                        (?format=prometheus for text exposition)
//
// Deprecated aliases (byte-compatible success payloads, kept for pre-/v1
// clients; responses carry an `x-deprecated` header pointing at the
// replacement): GET /api/model, GET /api/lifetime, GET /api/decisions/reuse,
// POST /api/bags (synchronous by contract: runs the bag inline on the
// connection worker and answers 201 with the legacy report), GET /api/bags,
// GET /api/bags/{id}, POST /api/lifetimes.
//
// The daemon owns one ModelRegistry bootstrapped from a synthetic study
// (standing in for the paper's Sec. 3.1 campaign) plus per-regime drift
// monitors. Bag simulations run on the BagJobQueue worker pool — the HTTP
// request path never executes the DES inline, and the daemon mutex guards
// only registry/drift state, never a running simulation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>

#include "api/bag_jobs.hpp"
#include "api/http.hpp"
#include "api/http_server.hpp"
#include "api/router.hpp"
#include "common/json.hpp"
#include "core/cusum.hpp"
#include "core/drift.hpp"
#include "core/registry.hpp"
#include "portfolio/market.hpp"
#include "sim/service.hpp"

namespace preempt::api {

class ServiceDaemon {
 public:
  struct Options {
    std::uint64_t bootstrap_seed = 2019;  ///< seed of the synthetic Sec. 3.1 study
    std::size_t bootstrap_vms_per_cell = 44;
    double horizon_hours = 24.0;
    std::size_t bag_workers = 2;   ///< BagJobQueue simulation workers
    std::size_t http_workers = 4;  ///< HttpServer connection workers
    /// Finished bag/scenario jobs retained by the store (FIFO eviction
    /// beyond this; evicted ids answer 404 with an eviction message).
    std::size_t max_finished_jobs = 1024;
    /// When non-empty, persist the bag-job store to this JSONL journal
    /// (replayed on construction — see api/job_store.hpp).
    std::string store_path;
  };

  explicit ServiceDaemon(Options options);
  ServiceDaemon() : ServiceDaemon(Options{}) {}
  ~ServiceDaemon();

  /// Route one request (thread-safe); usable directly in tests without a
  /// socket in the loop.
  HttpResponse handle(const HttpRequest& request) { return router_.dispatch(request); }

  /// Serve over HTTP on loopback; port 0 picks an ephemeral port.
  void start(std::uint16_t port = 0);
  std::uint16_t port() const noexcept { return server_.port(); }
  void stop();

  /// Bags that finished successfully (async jobs in status "done").
  std::size_t bags_completed() const;
  /// Block until bag job `id` is done/failed; false on timeout/unknown id.
  bool wait_for_bag(std::uint64_t id, double timeout_seconds) const;

  const Router& router() const noexcept { return router_; }

 private:
  struct DriftMonitors {
    core::DriftDetector ks;
    core::CusumDetector cusum;
  };

  void build_routes();
  /// Which bag-spec fields a submission body may carry: the legacy /api/bags
  /// contract ignores "replications" (it ignored all unknown fields).
  enum class BagField { kWithReplications, kLegacy };
  /// Parse + validate a bag submission body; throws InvalidArgument.
  BagJobSpec parse_bag_spec(const JsonValue& body,
                            BagField fields = BagField::kWithReplications) const;
  /// Run one bag job (BagJobQueue executor). Legacy bag specs and scenario
  /// submissions both execute through the scenario layer (src/scenario);
  /// replications > 1 fan out over src/mc either way.
  void execute_bag(BagJobRecord& record);
  /// Run a POST /v1/scenarios/{name}/run submission (single cell or sweep).
  void execute_scenario(BagJobRecord& record);

  HttpResponse get_model(RouteContext& ctx);
  HttpResponse get_lifetime(RouteContext& ctx);
  HttpResponse get_reuse_decision(RouteContext& ctx);
  HttpResponse post_bag_async(RouteContext& ctx);
  HttpResponse post_bag_legacy(RouteContext& ctx);
  HttpResponse list_bags_v1(RouteContext& ctx) const;
  HttpResponse list_bags_legacy(RouteContext& ctx) const;
  HttpResponse get_bag_v1(RouteContext& ctx) const;
  HttpResponse get_bag_legacy(RouteContext& ctx) const;
  HttpResponse post_observations(RouteContext& ctx);
  HttpResponse portfolio_allocation(RouteContext& ctx);
  HttpResponse list_scenarios(RouteContext& ctx) const;
  HttpResponse get_scenario(RouteContext& ctx) const;
  HttpResponse run_scenario(RouteContext& ctx);
  /// POST /v1/scenarios/run — shard dispatch: an explicit cell list
  /// ({"cells":[<spec>...], "label":...}) queued as one async job.
  HttpResponse run_cells(RouteContext& ctx);
  HttpResponse get_metrics(RouteContext& ctx) const;

  /// Regime from query parameters / JSON body fields (missing -> defaults).
  static trace::RegimeKey parse_regime(const HttpRequest& request, const JsonValue* body);
  ServiceDaemon(Options options, trace::Dataset bootstrap);
  DriftMonitors& monitors_for(const trace::RegimeKey& key) PREEMPT_REQUIRES(mutex_);
  JsonValue job_resource_json(const BagJobRecord& record) const;

  Options options_;
  mutable Mutex mutex_{"daemon.registry"};  ///< guards registry_ lookups and drift_
  core::ModelRegistry registry_ PREEMPT_GUARDED_BY(mutex_);
  /// Spot-market grid over the bootstrap observations; market fits are
  /// lazy (internally synchronized), so untouched markets cost nothing
  /// until /v1/portfolio is hit.
  portfolio::MarketCatalog market_catalog_;
  /// Keyed by regime string.
  std::map<std::string, DriftMonitors> drift_ PREEMPT_GUARDED_BY(mutex_);
  std::unique_ptr<BagJobQueue> bag_jobs_;
  Router router_;
  HttpServer server_;
};

}  // namespace preempt::api
