// The batch-service controller's HTTP API (paper Sec. 5: "The controller ...
// exposes an HTTP API to end-users. Users submit jobs to the controller via
// the HTTP API").
//
// Endpoints (all JSON):
//   GET  /healthz                      liveness probe
//   GET  /api/model?type=&zone=&period=&workload=
//                                      fitted bathtub parameters for a regime
//   GET  /api/lifetime?type=&zone=     Eq. 3 expected lifetime for a regime
//   GET  /api/decisions/reuse?age=&job=&type=&zone=
//                                      one Sec. 4.2 VM-reuse decision
//   POST /api/bags                     submit a bag of jobs; runs the batch
//                                      service simulation and returns the
//                                      report   {"app","jobs","vms","policy",
//                                      "seed","checkpointing"}
//   GET  /api/bags                     all completed bag reports (summaries)
//   GET  /api/bags/<id>                one full report
//   POST /api/lifetimes                feed observed lifetimes to the drift
//                                      monitors {"type","zone","lifetimes":[..]}
//   GET/POST /v1/portfolio             allocate a bag across the spot-market
//                                      grid; query or JSON body
//                                      {"jobs","job_hours","risk","lambda"}
//
// The daemon owns one ModelRegistry bootstrapped from a synthetic study
// (standing in for the paper's Sec. 3.1 campaign) plus per-regime drift
// monitors. Handlers are synchronous: a POST /api/bags call runs the DES to
// completion before responding — bags simulate in milliseconds.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "api/http.hpp"
#include "api/http_server.hpp"
#include "common/json.hpp"
#include "core/cusum.hpp"
#include "core/drift.hpp"
#include "core/registry.hpp"
#include "portfolio/market.hpp"
#include "sim/service.hpp"

namespace preempt::api {

class ServiceDaemon {
 public:
  struct Options {
    std::uint64_t bootstrap_seed = 2019;  ///< seed of the synthetic Sec. 3.1 study
    std::size_t bootstrap_vms_per_cell = 44;
    double horizon_hours = 24.0;
  };

  explicit ServiceDaemon(Options options);
  ServiceDaemon() : ServiceDaemon(Options{}) {}

  /// Route one request (thread-safe); usable directly in tests without a
  /// socket in the loop.
  HttpResponse handle(const HttpRequest& request);

  /// Serve over HTTP on loopback; port 0 picks an ephemeral port.
  void start(std::uint16_t port = 0);
  std::uint16_t port() const noexcept { return server_.port(); }
  void stop();

  std::size_t bags_completed() const;

 private:
  struct DriftMonitors {
    core::DriftDetector ks;
    core::CusumDetector cusum;
  };

  HttpResponse get_model(const HttpRequest& request);
  HttpResponse get_lifetime(const HttpRequest& request);
  HttpResponse get_reuse_decision(const HttpRequest& request);
  HttpResponse post_bag(const HttpRequest& request);
  HttpResponse get_bags() const;
  HttpResponse get_bag(std::uint64_t id) const;
  HttpResponse post_lifetimes(const HttpRequest& request);
  HttpResponse portfolio_allocation(const HttpRequest& request);

  /// Regime from query parameters / JSON body fields (missing -> defaults).
  static trace::RegimeKey parse_regime(const HttpRequest& request, const JsonValue* body);
  ServiceDaemon(Options options, trace::Dataset bootstrap);
  DriftMonitors& monitors_for(const trace::RegimeKey& key);

  Options options_;
  mutable std::mutex mutex_;
  core::ModelRegistry registry_;
  /// Spot-market grid over the bootstrap observations; market fits are
  /// lazy, so untouched markets cost nothing until /v1/portfolio is hit.
  portfolio::MarketCatalog market_catalog_;
  std::map<std::string, DriftMonitors> drift_;  ///< keyed by regime string
  struct BagRecord {
    std::uint64_t id;
    std::string app;
    sim::ServiceReport report;
  };
  std::vector<BagRecord> bags_;
  std::uint64_t next_bag_id_ = 1;
  HttpServer server_;
};

}  // namespace preempt::api
