// Minimal HTTP/1.1 message types and wire parsing for the service API.
//
// Scope: exactly what the batch-service controller needs — request line +
// headers + Content-Length bodies, no chunked encoding, no TLS, loopback
// only. The parser is incremental so the server can feed it straight from
// recv() buffers.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace preempt::api {

struct HttpRequest {
  std::string method;   ///< GET, POST, ...
  std::string target;   ///< raw request target, e.g. /api/bags?limit=5
  std::string version;  ///< HTTP/1.1
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;

  /// Target path without the query string.
  std::string path() const;
  /// Decoded query parameter, or nullopt.
  std::optional<std::string> query(const std::string& key) const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::map<std::string, std::string> headers;
  std::string body;

  /// Serialise with Content-Length framing. `keep_alive` picks the
  /// Connection header (the body is always delimited by Content-Length, so a
  /// kept-alive peer knows exactly where the next response starts).
  std::string serialize(bool keep_alive) const;
  std::string serialize() const { return serialize(false); }

  static HttpResponse json(int status, const std::string& body);
  static HttpResponse text(int status, const std::string& body);
  static HttpResponse not_found();
  static HttpResponse bad_request(const std::string& why);
  static HttpResponse method_not_allowed();
};

/// Build the standardized `{"error":{"code","message"}}` envelope response.
/// Lives at the http layer so both the router and the raw server's own
/// exception fallback produce the identical shape.
HttpResponse error_envelope(int status, const std::string& code, const std::string& message);

/// Incremental request parser: feed() bytes until complete() or error().
class HttpRequestParser {
 public:
  /// Append received bytes; returns false on a malformed request (error()
  /// carries the reason).
  bool feed(const char* data, std::size_t size);

  bool complete() const noexcept { return state_ == State::kDone; }
  bool failed() const noexcept { return state_ == State::kError; }
  const std::string& error() const noexcept { return error_; }
  /// True when the request was rejected for size, not shape: the declared
  /// Content-Length exceeded max_body (or overflowed). Servers answer 413
  /// for this instead of the generic 400.
  bool body_too_large() const noexcept { return too_large_; }
  /// Valid once complete().
  const HttpRequest& request() const noexcept { return request_; }
  /// Bytes fed beyond the completed request (the start of a pipelined or
  /// kept-alive follow-up request). Valid once complete().
  const std::string& remainder() const noexcept { return buffer_; }
  /// True until the first byte is fed — lets a keep-alive server tell a
  /// clean idle close apart from a truncated request.
  bool empty() const noexcept { return !fed_any_; }

  /// Tighten the body cap below kMaxBody (server request-size limit).
  void set_max_body(std::size_t bytes) noexcept { max_body_ = bytes; }

  /// Total body bytes the parser will ever accept (guard against abuse).
  static constexpr std::size_t kMaxBody = 16 * 1024 * 1024;
  static constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

 private:
  bool parse_head();

  enum class State { kHead, kBody, kDone, kError };
  State state_ = State::kHead;
  std::string buffer_;
  std::size_t body_expected_ = 0;
  std::size_t max_body_ = kMaxBody;
  bool too_large_ = false;
  bool fed_any_ = false;
  HttpRequest request_;
  std::string error_;
};

/// Percent-decode a URL component (+ is NOT treated as space).
std::string url_decode(const std::string& s);

}  // namespace preempt::api
