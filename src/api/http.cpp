#include "api/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

#include "common/json.hpp"
#include "common/string_util.hpp"

namespace preempt::api {

HttpResponse error_envelope(int status, const std::string& code, const std::string& message) {
  // Through the JSON serializer, not hand-rolled escaping: messages carry
  // exception text with arbitrary characters.
  JsonObject envelope;
  envelope.emplace_back("code", code);
  envelope.emplace_back("message", message);
  JsonObject body;
  body.emplace_back("error", JsonValue(std::move(envelope)));
  return HttpResponse::json(status, JsonValue(std::move(body)).dump());
}

std::string HttpRequest::path() const {
  const auto q = target.find('?');
  return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string> HttpRequest::query(const std::string& key) const {
  const auto q = target.find('?');
  if (q == std::string::npos) return std::nullopt;
  std::size_t pos = q + 1;
  while (pos < target.size()) {
    std::size_t amp = target.find('&', pos);
    if (amp == std::string::npos) amp = target.size();
    const std::string pair = target.substr(pos, amp - pos);
    const auto eq = pair.find('=');
    const std::string k = url_decode(eq == std::string::npos ? pair : pair.substr(0, eq));
    if (k == key) {
      return url_decode(eq == std::string::npos ? "" : pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return std::nullopt;
}

std::string HttpResponse::serialize(bool keep_alive) const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& [k, v] : headers) out += k + ": " + v + "\r\n";
  out += "content-length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "connection: keep-alive\r\n\r\n" : "connection: close\r\n\r\n";
  out += body;
  return out;
}

namespace {

std::string reason_for(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

HttpResponse HttpResponse::json(int status, const std::string& body) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_for(status);
  r.headers["content-type"] = "application/json";
  r.body = body;
  return r;
}

HttpResponse HttpResponse::text(int status, const std::string& body) {
  HttpResponse r;
  r.status = status;
  r.reason = reason_for(status);
  r.headers["content-type"] = "text/plain";
  r.body = body;
  return r;
}

HttpResponse HttpResponse::not_found() {
  return json(404, R"({"error":"not found"})");
}

HttpResponse HttpResponse::bad_request(const std::string& why) {
  return json(400, "{\"error\":\"" + why + "\"}");
}

HttpResponse HttpResponse::method_not_allowed() {
  return json(405, R"({"error":"method not allowed"})");
}

bool HttpRequestParser::feed(const char* data, std::size_t size) {
  if (state_ == State::kError) return false;
  if (size > 0) fed_any_ = true;
  buffer_.append(data, size);

  if (state_ == State::kHead) {
    const auto head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > kMaxHeaderBytes) {
        state_ = State::kError;
        error_ = "header section too large";
        return false;
      }
      return true;  // need more bytes
    }
    if (!parse_head()) return false;
    buffer_.erase(0, head_end + 4);
    state_ = State::kBody;
  }

  if (state_ == State::kBody) {
    if (buffer_.size() >= body_expected_) {
      request_.body = buffer_.substr(0, body_expected_);
      // Keep what follows the body: under keep-alive that's the start of the
      // next (pipelined) request, surfaced through remainder().
      buffer_.erase(0, body_expected_);
      state_ = State::kDone;
    }
  }
  return true;
}

bool HttpRequestParser::parse_head() {
  const auto head_end = buffer_.find("\r\n\r\n");
  const std::string head = buffer_.substr(0, head_end);

  // Request line.
  const auto line_end = head.find("\r\n");
  const std::string request_line = head.substr(0, line_end);
  const auto sp1 = request_line.find(' ');
  const auto sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    state_ = State::kError;
    error_ = "malformed request line";
    return false;
  }
  request_.method = request_line.substr(0, sp1);
  request_.target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  request_.version = request_line.substr(sp2 + 1);
  if (request_.version.rfind("HTTP/", 0) != 0 || request_.target.empty() ||
      request_.method.empty()) {
    state_ = State::kError;
    error_ = "malformed request line";
    return false;
  }

  // Headers.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      state_ = State::kError;
      error_ = "malformed header line";
      return false;
    }
    request_.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    pos = eol + 2;
  }

  // Body length. Digits only (no sign, no trailing junk); a syntactically
  // valid length over the cap is a size rejection (413), not a parse error.
  body_expected_ = 0;
  if (const auto it = request_.headers.find("content-length"); it != request_.headers.end()) {
    const std::string& text = it->second;
    const bool digits = !text.empty() && text.size() <= 20 &&
                        std::all_of(text.begin(), text.end(),
                                    [](unsigned char c) { return std::isdigit(c) != 0; });
    if (!digits) {
      state_ = State::kError;
      error_ = "bad content-length";
      return false;
    }
    unsigned long long n = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), n);
    const std::size_t cap = std::min(max_body_, kMaxBody);
    if (ec != std::errc{} || ptr != text.data() + text.size() || n > cap) {
      state_ = State::kError;
      too_large_ = ec == std::errc::result_out_of_range || (ec == std::errc{} && n > cap);
      error_ = too_large_ ? "request body exceeds the " + std::to_string(cap) + "-byte limit"
                          : "bad content-length";
      return false;
    }
    body_expected_ = static_cast<std::size_t>(n);
  }
  if (request_.headers.count("transfer-encoding") != 0) {
    state_ = State::kError;
    error_ = "chunked encoding not supported";
    return false;
  }
  return true;
}

std::string url_decode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
        std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      const auto hex = [](char c) -> unsigned {
        if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
        if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
        return static_cast<unsigned>(c - 'A' + 10);
      };
      out += static_cast<char>((hex(s[i + 1]) << 4) | hex(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace preempt::api
