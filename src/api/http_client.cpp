#include "api/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt::api {

namespace {

/// Parse a full HTTP response (status line, headers, Content-Length body).
HttpResponse parse_response(const std::string& wire) {
  HttpResponse response;
  const auto head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) throw IoError("truncated HTTP response");
  const std::string head = wire.substr(0, head_end);

  const auto line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  const auto sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) throw IoError("malformed status line");
  const auto sp2 = status_line.find(' ', sp1 + 1);
  try {
    response.status = std::stoi(status_line.substr(sp1 + 1, sp2 - sp1 - 1));
  } catch (const std::exception&) {
    throw IoError("malformed status code");
  }
  if (sp2 != std::string::npos) response.reason = status_line.substr(sp2 + 1);

  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    if (const auto colon = line.find(':'); colon != std::string::npos) {
      response.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    }
    pos = eol + 2;
  }
  response.body = wire.substr(head_end + 4);
  if (const auto it = response.headers.find("content-length"); it != response.headers.end()) {
    const auto expected = static_cast<std::size_t>(std::stoll(it->second));
    if (response.body.size() < expected) throw IoError("short HTTP body");
    response.body.resize(expected);
  }
  return response;
}

}  // namespace

HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& target, const std::string& body,
                          const std::string& content_type) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("socket() failed: " + std::string(std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("connect() to port " + std::to_string(port) + " failed: " + why);
  }

  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: 127.0.0.1\r\n";
  if (!body.empty()) {
    wire += "content-type: " + content_type + "\r\n";
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;

  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      throw IoError("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string received;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return parse_response(received);
}

HttpResponse http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET", target);
}

HttpResponse http_post(std::uint16_t port, const std::string& target, const std::string& body) {
  return http_request(port, "POST", target, body);
}

}  // namespace preempt::api
