#include "api/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace preempt::api {

namespace {

/// Upper bound on a response body this client will buffer. Far above any real
/// payload of this API; exists so a bogus content-length cannot make the
/// framed reader wait for gigabytes.
constexpr std::size_t kMaxResponseBody = 64 * 1024 * 1024;

/// Strict content-length decode: digits only, no sign, no trailing junk,
/// bounded. Everything else — "abc", "-1", overflow — is the peer speaking a
/// protocol we don't trust, surfaced as this layer's IoError rather than a
/// raw std::stoll exception.
std::size_t parse_content_length(const std::string& text) {
  const bool digits = !text.empty() && text.size() <= 20 &&
                      std::all_of(text.begin(), text.end(),
                                  [](unsigned char c) { return std::isdigit(c) != 0; });
  unsigned long long n = 0;
  const auto [ptr, ec] =
      digits ? std::from_chars(text.data(), text.data() + text.size(), n)
             : std::from_chars_result{text.data(), std::errc::invalid_argument};
  if (!digits || ec != std::errc{} || ptr != text.data() + text.size()) {
    throw IoError("malformed content-length in HTTP response: \"" + text + "\"");
  }
  if (n > kMaxResponseBody) {
    throw IoError("implausible content-length in HTTP response: " + text);
  }
  return static_cast<std::size_t>(n);
}

/// Arm (or disarm, seconds <= 0) the kernel receive deadline on `fd`. With
/// it set, a recv() against a silent peer returns -1/EAGAIN instead of
/// blocking forever; the read loops below translate that into IoTimeout.
void apply_recv_timeout(int fd, double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // A sub-microsecond request must still arm the timer: {0,0} means "no
    // timeout" to the kernel, the opposite of what the caller asked for.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// True when recv() failed because the SO_RCVTIMEO deadline expired.
bool recv_timed_out(ssize_t n) {
  return n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("socket() failed: " + std::string(std::strerror(errno)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("connect() to port " + std::to_string(port) + " failed: " + why);
  }
  return fd;
}

std::string build_request_wire(const std::string& method, const std::string& target,
                               const std::string& body, const std::string& content_type,
                               bool keep_alive) {
  std::string wire = method + " " + target + " HTTP/1.1\r\n";
  wire += "host: 127.0.0.1\r\n";
  wire += keep_alive ? "connection: keep-alive\r\n" : "connection: close\r\n";
  if (!body.empty()) {
    wire += "content-type: " + content_type + "\r\n";
    wire += "content-length: " + std::to_string(body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += body;
  return wire;
}

bool send_all(int fd, const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpResponse parse_http_response(const std::string& wire) {
  HttpResponse response;
  const auto head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) throw IoError("truncated HTTP response");
  const std::string head = wire.substr(0, head_end);

  const auto line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  const auto sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) throw IoError("malformed status line");
  const auto sp2 = status_line.find(' ', sp1 + 1);
  try {
    response.status = std::stoi(status_line.substr(sp1 + 1, sp2 - sp1 - 1));
  } catch (const std::exception&) {
    throw IoError("malformed status code");
  }
  if (sp2 != std::string::npos) response.reason = status_line.substr(sp2 + 1);

  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    if (const auto colon = line.find(':'); colon != std::string::npos) {
      response.headers[to_lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    }
    pos = eol + 2;
  }
  response.body = wire.substr(head_end + 4);
  if (const auto it = response.headers.find("content-length"); it != response.headers.end()) {
    const std::size_t expected = parse_content_length(it->second);
    if (response.body.size() < expected) throw IoError("short HTTP body");
    response.body.resize(expected);
  }
  return response;
}

HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& target, const std::string& body,
                          const std::string& content_type, double recv_timeout_seconds) {
  const int fd = connect_loopback(port);
  apply_recv_timeout(fd, recv_timeout_seconds);
  const std::string wire =
      build_request_wire(method, target, body, content_type, /*keep_alive=*/false);
  if (!send_all(fd, wire)) {
    ::close(fd);
    throw IoError("send() failed");
  }
  ::shutdown(fd, SHUT_WR);

  std::string received;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (recv_timed_out(n)) {
      ::close(fd);
      throw IoTimeout("HTTP response from port " + std::to_string(port) +
                      " timed out after " + std::to_string(recv_timeout_seconds) + "s");
    }
    if (n <= 0) break;
    received.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return parse_http_response(received);
}

HttpResponse http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET", target);
}

HttpResponse http_post(std::uint16_t port, const std::string& target, const std::string& body) {
  return http_request(port, "POST", target, body);
}

void HttpConnection::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  reused_ = false;
}

void HttpConnection::set_recv_timeout(double seconds) {
  recv_timeout_seconds_ = seconds > 0.0 ? seconds : 0.0;
  if (fd_ >= 0) apply_recv_timeout(fd_, recv_timeout_seconds_);
}

void HttpConnection::connect_socket() {
  fd_ = connect_loopback(port_);
  apply_recv_timeout(fd_, recv_timeout_seconds_);
  reused_ = false;
}

HttpResponse HttpConnection::roundtrip(const std::string& wire) {
  response_started_ = false;
  if (!send_all(fd_, wire)) throw IoError("send() failed on kept-alive connection");

  auto timeout = [this]() -> IoTimeout {
    return IoTimeout("HTTP response from port " + std::to_string(port_) +
                     " timed out after " + std::to_string(recv_timeout_seconds_) + "s");
  };

  // Framed read: headers first, then exactly content-length body bytes. No
  // shutdown and no read-until-EOF — the socket stays open for reuse.
  std::string received;
  char buf[4096];
  std::size_t head_end = std::string::npos;
  while ((head_end = received.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (recv_timed_out(n)) throw timeout();
    if (n <= 0) throw IoError("connection closed before HTTP response headers");
    response_started_ = true;
    received.append(buf, static_cast<std::size_t>(n));
    if (received.size() > HttpRequestParser::kMaxHeaderBytes + 4) {
      throw IoError("HTTP response header section too large");
    }
  }

  // Peek at content-length without a full parse so we know when to stop.
  std::size_t expected = 0;
  {
    const std::string head = to_lower(received.substr(0, head_end + 4));
    const auto cl = head.find("content-length:");
    if (cl != std::string::npos) {
      const auto eol = head.find("\r\n", cl);
      expected = parse_content_length(
          trim(received.substr(cl + 15, eol - cl - 15)));
    }
  }
  const std::size_t total = head_end + 4 + expected;
  while (received.size() < total) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (recv_timed_out(n)) throw timeout();
    if (n <= 0) throw IoError("connection closed mid HTTP response body");
    received.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response = parse_http_response(received.substr(0, total));
  reused_ = true;
  if (const auto it = response.headers.find("connection");
      it != response.headers.end() && to_lower(trim(it->second)) == "close") {
    close();
  }
  return response;
}

HttpResponse HttpConnection::request(const std::string& method, const std::string& target,
                                     const std::string& body,
                                     const std::string& content_type) {
  const std::string wire =
      build_request_wire(method, target, body, content_type, /*keep_alive=*/true);
  const bool retryable = fd_ >= 0 && reused_;
  if (fd_ < 0) connect_socket();
  try {
    return roundtrip(wire);
  } catch (const IoTimeout&) {
    // A deadline expiry is not a stale-socket close: the server holds the
    // connection and may still be executing the request. Resending here
    // could double-submit a POST — surface the timeout and let the caller
    // decide (the shard coordinator retries with backoff; its jobs are pure
    // functions of the spec, so a duplicate merely wastes work).
    close();
    throw;
  } catch (const IoError&) {
    close();  // don't reuse a socket in an unknown protocol state
    // A reused socket may have been closed server-side (idle timeout,
    // max-requests cap) with the FIN not observed yet. That surfaces as a
    // send/recv failure before any response bytes — retry once, fresh. A
    // failure *after* response bytes started is not retried: the request may
    // already have executed (double-submitting a POST is worse than failing).
    if (!retryable || response_started_) throw;
    connect_socket();
    try {
      return roundtrip(wire);
    } catch (...) {
      close();
      throw;
    }
  } catch (...) {
    close();
    throw;
  }
}

}  // namespace preempt::api
