// Versioned REST routing for the controller's HTTP API.
//
// A Router owns a table of (method, path pattern) -> handler entries where
// pattern segments in braces capture path parameters ("/v1/bags/{id}"), plus
// a middleware chain that wraps every dispatch (request-id stamping, access
// logging — metrics are built in). Routing errors and handler exceptions are
// rendered as the standardized JSON error envelope
//
//   {"error":{"code":"<machine-readable>","message":"<human-readable>"}}
//
// so every non-2xx response on the /v1 surface has the same shape. Dispatch
// is thread-safe: the route table is immutable after setup (add/use must not
// race with dispatch) and per-route metrics are guarded by an internal lock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "api/http.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace preempt::api {

/// Context handed to a route handler: the raw request plus the decoded path
/// parameters and the request id assigned by the middleware chain.
struct RouteContext {
  const HttpRequest* request = nullptr;
  std::map<std::string, std::string> params;  ///< path parameters by name
  std::string route;                          ///< matched pattern, e.g. "/v1/bags/{id}"
  std::string request_id;                     ///< set by request_id_middleware()

  const HttpRequest& req() const { return *request; }
  /// Decoded path parameter; throws InvalidArgument when the pattern has no
  /// such capture (a programming error, not a client error).
  const std::string& param(const std::string& name) const;
  /// Path parameter parsed as a non-negative integer id; returns false on
  /// non-numeric or trailing garbage.
  bool param_id(const std::string& name, std::uint64_t& out) const;
};

using RouteHandler = std::function<HttpResponse(RouteContext&)>;
/// Continuation invoked by middleware to run the rest of the chain.
using NextHandler = std::function<HttpResponse()>;
/// Middleware wraps the chain tail; it may inspect/annotate the context,
/// short-circuit with its own response, or decorate the inner response.
using Middleware = std::function<HttpResponse(RouteContext&, const NextHandler&)>;

/// Run a handler, translating exceptions into the standard envelope
/// (InvalidArgument -> 400 invalid_argument, IoError -> 400 bad_payload,
/// anything else -> 500 internal). Router::dispatch uses this around every
/// matched handler; wrappers that decorate responses (e.g. deprecation
/// headers) call it directly so errored responses get decorated too.
HttpResponse invoke_handler(const RouteHandler& handler, RouteContext& ctx);

/// Snapshot of one route's traffic counters.
struct RouteMetrics {
  std::string method;
  std::string pattern;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;     ///< responses with status >= 400
  double total_ms = 0.0;        ///< summed handler latency
  double max_ms = 0.0;
  double mean_ms() const { return requests > 0 ? total_ms / static_cast<double>(requests) : 0.0; }
};

class Router {
 public:
  Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Register a handler for an exact method + pattern. Patterns are
  /// slash-separated; a segment spelled "{name}" captures that path segment
  /// (URL-decoded) as params["name"]. Registration order breaks ties; exact
  /// patterns should be added before overlapping capture patterns.
  Router& add(const std::string& method, const std::string& pattern, RouteHandler handler);

  /// Append a middleware; middlewares run in registration order, outermost
  /// first, around every matched-or-not dispatch.
  Router& use(Middleware middleware);

  /// Route one request: 404 envelope when no pattern matches the path, 405
  /// (with an Allow header) when the path matches but the method does not,
  /// and exception-to-envelope translation for handler errors
  /// (InvalidArgument/IoError -> 400, anything else -> 500).
  HttpResponse dispatch(const HttpRequest& request) const;

  /// Per-route traffic counters, in registration order; unmatched requests
  /// are aggregated under the synthetic pattern "(unmatched)".
  std::vector<RouteMetrics> metrics() const;

  /// The metrics snapshot as a JSON document for GET /v1/metrics.
  JsonValue metrics_json() const;

  /// The metrics snapshot in Prometheus text exposition format (0.0.4):
  /// preempt_http_requests_total / preempt_http_errors_total counters and
  /// preempt_http_request_duration_ms_{mean,max} gauges, labelled by
  /// method + route. Served by GET /v1/metrics?format=prometheus.
  std::string metrics_prometheus() const;

 private:
  struct Route {
    std::string method;
    std::string pattern;
    std::vector<std::string> segments;  ///< literal text, or capture name
    std::vector<bool> is_capture;
    RouteHandler handler;
  };
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    double total_ms = 0.0;
    double max_ms = 0.0;
  };

  static std::vector<std::string> split_segments(const std::string& path);
  /// Try `route` against pre-split path segments, filling `params` on match.
  static bool match(const Route& route, const std::vector<std::string>& segments,
                    std::map<std::string, std::string>& params);
  void record(std::size_t slot, double elapsed_ms, int status) const;

  std::vector<Route> routes_;
  std::vector<Middleware> middlewares_;
  mutable Mutex metrics_mutex_{"router.metrics"};
  /// One slot per route plus a trailing slot for unmatched requests.
  mutable std::vector<Counters> counters_ PREEMPT_GUARDED_BY(metrics_mutex_);
};

/// Middleware stamping every response with an `x-request-id` header (taken
/// from the incoming header when present, generated otherwise) and exposing
/// the id to handlers via RouteContext::request_id.
Middleware request_id_middleware();

/// Middleware logging one access line per request (method, route, status,
/// latency) at info level through common/log.
Middleware access_log_middleware();

}  // namespace preempt::api
