// Asynchronous bag-of-jobs execution for the controller.
//
// POST /v1/bags (and POST /v1/scenarios/{name}/run) no longer runs the
// discrete-event simulation inside the HTTP handler: submissions become job
// resources (queued -> running -> done | failed) executed by a fixed worker
// pool, so the request path stays O(microseconds) while bags — including
// multi-replication Monte-Carlo runs fanned out over src/mc — burn CPU in
// the background. The store answers paginated, status-filtered listings for
// GET /v1/bags and retains at most Options::max_finished_jobs terminal
// records (FIFO eviction in completion order); evicted ids stay
// distinguishable from ids that never existed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"
#include "mc/accumulator.hpp"
#include "scenario/sweep.hpp"
#include "sim/service.hpp"

namespace preempt::api {

class JobJournal;  // job_store.hpp; held by pointer to avoid a header cycle

enum class BagJobStatus { kQueued, kRunning, kDone, kFailed };

std::string to_string(BagJobStatus status);
/// Parse a status filter ("queued"/"running"/"done"/"failed"); nullopt on
/// anything else.
std::optional<BagJobStatus> bag_job_status_from_string(const std::string& text);

/// A validated bag submission (the daemon parses/validates the JSON body
/// before queueing, so workers never see malformed input).
struct BagJobSpec {
  std::string app = "nanoconfinement";
  std::size_t jobs = 50;
  std::size_t vms = 16;
  std::uint64_t seed = 42;
  sim::ReusePolicyKind policy = sim::ReusePolicyKind::kModelDriven;
  std::string policy_name = "model";
  std::size_t replications = 1;  ///< > 1 fans out over the mc engine
  /// Set for POST /v1/scenarios/{name}/run submissions: the resolved sweep
  /// (overrides already applied) the executor runs instead of the legacy
  /// bag path. `scenario_name` labels the job resource.
  std::string scenario_name;
  std::optional<scenario::SweepSpec> scenario;
  /// Set for POST /v1/scenarios/run submissions (shard dispatch): an
  /// explicit list of expanded cells — a round-robin shard of a sweep grid
  /// is not a sub-grid, so it cannot ride the SweepSpec field above. The
  /// executor runs each cell in order; the result is the same
  /// {"cells":[{"name","spec","result"}...]} shape as a sweep report.
  std::vector<scenario::ScenarioSpec> cells;
};

/// One job resource. `report` is the representative (first-replication)
/// simulation outcome; `metrics` carries mean/std_error/ci95 per headline
/// metric when replications > 1. Scenario jobs store their rendered result
/// in `scenario_result` instead.
struct BagJobRecord {
  std::uint64_t id = 0;
  BagJobStatus status = BagJobStatus::kQueued;
  BagJobSpec spec;
  sim::ServiceReport report;
  std::vector<mc::MetricSummary> metrics;
  JsonValue scenario_result;  ///< null unless a scenario job is done
  std::string error;          ///< set when status == kFailed
};

class BagJobQueue {
 public:
  /// Executor: fills record.report (and record.metrics for replicated runs)
  /// or throws; runs on a worker thread without the store lock held.
  using Executor = std::function<void(BagJobRecord& record)>;

  struct Options {
    /// Terminal (done/failed) records retained; the oldest-finished record
    /// is evicted beyond this. Queued/running jobs are never evicted.
    std::size_t max_finished_jobs = 1024;
    /// When non-empty, the store persists to an append-only JSONL journal at
    /// this path (see api/job_store.hpp): the constructor replays existing
    /// events — terminal records come back with their reports, jobs that
    /// were queued/running at crash time are re-queued — and every
    /// submission/transition/report is journaled as it happens.
    std::string store_path;
    /// Journal size that triggers compaction (rewrite as one snapshot).
    std::size_t compact_threshold_bytes = 4 * 1024 * 1024;
  };

  BagJobQueue(std::size_t workers, Executor executor, Options options);
  BagJobQueue(std::size_t workers, Executor executor)
      : BagJobQueue(workers, std::move(executor), Options{}) {}
  /// Joins the workers after their in-flight job (if any); queued jobs that
  /// never started are abandoned, not drained.
  ~BagJobQueue();
  BagJobQueue(const BagJobQueue&) = delete;
  BagJobQueue& operator=(const BagJobQueue&) = delete;

  /// Enqueue a validated spec; returns the new job id immediately.
  std::uint64_t submit(BagJobSpec spec);

  /// Execute a spec synchronously on the calling thread (the legacy
  /// /api/bags path): the job is stored and listed like any other record
  /// but never touches the worker queue, so a synchronous caller cannot be
  /// starved by someone else's queued backlog. Returns the terminal record.
  BagJobRecord run_inline(BagJobSpec spec);

  /// Snapshot of one record; nullopt for unknown or evicted ids.
  std::optional<BagJobRecord> get(std::uint64_t id) const;

  /// True when `id` was a real finished job whose record the bounded store
  /// has since evicted (lets callers answer "gone" instead of "never was").
  bool evicted(std::uint64_t id) const;

  struct Page {
    std::vector<BagJobRecord> jobs;  ///< id-ascending slice
    std::size_t total = 0;           ///< records matching the filter
  };
  /// Status-filtered, offset/limit-paginated listing (ids ascending).
  Page list(std::optional<BagJobStatus> filter, std::size_t limit, std::size_t offset) const;

  /// Visit matching records in id order without copying them out of the
  /// store. `fn` runs under the store lock — keep it cheap (project a few
  /// fields), or every concurrent submit/get/wait stalls behind it.
  void for_each(std::optional<BagJobStatus> filter,
                const std::function<void(const BagJobRecord&)>& fn) const;

  /// Block until the job reaches done/failed; false on timeout or unknown
  /// id (an evicted id was terminal, so it returns true immediately).
  bool wait(std::uint64_t id, double timeout_seconds) const;

  std::size_t worker_count() const noexcept { return workers_.size(); }
  std::size_t max_finished_jobs() const noexcept { return options_.max_finished_jobs; }
  /// Jobs that finished successfully since construction (evictions included).
  std::size_t done_count() const;

 private:
  void worker_loop();
  /// Run the executor on `scratch` (no lock held) and write the terminal
  /// status/report back into the store; returns the stored record. Shared by
  /// the workers and run_inline.
  BagJobRecord execute_into_store(BagJobRecord scratch) PREEMPT_EXCLUDES(mutex_);
  /// Replay + adopt the journal at options_.store_path (constructor only).
  void load_journal() PREEMPT_REQUIRES(mutex_);
  /// Append an event, compacting first when the log is past the threshold;
  /// journal faults are logged, never fatal to the job.
  void journal_locked(const JsonValue& event) PREEMPT_REQUIRES(mutex_);

  Executor executor_;
  Options options_;
  mutable Mutex mutex_{"bagjobs.store"};
  /// Null when persistence is off. The journal itself is not thread-safe
  /// (see api/job_store.hpp); every touch goes through this store mutex.
  std::unique_ptr<JobJournal> journal_ PREEMPT_GUARDED_BY(mutex_);
  CondVar work_cv_;            ///< queue_ / stop_ changes
  mutable CondVar done_cv_;    ///< terminal status changes
  std::map<std::uint64_t, BagJobRecord> records_ PREEMPT_GUARDED_BY(mutex_);
  /// FIFO of queued ids.
  std::vector<std::uint64_t> queue_ PREEMPT_GUARDED_BY(mutex_);
  /// Terminal ids, completion order.
  std::deque<std::uint64_t> finished_order_ PREEMPT_GUARDED_BY(mutex_);
  std::uint64_t next_id_ PREEMPT_GUARDED_BY(mutex_) = 1;
  /// Cumulative successful jobs.
  std::size_t done_total_ PREEMPT_GUARDED_BY(mutex_) = 0;
  bool stop_ PREEMPT_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace preempt::api
