#include "api/api_client.hpp"

#include <chrono>
#include <thread>

#include "api/http_client.hpp"

namespace preempt::api {

namespace {

std::string url_encode(const std::string& s) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' || c == '~';
    if (safe) {
      out += c;
    } else {
      out += '%';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += kHex[static_cast<unsigned char>(c) & 0xf];
    }
  }
  return out;
}

/// Translate a non-2xx response into ApiError via the standard envelope.
[[noreturn]] void throw_api_error(const HttpResponse& response) {
  std::string code = "unknown";
  std::string message = response.body;
  try {
    const JsonValue body = parse_json(response.body);
    if (const JsonValue* envelope = body.find("error")) {
      if (envelope->is_object()) {
        code = envelope->string_or("code", code);
        message = envelope->string_or("message", message);
      } else if (envelope->is_string()) {
        message = envelope->as_string();  // legacy {"error":"..."} bodies
      }
    }
  } catch (const std::exception&) {
    // Not JSON; keep the raw body as the message.
  }
  throw ApiError(response.status, code, message);
}

JsonValue expect_json(const HttpResponse& response) {
  if (response.status < 200 || response.status >= 300) throw_api_error(response);
  return parse_json(response.body);
}

void append_query(std::string& target, const char* key, const std::string& value) {
  if (value.empty()) return;
  target += target.find('?') == std::string::npos ? '?' : '&';
  target += key;
  target += '=';
  target += url_encode(value);
}

}  // namespace

std::string RegimeQuery::query_string() const {
  std::string out;
  append_query(out, "type", type);
  append_query(out, "zone", zone);
  append_query(out, "period", period);
  append_query(out, "workload", workload);
  return out;
}

std::string BagSubmission::to_json() const {
  JsonObject obj;
  obj.emplace_back("app", app);
  obj.emplace_back("jobs", jobs);
  obj.emplace_back("vms", vms);
  obj.emplace_back("seed", seed);
  obj.emplace_back("policy", policy);
  obj.emplace_back("replications", replications);
  return JsonValue(std::move(obj)).dump();
}

void ApiClient::set_recv_timeout(double seconds) {
  const LockGuard lock(conn_mutex_);
  recv_timeout_seconds_ = seconds > 0.0 ? seconds : 0.0;
  if (conn_) conn_->set_recv_timeout(recv_timeout_seconds_);
}

HttpResponse ApiClient::do_request(const std::string& method, const std::string& target,
                                   const std::string& body) const {
  if (!keep_alive_) {
    double timeout = 0.0;
    {
      const LockGuard lock(conn_mutex_);
      timeout = recv_timeout_seconds_;
    }
    return http_request(port_, method, target, body, "application/json", timeout);
  }
  const LockGuard lock(conn_mutex_);
  if (!conn_) {
    conn_ = std::make_unique<HttpConnection>(port_);
    conn_->set_recv_timeout(recv_timeout_seconds_);
  }
  return conn_->request(method, target, body);
}

JsonValue ApiClient::get_json(const std::string& target) const {
  return expect_json(do_request("GET", target));
}

JsonValue ApiClient::post_json(const std::string& target, const std::string& body) const {
  return expect_json(do_request("POST", target, body));
}

bool ApiClient::healthy() const {
  try {
    return get_json("/healthz").string_or("status", "") == "ok";
  } catch (const Error&) {
    return false;
  }
}

ModelInfo ApiClient::model(const RegimeQuery& regime) const {
  const JsonValue v = get_json("/v1/models" + regime.query_string());
  ModelInfo out;
  out.regime = v.string_or("regime", "");
  out.scale = v.number_or("A", 0.0);
  out.tau1 = v.number_or("tau1", 0.0);
  out.tau2 = v.number_or("tau2", 0.0);
  out.deadline = v.number_or("b", 0.0);
  out.horizon = v.number_or("horizon", 0.0);
  out.expected_lifetime_hours = v.number_or("expected_lifetime_hours", 0.0);
  return out;
}

LifetimeInfo ApiClient::lifetime(const RegimeQuery& regime) const {
  const JsonValue v = get_json("/v1/lifetimes" + regime.query_string());
  LifetimeInfo out;
  out.regime = v.string_or("regime", "");
  out.expected_lifetime_hours = v.number_or("expected_lifetime_hours", 0.0);
  out.mean_lifetime_hours = v.number_or("mean_lifetime_hours", 0.0);
  return out;
}

ReuseDecisionInfo ApiClient::reuse_decision(double age_hours, double job_hours,
                                            const RegimeQuery& regime) const {
  std::string target = "/v1/decisions/reuse" + regime.query_string();
  append_query(target, "age", std::to_string(age_hours));
  append_query(target, "job", std::to_string(job_hours));
  const JsonValue v = get_json(target);
  ReuseDecisionInfo out;
  out.regime = v.string_or("regime", "");
  out.vm_age_hours = v.number_or("vm_age_hours", 0.0);
  out.job_hours = v.number_or("job_hours", 0.0);
  out.reuse = v.bool_or("reuse", false);
  out.expected_existing_hours = v.number_or("expected_existing_hours", 0.0);
  out.expected_fresh_hours = v.number_or("expected_fresh_hours", 0.0);
  out.failure_probability = v.number_or("failure_probability", 0.0);
  return out;
}

BagJobInfo ApiClient::parse_job(const JsonValue& v) {
  BagJobInfo out;
  out.id = static_cast<std::uint64_t>(v.number_or("id", 0));
  out.status = v.string_or("status", "");
  out.app = v.string_or("app", "");
  out.jobs = static_cast<std::size_t>(v.number_or("jobs", 0));
  out.vms = static_cast<std::size_t>(v.number_or("vms", 0));
  out.seed = static_cast<std::uint64_t>(v.number_or("seed", 0));
  out.policy = v.string_or("policy", "");
  out.replications = static_cast<std::size_t>(v.number_or("replications", 1));
  out.scenario = v.string_or("scenario", "");
  out.cells = static_cast<std::size_t>(v.number_or("cells", 0));
  if (const JsonValue* result = v.find("result")) out.scenario_result = *result;
  out.error = v.string_or("error", "");
  if (const JsonValue* report = v.find("report"); report != nullptr && report->is_object()) {
    BagReport r;
    r.jobs_completed = static_cast<std::size_t>(report->number_or("jobs_completed", 0));
    r.makespan_hours = report->number_or("makespan_hours", 0.0);
    r.increase_fraction = report->number_or("increase_fraction", 0.0);
    r.cost_per_job = report->number_or("cost_per_job", 0.0);
    r.on_demand_cost_per_job = report->number_or("on_demand_cost_per_job", 0.0);
    r.cost_reduction_factor = report->number_or("cost_reduction_factor", 0.0);
    r.preemptions = static_cast<int>(report->number_or("preemptions", 0));
    r.preemptions_total = static_cast<int>(report->number_or("preemptions_total", 0));
    r.vms_launched = static_cast<int>(report->number_or("vms_launched", 0));
    r.wasted_hours = report->number_or("wasted_hours", 0.0);
    if (const JsonValue* metrics = report->find("metrics");
        metrics != nullptr && metrics->is_object()) {
      for (const auto& [name, stat] : metrics->as_object()) {
        MetricStat s;
        s.mean = stat.number_or("mean", 0.0);
        s.std_error = stat.number_or("std_error", 0.0);
        s.ci95 = stat.number_or("ci95", 0.0);
        r.metrics[name] = s;
      }
    }
    out.report = std::move(r);
  }
  return out;
}

BagJobInfo ApiClient::submit_bag(const BagSubmission& submission) const {
  const HttpResponse response = do_request("POST", "/v1/bags", submission.to_json());
  if (response.status != 202) throw_api_error(response);
  return parse_job(parse_json(response.body));
}

BagJobInfo ApiClient::bag(std::uint64_t id) const {
  return parse_job(get_json("/v1/bags/" + std::to_string(id)));
}

BagJobInfo ApiClient::wait_for_bag(std::uint64_t id, double timeout_seconds) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  // Back off geometrically: bags usually finish in milliseconds, but a
  // replicated run can take a while — don't hammer the daemon either way.
  auto delay = std::chrono::milliseconds(2);
  while (true) {
    const BagJobInfo job = bag(id);
    if (job.terminal()) return job;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw ApiError(408, "timeout",
                     "bag job " + std::to_string(id) + " still " + job.status + " after " +
                         std::to_string(timeout_seconds) + "s");
    }
    std::this_thread::sleep_for(delay);
    delay = std::min(delay * 2, std::chrono::milliseconds(200));
  }
}

BagPage ApiClient::list_bags(const std::string& status, std::size_t limit,
                             std::size_t offset) const {
  std::string target = "/v1/bags";
  append_query(target, "status", status);
  append_query(target, "limit", std::to_string(limit));
  append_query(target, "offset", std::to_string(offset));
  const JsonValue v = get_json(target);
  BagPage page;
  page.total = static_cast<std::size_t>(v.number_or("total", 0));
  page.limit = static_cast<std::size_t>(v.number_or("limit", 0));
  page.offset = static_cast<std::size_t>(v.number_or("offset", 0));
  if (const JsonValue* jobs = v.find("jobs"); jobs != nullptr && jobs->is_array()) {
    for (const JsonValue& job : jobs->as_array()) page.jobs.push_back(parse_job(job));
  }
  return page;
}

JsonValue ApiClient::scenarios() const { return get_json("/v1/scenarios"); }

JsonValue ApiClient::scenario(const std::string& name) const {
  return get_json("/v1/scenarios/" + url_encode(name));
}

BagJobInfo ApiClient::run_scenario(const std::string& name,
                                   const std::string& overrides_json) const {
  const HttpResponse response =
      do_request("POST", "/v1/scenarios/" + url_encode(name) + "/run", overrides_json);
  if (response.status != 202) throw_api_error(response);
  return parse_job(parse_json(response.body));
}

BagJobInfo ApiClient::run_cells(const std::string& body_json) const {
  const HttpResponse response = do_request("POST", "/v1/scenarios/run", body_json);
  if (response.status != 202) throw_api_error(response);
  return parse_job(parse_json(response.body));
}

DriftStatus ApiClient::observe_lifetimes(const std::vector<double>& lifetimes_hours,
                                         const RegimeQuery& regime) const {
  JsonArray lifetimes;
  lifetimes.reserve(lifetimes_hours.size());
  for (double h : lifetimes_hours) lifetimes.emplace_back(h);
  JsonObject body;
  if (!regime.type.empty()) body.emplace_back("type", regime.type);
  if (!regime.zone.empty()) body.emplace_back("zone", regime.zone);
  if (!regime.period.empty()) body.emplace_back("period", regime.period);
  if (!regime.workload.empty()) body.emplace_back("workload", regime.workload);
  body.emplace_back("lifetimes", std::move(lifetimes));
  const JsonValue v = post_json("/v1/observations", JsonValue(std::move(body)).dump());
  DriftStatus out;
  out.regime = v.string_or("regime", "");
  out.observed = static_cast<std::size_t>(v.number_or("observed", 0));
  out.ks_statistic = v.number_or("ks_statistic", 0.0);
  out.ks_drift = v.bool_or("ks_drift", false);
  out.cusum_shorter = v.number_or("cusum_shorter", 0.0);
  out.cusum_longer = v.number_or("cusum_longer", 0.0);
  out.cusum_alarm = v.bool_or("cusum_alarm", false);
  out.drift_detected = v.bool_or("drift_detected", false);
  return out;
}

std::vector<RouteMetricsInfo> ApiClient::metrics() const {
  const JsonValue v = get_json("/v1/metrics");
  std::vector<RouteMetricsInfo> out;
  if (const JsonValue* routes = v.find("routes"); routes != nullptr && routes->is_array()) {
    for (const JsonValue& row : routes->as_array()) {
      RouteMetricsInfo m;
      m.method = row.string_or("method", "");
      m.route = row.string_or("route", "");
      m.requests = static_cast<std::uint64_t>(row.number_or("requests", 0));
      m.errors = static_cast<std::uint64_t>(row.number_or("errors", 0));
      m.mean_latency_ms = row.number_or("mean_latency_ms", 0.0);
      m.max_latency_ms = row.number_or("max_latency_ms", 0.0);
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace preempt::api
