#include "api/bag_jobs.hpp"

#include <algorithm>
#include <chrono>

#include "api/job_store.hpp"
#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::api {

std::string to_string(BagJobStatus status) {
  switch (status) {
    case BagJobStatus::kQueued: return "queued";
    case BagJobStatus::kRunning: return "running";
    case BagJobStatus::kDone: return "done";
    case BagJobStatus::kFailed: return "failed";
  }
  return "unknown";
}

std::optional<BagJobStatus> bag_job_status_from_string(const std::string& text) {
  if (text == "queued") return BagJobStatus::kQueued;
  if (text == "running") return BagJobStatus::kRunning;
  if (text == "done") return BagJobStatus::kDone;
  if (text == "failed") return BagJobStatus::kFailed;
  return std::nullopt;
}

BagJobQueue::BagJobQueue(std::size_t workers, Executor executor, Options options)
    : executor_(std::move(executor)), options_(options) {
  PREEMPT_REQUIRE(executor_ != nullptr, "bag job queue needs an executor");
  PREEMPT_REQUIRE(workers >= 1, "bag job queue needs at least one worker");
  PREEMPT_REQUIRE(options_.max_finished_jobs >= 1,
                  "bag job queue must retain at least one finished job");
  // Replay before any worker exists: re-queued crash survivors must be in
  // the store when the first worker looks for work (locked only to satisfy
  // the annotated discipline — there is nobody to contend with yet).
  if (!options_.store_path.empty()) {
    const LockGuard lock(mutex_);
    load_journal();
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BagJobQueue::~BagJobQueue() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::uint64_t BagJobQueue::submit(BagJobSpec spec) {
  std::uint64_t id = 0;
  {
    const LockGuard lock(mutex_);
    id = next_id_++;
    BagJobRecord record;
    record.id = id;
    record.status = BagJobStatus::kQueued;
    record.spec = std::move(spec);
    if (journal_) journal_locked(make_submit_event(record));
    records_.emplace(id, std::move(record));
    queue_.push_back(id);
  }
  work_cv_.notify_one();
  return id;
}

BagJobRecord BagJobQueue::execute_into_store(BagJobRecord scratch) {
  std::string error;
  try {
    executor_(scratch);
  } catch (const std::exception& e) {
    error = e.what();
  }
  BagJobRecord stored;
  {
    const LockGuard lock(mutex_);
    BagJobRecord& record = records_.at(scratch.id);
    if (error.empty()) {
      record.report = scratch.report;
      record.metrics = std::move(scratch.metrics);
      record.scenario_result = std::move(scratch.scenario_result);
      record.status = BagJobStatus::kDone;
      ++done_total_;
    } else {
      record.error = std::move(error);
      record.status = BagJobStatus::kFailed;
    }
    stored = record;
    // Bound the finished-job store: evict the oldest terminal record beyond
    // the cap. Queued/running records never enter finished_order_, so they
    // are never evicted.
    finished_order_.push_back(scratch.id);
    while (finished_order_.size() > options_.max_finished_jobs) {
      records_.erase(finished_order_.front());
      finished_order_.pop_front();
    }
    // Evicted records linger in the log until the next compaction; replay
    // applies the same cap, so they stay gone after a restart too.
    if (journal_) journal_locked(make_terminal_event(stored));
  }
  done_cv_.notify_all();
  return stored;
}

BagJobRecord BagJobQueue::run_inline(BagJobSpec spec) {
  BagJobRecord scratch;
  {
    const LockGuard lock(mutex_);
    scratch.id = next_id_++;
    scratch.status = BagJobStatus::kRunning;
    scratch.spec = std::move(spec);
    records_.emplace(scratch.id, scratch);
    // Journaled as a running submit: if we crash mid-execution, replay
    // re-queues it like any other interrupted job.
    if (journal_) journal_locked(make_submit_event(scratch));
  }
  return execute_into_store(std::move(scratch));
}

void BagJobQueue::worker_loop() {
  while (true) {
    std::uint64_t id = 0;
    BagJobRecord scratch;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      // On stop, exit without draining: a queued backlog of long Monte-Carlo
      // bags must not hold the daemon's shutdown hostage. Jobs that never
      // started simply stay "queued" in the store while the process exits.
      if (stop_) return;
      id = queue_.front();
      queue_.erase(queue_.begin());
      BagJobRecord& record = records_.at(id);
      record.status = BagJobStatus::kRunning;
      scratch = record;  // run on a copy; the store stays consistent meanwhile
      if (journal_) journal_locked(make_running_event(id));
    }
    execute_into_store(std::move(scratch));
  }
}

std::optional<BagJobRecord> BagJobQueue::get(std::uint64_t id) const {
  const LockGuard lock(mutex_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool BagJobQueue::evicted(std::uint64_t id) const {
  const LockGuard lock(mutex_);
  // Ids are dense from next_id_ and only terminal records are erased, so an
  // assigned id that is no longer in the store must have been evicted.
  return id >= 1 && id < next_id_ && records_.find(id) == records_.end();
}

BagJobQueue::Page BagJobQueue::list(std::optional<BagJobStatus> filter, std::size_t limit,
                                    std::size_t offset) const {
  Page page;
  const LockGuard lock(mutex_);
  for (const auto& [id, record] : records_) {  // std::map: id-ascending
    if (filter && record.status != *filter) continue;
    if (page.total >= offset && page.jobs.size() < limit) page.jobs.push_back(record);
    ++page.total;
  }
  return page;
}

void BagJobQueue::for_each(std::optional<BagJobStatus> filter,
                           const std::function<void(const BagJobRecord&)>& fn) const {
  const LockGuard lock(mutex_);
  for (const auto& [id, record] : records_) {  // std::map: id-ascending
    if (filter && record.status != *filter) continue;
    fn(record);
  }
}

bool BagJobQueue::wait(std::uint64_t id, double timeout_seconds) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  UniqueLock lock(mutex_);
  // Ids are assigned from next_id_ and the store is append-only, so an id
  // outside [1, next_id_) can never appear — fail fast instead of holding
  // the caller for the whole timeout.
  if (id == 0 || id >= next_id_) return false;
  for (;;) {
    const auto it = records_.find(id);
    // A missing id below next_id_ was evicted — and only terminal records
    // are evicted, so the job is finished.
    if (it == records_.end()) return true;
    if (it->second.status == BagJobStatus::kDone ||
        it->second.status == BagJobStatus::kFailed) {
      return true;
    }
    if (done_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One last look: the terminal transition may have slipped in between
      // the notification and the deadline expiring.
      const auto last = records_.find(id);
      return last == records_.end() || last->second.status == BagJobStatus::kDone ||
             last->second.status == BagJobStatus::kFailed;
    }
  }
}

std::size_t BagJobQueue::done_count() const {
  const LockGuard lock(mutex_);
  return done_total_;
}

void BagJobQueue::load_journal() {
  // Constructor context: no workers yet, no lock needed.
  JournalReplay replay = replay_journal(options_.store_path);
  next_id_ = std::max(next_id_, replay.next_id);
  done_total_ = replay.done_total;
  for (auto& record : replay.records) {
    const std::uint64_t id = record.id;
    if (record.status == BagJobStatus::kQueued || record.status == BagJobStatus::kRunning) {
      // Interrupted by the crash/restart: run it again from the top.
      record.status = BagJobStatus::kQueued;
      record.error.clear();
      queue_.push_back(id);
    }
    records_.emplace(id, std::move(record));
  }
  std::sort(queue_.begin(), queue_.end());  // resubmit in original order
  for (std::uint64_t id : replay.terminal_order) finished_order_.push_back(id);
  // The live cap applies across restarts: trimming the oldest finished here
  // reproduces exactly the evictions the previous process would have done.
  while (finished_order_.size() > options_.max_finished_jobs) {
    records_.erase(finished_order_.front());
    finished_order_.pop_front();
  }

  journal_ = std::make_unique<JobJournal>(options_.store_path);
  // Compact immediately: the replayed history (plus our re-queue/eviction
  // decisions) collapses to one snapshot, so restart loops can't grow the
  // log and the on-disk statuses match the in-memory ones.
  std::vector<BagJobRecord> snapshot;
  snapshot.reserve(records_.size());
  for (std::uint64_t id : finished_order_) snapshot.push_back(records_.at(id));
  for (const auto& [id, record] : records_) {
    if (record.status == BagJobStatus::kQueued || record.status == BagJobStatus::kRunning) {
      snapshot.push_back(record);
    }
  }
  journal_->compact(make_snapshot_event(snapshot, next_id_, done_total_));
}

void BagJobQueue::journal_locked(const JsonValue& event) {
  try {
    if (journal_->bytes() > options_.compact_threshold_bytes) {
      std::vector<BagJobRecord> snapshot;
      snapshot.reserve(records_.size());
      for (std::uint64_t id : finished_order_) snapshot.push_back(records_.at(id));
      for (const auto& [id, record] : records_) {
        if (record.status == BagJobStatus::kQueued || record.status == BagJobStatus::kRunning) {
          snapshot.push_back(record);
        }
      }
      journal_->compact(make_snapshot_event(snapshot, next_id_, done_total_));
    }
    journal_->append(event);
  } catch (const std::exception& e) {
    // Persistence is best-effort once the daemon is up: losing a journal
    // write (disk full, unlinked path) must not fail the job or kill a
    // worker thread.
    PREEMPT_LOG_WARN << "job journal write failed: " << e.what();
  }
}

}  // namespace preempt::api
