// Persistent bag-job store: an append-only JSONL journal behind BagJobQueue.
//
// Every submission, status transition and terminal report is appended as one
// JSON object per line, flushed before the caller proceeds, so
// `preempt-batchd --store jobs.jsonl` can be killed at any instant and
// replay the log on the next start: terminal records (reports included)
// come back readable, and jobs that were queued or running at crash time are
// re-queued. The log self-compacts — when it grows past a size threshold it
// is atomically rewritten (tmp + rename) as a single `snapshot` event
// carrying the live records, so steady-state disk use is bounded by the
// queue's own finished-job cap rather than by history length.
//
// Event grammar (one per line):
//   {"event":"snapshot","next_id":N,"done_total":M,"jobs":[<record>...]}
//   {"event":"submit","job":<record>}          // status "queued"
//   {"event":"running","id":N}
//   {"event":"done","job":<record>}            // report/metrics/result set
//   {"event":"failed","job":<record>}          // error set
// A torn final line (crash mid-append) is tolerated and ignored on replay.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "api/bag_jobs.hpp"
#include "common/json.hpp"

namespace preempt::api {

/// Full-fidelity JSON round-trip for one job record: every ServiceReport
/// field, the replication metrics, the scenario sweep (when present) and its
/// rendered result survive a dump/parse cycle.
JsonValue job_record_to_json(const BagJobRecord& record);
/// Strict inverse; throws InvalidArgument on a structurally bad record.
BagJobRecord job_record_from_json(const JsonValue& value);

/// The state a journal replay reconstructs.
struct JournalReplay {
  std::vector<BagJobRecord> records;  ///< id-ascending; statuses as journaled
  /// Terminal ids in completion order (the queue's finished_order_), so FIFO
  /// eviction picks the same victims after a restart as it would have live.
  std::vector<std::uint64_t> terminal_order;
  std::uint64_t next_id = 1;
  std::size_t done_total = 0;  ///< cumulative done jobs (survives eviction)
};

/// Parse the journal at `path` (missing file = empty state). Later events
/// win: a `done` event replaces the record its `submit` created. Unparseable
/// lines — the torn tail of an interrupted append — are skipped.
JournalReplay replay_journal(const std::string& path);

/// The append side: an open journal file. Not thread-safe by itself —
/// BagJobQueue owns the only instance as a PREEMPT_GUARDED_BY(mutex_) member,
/// so every append/compact happens under its store mutex and clang's
/// -Wthread-safety analysis enforces that at the call sites.
class JobJournal {
 public:
  /// Opens `path` for appending (created when missing); throws IoError.
  explicit JobJournal(std::string path);
  ~JobJournal();
  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  const std::string& path() const noexcept { return path_; }
  /// Journal size on disk (appended bytes included).
  std::size_t bytes() const noexcept { return bytes_; }

  /// Append one event line and flush it to the OS before returning.
  void append(const JsonValue& event);

  /// Atomically replace the whole journal with `snapshot_event` (written to
  /// a temp file, then renamed over the log) — the compaction step.
  void compact(const JsonValue& snapshot_event);

 private:
  void open_for_append();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_ = 0;
};

// Event builders (pure; used by BagJobQueue and tests).
JsonValue make_submit_event(const BagJobRecord& record);
JsonValue make_running_event(std::uint64_t id);
JsonValue make_terminal_event(const BagJobRecord& record);  ///< done or failed
/// `records` order is preserved; list terminal records in completion order
/// (followed by the non-terminal ones) so replay reconstructs eviction order.
JsonValue make_snapshot_event(const std::vector<BagJobRecord>& records, std::uint64_t next_id,
                              std::size_t done_total);

}  // namespace preempt::api
