// Typed client for the controller's /v1 REST surface.
//
// Wraps the raw loopback http_client in the resource types the daemon
// serves, so `preempt-batchd --self-check`, the `preempt bags` CLI command,
// examples and tests all speak the API through one decoder instead of four
// hand-rolled JSON pickers. Non-2xx responses become ApiError carrying the
// standardized envelope's code/message plus the HTTP status.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "api/http_client.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/thread_annotations.hpp"

namespace preempt::api {

/// A non-2xx API response, decoded from the {"error":{"code","message"}}
/// envelope (legacy bodies without an envelope fall back to the raw body).
class ApiError : public Error {
 public:
  ApiError(int status, std::string code, const std::string& message)
      : Error("api error " + std::to_string(status) + " [" + code + "]: " + message),
        status_(status),
        code_(std::move(code)) {}

  int status() const noexcept { return status_; }
  const std::string& code() const noexcept { return code_; }

 private:
  int status_;
  std::string code_;
};

/// Optional regime selector shared by several endpoints; empty fields are
/// omitted and fall back to the daemon defaults.
struct RegimeQuery {
  std::string type;
  std::string zone;
  std::string period;
  std::string workload;

  /// "?type=..&zone=.." ("" when all fields are empty).
  std::string query_string() const;
};

struct ModelInfo {
  std::string regime;
  double scale = 0.0;  ///< bathtub A
  double tau1 = 0.0;
  double tau2 = 0.0;
  double deadline = 0.0;  ///< b
  double horizon = 0.0;
  double expected_lifetime_hours = 0.0;
};

struct LifetimeInfo {
  std::string regime;
  double expected_lifetime_hours = 0.0;
  double mean_lifetime_hours = 0.0;
};

struct ReuseDecisionInfo {
  std::string regime;
  double vm_age_hours = 0.0;
  double job_hours = 0.0;
  bool reuse = false;
  double expected_existing_hours = 0.0;
  double expected_fresh_hours = 0.0;
  double failure_probability = 0.0;
};

/// POST /v1/bags submission body.
struct BagSubmission {
  std::string app = "nanoconfinement";
  std::size_t jobs = 50;
  std::size_t vms = 16;
  std::uint64_t seed = 42;
  std::string policy = "model";
  std::size_t replications = 1;

  std::string to_json() const;
};

/// mean/std_error/ci95 of one replicated-bag metric.
struct MetricStat {
  double mean = 0.0;
  double std_error = 0.0;
  double ci95 = 0.0;
};

struct BagReport {
  std::size_t jobs_completed = 0;
  double makespan_hours = 0.0;
  double increase_fraction = 0.0;
  double cost_per_job = 0.0;
  double on_demand_cost_per_job = 0.0;
  double cost_reduction_factor = 0.0;
  int preemptions = 0;
  int preemptions_total = 0;
  int vms_launched = 0;
  double wasted_hours = 0.0;
  /// Per-metric replication statistics (empty when replications == 1).
  std::map<std::string, MetricStat> metrics;
};

/// One async bag job resource (scenario runs are bag jobs too: `scenario`
/// carries the scenario name and `scenario_result` its rendered outcome).
struct BagJobInfo {
  std::uint64_t id = 0;
  std::string status;  ///< queued|running|done|failed
  std::string app;
  std::size_t jobs = 0;
  std::size_t vms = 0;
  std::uint64_t seed = 0;
  std::string policy;
  std::size_t replications = 1;
  std::optional<BagReport> report;  ///< present when status == "done"
  std::string scenario;             ///< scenario name (scenario jobs only)
  std::size_t cells = 0;            ///< expanded sweep cells (scenario jobs only)
  JsonValue scenario_result;        ///< "result" of a done scenario job (else null)
  std::string error;                ///< set when status == "failed"

  bool terminal() const { return status == "done" || status == "failed"; }
};

struct BagPage {
  std::vector<BagJobInfo> jobs;
  std::size_t total = 0;
  std::size_t limit = 0;
  std::size_t offset = 0;
};

struct DriftStatus {
  std::string regime;
  std::size_t observed = 0;
  double ks_statistic = 0.0;
  bool ks_drift = false;
  double cusum_shorter = 0.0;
  double cusum_longer = 0.0;
  bool cusum_alarm = false;
  bool drift_detected = false;
};

struct RouteMetricsInfo {
  std::string method;
  std::string route;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
};

class ApiClient {
 public:
  /// `keep_alive` (the default) reuses one persistent HTTP connection across
  /// calls — repeated requests skip the per-request TCP connect. Pass false
  /// to open a fresh Connection: close socket per request.
  explicit ApiClient(std::uint16_t port, bool keep_alive = true)
      : port_(port), keep_alive_(keep_alive) {}
  ApiClient(const ApiClient&) = delete;
  ApiClient& operator=(const ApiClient&) = delete;

  std::uint16_t port() const noexcept { return port_; }

  /// Per-request receive deadline (seconds; 0 = unbounded, the default).
  /// With it set, a worker that accepts the connection but never responds
  /// fails the request with IoTimeout instead of blocking the caller —
  /// including wait_for_bag, which would otherwise poll a stalled daemon
  /// forever. Applies to the held keep-alive socket and every reconnect.
  void set_recv_timeout(double seconds);

  /// GET /healthz; true when the daemon answers {"status":"ok"}.
  bool healthy() const;

  /// GET /v1/models.
  ModelInfo model(const RegimeQuery& regime = {}) const;
  /// GET /v1/lifetimes.
  LifetimeInfo lifetime(const RegimeQuery& regime = {}) const;
  /// GET /v1/decisions/reuse.
  ReuseDecisionInfo reuse_decision(double age_hours, double job_hours,
                                   const RegimeQuery& regime = {}) const;

  /// POST /v1/bags (expects 202); returns the queued job resource.
  BagJobInfo submit_bag(const BagSubmission& submission) const;
  /// GET /v1/bags/{id}.
  BagJobInfo bag(std::uint64_t id) const;
  /// Poll GET /v1/bags/{id} until done/failed; throws ApiError(408) on
  /// timeout.
  BagJobInfo wait_for_bag(std::uint64_t id, double timeout_seconds = 60.0) const;
  /// GET /v1/bags?status=&limit=&offset= ("" status = no filter).
  BagPage list_bags(const std::string& status = "", std::size_t limit = 50,
                    std::size_t offset = 0) const;

  /// GET /v1/scenarios — the named-scenario listing (raw JSON rows).
  JsonValue scenarios() const;
  /// GET /v1/scenarios/{name} — one scenario's spec + sweep axes.
  JsonValue scenario(const std::string& name) const;
  /// POST /v1/scenarios/{name}/run (expects 202); `overrides_json` is a JSON
  /// object of spec overrides ({"seed":1,"replications":4,...}). Poll the
  /// returned job with bag()/wait_for_bag().
  BagJobInfo run_scenario(const std::string& name,
                          const std::string& overrides_json = "{}") const;
  /// POST /v1/scenarios/run (expects 202) — the shard-dispatch endpoint:
  /// `body_json` is {"cells":[<scenario spec>...]} (optionally with a
  /// "label"), executed cell-by-cell on the worker's async job queue. Poll
  /// the returned job; its result is {"cells":[{"name","spec","result"}...]}
  /// in dispatch order, the same shape as a sweep report slice.
  BagJobInfo run_cells(const std::string& body_json) const;

  /// POST /v1/observations.
  DriftStatus observe_lifetimes(const std::vector<double>& lifetimes_hours,
                                const RegimeQuery& regime = {}) const;

  /// GET /v1/metrics.
  std::vector<RouteMetricsInfo> metrics() const;

  /// Raw escape hatches: parsed JSON on 2xx, ApiError otherwise.
  JsonValue get_json(const std::string& target) const;
  JsonValue post_json(const std::string& target, const std::string& body) const;

 private:
  static BagJobInfo parse_job(const JsonValue& v);

  /// One request through the configured transport (persistent or one-shot).
  /// Thread-safe: the shared connection is serialized by conn_mutex_.
  HttpResponse do_request(const std::string& method, const std::string& target,
                          const std::string& body = "") const;

  std::uint16_t port_;
  bool keep_alive_;
  mutable Mutex conn_mutex_{"api_client.connection"};
  /// Lazy, keep-alive mode only.
  mutable std::unique_ptr<HttpConnection> conn_ PREEMPT_GUARDED_BY(conn_mutex_);
  /// 0 = unbounded reads (the historical behaviour).
  double recv_timeout_seconds_ PREEMPT_GUARDED_BY(conn_mutex_) = 0.0;
};

}  // namespace preempt::api
