// A tiny blocking HTTP/1.1 client for loopback use (tests, examples, the CLI
// and the `preempt-batchd` tool's self-check).
//
// Two modes: the free functions open one connection per request (sending
// `Connection: close`), while HttpConnection keeps a socket alive across
// requests with Content-Length-framed reads — matching the server's
// keep-alive support, so repeated calls skip the per-request TCP connect.
#pragma once

#include <cstdint>
#include <string>

#include "api/http.hpp"
#include "common/error.hpp"

namespace preempt::api {

/// A request that hit its receive deadline: the peer accepted the connection
/// (or an earlier request on it) but produced no bytes within the configured
/// timeout. Distinct from plain IoError because the request MAY have
/// executed server-side — the keep-alive reconnect-and-resend path must not
/// auto-retry it (double-submitting a POST), while callers with idempotent
/// or at-least-once semantics (the shard coordinator's dispatch/poll loop)
/// treat it as retryable with backoff.
class IoTimeout : public IoError {
 public:
  explicit IoTimeout(const std::string& message) : IoError(message) {}
};

/// Parse a complete serialized HTTP response (status line, headers,
/// Content-Length body). Throws IoError on malformed input — including a
/// non-numeric, negative, or overflowing content-length header.
HttpResponse parse_http_response(const std::string& wire);

/// Perform one request against 127.0.0.1:port on a fresh connection
/// (Connection: close). Throws IoError on connection or protocol failures.
/// `recv_timeout_seconds` > 0 bounds every read on the socket; a stalled
/// server surfaces as IoTimeout instead of blocking forever.
HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& target, const std::string& body = "",
                          const std::string& content_type = "application/json",
                          double recv_timeout_seconds = 0.0);

/// Convenience wrappers.
HttpResponse http_get(std::uint16_t port, const std::string& target);
HttpResponse http_post(std::uint16_t port, const std::string& target, const std::string& body);

/// A persistent (keep-alive) HTTP/1.1 connection to 127.0.0.1:port.
///
/// Connects lazily on the first request and reads responses by
/// Content-Length framing instead of read-until-EOF, so the socket stays
/// usable for the next request. When a *reused* socket turns out to be dead
/// (the server closed it after an idle timeout or max-requests cap), the
/// request is retried once on a fresh connection — safe for this API because
/// the failure happens before any response bytes arrive. Honors a server's
/// `Connection: close` by dropping the socket after that response.
///
/// Not thread-safe: callers serialize access (ApiClient does).
class HttpConnection {
 public:
  explicit HttpConnection(std::uint16_t port) : port_(port) {}
  ~HttpConnection() { close(); }
  HttpConnection(const HttpConnection&) = delete;
  HttpConnection& operator=(const HttpConnection&) = delete;

  /// Bound every socket read with a deadline (applies to the current socket
  /// immediately and to every reconnect). A worker that accepts the
  /// connection but never answers then fails the request with IoTimeout
  /// instead of blocking the caller forever. 0 (the default) waits without
  /// bound — the pre-deadline behaviour.
  void set_recv_timeout(double seconds);
  double recv_timeout() const noexcept { return recv_timeout_seconds_; }

  /// Perform one request, reusing the live socket when possible. Throws
  /// IoError on connection or protocol failures.
  HttpResponse request(const std::string& method, const std::string& target,
                       const std::string& body = "",
                       const std::string& content_type = "application/json");

  HttpResponse get(const std::string& target) { return request("GET", target); }
  HttpResponse post(const std::string& target, const std::string& body) {
    return request("POST", target, body);
  }

  std::uint16_t port() const noexcept { return port_; }
  /// True while a socket is held open for reuse.
  bool connected() const noexcept { return fd_ >= 0; }
  /// Drop the held socket (next request reconnects).
  void close() noexcept;

 private:
  void connect_socket();
  /// Send the serialized request and read one framed response on fd_.
  /// Throws IoError; `reused` marks failures as retryable-by-reconnect.
  HttpResponse roundtrip(const std::string& wire);

  std::uint16_t port_;
  int fd_ = -1;
  double recv_timeout_seconds_ = 0.0;  ///< 0 = no read deadline
  bool reused_ = false;            ///< fd_ already carried a request/response exchange
  bool response_started_ = false;  ///< roundtrip() saw response bytes (retry unsafe)
};

}  // namespace preempt::api
