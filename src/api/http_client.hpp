// A tiny blocking HTTP/1.1 client for loopback use (tests, examples, and the
// `preempt-batchd` tool's self-check). One request per connection, matching
// the server's Connection: close policy.
#pragma once

#include <cstdint>
#include <string>

#include "api/http.hpp"

namespace preempt::api {

/// Perform one request against 127.0.0.1:port. Throws IoError on connection
/// or protocol failures.
HttpResponse http_request(std::uint16_t port, const std::string& method,
                          const std::string& target, const std::string& body = "",
                          const std::string& content_type = "application/json");

/// Convenience wrappers.
HttpResponse http_get(std::uint16_t port, const std::string& target);
HttpResponse http_post(std::uint16_t port, const std::string& target, const std::string& body);

}  // namespace preempt::api
