#include "api/service_daemon.hpp"

#include <charconv>

#include "common/error.hpp"
#include "portfolio/optimizer.hpp"
#include "trace/generator.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::api {

namespace {

std::string regime_string(const trace::RegimeKey& key) {
  return trace::to_string(key.type) + "/" + trace::to_string(key.zone) + "/" +
         trace::to_string(key.period) + "/" + trace::to_string(key.workload);
}

JsonValue model_json(const trace::RegimeKey& key, const core::PreemptionModel& model) {
  const auto& p = model.params();
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("A", p.scale);
  obj.emplace_back("tau1", p.tau1);
  obj.emplace_back("tau2", p.tau2);
  obj.emplace_back("b", p.deadline);
  obj.emplace_back("horizon", p.horizon);
  obj.emplace_back("expected_lifetime_hours", model.expected_lifetime());
  if (model.fit_quality()) {
    obj.emplace_back("fit_r2", model.fit_quality()->r2);
    obj.emplace_back("fit_sse", model.fit_quality()->sse);
  }
  return JsonValue(std::move(obj));
}

JsonValue report_json(std::uint64_t id, const std::string& app,
                      const sim::ServiceReport& report) {
  JsonObject obj;
  obj.emplace_back("id", id);
  obj.emplace_back("app", app);
  obj.emplace_back("jobs_completed", report.jobs_completed);
  obj.emplace_back("makespan_hours", report.makespan_hours);
  obj.emplace_back("increase_fraction", report.increase_fraction);
  obj.emplace_back("cost_per_job", report.cost_per_job);
  obj.emplace_back("on_demand_cost_per_job", report.on_demand_cost_per_job);
  obj.emplace_back("cost_reduction_factor", report.cost_reduction_factor);
  obj.emplace_back("preemptions", report.preemptions);
  obj.emplace_back("preemptions_total", report.preemptions_total);
  obj.emplace_back("vms_launched", report.vms_launched);
  obj.emplace_back("wasted_hours", report.wasted_hours);
  return JsonValue(std::move(obj));
}

}  // namespace

namespace {

trace::Dataset bootstrap_study(const ServiceDaemon::Options& options) {
  // Bootstrap the per-regime models from a synthetic measurement study, as
  // the paper's controller bootstrapped its CDFs from early campaign data.
  trace::StudyConfig study;
  study.seed = options.bootstrap_seed;
  study.vms_per_cell = options.bootstrap_vms_per_cell;
  return trace::generate_study(study);
}

portfolio::MarketCatalog::Options catalog_options(const ServiceDaemon::Options& options) {
  portfolio::MarketCatalog::Options out;
  out.horizon_hours = options.horizon_hours;
  return out;
}

}  // namespace

ServiceDaemon::ServiceDaemon(Options options) : ServiceDaemon(options, bootstrap_study(options)) {}

ServiceDaemon::ServiceDaemon(Options options, trace::Dataset bootstrap)
    : options_(options), market_catalog_(bootstrap, catalog_options(options)) {
  registry_ = core::ModelRegistry::fit_from_dataset(bootstrap, options_.horizon_hours);
}

void ServiceDaemon::start(std::uint16_t port) {
  HttpServer::Options opts;
  opts.port = port;
  server_.start([this](const HttpRequest& request) { return handle(request); }, opts);
}

void ServiceDaemon::stop() { server_.stop(); }

std::size_t ServiceDaemon::bags_completed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bags_.size();
}

trace::RegimeKey ServiceDaemon::parse_regime(const HttpRequest& request, const JsonValue* body) {
  trace::RegimeKey key;  // defaults: n1-highcpu-16 / us-east1-b / day / batch
  auto field = [&](const char* name) -> std::optional<std::string> {
    if (auto q = request.query(name)) return q;
    if (body != nullptr) {
      if (const JsonValue* v = body->find(name); v && v->is_string()) return v->as_string();
    }
    return std::nullopt;
  };
  if (const auto type = field("type")) {
    const auto parsed = trace::vm_type_from_string(*type);
    PREEMPT_REQUIRE(parsed.has_value(), "unknown vm type '" + *type + "'");
    key.type = *parsed;
  }
  if (const auto zone = field("zone")) {
    const auto parsed = trace::zone_from_string(*zone);
    PREEMPT_REQUIRE(parsed.has_value(), "unknown zone '" + *zone + "'");
    key.zone = *parsed;
  }
  if (const auto period = field("period")) {
    const auto parsed = trace::day_period_from_string(*period);
    PREEMPT_REQUIRE(parsed.has_value(), "unknown period '" + *period + "'");
    key.period = *parsed;
  }
  if (const auto workload = field("workload")) {
    const auto parsed = trace::workload_from_string(*workload);
    PREEMPT_REQUIRE(parsed.has_value(), "unknown workload '" + *workload + "'");
    key.workload = *parsed;
  }
  return key;
}

ServiceDaemon::DriftMonitors& ServiceDaemon::monitors_for(const trace::RegimeKey& key) {
  const std::string id = regime_string(key);
  auto it = drift_.find(id);
  if (it == drift_.end()) {
    const core::PreemptionModel& model = registry_.lookup(key);
    core::DriftDetector::Options ks_opts;
    ks_opts.ks_critical = 1.90;  // baseline is itself fitted (Lilliefors)
    core::CusumDetector::Options cs_opts;
    cs_opts.threshold = 12.0;
    it = drift_
             .emplace(id, DriftMonitors{core::DriftDetector(model, ks_opts),
                                        core::CusumDetector(model.distribution(), cs_opts)})
             .first;
  }
  return it->second;
}

HttpResponse ServiceDaemon::handle(const HttpRequest& request) {
  try {
    const std::string path = request.path();
    if (path == "/healthz") {
      if (request.method != "GET") return HttpResponse::method_not_allowed();
      return HttpResponse::json(200, R"({"status":"ok","service":"preempt-batch"})");
    }
    if (path == "/api/model") {
      if (request.method != "GET") return HttpResponse::method_not_allowed();
      return get_model(request);
    }
    if (path == "/api/lifetime") {
      if (request.method != "GET") return HttpResponse::method_not_allowed();
      return get_lifetime(request);
    }
    if (path == "/api/decisions/reuse") {
      if (request.method != "GET") return HttpResponse::method_not_allowed();
      return get_reuse_decision(request);
    }
    if (path == "/api/bags") {
      if (request.method == "POST") return post_bag(request);
      if (request.method == "GET") return get_bags();
      return HttpResponse::method_not_allowed();
    }
    if (path.rfind("/api/bags/", 0) == 0) {
      if (request.method != "GET") return HttpResponse::method_not_allowed();
      const std::string tail = path.substr(std::string("/api/bags/").size());
      std::uint64_t id = 0;
      const auto [ptr, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), id);
      if (ec != std::errc{} || ptr != tail.data() + tail.size()) {
        return HttpResponse::bad_request("bad bag id");
      }
      return get_bag(id);
    }
    if (path == "/api/lifetimes") {
      if (request.method != "POST") return HttpResponse::method_not_allowed();
      return post_lifetimes(request);
    }
    if (path == "/v1/portfolio") {
      if (request.method != "GET" && request.method != "POST") {
        return HttpResponse::method_not_allowed();
      }
      return portfolio_allocation(request);
    }
    return HttpResponse::not_found();
  } catch (const InvalidArgument& e) {
    return HttpResponse::bad_request(e.what());
  } catch (const IoError& e) {
    return HttpResponse::bad_request(e.what());
  }
}

HttpResponse ServiceDaemon::get_model(const HttpRequest& request) {
  const trace::RegimeKey key = parse_regime(request, nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  return HttpResponse::json(200, model_json(key, model).dump());
}

HttpResponse ServiceDaemon::get_lifetime(const HttpRequest& request) {
  const trace::RegimeKey key = parse_regime(request, nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("expected_lifetime_hours", model.expected_lifetime());
  obj.emplace_back("mean_lifetime_hours", model.mean_lifetime());
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_reuse_decision(const HttpRequest& request) {
  const trace::RegimeKey key = parse_regime(request, nullptr);
  const auto age_param = request.query("age");
  const auto job_param = request.query("job");
  if (!age_param || !job_param) {
    return HttpResponse::bad_request("age and job query parameters are required");
  }
  double age = 0.0, job = 0.0;
  try {
    age = std::stod(*age_param);
    job = std::stod(*job_param);
  } catch (const std::exception&) {
    return HttpResponse::bad_request("age/job must be numbers");
  }
  if (age < 0.0 || job <= 0.0) return HttpResponse::bad_request("age >= 0 and job > 0 required");

  const std::lock_guard<std::mutex> lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  const auto decision = model.reuse_decision(age, job);
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("vm_age_hours", age);
  obj.emplace_back("job_hours", job);
  obj.emplace_back("reuse", decision.reuse);
  obj.emplace_back("expected_existing_hours", decision.expected_existing);
  obj.emplace_back("expected_fresh_hours", decision.expected_fresh);
  obj.emplace_back("failure_probability", decision.failure_probability);
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::post_bag(const HttpRequest& request) {
  const JsonValue body = parse_json(request.body.empty() ? "{}" : request.body);
  if (!body.is_object()) return HttpResponse::bad_request("body must be a JSON object");

  const std::string app = body.string_or("app", "nanoconfinement");
  sim::Workload workload;
  bool found = false;
  for (const auto& w : sim::all_workloads()) {
    if (w.name == app) {
      workload = w;
      found = true;
      break;
    }
  }
  if (!found) return HttpResponse::bad_request("unknown app '" + app + "'");

  const auto jobs = static_cast<std::size_t>(body.number_or("jobs", 50));
  const auto vms = static_cast<std::size_t>(body.number_or("vms", 16));
  if (jobs == 0 || jobs > 100000) return HttpResponse::bad_request("jobs must be in 1..100000");
  if (vms == 0 || vms > 4096) return HttpResponse::bad_request("vms must be in 1..4096");

  sim::ServiceConfig cfg;
  cfg.vm_type = workload.vm_type;
  cfg.cluster_size = vms;
  cfg.seed = static_cast<std::uint64_t>(body.number_or("seed", 42));
  const std::string policy = body.string_or("policy", "model");
  if (policy == "model") {
    cfg.reuse_policy = sim::ReusePolicyKind::kModelDriven;
  } else if (policy == "memoryless") {
    cfg.reuse_policy = sim::ReusePolicyKind::kMemoryless;
  } else if (policy == "fresh") {
    cfg.reuse_policy = sim::ReusePolicyKind::kAlwaysFresh;
  } else {
    return HttpResponse::bad_request("unknown policy '" + policy + "'");
  }

  const trace::RegimeKey regime{workload.vm_type, trace::Zone::kUsEast1B,
                                trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};

  const std::lock_guard<std::mutex> lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(regime);
  sim::BatchService service(cfg, trace::ground_truth_distribution(regime).clone(),
                            model.distribution().clone());
  sim::BagOfJobs bag;
  bag.name = app;
  bag.spec = workload.job;
  bag.count = jobs;
  service.submit_bag(bag);
  const sim::ServiceReport report = service.run();

  const std::uint64_t id = next_bag_id_++;
  bags_.push_back({id, app, report});
  return HttpResponse::json(201, report_json(id, app, report).dump());
}

HttpResponse ServiceDaemon::get_bags() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  JsonArray arr;
  for (const auto& bag : bags_) {
    JsonObject summary;
    summary.emplace_back("id", bag.id);
    summary.emplace_back("app", bag.app);
    summary.emplace_back("jobs_completed", bag.report.jobs_completed);
    summary.emplace_back("cost_reduction_factor", bag.report.cost_reduction_factor);
    arr.emplace_back(std::move(summary));
  }
  JsonObject obj;
  obj.emplace_back("bags", std::move(arr));
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_bag(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& bag : bags_) {
    if (bag.id == id) {
      return HttpResponse::json(200, report_json(bag.id, bag.app, bag.report).dump());
    }
  }
  return HttpResponse::not_found();
}

HttpResponse ServiceDaemon::post_lifetimes(const HttpRequest& request) {
  const JsonValue body = parse_json(request.body.empty() ? "{}" : request.body);
  if (!body.is_object()) return HttpResponse::bad_request("body must be a JSON object");
  const JsonValue* lifetimes = body.find("lifetimes");
  if (lifetimes == nullptr || !lifetimes->is_array() || lifetimes->as_array().empty()) {
    return HttpResponse::bad_request("lifetimes must be a non-empty array of hours");
  }
  const trace::RegimeKey key = parse_regime(request, &body);

  const std::lock_guard<std::mutex> lock(mutex_);
  DriftMonitors& monitors = monitors_for(key);
  for (const auto& v : lifetimes->as_array()) {
    if (!v.is_number() || v.as_number() < 0.0) {
      return HttpResponse::bad_request("lifetimes must be non-negative numbers");
    }
    monitors.ks.observe(v.as_number());
    monitors.cusum.observe(v.as_number());
  }
  const auto ks = monitors.ks.status();
  const auto cusum = monitors.cusum.status();
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("observed", lifetimes->as_array().size());
  obj.emplace_back("ks_statistic", ks.ks);
  obj.emplace_back("ks_threshold", ks.threshold);
  obj.emplace_back("ks_drift", ks.drift);
  obj.emplace_back("cusum_shorter", cusum.stat_shorter);
  obj.emplace_back("cusum_longer", cusum.stat_longer);
  obj.emplace_back("cusum_alarm", cusum.alarm);
  obj.emplace_back("drift_detected", ks.drift || cusum.alarm);
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::portfolio_allocation(const HttpRequest& request) {
  const JsonValue body = parse_json(request.body.empty() ? "{}" : request.body);
  if (!body.is_object()) return HttpResponse::bad_request("body must be a JSON object");
  auto field = [&](const char* name, double fallback) {
    if (const auto q = request.query(name)) {
      try {
        return std::stod(*q);
      } catch (const std::exception&) {
        throw InvalidArgument(std::string(name) + " must be a number");
      }
    }
    return body.number_or(name, fallback);
  };

  const double jobs_raw = field("jobs", 100.0);
  PREEMPT_REQUIRE(jobs_raw >= 1.0 && jobs_raw <= 1e7, "jobs must be in [1, 1e7]");
  portfolio::PortfolioConfig config;
  config.jobs = static_cast<std::size_t>(jobs_raw);
  config.job_hours = field("job_hours", 0.25);
  config.risk_bound = field("risk", 0.05);
  config.correlation_penalty = field("lambda", 0.5);

  // No daemon lock: the catalog synchronizes its own fit cache and the
  // optimizer is request-local, so the (expensive) first-use market fits
  // must not stall every other endpoint behind mutex_.
  const portfolio::PortfolioOptimizer optimizer(market_catalog_, config);
  const auto allocation = optimizer.optimize_greedy();

  JsonArray rows;
  for (const auto& quote : optimizer.quotes()) {
    if (allocation.counts[quote.market] == 0) continue;
    const auto& market = market_catalog_.market(quote.market);
    JsonObject row;
    row.emplace_back("market", market.label());
    row.emplace_back("type", trace::to_string(market.regime.type));
    row.emplace_back("zone", trace::to_string(market.regime.zone));
    row.emplace_back("period", trace::to_string(market.regime.period));
    row.emplace_back("price_per_hour", market.price_per_hour);
    row.emplace_back("failure_probability", quote.failure_probability);
    row.emplace_back("expected_makespan_hours", quote.expected_makespan_hours);
    row.emplace_back("expected_cost_per_job", quote.expected_cost);
    row.emplace_back("jobs", allocation.counts[quote.market]);
    rows.emplace_back(std::move(row));
  }
  JsonObject obj;
  obj.emplace_back("jobs", config.jobs);
  obj.emplace_back("job_hours", config.job_hours);
  obj.emplace_back("risk_bound", config.risk_bound);
  obj.emplace_back("markets_total", market_catalog_.size());
  obj.emplace_back("markets_eligible", optimizer.eligible_count());
  obj.emplace_back("markets_used", allocation.markets_used);
  obj.emplace_back("expected_cost", allocation.base_cost);
  obj.emplace_back("objective", allocation.objective);
  obj.emplace_back("allocation", std::move(rows));
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

}  // namespace preempt::api
