#include "api/service_daemon.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "portfolio/optimizer.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "shard/metrics.hpp"
#include "trace/generator.hpp"
#include "trace/ground_truth.hpp"
#include "trace/vm_catalog.hpp"

namespace preempt::api {

namespace {

std::string regime_string(const trace::RegimeKey& key) {
  return trace::to_string(key.type) + "/" + trace::to_string(key.zone) + "/" +
         trace::to_string(key.period) + "/" + trace::to_string(key.workload);
}

JsonValue model_json(const trace::RegimeKey& key, const core::PreemptionModel& model) {
  const auto& p = model.params();
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("A", p.scale);
  obj.emplace_back("tau1", p.tau1);
  obj.emplace_back("tau2", p.tau2);
  obj.emplace_back("b", p.deadline);
  obj.emplace_back("horizon", p.horizon);
  obj.emplace_back("expected_lifetime_hours", model.expected_lifetime());
  if (model.fit_quality()) {
    obj.emplace_back("fit_r2", model.fit_quality()->r2);
    obj.emplace_back("fit_sse", model.fit_quality()->sse);
  }
  return JsonValue(std::move(obj));
}

/// Legacy bag payload — byte-compatible with the pre-/v1 API (the frozen
/// field order lives in scenario::append_report_fields).
JsonValue report_json(std::uint64_t id, const std::string& app,
                      const sim::ServiceReport& report) {
  JsonObject obj;
  obj.emplace_back("id", id);
  obj.emplace_back("app", app);
  scenario::append_report_fields(obj, report);
  return JsonValue(std::move(obj));
}

trace::Dataset bootstrap_study(const ServiceDaemon::Options& options) {
  // Bootstrap the per-regime models from a synthetic measurement study, as
  // the paper's controller bootstrapped its CDFs from early campaign data.
  trace::StudyConfig study;
  study.seed = options.bootstrap_seed;
  study.vms_per_cell = options.bootstrap_vms_per_cell;
  return trace::generate_study(study);
}

portfolio::MarketCatalog::Options catalog_options(const ServiceDaemon::Options& options) {
  portfolio::MarketCatalog::Options out;
  out.horizon_hours = options.horizon_hours;
  return out;
}

std::optional<sim::Workload> find_workload(const std::string& app) {
  for (const auto& w : sim::all_workloads()) {
    if (w.name == app) return w;
  }
  return std::nullopt;
}

/// Client-input check: clean message only (no file:line prefix — that is for
/// programmer-facing preconditions, not 400 bodies).
void require_arg(bool cond, const std::string& message) {
  if (!cond) throw InvalidArgument(message);
}

/// Strict double parse for a query token: the whole token must be consumed
/// and the value finite — "5garbage", "nan" and "inf" all 400 instead of
/// leaking into downstream math.
double parse_query_double(const std::string& text, const char* name) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgument(std::string(name) + " must be a number");
  }
  require_arg(consumed == text.size() && std::isfinite(value),
              std::string(name) + " must be a finite number");
  return value;
}

double query_number(const HttpRequest& request, const char* name, double fallback,
                    const JsonValue& body) {
  if (const auto q = request.query(name)) return parse_query_double(*q, name);
  return body.number_or(name, fallback);
}

/// Non-negative integer query parameter with an inclusive upper bound;
/// rejects (rather than clamps or prefix-parses) anything else.
std::size_t query_size(const HttpRequest& request, const char* name, std::size_t fallback,
                       std::size_t max) {
  const auto q = request.query(name);
  if (!q) return fallback;
  std::size_t v = 0;
  const auto [ptr, ec] = std::from_chars(q->data(), q->data() + q->size(), v);
  require_arg(ec == std::errc{} && ptr == q->data() + q->size(),
              std::string(name) + " must be a non-negative integer");
  require_arg(v <= max, std::string(name) + " must be <= " + std::to_string(max));
  return v;
}

JsonValue parse_body(const HttpRequest& request) {
  const JsonValue body = parse_json(request.body.empty() ? "{}" : request.body);
  require_arg(body.is_object(), "body must be a JSON object");
  return body;
}

}  // namespace

ServiceDaemon::ServiceDaemon(Options options) : ServiceDaemon(options, bootstrap_study(options)) {}

ServiceDaemon::ServiceDaemon(Options options, trace::Dataset bootstrap)
    : options_(options), market_catalog_(bootstrap, catalog_options(options)) {
  {
    // No handler threads yet; locked to keep the guarded-member discipline
    // (and the static analysis) uniform.
    const LockGuard lock(mutex_);
    registry_ = core::ModelRegistry::fit_from_dataset(bootstrap, options_.horizon_hours);
  }
  BagJobQueue::Options job_options;
  job_options.max_finished_jobs = options_.max_finished_jobs;
  job_options.store_path = options_.store_path;
  bag_jobs_ = std::make_unique<BagJobQueue>(
      options_.bag_workers, [this](BagJobRecord& record) { execute_bag(record); },
      job_options);
  router_.use(request_id_middleware());
  router_.use(access_log_middleware());
  build_routes();
}

ServiceDaemon::~ServiceDaemon() { stop(); }

void ServiceDaemon::start(std::uint16_t port) {
  HttpServer::Options opts;
  opts.port = port;
  opts.worker_threads = options_.http_workers;
  server_.start([this](const HttpRequest& request) { return handle(request); }, opts);
}

void ServiceDaemon::stop() { server_.stop(); }

std::size_t ServiceDaemon::bags_completed() const { return bag_jobs_->done_count(); }

bool ServiceDaemon::wait_for_bag(std::uint64_t id, double timeout_seconds) const {
  return bag_jobs_->wait(id, timeout_seconds);
}

void ServiceDaemon::build_routes() {
  auto bind = [this](HttpResponse (ServiceDaemon::*method)(RouteContext&)) {
    return [this, method](RouteContext& ctx) { return (this->*method)(ctx); };
  };
  auto bind_const = [this](HttpResponse (ServiceDaemon::*method)(RouteContext&) const) {
    return [this, method](RouteContext& ctx) { return (this->*method)(ctx); };
  };
  /// Alias wrapper: same handler, plus a deprecation pointer at the /v1
  /// home — on errored responses too, hence invoke_handler.
  auto deprecated = [](RouteHandler inner, const std::string& replacement) -> RouteHandler {
    return [inner = std::move(inner), replacement](RouteContext& ctx) {
      HttpResponse response = invoke_handler(inner, ctx);
      response.headers["x-deprecated"] = "use " + replacement;
      return response;
    };
  };

  router_.add("GET", "/healthz", [](RouteContext&) {
    return HttpResponse::json(200, R"({"status":"ok","service":"preempt-batch"})");
  });

  // --- the versioned /v1 surface -------------------------------------------
  router_.add("GET", "/v1/models", bind(&ServiceDaemon::get_model));
  router_.add("GET", "/v1/lifetimes", bind(&ServiceDaemon::get_lifetime));
  router_.add("GET", "/v1/decisions/reuse", bind(&ServiceDaemon::get_reuse_decision));
  router_.add("POST", "/v1/bags", bind(&ServiceDaemon::post_bag_async));
  router_.add("GET", "/v1/bags", bind_const(&ServiceDaemon::list_bags_v1));
  router_.add("GET", "/v1/bags/{id}", bind_const(&ServiceDaemon::get_bag_v1));
  router_.add("POST", "/v1/observations", bind(&ServiceDaemon::post_observations));
  router_.add("GET", "/v1/portfolio", bind(&ServiceDaemon::portfolio_allocation));
  router_.add("POST", "/v1/portfolio", bind(&ServiceDaemon::portfolio_allocation));
  router_.add("GET", "/v1/scenarios", bind_const(&ServiceDaemon::list_scenarios));
  // Registered before the {name} patterns: /v1/scenarios/run is the shard
  // dispatch endpoint, never a scenario named "run".
  router_.add("POST", "/v1/scenarios/run", bind(&ServiceDaemon::run_cells));
  router_.add("GET", "/v1/scenarios/{name}", bind_const(&ServiceDaemon::get_scenario));
  router_.add("POST", "/v1/scenarios/{name}/run", bind(&ServiceDaemon::run_scenario));
  router_.add("GET", "/v1/metrics", bind_const(&ServiceDaemon::get_metrics));

  // --- deprecated /api/* aliases (byte-compatible success payloads) --------
  router_.add("GET", "/api/model", deprecated(bind(&ServiceDaemon::get_model), "/v1/models"));
  router_.add("GET", "/api/lifetime",
              deprecated(bind(&ServiceDaemon::get_lifetime), "/v1/lifetimes"));
  router_.add("GET", "/api/decisions/reuse",
              deprecated(bind(&ServiceDaemon::get_reuse_decision), "/v1/decisions/reuse"));
  router_.add("POST", "/api/bags", deprecated(bind(&ServiceDaemon::post_bag_legacy), "/v1/bags"));
  router_.add("GET", "/api/bags",
              deprecated(bind_const(&ServiceDaemon::list_bags_legacy), "/v1/bags"));
  router_.add("GET", "/api/bags/{id}",
              deprecated(bind_const(&ServiceDaemon::get_bag_legacy), "/v1/bags/{id}"));
  router_.add("POST", "/api/lifetimes",
              deprecated(bind(&ServiceDaemon::post_observations), "/v1/observations"));
}

trace::RegimeKey ServiceDaemon::parse_regime(const HttpRequest& request, const JsonValue* body) {
  trace::RegimeKey key;  // defaults: n1-highcpu-16 / us-east1-b / day / batch
  auto field = [&](const char* name) -> std::optional<std::string> {
    if (auto q = request.query(name)) return q;
    if (body != nullptr) {
      if (const JsonValue* v = body->find(name); v && v->is_string()) return v->as_string();
    }
    return std::nullopt;
  };
  if (const auto type = field("type")) {
    const auto parsed = trace::vm_type_from_string(*type);
    require_arg(parsed.has_value(), "unknown vm type '" + *type + "'");
    key.type = *parsed;
  }
  if (const auto zone = field("zone")) {
    const auto parsed = trace::zone_from_string(*zone);
    require_arg(parsed.has_value(), "unknown zone '" + *zone + "'");
    key.zone = *parsed;
  }
  if (const auto period = field("period")) {
    const auto parsed = trace::day_period_from_string(*period);
    require_arg(parsed.has_value(), "unknown period '" + *period + "'");
    key.period = *parsed;
  }
  if (const auto workload = field("workload")) {
    const auto parsed = trace::workload_from_string(*workload);
    require_arg(parsed.has_value(), "unknown workload '" + *workload + "'");
    key.workload = *parsed;
  }
  return key;
}

ServiceDaemon::DriftMonitors& ServiceDaemon::monitors_for(const trace::RegimeKey& key) {
  const std::string id = regime_string(key);
  auto it = drift_.find(id);
  if (it == drift_.end()) {
    const core::PreemptionModel& model = registry_.lookup(key);
    core::DriftDetector::Options ks_opts;
    ks_opts.ks_critical = 1.90;  // baseline is itself fitted (Lilliefors)
    core::CusumDetector::Options cs_opts;
    cs_opts.threshold = 12.0;
    it = drift_
             .emplace(id, DriftMonitors{core::DriftDetector(model, ks_opts),
                                        core::CusumDetector(model.distribution(), cs_opts)})
             .first;
  }
  return it->second;
}

HttpResponse ServiceDaemon::get_model(RouteContext& ctx) {
  const trace::RegimeKey key = parse_regime(ctx.req(), nullptr);
  const LockGuard lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  return HttpResponse::json(200, model_json(key, model).dump());
}

HttpResponse ServiceDaemon::get_lifetime(RouteContext& ctx) {
  const trace::RegimeKey key = parse_regime(ctx.req(), nullptr);
  const LockGuard lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("expected_lifetime_hours", model.expected_lifetime());
  obj.emplace_back("mean_lifetime_hours", model.mean_lifetime());
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_reuse_decision(RouteContext& ctx) {
  const trace::RegimeKey key = parse_regime(ctx.req(), nullptr);
  const auto age_param = ctx.req().query("age");
  const auto job_param = ctx.req().query("job");
  if (!age_param || !job_param) {
    return error_envelope(400, "missing_parameter", "age and job query parameters are required");
  }
  const double age = parse_query_double(*age_param, "age");
  const double job = parse_query_double(*job_param, "job");
  if (age < 0.0 || job <= 0.0) {
    return error_envelope(400, "invalid_argument", "age >= 0 and job > 0 required");
  }

  const LockGuard lock(mutex_);
  const core::PreemptionModel& model = registry_.lookup(key);
  const auto decision = model.reuse_decision(age, job);
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("vm_age_hours", age);
  obj.emplace_back("job_hours", job);
  obj.emplace_back("reuse", decision.reuse);
  obj.emplace_back("expected_existing_hours", decision.expected_existing);
  obj.emplace_back("expected_fresh_hours", decision.expected_fresh);
  obj.emplace_back("failure_probability", decision.failure_probability);
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

BagJobSpec ServiceDaemon::parse_bag_spec(const JsonValue& body, BagField fields) const {
  BagJobSpec spec;
  spec.app = body.string_or("app", "nanoconfinement");
  require_arg(find_workload(spec.app).has_value(), "unknown app '" + spec.app + "'");

  const double jobs = body.number_or("jobs", 50);
  const double vms = body.number_or("vms", 16);
  require_arg(jobs >= 1 && jobs <= 100000, "jobs must be in 1..100000");
  require_arg(vms >= 1 && vms <= 4096, "vms must be in 1..4096");
  spec.jobs = static_cast<std::size_t>(jobs);
  spec.vms = static_cast<std::size_t>(vms);
  const double seed = body.number_or("seed", 42);
  // Range-check before the cast: double -> uint64 is UB out of range, and
  // doubles are only exact integers up to 2^53 anyway.
  require_arg(seed >= 0 && seed <= 9007199254740992.0, "seed must be in 0..2^53");
  spec.seed = static_cast<std::uint64_t>(seed);

  spec.policy_name = body.string_or("policy", "model");
  const auto policy = sim::reuse_policy_from_string(spec.policy_name);
  require_arg(policy.has_value(), "unknown policy '" + spec.policy_name + "'");
  spec.policy = *policy;

  if (fields == BagField::kWithReplications) {
    const double replications = body.number_or("replications", 1);
    require_arg(replications >= 1 && replications <= 10000,
                "replications must be in 1..10000");
    spec.replications = static_cast<std::size_t>(replications);
  }
  return spec;
}

void ServiceDaemon::execute_bag(BagJobRecord& record) {
  if (record.spec.scenario || !record.spec.cells.empty()) {
    execute_scenario(record);
    return;
  }
  const BagJobSpec& spec = record.spec;
  const sim::Workload workload = *find_workload(spec.app);  // validated at submit
  const trace::RegimeKey regime{workload.vm_type, trace::Zone::kUsEast1B,
                                trace::DayPeriod::kDay, trace::WorkloadKind::kBatch};

  // Clone the distributions under the daemon lock, then simulate without it:
  // a long bag must not stall the registry for every other endpoint.
  dist::DistributionPtr ground_truth;
  dist::DistributionPtr decision_model;
  {
    const LockGuard lock(mutex_);
    ground_truth = trace::ground_truth_distribution(regime).clone();
    decision_model = registry_.lookup(regime).distribution().clone();
  }

  // Execution (single run or mc-engine fan-out, metric names, substream
  // seeding, rep-0 representative) lives in the scenario layer; the daemon
  // only contributes its registry-fitted decision model. Reports are
  // byte-identical to the historical hand-wired path.
  scenario::ScenarioSpec cell;
  cell.kind = scenario::ScenarioKind::kService;
  cell.app = spec.app;
  cell.jobs = spec.jobs;
  cell.cluster_size = spec.vms;
  cell.seed = spec.seed;
  cell.policy = spec.policy;
  cell.replications = spec.replications;
  scenario::ScenarioResult result = scenario::run_service(cell, *ground_truth, *decision_model);
  record.report = result.report;
  record.metrics = std::move(result.metrics);
}

void ServiceDaemon::execute_scenario(BagJobRecord& record) {
  if (!record.spec.cells.empty()) {
    // Shard dispatch: run the explicit cell list in order. scenario::run is
    // a pure function of the spec, so the per-cell results — serialized in
    // the same {"name","spec","result"} shape run_sweep uses — are
    // byte-identical to what a single-node sweep would have produced for
    // these cells, which is what lets the coordinator's merge be exact.
    scenario::SweepReport report;
    for (const scenario::ScenarioSpec& cell : record.spec.cells) {
      report.cells.push_back(scenario::SweepCellResult{cell, scenario::run(cell)});
    }
    record.scenario_result = scenario::to_json(report);
    return;
  }
  const scenario::SweepSpec& sweep = *record.spec.scenario;
  if (sweep.axes.empty()) {
    scenario::ScenarioResult result = scenario::run(sweep.base);
    // Single service cells also fill report/metrics; job_resource_json
    // serializes them as the familiar `report` block alongside `result`.
    if (result.kind == scenario::ScenarioKind::kService) {
      record.report = result.report;
      record.metrics = result.metrics;
    }
    record.scenario_result = result.to_json();
    return;
  }
  record.scenario_result = scenario::to_json(scenario::run_sweep(sweep));
}

/// The "report" member of a done job resource: the frozen field order plus
/// the replication statistics block when the run was replicated (both
/// serialized by the scenario layer's shared helpers).
static JsonValue job_report_json(const BagJobRecord& record) {
  JsonObject report;
  scenario::append_report_fields(report, record.report);
  if (!record.metrics.empty()) {
    report.emplace_back("replications", record.spec.replications);
    report.emplace_back("metrics", scenario::metrics_block_json(record.metrics));
  }
  return JsonValue(std::move(report));
}

JsonValue ServiceDaemon::job_resource_json(const BagJobRecord& record) const {
  if (!record.spec.scenario_name.empty()) {
    // Scenario job resources: the spec echo is the scenario name + cell
    // count; `result` carries the rendered scenario outcome (a checkpoint
    // run, a portfolio run, or a whole sweep). Single service cells also
    // expose the familiar `report` block, so bag-polling clients (and
    // ApiClient::BagJobInfo::report) keep working unchanged.
    const bool single_service_cell =
        record.spec.scenario && record.spec.scenario->axes.empty() &&
        record.spec.scenario->base.kind == scenario::ScenarioKind::kService;
    JsonObject obj;
    obj.emplace_back("id", record.id);
    obj.emplace_back("status", to_string(record.status));
    obj.emplace_back("scenario", record.spec.scenario_name);
    obj.emplace_back("kind",
                     record.spec.scenario
                         ? scenario::to_string(record.spec.scenario->base.kind)
                         : !record.spec.cells.empty()
                               ? scenario::to_string(record.spec.cells.front().kind)
                               : std::string("service"));
    obj.emplace_back("cells", record.spec.scenario ? record.spec.scenario->cardinality()
                              : !record.spec.cells.empty() ? record.spec.cells.size()
                                                           : std::size_t{1});
    obj.emplace_back("replications", record.spec.replications);
    if (record.status == BagJobStatus::kDone) {
      if (single_service_cell) obj.emplace_back("report", job_report_json(record));
      obj.emplace_back("result", record.scenario_result);
    }
    if (record.status == BagJobStatus::kFailed) obj.emplace_back("error", record.error);
    return JsonValue(std::move(obj));
  }
  JsonObject obj;
  obj.emplace_back("id", record.id);
  obj.emplace_back("status", to_string(record.status));
  obj.emplace_back("app", record.spec.app);
  obj.emplace_back("jobs", record.spec.jobs);
  obj.emplace_back("vms", record.spec.vms);
  obj.emplace_back("seed", record.spec.seed);
  obj.emplace_back("policy", record.spec.policy_name);
  obj.emplace_back("replications", record.spec.replications);
  if (record.status == BagJobStatus::kDone) {
    obj.emplace_back("report", job_report_json(record));
  }
  if (record.status == BagJobStatus::kFailed) obj.emplace_back("error", record.error);
  return JsonValue(std::move(obj));
}

HttpResponse ServiceDaemon::post_bag_async(RouteContext& ctx) {
  // Serialize the 202 snapshot locally (see run_scenario: a fast job could
  // finish and be evicted from the bounded store before a re-read).
  BagJobRecord snapshot;
  snapshot.status = BagJobStatus::kQueued;
  snapshot.spec = parse_bag_spec(parse_body(ctx.req()));
  snapshot.id = bag_jobs_->submit(snapshot.spec);
  HttpResponse response = HttpResponse::json(202, job_resource_json(snapshot).dump());
  response.headers["location"] = "/v1/bags/" + std::to_string(snapshot.id);
  return response;
}

HttpResponse ServiceDaemon::post_bag_legacy(RouteContext& ctx) {
  // The legacy API predates replicated bags; it ignored unknown body fields,
  // so a "replications" key must neither validate nor take effect here.
  BagJobSpec spec = parse_bag_spec(parse_body(ctx.req()), BagField::kLegacy);
  // Synchronous by contract: run on this connection's worker, never behind
  // the async queue, so legacy posts cannot starve on queued /v1 bags (nor
  // tie up HTTP workers waiting on someone else's work).
  const BagJobRecord record = bag_jobs_->run_inline(std::move(spec));
  if (record.status == BagJobStatus::kFailed) {
    return error_envelope(500, "bag_failed", record.error);
  }
  return HttpResponse::json(201, report_json(record.id, record.spec.app, record.report).dump());
}

HttpResponse ServiceDaemon::list_bags_v1(RouteContext& ctx) const {
  std::optional<BagJobStatus> filter;
  if (const auto status = ctx.req().query("status")) {
    filter = bag_job_status_from_string(*status);
    if (!filter) {
      return error_envelope(400, "invalid_argument",
                            "status must be queued|running|done|failed");
    }
  }
  const std::size_t limit = query_size(ctx.req(), "limit", 50, 1000);
  const std::size_t offset = query_size(ctx.req(), "offset",
                                        0, std::numeric_limits<std::size_t>::max());
  const BagJobQueue::Page page = bag_jobs_->list(filter, limit, offset);
  JsonArray jobs;
  for (const BagJobRecord& record : page.jobs) jobs.push_back(job_resource_json(record));
  JsonObject obj;
  obj.emplace_back("jobs", std::move(jobs));
  obj.emplace_back("total", page.total);
  obj.emplace_back("limit", limit);
  obj.emplace_back("offset", offset);
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::list_bags_legacy(RouteContext&) const {
  // Legacy semantics: only completed bags exist, summarised in id order.
  // Project the four summary fields in place — the store is unbounded for
  // the daemon's lifetime, so deep-copying every record (full report plus
  // metrics) just to emit a summary would make this O(all-history) copies
  // under the store lock.
  JsonArray arr;
  bag_jobs_->for_each(BagJobStatus::kDone, [&arr](const BagJobRecord& record) {
    JsonObject summary;
    summary.emplace_back("id", record.id);
    summary.emplace_back("app", record.spec.app);
    summary.emplace_back("jobs_completed", record.report.jobs_completed);
    summary.emplace_back("cost_reduction_factor", record.report.cost_reduction_factor);
    arr.emplace_back(std::move(summary));
  });
  JsonObject obj;
  obj.emplace_back("bags", std::move(arr));
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_bag_v1(RouteContext& ctx) const {
  std::uint64_t id = 0;
  if (!ctx.param_id("id", id)) {
    return error_envelope(400, "invalid_argument", "bad bag id");
  }
  const auto record = bag_jobs_->get(id);
  if (!record) {
    if (bag_jobs_->evicted(id)) {
      return error_envelope(
          404, "evicted",
          "bag job " + std::to_string(id) +
              " finished and was evicted from the bounded job store (the daemon retains "
              "the last " +
              std::to_string(bag_jobs_->max_finished_jobs()) +
              " finished jobs; raise --max-finished-jobs to keep more)");
    }
    return error_envelope(404, "not_found", "no bag job " + std::to_string(id));
  }
  return HttpResponse::json(200, job_resource_json(*record).dump());
}

HttpResponse ServiceDaemon::list_scenarios(RouteContext&) const {
  JsonArray rows;
  for (const scenario::NamedScenario& s : scenario::builtin_scenarios()) {
    JsonObject row;
    row.emplace_back("name", s.name);
    row.emplace_back("summary", s.summary);
    row.emplace_back("kind", scenario::to_string(s.sweep.base.kind));
    row.emplace_back("cells", s.sweep.cardinality());
    rows.emplace_back(std::move(row));
  }
  JsonObject obj;
  obj.emplace_back("scenarios", std::move(rows));
  obj.emplace_back("total", scenario::builtin_scenarios().size());
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_scenario(RouteContext& ctx) const {
  const std::string& name = ctx.param("name");
  const scenario::NamedScenario* named = scenario::find_builtin(name);
  if (named == nullptr) {
    return error_envelope(404, "not_found", "no scenario named '" + name + "'");
  }
  JsonObject obj;
  obj.emplace_back("name", named->name);
  obj.emplace_back("summary", named->summary);
  obj.emplace_back("cells", named->sweep.cardinality());
  obj.emplace_back("sweep", scenario::to_json(named->sweep));
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::run_scenario(RouteContext& ctx) {
  const std::string& name = ctx.param("name");
  const scenario::NamedScenario* named = scenario::find_builtin(name);
  if (named == nullptr) {
    return error_envelope(404, "not_found", "no scenario named '" + name + "'");
  }
  const JsonValue body = parse_body(ctx.req());
  scenario::SweepSpec sweep = named->sweep;
  // Body fields are spec overrides in the same vocabulary the JSON spec
  // uses; apply_override rejects — with a clean 400 — unknown fields, bad
  // values, the identity fields kind/name, and fields this scenario's own
  // sweep axes set (expansion would silently clobber those).
  for (const auto& [key, value] : body.as_object()) {
    scenario::apply_override(sweep, key, value);
  }
  // Validate every expanded cell before queueing: a bad override must fail
  // the request, not the job an hour later.
  scenario::expand(sweep);

  BagJobSpec spec;
  spec.scenario_name = name;
  spec.seed = sweep.base.seed;
  spec.replications = sweep.base.replications;
  // Serialize the 202 snapshot from what was submitted rather than
  // re-reading the store: with a small --max-finished-jobs a fast job could
  // finish and be evicted before the read, which must not 500 the submit.
  BagJobRecord snapshot;
  snapshot.status = BagJobStatus::kQueued;
  snapshot.spec = spec;
  snapshot.spec.scenario = sweep;
  spec.scenario = std::move(sweep);
  snapshot.id = bag_jobs_->submit(std::move(spec));
  HttpResponse response = HttpResponse::json(202, job_resource_json(snapshot).dump());
  response.headers["location"] = "/v1/bags/" + std::to_string(snapshot.id);
  return response;
}

HttpResponse ServiceDaemon::run_cells(RouteContext& ctx) {
  const JsonValue body = parse_body(ctx.req());
  std::string label = "shard";
  const JsonValue* cells = nullptr;
  for (const auto& [key, value] : body.as_object()) {
    if (key == "cells") {
      cells = &value;
    } else if (key == "label") {
      require_arg(value.is_string() && !value.as_string().empty(),
                  "label must be a non-empty string");
      label = value.as_string();
    } else {
      return error_envelope(400, "invalid_argument", "unknown field '" + key + "'");
    }
  }
  require_arg(cells != nullptr && cells->is_array() && !cells->as_array().empty(),
              "cells must be a non-empty array of scenario specs");
  require_arg(cells->as_array().size() <= scenario::kMaxSweepCells,
              "cells must hold at most " + std::to_string(scenario::kMaxSweepCells) +
                  " specs");

  BagJobSpec spec;
  spec.scenario_name = label;
  spec.cells.reserve(cells->as_array().size());
  // Parse + validate every cell before queueing (same contract as the named
  // scenario route: a bad cell fails the request, not the job later).
  for (const JsonValue& cell : cells->as_array()) {
    scenario::ScenarioSpec s = scenario::scenario_from_json(cell);
    scenario::validate(s);
    spec.cells.push_back(std::move(s));
  }
  spec.seed = spec.cells.front().seed;
  spec.replications = spec.cells.front().replications;

  BagJobRecord snapshot;
  snapshot.status = BagJobStatus::kQueued;
  snapshot.spec = spec;
  snapshot.id = bag_jobs_->submit(std::move(spec));
  HttpResponse response = HttpResponse::json(202, job_resource_json(snapshot).dump());
  response.headers["location"] = "/v1/bags/" + std::to_string(snapshot.id);
  return response;
}

HttpResponse ServiceDaemon::get_metrics(RouteContext& ctx) const {
  const auto format = ctx.req().query("format");
  if (format && *format == "prometheus") {
    // Router exposition plus the process-wide shard-coordinator series.
    HttpResponse response = HttpResponse::text(
        200, router_.metrics_prometheus() + shard::ShardMetricsRegistry::instance().prometheus());
    response.headers["content-type"] = "text/plain; version=0.0.4";
    return response;
  }
  if (format && *format != "json") {
    return error_envelope(400, "invalid_argument", "format must be json|prometheus");
  }
  JsonObject obj = router_.metrics_json().as_object();
  obj.emplace_back("shard", shard::ShardMetricsRegistry::instance().to_json());
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::get_bag_legacy(RouteContext& ctx) const {
  std::uint64_t id = 0;
  if (!ctx.param_id("id", id)) {
    return error_envelope(400, "invalid_argument", "bad bag id");
  }
  const auto record = bag_jobs_->get(id);
  // Legacy clients only ever saw finished bags.
  if (!record || record->status != BagJobStatus::kDone) return HttpResponse::not_found();
  return HttpResponse::json(200, report_json(record->id, record->spec.app, record->report).dump());
}

HttpResponse ServiceDaemon::post_observations(RouteContext& ctx) {
  const JsonValue body = parse_body(ctx.req());
  const JsonValue* lifetimes = body.find("lifetimes");
  if (lifetimes == nullptr || !lifetimes->is_array() || lifetimes->as_array().empty()) {
    return error_envelope(400, "invalid_argument",
                          "lifetimes must be a non-empty array of hours");
  }
  const trace::RegimeKey key = parse_regime(ctx.req(), &body);
  // Validate the whole array before the first observe(): a rejected request
  // must not leave a partial batch inside the drift monitors.
  for (const auto& v : lifetimes->as_array()) {
    if (!v.is_number() || v.as_number() < 0.0) {
      return error_envelope(400, "invalid_argument", "lifetimes must be non-negative numbers");
    }
  }

  const LockGuard lock(mutex_);
  DriftMonitors& monitors = monitors_for(key);
  for (const auto& v : lifetimes->as_array()) {
    monitors.ks.observe(v.as_number());
    monitors.cusum.observe(v.as_number());
  }
  const auto ks = monitors.ks.status();
  const auto cusum = monitors.cusum.status();
  JsonObject obj;
  obj.emplace_back("regime", regime_string(key));
  obj.emplace_back("observed", lifetimes->as_array().size());
  obj.emplace_back("ks_statistic", ks.ks);
  obj.emplace_back("ks_threshold", ks.threshold);
  obj.emplace_back("ks_drift", ks.drift);
  obj.emplace_back("cusum_shorter", cusum.stat_shorter);
  obj.emplace_back("cusum_longer", cusum.stat_longer);
  obj.emplace_back("cusum_alarm", cusum.alarm);
  obj.emplace_back("drift_detected", ks.drift || cusum.alarm);
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

HttpResponse ServiceDaemon::portfolio_allocation(RouteContext& ctx) {
  const JsonValue body = parse_body(ctx.req());

  const double jobs_raw = query_number(ctx.req(), "jobs", 100.0, body);
  require_arg(jobs_raw >= 1.0 && jobs_raw <= 1e7, "jobs must be in [1, 1e7]");
  portfolio::PortfolioConfig config;
  config.jobs = static_cast<std::size_t>(jobs_raw);
  config.job_hours = query_number(ctx.req(), "job_hours", 0.25, body);
  config.risk_bound = query_number(ctx.req(), "risk", 0.05, body);
  config.correlation_penalty = query_number(ctx.req(), "lambda", 0.5, body);
  require_arg(config.job_hours > 0, "job_hours must be > 0");
  require_arg(config.risk_bound > 0 && config.risk_bound <= 1, "risk must be in (0, 1]");
  require_arg(config.correlation_penalty >= 0, "lambda must be >= 0");

  // No daemon lock: the catalog synchronizes its own fit cache and the
  // optimizer is request-local, so the (expensive) first-use market fits
  // must not stall every other endpoint behind mutex_.
  const portfolio::PortfolioOptimizer optimizer(market_catalog_, config);
  const auto allocation = optimizer.optimize_greedy();

  JsonArray rows;
  for (const auto& quote : optimizer.quotes()) {
    if (allocation.counts[quote.market] == 0) continue;
    const auto& market = market_catalog_.market(quote.market);
    JsonObject row;
    row.emplace_back("market", market.label());
    row.emplace_back("type", trace::to_string(market.regime.type));
    row.emplace_back("zone", trace::to_string(market.regime.zone));
    row.emplace_back("period", trace::to_string(market.regime.period));
    row.emplace_back("price_per_hour", market.price_per_hour);
    row.emplace_back("failure_probability", quote.failure_probability);
    row.emplace_back("expected_makespan_hours", quote.expected_makespan_hours);
    row.emplace_back("expected_cost_per_job", quote.expected_cost);
    row.emplace_back("jobs", allocation.counts[quote.market]);
    rows.emplace_back(std::move(row));
  }
  JsonObject obj;
  obj.emplace_back("jobs", config.jobs);
  obj.emplace_back("job_hours", config.job_hours);
  obj.emplace_back("risk_bound", config.risk_bound);
  obj.emplace_back("markets_total", market_catalog_.size());
  obj.emplace_back("markets_eligible", optimizer.eligible_count());
  obj.emplace_back("markets_used", allocation.markets_used);
  obj.emplace_back("expected_cost", allocation.base_cost);
  obj.emplace_back("objective", allocation.objective);
  obj.emplace_back("allocation", std::move(rows));
  return HttpResponse::json(200, JsonValue(std::move(obj)).dump());
}

}  // namespace preempt::api
