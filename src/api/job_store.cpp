#include "api/job_store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace preempt::api {

namespace {

JsonValue report_to_json(const sim::ServiceReport& r) {
  JsonObject o;
  o.emplace_back("jobs_completed", r.jobs_completed);
  o.emplace_back("makespan_hours", r.makespan_hours);
  o.emplace_back("ideal_makespan_hours", r.ideal_makespan_hours);
  o.emplace_back("increase_fraction", r.increase_fraction);
  o.emplace_back("total_cost", r.total_cost);
  o.emplace_back("cost_per_job", r.cost_per_job);
  o.emplace_back("on_demand_cost_per_job", r.on_demand_cost_per_job);
  o.emplace_back("cost_reduction_factor", r.cost_reduction_factor);
  o.emplace_back("preemptions", r.preemptions);
  o.emplace_back("preemptions_total", r.preemptions_total);
  o.emplace_back("vms_launched", r.vms_launched);
  o.emplace_back("fresh_vm_launches", r.fresh_vm_launches);
  o.emplace_back("hot_spare_expirations", r.hot_spare_expirations);
  o.emplace_back("total_vm_hours", r.total_vm_hours);
  o.emplace_back("wasted_hours", r.wasted_hours);
  o.emplace_back("checkpoint_overhead_hours", r.checkpoint_overhead_hours);
  return JsonValue(std::move(o));
}

sim::ServiceReport report_from_json(const JsonValue& v) {
  sim::ServiceReport r;
  r.jobs_completed = static_cast<std::size_t>(v.number_or("jobs_completed", 0));
  r.makespan_hours = v.number_or("makespan_hours", 0.0);
  r.ideal_makespan_hours = v.number_or("ideal_makespan_hours", 0.0);
  r.increase_fraction = v.number_or("increase_fraction", 0.0);
  r.total_cost = v.number_or("total_cost", 0.0);
  r.cost_per_job = v.number_or("cost_per_job", 0.0);
  r.on_demand_cost_per_job = v.number_or("on_demand_cost_per_job", 0.0);
  r.cost_reduction_factor = v.number_or("cost_reduction_factor", 0.0);
  r.preemptions = static_cast<int>(v.number_or("preemptions", 0));
  r.preemptions_total = static_cast<int>(v.number_or("preemptions_total", 0));
  r.vms_launched = static_cast<int>(v.number_or("vms_launched", 0));
  r.fresh_vm_launches = static_cast<int>(v.number_or("fresh_vm_launches", 0));
  r.hot_spare_expirations = static_cast<int>(v.number_or("hot_spare_expirations", 0));
  r.total_vm_hours = v.number_or("total_vm_hours", 0.0);
  r.wasted_hours = v.number_or("wasted_hours", 0.0);
  r.checkpoint_overhead_hours = v.number_or("checkpoint_overhead_hours", 0.0);
  return r;
}

JsonValue metric_to_json(const mc::MetricSummary& m) {
  JsonObject o;
  o.emplace_back("name", m.name);
  o.emplace_back("count", static_cast<std::size_t>(m.count));
  o.emplace_back("mean", m.mean);
  o.emplace_back("variance", m.variance);
  o.emplace_back("stddev", m.stddev);
  o.emplace_back("std_error", m.std_error);
  o.emplace_back("ci95_half", m.ci95_half);
  o.emplace_back("min", m.min);
  o.emplace_back("max", m.max);
  return JsonValue(std::move(o));
}

mc::MetricSummary metric_from_json(const JsonValue& v) {
  mc::MetricSummary m;
  m.name = v.string_or("name", "");
  m.count = static_cast<std::uint64_t>(v.number_or("count", 0));
  m.mean = v.number_or("mean", 0.0);
  m.variance = v.number_or("variance", 0.0);
  m.stddev = v.number_or("stddev", 0.0);
  m.std_error = v.number_or("std_error", 0.0);
  m.ci95_half = v.number_or("ci95_half", 0.0);
  m.min = v.number_or("min", 0.0);
  m.max = v.number_or("max", 0.0);
  return m;
}

JsonValue spec_to_json(const BagJobSpec& spec) {
  JsonObject o;
  o.emplace_back("app", spec.app);
  o.emplace_back("jobs", spec.jobs);
  o.emplace_back("vms", spec.vms);
  o.emplace_back("seed", spec.seed);
  o.emplace_back("policy", spec.policy_name);
  o.emplace_back("replications", spec.replications);
  if (!spec.scenario_name.empty()) o.emplace_back("scenario_name", spec.scenario_name);
  if (spec.scenario) o.emplace_back("scenario", scenario::to_json(*spec.scenario));
  if (!spec.cells.empty()) {
    JsonArray cells;
    cells.reserve(spec.cells.size());
    for (const auto& cell : spec.cells) cells.push_back(scenario::to_json(cell));
    o.emplace_back("cells", std::move(cells));
  }
  return JsonValue(std::move(o));
}

BagJobSpec spec_from_json(const JsonValue& v) {
  PREEMPT_REQUIRE(v.is_object(), "job spec must be a JSON object");
  BagJobSpec spec;
  spec.app = v.string_or("app", spec.app);
  spec.jobs = static_cast<std::size_t>(v.number_or("jobs", static_cast<double>(spec.jobs)));
  spec.vms = static_cast<std::size_t>(v.number_or("vms", static_cast<double>(spec.vms)));
  spec.seed = static_cast<std::uint64_t>(v.number_or("seed", static_cast<double>(spec.seed)));
  spec.policy_name = v.string_or("policy", spec.policy_name);
  const auto policy = sim::reuse_policy_from_string(spec.policy_name);
  PREEMPT_REQUIRE(policy.has_value(), "journaled job has unknown policy \"" +
                                          spec.policy_name + "\"");
  spec.policy = *policy;
  spec.replications =
      static_cast<std::size_t>(v.number_or("replications", static_cast<double>(spec.replications)));
  spec.scenario_name = v.string_or("scenario_name", "");
  if (const JsonValue* sweep = v.find("scenario")) {
    spec.scenario = scenario::sweep_from_json(*sweep);
  }
  if (const JsonValue* cells = v.find("cells"); cells != nullptr && cells->is_array()) {
    for (const JsonValue& cell : cells->as_array()) {
      spec.cells.push_back(scenario::scenario_from_json(cell));
    }
  }
  return spec;
}

}  // namespace

JsonValue job_record_to_json(const BagJobRecord& record) {
  JsonObject o;
  o.emplace_back("id", static_cast<std::size_t>(record.id));
  o.emplace_back("status", to_string(record.status));
  o.emplace_back("spec", spec_to_json(record.spec));
  if (record.status == BagJobStatus::kDone) {
    o.emplace_back("report", report_to_json(record.report));
    if (!record.metrics.empty()) {
      JsonArray metrics;
      metrics.reserve(record.metrics.size());
      for (const auto& m : record.metrics) metrics.push_back(metric_to_json(m));
      o.emplace_back("metrics", std::move(metrics));
    }
    if (!record.scenario_result.is_null()) {
      o.emplace_back("result", record.scenario_result);
    }
  }
  if (!record.error.empty()) o.emplace_back("error", record.error);
  return JsonValue(std::move(o));
}

BagJobRecord job_record_from_json(const JsonValue& value) {
  PREEMPT_REQUIRE(value.is_object(), "journaled job must be a JSON object");
  BagJobRecord record;
  record.id = static_cast<std::uint64_t>(value.number_or("id", 0));
  PREEMPT_REQUIRE(record.id >= 1, "journaled job is missing its id");
  const std::string status_text = value.string_or("status", "");
  const auto status = bag_job_status_from_string(status_text);
  PREEMPT_REQUIRE(status.has_value(),
                  "journaled job has unknown status \"" + status_text + "\"");
  record.status = *status;
  const JsonValue* spec = value.find("spec");
  PREEMPT_REQUIRE(spec != nullptr, "journaled job is missing its spec");
  record.spec = spec_from_json(*spec);
  if (const JsonValue* report = value.find("report")) {
    record.report = report_from_json(*report);
  }
  if (const JsonValue* metrics = value.find("metrics"); metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& m : metrics->as_array()) record.metrics.push_back(metric_from_json(m));
  }
  if (const JsonValue* result = value.find("result")) record.scenario_result = *result;
  record.error = value.string_or("error", "");
  return record;
}

JsonValue make_submit_event(const BagJobRecord& record) {
  JsonObject o;
  o.emplace_back("event", "submit");
  o.emplace_back("job", job_record_to_json(record));
  return JsonValue(std::move(o));
}

JsonValue make_running_event(std::uint64_t id) {
  JsonObject o;
  o.emplace_back("event", "running");
  o.emplace_back("id", static_cast<std::size_t>(id));
  return JsonValue(std::move(o));
}

JsonValue make_terminal_event(const BagJobRecord& record) {
  JsonObject o;
  o.emplace_back("event", record.status == BagJobStatus::kFailed ? "failed" : "done");
  o.emplace_back("job", job_record_to_json(record));
  return JsonValue(std::move(o));
}

JsonValue make_snapshot_event(const std::vector<BagJobRecord>& records, std::uint64_t next_id,
                              std::size_t done_total) {
  JsonObject o;
  o.emplace_back("event", "snapshot");
  o.emplace_back("next_id", static_cast<std::size_t>(next_id));
  o.emplace_back("done_total", done_total);
  JsonArray jobs;
  jobs.reserve(records.size());
  for (const auto& record : records) jobs.push_back(job_record_to_json(record));
  o.emplace_back("jobs", std::move(jobs));
  return JsonValue(std::move(o));
}

JournalReplay replay_journal(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path);
  if (!in.is_open()) return out;  // no journal yet: empty state

  // Later events win; keyed map keeps one record per id.
  std::map<std::uint64_t, BagJobRecord> records;
  std::vector<std::uint64_t> terminal_order;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    JsonValue event;
    try {
      event = parse_json(line);
    } catch (const std::exception&) {
      // Torn tail of an interrupted append (or a corrupt line): skip. The
      // events before it are intact, which is all crash recovery promises.
      PREEMPT_LOG_WARN << "job journal " << path << ": skipping unparseable line " << line_no;
      continue;
    }
    try {
      const std::string kind = event.string_or("event", "");
      if (kind == "snapshot") {
        records.clear();
        terminal_order.clear();
        out.next_id =
            std::max<std::uint64_t>(1, static_cast<std::uint64_t>(event.number_or("next_id", 1)));
        out.done_total = static_cast<std::size_t>(event.number_or("done_total", 0));
        if (const JsonValue* jobs = event.find("jobs"); jobs != nullptr && jobs->is_array()) {
          for (const JsonValue& job : jobs->as_array()) {
            BagJobRecord record = job_record_from_json(job);
            if (record.status == BagJobStatus::kDone || record.status == BagJobStatus::kFailed) {
              terminal_order.push_back(record.id);
            }
            records[record.id] = std::move(record);
          }
        }
      } else if (kind == "submit") {
        const JsonValue* job = event.find("job");
        PREEMPT_REQUIRE(job != nullptr, "submit event without a job");
        BagJobRecord record = job_record_from_json(*job);
        records[record.id] = std::move(record);
      } else if (kind == "running") {
        const auto id = static_cast<std::uint64_t>(event.number_or("id", 0));
        if (const auto it = records.find(id); it != records.end()) {
          it->second.status = BagJobStatus::kRunning;
        }
      } else if (kind == "done" || kind == "failed") {
        const JsonValue* job = event.find("job");
        PREEMPT_REQUIRE(job != nullptr, kind + " event without a job");
        BagJobRecord record = job_record_from_json(*job);
        // A terminal event can directly follow a compaction snapshot that
        // already holds the record: count/order each terminal id only once.
        const auto it = records.find(record.id);
        const bool already_terminal =
            it != records.end() && (it->second.status == BagJobStatus::kDone ||
                                    it->second.status == BagJobStatus::kFailed);
        if (!already_terminal) {
          terminal_order.push_back(record.id);
          if (kind == "done") ++out.done_total;
        }
        records[record.id] = std::move(record);
      } else {
        PREEMPT_LOG_WARN << "job journal " << path << ": unknown event \"" << kind
                         << "\" on line " << line_no;
      }
    } catch (const std::exception& e) {
      PREEMPT_LOG_WARN << "job journal " << path << ": skipping bad event on line " << line_no
                       << ": " << e.what();
    }
  }

  for (auto& [id, record] : records) {
    out.next_id = std::max(out.next_id, id + 1);
    out.records.push_back(std::move(record));
  }
  // Keep only ids that still exist (a snapshot may have dropped earlier ones).
  for (std::uint64_t id : terminal_order) {
    if (std::any_of(out.records.begin(), out.records.end(),
                    [id](const BagJobRecord& r) { return r.id == id; })) {
      out.terminal_order.push_back(id);
    }
  }
  return out;
}

JobJournal::JobJournal(std::string path) : path_(std::move(path)) { open_for_append(); }

JobJournal::~JobJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void JobJournal::open_for_append() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw IoError("cannot open job store \"" + path_ + "\" for appending");
  }
  const long at = std::ftell(file_);
  bytes_ = at > 0 ? static_cast<std::size_t>(at) : 0;
}

void JobJournal::append(const JsonValue& event) {
  const std::string line = event.dump() + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() || std::fflush(file_) != 0) {
    throw IoError("failed to append to job store \"" + path_ + "\"");
  }
  bytes_ += line.size();
}

void JobJournal::compact(const JsonValue& snapshot_event) {
  const std::string tmp = path_ + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) throw IoError("cannot open \"" + tmp + "\" for compaction");
    const std::string line = snapshot_event.dump() + "\n";
    const bool ok =
        std::fwrite(line.data(), 1, line.size(), out) == line.size() && std::fflush(out) == 0;
    std::fclose(out);
    if (!ok) {
      std::remove(tmp.c_str());
      throw IoError("failed to write compacted job store \"" + tmp + "\"");
    }
  }
  // Atomic swap: a crash before the rename leaves the old log intact, after
  // it the new one — never a half-written journal under the live name.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("failed to swap compacted job store into \"" + path_ + "\"");
  }
  std::fclose(file_);
  file_ = nullptr;
  open_for_append();
}

}  // namespace preempt::api
