// A small HTTP/1.1 server over POSIX sockets (loopback only) with a fixed
// worker pool.
//
// One accept thread feeds accepted connections into a bounded queue drained
// by `worker_threads` long-lived workers — the thread count is a constant of
// the configuration, not of traffic, so a burst of requests can no longer
// grow the process thread-by-thread (the old thread-per-connection model
// also never reaped finished threads). When the pending queue is full the
// connection is refused with a 503 so overload degrades loudly instead of
// queueing without bound. Binding to port 0 picks an ephemeral port,
// reported by port(); tests use that to avoid collisions.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/http.hpp"

namespace preempt::api {

/// Request handler: must be thread-safe (called from pool workers).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;        ///< 0 = ephemeral
    int backlog = 16;
    int recv_timeout_seconds = 5;  ///< drop connections idle past this
    std::size_t worker_threads = 4;
    std::size_t max_pending_connections = 256;  ///< accepted-but-unserved cap
  };

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen and start serving `handler` on the worker pool.
  /// Throws IoError when the socket cannot be set up.
  void start(HttpHandler handler, Options options);
  void start(HttpHandler handler) { start(std::move(handler), Options{}); }

  /// Port actually bound (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept { return running_.load(); }

  /// Size of the fixed worker pool (valid after start(); constant until
  /// stop() — the regression guard against per-connection thread growth).
  std::size_t worker_threads() const noexcept { return workers_.size(); }

  /// Connections fully served since start().
  std::uint64_t connections_served() const noexcept { return connections_served_.load(); }

  /// Stop accepting, close the listener, drain and join the pool. Idempotent.
  void stop();

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
  /// Guarded by queue_mutex_. Set by stop() after the accept thread is
  /// joined: workers must not exit on the running_ flip alone — the accept
  /// thread can still push one final connection after it.
  bool draining_ = false;
};

}  // namespace preempt::api
