// A small HTTP/1.1 server over POSIX sockets (loopback only) with a fixed
// worker pool and persistent connections.
//
// One accept thread feeds accepted connections into a bounded queue drained
// by `worker_threads` long-lived workers — the thread count is a constant of
// the configuration, not of traffic, so a burst of requests can no longer
// grow the process thread-by-thread (the old thread-per-connection model
// also never reaped finished threads). Workers serve HTTP/1.1 keep-alive:
// requests loop on one socket with Content-Length framing until the client
// sends `Connection: close`, the idle timeout expires, or the
// max-requests-per-connection cap is reached. Request size is bounded by
// `max_request_bytes` (absurd Content-Length values answer 413 up front).
// When the pending queue is full the connection is refused with a 503 so
// overload degrades loudly instead of queueing without bound; shed sockets
// drain on a dedicated reaper thread, never on the accept thread. Binding to
// port 0 picks an ephemeral port, reported by port(); tests use that to
// avoid collisions.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "api/http.hpp"
#include "common/thread_annotations.hpp"

namespace preempt::api {

/// Request handler: must be thread-safe (called from pool workers).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;        ///< 0 = ephemeral
    int backlog = 16;
    int recv_timeout_seconds = 5;  ///< read bound within one request
    /// Keep-alive: how long a connection may sit idle between requests
    /// before the server closes it.
    int idle_timeout_seconds = 5;
    std::size_t worker_threads = 4;
    std::size_t max_pending_connections = 256;  ///< accepted-but-unserved cap
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive). A
    /// client can always opt out per-request with `Connection: close`.
    bool keep_alive = true;
    /// Requests served on one connection before the server closes it (a
    /// fairness bound so one chatty client cannot pin a worker forever).
    std::size_t max_requests_per_connection = 100;
    /// Total request size cap (headers are separately capped by the parser);
    /// a Content-Length beyond this answers 413 with the error envelope.
    std::size_t max_request_bytes = 4 * 1024 * 1024;
  };

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen and start serving `handler` on the worker pool.
  /// Throws IoError when the socket cannot be set up.
  void start(HttpHandler handler, Options options);
  void start(HttpHandler handler) { start(std::move(handler), Options{}); }

  /// Port actually bound (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept { return running_.load(); }

  /// Size of the fixed worker pool (valid after start(); constant until
  /// stop() — the regression guard against per-connection thread growth).
  std::size_t worker_threads() const noexcept { return workers_.size(); }

  /// Connections fully served since start() (a kept-alive connection counts
  /// once, however many requests it carries).
  std::uint64_t connections_served() const noexcept { return connections_served_.load(); }
  /// Requests answered since start() (>= connections_served under keep-alive).
  std::uint64_t requests_served() const noexcept { return requests_served_.load(); }
  /// Connections refused with 503 because the pending queue was full.
  std::uint64_t connections_shed() const noexcept { return connections_shed_.load(); }

  /// Stop accepting, close the listener, drain and join the pool. Idempotent.
  void stop();

 private:
  /// A shed socket handed to the reaper: already sent its 503, drains until
  /// the peer reads it (readable/EOF) or the deadline passes, then closes.
  struct ShedSocket {
    int fd = -1;
    std::chrono::steady_clock::time_point deadline;
  };

  void accept_loop();
  void worker_loop();
  void shed_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  Options options_;
  /// Atomic because stop() resets it to -1 concurrently with the accept
  /// thread's read; stop() unblocks the in-flight accept() via shutdown()
  /// before the store, so the loop never accepts on the dead descriptor.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> connections_served_{0};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  Mutex queue_mutex_{"http_server.pending"};
  CondVar queue_cv_;
  /// Accepted fds awaiting a worker.
  std::deque<int> pending_ PREEMPT_GUARDED_BY(queue_mutex_);
  /// Set by stop() after the accept thread is joined: workers must not exit
  /// on the running_ flip alone — the accept thread can still push one final
  /// connection after it.
  bool draining_ PREEMPT_GUARDED_BY(queue_mutex_) = false;

  // 503 shed path: the accept thread only sends the (tiny) response and
  // enqueues the socket here; the reaper thread owns the lingering close.
  std::thread shed_thread_;
  Mutex shed_mutex_{"http_server.shed"};
  CondVar shed_cv_;
  std::vector<ShedSocket> shed_fds_ PREEMPT_GUARDED_BY(shed_mutex_);
  bool shed_stop_ PREEMPT_GUARDED_BY(shed_mutex_) = false;
};

}  // namespace preempt::api
