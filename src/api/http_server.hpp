// A small threaded HTTP/1.1 server over POSIX sockets (loopback only).
//
// One accept thread plus one thread per connection — connections are short
// (Connection: close) and the controller's request rate is human-scale, so
// the simple model is the right one. Binding to port 0 picks an ephemeral
// port, reported by port(); tests use that to avoid collisions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "api/http.hpp"

namespace preempt::api {

/// Request handler: must be thread-safe (called from connection threads).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::uint16_t port = 0;       ///< 0 = ephemeral
    int backlog = 16;
    int recv_timeout_seconds = 5; ///< drop connections idle past this
  };

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind, listen and start serving `handler` on a background thread.
  /// Throws IoError when the socket cannot be set up.
  void start(HttpHandler handler, Options options);
  void start(HttpHandler handler) { start(std::move(handler), Options{}); }

  /// Port actually bound (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  bool running() const noexcept { return running_.load(); }

  /// Stop accepting, close the listener and join all threads. Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  HttpHandler handler_;
  Options options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;
};

}  // namespace preempt::api
