#include "api/http_server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/string_util.hpp"

namespace preempt::api {

HttpServer::~HttpServer() { stop(); }

void HttpServer::start(HttpHandler handler, Options options) {
  PREEMPT_REQUIRE(handler != nullptr, "http server needs a handler");
  PREEMPT_REQUIRE(!running_.load(), "http server already running");
  PREEMPT_REQUIRE(options.worker_threads >= 1, "http server needs at least one worker");
  PREEMPT_REQUIRE(options.max_pending_connections >= 1, "pending-connection cap must be >= 1");
  PREEMPT_REQUIRE(options.max_requests_per_connection >= 1,
                  "max requests per connection must be >= 1");
  PREEMPT_REQUIRE(options.max_request_bytes >= 1, "request size cap must be >= 1");
  handler_ = std::move(handler);
  options_ = options;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw IoError("socket() failed: " + std::string(std::strerror(errno)));

  const int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never exposed beyond the host
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind() failed: " + why);
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("listen() failed: " + why);
  }

  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  connections_served_.store(0);
  requests_served_.store(0);
  connections_shed_.store(0);
  {
    // No worker threads exist yet; locked anyway to keep the annotated
    // locking discipline uniform (and the analysis clean).
    const LockGuard lock(queue_mutex_);
    draining_ = false;
  }
  {
    const LockGuard lock(shed_mutex_);
    shed_stop_ = false;
  }
  running_.store(true);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  shed_thread_ = std::thread([this] { shed_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    // Not running: still join finished threads if present.
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    if (shed_thread_.joinable()) shed_thread_.join();
    return;
  }
  // shutdown() unblocks accept() so the loop observes running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Workers exit on draining_, not running_: the accept thread can push one
  // last fd after the running_ flip, so a worker keying off running_ could
  // exit with that fd stranded in pending_. draining_ is set only after the
  // accept join (nothing can enqueue anymore) and written under the queue
  // mutex, so no worker can miss it between its predicate check and wait()
  // — after these joins every accepted connection has been served.
  {
    const LockGuard lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // The reaper last: the accept thread (already joined) is the only
  // producer of shed sockets, so whatever is queued now is all there will be
  // and the reaper closes it on the way out.
  {
    const LockGuard lock(shed_mutex_);
    shed_stop_ = true;
  }
  shed_cv_.notify_all();
  if (shed_thread_.joinable()) shed_thread_.join();
}

void HttpServer::accept_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;  // stop() closed the listener
      continue;                     // transient accept error
    }
    const timeval tv{options_.recv_timeout_seconds, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    bool shed = false;
    {
      const LockGuard lock(queue_mutex_);
      if (pending_.size() >= options_.max_pending_connections) {
        shed = true;
      } else {
        pending_.push_back(fd);
      }
    }
    if (shed) {
      // Overload: refuse outright rather than queue without bound. The 503 is
      // tiny (fits any send buffer), so a non-blocking send either delivers it
      // whole or the peer was never reading anyway; the lingering
      // shutdown+drain close — needed so the peer reads the 503 instead of an
      // RST eating it — is the reaper thread's job. Nothing here blocks, so a
      // flood of shed connections can no longer serialize the accept loop.
      connections_shed_.fetch_add(1);
      static const std::string kBusy =
          error_envelope(503, "overloaded", "server busy").serialize();
      (void)::send(fd, kBusy.data(), kBusy.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
      ::shutdown(fd, SHUT_WR);
      {
        const LockGuard lock(shed_mutex_);
        shed_fds_.push_back(
            {fd, std::chrono::steady_clock::now() + std::chrono::milliseconds(100)});
      }
      shed_cv_.notify_one();
      PREEMPT_LOG_WARN << "http server shed a connection (pending queue full)";
      continue;
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::shed_loop() {
  std::vector<ShedSocket> local;
  std::vector<pollfd> pfds;
  for (;;) {
    {
      UniqueLock lock(shed_mutex_);
      if (local.empty()) {
        while (!shed_stop_ && shed_fds_.empty()) shed_cv_.wait(lock);
      }
      local.insert(local.end(), shed_fds_.begin(), shed_fds_.end());
      shed_fds_.clear();
      if (shed_stop_) break;
    }
    if (local.empty()) continue;

    pfds.clear();
    for (const auto& s : local) pfds.push_back({s.fd, POLLIN, 0});
    (void)::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 20);

    const auto now = std::chrono::steady_clock::now();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < local.size(); ++i) {
      const bool peer_done = (pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) != 0;
      if (peer_done || now >= local[i].deadline) {
        ::close(local[i].fd);
      } else {
        local[kept++] = local[i];
      }
    }
    local.resize(kept);
  }
  // Stopping: nothing produces shed sockets anymore; close what remains.
  for (const auto& s : local) ::close(s.fd);
}

void HttpServer::worker_loop() {
  while (true) {
    int fd = -1;
    {
      UniqueLock lock(queue_mutex_);
      while (!draining_ && pending_.empty()) queue_cv_.wait(lock);
      if (pending_.empty()) return;  // draining and fully drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
  }
}

namespace {

/// Send a full serialized response; returns false when the peer vanished.
bool send_all(int fd, const std::string& wire) {
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void HttpServer::handle_connection(int fd) {
  char buf[4096];
  // Bytes read past the end of the previous request (a pipelined follow-up),
  // carried into the next parser.
  std::string carry;
  std::size_t answered = 0;  // requests answered on this connection
  bool counted = false;      // connections_served_ bumped for this connection

  while (true) {
    HttpRequestParser parser;
    parser.set_max_body(options_.max_request_bytes);
    if (!carry.empty()) {
      (void)parser.feed(carry.data(), carry.size());
      carry.clear();
    }
    // Between requests the bound is the keep-alive idle timeout; once the
    // request starts flowing it reverts to the per-request recv timeout.
    // SO_RCVTIMEO bounds each recv() call, so switching at the first byte is
    // enough.
    bool idle_phase = answered > 0 && parser.empty();
    if (idle_phase) {
      const timeval idle_tv{options_.idle_timeout_seconds, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &idle_tv, sizeof(idle_tv));
    }
    while (!parser.complete() && !parser.failed()) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // peer closed, timeout or error
      if (idle_phase) {
        const timeval tv{options_.recv_timeout_seconds, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        idle_phase = false;
      }
      (void)parser.feed(buf, static_cast<std::size_t>(n));
    }

    if (parser.failed()) {
      // Malformed (400) or over the size cap (413): answer and close — after
      // a framing error the byte stream can't be trusted for another request.
      const HttpResponse response =
          parser.body_too_large()
              ? error_envelope(413, "payload_too_large", parser.error())
              : HttpResponse::bad_request(parser.error());
      requests_served_.fetch_add(1);
      if (!counted) {
        connections_served_.fetch_add(1);
        counted = true;
      }
      (void)send_all(fd, response.serialize(false));
      break;
    }
    if (!parser.complete()) break;  // idle close, EOF, or truncated request

    ++answered;
    HttpResponse response;
    try {
      response = handler_(parser.request());
    } catch (const std::exception& e) {
      response = error_envelope(500, "internal", e.what());
    }

    bool client_close = false;
    const auto& headers = parser.request().headers;
    if (const auto it = headers.find("connection"); it != headers.end()) {
      client_close = to_lower(trim(it->second)) == "close";
    }
    const bool keep = options_.keep_alive && !client_close &&
                      answered < options_.max_requests_per_connection;

    // Count before the response hits the wire so a client that has read its
    // reply always observes the connection/request as served.
    requests_served_.fetch_add(1);
    if (!keep && !counted) {
      connections_served_.fetch_add(1);
      counted = true;
    }
    if (!send_all(fd, response.serialize(keep))) break;
    if (!keep) break;
    carry = parser.remainder();
  }

  if (!counted && answered > 0) connections_served_.fetch_add(1);
  ::shutdown(fd, SHUT_WR);
  // Drain briefly so the peer sees a clean close, then release the socket.
  // Short bound: after an idle-timeout close the peer may never write again,
  // and the worker must not sit out another full timeout here.
  const timeval drain_tv{0, 100 * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &drain_tv, sizeof(drain_tv));
  (void)::recv(fd, buf, sizeof(buf), 0);
  ::close(fd);
}

}  // namespace preempt::api
